//! The shared dense-transformer execution model, parameterized by the
//! kernel-level choices that distinguish DeepSpeed Inference from its
//! comparators (Sec. VII-A1, VII-B1, VII-E).

use dsi_kernels::cost::{
    self, gemm_policy, mem_policy, ExecConfig, GemmImpl,
};
use dsi_kernels::fusion::{fuse, FusedKernel, FusionPlan};
use dsi_kernels::graph::transformer_layer_ops_tp;
use dsi_model::config::{BertConfig, GptConfig};
use dsi_sim::collectives::Collectives;
use dsi_sim::hw::GpuSpec;
use dsi_sim::topology::Topology;
use serde::Serialize;

/// Operator-fusion strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FusionChoice {
    /// Every micro-op its own kernel (eager PyTorch / Megatron).
    Unfused,
    /// Attention fused, biases fused with activations, no layer-norm/GEMM
    /// cross-fusion (FasterTransformer; also our model of E.T.'s fusion
    /// scope, which covers the self-attention sublayer only — Sec. II-d).
    FasterTransformer,
    /// Deep-Fusion (Sec. III-B/D): the small-batch plan with GEMMs fused
    /// into their regions at small `m`, the large-batch plan (GEMMs
    /// standalone on cuBLAS) otherwise.
    DeepFusion,
}

/// GEMM implementation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum GemmChoice {
    /// Vendor BLAS regardless of shape.
    AlwaysCuBlas,
    /// SBI-GeMM at small batch, cuBLAS beyond the crossover, CUTLASS for
    /// INT8 (Sec. III-C/D).
    DeepSpeedSelect,
}

/// A named execution style: the experimental unit of the paper's dense
/// comparisons.
#[derive(Debug, Clone, Serialize)]
pub struct ExecStyle {
    pub name: &'static str,
    pub fusion: FusionChoice,
    pub gemm: GemmChoice,
    pub cuda_graph: bool,
    /// Charge eager micro-op launch counts (PyTorch) instead of one launch
    /// per region.
    pub eager_launches: bool,
}

impl ExecStyle {
    /// DeepSpeed Transformer (Sec. III).
    pub fn deepspeed() -> Self {
        ExecStyle {
            name: "DeepSpeed",
            fusion: FusionChoice::DeepFusion,
            gemm: GemmChoice::DeepSpeedSelect,
            cuda_graph: true,
            eager_launches: false,
        }
    }

    /// NVIDIA FasterTransformer (the Fig. 6/8/13 baseline).
    pub fn faster_transformer() -> Self {
        ExecStyle {
            name: "FasterTransformer",
            fusion: FusionChoice::FasterTransformer,
            gemm: GemmChoice::AlwaysCuBlas,
            cuda_graph: false,
            eager_launches: false,
        }
    }

    /// Eager PyTorch / Megatron inference (the Fig. 10a baseline).
    pub fn pytorch() -> Self {
        ExecStyle {
            name: "PyTorch",
            fusion: FusionChoice::Unfused,
            gemm: GemmChoice::AlwaysCuBlas,
            cuda_graph: false,
            eager_launches: true,
        }
    }

    /// Megatron + Deep-Fusion but stock GEMMs and no CUDA graph — the
    /// middle bar of Fig. 10(a), isolating the fusion contribution.
    pub fn megatron_deepfusion() -> Self {
        ExecStyle {
            name: "Megatron+DeepFusion",
            fusion: FusionChoice::DeepFusion,
            gemm: GemmChoice::AlwaysCuBlas,
            cuda_graph: false,
            eager_launches: false,
        }
    }

    /// E.T. (Chen et al., SC'21): fused self-attention and custom GEMMs, but
    /// narrower fusion scope than Deep-Fusion and no KV-cache/graph support
    /// (Sec. VII-E6).
    pub fn et() -> Self {
        ExecStyle {
            name: "E.T.",
            fusion: FusionChoice::FasterTransformer,
            gemm: GemmChoice::AlwaysCuBlas,
            cuda_graph: false,
            eager_launches: false,
        }
    }

    fn plan(&self, m: usize, n_ops: usize) -> FusionPlan {
        match self.fusion {
            FusionChoice::Unfused => FusionPlan::unfused(n_ops),
            FusionChoice::FasterTransformer => FusionPlan::faster_transformer(),
            FusionChoice::DeepFusion => {
                if m <= 32 {
                    FusionPlan::deepspeed_small_batch()
                } else {
                    FusionPlan::deepspeed_large_batch()
                }
            }
        }
    }

    fn gemm_impl(&self, m: usize, cfg: &ExecConfig) -> GemmImpl {
        match self.gemm {
            GemmChoice::AlwaysCuBlas => GemmImpl::CuBlas,
            GemmChoice::DeepSpeedSelect => gemm_policy::deepspeed_select(m, cfg.weight_dtype),
        }
    }

    fn kernel_time(
        &self,
        gpu: &GpuSpec,
        k: &FusedKernel,
        hidden: usize,
        cfg: &ExecConfig,
    ) -> f64 {
        let (ceff, beff, dtype) = if let Some(m) = k.gemm_rows {
            let imp = self.gemm_impl(m, cfg);
            (
                gemm_policy::compute_efficiency_scaled(imp, m as f64, hidden),
                gemm_policy::bw_efficiency(imp, m as f64),
                cfg.weight_dtype,
            )
        } else if k.has_attention {
            let beff = match self.fusion {
                FusionChoice::DeepFusion => mem_policy::ATTENTION_BW_EFF,
                FusionChoice::FasterTransformer => mem_policy::ATTENTION_BW_EFF_BASELINE,
                FusionChoice::Unfused => mem_policy::ATTENTION_BW_EFF_EAGER,
            };
            (mem_policy::ATTENTION_COMPUTE_EFF, beff, cfg.act_dtype)
        } else {
            (0.3, mem_policy::ELEMENTWISE_BW_EFF, cfg.act_dtype)
        };
        cost::exec_time(gpu, &k.cost, dtype, ceff, beff)
    }

    /// Time of one transformer layer processing `batch` sequences of
    /// `t_new` tokens over `t_ctx` context, with `tp`-way tensor slicing
    /// (compute only; all-reduces are charged in [`Self::forward_time`]).
    #[allow(clippy::too_many_arguments)]
    pub fn layer_time(
        &self,
        gpu: &GpuSpec,
        batch: usize,
        t_new: usize,
        t_ctx: usize,
        hidden: usize,
        heads: usize,
        tp: usize,
        cfg: &ExecConfig,
    ) -> f64 {
        let m = batch * t_new;
        let ops = transformer_layer_ops_tp(batch, t_new, t_ctx, hidden, heads, tp, cfg.weight_dtype);
        let plan = self.plan(m, ops.len());
        let kernels = fuse(&ops, &plan, cfg.act_dtype).expect("built-in plans are legal");
        let mut t = 0.0;
        let mut launches = 0usize;
        for k in &kernels {
            t += self.kernel_time(gpu, k, hidden, cfg);
            launches += if self.eager_launches {
                k.eager_launches
            } else {
                k.launches
            };
        }
        let cfg_eff = ExecConfig {
            cuda_graph: self.cuda_graph && cfg.cuda_graph,
            ..*cfg
        };
        t + cost::launch_time(gpu, launches, &cfg_eff)
    }

    /// Where a layer's time goes (the Sec. VII-E analysis view).
    #[allow(clippy::too_many_arguments)]
    pub fn layer_breakdown(
        &self,
        gpu: &GpuSpec,
        batch: usize,
        t_new: usize,
        t_ctx: usize,
        hidden: usize,
        heads: usize,
        tp: usize,
        cfg: &ExecConfig,
    ) -> LayerBreakdown {
        let m = batch * t_new;
        let ops = transformer_layer_ops_tp(batch, t_new, t_ctx, hidden, heads, tp, cfg.weight_dtype);
        let plan = self.plan(m, ops.len());
        let kernels = fuse(&ops, &plan, cfg.act_dtype).expect("built-in plans are legal");
        let mut b = LayerBreakdown::default();
        let mut launches = 0usize;
        for k in &kernels {
            let t = self.kernel_time(gpu, k, hidden, cfg);
            if k.gemm_rows.is_some() {
                b.gemm += t;
            } else if k.has_attention {
                b.attention += t;
            } else {
                b.elementwise += t;
            }
            launches += if self.eager_launches {
                k.eager_launches
            } else {
                k.launches
            };
        }
        let cfg_eff = ExecConfig {
            cuda_graph: self.cuda_graph && cfg.cuda_graph,
            ..*cfg
        };
        b.launch = cost::launch_time(gpu, launches, &cfg_eff);
        b
    }

    /// Full-model forward over `t_new` new tokens per sequence: all layers,
    /// the two per-layer tensor-parallel all-reduces, the tied-embedding
    /// logits GEMM, and (with CUDA graphs) one graph-replay overhead.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_time(
        &self,
        topo: &Topology,
        model: &GptConfig,
        tp: usize,
        batch: usize,
        t_new: usize,
        t_ctx: usize,
        cfg: &ExecConfig,
    ) -> f64 {
        let gpu = &topo.cluster.node.gpu;
        let m = batch * t_new;
        let layer =
            self.layer_time(gpu, batch, t_new, t_ctx, model.hidden, model.heads, tp, cfg);
        let mut t = model.layers as f64 * layer;
        if tp > 1 {
            let group = topo.tp_group(0, tp);
            let bytes = m as f64 * model.hidden as f64 * cfg.act_dtype.bytes() as f64;
            t += 2.0 * model.layers as f64 * Collectives::allreduce(topo, &group, bytes).time;
        }
        // Tied-embedding logits projection, sharded with TP.
        let logits_cost = cost::KernelCost {
            flops: 2.0 * m as f64 * model.hidden as f64 * model.vocab as f64 / tp as f64,
            weight_bytes: model.hidden as f64 * model.vocab as f64
                * cfg.weight_dtype.bytes() as f64
                / tp as f64,
            act_read: (m * model.hidden) as f64 * cfg.act_dtype.bytes() as f64,
            act_write: (m * model.vocab / tp) as f64 * cfg.act_dtype.bytes() as f64,
        };
        let imp = self.gemm_impl(m, cfg);
        t += cost::exec_time(
            gpu,
            &logits_cost,
            cfg.weight_dtype,
            gemm_policy::compute_efficiency_scaled(imp, m as f64, model.hidden),
            gemm_policy::bw_efficiency(imp, m as f64),
        );
        if self.cuda_graph && cfg.cuda_graph {
            t += cost::graph_replay_overhead(gpu);
        }
        t
    }

    /// The Fig. 6 workload: generate `gen_tokens` tokens from a
    /// `prompt`-token prompt at `batch`, on `tp` GPUs.
    #[allow(clippy::too_many_arguments)]
    pub fn generation_latency(
        &self,
        topo: &Topology,
        model: &GptConfig,
        tp: usize,
        batch: usize,
        prompt: usize,
        gen_tokens: usize,
        cfg: &ExecConfig,
    ) -> LatencyReport {
        let prompt_time = self.forward_time(topo, model, tp, batch, prompt, prompt, cfg);
        let mut gen_time = 0.0;
        for i in 1..gen_tokens {
            gen_time += self.forward_time(topo, model, tp, batch, 1, prompt + i, cfg);
        }
        let total = prompt_time + gen_time;
        LatencyReport {
            prompt_time,
            gen_time,
            total,
            tokens_per_s: (batch * gen_tokens) as f64 / total,
        }
    }

    /// Encoder (BERT-style) forward: one pass over `seq` tokens, no KV
    /// cache, no causal structure (Fig. 12 workload).
    pub fn encoder_forward_time(
        &self,
        gpu: &GpuSpec,
        model: &BertConfig,
        batch: usize,
        seq: usize,
        cfg: &ExecConfig,
    ) -> f64 {
        let layer = self.layer_time(gpu, batch, seq, seq, model.hidden, model.heads, 1, cfg);
        let mut t = model.layers as f64 * layer;
        if self.cuda_graph && cfg.cuda_graph {
            t += cost::graph_replay_overhead(gpu);
        }
        t
    }
}

/// Result of a generation run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LatencyReport {
    pub prompt_time: f64,
    pub gen_time: f64,
    pub total: f64,
    pub tokens_per_s: f64,
}

/// Per-layer time split by kernel class (seconds).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct LayerBreakdown {
    pub gemm: f64,
    pub attention: f64,
    pub elementwise: f64,
    pub launch: f64,
}

impl LayerBreakdown {
    pub fn total(&self) -> f64 {
        self.gemm + self.attention + self.elementwise + self.launch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_model::zoo::{dense_by_name, encoders};
    use dsi_sim::hw::ClusterSpec;

    fn topo() -> Topology {
        Topology::new(ClusterSpec::dgx_a100(2))
    }

    fn gen_latency(style: &ExecStyle, model: &str, tp: usize, batch: usize, cfg: &ExecConfig) -> f64 {
        let m = dense_by_name(model).unwrap();
        style
            .generation_latency(&topo(), &m, tp, batch, 128, 8, cfg)
            .total
    }

    #[test]
    fn deepspeed_beats_ft_small_batch_fp16() {
        // Fig. 6 small batch: DeepSpeed-FP16 up to ~1.55× over FT-FP16.
        let ds = ExecStyle::deepspeed();
        let ft = ExecStyle::faster_transformer();
        let cfg = ExecConfig::fp16(true);
        for model in ["GPT-2-1.5B", "GPT-Neo-2.7B", "GPT-J-6B", "GPT-13B"] {
            let s = gen_latency(&ft, model, 1, 1, &cfg) / gen_latency(&ds, model, 1, 1, &cfg);
            assert!(s > 1.2 && s < 2.3, "{model}: speedup {s:.2}");
        }
    }

    #[test]
    fn speedup_largest_for_smallest_model() {
        // "The latency reduction is the largest for the smallest model
        // sizes" (Sec. VII-B1).
        let ds = ExecStyle::deepspeed();
        let ft = ExecStyle::faster_transformer();
        let cfg = ExecConfig::fp16(true);
        let s_small =
            gen_latency(&ft, "GPT-2-1.5B", 1, 1, &cfg) / gen_latency(&ds, "GPT-2-1.5B", 1, 1, &cfg);
        let s_large =
            gen_latency(&ft, "LM-175B", 16, 1, &cfg) / gen_latency(&ds, "LM-175B", 16, 1, &cfg);
        assert!(s_small > s_large, "small {s_small:.2} large {s_large:.2}");
        assert!(s_large > 1.1, "175B speedup {s_large:.2}");
    }

    #[test]
    fn int8_buys_more_than_fp16() {
        // Fig. 6: DeepSpeed-INT8 up to ~1.95× over the FP16 baseline.
        let ds = ExecStyle::deepspeed();
        let ft = ExecStyle::faster_transformer();
        let fp16 = ExecConfig::fp16(true);
        let int8 = ExecConfig::int8(true);
        for model in ["GPT-J-6B", "GPT-13B"] {
            let base = gen_latency(&ft, model, 1, 1, &fp16);
            let s16 = base / gen_latency(&ds, model, 1, 1, &fp16);
            let s8 = base / gen_latency(&ds, model, 1, 1, &int8);
            assert!(s8 > s16, "{model}: int8 {s8:.2} <= fp16 {s16:.2}");
            assert!(s8 < 3.0, "{model}: int8 speedup implausible {s8:.2}");
        }
    }

    #[test]
    fn deepspeed_wins_across_batch_sizes() {
        let ds = ExecStyle::deepspeed();
        let ft = ExecStyle::faster_transformer();
        let cfg = ExecConfig::fp16(true);
        for batch in [1usize, 4, 16, 64, 128] {
            let s = gen_latency(&ft, "GPT-J-6B", 1, batch, &cfg)
                / gen_latency(&ds, "GPT-J-6B", 1, batch, &cfg);
            assert!(s > 1.0, "batch {batch}: DS must win, got {s:.3}");
        }
    }

    #[test]
    fn pytorch_slowest_fusion_helps_sbi_helps_more() {
        // Fig. 10(a) ordering: PyTorch > +DeepFusion > +DeepFusion+SBI (DS).
        let gpu = dsi_sim::hw::GpuSpec::a100_40gb();
        let cfg = ExecConfig::fp16(true);
        let t = |style: &ExecStyle| {
            style.layer_time(&gpu, 1, 1, 128, 1600, 25, 1, &cfg)
        };
        let pt = t(&ExecStyle::pytorch());
        let df = t(&ExecStyle::megatron_deepfusion());
        let ds = t(&ExecStyle::deepspeed());
        assert!(pt > df, "pytorch {pt:.2e} <= +fusion {df:.2e}");
        assert!(df > ds, "+fusion {df:.2e} <= +sbi {ds:.2e}");
        assert!(pt / ds > 1.5, "total kernel gain only {:.2}", pt / ds);
    }

    #[test]
    fn et_comparison_shape() {
        // Fig. 12: DeepSpeed 1.7× faster on DistilBERT, 1.4× on BERT —
        // the gain shrinks as the model deepens (launch overhead amortizes).
        let gpu = dsi_sim::hw::GpuSpec::a100_40gb();
        let cfg = ExecConfig::fp16(true);
        let ds = ExecStyle::deepspeed();
        let et = ExecStyle::et();
        let models = encoders();
        let speedups: Vec<f64> = models
            .iter()
            .map(|m| {
                et.encoder_forward_time(&gpu, m, 1, 128, &cfg)
                    / ds.encoder_forward_time(&gpu, m, 1, 128, &cfg)
            })
            .collect();
        for (m, s) in models.iter().zip(&speedups) {
            assert!(*s > 1.15 && *s < 2.5, "{}: speedup {s:.2}", m.name);
        }
        assert!(
            speedups[0] >= speedups[1] * 0.98,
            "DistilBERT gain {:.2} should be >= BERT gain {:.2}",
            speedups[0],
            speedups[1]
        );
    }

    #[test]
    fn breakdown_sums_to_layer_time() {
        let gpu = dsi_sim::hw::GpuSpec::a100_40gb();
        let cfg = ExecConfig::fp16(true);
        for style in [ExecStyle::deepspeed(), ExecStyle::faster_transformer(), ExecStyle::pytorch()] {
            let total = style.layer_time(&gpu, 2, 1, 256, 2048, 16, 1, &cfg);
            let b = style.layer_breakdown(&gpu, 2, 1, 256, 2048, 16, 1, &cfg);
            assert!(
                (b.total() - total).abs() < 1e-12,
                "{}: {} vs {}",
                style.name,
                b.total(),
                total
            );
        }
    }

    #[test]
    fn small_batch_is_gemm_weight_dominated() {
        // Sec. I: small-batch latency is bounded by reading the weights —
        // the GEMM share must dominate the breakdown.
        let gpu = dsi_sim::hw::GpuSpec::a100_40gb();
        let cfg = ExecConfig::fp16(true);
        let b = ExecStyle::deepspeed().layer_breakdown(&gpu, 1, 1, 128, 4096, 32, 1, &cfg);
        assert!(b.gemm > 0.6 * b.total(), "gemm share {:.2}", b.gemm / b.total());
    }

    #[test]
    fn long_context_shifts_time_to_attention() {
        let gpu = dsi_sim::hw::GpuSpec::a100_40gb();
        let cfg = ExecConfig::fp16(true);
        let ds = ExecStyle::deepspeed();
        let short = ds.layer_breakdown(&gpu, 8, 1, 128, 2048, 16, 1, &cfg);
        let long = ds.layer_breakdown(&gpu, 8, 1, 4096, 2048, 16, 1, &cfg);
        assert!(
            long.attention / long.total() > short.attention / short.total(),
            "KV reads must grow with context"
        );
    }

    #[test]
    fn generation_report_consistent() {
        let ds = ExecStyle::deepspeed();
        let cfg = ExecConfig::fp16(true);
        let m = dense_by_name("GPT-2-1.5B").unwrap();
        let r = ds.generation_latency(&topo(), &m, 1, 4, 128, 8, &cfg);
        assert!((r.prompt_time + r.gen_time - r.total).abs() < 1e-12);
        assert!(r.tokens_per_s > 0.0);
        assert!(r.prompt_time > 0.0 && r.gen_time > 0.0);
    }

    #[test]
    fn tensor_parallelism_reduces_latency() {
        // Aggregate bandwidth: TP=8 should cut per-token latency vs TP=1 for
        // a large model despite all-reduce overhead (Sec. IV-A).
        let ds = ExecStyle::deepspeed();
        let cfg = ExecConfig::fp16(true);
        let t1 = gen_latency(&ds, "GPT-NeoX-20B", 1, 1, &cfg);
        let t8 = gen_latency(&ds, "GPT-NeoX-20B", 8, 1, &cfg);
        assert!(t8 < t1 / 3.0, "tp8 {t8:.4} vs tp1 {t1:.4}");
    }
}
