//! # dsi-baselines — comparator systems
//!
//! The paper's dense-model evaluation is controlled: "Both the baseline and
//! DeepSpeed Inference use identical TP strategy so all the latency
//! differences in these results come from the differences in kernel
//! implementations" (Sec. VII-B1). This crate makes that control explicit:
//! one shared execution model ([`exec`]) parameterized by exactly the four
//! ingredients the systems differ in —
//!
//! 1. the fusion plan (PyTorch-unfused / FasterTransformer / Deep-Fusion),
//! 2. the GEMM implementation policy (always-cuBLAS vs SBI/CUTLASS
//!    selection),
//! 3. CUDA-graph launch elision,
//! 4. eager (micro-op) vs compiled launch counts.
//!
//! [`exec::ExecStyle`] constructors give the named systems: DeepSpeed
//! Inference, FasterTransformer (Fig. 6/8/13 baseline), PyTorch/Megatron
//! (Fig. 10a baseline), Megatron+Deep-Fusion-only (the Fig. 10a middle bar),
//! and E.T. (Fig. 12). The MoE PyTorch baseline lives in `dsi-moe`, next to
//! the system it contrasts with.

pub mod exec;

pub use exec::{ExecStyle, FusionChoice, GemmChoice, LatencyReport};
