//! Criterion micro-benchmarks of the functional CPU kernels: the numerical
//! substrate every equivalence test runs on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dsi_kernels::ops;
use dsi_kernels::quant::{matmul_quantized, QuantizedMatrix};
use dsi_kernels::sbi::{gemm_sbi, SbiLayout, SbiPlan};
use dsi_kernels::tensor::Tensor;
use dsi_sim::hw::DType;

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for &(m, k, n) in &[(1usize, 512usize, 1536usize), (8, 512, 1536), (64, 512, 2048)] {
        let a = Tensor::randn(&[m, k], 1.0, 1);
        let b = Tensor::randn(&[k, n], 0.1, 2);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{m}x{k}x{n}")), &(), |bch, _| {
            bch.iter(|| ops::matmul(black_box(&a), black_box(&b)))
        });
    }
    g.finish();
}

fn bench_sbi_gemm(c: &mut Criterion) {
    let (k, n) = (512usize, 1536usize);
    let x = Tensor::randn(&[1, k], 1.0, 3);
    let w = Tensor::randn(&[k, n], 0.1, 4);
    let layout = SbiLayout::from_weights(&w, DType::Fp16);
    let plan = SbiPlan::choose(k, n, 108);
    let mut g = c.benchmark_group("sbi");
    g.bench_function("gemm_sbi 1x512x1536", |b| {
        b.iter(|| gemm_sbi(black_box(&x), black_box(&layout), plan))
    });
    g.bench_function("layout_transform 512x1536", |b| {
        b.iter(|| SbiLayout::from_weights(black_box(&w), DType::Fp16))
    });
    g.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let x = Tensor::randn(&[64, 1024], 1.0, 5);
    let gamma = Tensor::from_vec(&[1024], vec![1.0; 1024]);
    let beta = Tensor::zeros(&[1024]);
    let mut g = c.benchmark_group("elementwise");
    g.bench_function("layernorm 64x1024", |b| {
        b.iter(|| ops::layernorm(black_box(&x), &gamma, &beta, 1e-5))
    });
    g.bench_function("softmax 64x1024", |b| {
        b.iter(|| {
            let mut y = x.clone();
            ops::softmax_rows(&mut y);
            y
        })
    });
    g.bench_function("gelu 64x1024", |b| {
        b.iter(|| {
            let mut y = x.clone();
            ops::gelu(&mut y);
            y
        })
    });
    g.finish();
}

fn bench_attention(c: &mut Criterion) {
    let mut g = c.benchmark_group("attention");
    for &(t_new, ctx) in &[(128usize, 128usize), (1, 512)] {
        let h = 512;
        let q = Tensor::randn(&[t_new, h], 1.0, 6);
        let k = Tensor::randn(&[ctx, h], 1.0, 7);
        let v = Tensor::randn(&[ctx, h], 1.0, 8);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("t{t_new}_ctx{ctx}")),
            &(),
            |b, _| b.iter(|| ops::attention(black_box(&q), &k, &v, 8, ctx - t_new)),
        );
    }
    g.finish();
}

fn bench_quantization(c: &mut Criterion) {
    let w = Tensor::randn(&[512, 1536], 0.1, 9);
    let x = Tensor::randn(&[4, 512], 1.0, 10);
    let q = QuantizedMatrix::quantize(&w, 64);
    let mut g = c.benchmark_group("int8");
    g.bench_function("quantize 512x1536", |b| {
        b.iter(|| QuantizedMatrix::quantize(black_box(&w), 64))
    });
    g.bench_function("matmul_quantized 4x512x1536", |b| {
        b.iter(|| matmul_quantized(black_box(&x), black_box(&q)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_sbi_gemm,
    bench_elementwise,
    bench_attention,
    bench_quantization
);
criterion_main!(benches);
