//! Criterion benchmarks of the MoE routing paths: the sparse one-hot einsum
//! baseline vs the dense mapping-table rewrite (Sec. V-C), measured on the
//! functional implementations — the complexity gap (`S·E·M·c_e` vs
//! `S·M·c_e`) is directly visible in the wall-clock ratio.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dsi_kernels::tensor::Tensor;
use dsi_moe::gating::top_k_gating;
use dsi_moe::layer::{ep_forward, MoeLayer};
use dsi_moe::routing::{dispatch_dense, dispatch_sparse, gather_dense, gather_sparse};

fn bench_gating(c: &mut Criterion) {
    let mut g = c.benchmark_group("gating");
    for &experts in &[16usize, 64, 128] {
        let logits = Tensor::randn(&[64, experts], 1.0, 1);
        g.bench_with_input(BenchmarkId::from_parameter(experts), &(), |b, _| {
            b.iter(|| top_k_gating(black_box(&logits), 1, 8))
        });
    }
    g.finish();
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch");
    for &experts in &[16usize, 64] {
        let tokens = Tensor::randn(&[64, 128], 1.0, 2);
        let logits = Tensor::randn(&[64, experts], 1.0, 3);
        let gate = top_k_gating(&logits, 1, 8);
        g.bench_with_input(BenchmarkId::new("sparse", experts), &(), |b, _| {
            b.iter(|| dispatch_sparse(black_box(&tokens), black_box(&gate)))
        });
        g.bench_with_input(BenchmarkId::new("dense", experts), &(), |b, _| {
            b.iter(|| dispatch_dense(black_box(&tokens), black_box(&gate)))
        });
    }
    g.finish();
}

fn bench_gather(c: &mut Criterion) {
    let mut g = c.benchmark_group("gather");
    let experts = 64usize;
    let cap = 8usize;
    let logits = Tensor::randn(&[64, experts], 1.0, 4);
    let gate = top_k_gating(&logits, 2, cap);
    let expert_out = Tensor::randn(&[experts * cap, 128], 1.0, 5);
    g.bench_function("sparse", |b| {
        b.iter(|| gather_sparse(black_box(&expert_out), black_box(&gate)))
    });
    g.bench_function("dense", |b| {
        b.iter(|| gather_dense(black_box(&expert_out), black_box(&gate)))
    });
    g.finish();
}

fn bench_ep_forward(c: &mut Criterion) {
    let layer = MoeLayer::random(64, 8, 1, 6);
    let x = Tensor::randn(&[32, 64], 1.0, 7);
    let mut g = c.benchmark_group("ep_forward");
    for &ranks in &[1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(ranks), &(), |b, _| {
            b.iter(|| ep_forward(black_box(&layer), black_box(&x), ranks, 32 / ranks))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gating, bench_dispatch, bench_gather, bench_ep_forward);
criterion_main!(benches);
