//! Criterion benchmarks of the simulation substrate itself: task-graph
//! scheduling throughput, collective cost evaluation, and full engine
//! queries — the costs a *user* of this library pays per what-if question.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dsi_core::engine::{EngineConfig, InferenceEngine};
use dsi_model::zoo;
use dsi_moe::system::{MoeSystem, MoeSystemKind};
use dsi_parallel::pipeline::{PipelineSchedule, PipelineSpec};
use dsi_sim::collectives::Collectives;
use dsi_sim::hw::ClusterSpec;
use dsi_sim::topology::Topology;
use dsi_zero::engine::ZeroInference;

fn bench_pipeline_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_sim");
    for &tokens in &[10usize, 50, 100] {
        let spec = PipelineSpec {
            stages: 8,
            prompt_microbatches: 32,
            gen_microbatches: 8,
            gen_tokens: tokens,
            stage_prompt_time_full: 40e-3,
            stage_gen_time: 2e-3,
            microbatch_overhead: 0.1e-3,
            p2p_time: 0.05e-3,
        };
        g.bench_with_input(BenchmarkId::from_parameter(tokens), &(), |b, _| {
            b.iter(|| black_box(&spec).run(PipelineSchedule::InferenceQueue))
        });
    }
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let topo = Topology::new(ClusterSpec::dgx_a100(32));
    let group: Vec<usize> = (0..256).collect();
    let mut g = c.benchmark_group("collectives");
    g.bench_function("allreduce_256", |b| {
        b.iter(|| Collectives::allreduce(black_box(&topo), black_box(&group), 1e8))
    });
    g.bench_function("alltoall_256", |b| {
        b.iter(|| Collectives::alltoall(black_box(&topo), black_box(&group), 1e6))
    });
    g.bench_function("pcc_alltoall_256_tp8", |b| {
        b.iter(|| Collectives::pcc_alltoall(black_box(&topo), black_box(&group), 8, 1e6))
    });
    g.finish();
}

fn bench_engine_queries(c: &mut Criterion) {
    let model = zoo::dense_by_name("LM-175B").unwrap();
    let engine = InferenceEngine::new(EngineConfig::deepspeed(
        model,
        ClusterSpec::dgx_a100(2),
        8,
        2,
    ));
    let mut g = c.benchmark_group("engine");
    g.bench_function("generation_175b_pp2", |b| {
        b.iter(|| black_box(&engine).generation(16, 512, 50))
    });

    let moe = MoeSystem::new(zoo::table2().pop().unwrap(), MoeSystemKind::DeepSpeed);
    g.bench_function("moe_token_latency_2t", |b| {
        b.iter(|| black_box(&moe).token_latency(8))
    });

    let zero = ZeroInference::new(
        zoo::dense_by_name("LM-530B").unwrap(),
        dsi_sim::hw::NodeSpec::lambda_a6000(),
        1,
    );
    g.bench_function("zero_530b_forward", |b| {
        b.iter(|| black_box(&zero).run(8))
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline_simulation, bench_collectives, bench_engine_queries);
criterion_main!(benches);
