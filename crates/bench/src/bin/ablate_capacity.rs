//! Ablation: expert capacity factor vs token drop rate and buffer waste,
//! measured on the *functional* gating implementation with realistic
//! (skewed) routing distributions — the quality/latency trade-off behind
//! the `c_e` term of Sec. V-C.

use dsi_bench::{emit, print_table};
use dsi_core::report::Row;
use dsi_kernels::tensor::Tensor;
use dsi_moe::gating::top_k_gating;

fn main() {
    println!("Ablation — expert capacity factor (128 experts, 1024 tokens, top-1)\n");
    let tokens = 1024usize;
    let experts = 128usize;
    // Skewed logits: a popularity bias makes some experts hot, as trained
    // gates do.
    let mut logits = Tensor::randn(&[tokens, experts], 2.0, 42);
    for r in 0..tokens {
        for (e, v) in logits.row_mut(r).iter_mut().enumerate() {
            *v += 1.2 * (-(e as f32) / 32.0).exp(); // mildly popular head experts
        }
    }

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for cf in [0.5f64, 0.75, 1.0, 1.25, 1.5, 2.0] {
        let capacity = ((cf * tokens as f64) / experts as f64).ceil() as usize;
        let d = top_k_gating(&logits, 1, capacity);
        let dropped = d.dropped.len();
        let used: usize = (0..experts).map(|e| d.expert_load(e)).sum();
        let slots = experts * capacity;
        rows.push(vec![
            format!("{cf:.2}"),
            capacity.to_string(),
            format!("{:.1}%", 100.0 * dropped as f64 / tokens as f64),
            format!("{:.1}%", 100.0 * (slots - used) as f64 / slots as f64),
        ]);
        json.push(Row::new(
            "ablate_capacity",
            "drop_rate",
            "gating",
            "capacity_factor",
            cf,
            100.0 * dropped as f64 / tokens as f64,
            "%",
        ));
    }
    print_table(
        &["capacity factor", "slots/expert", "tokens dropped", "slots wasted"],
        &rows,
    );
    println!(
        "\nlow capacity drops tokens (quality loss); high capacity wastes buffer\n\
         memory and all-to-all payload — the c_e knob of Sec. V-C."
    );
    emit("ablate_capacity", &json);
}
