//! Ablation: what each Deep-Fusion region contributes.
//!
//! Starting from the unfused layer, enable the Fig. 1(c) fusion regions one
//! at a time and measure the per-layer token-generation time — separating
//! the launch-overhead savings from the activation-traffic savings.

use dsi_bench::{emit, print_table};
use dsi_core::report::Row;
use dsi_kernels::cost::{self, gemm_policy, mem_policy, ExecConfig, GemmImpl};
use dsi_kernels::fusion::{fuse, FusionPlan};
use dsi_kernels::graph::transformer_layer_ops;
use dsi_sim::hw::{DType, GpuSpec};

fn layer_time(gpu: &GpuSpec, plan: &FusionPlan, cuda_graph: bool) -> f64 {
    let ops = transformer_layer_ops(1, 1, 128, 4096, 32, DType::Fp16);
    let kernels = fuse(&ops, plan, DType::Fp16).expect("legal plan");
    let cfg = ExecConfig::fp16(cuda_graph);
    let mut t = 0.0;
    let mut launches = 0;
    for k in &kernels {
        let (ce, be) = if let Some(m) = k.gemm_rows {
            (
                gemm_policy::compute_efficiency(GemmImpl::Sbi, m as f64),
                gemm_policy::bw_efficiency(GemmImpl::Sbi, m as f64),
            )
        } else if k.has_attention {
            (mem_policy::ATTENTION_COMPUTE_EFF, mem_policy::ATTENTION_BW_EFF)
        } else {
            (0.3, mem_policy::ELEMENTWISE_BW_EFF)
        };
        t += cost::exec_time(gpu, &k.cost, DType::Fp16, ce, be);
        launches += k.launches;
    }
    t + cost::launch_time(gpu, launches, &cfg)
}

fn main() {
    println!("Ablation — Deep-Fusion region contributions (GPT-J layer, batch 1, ctx 128)\n");
    let gpu = GpuSpec::a100_40gb();
    // Cumulative plans: each adds one Fig. 1(c) region.
    let stages: Vec<(&str, FusionPlan, bool)> = vec![
        ("unfused", FusionPlan::unfused(12), false),
        (
            "+ln+QKV region",
            FusionPlan {
                regions: vec![(0, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9), (9, 10), (10, 11), (11, 12)],
            },
            false,
        ),
        (
            "+attention region",
            FusionPlan {
                regions: vec![(0, 3), (3, 5), (5, 6), (6, 7), (7, 8), (8, 9), (9, 10), (10, 11), (11, 12)],
            },
            false,
        ),
        (
            "+output regions",
            FusionPlan {
                regions: vec![(0, 3), (3, 5), (5, 7), (7, 8), (8, 9), (9, 10), (10, 11), (11, 12)],
            },
            false,
        ),
        ("+FFN regions (full Deep-Fusion)", FusionPlan::deepspeed_small_batch(), false),
        ("+CUDA graph", FusionPlan::deepspeed_small_batch(), true),
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut base = 0.0;
    for (name, plan, graph) in &stages {
        let t = layer_time(&gpu, plan, *graph);
        if base == 0.0 {
            base = t;
        }
        rows.push(vec![
            name.to_string(),
            plan.regions.len().to_string(),
            format!("{:.1}", t * 1e6),
            format!("{:.2}x", base / t),
        ]);
        json.push(Row::new(
            "ablate_fusion",
            name,
            "GPT-J layer",
            "step",
            rows.len() as f64,
            t * 1e6,
            "us",
        ));
    }
    print_table(&["configuration", "kernels", "us/layer", "vs unfused"], &rows);
    emit("ablate_fusion", &json);
}
