//! Ablation: the odd/even offload scheduling of Sec. IV-C3 as a function of
//! KV pressure — naive shared-link, staggered shared-link, and dedicated
//! links, on the paired-GPU PCIe timeline simulator.

use dsi_bench::{emit, print_table};
use dsi_core::report::Row;
use dsi_parallel::offload::OffloadSpec;

fn main() {
    println!("Ablation — KV offload PCIe scheduling (24 layers, 1 ms/layer compute)\n");
    let base = OffloadSpec {
        layers: 24,
        layer_compute: 1.0e-3,
        kv_bytes_per_layer: 0.0,
        pcie_bw: 25e9,
        shared_link: true,
        odd_even_schedule: false,
    };
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for mb in [5.0f64, 10.0, 20.0, 40.0, 80.0] {
        let kv = mb * 1e6;
        let naive = OffloadSpec { kv_bytes_per_layer: kv, ..base.clone() }.run();
        let staggered = OffloadSpec {
            kv_bytes_per_layer: kv,
            odd_even_schedule: true,
            ..base.clone()
        }
        .run();
        let dedicated = OffloadSpec {
            kv_bytes_per_layer: kv,
            shared_link: false,
            ..base.clone()
        }
        .run();
        rows.push(vec![
            format!("{mb:.0}"),
            format!("{:.1} ({:.0}%)", naive.step_time * 1e3, 100.0 * naive.stall_fraction),
            format!(
                "{:.1} ({:.0}%)",
                staggered.step_time * 1e3,
                100.0 * staggered.stall_fraction
            ),
            format!(
                "{:.1} ({:.0}%)",
                dedicated.step_time * 1e3,
                100.0 * dedicated.stall_fraction
            ),
        ]);
        for (sys, r) in [
            ("naive-shared", &naive),
            ("odd-even", &staggered),
            ("dedicated", &dedicated),
        ] {
            json.push(Row::new(
                "ablate_offload",
                sys,
                "kv-offload",
                "MB/layer",
                mb,
                r.step_time * 1e3,
                "ms",
            ));
        }
    }
    print_table(
        &[
            "KV MB/layer",
            "naive shared ms (stall)",
            "odd/even ms (stall)",
            "dedicated ms (stall)",
        ],
        &rows,
    );
    println!(
        "\nodd/even staggering recovers the dedicated-link step time on shared links\n\
         until the link itself saturates (Sec. IV-C3)."
    );
    emit("ablate_offload", &json);
}
