//! Ablation: PCC all-to-all vs flat all-to-all across cluster scale and
//! tensor-slicing degree — the `O(p)` → `O(p/L) + O(L)` rewrite of
//! Sec. V-B, including where it does *not* help (L = 1, small p).

use dsi_bench::{emit, print_table};
use dsi_core::report::Row;
use dsi_sim::collectives::Collectives;
use dsi_sim::hw::ClusterSpec;
use dsi_sim::topology::Topology;

fn main() {
    println!("Ablation — PCC vs flat all-to-all (64 KiB per rank)\n");
    let bytes = 64.0 * 1024.0;
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for gpus in [16usize, 32, 64, 128, 256] {
        let topo = Topology::new(ClusterSpec::dgx_a100(gpus.div_ceil(8)));
        let group: Vec<usize> = (0..gpus).collect();
        let flat = Collectives::alltoall(&topo, &group, bytes).time;
        let mut row = vec![gpus.to_string(), format!("{:.1}", flat * 1e6)];
        json.push(Row::new("ablate_pcc", "flat", "alltoall", "gpus", gpus as f64, flat * 1e6, "us"));
        for l in [2usize, 4, 8] {
            if gpus % l == 0 {
                let (pcc, _, _) = Collectives::pcc_alltoall(&topo, &group, l, bytes);
                row.push(format!("{:.1} ({:.2}x)", pcc.time * 1e6, flat / pcc.time));
                json.push(Row::new(
                    "ablate_pcc",
                    &format!("pcc_l{l}"),
                    "alltoall",
                    "gpus",
                    gpus as f64,
                    pcc.time * 1e6,
                    "us",
                ));
            } else {
                row.push("-".into());
            }
        }
        rows.push(row);
    }
    print_table(
        &["GPUs", "flat us", "PCC L=2", "PCC L=4", "PCC L=8"],
        &rows,
    );
    println!(
        "\npaper (Sec. V-B): at 128 GPUs with 8-way slicing the overhead drops from\n\
         (128 C1 + C2) to (16 C1 + C2); the L=8 column shows that ~8x trend."
    );
    emit("ablate_pcc", &json);
}
