//! Ablation: where is the SBI-GeMM / cuBLAS crossover?
//!
//! DeepSpeed Inference switches from SBI-GeMM to cuBLAS past a batch
//! threshold (Sec. III-D); this sweep shows the modeled GEMM time for both
//! implementations across batch sizes and locates the crossover the
//! selection policy hard-codes.

use dsi_bench::{emit, print_table};
use dsi_core::report::Row;
use dsi_kernels::cost::{exec_time, gemm_policy, GemmImpl, KernelCost};
use dsi_sim::hw::{DType, GpuSpec};

fn main() {
    println!("Ablation — SBI-GeMM vs cuBLAS crossover (A100, 4096x12288 GEMM)\n");
    let gpu = GpuSpec::a100_40gb();
    let (k, n) = (4096.0, 12288.0);
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut crossover: Option<usize> = None;
    for m in [1usize, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128] {
        let cost = KernelCost {
            flops: 2.0 * m as f64 * k * n,
            weight_bytes: k * n * 2.0,
            act_read: m as f64 * k * 2.0,
            act_write: m as f64 * n * 2.0,
        };
        let t = |imp: GemmImpl| {
            exec_time(
                &gpu,
                &cost,
                DType::Fp16,
                gemm_policy::compute_efficiency(imp, m as f64),
                gemm_policy::bw_efficiency(imp, m as f64),
            )
        };
        let sbi = t(GemmImpl::Sbi);
        let cublas = t(GemmImpl::CuBlas);
        let selected = gemm_policy::deepspeed_select(m, DType::Fp16);
        if crossover.is_none() && cublas < sbi {
            crossover = Some(m);
        }
        rows.push(vec![
            m.to_string(),
            format!("{:.1}", sbi * 1e6),
            format!("{:.1}", cublas * 1e6),
            format!("{:?}", selected),
        ]);
        json.push(Row::new("ablate_sbi", "SBI", "gemm", "m", m as f64, sbi * 1e6, "us"));
        json.push(Row::new("ablate_sbi", "cuBLAS", "gemm", "m", m as f64, cublas * 1e6, "us"));
    }
    print_table(&["batch rows", "SBI us", "cuBLAS us", "DS selects"], &rows);
    println!(
        "\nmodel crossover at m ≈ {:?}; the selection policy switches at m > 32.",
        crossover
    );
    emit("ablate_sbi", &json);
}
