//! Run every table/figure/ablation target in sequence — the one-command
//! regeneration of the paper's whole evaluation. Each child writes its JSON
//! rows to `results/`.

use std::process::Command;

const TARGETS: &[&str] = &[
    "table1", "table2", "fig6", "fig7", "fig8", "fig9a", "fig9b", "fig9c", "fig10a", "fig10b",
    "fig10c", "fig11", "fig12", "fig13", "ablate_sbi", "ablate_pcc", "ablate_fusion",
    "ablate_offload", "ablate_capacity", "breakdown",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for target in TARGETS {
        println!("\n================================================================");
        println!("== {target}");
        println!("================================================================");
        let path = dir.join(target);
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fall back to cargo when running via `cargo run` from source.
            Command::new("cargo")
                .args(["run", "-q", "-p", "dsi-bench", "--bin", target])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{target}: exited with {s}");
                failures.push(*target);
            }
            Err(e) => {
                eprintln!("{target}: failed to launch: {e}");
                failures.push(*target);
            }
        }
    }
    println!("\n================================================================");
    if failures.is_empty() {
        println!("all {} targets regenerated; JSON rows in results/", TARGETS.len());
    } else {
        println!("FAILED targets: {failures:?}");
        std::process::exit(1);
    }
}
