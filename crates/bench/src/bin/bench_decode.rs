//! Executed Deep-Fusion decode benchmark: the seed functional path
//! (per-op allocation, `cat_rows` KV rebuild, unpacked GEMMs) against the
//! fast path (packed weights, Fig. 1(c) fused region kernels, amortized KV,
//! scratch reuse), on the same tiny-GPT 64-token greedy decode, in the same
//! process.
//!
//! Prints a table and writes `BENCH_decode.json` with tokens/s for both
//! paths, the speedup, effective GEMM GFLOP/s, and a token-equality check.

use dsi_bench::print_table;
use dsi_model::fast::PackedModel;
use dsi_model::reference::GptModel;
use dsi_model::zoo;
use serde::Serialize;
use std::time::Instant;

const PROMPT: [usize; 4] = [1, 2, 3, 4];
const GEN_TOKENS: usize = 60; // prompt 4 + 60 generated = 64-token sequence
const LAYERS: usize = 4;
const REPS: usize = 5;

#[derive(Serialize)]
struct DecodeResult {
    unit: String,
    model: String,
    layers: usize,
    hidden: usize,
    prompt_tokens: usize,
    gen_tokens: usize,
    reps: usize,
    seed_tokens_per_s: f64,
    fast_tokens_per_s: f64,
    speedup: f64,
    seed_gemm_gflops: f64,
    fast_gemm_gflops: f64,
    tokens_equal: bool,
}

/// GEMM FLOPs of one full greedy decode (prompt + generation), counting the
/// four layer GEMMs and the tied-embedding logits projection.
fn decode_gemm_flops(c: &dsi_model::GptConfig, prompt: usize, gen: usize) -> f64 {
    let h = c.hidden as f64;
    let per_row = 2.0 * (h * 3.0 * h + h * h + h * 4.0 * h + 4.0 * h * h) * c.layers as f64
        + 2.0 * h * c.vocab as f64;
    per_row * (prompt + gen - 1) as f64
}

fn main() {
    let config = zoo::tiny(LAYERS);
    let model = GptModel::random(config.clone(), 42);
    let packed = PackedModel::pack(&model);

    // Warm-up + correctness: both paths must emit the same tokens.
    let want = model.generate(&PROMPT, GEN_TOKENS);
    let got = packed.session(PROMPT.len()).generate(&PROMPT, GEN_TOKENS);
    let tokens_equal = want == got;

    // Seed path: fresh KV cache per rep, exactly as `GptModel::generate`
    // runs in the rest of the repo.
    let mut seed_best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = model.generate(&PROMPT, GEN_TOKENS);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(out.len(), GEN_TOKENS);
        seed_best = seed_best.min(dt);
    }

    // Fast path: packing cost is paid once at model load (outside the
    // loop, like weight loading); each rep opens a fresh session (scratch +
    // KV reservation) and decodes.
    let mut fast_best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = packed.session(PROMPT.len()).generate(&PROMPT, GEN_TOKENS);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(out.len(), GEN_TOKENS);
        fast_best = fast_best.min(dt);
    }

    let flops = decode_gemm_flops(&config, PROMPT.len(), GEN_TOKENS);
    let result = DecodeResult {
        unit: "tokens/s".to_string(),
        model: config.name.clone(),
        layers: config.layers,
        hidden: config.hidden,
        prompt_tokens: PROMPT.len(),
        gen_tokens: GEN_TOKENS,
        reps: REPS,
        seed_tokens_per_s: GEN_TOKENS as f64 / seed_best,
        fast_tokens_per_s: GEN_TOKENS as f64 / fast_best,
        speedup: seed_best / fast_best,
        seed_gemm_gflops: flops / seed_best / 1e9,
        fast_gemm_gflops: flops / fast_best / 1e9,
        tokens_equal,
    };

    println!(
        "Executed Deep-Fusion decode: {} ({} layers, h={}), {}-token greedy decode\n",
        result.model,
        result.layers,
        result.hidden,
        result.prompt_tokens + result.gen_tokens
    );
    print_table(
        &["path", "tokens/s", "GEMM GFLOP/s"],
        &[
            vec![
                "seed (unfused)".into(),
                format!("{:.0}", result.seed_tokens_per_s),
                format!("{:.2}", result.seed_gemm_gflops),
            ],
            vec![
                "fast (fused+packed)".into(),
                format!("{:.0}", result.fast_tokens_per_s),
                format!("{:.2}", result.fast_gemm_gflops),
            ],
        ],
    );
    println!(
        "\nspeedup: {:.2}x   tokens identical: {}",
        result.speedup, result.tokens_equal
    );

    let json = serde_json::to_string_pretty(&result).expect("serialize");
    std::fs::write("BENCH_decode.json", &json).expect("write BENCH_decode.json");
    println!("[-> BENCH_decode.json]");

    assert!(tokens_equal, "fast path diverged from the reference tokens");
}
