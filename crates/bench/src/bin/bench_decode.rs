//! Executed Deep-Fusion decode benchmark: the seed functional path
//! (per-op allocation, `cat_rows` KV rebuild, unpacked GEMMs) against the
//! fast path (packed weights, Fig. 1(c) fused region kernels, amortized KV,
//! scratch reuse), on the same tiny-GPT 64-token greedy decode, in the same
//! process — plus the batch/precision sweep of the M-row dispatcher: for
//! each (M ∈ {1, 2, 4, 8, 16}) × (FP32, INT8) the batched session decodes
//! M sequences per step, streaming the packed weights once per step instead
//! of once per sequence (Sec. III-C amortization; Sec. III-D INT8 halves
//! the stream again).
//!
//! Prints tables and writes `BENCH_decode.json` with the batch-1 results
//! (unchanged fields), the per-(M, dtype) sweep (aggregate tokens/s,
//! per-step latency, effective weight-stream GB/s), the INT8/FP32 batch-1
//! throughput ratio, and the dispatcher's calibrated microkernel choices.
//!
//! * `--smoke` — tiny model, M ∈ {1, 2} only, no JSON: a CI gate that the
//!   batched and quantized paths still decode correctly.

use dsi_bench::print_table;
use dsi_kernels::blocked::PanelWeights;
use dsi_kernels::dispatch;
use dsi_model::fast::{PackedModel, QuantizedPackedModel};
use dsi_model::reference::GptModel;
use dsi_model::{zoo, GptConfig};
use serde::Serialize;
use std::time::Instant;

const PROMPT: [usize; 4] = [1, 2, 3, 4];
const GEN_TOKENS: usize = 60; // prompt 4 + 60 generated = 64-token sequence
const LAYERS: usize = 4;
const REPS: usize = 5;

/// Batch sizes the dispatcher distinguishes.
const SWEEP_M: [usize; 5] = [1, 2, 4, 8, 16];
/// Generated tokens per sequence in the sweep (timed region is the decode
/// loop: `gen - 1` single-token steps after the prompt step). Short
/// contexts keep the per-row attention term small so the sweep isolates
/// the weight-stream amortization the M-row kernels target.
const SWEEP_GEN: usize = 16;
/// INT8 quantization group size for the sweep model.
const GROUP: usize = 64;

#[derive(Serialize)]
struct DecodeResult {
    unit: String,
    model: String,
    layers: usize,
    hidden: usize,
    prompt_tokens: usize,
    gen_tokens: usize,
    reps: usize,
    seed_tokens_per_s: f64,
    fast_tokens_per_s: f64,
    speedup: f64,
    seed_gemm_gflops: f64,
    fast_gemm_gflops: f64,
    tokens_equal: bool,
    sweep_model: String,
    sweep_hidden: usize,
    sweep_layers: usize,
    sweep_gen_tokens: usize,
    /// Bytes one decode step streams through the packed FP32 weights.
    weight_stream_bytes_f32: usize,
    /// Same for the group-quantized INT8 panels (q bytes + scale bytes).
    weight_stream_bytes_int8: usize,
    /// INT8 batch-1 aggregate tokens/s over FP32 batch-1 (the Sec. III-D
    /// claim: memory-bound decode speeds up when the stream shrinks).
    int8_over_f32_batch1: f64,
    sweep: Vec<SweepEntry>,
    /// Calibrated microkernel row-block choice per probed batch size.
    dispatch: Vec<DispatchEntry>,
}

#[derive(Serialize)]
struct SweepEntry {
    dtype: String,
    batch: usize,
    /// Timed decode steps (each advances `batch` sequences by one token).
    steps: usize,
    aggregate_tokens_per_s: f64,
    /// Wall-clock per decode step — the per-token latency each sequence
    /// observes.
    step_latency_ms: f64,
    /// Weight bytes streamed per unit time: `stream_bytes × steps / dt`.
    effective_gb_per_s: f64,
}

#[derive(Serialize)]
struct DispatchEntry {
    m: usize,
    f32_mr: usize,
    int8_mr: usize,
}

/// GEMM FLOPs of one full greedy decode (prompt + generation), counting the
/// four layer GEMMs and the tied-embedding logits projection.
fn decode_gemm_flops(c: &dsi_model::GptConfig, prompt: usize, gen: usize) -> f64 {
    let h = c.hidden as f64;
    let per_row = 2.0 * (h * 3.0 * h + h * h + h * 4.0 * h + 4.0 * h * h) * c.layers as f64
        + 2.0 * h * c.vocab as f64;
    per_row * (prompt + gen - 1) as f64
}

/// The sweep model: big enough that a decode step is weight-stream-bound
/// (the regime the M-row amortization targets — the FP32 weights, ~57 MB,
/// exceed any LLC so every step streams from DRAM), small enough for CI.
fn sweep_config() -> GptConfig {
    GptConfig {
        name: "bench-384".into(),
        hidden: 384,
        layers: 8,
        heads: 8,
        vocab: 512,
        max_seq: 64,
    }
}

fn sweep_prompts(m: usize) -> Vec<Vec<usize>> {
    (0..m).map(|i| vec![1 + i % 7, 2 + i % 5, 3 + i % 11, 4 + i % 3]).collect()
}

/// Time the steady-state decode loop of a batched session: prompt outside
/// the timer, then step until every sequence hits its cap. Returns
/// (best seconds, steps per rep, tokens generated in the timed region).
fn time_batched<B: PanelWeights>(
    pm: &PackedModel<'_, B>,
    m: usize,
    gen: usize,
    reps: usize,
) -> (f64, usize, usize) {
    let prompts = sweep_prompts(m);
    let mut best = f64::INFINITY;
    let mut steps = 0usize;
    for _ in 0..reps {
        let mut sess = pm.batched_session(&prompts, gen);
        sess.prompt();
        let t0 = Instant::now();
        let mut n = 0usize;
        while sess.seqs.iter().any(|s| !s.finished) {
            sess.step();
            n += 1;
        }
        let dt = t0.elapsed().as_secs_f64();
        for i in 0..m {
            assert_eq!(sess.output(i).len(), gen, "sequence {i} under-generated");
        }
        best = best.min(dt);
        steps = n;
    }
    (best, steps, m * steps)
}

fn smoke() {
    let config = zoo::tiny(2);
    let model = GptModel::random(config, 7);
    let packed = PackedModel::pack(&model);
    let quant = QuantizedPackedModel::quantize_pack(&model, 32);
    for m in [1usize, 2] {
        let prompts = sweep_prompts(m);
        let mut sess = packed.batched_session(&prompts, 6);
        sess.run();
        // Batched FP32 must be token-identical to per-sequence decode.
        for (i, p) in prompts.iter().enumerate() {
            let want = packed.session(p.len()).generate(p, 6);
            assert_eq!(sess.output(i), &want[..], "batched m={m} seq {i} diverged");
        }
        // INT8 must decode to completion (fidelity bounds are proptested).
        let mut qsess = quant.batched_session(&prompts, 6);
        qsess.run();
        for i in 0..m {
            assert_eq!(qsess.output(i).len(), 6);
        }
    }
    println!("bench_decode --smoke: batched f32 token-identical, int8 decodes (m=1,2)");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let config = zoo::tiny(LAYERS);
    let model = GptModel::random(config.clone(), 42);
    let packed = PackedModel::pack(&model);

    // Warm-up + correctness: both paths must emit the same tokens.
    let want = model.generate(&PROMPT, GEN_TOKENS);
    let got = packed.session(PROMPT.len()).generate(&PROMPT, GEN_TOKENS);
    let tokens_equal = want == got;

    // Seed path: fresh KV cache per rep, exactly as `GptModel::generate`
    // runs in the rest of the repo.
    let mut seed_best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = model.generate(&PROMPT, GEN_TOKENS);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(out.len(), GEN_TOKENS);
        seed_best = seed_best.min(dt);
    }

    // Fast path: packing cost is paid once at model load (outside the
    // loop, like weight loading); each rep opens a fresh session (scratch +
    // KV reservation) and decodes.
    let mut fast_best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = packed.session(PROMPT.len()).generate(&PROMPT, GEN_TOKENS);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(out.len(), GEN_TOKENS);
        fast_best = fast_best.min(dt);
    }

    // --- Batch/precision sweep over the M-row dispatcher. ---
    let sc = sweep_config();
    let sweep_model = GptModel::random(sc.clone(), 123);
    let sweep_f32 = PackedModel::pack(&sweep_model);
    let sweep_int8 = QuantizedPackedModel::quantize_pack(&sweep_model, GROUP);
    let f32_bytes = sweep_f32.weight_stream_bytes();
    let int8_bytes = sweep_int8.weight_stream_bytes();

    let mut sweep = Vec::new();
    for (dtype, f32_path) in [("f32", true), ("int8", false)] {
        for m in SWEEP_M {
            let (dt, steps, tokens) = if f32_path {
                time_batched(&sweep_f32, m, SWEEP_GEN, REPS)
            } else {
                time_batched(&sweep_int8, m, SWEEP_GEN, REPS)
            };
            let bytes = if f32_path { f32_bytes } else { int8_bytes };
            sweep.push(SweepEntry {
                dtype: dtype.into(),
                batch: m,
                steps,
                aggregate_tokens_per_s: tokens as f64 / dt,
                step_latency_ms: dt / steps as f64 * 1e3,
                effective_gb_per_s: bytes as f64 * steps as f64 / dt / 1e9,
            });
        }
    }
    let batch1 = |d: &str| {
        sweep
            .iter()
            .find(|e| e.dtype == d && e.batch == 1)
            .map(|e| e.aggregate_tokens_per_s)
            .unwrap_or(f64::NAN)
    };
    let int8_over_f32_batch1 = batch1("int8") / batch1("f32");
    let dispatch: Vec<DispatchEntry> = dispatch::summary()
        .into_iter()
        .map(|(m, f32_mr, int8_mr)| DispatchEntry { m, f32_mr, int8_mr })
        .collect();

    let flops = decode_gemm_flops(&config, PROMPT.len(), GEN_TOKENS);
    let result = DecodeResult {
        unit: "tokens/s".to_string(),
        model: config.name.clone(),
        layers: config.layers,
        hidden: config.hidden,
        prompt_tokens: PROMPT.len(),
        gen_tokens: GEN_TOKENS,
        reps: REPS,
        seed_tokens_per_s: GEN_TOKENS as f64 / seed_best,
        fast_tokens_per_s: GEN_TOKENS as f64 / fast_best,
        speedup: seed_best / fast_best,
        seed_gemm_gflops: flops / seed_best / 1e9,
        fast_gemm_gflops: flops / fast_best / 1e9,
        tokens_equal,
        sweep_model: sc.name.clone(),
        sweep_hidden: sc.hidden,
        sweep_layers: sc.layers,
        sweep_gen_tokens: SWEEP_GEN,
        weight_stream_bytes_f32: f32_bytes,
        weight_stream_bytes_int8: int8_bytes,
        int8_over_f32_batch1,
        sweep,
        dispatch,
    };

    println!(
        "Executed Deep-Fusion decode: {} ({} layers, h={}), {}-token greedy decode\n",
        result.model,
        result.layers,
        result.hidden,
        result.prompt_tokens + result.gen_tokens
    );
    print_table(
        &["path", "tokens/s", "GEMM GFLOP/s"],
        &[
            vec![
                "seed (unfused)".into(),
                format!("{:.0}", result.seed_tokens_per_s),
                format!("{:.2}", result.seed_gemm_gflops),
            ],
            vec![
                "fast (fused+packed)".into(),
                format!("{:.0}", result.fast_tokens_per_s),
                format!("{:.2}", result.fast_gemm_gflops),
            ],
        ],
    );
    println!(
        "\nspeedup: {:.2}x   tokens identical: {}",
        result.speedup, result.tokens_equal
    );

    println!(
        "\nBatched decode sweep: {} ({} layers, h={}), {} tokens/sequence\n",
        result.sweep_model, result.sweep_layers, result.sweep_hidden, SWEEP_GEN
    );
    print_table(
        &["dtype", "M", "agg tokens/s", "step ms", "eff GB/s"],
        &result
            .sweep
            .iter()
            .map(|e| {
                vec![
                    e.dtype.clone(),
                    format!("{}", e.batch),
                    format!("{:.0}", e.aggregate_tokens_per_s),
                    format!("{:.3}", e.step_latency_ms),
                    format!("{:.2}", e.effective_gb_per_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\nint8/f32 batch-1 throughput: {:.2}x   (stream {} -> {} bytes/step)",
        result.int8_over_f32_batch1, result.weight_stream_bytes_f32,
        result.weight_stream_bytes_int8
    );
    print_table(
        &["M", "f32 MR", "int8 MR"],
        &result
            .dispatch
            .iter()
            .map(|d| vec![format!("{}", d.m), format!("{}", d.f32_mr), format!("{}", d.int8_mr)])
            .collect::<Vec<_>>(),
    );

    let json = serde_json::to_string_pretty(&result).expect("serialize");
    std::fs::write("BENCH_decode.json", &json).expect("write BENCH_decode.json");
    println!("[-> BENCH_decode.json]");

    assert!(tokens_equal, "fast path diverged from the reference tokens");
}
