//! Fault-tolerance benchmark: the cost of the hardening when nothing fails,
//! and the behaviour of the supervised engine when everything does.
//!
//! Two sections, one JSON (`BENCH_fault.json`):
//! * **overhead** — decode throughput of the threaded TP engine with (a) no
//!   injector attached (the fast configuration `bench_tp` measures), (b) an
//!   injector armed but holding an *empty* fault plan (the hook is consulted
//!   on every barrier/reduce/layer — this is what "zero-cost when disabled"
//!   must mean in practice), and (c) per-chunk checksums enabled on top.
//!   The issue's acceptance bar is <2% overhead for (b) vs (a).
//! * **chaos** — a scripted sweep of fault kinds × injection sites through
//!   the supervisor: every scenario must either recover token-identically
//!   (possibly after degrading the TP degree) or return a typed error —
//!   never hang. Wall time per scenario is recorded; the binary itself is
//!   the no-hang proof since CI runs it under a timeout.
//!
//! Modes:
//! * default — full overhead measurement + chaos sweep, writes the JSON;
//! * `--smoke` — two scripted faults on a tiny model, no JSON: the CI gate
//!   that recovery still works and nothing wedges.

use dsi_bench::print_table;
use dsi_model::reference::GptModel;
use dsi_model::{zoo, GptConfig};
use dsi_parallel::supervisor::{FtConfig, FtSession, RetryPolicy};
use dsi_parallel::tp_exec::TpPackedModel;
use dsi_sim::fault::{FaultKind, FaultPlan, FaultSite, FaultSpec};
use dsi_sim::shmem::CommConfig;
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

const PROMPT: [usize; 4] = [1, 2, 3, 4];
const REPS: usize = 15;

#[derive(Serialize)]
struct ChaosPoint {
    scenario: String,
    kind: String,
    site: String,
    rank: usize,
    recovered: bool,
    tokens_identical: bool,
    rebuilds: usize,
    retries: usize,
    final_tp: usize,
    degradations: Vec<(usize, usize)>,
    wall_ms: f64,
}

#[derive(Serialize)]
struct FaultResult {
    unit: String,
    model: String,
    layers: usize,
    hidden: usize,
    heads: usize,
    prompt_tokens: usize,
    gen_tokens: usize,
    reps: usize,
    tp: usize,
    available_parallelism: usize,
    /// Throughput with no injector attached (what `bench_tp` measures).
    disabled_tokens_per_s: f64,
    /// Injector armed, empty plan: the hook is consulted everywhere.
    armed_idle_tokens_per_s: f64,
    /// Armed + per-chunk checksums on the all-reduce.
    checksum_tokens_per_s: f64,
    /// (disabled - armed_idle) / disabled, percent. Acceptance bar: < 2%.
    overhead_armed_pct: f64,
    overhead_checksum_pct: f64,
    chaos: Vec<ChaosPoint>,
    /// Scenarios that neither recovered nor returned a typed error. The
    /// no-hang criterion: this must be 0 (and the binary must exit).
    unresolved: usize,
}

/// Best-of-REPS decode throughput for each comm configuration. The
/// configurations are measured *interleaved* (one rep of each per round)
/// so slow drift on a busy host biases none of them.
fn measure_all(
    tpm: &Arc<TpPackedModel>,
    cfgs: &[&CommConfig],
    gen: usize,
    want: &[usize],
) -> Vec<f64> {
    let mut best = vec![f64::INFINITY; cfgs.len()];
    for _ in 0..REPS {
        for (i, cfg) in cfgs.iter().enumerate() {
            let mut sess = tpm.session_with(PROMPT.len(), (*cfg).clone(), None);
            let t0 = Instant::now();
            let out = sess.generate(&PROMPT, gen);
            let dt = t0.elapsed().as_secs_f64();
            assert_eq!(out, want, "hardened path diverged");
            best[i] = best[i].min(dt);
        }
    }
    best.into_iter().map(|b| gen as f64 / b).collect()
}

fn kind_name(k: FaultKind) -> &'static str {
    match k {
        FaultKind::Stall { .. } => "stall",
        FaultKind::Exit => "exit",
        FaultKind::Panic => "panic",
        FaultKind::Corrupt => "corrupt",
    }
}

fn site_name(s: FaultSite) -> String {
    match s {
        FaultSite::Barrier { epoch } => format!("barrier@{epoch}"),
        FaultSite::Reduce { epoch } => format!("reduce@{epoch}"),
        FaultSite::Layer { token, layer } => format!("layer{layer}@tok{token}"),
    }
}

/// Run one scripted scenario through the supervisor and record the outcome.
fn chaos_scenario(
    model: &Arc<GptModel>,
    want: &[usize],
    tp: usize,
    gen: usize,
    spec: FaultSpec,
) -> ChaosPoint {
    let plan = FaultPlan::new(vec![spec]);
    let cfg = FtConfig {
        tp,
        comm: CommConfig {
            timeout: Duration::from_millis(250),
            checksum: spec.kind == FaultKind::Corrupt,
            injector: Some(Arc::new(plan.injector())),
        },
        retry: RetryPolicy { max_retries: 8, backoff_ms: 1 },
    };
    let mut ft = FtSession::new(Arc::clone(model), PROMPT.len(), cfg);
    let t0 = Instant::now();
    let out = ft.generate(&PROMPT, gen);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (recovered, tokens_identical) = match &out {
        Ok(tokens) => (true, tokens == want),
        Err(_) => (false, false),
    };
    let r = ft.report();
    ChaosPoint {
        scenario: format!("{}@{}/rank{}", kind_name(spec.kind), site_name(spec.site), spec.rank),
        kind: kind_name(spec.kind).into(),
        site: site_name(spec.site),
        rank: spec.rank,
        recovered,
        tokens_identical,
        rebuilds: r.rebuilds as usize,
        retries: r.retries as usize,
        final_tp: ft.tp(),
        degradations: r.degradations.clone(),
        wall_ms,
    }
}

fn smoke() {
    let model = Arc::new(GptModel::random(zoo::tiny(2), 42));
    let want = Arc::new(TpPackedModel::shard(&model, 1)).session(PROMPT.len()).generate(&PROMPT, 8);
    for (label, kind) in [
        ("stall", FaultKind::Stall { millis: 600 }),
        ("panic", FaultKind::Panic),
    ] {
        let p = chaos_scenario(
            &model,
            &want,
            2,
            8,
            FaultSpec { rank: 1, site: FaultSite::Layer { token: 2, layer: 1 }, kind },
        );
        assert!(p.recovered && p.tokens_identical, "{label}: {p:?}", p = p.scenario);
        println!("bench_fault --smoke: {label} recovered token-identically ({:.0} ms)", p.wall_ms);
    }
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    // Same shape as bench_tp so the disabled-path numbers are comparable.
    let config = GptConfig {
        name: "bench-fault".into(),
        hidden: 256,
        layers: 6,
        heads: 8,
        vocab: 512,
        max_seq: 128,
    };
    let gen_tokens = 28;
    let tp = 2;
    let model = Arc::new(GptModel::random(config.clone(), 42));
    let tpm = Arc::new(TpPackedModel::shard(&model, tp));
    let want = tpm.session(PROMPT.len()).generate(&PROMPT, gen_tokens);

    let disabled = CommConfig::default();
    let armed = CommConfig {
        injector: Some(Arc::new(FaultPlan::new(Vec::new()).injector())),
        ..CommConfig::default()
    };
    let checksum = CommConfig { checksum: true, ..armed.clone() };

    let tps = measure_all(&tpm, &[&disabled, &armed, &checksum], gen_tokens, &want);
    let (disabled_tps, armed_tps, checksum_tps) = (tps[0], tps[1], tps[2]);
    let pct = |base: f64, x: f64| (base - x) / base * 100.0;

    // Chaos sweep on a small model: every kind at a representative site of
    // each class, against the worker rank and the driver rank.
    let chaos_model = Arc::new(GptModel::random(zoo::tiny(2), 7));
    let chaos_gen = 6;
    let chaos_want =
        Arc::new(TpPackedModel::shard(&chaos_model, 1)).session(PROMPT.len()).generate(&PROMPT, chaos_gen);
    let sites = [
        FaultSite::Barrier { epoch: 3 },
        FaultSite::Reduce { epoch: 14 },
        FaultSite::Layer { token: PROMPT.len() + 1, layer: 1 },
    ];
    let kinds = [
        FaultKind::Stall { millis: 700 },
        FaultKind::Exit,
        FaultKind::Panic,
        FaultKind::Corrupt,
    ];
    let mut chaos = Vec::new();
    for site in sites {
        for kind in kinds {
            if kind == FaultKind::Corrupt && !matches!(site, FaultSite::Reduce { .. }) {
                continue;
            }
            for rank in [0usize, 1] {
                chaos.push(chaos_scenario(&chaos_model, &chaos_want, 2, chaos_gen, FaultSpec {
                    rank,
                    site,
                    kind,
                }));
            }
        }
    }
    let unresolved = chaos.iter().filter(|p| p.recovered && !p.tokens_identical).count();

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let result = FaultResult {
        unit: "tokens/s".into(),
        model: config.name.clone(),
        layers: config.layers,
        hidden: config.hidden,
        heads: config.heads,
        prompt_tokens: PROMPT.len(),
        gen_tokens,
        reps: REPS,
        tp,
        available_parallelism: cores,
        disabled_tokens_per_s: disabled_tps,
        armed_idle_tokens_per_s: armed_tps,
        checksum_tokens_per_s: checksum_tps,
        overhead_armed_pct: pct(disabled_tps, armed_tps),
        overhead_checksum_pct: pct(disabled_tps, checksum_tps),
        chaos,
        unresolved,
    };

    println!(
        "Fault-tolerance: {} ({} layers, h={}, tp={}), {}-token greedy decode, {} core(s)\n",
        result.model, result.layers, result.hidden, tp, PROMPT.len() + gen_tokens, cores
    );
    print_table(
        &["configuration", "tokens/s", "overhead vs disabled"],
        &[
            vec!["injection disabled".into(), format!("{:.0}", disabled_tps), "-".into()],
            vec![
                "injector armed, empty plan".into(),
                format!("{:.0}", armed_tps),
                format!("{:+.2}%", result.overhead_armed_pct),
            ],
            vec![
                "armed + chunk checksums".into(),
                format!("{:.0}", checksum_tps),
                format!("{:+.2}%", result.overhead_checksum_pct),
            ],
        ],
    );

    println!("\nChaos sweep ({} scenarios):", result.chaos.len());
    let rows: Vec<Vec<String>> = result
        .chaos
        .iter()
        .map(|p| {
            vec![
                p.scenario.clone(),
                if p.recovered { "recovered".into() } else { "typed error".into() },
                p.tokens_identical.to_string(),
                format!("{}", p.rebuilds),
                format!("tp={}", p.final_tp),
                format!("{:.0}", p.wall_ms),
            ]
        })
        .collect();
    print_table(
        &["scenario", "outcome", "tokens identical", "rebuilds", "final", "wall ms"],
        &rows,
    );

    let json = serde_json::to_string_pretty(&result).expect("serialize");
    std::fs::write("BENCH_fault.json", &json).expect("write BENCH_fault.json");
    println!("\n[-> BENCH_fault.json]");

    // Acceptance criteria, enforced in-process.
    assert_eq!(result.unresolved, 0, "recovered scenarios must be token-identical");
    for p in &result.chaos {
        assert!(
            p.recovered,
            "{}: generous retry budget should recover, got typed error",
            p.scenario
        );
    }
}
