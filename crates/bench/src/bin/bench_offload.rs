//! Streaming weight-offload benchmark: how much decode throughput the
//! prefetcher buys back when the model does not fit in memory, and what
//! the fault hardening costs when nothing fails.
//!
//! Three sections, one JSON (`BENCH_offload.json`):
//! * **depth curve** — streamed decode throughput and the demand-fetch
//!   (stall) fraction at prefetch depths 0/1/2/4 under a resident budget
//!   of three panels for a six-layer model. On this executed tier the
//!   fetch path (read + checksum + pack) costs far more per panel than a
//!   batched layer step, so the single prefetch worker saturates and the
//!   curve comes out *flat*: the pipeline is tier-bandwidth-bound and
//!   depth cannot add bandwidth, only hide latency — which is exactly
//!   what the table documents (ZeRO-Inference §VI's overlap wins require
//!   compute per layer to approach fetch per panel). Depth 4 also shows
//!   the open-time clamp (the budget holds 2 panels beyond the one in
//!   use). The depth effect that *does* survive the bandwidth bound shows
//!   up in the next section: under latency jitter, a deeper window keeps
//!   goodput higher.
//! * **degraded bandwidth** — seeded `SlowRead` storms against the weight
//!   tier at two depths × two stall grades. Tokens must stay bit-exact and
//!   goodput must hold ≥ 25% of the clean same-depth run (the
//!   recovered-goodput gate).
//! * **armed idle** — decode throughput with no injector vs an injector
//!   armed holding an *empty* plan (the hook is consulted on every panel
//!   read). Acceptance bar: < 2% overhead.
//!
//! Modes:
//! * default — full sweep, writes the JSON, asserts both gates;
//! * `--smoke` — tiny model: clean + storm + dead-prefetcher runs, both
//!   gates asserted, no JSON. CI's no-hang wall-clock gate runs this.

use dsi_bench::print_table;
use dsi_core::StreamedEngine;
use dsi_core::batch::BatchEngine;
use dsi_model::fast::PackedModel;
use dsi_model::reference::GptModel;
use dsi_model::{zoo, GptConfig};
use dsi_sim::fault::{IoFaultInjector, IoFaultKind, IoFaultPlan, IoFaultSite, IoFaultSpec};
use dsi_zero::offload::{OffloadConfig, OffloadStats, OffloadStore};
use serde::Serialize;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct DepthPoint {
    depth: usize,
    effective_depth: usize,
    tokens_per_s: f64,
    hits: u64,
    demand_fetches: u64,
    prefetch_fetches: u64,
    evictions: u64,
    prefetch_dropped: u64,
    /// Fraction of panel acquisitions the decode thread had to wait on —
    /// the stall fraction the prefetcher exists to drive down.
    demand_fraction: f64,
    bytes_read: u64,
    peak_resident_bytes: usize,
}

#[derive(Serialize)]
struct DegradedCell {
    depth: usize,
    stall_millis: u64,
    faults: usize,
    tokens_per_s: f64,
    /// Throughput under the storm relative to the clean run at the same
    /// depth. Acceptance bar: ≥ 0.25.
    goodput_ratio: f64,
    slow_reads: u64,
    stall_ms_injected: u64,
    tokens_identical: bool,
}

#[derive(Serialize)]
struct OffloadBench {
    unit: String,
    model: String,
    layers: usize,
    hidden: usize,
    panel_bytes: usize,
    file_bytes: usize,
    budget_bytes: usize,
    prompt_tokens: usize,
    gen_tokens: usize,
    reps: usize,
    depth_curve: Vec<DepthPoint>,
    degraded: Vec<DegradedCell>,
    /// No injector attached.
    disabled_tokens_per_s: f64,
    /// Injector armed, empty plan: consulted on every panel read.
    armed_idle_tokens_per_s: f64,
    /// (disabled - armed) / disabled, percent. Acceptance bar: < 2%.
    overhead_armed_pct: f64,
    min_goodput_ratio: f64,
}

/// Per-slot prompts for a batched run (distinct so cross-slot KV bleed
/// would show up as a divergence).
fn batch_prompts(slots: usize) -> Vec<Vec<usize>> {
    (0..slots).map(|s| vec![1 + s % 7, 2 + s % 5, 3, 4]).collect()
}

/// One streamed greedy decode of `slots` concurrent sequences over a fresh
/// store; returns the per-slot streams, the wall seconds, and the store's
/// final counters. Batching is the point: per layer the fetch cost is paid
/// once while the compute scales with the batch, which is what makes
/// prefetch overlap visible (and is how ZeRO-Inference amortizes the
/// weight stream).
fn run_streamed(
    path: &Path,
    budget: usize,
    depth: usize,
    faults: Option<Arc<IoFaultInjector>>,
    gen: usize,
    slots: usize,
) -> (Vec<Vec<usize>>, f64, OffloadStats, usize) {
    let cfg = OffloadConfig {
        resident_budget_bytes: budget,
        prefetch_depth: depth,
        faults,
        ..OffloadConfig::default()
    };
    let store = OffloadStore::open(path, cfg).expect("open store");
    let effective = store.effective_depth();
    let mut eng = StreamedEngine::new(store, slots, 65_536);
    let prompts = batch_prompts(slots);
    let t0 = Instant::now();
    let mut streams: Vec<Vec<usize>> = prompts
        .iter()
        .enumerate()
        .map(|(s, p)| vec![eng.prefill(s, p).expect("prefill")])
        .collect();
    let ids: Vec<usize> = (0..slots).collect();
    for _ in 1..gen {
        let mut out = Vec::new();
        eng.decode_step(&ids, &mut out).expect("decode");
        for (s, t) in out.into_iter().enumerate() {
            streams[s].push(t);
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    (streams, dt, eng.store().stats(), effective)
}

/// Resident-path oracle streams for the same batch.
fn oracle_streams(model: &GptModel, gen: usize, slots: usize) -> Vec<Vec<usize>> {
    let pm = PackedModel::pack(model);
    batch_prompts(slots).iter().map(|p| pm.session(p.len()).generate(p, gen)).collect()
}

/// Best-of-`reps` throughput for each fault configuration, measured
/// interleaved (one rep of each per round) so drift biases none of them.
#[allow(clippy::too_many_arguments)]
fn measure_interleaved(
    path: &Path,
    budget: usize,
    depth: usize,
    cfgs: &[Option<Arc<IoFaultInjector>>],
    gen: usize,
    slots: usize,
    want: &[Vec<usize>],
    reps: usize,
) -> Vec<f64> {
    let mut best = vec![f64::INFINITY; cfgs.len()];
    for _ in 0..reps {
        for (i, faults) in cfgs.iter().enumerate() {
            let (streams, dt, _, _) =
                run_streamed(path, budget, depth, faults.clone(), gen, slots);
            assert_eq!(streams, want, "streamed decode diverged");
            best[i] = best[i].min(dt);
        }
    }
    best.into_iter().map(|b| (slots * gen) as f64 / b).collect()
}

/// A pure-`SlowRead` storm: `n` stalls of `millis` each, spread over the
/// first `max_call` panel reads (call 0, the open-time probe, is skipped so
/// the storm hits steady-state decode, not `open`).
fn slow_storm(seed: u64, n: usize, max_call: u64, millis: u64) -> IoFaultPlan {
    let mut s = seed;
    let mut next = move || -> u64 {
        s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let specs = (0..n)
        .map(|_| IoFaultSpec {
            site: IoFaultSite::Read { call: 1 + next() % (max_call - 1) },
            kind: IoFaultKind::SlowRead { millis },
        })
        .collect();
    IoFaultPlan::new(specs)
}

fn save_model(config: GptConfig, seed: u64, tag: &str) -> (GptModel, std::path::PathBuf) {
    let m = GptModel::random(config, seed);
    let path = std::env::temp_dir()
        .join(format!("dsi_bench_offload_{tag}_{}.bin", std::process::id()));
    dsi_model::io::save(&m, &path).expect("save weight file");
    (m, path)
}

fn smoke() {
    let (model, path) = save_model(zoo::tiny(3), 42, "smoke");
    let gen = 8;
    let slots = 2;
    let want = oracle_streams(&model, gen, slots);
    let probe = OffloadStore::open(&path, OffloadConfig::default()).expect("probe");
    let budget = probe.panel_bytes() * 2;
    drop(probe);

    // Clean streamed decode under a model-bigger-than-budget store.
    let (streams, clean_dt, stats, _) = run_streamed(&path, budget, 1, None, gen, slots);
    assert_eq!(streams, want, "clean streamed decode diverged");
    assert!(stats.evictions > 0, "two-panel budget must evict");
    println!("bench_offload --smoke: clean streamed decode token-identical");

    // SlowRead storm: bit-exact and ≥ 25% goodput.
    let storm = slow_storm(7, 6, 40, 4);
    let (streams, storm_dt, stats, _) =
        run_streamed(&path, budget, 1, Some(Arc::new(storm.injector())), gen, slots);
    assert_eq!(streams, want, "storm streamed decode diverged");
    assert!(stats.slow_reads > 0, "storm never landed");
    let ratio = clean_dt / storm_dt;
    assert!(ratio >= 0.25, "recovered goodput {ratio:.2} below the 0.25 gate");
    println!("bench_offload --smoke: SlowRead storm bit-exact, goodput {ratio:.2}");

    // Dead prefetcher: synchronous fallback, still bit-exact.
    let cfg = OffloadConfig {
        resident_budget_bytes: budget,
        prefetch_depth: 1,
        ..OffloadConfig::default()
    };
    let store = OffloadStore::open(&path, cfg).expect("open store");
    store.kill_prefetcher();
    let mut eng = StreamedEngine::new(store, 1, 4096);
    let prompt = &batch_prompts(1)[0];
    let mut tokens = vec![eng.prefill(0, prompt).expect("prefill")];
    for _ in 1..gen {
        eng.decode_step(&[0], &mut tokens).expect("decode");
    }
    assert_eq!(tokens, want[0], "sync-fallback decode diverged");
    assert!(eng.store().stats().sync_fallbacks > 0, "fallback path never ran");
    println!("bench_offload --smoke: dead prefetcher degraded to sync fetch, bit-exact");

    // Armed-idle gate on a quick best-of sweep.
    let cfgs: [Option<Arc<IoFaultInjector>>; 2] =
        [None, Some(Arc::new(IoFaultPlan::new(Vec::new()).injector()))];
    let tps = measure_interleaved(&path, budget, 1, &cfgs, gen, slots, &want, 12);
    let overhead = (tps[0] - tps[1]) / tps[0] * 100.0;
    assert!(overhead < 2.0, "armed-idle overhead {overhead:.2}% exceeds the 2% gate");
    println!("bench_offload --smoke: armed-idle injector overhead {overhead:+.2}%");

    let _ = std::fs::remove_file(&path);
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let config = GptConfig {
        name: "bench-offload".into(),
        hidden: 128,
        layers: 6,
        heads: 8,
        vocab: 256,
        max_seq: 64,
    };
    let gen_tokens = 16;
    let slots = 16;
    let reps = 9;
    let (model, path) = save_model(config.clone(), 42, "full");
    let want = oracle_streams(&model, gen_tokens, slots);

    let probe = OffloadStore::open(&path, OffloadConfig::default()).expect("probe");
    let panel_bytes = probe.panel_bytes();
    let file_bytes = probe.file_bytes();
    drop(probe);
    let budget = panel_bytes * 3;

    // Depth curve: clean runs, best-of-reps per depth.
    let mut depth_curve = Vec::new();
    let mut clean_tps = std::collections::BTreeMap::new();
    for depth in [0usize, 1, 2, 4] {
        let mut best_dt = f64::INFINITY;
        let mut last = None;
        for _ in 0..reps {
            let (streams, dt, stats, eff) =
                run_streamed(&path, budget, depth, None, gen_tokens, slots);
            assert_eq!(streams, want, "depth {depth}: streamed decode diverged");
            best_dt = best_dt.min(dt);
            last = Some((stats, eff));
        }
        let (stats, effective_depth) = last.unwrap();
        let tps = (slots * gen_tokens) as f64 / best_dt;
        clean_tps.insert(depth, tps);
        let waited = stats.demand_fetches + stats.sync_fallbacks;
        depth_curve.push(DepthPoint {
            depth,
            effective_depth,
            tokens_per_s: tps,
            hits: stats.hits,
            demand_fetches: stats.demand_fetches,
            prefetch_fetches: stats.prefetch_fetches,
            evictions: stats.evictions,
            prefetch_dropped: stats.prefetch_dropped,
            demand_fraction: waited as f64 / (waited + stats.hits).max(1) as f64,
            bytes_read: stats.bytes_read,
            peak_resident_bytes: stats.peak_resident_bytes,
        });
    }

    // Degraded-bandwidth cells: SlowRead storms, goodput vs same-depth clean.
    let mut degraded = Vec::new();
    for depth in [0usize, 2] {
        for stall_millis in [2u64, 6] {
            let n_faults = 16usize;
            let storm = slow_storm(11 + depth as u64, n_faults, 120, stall_millis);
            let (streams, dt, stats, _) = run_streamed(
                &path,
                budget,
                depth,
                Some(Arc::new(storm.injector())),
                gen_tokens,
                slots,
            );
            let tps = (slots * gen_tokens) as f64 / dt;
            degraded.push(DegradedCell {
                depth,
                stall_millis,
                faults: n_faults,
                tokens_per_s: tps,
                goodput_ratio: tps / clean_tps[&depth],
                slow_reads: stats.slow_reads,
                stall_ms_injected: stats.stall_ms,
                tokens_identical: streams == want,
            });
        }
    }

    // Armed-idle overhead at depth 2.
    let cfgs: [Option<Arc<IoFaultInjector>>; 2] =
        [None, Some(Arc::new(IoFaultPlan::new(Vec::new()).injector()))];
    let tps = measure_interleaved(&path, budget, 2, &cfgs, gen_tokens, slots, &want, 15);
    let (disabled_tps, armed_tps) = (tps[0], tps[1]);
    let overhead_armed_pct = (disabled_tps - armed_tps) / disabled_tps * 100.0;
    let min_goodput_ratio =
        degraded.iter().map(|c| c.goodput_ratio).fold(f64::INFINITY, f64::min);

    let result = OffloadBench {
        unit: "tokens/s".into(),
        model: config.name.clone(),
        layers: config.layers,
        hidden: config.hidden,
        panel_bytes,
        file_bytes,
        budget_bytes: budget,
        prompt_tokens: 4,
        gen_tokens,
        reps,
        depth_curve,
        degraded,
        disabled_tokens_per_s: disabled_tps,
        armed_idle_tokens_per_s: armed_tps,
        overhead_armed_pct,
        min_goodput_ratio,
    };

    println!(
        "Streaming offload: {} ({} layers, h={}), panel {} KiB, file {} KiB, budget {} KiB\n",
        result.model,
        result.layers,
        result.hidden,
        panel_bytes / 1024,
        file_bytes / 1024,
        budget / 1024
    );
    print_table(
        &["depth", "effective", "tokens/s", "demand frac", "prefetched", "dropped", "evictions"],
        &result
            .depth_curve
            .iter()
            .map(|p| {
                vec![
                    p.depth.to_string(),
                    p.effective_depth.to_string(),
                    format!("{:.0}", p.tokens_per_s),
                    format!("{:.2}", p.demand_fraction),
                    p.prefetch_fetches.to_string(),
                    p.prefetch_dropped.to_string(),
                    p.evictions.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    println!("\nDegraded weight tier (SlowRead storms):");
    print_table(
        &["depth", "stall ms", "tokens/s", "goodput", "slow reads", "bit-exact"],
        &result
            .degraded
            .iter()
            .map(|c| {
                vec![
                    c.depth.to_string(),
                    c.stall_millis.to_string(),
                    format!("{:.0}", c.tokens_per_s),
                    format!("{:.2}", c.goodput_ratio),
                    c.slow_reads.to_string(),
                    c.tokens_identical.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    println!(
        "\nArmed-idle injector: {:.0} vs {:.0} tokens/s ({:+.2}%)",
        disabled_tps, armed_tps, overhead_armed_pct
    );

    let json = serde_json::to_string_pretty(&result).expect("serialize");
    std::fs::write("BENCH_offload.json", &json).expect("write BENCH_offload.json");
    println!("[-> BENCH_offload.json]");
    let _ = std::fs::remove_file(&path);

    // Acceptance criteria, enforced in-process.
    for c in &result.degraded {
        assert!(c.tokens_identical, "depth {} stall {}ms: storm corrupted tokens", c.depth, c.stall_millis);
    }
    assert!(
        result.min_goodput_ratio >= 0.25,
        "recovered goodput {:.2} below the 0.25 gate",
        result.min_goodput_ratio
    );
    assert!(
        result.overhead_armed_pct < 2.0,
        "armed-idle overhead {:.2}% exceeds the 2% gate",
        result.overhead_armed_pct
    );
}
