//! Serving-runtime benchmark: what admission control buys under overload.
//!
//! The serving claim is load-shedding's classic trade: under an offered
//! load beyond capacity, an admit-everything server completes every request
//! but with unbounded queueing latency, while a bounded-admission server
//! (small queue + deadlines) keeps tail latency flat at the cost of typed
//! rejections — and loses (almost) no goodput doing it, because the engine
//! is the bottleneck either way. `bench_serve` measures exactly that, plus
//! the circuit breaker's fast-fail value under a fault storm.
//!
//! Sections of `BENCH_serve.json`:
//! * **regimes** — offered load at 0.5× / 1× / 3× of the calibrated service
//!   rate, each with shedding ON (queue 4, deadline 10× service time) and
//!   OFF (unbounded queue, no deadline). Each cell records the full
//!   [`ServeReport`] (goodput, p50/p95/p99, rejection counts).
//! * **engines** — the same 3× overload offered to the two engine
//!   disciplines on the *same* model and core budget: single-flight (one
//!   request owns the engine end-to-end) vs continuous batching (paged KV,
//!   iteration-level admission). The continuous cell carries the scheduler
//!   report: batch-occupancy and tokens-per-step histograms plus page-pool
//!   stats (in use, high-water, fragmentation).
//! * **breaker** — a scripted storm of permanent faults served with the
//!   breaker enabled vs disabled: the enabled arm fast-fails doomed
//!   requests instead of burning a detection timeout on each.
//!
//! Acceptance criteria (asserted in-process, full mode):
//! * overloaded regime: p99 with shedding ≤ 0.5× p99 without;
//! * overloaded regime: goodput with shedding ≥ 0.9× without;
//! * engines: continuous goodput ≥ 2× single-flight at 3× overload, with
//!   zero external fragmentation in the page pool;
//! * the breaker arm opens and fast-fails at least once.
//!
//! Modes: default — full sweep + JSON; `--smoke` — one overloaded run per
//! arm on a tiny model (no JSON): the CI gate that overload + storm neither
//! hang nor break the accounting invariants, and that *both* engine
//! disciplines survive the same burst — gating on the continuous arm's
//! scheduler invariants (occupancy > 1, fragmentation = 0).

use dsi_bench::print_table;
use dsi_core::batch::{BatchEngine, FaultyEngine};
use dsi_model::fast::PackedModel;
use dsi_model::paged::PagedEngine;
use dsi_model::reference::GptModel;
use dsi_model::zoo;
use dsi_serve::{
    ContinuousConfig, EngineMode, Outcome, Request, ServeConfig, ServeReport, Server,
};
use dsi_sim::fault::{
    EngineFaultInjector, EngineFaultPlan, FaultKind, FaultPlan, FaultSite, FaultSpec,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

const PROMPT_LEN: usize = 4;
const GEN_TOKENS: usize = 24;
const TP: usize = 2;
const SEED: u64 = 42;

fn request(i: usize) -> Request {
    Request {
        prompt: (0..PROMPT_LEN).map(|j| (i + j) % 101).collect(),
        n_tokens: GEN_TOKENS,
        deadline: None,
    }
}

/// Model for the engine-discipline comparison. The batching win is weight
/// streaming amortized across the M resident rows, so it only shows on a
/// config whose per-layer weights exceed cache (hidden 384, as in the
/// `bench_decode` batch sweep) — `tiny`'s 64-wide weights sit in L1 and
/// would understate continuous batching by an order of magnitude.
fn engine_model() -> dsi_model::config::GptConfig {
    dsi_model::config::GptConfig {
        name: "bench-384".into(),
        hidden: 384,
        layers: 8,
        heads: 8,
        vocab: 512,
        max_seq: 64,
    }
}

/// Mean sequential service time: the engine's capacity is 1/service.
fn calibrate(model: &Arc<GptModel>, tp: usize, reps: usize) -> Duration {
    let mut cfg = ServeConfig::new(tp);
    cfg.comm.timeout = Duration::from_secs(5);
    let srv = Server::start(Arc::clone(model), cfg);
    // Warm-up: first request builds the TP group.
    srv.submit(request(0)).unwrap().wait();
    let t0 = Instant::now();
    for i in 0..reps {
        let Outcome::Completed { .. } = srv.submit(request(i)).unwrap().wait() else {
            panic!("calibration request failed");
        };
    }
    let per = t0.elapsed() / reps as u32;
    srv.drain(Duration::from_secs(5));
    per
}

fn serve_cfg(shedding: bool, service: Duration) -> ServeConfig {
    let mut cfg = ServeConfig::new(TP);
    cfg.comm.timeout = Duration::from_secs(5);
    if shedding {
        cfg.queue_capacity = 4;
        cfg.kv_budget_tokens = 4096;
        cfg.default_deadline = Some(service * 10);
    } else {
        cfg.queue_capacity = usize::MAX / 2;
        cfg.kv_budget_tokens = usize::MAX / 2;
        cfg.default_deadline = None;
    }
    cfg
}

/// Offer `n` requests at `rate_mult × (1/service)` with seeded exponential
/// inter-arrivals, wait for every ticket, drain, and return the report.
fn run_regime(
    model: &Arc<GptModel>,
    service: Duration,
    rate_mult: f64,
    shedding: bool,
    n: usize,
) -> ServeReport {
    let srv = Server::start(Arc::clone(model), serve_cfg(shedding, service));
    let mut rng = ChaCha8Rng::seed_from_u64(SEED ^ (rate_mult.to_bits() ^ shedding as u64));
    let mean_gap = service.as_secs_f64() / rate_mult;
    let start = Instant::now();
    let mut next_arrival = 0.0f64;
    let mut tickets = Vec::new();
    for i in 0..n {
        // Exponential inter-arrival against an absolute schedule: oversleep
        // on one gap is repaid by a burst on the next, so the offered rate
        // holds even with coarse sleep granularity. (No spinning — on a
        // single core a spinning submitter starves the engine itself.)
        next_arrival += -rng.unit_f64().max(1e-12).ln() * mean_gap;
        let rem = next_arrival - start.elapsed().as_secs_f64();
        if rem > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(rem));
        }
        if let Ok(t) = srv.submit(request(i)) {
            tickets.push(t);
        }
    }
    for t in tickets {
        t.wait(); // every admitted ticket resolves; rejections were typed
    }
    srv.drain(Duration::from_secs(30))
}

/// Config for the engine-discipline comparison: tp=1, a bounded queue of 8,
/// no deadlines — queue overflow is the only shedding, so completed-per-
/// second isolates what the engine discipline itself buys.
fn engine_cfg(mode: EngineMode) -> ServeConfig {
    let mut cfg = ServeConfig::new(1);
    cfg.queue_capacity = 8;
    cfg.kv_budget_tokens = 4096;
    cfg.default_deadline = None;
    cfg.mode = mode;
    cfg
}

fn continuous_mode() -> EngineMode {
    EngineMode::Continuous(ContinuousConfig {
        max_slots: 8,
        pages_total: 64,
        page_tokens: 16,
        ..ContinuousConfig::default()
    })
}

/// Relative decode-throughput cost of *arming* the fault machinery with no
/// faults scripted: the scheduler's per-step `catch_unwind` plus the
/// `FaultyEngine` wrapper's empty-plan scan, measured against the bare
/// engine on identical work. min-of-N wall times; returns armed/bare − 1.
fn armed_idle_overhead(model: &Arc<GptModel>) -> f64 {
    const SLOTS: usize = 4;
    const STEPS: usize = 48;
    let pm = PackedModel::pack(model);
    let prompts: Vec<Vec<usize>> = (0..SLOTS).map(|i| vec![i + 1, i + 2, i + 3]).collect();
    let slots: Vec<usize> = (0..SLOTS).collect();

    let run_bare = || {
        let mut eng = PagedEngine::new(&pm, SLOTS, 64, 16);
        for (s, p) in prompts.iter().enumerate() {
            eng.prefill(s, p).unwrap();
        }
        let mut out = Vec::with_capacity(SLOTS);
        let t0 = Instant::now();
        for _ in 0..STEPS {
            out.clear();
            eng.decode_step(&slots, &mut out).unwrap();
        }
        t0.elapsed()
    };
    let run_armed = || {
        let inj = Arc::new(EngineFaultPlan::new(Vec::new()).injector());
        let mut eng = FaultyEngine::new(PagedEngine::new(&pm, SLOTS, 64, 16), inj);
        for (s, p) in prompts.iter().enumerate() {
            eng.prefill(s, p).unwrap();
        }
        let mut out = Vec::with_capacity(SLOTS);
        let t0 = Instant::now();
        for _ in 0..STEPS {
            out.clear();
            catch_unwind(AssertUnwindSafe(|| eng.decode_step(&slots, &mut out)))
                .unwrap()
                .unwrap();
        }
        t0.elapsed()
    };

    // Interleaved min-of-5: the minima see the same cache/frequency state.
    let mut bare = Duration::MAX;
    let mut armed = Duration::MAX;
    for _ in 0..5 {
        bare = bare.min(run_bare());
        armed = armed.min(run_armed());
    }
    armed.as_secs_f64() / bare.as_secs_f64() - 1.0
}

/// The continuous arm under an injected engine-fault storm (panics, stalls
/// past the step deadline, corruption, page-exhaustion bursts).
fn faulted_continuous_mode() -> (EngineMode, Arc<EngineFaultInjector>) {
    let mode = EngineMode::Continuous(ContinuousConfig {
        max_slots: 8,
        pages_total: 64,
        page_tokens: 16,
        step_deadline: Some(Duration::from_millis(10)),
        ..ContinuousConfig::default()
    });
    // Stalls of 10–20ms against the 10ms step deadline; ~10 faults across
    // the first 60 engine calls of the burst.
    let plan = EngineFaultPlan::random(SEED ^ 0xFA17, 10, 60, 20);
    (mode, Arc::new(plan.injector()))
}

/// Offer the same seeded 3×-overload burst to one engine discipline.
fn run_engine_arm(
    model: &Arc<GptModel>,
    service: Duration,
    rate_mult: f64,
    mode: EngineMode,
    faults: Option<Arc<EngineFaultInjector>>,
    n: usize,
) -> ServeReport {
    let mut cfg = engine_cfg(mode);
    cfg.engine_faults = faults;
    let srv = Server::start(Arc::clone(model), cfg);
    // Same seed for both arms: an identical arrival schedule, so the engine
    // discipline is the only variable.
    let mut rng = ChaCha8Rng::seed_from_u64(SEED ^ 0xe17);
    let mean_gap = service.as_secs_f64() / rate_mult;
    let start = Instant::now();
    let mut next_arrival = 0.0f64;
    let mut tickets = Vec::new();
    for i in 0..n {
        next_arrival += -rng.unit_f64().max(1e-12).ln() * mean_gap;
        let rem = next_arrival - start.elapsed().as_secs_f64();
        if rem > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(rem));
        }
        if let Ok(t) = srv.submit(request(i)) {
            tickets.push(t);
        }
    }
    for t in tickets {
        t.wait();
    }
    srv.drain(Duration::from_secs(30))
}

/// A storm of scripted permanent faults, breaker on/off.
fn run_storm(model: &Arc<GptModel>, breaker: bool, n: usize) -> ServeReport {
    let mut cfg = ServeConfig::new(TP);
    cfg.comm.timeout = Duration::from_millis(100);
    cfg.retry.max_retries = 0;
    cfg.retry.backoff_ms = 0;
    cfg.breaker.enabled = breaker;
    cfg.breaker.failure_threshold = 1;
    cfg.breaker.open_window = Duration::from_millis(400);
    let storm = FaultPlan::new(
        (0..6)
            .map(|_| FaultSpec {
                rank: 1,
                site: FaultSite::Barrier { epoch: 0 },
                kind: FaultKind::Exit,
            })
            .collect(),
    );
    cfg.comm.injector = Some(Arc::new(storm.injector()));
    let srv = Server::start(Arc::clone(model), cfg);
    let mut tickets = Vec::new();
    for i in 0..n {
        if let Ok(t) = srv.submit(request(i)) {
            tickets.push(t);
        }
        // Paced slower than the engine so breaker state — not queue depth —
        // decides each admission, and open windows elapse mid-run.
        std::thread::sleep(Duration::from_millis(30));
    }
    for t in tickets {
        t.wait();
    }
    srv.drain(Duration::from_secs(30))
}

#[derive(Serialize)]
struct RegimePoint {
    regime: &'static str,
    rate_multiplier: f64,
    shedding: bool,
    offered_rps: f64,
    report: ServeReport,
}

#[derive(Serialize)]
struct EnginePoint {
    engine: &'static str,
    rate_multiplier: f64,
    /// Carries the scheduler section (occupancy / tokens-per-step
    /// histograms, page stats) for the continuous arm.
    report: ServeReport,
}

#[derive(Serialize)]
struct ServeBench {
    model: String,
    tp: usize,
    prompt_tokens: usize,
    gen_tokens: usize,
    n_requests: usize,
    service_time_ms: f64,
    /// Model and request count of the engine-discipline comparison.
    engine_model: String,
    engine_requests: usize,
    /// Sequential tp=1 service time the engine comparison is paced by.
    single_service_time_ms: f64,
    available_parallelism: usize,
    regimes: Vec<RegimePoint>,
    /// Overloaded regime: p99 with shedding / p99 without. Bar: ≤ 0.5.
    p99_ratio_overloaded: f64,
    /// Overloaded regime: goodput with shedding / without. Bar: ≥ 0.9.
    goodput_ratio_overloaded: f64,
    /// Single-flight vs continuous at 3× overload, same model, same cores.
    engines: Vec<EnginePoint>,
    /// 3× overload: continuous goodput / single-flight goodput. Bar: ≥ 2.
    continuous_goodput_ratio_overloaded: f64,
    /// Decode-throughput cost of arming `catch_unwind` + the fault-injection
    /// wrapper with no faults scripted (armed/bare − 1). Bar: < 0.02.
    armed_idle_overhead: f64,
    /// The continuous arm under a seeded engine-fault storm (panics, stalls
    /// past the step deadline, corruption, exhaustion bursts).
    engine_faulted: ServeReport,
    /// Faulted-arm goodput / un-faulted continuous goodput. Bar: ≥ 0.25.
    recovered_goodput_ratio: f64,
    storm_breaker_on: ServeReport,
    storm_breaker_off: ServeReport,
}

fn smoke() {
    let model = Arc::new(GptModel::random(zoo::tiny(4), SEED));
    let service = calibrate(&model, TP, 8);
    // Overload both arms; the invariants are asserted inside drain, the
    // no-hang criterion by this binary exiting under CI's timeout.
    let shed = run_regime(&model, service, 3.0, true, 40);
    let noshed = run_regime(&model, service, 3.0, false, 40);
    assert!(
        shed.rejected_total() + shed.deadline_expired > 0,
        "overload must shed through the bounded queue or deadlines"
    );
    assert_eq!(noshed.completed, noshed.admitted, "admit-everything arm completes all");

    // Both engine disciplines take the same burst on the same (memory-
    // bound) model; the gate is on the continuous arm: it must batch
    // (occupancy > 1), keep the page pool whole (fragmentation 0), and
    // complete work.
    let emodel = Arc::new(GptModel::random(engine_model(), SEED));
    let service1 = calibrate(&emodel, 1, 6);
    let single = run_engine_arm(&emodel, service1, 3.0, EngineMode::SingleFlight, None, 24);
    let cont = run_engine_arm(&emodel, service1, 3.0, continuous_mode(), None, 24);
    assert!(single.completed > 0, "single-flight arm must complete work");
    assert!(cont.completed > 0, "continuous arm must complete work");
    let sched = cont.scheduler.as_ref().expect("continuous arm publishes a scheduler report");
    assert_eq!(sched.pages.fragmentation, 0, "page pool must drain whole");
    assert!(
        sched.mean_occupancy > 1.0,
        "3x overload must co-schedule requests (mean occupancy {:.2})",
        sched.mean_occupancy
    );

    // Fault-tolerance gates: arming the recovery machinery with no faults
    // scripted must be ~free, and a seeded engine-fault storm must leave
    // most of the goodput intact through prefix-replay recovery.
    let overhead = armed_idle_overhead(&emodel);
    assert!(
        overhead < 0.02,
        "armed-idle fault machinery must cost <2% decode throughput (got {:.2}%)",
        overhead * 100.0
    );
    let (fmode, finj) = faulted_continuous_mode();
    let faulted = run_engine_arm(&emodel, service1, 3.0, fmode, Some(finj), 24);
    let recovered_ratio = if cont.goodput_rps > 0.0 {
        faulted.goodput_rps / cont.goodput_rps
    } else {
        0.0
    };
    let fsched = faulted.scheduler.as_ref().expect("faulted arm publishes a scheduler report");
    assert!(
        fsched.recoveries > 0,
        "the seeded storm must actually trigger fault recovery"
    );
    assert!(
        recovered_ratio >= 0.25,
        "recovery must preserve ≥25% of un-faulted goodput (got {:.2})",
        recovered_ratio
    );

    let storm = run_storm(&model, true, 12);
    assert!(storm.breaker_opens >= 1, "fault storm must open the breaker");
    println!(
        "bench_serve --smoke: armed-idle overhead {:.2}%, recovered goodput {:.2}x \
         ({} recoveries, {} replays)",
        overhead * 100.0,
        recovered_ratio,
        fsched.recoveries,
        fsched.replays,
    );
    println!(
        "bench_serve --smoke: shed {} of 40 under 3x overload (p99 {:.1} ms vs {:.1} ms unshed); \
         continuous {} done at occupancy {:.2} vs single-flight {} done; breaker opened {}x",
        shed.rejected_total() + shed.deadline_expired,
        shed.p99_latency_s * 1e3,
        noshed.p99_latency_s * 1e3,
        cont.completed,
        sched.mean_occupancy,
        single.completed,
        storm.breaker_opens,
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let model = Arc::new(GptModel::random(zoo::tiny(4), SEED));
    let service = calibrate(&model, TP, 24);
    let n = 150;

    let mut regimes = Vec::new();
    for (regime, mult) in [("light", 0.5), ("saturated", 1.0), ("overloaded", 3.0)] {
        for shedding in [true, false] {
            let report = run_regime(&model, service, mult, shedding, n);
            regimes.push(RegimePoint {
                regime,
                rate_multiplier: mult,
                shedding,
                offered_rps: mult / service.as_secs_f64(),
                report,
            });
        }
    }
    let over = |shed: bool| {
        &regimes
            .iter()
            .find(|r| r.regime == "overloaded" && r.shedding == shed)
            .unwrap()
            .report
    };
    let p99_ratio = over(true).p99_latency_s / over(false).p99_latency_s;
    let goodput_ratio = over(true).goodput_rps / over(false).goodput_rps;

    // Engine disciplines head-to-head: same (memory-bound) model, same
    // cores, same seeded 3× burst, tp=1 — only the engine changes.
    let emodel = Arc::new(GptModel::random(engine_model(), SEED));
    let service1 = calibrate(&emodel, 1, 8);
    let n_engine = 60;
    let eng_single =
        run_engine_arm(&emodel, service1, 3.0, EngineMode::SingleFlight, None, n_engine);
    let eng_cont = run_engine_arm(&emodel, service1, 3.0, continuous_mode(), None, n_engine);
    let continuous_ratio = eng_cont.goodput_rps / eng_single.goodput_rps;

    // Fault-tolerance cells: armed-idle decode overhead and the same
    // continuous burst under a seeded engine-fault storm.
    let armed_overhead = armed_idle_overhead(&emodel);
    let (fmode, finj) = faulted_continuous_mode();
    let eng_faulted = run_engine_arm(&emodel, service1, 3.0, fmode, Some(finj), n_engine);
    let recovered_ratio = eng_faulted.goodput_rps / eng_cont.goodput_rps;
    let engines = vec![
        EnginePoint { engine: "single_flight", rate_multiplier: 3.0, report: eng_single },
        EnginePoint { engine: "continuous", rate_multiplier: 3.0, report: eng_cont },
    ];

    let storm_on = run_storm(&model, true, 30);
    let storm_off = run_storm(&model, false, 30);

    let cores = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let bench = ServeBench {
        model: "tiny-4".into(),
        tp: TP,
        prompt_tokens: PROMPT_LEN,
        gen_tokens: GEN_TOKENS,
        n_requests: n,
        service_time_ms: service.as_secs_f64() * 1e3,
        engine_model: "bench-384".into(),
        engine_requests: n_engine,
        single_service_time_ms: service1.as_secs_f64() * 1e3,
        available_parallelism: cores,
        regimes,
        p99_ratio_overloaded: p99_ratio,
        goodput_ratio_overloaded: goodput_ratio,
        engines,
        continuous_goodput_ratio_overloaded: continuous_ratio,
        armed_idle_overhead: armed_overhead,
        engine_faulted: eng_faulted,
        recovered_goodput_ratio: recovered_ratio,
        storm_breaker_on: storm_on,
        storm_breaker_off: storm_off,
    };

    println!(
        "Serving under load: tiny-4 tp={TP}, service {:.2} ms/request, {n} requests/regime, {cores} core(s)\n",
        bench.service_time_ms
    );
    let rows: Vec<Vec<String>> = bench
        .regimes
        .iter()
        .map(|r| {
            let rep = &r.report;
            vec![
                format!("{} ({}x)", r.regime, r.rate_multiplier),
                if r.shedding { "on" } else { "off" }.into(),
                format!("{}", rep.completed),
                format!("{}", rep.rejected_total() + rep.deadline_expired),
                format!("{:.0}", rep.goodput_rps),
                format!("{:.1}", rep.p50_latency_s * 1e3),
                format!("{:.1}", rep.p99_latency_s * 1e3),
            ]
        })
        .collect();
    print_table(
        &["regime", "shedding", "completed", "shed", "goodput rps", "p50 ms", "p99 ms"],
        &rows,
    );
    println!(
        "\noverloaded: p99 shed/unshed = {:.3} (bar ≤ 0.5), goodput ratio = {:.3} (bar ≥ 0.9)",
        bench.p99_ratio_overloaded, bench.goodput_ratio_overloaded
    );

    println!(
        "\nEngine disciplines at 3x overload ({}, tp=1, service {:.2} ms/request):\n",
        bench.engine_model, bench.single_service_time_ms
    );
    let engine_rows: Vec<Vec<String>> = bench
        .engines
        .iter()
        .map(|e| {
            let rep = &e.report;
            let (occ, hw) = rep
                .scheduler
                .as_ref()
                .map(|s| {
                    (format!("{:.2}", s.mean_occupancy), format!("{}", s.pages.high_water))
                })
                .unwrap_or_else(|| ("1.00".into(), "-".into()));
            vec![
                e.engine.to_string(),
                format!("{}", rep.completed),
                format!("{}", rep.rejected_total() + rep.deadline_expired),
                format!("{:.0}", rep.goodput_rps),
                format!("{:.1}", rep.p50_latency_s * 1e3),
                format!("{:.1}", rep.p99_latency_s * 1e3),
                occ,
                hw,
            ]
        })
        .collect();
    print_table(
        &["engine", "completed", "shed", "goodput rps", "p50 ms", "p99 ms", "occupancy", "pages hw"],
        &engine_rows,
    );
    println!(
        "\ncontinuous/single-flight goodput = {:.2}x (bar ≥ 2.0)",
        bench.continuous_goodput_ratio_overloaded
    );
    let fsched = bench
        .engine_faulted
        .scheduler
        .as_ref()
        .expect("faulted continuous arm publishes a scheduler report");
    println!(
        "fault tolerance: armed-idle overhead {:.2}% (bar < 2%), faulted goodput {:.2}x \
         un-faulted (bar ≥ 0.25) with {} recoveries / {} replays / {} fault evictions",
        bench.armed_idle_overhead * 100.0,
        bench.recovered_goodput_ratio,
        fsched.recoveries,
        fsched.replays,
        fsched.engine_fault_evictions,
    );
    println!(
        "fault storm: breaker on  -> {} fast-fails, {} opens, wall {:.2}s",
        bench.storm_breaker_on.rejected_breaker,
        bench.storm_breaker_on.breaker_opens,
        bench.storm_breaker_on.wall_s
    );
    println!(
        "fault storm: breaker off -> {} evicted typed, wall {:.2}s",
        bench.storm_breaker_off.evicted, bench.storm_breaker_off.wall_s
    );

    let json = serde_json::to_string_pretty(&bench).expect("serialize");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\n[-> BENCH_serve.json]");

    // Acceptance criteria, enforced in-process.
    assert!(
        bench.p99_ratio_overloaded <= 0.5,
        "shedding must at least halve overloaded p99 (got ratio {:.3})",
        bench.p99_ratio_overloaded
    );
    assert!(
        bench.goodput_ratio_overloaded >= 0.9,
        "shedding must preserve goodput within 10% (got ratio {:.3})",
        bench.goodput_ratio_overloaded
    );
    assert!(
        bench.continuous_goodput_ratio_overloaded >= 2.0,
        "continuous batching must at least double single-flight goodput at 3x overload (got {:.2}x)",
        bench.continuous_goodput_ratio_overloaded
    );
    let sched = bench.engines[1].report.scheduler.as_ref().expect("continuous scheduler report");
    assert_eq!(sched.pages.fragmentation, 0, "page pool must drain with zero fragmentation");
    assert_eq!(
        sched.occupancy_hist.iter().sum::<u64>(),
        sched.steps,
        "occupancy histogram must account for every decode step"
    );
    assert!(bench.storm_breaker_on.breaker_opens >= 1, "storm must open the breaker");
    assert!(
        bench.storm_breaker_on.rejected_breaker >= 1,
        "an open breaker must fast-fail at least one admission"
    );
    assert!(
        bench.armed_idle_overhead < 0.02,
        "armed-idle fault machinery must cost <2% decode throughput (got {:.2}%)",
        bench.armed_idle_overhead * 100.0
    );
    assert!(fsched.recoveries > 0, "the seeded storm must trigger fault recovery");
    assert!(
        bench.recovered_goodput_ratio >= 0.25,
        "recovery must preserve ≥25% of un-faulted goodput (got {:.2})",
        bench.recovered_goodput_ratio
    );
}
