//! Executed tensor-parallelism benchmark: the threaded TP engine
//! (`dsi-parallel::tp_exec`, per-rank weight shards + shared-memory
//! barrier/all-reduce) against the single-thread fast path, on the same
//! greedy decode, in the same process.
//!
//! Every TP degree must emit exactly the fast path's tokens — the scaling
//! curve is only reported if the numerics are identical.
//!
//! Modes:
//! * default — a wider model (h=256, 6 layers) decoded at tp ∈ {1, 2, 4};
//!   prints a table and writes `BENCH_tp.json` with tokens/s per degree,
//!   speedup vs tp=1, and the host's available parallelism (on a 1-core
//!   runner the honest answer is "no speedup"; the JSON records both).
//! * `--smoke` — tiny model, tp=2 only, no JSON: a CI gate that the
//!   threaded engine still decodes token-identically and doesn't hang.

use dsi_bench::print_table;
use dsi_model::fast::PackedModel;
use dsi_model::reference::GptModel;
use dsi_model::{zoo, GptConfig};
use dsi_parallel::tp_exec::TpPackedModel;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

const PROMPT: [usize; 4] = [1, 2, 3, 4];
const REPS: usize = 5;

#[derive(Serialize)]
struct TpPoint {
    tp: usize,
    tokens_per_s: f64,
    /// Speedup vs this run's tp=1 point.
    speedup: f64,
    tokens_equal: bool,
}

#[derive(Serialize)]
struct TpResult {
    unit: String,
    model: String,
    layers: usize,
    hidden: usize,
    heads: usize,
    prompt_tokens: usize,
    gen_tokens: usize,
    reps: usize,
    /// `std::thread::available_parallelism()` on the machine that produced
    /// this file — speedups are only meaningful when this is >= tp.
    available_parallelism: usize,
    fast_tokens_per_s: f64,
    points: Vec<TpPoint>,
}

/// Best-of-REPS decode throughput for one TP degree; also checks tokens.
fn measure_tp(model: &GptModel, tp: usize, gen: usize, want: &[usize]) -> (f64, bool) {
    let tpm = Arc::new(TpPackedModel::shard(model, tp));
    let tokens_equal = tpm.session(PROMPT.len()).generate(&PROMPT, gen) == want;
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        // Session setup (thread spawn + scratch) inside the timed region
        // would swamp a short decode; spawn first, time only the decode,
        // matching how bench_decode times the fast path (pack outside).
        let mut sess = tpm.session(PROMPT.len());
        let t0 = Instant::now();
        let out = sess.generate(&PROMPT, gen);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(out.len(), gen);
        best = best.min(dt);
    }
    (gen as f64 / best, tokens_equal)
}

fn smoke() {
    let model = GptModel::random(zoo::tiny(2), 42);
    let want = PackedModel::pack(&model).session(PROMPT.len()).generate(&PROMPT, 16);
    let tpm = Arc::new(TpPackedModel::shard(&model, 2));
    let got = tpm.session(PROMPT.len()).generate(&PROMPT, 16);
    assert_eq!(got, want, "tp=2 diverged from the fast path");
    println!("bench_tp --smoke: tp=2 token-identical to fast path ({} tokens)", got.len());
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    // Wide enough that per-layer GEMM work dominates the two all-reduces.
    let config = GptConfig {
        name: "bench-tp".into(),
        hidden: 256,
        layers: 6,
        heads: 8,
        vocab: 512,
        max_seq: 128,
    };
    let gen_tokens = 28; // prompt 4 + 28 generated = 32-token sequence
    let model = GptModel::random(config.clone(), 42);
    let packed = PackedModel::pack(&model);
    let want = packed.session(PROMPT.len()).generate(&PROMPT, gen_tokens);

    let mut fast_best = f64::INFINITY;
    for _ in 0..REPS {
        let mut sess = packed.session(PROMPT.len());
        let t0 = Instant::now();
        let out = sess.generate(&PROMPT, gen_tokens);
        fast_best = fast_best.min(t0.elapsed().as_secs_f64());
        assert_eq!(out, want);
    }

    let mut points = Vec::new();
    for tp in [1usize, 2, 4] {
        let (tokens_per_s, tokens_equal) = measure_tp(&model, tp, gen_tokens, &want);
        points.push(TpPoint { tp, tokens_per_s, speedup: 0.0, tokens_equal });
    }
    let base = points[0].tokens_per_s;
    for p in &mut points {
        p.speedup = p.tokens_per_s / base;
    }

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let result = TpResult {
        unit: "tokens/s".to_string(),
        model: config.name.clone(),
        layers: config.layers,
        hidden: config.hidden,
        heads: config.heads,
        prompt_tokens: PROMPT.len(),
        gen_tokens,
        reps: REPS,
        available_parallelism: cores,
        fast_tokens_per_s: gen_tokens as f64 / fast_best,
        points,
    };

    println!(
        "Executed TP decode: {} ({} layers, h={}, {} heads), {}-token greedy decode, {} core(s)\n",
        result.model,
        result.layers,
        result.hidden,
        result.heads,
        result.prompt_tokens + result.gen_tokens,
        cores
    );
    let rows: Vec<Vec<String>> = result
        .points
        .iter()
        .map(|p| {
            vec![
                format!("tp={}", p.tp),
                format!("{:.0}", p.tokens_per_s),
                format!("{:.2}x", p.speedup),
                p.tokens_equal.to_string(),
            ]
        })
        .collect();
    print_table(&["degree", "tokens/s", "speedup vs tp=1", "tokens identical"], &rows);
    println!("\nfast path (no TP engine): {:.0} tokens/s", result.fast_tokens_per_s);
    if cores < 4 {
        println!("note: only {cores} core(s) available — scaling is not expected here");
    }

    let json = serde_json::to_string_pretty(&result).expect("serialize");
    std::fs::write("BENCH_tp.json", &json).expect("write BENCH_tp.json");
    println!("[-> BENCH_tp.json]");

    for p in &result.points {
        assert!(p.tokens_equal, "tp={} diverged from the fast path", p.tp);
    }
}
