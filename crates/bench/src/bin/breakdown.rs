//! Performance breakdown and analysis (Sec. VII-E flavor): per-layer time
//! split by kernel class for every Fig. 6 model, DeepSpeed vs
//! FasterTransformer, at small and large batch.

use dsi_baselines::exec::ExecStyle;
use dsi_bench::{emit, print_table};
use dsi_core::report::Row;
use dsi_kernels::cost::ExecConfig;
use dsi_model::zoo::table1;
use dsi_sim::hw::GpuSpec;

fn main() {
    println!("Per-layer kernel-time breakdown (token generation, ctx 128)\n");
    let gpu = GpuSpec::a100_40gb();
    let cfg = ExecConfig::fp16(true);
    let styles = [ExecStyle::faster_transformer(), ExecStyle::deepspeed()];
    let mut json = Vec::new();
    for batch in [1usize, 32] {
        println!("batch {batch}:");
        let mut rows = Vec::new();
        for e in table1().into_iter().filter(|e| e.fig6_tp > 0) {
            let m = &e.config;
            let mut row = vec![m.name.clone()];
            for style in &styles {
                let b = style.layer_breakdown(
                    &gpu, batch, 1, 128, m.hidden, m.heads, e.fig6_tp, &cfg,
                );
                row.push(format!(
                    "{:.0}/{:.0}/{:.0}/{:.0}",
                    b.gemm * 1e6,
                    b.attention * 1e6,
                    b.elementwise * 1e6,
                    b.launch * 1e6
                ));
                for (class, v) in [
                    ("gemm", b.gemm),
                    ("attention", b.attention),
                    ("elementwise", b.elementwise),
                    ("launch", b.launch),
                ] {
                    json.push(Row::new(
                        "breakdown",
                        &format!("{}/{}", style.name, class),
                        &m.name,
                        "batch",
                        batch as f64,
                        v * 1e6,
                        "us",
                    ));
                }
            }
            rows.push(row);
        }
        print_table(
            &["model", "FT gemm/attn/ew/launch us", "DS gemm/attn/ew/launch us"],
            &rows,
        );
        println!();
    }
    emit("breakdown", &json);
}
