//! Automated claim validation: recompute every headline number of the paper
//! from the library (not from stored JSON) and check it against the
//! acceptance band recorded in EXPERIMENTS.md. Exits non-zero if any claim
//! regresses — the repository's "did the reproduction drift?" gate.

use dsi_baselines::exec::ExecStyle;
use dsi_core::engine::{EngineConfig, InferenceEngine};
use dsi_kernels::cost::ExecConfig;
use dsi_model::zoo;
use dsi_moe::system::{MoeSystem, MoeSystemKind};
use dsi_sim::hw::{ClusterSpec, NodeSpec};
use dsi_sim::topology::Topology;
use dsi_zero::engine::ZeroInference;

struct Claim {
    id: &'static str,
    description: &'static str,
    paper: f64,
    lo: f64,
    hi: f64,
    measured: f64,
}

fn check(claims: &mut Vec<Claim>, id: &'static str, description: &'static str, paper: f64, lo: f64, hi: f64, measured: f64) {
    claims.push(Claim {
        id,
        description,
        paper,
        lo,
        hi,
        measured,
    });
}

fn main() {
    let mut claims = Vec::new();

    // --- Fig. 6: dense kernel speedups -------------------------------------
    let topo = Topology::new(ClusterSpec::dgx_a100(2));
    let ft = ExecStyle::faster_transformer();
    let ds = ExecStyle::deepspeed();
    let gpt2 = zoo::dense_by_name("GPT-2-1.5B").unwrap();
    let t_ft = ft
        .generation_latency(&topo, &gpt2, 1, 1, 128, 8, &ExecConfig::fp16(false))
        .total;
    let t16 = ds
        .generation_latency(&topo, &gpt2, 1, 1, 128, 8, &ExecConfig::fp16(true))
        .total;
    let t8 = ds
        .generation_latency(&topo, &gpt2, 1, 1, 128, 8, &ExecConfig::int8(true))
        .total;
    check(&mut claims, "fig6-fp16", "max DS-FP16 speedup over FT (batch 1, GPT-2)", 1.55, 1.3, 2.3, t_ft / t16);
    check(&mut claims, "fig6-int8", "max DS-INT8 speedup over FT-FP16", 1.95, 1.5, 2.6, t_ft / t8);

    // --- Fig. 7: MoE ---------------------------------------------------------
    let t2 = zoo::table2();
    let one_t = &t2[3];
    let lat_1t = MoeSystem::new(one_t.clone(), MoeSystemKind::DeepSpeed)
        .token_latency(8)
        .total;
    check(&mut claims, "fig7-25ms", "1T MoE token latency on 256 GPUs (ms)", 25.0, 5.0, 25.0, lat_1t * 1e3);
    let two_t = &t2[4];
    let s = MoeSystem::new(two_t.clone(), MoeSystemKind::PyTorchBaseline)
        .token_latency(8)
        .total
        / MoeSystem::new(two_t.clone(), MoeSystemKind::DeepSpeed)
            .token_latency(8)
            .total;
    check(&mut claims, "fig7-speedup", "max MoE speedup vs PyTorch (2T, 256 GPUs)", 7.3, 2.5, 9.0, s);
    let ds_sys = MoeSystem::new(one_t.clone(), MoeSystemKind::DeepSpeed);
    let frac = ds_sys.aggregate_bandwidth(8) / ds_sys.cluster.aggregate_mem_bw();
    check(&mut claims, "fig7-bandwidth", "1T aggregate bandwidth fraction of peak", 0.33, 0.15, 0.55, frac);

    // --- Fig. 8: throughput ---------------------------------------------------
    let m175 = zoo::dense_by_name("LM-175B").unwrap();
    let c16 = ClusterSpec::dgx_a100(2);
    let g175 = {
        let dse = InferenceEngine::new(EngineConfig::deepspeed(m175.clone(), c16.clone(), 8, 2));
        let fte = InferenceEngine::new(EngineConfig::faster_transformer(m175, c16, 8, 2));
        dse.best_throughput(512, 50).unwrap().tokens_per_s
            / fte.best_throughput(512, 50).unwrap().tokens_per_s
    };
    check(&mut claims, "fig8-175b", "175B throughput gain vs FT (16 GPUs)", 1.51, 1.25, 2.2, g175);

    // --- Fig. 9: ZeRO-Inference ----------------------------------------------
    let node = NodeSpec::lambda_a6000();
    let z530 = ZeroInference::new(zoo::dense_by_name("LM-530B").unwrap(), node.clone(), 1);
    let r530 = z530.run_max_batch().unwrap();
    check(&mut claims, "fig9-tflops", "530B on one A6000 (TFLOPS)", 84.0, 65.0, 100.0, r530.flops_per_gpu / 1e12);
    let models: Vec<_> = zoo::table1().into_iter().map(|e| e.config).collect();
    let (gmax, cmax, zmax) = dsi_zero::tiers::max_model_per_strategy(
        &models,
        &node,
        dsi_sim::hw::DType::Fp16,
        2048,
    );
    check(&mut claims, "fig9-25x", "ZeRO model scale vs GPU-only", 25.0, 20.0, 30.0,
        zmax.unwrap().total_params() / gmax.unwrap().total_params());
    check(&mut claims, "fig9-10x", "ZeRO model scale vs CPU-only", 10.0, 8.0, 13.0,
        zmax.unwrap().total_params() / cmax.unwrap().total_params());
    let z50 = ZeroInference::new(zoo::dense_by_name("GPT-50B").unwrap(), NodeSpec::dgx2_v100(), 1);
    let r50 = z50.run_max_batch().unwrap();
    check(&mut claims, "fig9c-67tf", "GPT-50B on one V100 (TFLOPS)", 67.0, 55.0, 80.0, r50.flops_per_gpu / 1e12);

    // --- Fig. 12: E.T. ---------------------------------------------------------
    let gpu = dsi_sim::hw::GpuSpec::a100_40gb();
    let enc = zoo::encoders();
    let s_distil = ExecStyle::et().encoder_forward_time(&gpu, &enc[0], 1, 128, &ExecConfig::fp16(true))
        / ExecStyle::deepspeed().encoder_forward_time(&gpu, &enc[0], 1, 128, &ExecConfig::fp16(true));
    check(&mut claims, "fig12-distil", "DistilBERT speedup vs E.T.", 1.7, 1.2, 2.2, s_distil);

    // --- Sec. V-C: MoE kernel reduction ----------------------------------------
    let k = dsi_moe::kernels::kernel_speedup(&gpu, 8, 128, 4096, 8);
    check(&mut claims, "sec5c-6x", "MoE routing kernel latency reduction", 6.0, 6.0, 30.0, k);

    // --- report ------------------------------------------------------------------
    println!(
        "{:<16} {:>8} {:>10} {:>16} {:>7}  description",
        "claim", "paper", "measured", "accept band", "status"
    );
    let mut failures = 0;
    for c in &claims {
        let ok = c.measured >= c.lo && c.measured <= c.hi;
        if !ok {
            failures += 1;
        }
        println!(
            "{:<16} {:>8.2} {:>10.2} {:>7.2}–{:<8.2} {:>7}  {}",
            c.id,
            c.paper,
            c.measured,
            c.lo,
            c.hi,
            if ok { "ok" } else { "FAIL" },
            c.description
        );
    }
    println!(
        "\n{} / {} claims inside their acceptance bands",
        claims.len() - failures,
        claims.len()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
