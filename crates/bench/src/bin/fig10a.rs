//! Fig. 10(a): dense kernel performance breakdown for GPT-2 — PyTorch
//! (Megatron) baseline, +Deep-Fusion, +Deep-Fusion+SBI-GeMM (= DeepSpeed).

use dsi_baselines::exec::ExecStyle;
use dsi_bench::{emit, print_table};
use dsi_core::report::Row;
use dsi_kernels::cost::ExecConfig;
use dsi_model::zoo::dense_by_name;
use dsi_sim::hw::ClusterSpec;
use dsi_sim::topology::Topology;

fn main() {
    println!("Fig. 10(a) — GPT-2 kernel breakdown: token-generation latency (prompt 128)\n");
    let topo = Topology::new(ClusterSpec::dgx_a100(1));
    let model = dense_by_name("GPT-2-1.5B").unwrap();
    let cfg = ExecConfig::fp16(true);
    let styles = [
        ("PyTorch", ExecStyle::pytorch()),
        ("+Deep-Fusion", ExecStyle::megatron_deepfusion()),
        ("+SBI-GeMM (DeepSpeed)", ExecStyle::deepspeed()),
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for b in [1usize, 2, 4, 8] {
        let mut row = vec![b.to_string()];
        let mut base = 0.0;
        for (name, style) in &styles {
            // Single-token generation forward at context 128.
            let t = style.forward_time(&topo, &model, 1, b, 1, 128, &cfg);
            if base == 0.0 {
                base = t;
            }
            row.push(format!("{:.2} ({:.2}x)", t * 1e3, base / t));
            json.push(Row::new("fig10a", name, &model.name, "batch", b as f64, t * 1e3, "ms"));
        }
        rows.push(row);
    }
    print_table(
        &["batch", "PyTorch ms", "+Deep-Fusion ms", "+SBI-GeMM ms"],
        &rows,
    );
    emit("fig10a", &json);
}
