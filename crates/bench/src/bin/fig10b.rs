//! Fig. 10(b): throughput improvement of the 530B model under the pipeline
//! optimizations of Sec. IV, enabled cumulatively.

use dsi_bench::{emit, print_table};
use dsi_core::engine::{EngineConfig, InferenceEngine};
use dsi_core::report::Row;
use dsi_model::zoo::dense_by_name;
use dsi_sim::hw::ClusterSpec;

const PROMPT: usize = 512;
const GEN: usize = 50;

fn main() {
    println!("Fig. 10(b) — 530B (TP8×PP5, 40 GPUs) pipeline-optimization ablation\n");
    let model = dense_by_name("LM-530B").unwrap();
    let cluster = ClusterSpec::dgx_a100(5);

    // Cumulative flag sets, in the paper's narrative order.
    let steps: [(&str, [bool; 4]); 5] = [
        ("training-style schedule", [false, false, false, false]),
        ("+inference schedule", [true, false, false, false]),
        ("+hybrid micro-batching", [true, true, false, false]),
        ("+KV offload (bigger batch)", [true, true, true, false]),
        ("+odd/even offload", [true, true, true, true]),
    ];

    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut base = 0.0;
    for (name, [sched, hybrid, offload, odd_even]) in steps {
        let mut cfg = EngineConfig::deepspeed(model.clone(), cluster.clone(), 8, 5);
        cfg.inference_schedule = sched;
        cfg.hybrid_schedule = hybrid;
        cfg.kv_offload = offload;
        cfg.odd_even_offload = odd_even;
        let engine = InferenceEngine::new(cfg);
        let r = engine.best_throughput(PROMPT, GEN).expect("fits");
        if base == 0.0 {
            base = r.tokens_per_s;
        }
        rows.push(vec![
            name.into(),
            r.batch.to_string(),
            format!("{:.0}", r.tokens_per_s),
            format!("{:.2}x", r.tokens_per_s / base),
            format!("{:.0}%", 100.0 * r.bubble_fraction),
        ]);
        json.push(Row::new(
            "fig10b",
            name,
            "LM-530B",
            "step",
            rows.len() as f64,
            r.tokens_per_s,
            "tokens/s",
        ));
    }
    print_table(
        &["configuration", "best batch", "tokens/s", "vs base", "bubble"],
        &rows,
    );
    emit("fig10b", &json);
}
