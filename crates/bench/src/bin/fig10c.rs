//! Fig. 10(c): impact of prefetching on ZeRO-Inference throughput on a
//! single V100 — large at small batch, diminishing as compute hides the
//! fetch (Sec. VII-E5).

use dsi_bench::{emit, print_table};
use dsi_core::report::Row;
use dsi_model::zoo::dense_by_name;
use dsi_sim::hw::NodeSpec;
use dsi_zero::engine::ZeroInference;

fn main() {
    println!("Fig. 10(c) — prefetching impact on ZeRO-Inference (GPT-50B, 1×V100)\n");
    let model = dense_by_name("GPT-50B").unwrap();
    let node = NodeSpec::dgx2_v100();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut z = ZeroInference::new(model, node, 1);
    let max = z.max_batch();
    for b in [1usize, 2, 4, 8, 16, max] {
        z.prefetch = 0;
        let off = z.run(b).expect("fits");
        z.prefetch = 2;
        let on = z.run(b).expect("fits");
        rows.push(vec![
            b.to_string(),
            format!("{:.1}", off.flops_per_gpu / 1e12),
            format!("{:.1}", on.flops_per_gpu / 1e12),
            format!("{:.2}x", on.flops_per_gpu / off.flops_per_gpu),
        ]);
        json.push(Row::new("fig10c", "no-prefetch", "GPT-50B", "batch", b as f64, off.flops_per_gpu / 1e12, "TFLOPS"));
        json.push(Row::new("fig10c", "prefetch-2", "GPT-50B", "batch", b as f64, on.flops_per_gpu / 1e12, "TFLOPS"));
    }
    print_table(&["batch", "no prefetch TFLOPS", "prefetch TFLOPS", "gain"], &rows);
    emit("fig10c", &json);
}
