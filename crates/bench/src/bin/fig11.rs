//! Fig. 11: aggregate memory bandwidth scalability of DeepSpeed-MoE vs the
//! PyTorch baseline, 52B MoE model, 8 → 128 GPUs.

use dsi_bench::{emit, print_table};
use dsi_core::report::Row;
use dsi_model::zoo::table2;
use dsi_moe::system::{MoeSystem, MoeSystemKind};

const BATCH_PER_GPU: usize = 8;

fn main() {
    println!("Fig. 11 — aggregate memory bandwidth, 52B MoE (1.3B+MoE-128), weak scaling\n");
    let cfg = table2().into_iter().next().unwrap(); // 1.3B+MoE-128
    let ds = MoeSystem::new(cfg.clone(), MoeSystemKind::DeepSpeed);
    let base = MoeSystem::new(cfg, MoeSystemKind::PyTorchBaseline);

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for gpus in [8usize, 16, 32, 64, 128] {
        let bds = ds.weak_scaling_bandwidth(gpus, BATCH_PER_GPU);
        let bb = base.weak_scaling_bandwidth(gpus, BATCH_PER_GPU);
        rows.push(vec![
            gpus.to_string(),
            format!("{:.2}", bb / 1e12),
            format!("{:.2}", bds / 1e12),
            format!("{:.2}x", bds / bb),
        ]);
        json.push(Row::new("fig11", "PyTorch-MoE", "1.3B+MoE-128", "gpus", gpus as f64, bb / 1e12, "TB/s"));
        json.push(Row::new("fig11", "DeepSpeed-MoE", "1.3B+MoE-128", "gpus", gpus as f64, bds / 1e12, "TB/s"));
    }
    print_table(&["GPUs", "baseline TB/s", "DeepSpeed TB/s", "advantage"], &rows);
    emit("fig11", &json);
}
