//! Fig. 12: comparison with E.T. kernels on DistilBERT and BERT encoders
//! (batch 1, sequence 128, A100).

use dsi_baselines::exec::ExecStyle;
use dsi_bench::{emit, ms, print_table};
use dsi_core::report::Row;
use dsi_kernels::cost::ExecConfig;
use dsi_model::zoo::encoders;
use dsi_sim::hw::GpuSpec;

fn main() {
    println!("Fig. 12 — encoder latency vs E.T. (batch 1, seq 128, A100)\n");
    let gpu = GpuSpec::a100_40gb();
    let cfg = ExecConfig::fp16(true);
    let ds = ExecStyle::deepspeed();
    let et = ExecStyle::et();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for m in encoders() {
        let t_et = et.encoder_forward_time(&gpu, &m, 1, 128, &cfg);
        let t_ds = ds.encoder_forward_time(&gpu, &m, 1, 128, &cfg);
        rows.push(vec![
            m.name.clone(),
            ms(t_et),
            ms(t_ds),
            format!("{:.2}x", t_et / t_ds),
        ]);
        json.push(Row::new("fig12", "E.T.", &m.name, "seq", 128.0, t_et * 1e3, "ms"));
        json.push(Row::new("fig12", "DeepSpeed", &m.name, "seq", 128.0, t_ds * 1e3, "ms"));
    }
    print_table(&["model", "E.T. ms", "DeepSpeed ms", "speedup"], &rows);
    println!("\npaper: 1.7x (DistilBERT) and 1.4x (BERT).");
    emit("fig12", &json);
}
