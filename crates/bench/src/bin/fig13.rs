//! Fig. 13: prompt-processing latency with hybrid scheduling vs
//! FasterTransformer for GPT-3 175B on 2×8 A100, batch 24 (Sec. VII-E3).

use dsi_bench::{emit, ms, print_table};
use dsi_core::engine::{EngineConfig, InferenceEngine};
use dsi_core::report::Row;
use dsi_model::zoo::dense_by_name;
use dsi_sim::hw::ClusterSpec;

const BATCH: usize = 24;
const PROMPT: usize = 512;
const GEN: usize = 8;

fn main() {
    println!("Fig. 13 — 175B prompt latency, hybrid scheduling vs FT (batch {BATCH})\n");
    let model = dense_by_name("LM-175B").unwrap();
    let cluster = ClusterSpec::dgx_a100(2);

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (label, tp, pp) in [("PP+MP (TP8xPP2)", 8usize, 2usize), ("MP-only (TP16)", 16, 1)] {
        let ds = InferenceEngine::new(EngineConfig::deepspeed(model.clone(), cluster.clone(), tp, pp));
        let ft = InferenceEngine::new(EngineConfig::faster_transformer(
            model.clone(),
            cluster.clone(),
            tp,
            pp,
        ));
        let rds = ds.generation(BATCH, PROMPT, GEN);
        let rft = ft.generation(BATCH, PROMPT, GEN);
        // Prompt TFLOPS = prompt FLOPs / prompt latency, per GPU.
        let flops = model.forward_flops((BATCH * PROMPT) as f64);
        let gpus = (tp * pp) as f64;
        rows.push(vec![
            label.into(),
            ms(rft.prompt_latency),
            ms(rds.prompt_latency),
            format!("{:.2}x", rft.prompt_latency / rds.prompt_latency),
            format!("{:.1}", flops / rft.prompt_latency / gpus / 1e12),
            format!("{:.1}", flops / rds.prompt_latency / gpus / 1e12),
        ]);
        json.push(Row::new("fig13", "FT", label, "batch", BATCH as f64, rft.prompt_latency * 1e3, "ms"));
        json.push(Row::new("fig13", "DS-hybrid", label, "batch", BATCH as f64, rds.prompt_latency * 1e3, "ms"));
    }
    print_table(
        &[
            "config",
            "FT prompt ms",
            "DS prompt ms",
            "speedup",
            "FT TFLOPS/GPU",
            "DS TFLOPS/GPU",
        ],
        &rows,
    );
    println!(
        "\npaper: 1.18x (PP+MP) and 3.06x (MP-only; inflated by a PyTorch AllReduce\n\
         issue the authors flag as future work — our roofline model reproduces the\n\
         ordering, not that anomaly)."
    );
    emit("fig13", &json);
}
