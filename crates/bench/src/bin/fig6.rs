//! Fig. 6: latency and throughput of DeepSpeed Transformer vs
//! FasterTransformer across models and batch sizes.
//!
//! Workload (Sec. VII-A3): prompt of 128 tokens, generate 8 tokens. Systems:
//! FT-FP16 (baseline), DeepSpeed-FP16, DeepSpeed-INT8, each under the Table I
//! tensor-parallel mapping.

use dsi_baselines::exec::ExecStyle;
use dsi_bench::{emit, ms, print_table};
use dsi_core::report::Row;
use dsi_kernels::cost::ExecConfig;
use dsi_model::zoo::table1;
use dsi_sim::hw::ClusterSpec;
use dsi_sim::topology::Topology;

const PROMPT: usize = 128;
const GEN: usize = 8;
const BATCHES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

fn main() {
    println!("Fig. 6 — dense latency/throughput vs FasterTransformer");
    println!("workload: prompt {PROMPT}, generate {GEN} tokens\n");
    let topo = Topology::new(ClusterSpec::dgx_a100(2)); // up to TP=16
    let ft = ExecStyle::faster_transformer();
    let ds = ExecStyle::deepspeed();
    let cfg_ft = ExecConfig::fp16(false);
    let cfg16 = ExecConfig::fp16(true);
    let cfg8 = ExecConfig::int8(true);

    let mut json = Vec::new();
    for e in table1().into_iter().filter(|e| e.fig6_tp > 0) {
        let m = &e.config;
        let tp = e.fig6_tp;
        println!("\n{} (TP={tp})", m.name);
        let mut rows = Vec::new();
        for &b in &BATCHES {
            let rft = ft.generation_latency(&topo, m, tp, b, PROMPT, GEN, &cfg_ft);
            let r16 = ds.generation_latency(&topo, m, tp, b, PROMPT, GEN, &cfg16);
            let r8 = ds.generation_latency(&topo, m, tp, b, PROMPT, GEN, &cfg8);
            rows.push(vec![
                b.to_string(),
                ms(rft.total),
                ms(r16.total),
                ms(r8.total),
                format!("{:.2}x", rft.total / r16.total),
                format!("{:.2}x", rft.total / r8.total),
                format!("{:.0}", r16.tokens_per_s),
            ]);
            for (sys, r) in [
                ("FT-FP16", &rft),
                ("DeepSpeed-FP16", &r16),
                ("DeepSpeed-INT8", &r8),
            ] {
                json.push(Row::new("fig6", sys, &m.name, "batch", b as f64, r.total * 1e3, "ms"));
                json.push(Row::new(
                    "fig6",
                    sys,
                    &m.name,
                    "batch",
                    b as f64,
                    r.tokens_per_s,
                    "tokens/s",
                ));
            }
        }
        print_table(
            &[
                "batch",
                "FT-FP16 ms",
                "DS-FP16 ms",
                "DS-INT8 ms",
                "fp16 speedup",
                "int8 speedup",
                "DS tok/s",
            ],
            &rows,
        );
    }
    emit("fig6", &json);
}
