//! Fig. 7: MoE latency and per-GPU throughput, DeepSpeed-MoE vs the
//! PyTorch baseline, on up to 256 GPUs.
//!
//! Workload (Sec. VII-A3): batch 8, per-token generation latency.

use dsi_bench::{emit, ms, print_table};
use dsi_core::report::Row;
use dsi_model::zoo::table2;
use dsi_moe::system::{MoeSystem, MoeSystemKind};

const BATCH: usize = 8;

fn main() {
    println!("Fig. 7 — MoE token latency & throughput vs PyTorch baseline (batch {BATCH})\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for cfg in table2() {
        let ds = MoeSystem::new(cfg.clone(), MoeSystemKind::DeepSpeed);
        let base = MoeSystem::new(cfg.clone(), MoeSystemKind::PyTorchBaseline);
        let lds = ds.token_latency(BATCH);
        let lb = base.token_latency(BATCH);
        let tds = ds.throughput_per_gpu(BATCH);
        let tb = base.throughput_per_gpu(BATCH);
        rows.push(vec![
            cfg.name.clone(),
            format!("{:.0}", cfg.total_params() / 1e9),
            cfg.gpus.to_string(),
            ms(lb.total),
            ms(lds.total),
            format!("{:.2}x", lb.total / lds.total),
            format!("{:.2}", tb),
            format!("{:.2}", tds),
        ]);
        for (sys, lat, thr) in [
            ("PyTorch-MoE", &lb, tb),
            ("DeepSpeed-MoE", &lds, tds),
        ] {
            json.push(Row::new("fig7", sys, &cfg.name, "gpus", cfg.gpus as f64, lat.total * 1e3, "ms"));
            json.push(Row::new(
                "fig7",
                sys,
                &cfg.name,
                "gpus",
                cfg.gpus as f64,
                thr,
                "tokens/s/gpu",
            ));
        }
    }
    print_table(
        &[
            "model",
            "size(B)",
            "GPUs",
            "baseline ms",
            "DS ms",
            "speedup",
            "base tok/s/gpu",
            "DS tok/s/gpu",
        ],
        &rows,
    );
    println!("\nheadline: the 1T model row must sit under 25 ms (Sec. VII-B2).");
    emit("fig7", &json);
}
