//! Fig. 8: throughput of DeepSpeed Transformer vs FasterTransformer for
//! 175B (16 GPUs, TP8×PP2) and 530B (40 GPUs, TP8×PP5).
//!
//! Workload (Sec. VII-A3): prompt 512, generate 50 tokens, best batch per
//! configuration.

use dsi_bench::{emit, print_table};
use dsi_core::engine::{EngineConfig, InferenceEngine};
use dsi_core::report::Row;
use dsi_model::zoo::dense_by_name;
use dsi_sim::hw::ClusterSpec;

const PROMPT: usize = 512;
const GEN: usize = 50;

fn main() {
    println!("Fig. 8 — massive-model throughput vs FT (prompt {PROMPT}, gen {GEN}, best batch)\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (name, nodes, tp, pp) in [("LM-175B", 2usize, 8usize, 2usize), ("LM-530B", 5, 8, 5)] {
        let model = dense_by_name(name).unwrap();
        let cluster = ClusterSpec::dgx_a100(nodes);
        let ds = InferenceEngine::new(EngineConfig::deepspeed(model.clone(), cluster.clone(), tp, pp));
        let ft = InferenceEngine::new(EngineConfig::faster_transformer(model, cluster, tp, pp));
        let rds = ds.best_throughput(PROMPT, GEN).expect("DS fits");
        let rft = ft.best_throughput(PROMPT, GEN).expect("FT fits");
        rows.push(vec![
            name.into(),
            format!("{}x{}={} GPUs", tp, pp, tp * pp),
            format!("{} (b={})", rft.tokens_per_s.round(), rft.batch),
            format!("{} (b={})", rds.tokens_per_s.round(), rds.batch),
            format!("{:.2}x", rds.tokens_per_s / rft.tokens_per_s),
        ]);
        json.push(Row::new("fig8", "FT", name, "gpus", (tp * pp) as f64, rft.tokens_per_s, "tokens/s"));
        json.push(Row::new("fig8", "DeepSpeed", name, "gpus", (tp * pp) as f64, rds.tokens_per_s, "tokens/s"));
    }
    print_table(&["model", "mapping", "FT tok/s", "DS tok/s", "gain"], &rows);
    println!(
        "\nnote: FT TP-only on 8 GPUs cannot hold 530B at all (133 GB/GPU needed);\n\
         the paper likewise could not run FT with TP+PP without crashing (Sec. VII-C)."
    );
    emit("fig8", &json);
}
