//! Fig. 9(a): ZeRO-Inference throughput of GPT-NeoX-20B across batch sizes
//! on a single A6000.

use dsi_bench::{emit, print_table};
use dsi_core::report::Row;
use dsi_model::zoo::dense_by_name;
use dsi_sim::hw::NodeSpec;
use dsi_zero::engine::ZeroInference;

fn main() {
    println!("Fig. 9(a) — GPT-NeoX-20B throughput vs batch size (1×A6000, ZeRO-Inference)\n");
    let z = ZeroInference::new(
        dense_by_name("GPT-NeoX-20B").unwrap(),
        NodeSpec::lambda_a6000(),
        1,
    );
    let max = z.max_batch();
    let mut batches: Vec<usize> = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .filter(|&b| b < max)
        .collect();
    batches.push(max);

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for b in batches {
        let r = z.run(b).expect("fits");
        rows.push(vec![
            b.to_string(),
            format!("{:.1}", r.flops_per_gpu / 1e12),
            format!("{:.0}%", 100.0 * r.flops_per_gpu / 158.4e12),
            format!("{:.0}%", 100.0 * r.stall_fraction),
        ]);
        json.push(Row::new(
            "fig9a",
            "ZeRO-Inference",
            "GPT-NeoX-20B",
            "batch",
            b as f64,
            r.flops_per_gpu / 1e12,
            "TFLOPS",
        ));
    }
    print_table(&["batch", "TFLOPS", "% of peak", "fetch stall"], &rows);
    emit("fig9a", &json);
}
