//! Fig. 9(b): throughput across model scales on a single A6000 — the
//! model-scale democratization result (25× larger than GPU-only, 10× larger
//! than CPU-only, >50% of peak).

use dsi_bench::{emit, print_table};
use dsi_core::report::Row;
use dsi_model::zoo::table1;
use dsi_sim::hw::NodeSpec;
use dsi_zero::engine::ZeroInference;

fn main() {
    println!("Fig. 9(b) — throughput across models on 1×A6000\n");
    let node = NodeSpec::lambda_a6000();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for e in table1() {
        if !e.fig9 && e.config.total_params() < 19e9 {
            continue; // Fig. 9 covers the 20B+ models
        }
        let z = ZeroInference::new(e.config.clone(), node.clone(), 1);
        let name = &e.config.name;
        let zero = z.run_max_batch();
        let gpu = z.gpu_only();
        let cpu = zero.and_then(|r| z.cpu_only(r.batch));
        let fmt = |r: Option<dsi_zero::engine::ZeroReport>| {
            r.map(|r| format!("{:.1} (b={})", r.flops_per_gpu / 1e12, r.batch))
                .unwrap_or_else(|| "OOM".into())
        };
        rows.push(vec![
            name.clone(),
            format!("{:.0}", e.config.total_params() / 1e9),
            fmt(gpu),
            fmt(cpu),
            fmt(zero),
            zero.map(|r| format!("{:?}", r.tier)).unwrap_or_default(),
        ]);
        for (sys, r) in [("GPU-only", gpu), ("CPU-only", cpu), ("ZeRO-Inference", zero)] {
            if let Some(r) = r {
                json.push(Row::new(
                    "fig9b",
                    sys,
                    name,
                    "params_B",
                    e.config.total_params() / 1e9,
                    r.flops_per_gpu / 1e12,
                    "TFLOPS",
                ));
            }
        }
    }
    print_table(
        &["model", "params(B)", "GPU-only TFLOPS", "CPU-only TFLOPS", "ZeRO TFLOPS", "tier"],
        &rows,
    );
    println!(
        "\nheadlines: ZeRO-Inference serves 530B (25x the GPU-only 20B limit, 10x the\n\
         CPU-only 50B limit) at >50% of the A6000's 158.4 TFLOPS peak."
    );
    emit("fig9b", &json);
}
