//! Fig. 9(c): ZeRO-Inference scalability of GPT-50B over 1–16 V100s on a
//! DGX-2, exploiting aggregate PCIe bandwidth (Sec. VI-B).

use dsi_bench::{emit, print_table};
use dsi_core::report::Row;
use dsi_model::zoo::dense_by_name;
use dsi_sim::hw::NodeSpec;
use dsi_zero::engine::ZeroInference;

fn main() {
    println!("Fig. 9(c) — GPT-50B scaling on a DGX-2 (V100), ZeRO-Inference\n");
    let node = NodeSpec::dgx2_v100();
    let model = dense_by_name("GPT-50B").unwrap();
    let base = ZeroInference::new(model.clone(), node.clone(), 1);
    let b1 = base.max_batch();
    let r1 = base.run(b1).expect("fits");

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for gpus in [1usize, 2, 4, 8, 16] {
        let z = ZeroInference::new(model.clone(), node.clone(), gpus);
        let r = z.run(b1 * gpus).expect("fits");
        let total = r.flops_per_gpu * gpus as f64;
        let speedup = total / r1.flops_per_gpu;
        rows.push(vec![
            gpus.to_string(),
            format!("{:.1}", r.flops_per_gpu / 1e12),
            format!("{:.1}", total / 1e12),
            format!("{:.2}x", speedup),
            format!("{:.0}%", 100.0 * speedup / gpus as f64),
        ]);
        json.push(Row::new(
            "fig9c",
            "ZeRO-Inference",
            "GPT-50B",
            "gpus",
            gpus as f64,
            total / 1e12,
            "TFLOPS",
        ));
    }
    print_table(
        &["GPUs", "TFLOPS/GPU", "total TFLOPS", "speedup", "efficiency"],
        &rows,
    );
    println!("\nheadline: single GPU ≈67 TFLOPS (53% of V100 peak), near-linear to 16 GPUs.");
    emit("fig9c", &json);
}
