//! Deployment planner CLI: for every Table I model, recommend the best
//! (TP × PP) mapping on a given cluster for latency and for throughput —
//! the "optimal parallelism strategy" question of Sec. I, answered
//! mechanically, including a what-if on post-paper hardware.

use dsi_bench::{emit, print_table};
use dsi_core::planner::{plan, Objective};
use dsi_core::report::Row;
use dsi_model::zoo::table1;
use dsi_sim::hw::ClusterSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let hw = args.get(2).map(|s| s.as_str()).unwrap_or("a100");
    let cluster = match hw {
        "h100" => ClusterSpec::dgx_h100(nodes),
        _ => ClusterSpec::dgx_a100(nodes),
    };
    println!(
        "Deployment planner — {} node(s) of 8x {} ({} GPUs)\n",
        nodes,
        cluster.node.gpu.name,
        cluster.total_gpus()
    );
    println!("usage: planner [nodes] [a100|h100]\n");

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for e in table1() {
        let model = e.config;
        let lat = plan(&model, &cluster, 128, 8, Objective::MinLatency { batch: 1 }, None);
        let thr = plan(&model, &cluster, 512, 50, Objective::MaxThroughput, None);
        let lat_s = lat
            .as_ref()
            .map(|p| {
                format!(
                    "TP{}xPP{} {:.0} ms",
                    p.best.tp,
                    p.best.pp,
                    p.best.report.total_latency * 1e3
                )
            })
            .unwrap_or_else(|| "infeasible".into());
        let thr_s = thr
            .as_ref()
            .map(|p| {
                format!(
                    "TP{}xPP{} {:.0} tok/s (b={})",
                    p.best.tp, p.best.pp, p.best.report.tokens_per_s, p.best.report.batch
                )
            })
            .unwrap_or_else(|| "infeasible".into());
        rows.push(vec![model.name.clone(), lat_s, thr_s]);
        if let Some(p) = &thr {
            json.push(Row::new(
                "planner",
                &format!("tp{}xpp{}", p.best.tp, p.best.pp),
                &model.name,
                "gpus",
                p.best.gpus as f64,
                p.best.report.tokens_per_s,
                "tokens/s",
            ));
        }
    }
    print_table(
        &["model", "best latency plan (b=1)", "best throughput plan"],
        &rows,
    );
    emit("planner", &json);
}
