//! Hardware sensitivity report: for representative deployments, which knob
//! (HBM, FLOPs, launch overhead, NVLink, network) actually governs latency —
//! the roofline attributions of the paper, made explicit per configuration.

use dsi_bench::{emit, print_table};
use dsi_core::engine::EngineConfig;
use dsi_core::report::Row;
use dsi_core::whatif::{sensitivities, ALL_KNOBS};
use dsi_model::zoo::dense_by_name;
use dsi_sim::hw::ClusterSpec;

fn main() {
    println!("Hardware sensitivity — latency elasticity per knob (2x probe)\n");
    let cases: [(&str, &str, usize, usize, usize, usize); 5] = [
        ("GPT-2 b=1 FT (launch-heavy)", "GPT-2-1.5B", 1, 1, 1, 1),
        ("GPT-J b=1 (HBM-bound)", "GPT-J-6B", 1, 1, 1, 1),
        ("GPT-J b=64 (compute-bound)", "GPT-J-6B", 1, 1, 1, 64),
        ("175B TP8xPP2 (balanced)", "LM-175B", 8, 2, 2, 8),
        ("175B TP16 cross-node (network)", "LM-175B", 16, 1, 2, 8),
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (label, model, tp, pp, nodes, batch) in cases {
        // The launch-heavy case is only visible without CUDA graphs: use the
        // FasterTransformer configuration for it.
        let mk = if label.contains("launch") {
            EngineConfig::faster_transformer
        } else {
            EngineConfig::deepspeed
        };
        let cfg = mk(
            dense_by_name(model).unwrap(),
            ClusterSpec::dgx_a100(nodes),
            tp,
            pp,
        );
        let s = sensitivities(&cfg, batch, 128, 8, 2.0);
        let mut row = vec![label.to_string()];
        for (knob, sv) in ALL_KNOBS.iter().zip(&s) {
            row.push(format!("{:.2}", sv.elasticity));
            json.push(Row::new(
                "sensitivity",
                &format!("{knob:?}"),
                label,
                "batch",
                batch as f64,
                sv.elasticity,
                "elasticity",
            ));
        }
        rows.push(row);
    }
    print_table(
        &["deployment", "HBM", "FLOPs", "launch", "NVLink", "network"],
        &rows,
    );
    println!(
        "\nreading: 1.0 = the knob fully governs latency; 0 = irrelevant.\n\
         the attributions match the paper's: HBM at small batch, FLOPs at large,\n\
         launch overhead for tiny models, the network only for cross-node TP."
    );
    emit("sensitivity", &json);
}
