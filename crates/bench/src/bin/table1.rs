//! Table I: model configurations used for the dense inference evaluation.

use dsi_bench::{emit, print_table};
use dsi_core::report::Row;
use dsi_model::zoo::table1;
use dsi_sim::hw::DType;

fn main() {
    println!("Table I — dense model configurations (paper Sec. VII-A3)\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for e in table1() {
        let c = &e.config;
        rows.push(vec![
            c.name.clone(),
            format!("{:.1}", c.total_params() / 1e9),
            c.hidden.to_string(),
            c.layers.to_string(),
            c.heads.to_string(),
            format!("{:.1}", c.weight_bytes(DType::Fp16) / 1e9),
            if e.fig6_tp > 0 {
                format!("TP={}", e.fig6_tp)
            } else {
                "N/A".into()
            },
            e.fig8
                .map(|(tp, pp)| format!("TP={tp},PP={pp}"))
                .unwrap_or_else(|| "N/A".into()),
            if e.fig9 { "TP=1".into() } else { "N/A".into() },
        ]);
        json.push(Row::new(
            "table1",
            "config",
            &c.name,
            "params_B",
            c.total_params() / 1e9,
            c.weight_bytes(DType::Fp16) / 1e9,
            "GB_fp16",
        ));
    }
    print_table(
        &[
            "model", "params(B)", "hidden", "layers", "heads", "fp16 GB", "Fig6", "Fig8", "Fig9",
        ],
        &rows,
    );
    emit("table1", &json);
}
