//! Table II: model configurations used for the sparse (MoE) evaluation.

use dsi_bench::{emit, print_table};
use dsi_core::report::Row;
use dsi_model::zoo::table2;

fn main() {
    println!("Table II — sparse model configurations (paper Sec. VII-A3)\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for m in table2() {
        rows.push(vec![
            m.name.clone(),
            format!("{:.1}", m.total_params() / 1e9),
            m.base.layers.to_string(),
            m.base.hidden.to_string(),
            m.mp_degree.to_string(),
            m.ep_degree.to_string(),
            m.expert_slicing.to_string(),
            m.gpus.to_string(),
            m.moe_layers.to_string(),
        ]);
        json.push(Row::new(
            "table2",
            "config",
            &m.name,
            "gpus",
            m.gpus as f64,
            m.total_params() / 1e9,
            "params_B",
        ));
    }
    print_table(
        &[
            "model",
            "size(B)",
            "layers",
            "hidden",
            "MP",
            "EP",
            "expert-slicing",
            "GPUs",
            "MoE layers",
        ],
        &rows,
    );
    emit("table2", &json);
}
