//! # dsi-bench — the benchmark harness
//!
//! One binary per table/figure of the paper's evaluation (Sec. VII):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table I — dense model configurations |
//! | `table2` | Table II — sparse model configurations |
//! | `fig6`   | dense latency/throughput vs FasterTransformer, FP16 & INT8 |
//! | `fig7`   | MoE latency/throughput vs PyTorch baseline, ≤256 GPUs |
//! | `fig8`   | 175B/530B throughput vs FT under TP×PP |
//! | `fig9a`  | ZeRO-Inference throughput vs batch (GPT-NeoX-20B, A6000) |
//! | `fig9b`  | ZeRO-Inference model scale & throughput across models |
//! | `fig9c`  | ZeRO-Inference multi-GPU scaling (GPT-50B, DGX-2) |
//! | `fig10a` | kernel breakdown: PyTorch → +Deep-Fusion → +SBI-GeMM |
//! | `fig10b` | 530B pipeline-optimization ablation |
//! | `fig10c` | prefetching impact on ZeRO-Inference (V100) |
//! | `fig11`  | MoE aggregate memory bandwidth scalability |
//! | `fig12`  | encoder kernel comparison vs E.T. |
//! | `fig13`  | hybrid-scheduling prompt latency vs FT |
//!
//! Every binary prints a human-readable table and writes JSON rows to
//! `results/<experiment>.jsonl` for mechanical comparison against the
//! paper's numbers (see `EXPERIMENTS.md`). Criterion micro-benchmarks of
//! the functional kernels live under `benches/`.

use dsi_core::report::Row;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Directory JSON results are written to (created on demand). Override with
/// the `DSI_RESULTS_DIR` environment variable.
pub fn results_dir() -> PathBuf {
    std::env::var_os("DSI_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Write rows to `results/<experiment>.jsonl` (overwrites) and echo a
/// summary line.
pub fn emit(experiment: &str, rows: &[Row]) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warn: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{experiment}.jsonl"));
    match fs::File::create(&path) {
        Ok(mut f) => {
            for r in rows {
                let _ = writeln!(f, "{}", r.json());
            }
            println!("[{} rows -> {}]", rows.len(), path.display());
        }
        Err(e) => eprintln!("warn: cannot write {}: {e}", path.display()),
    }
}

/// Fixed-width table printing for the human-readable view.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", line(headers.iter().map(|s| s.to_string()).collect()));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

/// Milliseconds formatter.
pub fn ms(t: f64) -> String {
    format!("{:.2}", t * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_env_override() {
        // Uses the env var when present (set by this test only).
        std::env::set_var("DSI_RESULTS_DIR", "/tmp/dsi-test-results");
        assert_eq!(results_dir(), PathBuf::from("/tmp/dsi-test-results"));
        std::env::remove_var("DSI_RESULTS_DIR");
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(0.00123), "1.23");
    }
}
