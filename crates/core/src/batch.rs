//! The batched engine step trait — the seam that lets one scheduler drive
//! many execution engines.
//!
//! Before this trait, `dsi-serve`'s worker was welded 1:1 to
//! [`FtSession`]: one request owned the whole session, so the M-row
//! microkernels of the fast path never saw M>1 in production. The trait
//! factors the *slot lifecycle* out of the execution engine:
//!
//! ```text
//!   free ──prefill(slot, prompt)──▶ resident ──decode_step*──▶ resident
//!                                       │
//!                                  release(slot)
//!                                       ▼
//!                                     free
//! ```
//!
//! * `prefill` admits a prompt into a free slot, runs its prompt pass, and
//!   returns the first greedy token;
//! * `decode_step` advances any strictly-ascending subset of resident slots
//!   one token each through a single ragged M-row pass;
//! * `release` retires a slot (returning its KV pages, if the engine is
//!   paged).
//!
//! Implementations: [`FastSession`] (one slot, contiguous KV),
//! [`BatchedFastSession`] (M slots, contiguous per-slot KV),
//! [`PagedEngine`] (M slots over a shared page pool — the serving
//! configuration), and [`FtEngine`] (one slot over the fault-tolerant
//! tensor-parallel [`FtSession`]). Every implementation emits **the same
//! token stream** for a given prompt — the microkernel
//! accumulation-order invariant makes batching and paging invisible to the
//! numerics — which is what lets the chaos suite use solo sessions as
//! bitwise oracles for continuous-batched serving.

use dsi_kernels::blocked::PanelWeights;
use dsi_model::fast::{BatchedFastSession, FastSession};
use dsi_model::paged::{PageStats, PagedEngine, PagesExhausted};
use dsi_parallel::supervisor::{FtSession, StepCtl, StepError};
use dsi_sim::fault::{EngineFaultInjector, EngineFaultKind};
use serde::Serialize;
use std::sync::Arc;

/// The failure classes an engine fault is binned into. Each class gets its
/// own circuit breaker in the serving runtime, so a stall storm cannot mask
/// a panic storm (and vice versa): tripping one class's breaker leaves the
/// others admitting normally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum FaultClass {
    /// A step exceeded its progress deadline (stall, slow rank, hang).
    Timeout,
    /// A step panicked or a worker died mid-step.
    Panic,
    /// A step completed but its output or KV state is untrustworthy.
    Corruption,
    /// Allocation pressure: page reservations failing beyond scheduling.
    Memory,
}

impl FaultClass {
    /// All classes, in breaker-set order.
    pub const ALL: [FaultClass; 4] =
        [FaultClass::Timeout, FaultClass::Panic, FaultClass::Corruption, FaultClass::Memory];

    /// Bin a fault message into a class by keyword. The messages are our
    /// own `Display` impls ([`dsi_sim::fault::CollectiveError`],
    /// [`dsi_parallel::supervisor::FaultError`], injected-fault strings),
    /// so the mapping is deterministic; unknown text defaults to `Panic`
    /// (the most conservative class: the engine's state is suspect).
    pub fn classify(msg: &str) -> FaultClass {
        let m = msg.to_ascii_lowercase();
        if m.contains("timed out") || m.contains("stall") || m.contains("deadline") {
            FaultClass::Timeout
        } else if m.contains("corrupt") {
            FaultClass::Corruption
        } else if m.contains("pages") || m.contains("memory") {
            FaultClass::Memory
        } else {
            // "poisoned", "panic", "dropped its barrier", "exit", ...
            FaultClass::Panic
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultClass::Timeout => "timeout",
            FaultClass::Panic => "panic",
            FaultClass::Corruption => "corruption",
            FaultClass::Memory => "memory",
        })
    }
}

/// Why an engine step could not run. `OutOfPages` is a *scheduling* signal
/// (retire a victim and retry — nothing advanced, nothing leaked); `Fault`
/// is an execution failure (the slot's sequence must be replayed from its
/// committed prefix or evicted, and the fault's class feeds that class's
/// circuit breaker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A page reservation failed; the step was not executed.
    OutOfPages { needed: usize, free: usize },
    /// The underlying engine faulted (collective failure, rank loss,
    /// injected chaos, ...).
    Fault { class: FaultClass, msg: String },
}

impl EngineError {
    /// Build a `Fault` by classifying `msg` (see [`FaultClass::classify`]).
    pub fn classified(msg: String) -> Self {
        EngineError::Fault { class: FaultClass::classify(&msg), msg }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::OutOfPages { needed, free } => {
                write!(f, "out of kv pages: need {needed}, {free} free")
            }
            EngineError::Fault { class, msg } => write!(f, "engine fault [{class}]: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<PagesExhausted> for EngineError {
    fn from(e: PagesExhausted) -> Self {
        EngineError::OutOfPages { needed: e.needed, free: e.free }
    }
}

/// A multi-slot generation engine a continuous-batching scheduler can
/// drive. See the module docs for the slot lifecycle and the
/// token-identity contract.
pub trait BatchEngine {
    /// Number of sequence slots (the scheduler's `SlotPolicy::max_slots`
    /// must not exceed this).
    fn max_slots(&self) -> usize;

    /// Admit `prompt` into free `slot`; returns the first greedy token.
    /// On `Err(OutOfPages)` the slot stays free and nothing is held.
    fn prefill(&mut self, slot: usize, prompt: &[usize]) -> Result<usize, EngineError>;

    /// Advance the given resident slots (strictly ascending) one token each
    /// in a single ragged pass, appending each new token to `out` in
    /// `slots` order. On `Err(OutOfPages)` no slot advanced.
    fn decode_step(&mut self, slots: &[usize], out: &mut Vec<usize>) -> Result<(), EngineError>;

    /// Retire `slot`, returning its KV storage for reuse.
    fn release(&mut self, slot: usize);

    /// Pages a `tokens`-long context pins. Unpaged engines meter at token
    /// granularity (one "page" per token), so page-based admission math
    /// degrades to token accounting without a special case.
    fn pages_for(&self, tokens: usize) -> usize {
        tokens
    }

    /// Allocator statistics, if the engine meters KV at page granularity.
    /// `None` means contiguous growth (admission falls back to the
    /// caller's token budget).
    fn kv_stats(&self) -> Option<PageStats> {
        None
    }
}

impl<B: PanelWeights> BatchEngine for FastSession<'_, '_, B> {
    fn max_slots(&self) -> usize {
        1
    }

    fn prefill(&mut self, slot: usize, prompt: &[usize]) -> Result<usize, EngineError> {
        assert_eq!(slot, 0, "FastSession has one slot");
        self.reset();
        self.begin(prompt);
        Ok(self.generate_step())
    }

    fn decode_step(&mut self, slots: &[usize], out: &mut Vec<usize>) -> Result<(), EngineError> {
        assert_eq!(slots, [0], "FastSession has one slot");
        out.push(self.generate_step());
        Ok(())
    }

    fn release(&mut self, slot: usize) {
        assert_eq!(slot, 0, "FastSession has one slot");
        self.reset();
    }
}

impl<B: PanelWeights> BatchEngine for BatchedFastSession<'_, '_, B> {
    fn max_slots(&self) -> usize {
        self.seqs.len()
    }

    fn prefill(&mut self, slot: usize, prompt: &[usize]) -> Result<usize, EngineError> {
        Ok(self.prefill_slot(slot, prompt))
    }

    fn decode_step(&mut self, slots: &[usize], out: &mut Vec<usize>) -> Result<(), EngineError> {
        self.decode_slots(slots, out);
        Ok(())
    }

    fn release(&mut self, slot: usize) {
        self.release_slot(slot);
    }
}

impl<B: PanelWeights> BatchEngine for PagedEngine<'_, '_, B> {
    fn max_slots(&self) -> usize {
        PagedEngine::max_slots(self)
    }

    fn prefill(&mut self, slot: usize, prompt: &[usize]) -> Result<usize, EngineError> {
        PagedEngine::prefill(self, slot, prompt).map_err(EngineError::from)
    }

    fn decode_step(&mut self, slots: &[usize], out: &mut Vec<usize>) -> Result<(), EngineError> {
        PagedEngine::decode(self, slots, out).map_err(EngineError::from)
    }

    fn release(&mut self, slot: usize) {
        PagedEngine::release(self, slot);
    }

    fn pages_for(&self, tokens: usize) -> usize {
        PagedEngine::pages_for(self, tokens)
    }

    fn kv_stats(&self) -> Option<PageStats> {
        Some(self.pool_stats())
    }
}

/// The fault-tolerant tensor-parallel engine: one slot over an
/// [`FtSession`], so TP execution plugs into the same scheduler seam as
/// the fast-path engines. Faults surface as [`EngineError::Fault`] with
/// the slot's sequence lost; the wrapper resets the session so the slot is
/// reusable.
pub struct FtEngine {
    sess: FtSession,
    resident: bool,
}

impl FtEngine {
    pub fn new(sess: FtSession) -> Self {
        FtEngine { sess, resident: false }
    }

    /// The wrapped session (fault report, TP degree, ...).
    pub fn session(&self) -> &FtSession {
        &self.sess
    }

    pub fn into_session(self) -> FtSession {
        self.sess
    }
}

impl BatchEngine for FtEngine {
    fn max_slots(&self) -> usize {
        1
    }

    fn prefill(&mut self, slot: usize, prompt: &[usize]) -> Result<usize, EngineError> {
        assert_eq!(slot, 0, "FtEngine has one slot");
        assert!(!self.resident, "prefill into occupied slot");
        self.sess.reset();
        let tok = self
            .sess
            .begin_ctl(prompt, &StepCtl::NONE)
            .and_then(|()| self.sess.generate_step_ctl(&StepCtl::NONE))
            .map_err(|e| match e {
                StepError::Fault(f) => EngineError::classified(f.to_string()),
                StepError::Aborted(_) => unreachable!("StepCtl::NONE never aborts"),
            })?;
        self.resident = true;
        Ok(tok)
    }

    fn decode_step(&mut self, slots: &[usize], out: &mut Vec<usize>) -> Result<(), EngineError> {
        assert_eq!(slots, [0], "FtEngine has one slot");
        assert!(self.resident, "decode of free slot");
        match self.sess.generate_step_ctl(&StepCtl::NONE) {
            Ok(tok) => {
                out.push(tok);
                Ok(())
            }
            Err(StepError::Fault(f)) => {
                // The sequence is unrecoverable: drop residency so the
                // scheduler can reuse the slot after accounting the loss.
                self.resident = false;
                self.sess.reset();
                Err(EngineError::classified(f.to_string()))
            }
            Err(StepError::Aborted(_)) => unreachable!("StepCtl::NONE never aborts"),
        }
    }

    fn release(&mut self, slot: usize) {
        assert_eq!(slot, 0, "FtEngine has one slot");
        self.resident = false;
        self.sess.reset();
    }
}

/// Chaos wrapper: any [`BatchEngine`] plus a scripted
/// [`EngineFaultInjector`]. Each fault kind is injected with semantics the
/// scheduler's recovery can rely on:
///
/// * `Panic` fires **before** the inner call, so the inner engine's state
///   is untouched when `catch_unwind` catches it — prefix replay of every
///   resident is sound and leaks nothing.
/// * `Stall` sleeps, then runs the call normally; detection is the
///   caller's per-step progress deadline (the call itself succeeds late).
/// * `Corrupt` runs the call, then reports its output as poisoned: decode
///   tokens are discarded (`out` is truncated back), a prefilled slot is
///   released again before the error returns — `Err` from prefill still
///   means "slot free".
/// * `Exhaust { calls }` returns `OutOfPages` for this call and the next
///   `calls - 1` calls of either kind without touching the inner engine —
///   a transient allocator storm the scheduler sheds through. A scripted
///   fault whose call index lands *inside* the storm is left pending (the
///   storm-eaten call never reaches the injector), so it shows up in
///   [`EngineFaultInjector::pending`] rather than vanishing silently.
///
/// With an empty plan the wrapper costs one atomic scan per call — the
/// armed-idle overhead `bench_serve` gates at < 2%.
pub struct FaultyEngine<E: BatchEngine> {
    inner: E,
    injector: Arc<EngineFaultInjector>,
    prefill_calls: u64,
    decode_calls: u64,
    exhaust_left: u32,
}

impl<E: BatchEngine> FaultyEngine<E> {
    pub fn new(inner: E, injector: Arc<EngineFaultInjector>) -> Self {
        FaultyEngine { inner, injector, prefill_calls: 0, decode_calls: 0, exhaust_left: 0 }
    }

    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Apply the shared pre-call kinds; `Corrupt` is site-specific and
    /// handled by the caller. The injector is queried only when no exhaust
    /// storm is draining, so a scripted fault whose call index lands inside
    /// a storm stays pending (observable via `EngineFaultInjector::pending`)
    /// instead of being consumed without firing. Returns `Err` if the call
    /// must not reach the inner engine.
    fn pre_call(&mut self, decode: bool, call: u64, needed: usize) -> Result<bool, EngineError> {
        if self.exhaust_left > 0 {
            self.exhaust_left -= 1;
            return Err(EngineError::OutOfPages { needed, free: 0 });
        }
        let kind = if decode {
            self.injector.at_decode(call)
        } else {
            self.injector.at_prefill(call)
        };
        match kind {
            Some(EngineFaultKind::Panic) => panic!("injected engine panic"),
            Some(EngineFaultKind::Stall { millis }) => {
                dsi_sim::fault::apply_stall(millis);
                Ok(false)
            }
            Some(EngineFaultKind::Exhaust { calls }) => {
                // `calls` counts this call too; clamp so a (public-field)
                // zero still means a one-call storm instead of wrapping to
                // a permanent one.
                self.exhaust_left = calls.saturating_sub(1);
                Err(EngineError::OutOfPages { needed, free: 0 })
            }
            Some(EngineFaultKind::Corrupt) => Ok(true),
            None => Ok(false),
        }
    }
}

impl<E: BatchEngine> BatchEngine for FaultyEngine<E> {
    fn max_slots(&self) -> usize {
        self.inner.max_slots()
    }

    fn prefill(&mut self, slot: usize, prompt: &[usize]) -> Result<usize, EngineError> {
        let call = self.prefill_calls;
        self.prefill_calls += 1;
        let needed = self.inner.pages_for(prompt.len() + 1);
        let corrupt = self.pre_call(false, call, needed)?;
        let tok = self.inner.prefill(slot, prompt)?;
        if corrupt {
            self.inner.release(slot);
            return Err(EngineError::Fault {
                class: FaultClass::Corruption,
                msg: format!("injected corruption at prefill {call}"),
            });
        }
        Ok(tok)
    }

    fn decode_step(&mut self, slots: &[usize], out: &mut Vec<usize>) -> Result<(), EngineError> {
        let call = self.decode_calls;
        self.decode_calls += 1;
        let corrupt = self.pre_call(true, call, slots.len())?;
        let base = out.len();
        self.inner.decode_step(slots, out)?;
        if corrupt {
            // The inner engine advanced: its KV now holds tokens the
            // scheduler never committed, so every stepped slot must be
            // replayed from its committed prefix.
            out.truncate(base);
            return Err(EngineError::Fault {
                class: FaultClass::Corruption,
                msg: format!("injected corruption at decode {call}"),
            });
        }
        Ok(())
    }

    fn release(&mut self, slot: usize) {
        self.inner.release(slot);
    }

    fn pages_for(&self, tokens: usize) -> usize {
        self.inner.pages_for(tokens)
    }

    fn kv_stats(&self) -> Option<PageStats> {
        self.inner.kv_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_model::fast::PackedModel;
    use dsi_model::reference::GptModel;
    use dsi_model::zoo;
    use dsi_parallel::supervisor::FtConfig;
    use std::sync::Arc;

    fn model(seed: u64) -> GptModel {
        GptModel::random(zoo::tiny(2), seed)
    }

    /// Drive any engine through the common lifecycle and return the token
    /// stream of one slot-0 request.
    fn run_slot0<E: BatchEngine>(eng: &mut E, prompt: &[usize], n: usize) -> Vec<usize> {
        let mut toks = vec![eng.prefill(0, prompt).unwrap()];
        let mut step = Vec::new();
        for _ in 1..n {
            step.clear();
            eng.decode_step(&[0], &mut step).unwrap();
            toks.push(step[0]);
        }
        eng.release(0);
        toks
    }

    #[test]
    fn every_engine_emits_the_same_tokens() {
        let m = model(11);
        let pm = PackedModel::pack(&m);
        let prompt = [3usize, 1, 4, 1, 5];
        let want = pm.session(prompt.len()).generate(&prompt, 6);

        let mut fast = pm.session(prompt.len());
        assert_eq!(run_slot0(&mut fast, &prompt, 6), want, "FastSession");

        let mut batched = pm.slot_session(3, prompt.len());
        assert_eq!(run_slot0(&mut batched, &prompt, 6), want, "BatchedFastSession");

        let mut paged = PagedEngine::new(&pm, 3, 32, 4);
        assert_eq!(run_slot0(&mut paged, &prompt, 6), want, "PagedEngine");

        let mut ft = FtEngine::new(FtSession::new(
            Arc::new(model(11)),
            prompt.len(),
            FtConfig::new(2),
        ));
        assert_eq!(run_slot0(&mut ft, &prompt, 6), want, "FtEngine tp=2");
    }

    #[test]
    fn slot_is_reusable_after_release() {
        let m = model(13);
        let pm = PackedModel::pack(&m);
        let mut paged = PagedEngine::new(&pm, 2, 16, 4);
        let a = run_slot0(&mut paged, &[1, 2, 3], 4);
        let b = run_slot0(&mut paged, &[1, 2, 3], 4);
        assert_eq!(a, b, "release must fully clear the slot");
        assert_eq!(paged.kv_stats().unwrap().pages_in_use, 0);
    }

    use dsi_sim::fault::{EngineFaultPlan, EngineFaultSite, EngineFaultSpec};

    fn spec(site: EngineFaultSite, kind: EngineFaultKind) -> EngineFaultSpec {
        EngineFaultSpec { site, kind }
    }

    #[test]
    fn faulty_engine_with_empty_plan_is_transparent() {
        let m = model(11);
        let pm = PackedModel::pack(&m);
        let prompt = [3usize, 1, 4, 1, 5];
        let want = pm.session(prompt.len()).generate(&prompt, 6);
        let paged = PagedEngine::new(&pm, 3, 32, 4);
        let mut faulty = FaultyEngine::new(paged, Arc::new(EngineFaultPlan::default().injector()));
        assert_eq!(run_slot0(&mut faulty, &prompt, 6), want);
    }

    #[test]
    fn corrupt_prefill_returns_err_with_slot_free() {
        let m = model(19);
        let pm = PackedModel::pack(&m);
        let plan = EngineFaultPlan::new(vec![spec(
            EngineFaultSite::Prefill { call: 0 },
            EngineFaultKind::Corrupt,
        )]);
        let paged = PagedEngine::new(&pm, 2, 16, 4);
        let mut eng = FaultyEngine::new(paged, Arc::new(plan.injector()));
        let err = eng.prefill(0, &[1, 2, 3]).unwrap_err();
        assert!(matches!(err, EngineError::Fault { class: FaultClass::Corruption, .. }), "{err}");
        assert_eq!(eng.kv_stats().unwrap().pages_in_use, 0, "Err from prefill must leave slot free");
        // The slot is immediately reusable and numerics are untouched.
        let want = pm.session(3).generate(&[1, 2, 3], 4);
        assert_eq!(run_slot0(&mut eng, &[1, 2, 3], 4), want);
    }

    #[test]
    fn corrupt_decode_discards_tokens_and_reports_poisoned_state() {
        let m = model(23);
        let pm = PackedModel::pack(&m);
        let plan = EngineFaultPlan::new(vec![spec(
            EngineFaultSite::Decode { call: 0 },
            EngineFaultKind::Corrupt,
        )]);
        let paged = PagedEngine::new(&pm, 2, 16, 4);
        let mut eng = FaultyEngine::new(paged, Arc::new(plan.injector()));
        eng.prefill(0, &[1, 2, 3]).unwrap();
        let mut out = vec![99];
        let err = eng.decode_step(&[0], &mut out).unwrap_err();
        assert!(matches!(err, EngineError::Fault { class: FaultClass::Corruption, .. }), "{err}");
        assert_eq!(out, [99], "corrupted step's tokens must be discarded");
        // The inner engine advanced: context length shows the poison.
        assert_eq!(eng.inner().context_len(0), 4, "inner state advanced past the committed prefix");
    }

    #[test]
    fn exhaust_storm_counts_down_without_touching_inner() {
        let m = model(29);
        let pm = PackedModel::pack(&m);
        let plan = EngineFaultPlan::new(vec![spec(
            EngineFaultSite::Decode { call: 0 },
            EngineFaultKind::Exhaust { calls: 2 },
        )]);
        let paged = PagedEngine::new(&pm, 2, 16, 4);
        let mut eng = FaultyEngine::new(paged, Arc::new(plan.injector()));
        let t0 = eng.prefill(0, &[1, 2, 3]).unwrap();
        let mut out = Vec::new();
        for _ in 0..2 {
            let err = eng.decode_step(&[0], &mut out).unwrap_err();
            assert!(matches!(err, EngineError::OutOfPages { .. }), "{err}");
        }
        eng.decode_step(&[0], &mut out).unwrap();
        let want = pm.session(3).generate(&[1, 2, 3], 2);
        assert_eq!(vec![t0, out[0]], want, "storm must not advance or corrupt the sequence");
    }

    #[test]
    fn scripted_fault_inside_exhaust_storm_stays_pending() {
        let m = model(41);
        let pm = PackedModel::pack(&m);
        // The storm at decode call 0 covers calls 0-1; the panic scripted
        // at call 1 lands inside it and must NOT be consumed (a one-shot
        // spec silently eaten by the storm would shrink chaos coverage).
        let plan = EngineFaultPlan::new(vec![
            spec(EngineFaultSite::Decode { call: 0 }, EngineFaultKind::Exhaust { calls: 2 }),
            spec(EngineFaultSite::Decode { call: 1 }, EngineFaultKind::Panic),
        ]);
        let injector = Arc::new(plan.injector());
        let paged = PagedEngine::new(&pm, 2, 16, 4);
        let mut eng = FaultyEngine::new(paged, Arc::clone(&injector));
        eng.prefill(0, &[1, 2, 3]).unwrap();
        let mut out = Vec::new();
        for _ in 0..2 {
            let err = eng.decode_step(&[0], &mut out).unwrap_err();
            assert!(matches!(err, EngineError::OutOfPages { .. }), "{err}");
        }
        assert_eq!(injector.pending(), 1, "storm-covered spec must stay pending, not vanish");
        // The storm has drained; the next call runs clean.
        eng.decode_step(&[0], &mut out).unwrap();
    }

    #[test]
    fn exhaust_zero_calls_clamps_to_one_call_storm() {
        let m = model(43);
        let pm = PackedModel::pack(&m);
        // `calls` is a public field: 0 must mean a one-call storm, not a
        // `0 - 1` wrap into a permanent one.
        let plan = EngineFaultPlan::new(vec![spec(
            EngineFaultSite::Decode { call: 0 },
            EngineFaultKind::Exhaust { calls: 0 },
        )]);
        let paged = PagedEngine::new(&pm, 2, 16, 4);
        let mut eng = FaultyEngine::new(paged, Arc::new(plan.injector()));
        eng.prefill(0, &[1, 2, 3]).unwrap();
        let mut out = Vec::new();
        let err = eng.decode_step(&[0], &mut out).unwrap_err();
        assert!(matches!(err, EngineError::OutOfPages { .. }), "{err}");
        eng.decode_step(&[0], &mut out).unwrap();
    }

    #[test]
    fn injected_panic_fires_before_inner_state_changes() {
        let m = model(31);
        let pm = PackedModel::pack(&m);
        let plan = EngineFaultPlan::new(vec![spec(
            EngineFaultSite::Decode { call: 0 },
            EngineFaultKind::Panic,
        )]);
        let paged = PagedEngine::new(&pm, 2, 16, 4);
        let mut eng = FaultyEngine::new(paged, Arc::new(plan.injector()));
        eng.prefill(0, &[1, 2, 3]).unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut out = Vec::new();
            eng.decode_step(&[0], &mut out)
        }));
        assert!(r.is_err(), "scripted panic must fire");
        assert_eq!(eng.inner().context_len(0), 3, "panic fires before the inner engine runs");
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The recovery contract the scheduler's prefix replay rests on:
        /// releasing a resident and re-prefilling its committed prefix
        /// reproduces the exact token stream — greedy decode is a pure
        /// function of the committed context.
        #[test]
        fn prefix_replay_is_bit_exact(
            prompt in prop::collection::vec(0usize..16, 1..6),
            k in 1usize..6,
            tail in 2usize..5,
        ) {
            let m = model(37);
            let pm = PackedModel::pack(&m);
            let want = pm.session(prompt.len()).generate(&prompt, k + tail);
            let mut eng = PagedEngine::new(&pm, 2, 64, 4);
            // Run k tokens, fault, release, replay the committed prefix,
            // finish — the stream must equal the un-faulted oracle.
            let mut toks = vec![eng.prefill(0, &prompt).unwrap()];
            let mut step = Vec::new();
            for _ in 1..k {
                step.clear();
                eng.decode_step(&[0], &mut step).unwrap();
                toks.push(step[0]);
            }
            BatchEngine::release(&mut eng, 0);
            let mut committed: Vec<usize> = prompt.clone();
            committed.extend_from_slice(&toks[..k - 1]);
            let replayed = eng.prefill(0, &committed).unwrap();
            prop_assert_eq!(replayed, toks[k - 1], "replay must reproduce the last token");
            for _ in 0..tail {
                step.clear();
                eng.decode_step(&[0], &mut step).unwrap();
                toks.push(step[0]);
            }
            prop_assert_eq!(&toks, &want);
        }
    }

    #[test]
    fn fault_classification_maps_known_messages() {
        assert_eq!(FaultClass::classify("rank 2 timed out at epoch 7"), FaultClass::Timeout);
        assert_eq!(FaultClass::classify("step stalled past deadline"), FaultClass::Timeout);
        assert_eq!(FaultClass::classify("corrupted chunk from rank 1"), FaultClass::Corruption);
        assert_eq!(FaultClass::classify("group poisoned by rank 0"), FaultClass::Panic);
        assert_eq!(FaultClass::classify("rank 3 dropped its barrier"), FaultClass::Panic);
        assert_eq!(FaultClass::classify("out of kv pages: need 2, 0 free"), FaultClass::Memory);
        assert_eq!(FaultClass::classify("???"), FaultClass::Panic, "unknown defaults to Panic");
    }

    #[test]
    fn unpaged_engines_meter_per_token() {
        let m = model(17);
        let pm = PackedModel::pack(&m);
        let fast = pm.session(4);
        assert_eq!(BatchEngine::pages_for(&fast, 7), 7);
        assert!(BatchEngine::kv_stats(&fast).is_none());
        let paged = PagedEngine::new(&pm, 1, 8, 4);
        assert_eq!(BatchEngine::pages_for(&paged, 7), 2);
        assert_eq!(BatchEngine::kv_stats(&paged).unwrap().pages_total, 8);
    }
}
