//! The batched engine step trait — the seam that lets one scheduler drive
//! many execution engines.
//!
//! Before this trait, `dsi-serve`'s worker was welded 1:1 to
//! [`FtSession`]: one request owned the whole session, so the M-row
//! microkernels of the fast path never saw M>1 in production. The trait
//! factors the *slot lifecycle* out of the execution engine:
//!
//! ```text
//!   free ──prefill(slot, prompt)──▶ resident ──decode_step*──▶ resident
//!                                       │
//!                                  release(slot)
//!                                       ▼
//!                                     free
//! ```
//!
//! * `prefill` admits a prompt into a free slot, runs its prompt pass, and
//!   returns the first greedy token;
//! * `decode_step` advances any strictly-ascending subset of resident slots
//!   one token each through a single ragged M-row pass;
//! * `release` retires a slot (returning its KV pages, if the engine is
//!   paged).
//!
//! Implementations: [`FastSession`] (one slot, contiguous KV),
//! [`BatchedFastSession`] (M slots, contiguous per-slot KV),
//! [`PagedEngine`] (M slots over a shared page pool — the serving
//! configuration), and [`FtEngine`] (one slot over the fault-tolerant
//! tensor-parallel [`FtSession`]). Every implementation emits **the same
//! token stream** for a given prompt — the microkernel
//! accumulation-order invariant makes batching and paging invisible to the
//! numerics — which is what lets the chaos suite use solo sessions as
//! bitwise oracles for continuous-batched serving.

use dsi_kernels::blocked::PanelWeights;
use dsi_model::fast::{BatchedFastSession, FastSession};
use dsi_model::paged::{PageStats, PagedEngine, PagesExhausted};
use dsi_parallel::supervisor::{FtSession, StepCtl, StepError};

/// Why an engine step could not run. `OutOfPages` is a *scheduling* signal
/// (retire a victim and retry — nothing advanced, nothing leaked); `Fault`
/// is an execution failure (the slot's sequence is lost and the engine may
/// need a reset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A page reservation failed; the step was not executed.
    OutOfPages { needed: usize, free: usize },
    /// The underlying engine faulted (collective failure, rank loss, ...).
    Fault(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::OutOfPages { needed, free } => {
                write!(f, "out of kv pages: need {needed}, {free} free")
            }
            EngineError::Fault(m) => write!(f, "engine fault: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<PagesExhausted> for EngineError {
    fn from(e: PagesExhausted) -> Self {
        EngineError::OutOfPages { needed: e.needed, free: e.free }
    }
}

/// A multi-slot generation engine a continuous-batching scheduler can
/// drive. See the module docs for the slot lifecycle and the
/// token-identity contract.
pub trait BatchEngine {
    /// Number of sequence slots (the scheduler's `SlotPolicy::max_slots`
    /// must not exceed this).
    fn max_slots(&self) -> usize;

    /// Admit `prompt` into free `slot`; returns the first greedy token.
    /// On `Err(OutOfPages)` the slot stays free and nothing is held.
    fn prefill(&mut self, slot: usize, prompt: &[usize]) -> Result<usize, EngineError>;

    /// Advance the given resident slots (strictly ascending) one token each
    /// in a single ragged pass, appending each new token to `out` in
    /// `slots` order. On `Err(OutOfPages)` no slot advanced.
    fn decode_step(&mut self, slots: &[usize], out: &mut Vec<usize>) -> Result<(), EngineError>;

    /// Retire `slot`, returning its KV storage for reuse.
    fn release(&mut self, slot: usize);

    /// Pages a `tokens`-long context pins. Unpaged engines meter at token
    /// granularity (one "page" per token), so page-based admission math
    /// degrades to token accounting without a special case.
    fn pages_for(&self, tokens: usize) -> usize {
        tokens
    }

    /// Allocator statistics, if the engine meters KV at page granularity.
    /// `None` means contiguous growth (admission falls back to the
    /// caller's token budget).
    fn kv_stats(&self) -> Option<PageStats> {
        None
    }
}

impl<B: PanelWeights> BatchEngine for FastSession<'_, '_, B> {
    fn max_slots(&self) -> usize {
        1
    }

    fn prefill(&mut self, slot: usize, prompt: &[usize]) -> Result<usize, EngineError> {
        assert_eq!(slot, 0, "FastSession has one slot");
        self.reset();
        self.begin(prompt);
        Ok(self.generate_step())
    }

    fn decode_step(&mut self, slots: &[usize], out: &mut Vec<usize>) -> Result<(), EngineError> {
        assert_eq!(slots, [0], "FastSession has one slot");
        out.push(self.generate_step());
        Ok(())
    }

    fn release(&mut self, slot: usize) {
        assert_eq!(slot, 0, "FastSession has one slot");
        self.reset();
    }
}

impl<B: PanelWeights> BatchEngine for BatchedFastSession<'_, '_, B> {
    fn max_slots(&self) -> usize {
        self.seqs.len()
    }

    fn prefill(&mut self, slot: usize, prompt: &[usize]) -> Result<usize, EngineError> {
        Ok(self.prefill_slot(slot, prompt))
    }

    fn decode_step(&mut self, slots: &[usize], out: &mut Vec<usize>) -> Result<(), EngineError> {
        self.decode_slots(slots, out);
        Ok(())
    }

    fn release(&mut self, slot: usize) {
        self.release_slot(slot);
    }
}

impl<B: PanelWeights> BatchEngine for PagedEngine<'_, '_, B> {
    fn max_slots(&self) -> usize {
        PagedEngine::max_slots(self)
    }

    fn prefill(&mut self, slot: usize, prompt: &[usize]) -> Result<usize, EngineError> {
        PagedEngine::prefill(self, slot, prompt).map_err(EngineError::from)
    }

    fn decode_step(&mut self, slots: &[usize], out: &mut Vec<usize>) -> Result<(), EngineError> {
        PagedEngine::decode(self, slots, out).map_err(EngineError::from)
    }

    fn release(&mut self, slot: usize) {
        PagedEngine::release(self, slot);
    }

    fn pages_for(&self, tokens: usize) -> usize {
        PagedEngine::pages_for(self, tokens)
    }

    fn kv_stats(&self) -> Option<PageStats> {
        Some(self.pool_stats())
    }
}

/// The fault-tolerant tensor-parallel engine: one slot over an
/// [`FtSession`], so TP execution plugs into the same scheduler seam as
/// the fast-path engines. Faults surface as [`EngineError::Fault`] with
/// the slot's sequence lost; the wrapper resets the session so the slot is
/// reusable.
pub struct FtEngine {
    sess: FtSession,
    resident: bool,
}

impl FtEngine {
    pub fn new(sess: FtSession) -> Self {
        FtEngine { sess, resident: false }
    }

    /// The wrapped session (fault report, TP degree, ...).
    pub fn session(&self) -> &FtSession {
        &self.sess
    }

    pub fn into_session(self) -> FtSession {
        self.sess
    }
}

impl BatchEngine for FtEngine {
    fn max_slots(&self) -> usize {
        1
    }

    fn prefill(&mut self, slot: usize, prompt: &[usize]) -> Result<usize, EngineError> {
        assert_eq!(slot, 0, "FtEngine has one slot");
        assert!(!self.resident, "prefill into occupied slot");
        self.sess.reset();
        let tok = self
            .sess
            .begin_ctl(prompt, &StepCtl::NONE)
            .and_then(|()| self.sess.generate_step_ctl(&StepCtl::NONE))
            .map_err(|e| match e {
                StepError::Fault(f) => EngineError::Fault(f.to_string()),
                StepError::Aborted(_) => unreachable!("StepCtl::NONE never aborts"),
            })?;
        self.resident = true;
        Ok(tok)
    }

    fn decode_step(&mut self, slots: &[usize], out: &mut Vec<usize>) -> Result<(), EngineError> {
        assert_eq!(slots, [0], "FtEngine has one slot");
        assert!(self.resident, "decode of free slot");
        match self.sess.generate_step_ctl(&StepCtl::NONE) {
            Ok(tok) => {
                out.push(tok);
                Ok(())
            }
            Err(StepError::Fault(f)) => {
                // The sequence is unrecoverable: drop residency so the
                // scheduler can reuse the slot after accounting the loss.
                self.resident = false;
                self.sess.reset();
                Err(EngineError::Fault(f.to_string()))
            }
            Err(StepError::Aborted(_)) => unreachable!("StepCtl::NONE never aborts"),
        }
    }

    fn release(&mut self, slot: usize) {
        assert_eq!(slot, 0, "FtEngine has one slot");
        self.resident = false;
        self.sess.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_model::fast::PackedModel;
    use dsi_model::reference::GptModel;
    use dsi_model::zoo;
    use dsi_parallel::supervisor::FtConfig;
    use std::sync::Arc;

    fn model(seed: u64) -> GptModel {
        GptModel::random(zoo::tiny(2), seed)
    }

    /// Drive any engine through the common lifecycle and return the token
    /// stream of one slot-0 request.
    fn run_slot0<E: BatchEngine>(eng: &mut E, prompt: &[usize], n: usize) -> Vec<usize> {
        let mut toks = vec![eng.prefill(0, prompt).unwrap()];
        let mut step = Vec::new();
        for _ in 1..n {
            step.clear();
            eng.decode_step(&[0], &mut step).unwrap();
            toks.push(step[0]);
        }
        eng.release(0);
        toks
    }

    #[test]
    fn every_engine_emits_the_same_tokens() {
        let m = model(11);
        let pm = PackedModel::pack(&m);
        let prompt = [3usize, 1, 4, 1, 5];
        let want = pm.session(prompt.len()).generate(&prompt, 6);

        let mut fast = pm.session(prompt.len());
        assert_eq!(run_slot0(&mut fast, &prompt, 6), want, "FastSession");

        let mut batched = pm.slot_session(3, prompt.len());
        assert_eq!(run_slot0(&mut batched, &prompt, 6), want, "BatchedFastSession");

        let mut paged = PagedEngine::new(&pm, 3, 32, 4);
        assert_eq!(run_slot0(&mut paged, &prompt, 6), want, "PagedEngine");

        let mut ft = FtEngine::new(FtSession::new(
            Arc::new(model(11)),
            prompt.len(),
            FtConfig::new(2),
        ));
        assert_eq!(run_slot0(&mut ft, &prompt, 6), want, "FtEngine tp=2");
    }

    #[test]
    fn slot_is_reusable_after_release() {
        let m = model(13);
        let pm = PackedModel::pack(&m);
        let mut paged = PagedEngine::new(&pm, 2, 16, 4);
        let a = run_slot0(&mut paged, &[1, 2, 3], 4);
        let b = run_slot0(&mut paged, &[1, 2, 3], 4);
        assert_eq!(a, b, "release must fully clear the slot");
        assert_eq!(paged.kv_stats().unwrap().pages_in_use, 0);
    }

    #[test]
    fn unpaged_engines_meter_per_token() {
        let m = model(17);
        let pm = PackedModel::pack(&m);
        let fast = pm.session(4);
        assert_eq!(BatchEngine::pages_for(&fast, 7), 7);
        assert!(BatchEngine::kv_stats(&fast).is_none());
        let paged = PagedEngine::new(&pm, 1, 8, 4);
        assert_eq!(BatchEngine::pages_for(&paged, 7), 2);
        assert_eq!(BatchEngine::kv_stats(&paged).unwrap().pages_total, 8);
    }
}
