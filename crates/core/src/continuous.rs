//! Continuous (iteration-level) batching — the natural extension of the
//! paper's token-queue schedule (Fig. 2b) from micro-batches to *requests*.
//!
//! Static batching (the [`crate::serving`] baseline) admits a batch, runs it
//! to completion, and only then admits the next one: late arrivals wait out
//! the whole generation of strangers. Continuous batching re-forms the
//! running batch at every token step — new requests join as soon as their
//! prompt is processed, finished requests leave immediately — which is the
//! scheduling discipline production engines adopted after the paper. The
//! simulation below quantifies how much of the tail latency that discipline
//! removes, on the same engine cost model.

use crate::engine::InferenceEngine;
use crate::serving::{FaultProfile, ServingReport, Workload};
use crate::stats::percentile;
use rand::distributions::Distribution;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The iteration-level slot policy — **one** struct shared by the analytic
/// simulator below and the *executed* continuous scheduler in `dsi-serve`
/// (`dsi_serve::scheduler`): a sequence may join whenever a slot is free,
/// and retires the moment it finishes. Keeping the decision in one place
/// means the simulator's predictions and the runtime's behavior cannot
/// drift apart on admission policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotPolicy {
    /// Maximum sequences resident in the running batch.
    pub max_slots: usize,
}

impl SlotPolicy {
    pub fn new(max_slots: usize) -> Self {
        assert!(max_slots > 0, "SlotPolicy: max_slots must be positive");
        SlotPolicy { max_slots }
    }

    /// May another sequence join a batch currently holding `resident`?
    pub fn can_admit(&self, resident: usize) -> bool {
        resident < self.max_slots
    }

    /// Slots free for admission with `resident` sequences in flight.
    pub fn free_slots(&self, resident: usize) -> usize {
        self.max_slots.saturating_sub(resident)
    }
}

/// Continuous-batching policy.
#[derive(Debug, Clone, Copy)]
pub struct ContinuousPolicy {
    /// Maximum sequences resident in the running batch.
    pub max_batch: usize,
}

impl ContinuousPolicy {
    /// The slot policy this batching policy induces.
    pub fn slots(&self) -> SlotPolicy {
        SlotPolicy::new(self.max_batch)
    }
}

impl From<ContinuousPolicy> for SlotPolicy {
    fn from(p: ContinuousPolicy) -> Self {
        p.slots()
    }
}

#[derive(Debug, Clone)]
struct Request {
    arrival: f64,
    remaining: usize,
    prompt_done: bool,
    retries_left: usize,
}

/// Simulate continuous batching for `workload` on `engine`. Time advances in
/// token steps of the current running batch; between steps, finished
/// requests retire and waiting requests are admitted (their prompt is
/// charged on admission).
pub fn simulate_continuous(
    engine: &InferenceEngine,
    workload: &Workload,
    policy: ContinuousPolicy,
) -> ServingReport {
    simulate_continuous_with_faults(engine, workload, policy, FaultProfile::NONE)
}

/// [`simulate_continuous`] with a request-level [`FaultProfile`]. A request's
/// attempt fails (with probability `failure_rate`) at the moment it would
/// retire; a failed request with retry budget left restarts in place —
/// re-prefilled and regenerated while holding its batch slot — and one that
/// exhausts the budget is evicted and counted, never silently dropped.
pub fn simulate_continuous_with_faults(
    engine: &InferenceEngine,
    workload: &Workload,
    policy: ContinuousPolicy,
    faults: FaultProfile,
) -> ServingReport {
    assert!(workload.requests > 0 && policy.max_batch > 0);
    assert!((0.0..=1.0).contains(&faults.failure_rate));
    let slots = policy.slots();
    let mut rng = ChaCha8Rng::seed_from_u64(workload.seed);
    let exp = rand::distributions::Uniform::new(0.0f64, 1.0);
    let mut fault_rng = ChaCha8Rng::seed_from_u64(faults.seed);
    let mut arrivals = Vec::with_capacity(workload.requests);
    let mut t = 0.0;
    for _ in 0..workload.requests {
        let u: f64 = exp.sample(&mut rng).max(1e-12);
        t += -u.ln() / workload.arrival_rate;
        arrivals.push(t);
    }

    // Cost primitives from the engine (deterministic, cache by batch size).
    let mut prompt_cache: Vec<Option<f64>> = vec![None; policy.max_batch + 1];
    let mut step_cache: Vec<Option<f64>> = vec![None; policy.max_batch + 1];
    let mut prompt_time = |b: usize| -> f64 {
        let b = b.clamp(1, policy.max_batch);
        if prompt_cache[b].is_none() {
            prompt_cache[b] =
                Some(engine.generation(b, workload.prompt, 1).prompt_latency);
        }
        prompt_cache[b].unwrap()
    };
    let mut step_time = |b: usize| -> f64 {
        let b = b.clamp(1, policy.max_batch);
        if step_cache[b].is_none() {
            // Per-token time of a b-sized batch: amortize the generation tail.
            let r = engine.generation(b, workload.prompt, workload.gen);
            step_cache[b] = Some((r.total_latency - r.prompt_latency) / workload.gen.max(1) as f64);
        }
        step_cache[b].unwrap()
    };

    let mut now = 0.0f64;
    let mut busy = 0.0f64;
    let mut running: Vec<Request> = Vec::new();
    let mut next = 0usize;
    let mut latencies: Vec<f64> = Vec::new();
    let mut batch_sizes: Vec<f64> = Vec::new();
    let mut failed_attempts = 0usize;
    let mut retried = 0usize;
    let mut evicted = 0usize;

    while latencies.len() + evicted < workload.requests {
        // Admit arrivals into free slots (shared policy with dsi-serve's
        // executed scheduler).
        while next < arrivals.len()
            && slots.can_admit(running.len())
            && arrivals[next] <= now
        {
            running.push(Request {
                arrival: arrivals[next],
                remaining: workload.gen,
                prompt_done: false,
                retries_left: faults.max_retries,
            });
            next += 1;
        }
        if running.is_empty() {
            // Idle until the next arrival.
            now = arrivals[next].max(now);
            continue;
        }
        // Charge prompts for newly admitted requests (processed alongside
        // the running batch, like the paper's hybrid prompt handling).
        let fresh = running.iter().filter(|r| !r.prompt_done).count();
        if fresh > 0 {
            let dt = prompt_time(fresh);
            now += dt;
            busy += dt;
            for r in running.iter_mut() {
                r.prompt_done = true;
            }
        }
        // One token step for the whole running batch.
        let b = running.len();
        batch_sizes.push(b as f64);
        let dt = step_time(b);
        now += dt;
        busy += dt;
        for r in running.iter_mut() {
            r.remaining -= 1;
        }
        // Retire finished requests. A request's attempt fails at the moment
        // it would retire: with budget left it restarts in place (fresh
        // prompt + generation, same batch slot), otherwise it is evicted.
        running.retain_mut(|r| {
            if r.remaining > 0 {
                return true;
            }
            if exp.sample(&mut fault_rng) < faults.failure_rate {
                failed_attempts += 1;
                if r.retries_left > 0 {
                    r.retries_left -= 1;
                    retried += 1;
                    r.remaining = workload.gen;
                    r.prompt_done = false;
                    return true;
                }
                evicted += 1;
                return false;
            }
            latencies.push(now - r.arrival);
            false
        });
    }

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let wall = now.max(*arrivals.last().unwrap());
    // Always-on accounting invariant (mirrors `simulate_serving_with_faults`).
    assert_eq!(
        latencies.len() + evicted,
        workload.requests,
        "continuous accounting violated: {} completed + {} evicted != {} requests",
        latencies.len(),
        evicted,
        workload.requests
    );
    ServingReport {
        completed: latencies.len(),
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
        mean_batch: batch_sizes.iter().sum::<f64>() / batch_sizes.len().max(1) as f64,
        // Continuous retries restart in place inside the running batch;
        // there are no separate retry waves to measure.
        mean_retry_batch: 0.0,
        goodput: latencies.len() as f64 / wall,
        utilization: busy / wall,
        failed_attempts,
        retried,
        evicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::serving::{simulate_serving, BatchPolicy};
    use dsi_model::zoo::dense_by_name;
    use dsi_sim::hw::ClusterSpec;

    fn engine() -> InferenceEngine {
        InferenceEngine::new(EngineConfig::deepspeed(
            dense_by_name("GPT-J-6B").unwrap(),
            ClusterSpec::dgx_a100(1),
            1,
            1,
        ))
    }

    fn workload(rate: f64) -> Workload {
        Workload {
            arrival_rate: rate,
            prompt: 128,
            gen: 16,
            requests: 150,
            seed: 21,
        }
    }

    #[test]
    fn completes_everything_deterministically() {
        let e = engine();
        let p = ContinuousPolicy { max_batch: 16 };
        let a = simulate_continuous(&e, &workload(20.0), p);
        let b = simulate_continuous(&e, &workload(20.0), p);
        assert_eq!(a.completed, 150);
        assert_eq!(a.p99, b.p99);
        assert!(a.p50 <= a.p95 && a.p95 <= a.p99);
        assert!(a.utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn beats_static_batching_tail_latency_under_load() {
        // The headline property: at moderate load with long generations,
        // iteration-level scheduling cuts tail latency vs run-to-completion
        // batching (late arrivals no longer wait out strangers' tokens).
        // At full saturation the advantage flips — prompt passes interleave
        // with decoding — which is why production engines added chunked
        // prefill on top; the crossover itself is part of the model.
        let e = engine();
        let mut w = workload(10.0);
        w.gen = 48;
        let stat = simulate_serving(
            &e,
            &w,
            BatchPolicy {
                max_batch: 16,
                max_wait: 0.05,
            },
        );
        let cont = simulate_continuous(&e, &w, ContinuousPolicy { max_batch: 16 });
        assert!(
            cont.p99 < 0.8 * stat.p99,
            "continuous p99 {:.3}s vs static {:.3}s",
            cont.p99,
            stat.p99
        );
        assert!(cont.p50 < stat.p50);
    }

    #[test]
    fn light_load_degenerates_gracefully() {
        // At trivial load both disciplines serve ~one request at a time.
        let e = engine();
        let w = workload(0.5);
        let cont = simulate_continuous(&e, &w, ContinuousPolicy { max_batch: 8 });
        assert!(cont.mean_batch < 1.6, "mean batch {}", cont.mean_batch);
        assert_eq!(cont.completed, 150);
    }

    #[test]
    fn batch_cap_respected() {
        let e = engine();
        let w = workload(500.0); // heavy overload
        let cont = simulate_continuous(&e, &w, ContinuousPolicy { max_batch: 4 });
        assert!(cont.mean_batch <= 4.0 + 1e-9);
        assert!(cont.utilization > 0.9);
    }

    #[test]
    fn fault_free_profile_is_the_identity() {
        let e = engine();
        let p = ContinuousPolicy { max_batch: 16 };
        let plain = simulate_continuous(&e, &workload(20.0), p);
        let faulty =
            simulate_continuous_with_faults(&e, &workload(20.0), p, FaultProfile::NONE);
        assert_eq!(plain.p99, faulty.p99);
        assert_eq!(plain.completed, faulty.completed);
        assert_eq!(faulty.failed_attempts, 0);
        assert_eq!(faulty.evicted, 0);
    }

    #[test]
    fn faults_are_never_silently_dropped() {
        let e = engine();
        let p = ContinuousPolicy { max_batch: 16 };
        for (rate, max_retries) in [(0.3, 0), (0.3, 2), (1.0, 2)] {
            let f = FaultProfile { failure_rate: rate, max_retries, seed: 9 };
            let r = simulate_continuous_with_faults(&e, &workload(20.0), p, f);
            assert_eq!(
                r.completed + r.evicted,
                150,
                "rate {rate} retries {max_retries}: {} completed, {} evicted",
                r.completed,
                r.evicted
            );
            assert_eq!(r.failed_attempts, r.retried + r.evicted);
            if rate >= 1.0 {
                assert_eq!(r.evicted, 150);
                assert_eq!(r.retried, 150 * max_retries);
            } else {
                assert!(r.failed_attempts > 0);
            }
        }
    }

    #[test]
    fn retries_hold_batch_slots_and_save_requests() {
        // A retried request re-runs in place: eviction drops with budget,
        // and the re-execution shows up as extra engine busy time.
        let e = engine();
        let p = ContinuousPolicy { max_batch: 16 };
        let w = workload(20.0);
        let none = simulate_continuous_with_faults(
            &e,
            &w,
            p,
            FaultProfile { failure_rate: 0.3, max_retries: 0, seed: 4 },
        );
        let some = simulate_continuous_with_faults(
            &e,
            &w,
            p,
            FaultProfile { failure_rate: 0.3, max_retries: 6, seed: 4 },
        );
        assert!(none.evicted > 0);
        assert!(some.evicted < none.evicted);
        assert!(some.completed > none.completed);
        assert!(some.retried > 0);
    }
}
