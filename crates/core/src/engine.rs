//! The inference engine: model × parallelism × schedule × memory policy.
//!
//! For TP-only deployments the engine defers to the kernel-level execution
//! model. With pipeline parallelism it derives per-stage timings from the
//! kernel model and plays the chosen schedule (training-style vs
//! inference-optimized token queue, uniform vs hybrid micro-batching,
//! Sec. IV-C1) on the discrete-event engine; KV-cache offload (Sec. IV-C2/3)
//! both extends the feasible batch range and adds a simulated PCIe-overlap
//! cost to each generation step.

use dsi_baselines::exec::ExecStyle;
use dsi_kernels::cost::ExecConfig;
use dsi_model::config::GptConfig;
use dsi_parallel::offload::OffloadSpec;
use dsi_parallel::pipeline::{PipelineSchedule, PipelineSpec};
use dsi_sim::collectives::Collectives;
use dsi_sim::hw::{ClusterSpec, DType};
use dsi_sim::topology::Topology;
use serde::Serialize;

/// Full configuration of a dense-model deployment.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    pub model: GptConfig,
    pub cluster: ClusterSpec,
    /// Tensor-parallel degree (within a node).
    pub tp: usize,
    /// Pipeline-parallel degree (stages).
    pub pp: usize,
    pub style: ExecStyle,
    pub exec: ExecConfig,
    /// Token-queue schedule (Fig. 2b) vs training-style drain (Fig. 2a).
    pub inference_schedule: bool,
    /// Hybrid micro-batching: more micro-batches for the prompt than for
    /// generation (Fig. 3).
    pub hybrid_schedule: bool,
    /// Offload KV cache to host DRAM between steps (Sec. IV-C2).
    pub kv_offload: bool,
    /// Stagger offloads odd/even across PCIe-sharing GPU pairs (Sec. IV-C3).
    pub odd_even_offload: bool,
}

impl EngineConfig {
    /// The full DeepSpeed Inference configuration for a (tp, pp) mapping.
    pub fn deepspeed(model: GptConfig, cluster: ClusterSpec, tp: usize, pp: usize) -> Self {
        EngineConfig {
            model,
            cluster,
            tp,
            pp,
            style: ExecStyle::deepspeed(),
            exec: ExecConfig::fp16(true),
            inference_schedule: true,
            hybrid_schedule: true,
            kv_offload: true,
            odd_even_offload: true,
        }
    }

    /// DeepSpeed Inference with INT8 weights (Sec. III-D): same system,
    /// halved weight bytes, CUTLASS INT8 GEMMs.
    pub fn deepspeed_int8(model: GptConfig, cluster: ClusterSpec, tp: usize, pp: usize) -> Self {
        EngineConfig {
            exec: ExecConfig::int8(true),
            ..Self::deepspeed(model, cluster, tp, pp)
        }
    }

    /// The FasterTransformer baseline on the same mapping: training-style
    /// pipeline schedule, uniform micro-batching, no KV offload.
    pub fn faster_transformer(model: GptConfig, cluster: ClusterSpec, tp: usize, pp: usize) -> Self {
        EngineConfig {
            model,
            cluster,
            tp,
            pp,
            style: ExecStyle::faster_transformer(),
            exec: ExecConfig::fp16(false),
            inference_schedule: false,
            hybrid_schedule: false,
            kv_offload: false,
            odd_even_offload: false,
        }
    }
}

/// Result of one engine run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RunReport {
    pub batch: usize,
    /// Time to first token (prompt processing).
    pub prompt_latency: f64,
    /// End-to-end latency for the whole generation.
    pub total_latency: f64,
    /// Generated tokens per second (aggregate over the batch).
    pub tokens_per_s: f64,
    /// Average pipeline bubble fraction (0 for TP-only runs).
    pub bubble_fraction: f64,
}

/// A configured deployment ready to run workloads.
#[derive(Debug, Clone)]
pub struct InferenceEngine {
    pub cfg: EngineConfig,
    topo: Topology,
}

impl InferenceEngine {
    pub fn new(cfg: EngineConfig) -> Self {
        assert!(cfg.tp >= 1 && cfg.pp >= 1);
        assert!(
            cfg.tp * cfg.pp <= cfg.cluster.total_gpus(),
            "mapping needs {} GPUs, cluster has {}",
            cfg.tp * cfg.pp,
            cfg.cluster.total_gpus()
        );
        assert!(
            cfg.model.layers.is_multiple_of(cfg.pp) || cfg.pp == 1,
            "layers must split across pipeline stages"
        );
        let topo = Topology::new(cfg.cluster.clone());
        InferenceEngine { cfg, topo }
    }

    /// Per-GPU weight bytes under this mapping.
    pub fn weight_bytes_per_gpu(&self) -> f64 {
        self.cfg.model.weight_bytes(self.cfg.exec.weight_dtype) / (self.cfg.tp * self.cfg.pp) as f64
    }

    /// Per-sequence KV bytes resident on one GPU for a given context length.
    fn kv_per_seq_gpu(&self, ctx: f64) -> f64 {
        let shards = (self.cfg.tp * self.cfg.pp) as f64;
        self.cfg.model.kv_bytes_per_token(DType::Fp16) * ctx / shards
    }

    /// KV bytes one GPU can sustainably keep *spilled* to host DRAM: the
    /// spilled share of every micro-batch's cache must cross PCIe once per
    /// generated token, hidden under the step's weight-read time
    /// (Sec. IV-C2/3). Without odd/even staggering, GPUs sharing a PCIe link
    /// see half the bandwidth.
    fn offload_spill_budget(&self) -> f64 {
        if !self.cfg.kv_offload {
            return 0.0;
        }
        let node = &self.cfg.cluster.node;
        // Per token step, each stage streams its weight shard once per
        // generation micro-batch (M = pp micro-batches).
        let t_step = self.cfg.pp as f64 * self.weight_bytes_per_gpu() / (node.gpu.mem_bw * 0.8);
        let contended = node.pcie_shared_pairs && !self.cfg.odd_even_offload;
        let pcie = node.pcie.bw * if contended { 0.5 } else { 1.0 };
        // Off + back on, with 20% headroom so the overlap never stalls.
        0.4 * t_step * pcie
    }

    /// Largest batch that fits this mapping for a `prompt + gen` context.
    /// Without KV offload, the KV cache must live in HBM next to the weight
    /// shard; with offload, the spill budget sustainable over PCIe
    /// (Sec. IV-C2) extends the range, bounded by host DRAM.
    pub fn max_batch(&self, prompt: usize, gen: usize) -> usize {
        let ctx = (prompt + gen) as f64;
        let dt = self.cfg.exec.weight_dtype;
        let gpu_mem = self.cfg.cluster.node.gpu.mem_bytes as f64;
        let free = gpu_mem - self.weight_bytes_per_gpu() - 2e9;
        if free <= 0.0 {
            return 0;
        }
        let shards = (self.cfg.tp * self.cfg.pp) as f64;
        let kv_per_seq = self.kv_per_seq_gpu(ctx);
        let act_per_seq =
            self.cfg.model.activation_bytes(prompt as f64, dt) / shards + 2.0 * ctx * 1e3;
        let resident = free / (act_per_seq + kv_per_seq);
        let extra = self.offload_spill_budget() / kv_per_seq;
        let host = self.cfg.cluster.node.dram_bytes as f64 * 0.8;
        let host_bound = host / (self.cfg.model.kv_bytes_per_token(DType::Fp16) * ctx);
        (resident + extra).min(host_bound).floor().max(0.0) as usize
    }

    /// Inter-stage activation transfer time for one micro-batch of
    /// `mb_tokens` token-rows.
    fn p2p_time(&self, mb_tokens: usize) -> f64 {
        let bytes =
            mb_tokens as f64 * self.cfg.model.hidden as f64 * self.cfg.exec.act_dtype.bytes() as f64;
        // Adjacent stages sit on adjacent rank blocks of tp GPUs.
        Collectives::p2p(&self.topo, 0, self.cfg.tp % self.topo.world_size(), bytes).time
    }

    /// KV-offload overhead per generated token per stage: the spilled share
    /// of the cache crosses PCIe each step; simulate the paired-GPU PCIe
    /// timeline and charge any stall beyond compute.
    fn offload_stall_per_token(
        &self,
        batch: usize,
        ctx: f64,
        layers_per_stage: usize,
        gen_step: f64,
    ) -> f64 {
        if !self.cfg.kv_offload {
            return 0.0;
        }
        let gpu_mem = self.cfg.cluster.node.gpu.mem_bytes as f64;
        let free = gpu_mem - self.weight_bytes_per_gpu() - 2e9;
        let resident_kv = (free).max(0.0);
        let total_kv = batch as f64 * self.kv_per_seq_gpu(ctx);
        let spilled = (total_kv - resident_kv).max(0.0);
        if spilled == 0.0 {
            return 0.0;
        }
        let spec = OffloadSpec {
            layers: layers_per_stage,
            layer_compute: gen_step / layers_per_stage as f64,
            kv_bytes_per_layer: 2.0 * spilled / layers_per_stage as f64, // off + back on
            pcie_bw: self.cfg.cluster.node.pcie.bw,
            shared_link: self.cfg.cluster.node.pcie_shared_pairs,
            odd_even_schedule: self.cfg.odd_even_offload,
        };
        let r = spec.run();
        (r.step_time - r.compute_time).max(0.0)
    }

    /// Run a generation workload: `batch` sequences, `prompt` tokens each,
    /// generating `gen` tokens.
    pub fn generation(&self, batch: usize, prompt: usize, gen: usize) -> RunReport {
        let cfg = &self.cfg;
        let gpu = &cfg.cluster.node.gpu;
        if cfg.pp == 1 {
            let r = cfg
                .style
                .generation_latency(&self.topo, &cfg.model, cfg.tp, batch, prompt, gen, &cfg.exec);
            return RunReport {
                batch,
                prompt_latency: r.prompt_time,
                total_latency: r.total,
                tokens_per_s: (batch * gen) as f64 / r.total,
                bubble_fraction: 0.0,
            };
        }

        let layers_per_stage = cfg.model.layers / cfg.pp;
        let scale = layers_per_stage as f64 / cfg.model.layers as f64;

        // Stage timings from the kernel model. Prompt compute for the FULL
        // batch through one stage; generation time for one micro-batch.
        let prompt_full = cfg
            .style
            .forward_time(&self.topo, &cfg.model, cfg.tp, batch, prompt, prompt, &cfg.exec)
            * scale;
        let gen_mbs = cfg.pp;
        let prompt_mbs = if cfg.hybrid_schedule { 4 * cfg.pp } else { cfg.pp };
        let mb_batch = batch.div_ceil(gen_mbs).max(1);
        let gen_step_stage = cfg
            .style
            .forward_time(&self.topo, &cfg.model, cfg.tp, mb_batch, 1, prompt + gen / 2, &cfg.exec)
            * scale;
        let gen_step_stage =
            gen_step_stage
                + self.offload_stall_per_token(
                    mb_batch,
                    (prompt + gen / 2) as f64,
                    layers_per_stage,
                    gen_step_stage,
                );

        let spec = PipelineSpec {
            stages: cfg.pp,
            prompt_microbatches: prompt_mbs,
            gen_microbatches: gen_mbs,
            gen_tokens: gen.saturating_sub(1),
            stage_prompt_time_full: prompt_full,
            stage_gen_time: gen_step_stage,
            microbatch_overhead: 12.0 * gpu.kernel_launch_overhead,
            p2p_time: self.p2p_time(mb_batch),
        };
        let schedule = if cfg.inference_schedule {
            PipelineSchedule::InferenceQueue
        } else {
            PipelineSchedule::TrainingStyle
        };
        let r = spec.run(schedule);
        RunReport {
            batch,
            prompt_latency: r.prompt_latency,
            total_latency: r.total_latency,
            tokens_per_s: (batch * gen) as f64 / r.total_latency,
            bubble_fraction: r.bubble_fraction,
        }
    }

    /// Sweep batch sizes (powers of two up to the memory limit) and return
    /// the best-throughput run — the paper's Fig. 8 methodology ("we run
    /// with batch sizes that give the best performance").
    pub fn best_throughput(&self, prompt: usize, gen: usize) -> Option<RunReport> {
        let max = self.max_batch(prompt, gen);
        if max == 0 {
            return None;
        }
        let mut batches: Vec<usize> = (0..)
            .map(|i| 1usize << i)
            .take_while(|&b| b < max)
            .collect();
        batches.push(max);
        batches
            .into_iter()
            .map(|b| self.generation(b, prompt, gen))
            .max_by(|a, b| a.tokens_per_s.partial_cmp(&b.tokens_per_s).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_model::zoo::dense_by_name;

    fn engines_175b() -> (InferenceEngine, InferenceEngine) {
        let model = dense_by_name("LM-175B").unwrap();
        let cluster = ClusterSpec::dgx_a100(2); // 16 GPUs
        (
            InferenceEngine::new(EngineConfig::deepspeed(model.clone(), cluster.clone(), 8, 2)),
            InferenceEngine::new(EngineConfig::faster_transformer(model, cluster, 8, 2)),
        )
    }

    #[test]
    fn fig8_175b_throughput_gain() {
        // Fig. 8: DeepSpeed ≈1.51× FT throughput for 175B on 16 GPUs
        // (prompt 512, gen 50).
        let (ds, ft) = engines_175b();
        let rds = ds.best_throughput(512, 50).unwrap();
        let rft = ft.best_throughput(512, 50).unwrap();
        let gain = rds.tokens_per_s / rft.tokens_per_s;
        assert!(gain > 1.3, "gain {gain:.2}");
        assert!(gain < 3.0, "gain implausible {gain:.2}");
    }

    #[test]
    fn fig8_530b_runs_on_40_gpus() {
        let model = dense_by_name("LM-530B").unwrap();
        let cluster = ClusterSpec::dgx_a100(5); // 40 GPUs
        let ds = InferenceEngine::new(EngineConfig::deepspeed(model.clone(), cluster.clone(), 8, 5));
        let rds = ds.best_throughput(512, 50).unwrap();
        assert!(rds.tokens_per_s > 0.0);
        // TP-only FT on 8 GPUs cannot even fit the model (Sec. VII-C: FT
        // with TP+PP crashed; TP-only needs 133 GB/GPU).
        let ft_tp_only = InferenceEngine::new(EngineConfig::faster_transformer(
            model,
            ClusterSpec::dgx_a100(1),
            8,
            1,
        ));
        assert_eq!(ft_tp_only.max_batch(512, 50), 0);
    }

    #[test]
    fn kv_offload_extends_batch_range() {
        // The spill budget is PCIe-bound (Sec. IV-C3): the extension is real
        // but modest — spilled KV must cross the host link every step.
        let (ds, ft) = engines_175b();
        let with = ds.max_batch(512, 50);
        let without = ft.max_batch(512, 50);
        assert!(with > without, "offload {with} <= resident {without}");
    }

    #[test]
    fn odd_even_scheduling_increases_spill_budget() {
        let model = dense_by_name("LM-530B").unwrap();
        let cluster = ClusterSpec::dgx_a100(5);
        let mut cfg = EngineConfig::deepspeed(model, cluster, 8, 5);
        cfg.odd_even_offload = false;
        let naive = InferenceEngine::new(cfg.clone()).max_batch(512, 50);
        cfg.odd_even_offload = true;
        let staggered = InferenceEngine::new(cfg).max_batch(512, 50);
        assert!(staggered > naive, "staggered {staggered} naive {naive}");
    }

    #[test]
    fn inference_schedule_beats_training_schedule() {
        let model = dense_by_name("LM-175B").unwrap();
        let cluster = ClusterSpec::dgx_a100(2);
        let mut cfg = EngineConfig::deepspeed(model, cluster, 8, 2);
        cfg.inference_schedule = false;
        let slow = InferenceEngine::new(cfg.clone());
        cfg.inference_schedule = true;
        let fast = InferenceEngine::new(cfg);
        let b = 16;
        assert!(
            fast.generation(b, 512, 50).total_latency < slow.generation(b, 512, 50).total_latency
        );
    }

    #[test]
    fn hybrid_improves_prompt_latency_with_pp() {
        // Fig. 13 (PP+MP config): hybrid scheduling cuts prompt latency.
        let model = dense_by_name("LM-175B").unwrap();
        let cluster = ClusterSpec::dgx_a100(2);
        let mut cfg = EngineConfig::deepspeed(model, cluster, 8, 2);
        cfg.hybrid_schedule = false;
        let uniform = InferenceEngine::new(cfg.clone());
        cfg.hybrid_schedule = true;
        let hybrid = InferenceEngine::new(cfg);
        let b = 24;
        let pu = uniform.generation(b, 512, 8).prompt_latency;
        let ph = hybrid.generation(b, 512, 8).prompt_latency;
        assert!(ph < pu, "hybrid {ph:.4} uniform {pu:.4}");
    }

    #[test]
    fn int8_engine_fits_more_and_runs_faster() {
        // Halved weights double the feasible batch headroom and cut the
        // bandwidth-bound generation time.
        let model = dense_by_name("GPT-13B").unwrap();
        let cluster = ClusterSpec::dgx_a100(1);
        let fp16 = InferenceEngine::new(EngineConfig::deepspeed(model.clone(), cluster.clone(), 1, 1));
        let int8 = InferenceEngine::new(EngineConfig::deepspeed_int8(model, cluster, 1, 1));
        assert!(int8.weight_bytes_per_gpu() * 1.9 < fp16.weight_bytes_per_gpu() * 1.0 + 1.0e9);
        assert!(int8.max_batch(128, 8) >= fp16.max_batch(128, 8));
        let t8 = int8.generation(1, 128, 8).total_latency;
        let t16 = fp16.generation(1, 128, 8).total_latency;
        assert!(t8 < t16, "int8 {t8} fp16 {t16}");
    }

    #[test]
    fn tp_only_run_has_no_bubbles() {
        let model = dense_by_name("GPT-13B").unwrap();
        let e = InferenceEngine::new(EngineConfig::deepspeed(
            model,
            ClusterSpec::dgx_a100(1),
            4,
            1,
        ));
        let r = e.generation(4, 128, 8);
        assert_eq!(r.bubble_fraction, 0.0);
        assert!(r.total_latency > 0.0);
    }

    #[test]
    fn best_throughput_uses_larger_batches() {
        let (ds, _) = engines_175b();
        let best = ds.best_throughput(512, 50).unwrap();
        let small = ds.generation(1, 512, 50);
        assert!(best.batch > 1);
        assert!(best.tokens_per_s > small.tokens_per_s);
    }

    #[test]
    #[should_panic(expected = "mapping needs")]
    fn oversubscribed_mapping_rejected() {
        let model = dense_by_name("GPT-13B").unwrap();
        InferenceEngine::new(EngineConfig::deepspeed(model, ClusterSpec::dgx_a100(1), 8, 2));
    }
}
