//! # dsi-core — the DeepSpeed Inference engine facade
//!
//! Ties the substrates together into the system of the paper:
//!
//! * [`engine`] — [`engine::InferenceEngine`]: a model + a parallelism
//!   mapping (TP × PP) + an execution style + scheduling/memory flags →
//!   latency and throughput. This is the object the examples and the
//!   benchmark harness drive; the paper's Figs. 6, 8, 10(b) and 13 are all
//!   sweeps over its configuration space.
//! * [`report`] — serializable result rows shared by the bench binaries so
//!   every figure emits machine-readable JSON next to its human-readable
//!   table.
//!
//! Re-exports the commonly used types from every substrate crate so that
//! downstream users need a single dependency.

pub mod batch;
pub mod continuous;
pub mod engine;
pub mod planner;
pub mod report;
pub mod serving;
pub mod stats;
pub mod streamed;
pub mod whatif;

pub use dsi_baselines::exec::{ExecStyle, LatencyReport};
pub use dsi_kernels::cost::ExecConfig;
pub use dsi_model::config::{BertConfig, GptConfig, MoeConfig};
pub use dsi_model::reference::GptModel;
pub use dsi_moe::system::{MoeSystem, MoeSystemKind};
pub use dsi_sim::hw::{ClusterSpec, DType, GpuSpec, NodeSpec};
pub use dsi_zero::engine::ZeroInference;
pub use dsi_zero::offload::{OffloadConfig, OffloadError, OffloadStats, OffloadStore};
pub use streamed::StreamedEngine;
pub use engine::{EngineConfig, InferenceEngine, RunReport};
pub use planner::{plan, Objective, Plan};
pub use batch::{BatchEngine, EngineError, FaultClass, FaultyEngine, FtEngine};
pub use continuous::{
    simulate_continuous, simulate_continuous_with_faults, ContinuousPolicy, SlotPolicy,
};
pub use serving::{
    simulate_serving, simulate_serving_with_faults, BatchPolicy, FaultProfile, ServingReport,
    Workload,
};
pub use stats::percentile;
pub use whatif::{scale_cluster, sensitivities, Knob, Sensitivity};
