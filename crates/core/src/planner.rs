//! Deployment planning: search the parallelism space for a model + cluster.
//!
//! Sec. I frames the core systems question: "It requires aggregate memory
//! bandwidth across multiple devices, which needs optimal parallelism
//! strategies ... Such parallelism strategies must cater to the variation in
//! transformer architecture and hardware characteristics." This module
//! answers it mechanically: enumerate the feasible (TP, PP) mappings on a
//! cluster (TP restricted to a node, the paper's Sec. II guidance), evaluate
//! each with the engine, and pick by objective — minimum latency under an
//! optional SLA, or maximum throughput.

use crate::engine::{EngineConfig, InferenceEngine, RunReport};
use dsi_model::config::GptConfig;
use dsi_sim::hw::ClusterSpec;
use serde::Serialize;

/// What the planner optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Objective {
    /// Minimize end-to-end latency at a fixed batch size.
    MinLatency { batch: usize },
    /// Maximize aggregate tokens/s (batch chosen per mapping).
    MaxThroughput,
}

/// One evaluated candidate mapping.
#[derive(Debug, Clone, Serialize)]
pub struct Candidate {
    pub tp: usize,
    pub pp: usize,
    pub gpus: usize,
    pub report: RunReport,
}

/// The planner's answer.
#[derive(Debug, Clone, Serialize)]
pub struct Plan {
    pub best: Candidate,
    /// Every feasible candidate, sorted best-first by the objective.
    pub candidates: Vec<Candidate>,
}

/// Enumerate feasible (tp, pp) mappings: tp a power of two within a node,
/// tp·pp within the cluster, layers divisible by pp, and the weight shard
/// fitting GPU memory with activation headroom.
pub fn feasible_mappings(model: &GptConfig, cluster: &ClusterSpec) -> Vec<(usize, usize)> {
    let per_node = cluster.node.gpus_per_node;
    let total = cluster.total_gpus();
    let mut out = Vec::new();
    let mut tp = 1;
    while tp <= per_node {
        if !model.hidden.is_multiple_of(tp) || !model.heads.is_multiple_of(tp) {
            tp *= 2;
            continue;
        }
        for pp in 1..=total / tp {
            if !model.layers.is_multiple_of(pp) {
                continue;
            }
            let engine = InferenceEngine::new(EngineConfig::deepspeed(
                model.clone(),
                cluster.clone(),
                tp,
                pp,
            ));
            if engine.max_batch(512, 50) >= 1 {
                out.push((tp, pp));
            }
        }
        tp *= 2;
    }
    out
}

/// Search the mapping space under the objective and an optional latency SLA
/// (seconds, applied to total latency of the workload). Returns `None` when
/// nothing feasible meets the SLA.
pub fn plan(
    model: &GptConfig,
    cluster: &ClusterSpec,
    prompt: usize,
    gen: usize,
    objective: Objective,
    sla: Option<f64>,
) -> Option<Plan> {
    let mut candidates: Vec<Candidate> = Vec::new();
    for (tp, pp) in feasible_mappings(model, cluster) {
        let engine = InferenceEngine::new(EngineConfig::deepspeed(
            model.clone(),
            cluster.clone(),
            tp,
            pp,
        ));
        let report = match objective {
            Objective::MinLatency { batch } => {
                if engine.max_batch(prompt, gen) < batch {
                    continue;
                }
                engine.generation(batch, prompt, gen)
            }
            Objective::MaxThroughput => match engine.best_throughput(prompt, gen) {
                Some(r) => r,
                None => continue,
            },
        };
        if let Some(limit) = sla {
            if report.total_latency > limit {
                continue;
            }
        }
        candidates.push(Candidate {
            tp,
            pp,
            gpus: tp * pp,
            report,
        });
    }
    match objective {
        Objective::MinLatency { .. } => candidates.sort_by(|a, b| {
            a.report
                .total_latency
                .partial_cmp(&b.report.total_latency)
                .unwrap()
        }),
        Objective::MaxThroughput => candidates.sort_by(|a, b| {
            b.report
                .tokens_per_s
                .partial_cmp(&a.report.tokens_per_s)
                .unwrap()
        }),
    }
    candidates.first().cloned().map(|best| Plan {
        best,
        candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_model::zoo::dense_by_name;

    #[test]
    fn small_model_prefers_modest_tp_for_latency() {
        // GPT-J on one DGX: latency plan must exist; more GPUs than needed
        // stop paying off once all-reduce overhead bites.
        let model = dense_by_name("GPT-J-6B").unwrap();
        let cluster = ClusterSpec::dgx_a100(1);
        let p = plan(&model, &cluster, 128, 8, Objective::MinLatency { batch: 1 }, None)
            .expect("feasible");
        assert!(p.best.gpus <= 8);
        assert!(!p.candidates.is_empty());
        // Best is at least as fast as TP=1.
        let tp1 = p
            .candidates
            .iter()
            .find(|c| c.tp == 1 && c.pp == 1)
            .expect("tp1 evaluated");
        assert!(p.best.report.total_latency <= tp1.report.total_latency);
    }

    #[test]
    fn huge_model_requires_multi_gpu_mapping() {
        // 175B cannot map onto fewer than ~8 A100-40GB GPUs.
        let model = dense_by_name("LM-175B").unwrap();
        let cluster = ClusterSpec::dgx_a100(2);
        let mappings = feasible_mappings(&model, &cluster);
        assert!(!mappings.is_empty());
        assert!(mappings.iter().all(|&(tp, pp)| tp * pp >= 10 || tp * pp >= 8));
        let p = plan(&model, &cluster, 512, 50, Objective::MaxThroughput, None).expect("feasible");
        assert!(p.best.gpus >= 12, "175B plan used only {} GPUs", p.best.gpus);
    }

    #[test]
    fn sla_filters_candidates() {
        let model = dense_by_name("GPT-2-1.5B").unwrap();
        let cluster = ClusterSpec::dgx_a100(1);
        let loose = plan(&model, &cluster, 128, 8, Objective::MinLatency { batch: 1 }, Some(10.0));
        assert!(loose.is_some());
        let impossible = plan(
            &model,
            &cluster,
            128,
            8,
            Objective::MinLatency { batch: 1 },
            Some(1e-6),
        );
        assert!(impossible.is_none());
    }

    #[test]
    fn throughput_objective_sorts_descending() {
        let model = dense_by_name("GPT-13B").unwrap();
        let cluster = ClusterSpec::dgx_a100(1);
        let p = plan(&model, &cluster, 512, 50, Objective::MaxThroughput, None).unwrap();
        for w in p.candidates.windows(2) {
            assert!(w[0].report.tokens_per_s >= w[1].report.tokens_per_s);
        }
    }

    #[test]
    fn oversized_model_on_tiny_cluster_infeasible() {
        let model = dense_by_name("LM-530B").unwrap();
        let cluster = ClusterSpec::dgx_a100(1); // 8×40 GB — can't hold 1.06 TB
        assert!(feasible_mappings(&model, &cluster).is_empty());
        assert!(plan(&model, &cluster, 512, 50, Objective::MaxThroughput, None).is_none());
    }
}
