//! Machine-readable result rows for the benchmark harness.
//!
//! Every bench binary prints a human-readable table to stdout and appends
//! JSON rows (one object per line) so EXPERIMENTS.md entries can be
//! regenerated and diffed mechanically.

use serde::Serialize;

/// One measured point of one experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Experiment id, e.g. "fig6", "table2".
    pub experiment: String,
    /// System under test, e.g. "DeepSpeed-FP16".
    pub system: String,
    /// Model name.
    pub model: String,
    /// Free-form x-axis value (batch size, GPU count, ...).
    pub x: f64,
    /// Name of the x-axis.
    pub x_name: String,
    /// Measured value.
    pub value: f64,
    /// Unit of the value ("ms", "tokens/s", "TFLOPS", "TB/s").
    pub unit: String,
}

impl Row {
    pub fn new(
        experiment: &str,
        system: &str,
        model: &str,
        x_name: &str,
        x: f64,
        value: f64,
        unit: &str,
    ) -> Self {
        Row {
            experiment: experiment.into(),
            system: system.into(),
            model: model.into(),
            x,
            x_name: x_name.into(),
            value,
            unit: unit.into(),
        }
    }

    /// Serialize to one JSON line.
    pub fn json(&self) -> String {
        serde_json::to_string(self).expect("row serializes")
    }
}

/// Print a section header for a bench table.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_roundtrips_to_json() {
        let r = Row::new("fig6", "DeepSpeed-FP16", "GPT-2-1.5B", "batch", 1.0, 3.2, "ms");
        let s = r.json();
        assert!(s.contains("\"experiment\":\"fig6\""));
        assert!(s.contains("\"value\":3.2"));
        let parsed: serde_json::Value = serde_json::from_str(&s).unwrap();
        assert_eq!(parsed["unit"], "ms");
    }
}
