//! Request-level serving simulation: arrivals, dynamic batching, latency
//! percentiles.
//!
//! The paper motivates everything with production serving ("Using a
//! transformer based model for online scenarios in production requires
//! meeting stringent latency requirements", Sec. I). This module closes
//! that loop: a deterministic discrete-event loop feeds Poisson-ish request
//! arrivals into an [`InferenceEngine`] through a dynamic batcher, and
//! reports p50/p95/p99 latency and goodput — so the kernel- and
//! parallelism-level wins can be read as serving-level wins.

use crate::engine::InferenceEngine;
use crate::stats::percentile;
use rand::distributions::Distribution;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// Serving workload description.
#[derive(Debug, Clone, Serialize)]
pub struct Workload {
    /// Mean request arrival rate (requests/second).
    pub arrival_rate: f64,
    /// Prompt tokens per request.
    pub prompt: usize,
    /// Generated tokens per request.
    pub gen: usize,
    /// Number of requests to simulate.
    pub requests: usize,
    /// RNG seed for arrival jitter.
    pub seed: u64,
}

/// Dynamic batching policy: collect requests until the batch is full or the
/// oldest request has waited `max_wait` seconds.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct BatchPolicy {
    pub max_batch: usize,
    pub max_wait: f64,
}

/// Request-level fault model for the serving simulations: every *execution
/// attempt* of a request fails independently with probability
/// `failure_rate`, drawn from a dedicated seed-driven RNG (arrival jitter is
/// untouched, so a faulty run sees the same arrivals as a fault-free one).
/// A failed attempt is retried — re-executed and charged again — up to
/// `max_retries` times; a request that exhausts its budget is *evicted* and
/// counted, never silently dropped: `completed + evicted == requests` always
/// holds.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FaultProfile {
    /// Per-attempt failure probability in `[0, 1]`.
    pub failure_rate: f64,
    /// Retry budget per request (attempts beyond the first).
    pub max_retries: usize,
    /// Seed for the fault RNG (independent of the arrival seed).
    pub seed: u64,
}

impl FaultProfile {
    /// The fault-free profile: no attempt ever fails.
    pub const NONE: FaultProfile = FaultProfile {
        failure_rate: 0.0,
        max_retries: 0,
        seed: 0,
    };
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self::NONE
    }
}

/// Simulation outcome.
#[derive(Debug, Clone, Serialize)]
pub struct ServingReport {
    pub completed: usize,
    /// End-to-end request latencies (queueing + execution), seconds.
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    /// Mean size of *admission* batches — the batches the dynamic batcher
    /// formed from fresh arrivals. Retry waves are excluded: they re-run a
    /// subset of a batch that already ran, so folding them in would deflate
    /// this figure relative to the batcher's actual behaviour (they are
    /// reported separately as [`ServingReport::mean_retry_batch`]).
    pub mean_batch: f64,
    /// Mean size of retry waves (re-executions of failed members), `0.0`
    /// when no attempt ever failed. In the continuous simulation retries
    /// restart *in place* inside the running batch rather than forming
    /// waves, so it reports `0.0` here by construction.
    pub mean_retry_batch: f64,
    /// Requests per second actually served.
    pub goodput: f64,
    /// Fraction of wall-clock the engine was busy.
    pub utilization: f64,
    /// Execution attempts that failed (each retry that fails counts again).
    pub failed_attempts: usize,
    /// Retry attempts performed (failed attempts that had budget left).
    pub retried: usize,
    /// Requests evicted after exhausting their retry budget. Invariant:
    /// `completed + evicted == workload.requests`.
    pub evicted: usize,
}

/// Run the serving simulation. Deterministic for a given seed.
pub fn simulate_serving(
    engine: &InferenceEngine,
    workload: &Workload,
    policy: BatchPolicy,
) -> ServingReport {
    simulate_serving_with_faults(engine, workload, policy, FaultProfile::NONE)
}

/// [`simulate_serving`] with a request-level [`FaultProfile`]: a batch runs,
/// each member's attempt may fail, and the failed members are immediately
/// re-executed as a retry wave (charged at the retry wave's batch size)
/// before the engine moves on. Requests that exhaust their retry budget are
/// evicted and counted in the report.
pub fn simulate_serving_with_faults(
    engine: &InferenceEngine,
    workload: &Workload,
    policy: BatchPolicy,
    faults: FaultProfile,
) -> ServingReport {
    assert!(workload.requests > 0 && policy.max_batch > 0);
    assert!((0.0..=1.0).contains(&faults.failure_rate));
    let mut rng = ChaCha8Rng::seed_from_u64(workload.seed);
    let exp = rand::distributions::Uniform::new(0.0f64, 1.0);
    let mut fault_rng = ChaCha8Rng::seed_from_u64(faults.seed);
    let attempt_fails = |r: &mut ChaCha8Rng| -> bool { exp.sample(r) < faults.failure_rate };

    // Arrival times: exponential inter-arrivals (inverse CDF of uniforms).
    let mut arrivals = Vec::with_capacity(workload.requests);
    let mut t = 0.0;
    for _ in 0..workload.requests {
        let u: f64 = exp.sample(&mut rng).max(1e-12);
        t += -u.ln() / workload.arrival_rate;
        arrivals.push(t);
    }

    // Cache execution latency per batch size (the engine is deterministic).
    let mut latency_cache: Vec<Option<f64>> = vec![None; policy.max_batch + 1];
    let mut exec_latency = |b: usize| -> f64 {
        let b = b.min(policy.max_batch);
        if latency_cache[b].is_none() {
            latency_cache[b] =
                Some(engine.generation(b, workload.prompt, workload.gen).total_latency);
        }
        latency_cache[b].unwrap()
    };

    let mut engine_free = 0.0f64;
    let mut busy = 0.0f64;
    let mut latencies = Vec::with_capacity(workload.requests);
    let mut batches = Vec::new();
    let mut retry_batches = Vec::new();
    let mut failed_attempts = 0usize;
    let mut retried = 0usize;
    let mut evicted = 0usize;
    let mut i = 0;
    while i < arrivals.len() {
        // The batch window opens when the engine is free and the next
        // request has arrived.
        let open = engine_free.max(arrivals[i]);
        // Admit everything that arrives within the wait window, up to the
        // batch cap.
        let deadline = arrivals[i] + policy.max_wait;
        let mut j = i + 1;
        while j < arrivals.len() && j - i < policy.max_batch && arrivals[j] <= open.max(deadline) {
            j += 1;
        }
        let start = open.max(if j - i < policy.max_batch {
            // Window closed by timeout: wait until the deadline or the
            // engine frees up, whichever is later (but never before open).
            deadline.min(arrivals.get(j).copied().unwrap_or(deadline)).max(open)
        } else {
            open
        });
        // Execute the batch; failed members form a retry wave that re-runs
        // immediately (at the wave's own batch size) until everyone either
        // completes or exhausts the retry budget.
        let mut wave: Vec<usize> = (i..j).collect();
        let mut end = start;
        let mut budget = faults.max_retries;
        let mut first_wave = true;
        loop {
            let b = wave.len();
            let dur = exec_latency(b);
            end += dur;
            if first_wave {
                batches.push(b as f64);
            } else {
                retry_batches.push(b as f64);
            }
            first_wave = false;
            busy += dur;
            let mut failed_wave = Vec::new();
            for &r in &wave {
                if attempt_fails(&mut fault_rng) {
                    failed_attempts += 1;
                    failed_wave.push(r);
                } else {
                    latencies.push(end - arrivals[r]);
                }
            }
            if failed_wave.is_empty() {
                break;
            }
            if budget == 0 {
                evicted += failed_wave.len();
                break;
            }
            budget -= 1;
            retried += failed_wave.len();
            wave = failed_wave;
        }
        engine_free = end;
        i = j;
    }

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let wall = engine_free.max(*arrivals.last().unwrap());
    // Always-on accounting invariant: release-mode chaos runs must not be
    // able to silently miscount a request.
    assert_eq!(
        latencies.len() + evicted,
        workload.requests,
        "serving accounting violated: {} completed + {} evicted != {} requests",
        latencies.len(),
        evicted,
        workload.requests
    );
    ServingReport {
        completed: latencies.len(),
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
        mean_batch: batches.iter().sum::<f64>() / batches.len() as f64,
        mean_retry_batch: if retry_batches.is_empty() {
            0.0
        } else {
            retry_batches.iter().sum::<f64>() / retry_batches.len() as f64
        },
        goodput: latencies.len() as f64 / wall,
        utilization: busy / wall,
        failed_attempts,
        retried,
        evicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use dsi_model::zoo::dense_by_name;
    use dsi_sim::hw::ClusterSpec;

    fn engine() -> InferenceEngine {
        InferenceEngine::new(EngineConfig::deepspeed(
            dense_by_name("GPT-J-6B").unwrap(),
            ClusterSpec::dgx_a100(1),
            1,
            1,
        ))
    }

    fn workload(rate: f64) -> Workload {
        Workload {
            arrival_rate: rate,
            prompt: 128,
            gen: 8,
            requests: 200,
            seed: 11,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let e = engine();
        let policy = BatchPolicy {
            max_batch: 8,
            max_wait: 0.05,
        };
        let a = simulate_serving(&e, &workload(20.0), policy);
        let b = simulate_serving(&e, &workload(20.0), policy);
        assert_eq!(a.p99, b.p99);
        assert_eq!(a.completed, 200);
    }

    #[test]
    fn percentiles_ordered() {
        let e = engine();
        let r = simulate_serving(
            &e,
            &workload(30.0),
            BatchPolicy {
                max_batch: 16,
                max_wait: 0.02,
            },
        );
        assert!(r.p50 <= r.p95 && r.p95 <= r.p99);
        assert!(r.utilization > 0.0 && r.utilization <= 1.0);
    }

    #[test]
    fn higher_load_increases_latency_and_batch() {
        let e = engine();
        let policy = BatchPolicy {
            max_batch: 32,
            max_wait: 0.02,
        };
        let light = simulate_serving(&e, &workload(5.0), policy);
        let heavy = simulate_serving(&e, &workload(200.0), policy);
        assert!(heavy.mean_batch > light.mean_batch);
        assert!(heavy.p99 >= light.p99);
        assert!(heavy.utilization >= light.utilization);
    }

    #[test]
    fn batching_raises_goodput_under_overload() {
        let e = engine();
        let no_batch = simulate_serving(
            &e,
            &workload(100.0),
            BatchPolicy {
                max_batch: 1,
                max_wait: 0.0,
            },
        );
        let batched = simulate_serving(
            &e,
            &workload(100.0),
            BatchPolicy {
                max_batch: 32,
                max_wait: 0.01,
            },
        );
        assert!(
            batched.goodput > 1.5 * no_batch.goodput,
            "batched {:.1} vs serial {:.1} rps",
            batched.goodput,
            no_batch.goodput
        );
    }

    #[test]
    fn faster_engine_means_lower_percentiles() {
        // DeepSpeed kernels vs FT kernels on the same serving workload: the
        // kernel win must surface as a tail-latency win.
        let ds = engine();
        let ft = InferenceEngine::new(EngineConfig::faster_transformer(
            dense_by_name("GPT-J-6B").unwrap(),
            ClusterSpec::dgx_a100(1),
            1,
            1,
        ));
        let policy = BatchPolicy {
            max_batch: 8,
            max_wait: 0.02,
        };
        let rds = simulate_serving(&ds, &workload(10.0), policy);
        let rft = simulate_serving(&ft, &workload(10.0), policy);
        assert!(rds.p50 < rft.p50, "DS p50 {} vs FT {}", rds.p50, rft.p50);
        assert!(rds.p99 < rft.p99);
    }

    #[test]
    fn fault_free_profile_is_the_identity() {
        let e = engine();
        let policy = BatchPolicy {
            max_batch: 8,
            max_wait: 0.05,
        };
        let plain = simulate_serving(&e, &workload(20.0), policy);
        let faulty =
            simulate_serving_with_faults(&e, &workload(20.0), policy, FaultProfile::NONE);
        assert_eq!(plain.p99, faulty.p99);
        assert_eq!(plain.completed, faulty.completed);
        assert_eq!(faulty.failed_attempts, 0);
        assert_eq!(faulty.retried, 0);
        assert_eq!(faulty.evicted, 0);
    }

    #[test]
    fn faults_are_never_silently_dropped() {
        // Every request is accounted for: completed + evicted == requests,
        // and every failed attempt either became a retry or an eviction.
        let e = engine();
        let policy = BatchPolicy {
            max_batch: 8,
            max_wait: 0.05,
        };
        for (rate, max_retries) in [(0.3, 0), (0.3, 2), (0.9, 1), (1.0, 3)] {
            let f = FaultProfile {
                failure_rate: rate,
                max_retries,
                seed: 77,
            };
            let r = simulate_serving_with_faults(&e, &workload(20.0), policy, f);
            assert_eq!(
                r.completed + r.evicted,
                200,
                "rate {rate} retries {max_retries}: {} completed, {} evicted",
                r.completed,
                r.evicted
            );
            assert_eq!(r.failed_attempts, r.retried + r.evicted);
            if rate >= 1.0 {
                // Certain failure: everything evicts after the full budget.
                assert_eq!(r.evicted, 200);
                assert_eq!(r.retried, 200 * max_retries);
            } else {
                assert!(r.failed_attempts > 0, "rate {rate} should trip at least once");
            }
        }
    }

    #[test]
    fn retries_cost_throughput_but_save_requests() {
        let e = engine();
        let policy = BatchPolicy {
            max_batch: 8,
            max_wait: 0.05,
        };
        let w = workload(20.0);
        let no_retry = simulate_serving_with_faults(
            &e,
            &w,
            policy,
            FaultProfile { failure_rate: 0.25, max_retries: 0, seed: 5 },
        );
        let with_retry = simulate_serving_with_faults(
            &e,
            &w,
            policy,
            FaultProfile { failure_rate: 0.25, max_retries: 8, seed: 5 },
        );
        assert!(no_retry.evicted > 0);
        assert!(with_retry.evicted < no_retry.evicted);
        assert!(with_retry.completed > no_retry.completed);
        // Re-execution is real work: the retrying run keeps the engine busy
        // at least as long.
        assert!(with_retry.utilization >= no_retry.utilization - 1e-9);
    }

    #[test]
    fn retry_waves_are_reported_separately_from_admission_batches() {
        let e = engine();
        let policy = BatchPolicy {
            max_batch: 8,
            max_wait: 0.05,
        };
        // No faults: no retry waves at all.
        let clean = simulate_serving(&e, &workload(20.0), policy);
        assert_eq!(clean.mean_retry_batch, 0.0);
        // Faults without budget: failures evict immediately, still no waves.
        let no_budget = simulate_serving_with_faults(
            &e,
            &workload(20.0),
            policy,
            FaultProfile { failure_rate: 0.3, max_retries: 0, seed: 7 },
        );
        assert_eq!(no_budget.mean_retry_batch, 0.0);
        assert!(no_budget.evicted > 0);
        // Faults with budget: retry waves exist and are measured on their
        // own — they are re-runs of failed members, so each wave is no
        // larger than the admission cap and at least one request wide.
        let with_budget = simulate_serving_with_faults(
            &e,
            &workload(20.0),
            policy,
            FaultProfile { failure_rate: 0.3, max_retries: 4, seed: 7 },
        );
        assert!(with_budget.retried > 0);
        assert!(
            with_budget.mean_retry_batch >= 1.0
                && with_budget.mean_retry_batch <= policy.max_batch as f64,
            "mean retry wave {}",
            with_budget.mean_retry_batch
        );
    }

    #[test]
    fn fault_runs_are_seed_deterministic() {
        let e = engine();
        let policy = BatchPolicy {
            max_batch: 8,
            max_wait: 0.05,
        };
        let f = FaultProfile { failure_rate: 0.4, max_retries: 2, seed: 123 };
        let a = simulate_serving_with_faults(&e, &workload(20.0), policy, f);
        let b = simulate_serving_with_faults(&e, &workload(20.0), policy, f);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.evicted, b.evicted);
        assert_eq!(a.p99, b.p99);
    }
}
