//! Request-level serving simulation: arrivals, dynamic batching, latency
//! percentiles.
//!
//! The paper motivates everything with production serving ("Using a
//! transformer based model for online scenarios in production requires
//! meeting stringent latency requirements", Sec. I). This module closes
//! that loop: a deterministic discrete-event loop feeds Poisson-ish request
//! arrivals into an [`InferenceEngine`] through a dynamic batcher, and
//! reports p50/p95/p99 latency and goodput — so the kernel- and
//! parallelism-level wins can be read as serving-level wins.

use crate::engine::InferenceEngine;
use rand::distributions::Distribution;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// Serving workload description.
#[derive(Debug, Clone, Serialize)]
pub struct Workload {
    /// Mean request arrival rate (requests/second).
    pub arrival_rate: f64,
    /// Prompt tokens per request.
    pub prompt: usize,
    /// Generated tokens per request.
    pub gen: usize,
    /// Number of requests to simulate.
    pub requests: usize,
    /// RNG seed for arrival jitter.
    pub seed: u64,
}

/// Dynamic batching policy: collect requests until the batch is full or the
/// oldest request has waited `max_wait` seconds.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct BatchPolicy {
    pub max_batch: usize,
    pub max_wait: f64,
}

/// Simulation outcome.
#[derive(Debug, Clone, Serialize)]
pub struct ServingReport {
    pub completed: usize,
    /// End-to-end request latencies (queueing + execution), seconds.
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub mean_batch: f64,
    /// Requests per second actually served.
    pub goodput: f64,
    /// Fraction of wall-clock the engine was busy.
    pub utilization: f64,
}

/// Run the serving simulation. Deterministic for a given seed.
pub fn simulate_serving(
    engine: &InferenceEngine,
    workload: &Workload,
    policy: BatchPolicy,
) -> ServingReport {
    assert!(workload.requests > 0 && policy.max_batch > 0);
    let mut rng = ChaCha8Rng::seed_from_u64(workload.seed);
    let exp = rand::distributions::Uniform::new(0.0f64, 1.0);

    // Arrival times: exponential inter-arrivals (inverse CDF of uniforms).
    let mut arrivals = Vec::with_capacity(workload.requests);
    let mut t = 0.0;
    for _ in 0..workload.requests {
        let u: f64 = exp.sample(&mut rng).max(1e-12);
        t += -u.ln() / workload.arrival_rate;
        arrivals.push(t);
    }

    // Cache execution latency per batch size (the engine is deterministic).
    let mut latency_cache: Vec<Option<f64>> = vec![None; policy.max_batch + 1];
    let mut exec_latency = |b: usize| -> f64 {
        let b = b.min(policy.max_batch);
        if latency_cache[b].is_none() {
            latency_cache[b] =
                Some(engine.generation(b, workload.prompt, workload.gen).total_latency);
        }
        latency_cache[b].unwrap()
    };

    let mut engine_free = 0.0f64;
    let mut busy = 0.0f64;
    let mut latencies = Vec::with_capacity(workload.requests);
    let mut batches = Vec::new();
    let mut i = 0;
    while i < arrivals.len() {
        // The batch window opens when the engine is free and the next
        // request has arrived.
        let open = engine_free.max(arrivals[i]);
        // Admit everything that arrives within the wait window, up to the
        // batch cap.
        let deadline = arrivals[i] + policy.max_wait;
        let mut j = i + 1;
        while j < arrivals.len() && j - i < policy.max_batch && arrivals[j] <= open.max(deadline) {
            j += 1;
        }
        let start = open.max(if j - i < policy.max_batch {
            // Window closed by timeout: wait until the deadline or the
            // engine frees up, whichever is later (but never before open).
            deadline.min(arrivals.get(j).copied().unwrap_or(deadline)).max(open)
        } else {
            open
        });
        let b = j - i;
        let dur = exec_latency(b);
        let end = start + dur;
        for &a in &arrivals[i..j] {
            latencies.push(end - a);
        }
        batches.push(b as f64);
        busy += dur;
        engine_free = end;
        i = j;
    }

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies[((latencies.len() as f64 * p) as usize).min(latencies.len() - 1)];
    let wall = engine_free.max(*arrivals.last().unwrap());
    ServingReport {
        completed: latencies.len(),
        p50: pct(0.50),
        p95: pct(0.95),
        p99: pct(0.99),
        mean_batch: batches.iter().sum::<f64>() / batches.len() as f64,
        goodput: latencies.len() as f64 / wall,
        utilization: busy / wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use dsi_model::zoo::dense_by_name;
    use dsi_sim::hw::ClusterSpec;

    fn engine() -> InferenceEngine {
        InferenceEngine::new(EngineConfig::deepspeed(
            dense_by_name("GPT-J-6B").unwrap(),
            ClusterSpec::dgx_a100(1),
            1,
            1,
        ))
    }

    fn workload(rate: f64) -> Workload {
        Workload {
            arrival_rate: rate,
            prompt: 128,
            gen: 8,
            requests: 200,
            seed: 11,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let e = engine();
        let policy = BatchPolicy {
            max_batch: 8,
            max_wait: 0.05,
        };
        let a = simulate_serving(&e, &workload(20.0), policy);
        let b = simulate_serving(&e, &workload(20.0), policy);
        assert_eq!(a.p99, b.p99);
        assert_eq!(a.completed, 200);
    }

    #[test]
    fn percentiles_ordered() {
        let e = engine();
        let r = simulate_serving(
            &e,
            &workload(30.0),
            BatchPolicy {
                max_batch: 16,
                max_wait: 0.02,
            },
        );
        assert!(r.p50 <= r.p95 && r.p95 <= r.p99);
        assert!(r.utilization > 0.0 && r.utilization <= 1.0);
    }

    #[test]
    fn higher_load_increases_latency_and_batch() {
        let e = engine();
        let policy = BatchPolicy {
            max_batch: 32,
            max_wait: 0.02,
        };
        let light = simulate_serving(&e, &workload(5.0), policy);
        let heavy = simulate_serving(&e, &workload(200.0), policy);
        assert!(heavy.mean_batch > light.mean_batch);
        assert!(heavy.p99 >= light.p99);
        assert!(heavy.utilization >= light.utilization);
    }

    #[test]
    fn batching_raises_goodput_under_overload() {
        let e = engine();
        let no_batch = simulate_serving(
            &e,
            &workload(100.0),
            BatchPolicy {
                max_batch: 1,
                max_wait: 0.0,
            },
        );
        let batched = simulate_serving(
            &e,
            &workload(100.0),
            BatchPolicy {
                max_batch: 32,
                max_wait: 0.01,
            },
        );
        assert!(
            batched.goodput > 1.5 * no_batch.goodput,
            "batched {:.1} vs serial {:.1} rps",
            batched.goodput,
            no_batch.goodput
        );
    }

    #[test]
    fn faster_engine_means_lower_percentiles() {
        // DeepSpeed kernels vs FT kernels on the same serving workload: the
        // kernel win must surface as a tail-latency win.
        let ds = engine();
        let ft = InferenceEngine::new(EngineConfig::faster_transformer(
            dense_by_name("GPT-J-6B").unwrap(),
            ClusterSpec::dgx_a100(1),
            1,
            1,
        ));
        let policy = BatchPolicy {
            max_batch: 8,
            max_wait: 0.02,
        };
        let rds = simulate_serving(&ds, &workload(10.0), policy);
        let rft = simulate_serving(&ft, &workload(10.0), policy);
        assert!(rds.p50 < rft.p50, "DS p50 {} vs FT {}", rds.p50, rft.p50);
        assert!(rds.p99 < rft.p99);
    }
}
