//! Shared order statistics for every serving report.
//!
//! The serving and continuous-batching simulations each carried their own
//! inline nearest-rank percentile, and both carried the same off-by-one:
//! `(len as f64 * p) as usize` truncates, which is correct only when
//! `len * p` is fractional. For exact multiples it lands one element too
//! high — p50 of 200 sorted samples read `latencies[100]`, the 101st value,
//! instead of the 100th. The nearest-rank definition is
//! `index = ceil(p * len) - 1`, which this module implements once; the
//! simulations and the executed serving runtime's `ServeReport` all call
//! it, so the definition cannot drift again.

/// Nearest-rank percentile of an **ascending-sorted** slice.
///
/// `p` is a fraction in `(0, 1]` (e.g. `0.99` for p99). Returns `0.0` for
/// an empty slice. For `p = 0` the smallest element is returned (the
/// nearest-rank index clamps to the first sample).
///
/// Panics (debug) if the slice is not sorted — callers sort once and query
/// many percentiles.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile() input must be sorted ascending"
    );
    debug_assert!((0.0..=1.0).contains(&p), "percentile fraction {p} out of [0, 1]");
    // Nearest-rank: the smallest index i such that (i + 1) / len >= p.
    let rank = (sorted.len() as f64 * p).ceil() as usize;
    sorted[rank.max(1).min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-based nearest-rank oracle by direct definition: the smallest
    /// sample whose cumulative fraction reaches `p`.
    fn oracle(sorted: &[f64], p: f64) -> f64 {
        for (i, &v) in sorted.iter().enumerate() {
            if (i + 1) as f64 / sorted.len() as f64 >= p - 1e-12 {
                return v;
            }
        }
        *sorted.last().unwrap()
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn len_one_returns_the_sample() {
        for p in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&[7.25], p), 7.25, "p={p}");
        }
    }

    #[test]
    fn len_two_nearest_rank() {
        let s = [1.0, 2.0];
        // p50 of two samples is the first (ceil(1) - 1 = 0) — the old
        // truncation read the second.
        assert_eq!(percentile(&s, 0.50), 1.0);
        assert_eq!(percentile(&s, 0.51), 2.0);
        assert_eq!(percentile(&s, 0.99), 2.0);
        assert_eq!(percentile(&s, 1.0), 2.0);
    }

    #[test]
    fn exact_multiple_ranks_no_longer_read_one_high() {
        // len = 200: p50 must be the 100th sample (index 99), p99 the 198th
        // (index 197). The pre-fix truncation read indices 100 and 198.
        let s: Vec<f64> = (0..200).map(|i| i as f64).collect();
        assert_eq!(percentile(&s, 0.50), 99.0);
        assert_eq!(percentile(&s, 0.95), 189.0);
        assert_eq!(percentile(&s, 0.99), 197.0);
        assert_eq!(percentile(&s, 1.0), 199.0);
    }

    #[test]
    fn fractional_ranks_match_the_old_behaviour() {
        // len = 199: 199 * 0.5 = 99.5 → ceil = 100 → index 99, same sample
        // the truncating version returned — the fix only moves the exact
        // multiples.
        let s: Vec<f64> = (0..199).map(|i| i as f64).collect();
        assert_eq!(percentile(&s, 0.50), 99.0);
        // 199 * 0.99 = 197.01 → ceil = 198 → the 198th sample, index 197.
        assert_eq!(percentile(&s, 0.99), 197.0);
    }

    #[test]
    fn agrees_with_direct_definition_across_lengths() {
        for len in [1usize, 2, 3, 7, 100, 199, 200, 1000] {
            let s: Vec<f64> = (0..len).map(|i| i as f64 * 0.5).collect();
            for p in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                assert_eq!(percentile(&s, p), oracle(&s, p), "len={len} p={p}");
            }
        }
    }
}
