//! The streamed decode engine: [`BatchEngine`] over an
//! [`OffloadStore`] — serve a model whose weight file exceeds the resident
//! budget, token-identical to the fully-resident fast path.
//!
//! The engine holds **no layer weights of its own**. Each forward pass
//! walks the layer stack checking panels out of the store one at a time:
//!
//! ```text
//!   for l in 0..L {
//!       panel = store.acquire(l)?          // resident hit or demand fetch
//!       store.prefetch_ahead(l + 1)        // worker reads l+1.. meanwhile
//!       layer_step(panel, ...)             // the dsi_model::fast kernels
//!       drop(panel)                        // release-before-refetch
//!   }
//! ```
//!
//! The layer body, embedding, and logits stages are the *same free
//! functions* (`dsi_model::fast::{embed_seq_into, layer_seq_step, ...}`)
//! the resident `PackedModel` engines call, and the panel bytes round-trip
//! bit-exactly through the v2 weight file — so streamed greedy decode is
//! bit-identical to the [`FastSession`] oracle by construction, at every
//! prefetch depth and budget. The proptest suite pins this.
//!
//! Store failures surface as classified [`EngineError::Fault`]s (the
//! `Display` strings of `OffloadError` land in the right `FaultClass`
//! bins), so the continuous-batching scheduler's release-and-replay
//! protocol and per-class breakers handle a dying weight tier exactly like
//! any other engine fault. A faulted step leaves the slot's KV
//! unspecified; the scheduler's release-all-before-replay makes that
//! unobservable.
//!
//! [`FastSession`]: dsi_model::fast::FastSession
//! [`EngineError::Fault`]: crate::batch::EngineError

use crate::batch::{BatchEngine, EngineError};
use dsi_zero::offload::{OffloadError, OffloadStore};
use dsi_model::fast::{
    argmax, embed_rows_into, embed_seq_into, layer_rows_step, layer_seq_step, logits_into,
    Scratch, StepRow,
};
use dsi_model::paged::PageStats;
use dsi_model::reference::KvCache;

/// One slot's decode state: its KV context and the greedy token emitted by
/// the last pass (the next pass's input).
struct StreamSlot {
    cache: KvCache,
    last: usize,
    busy: bool,
}

/// A multi-slot greedy decode engine streaming weights from an
/// [`OffloadStore`]. Construct with [`StreamedEngine::new`]; drive through
/// the [`BatchEngine`] surface (`dsi-serve` does, in both single-flight
/// and continuous modes).
pub struct StreamedEngine {
    store: OffloadStore,
    scratch: Scratch,
    slots: Vec<StreamSlot>,
    /// Token-capacity budget reported through `kv_stats` (admission
    /// metering at `page_tokens = 1`).
    token_budget: usize,
    high_water: usize,
}

impl StreamedEngine {
    /// `max_slots` concurrent sequences over `store`, reporting
    /// `token_budget` total KV tokens to the scheduler's admission math
    /// (single-flight discipline is `max_slots = 1`).
    pub fn new(store: OffloadStore, max_slots: usize, token_budget: usize) -> Self {
        assert!(max_slots > 0);
        let c = store.config().clone();
        StreamedEngine {
            scratch: Scratch::new(&c, max_slots),
            slots: (0..max_slots)
                .map(|_| StreamSlot {
                    cache: KvCache::with_capacity(c.layers, c.hidden, c.max_seq),
                    last: 0,
                    busy: false,
                })
                .collect(),
            token_budget,
            high_water: 0,
            store,
        }
    }

    /// The underlying store (stats, prefetcher health, test hooks).
    pub fn store(&self) -> &OffloadStore {
        &self.store
    }

    fn tokens_in_use(&self) -> usize {
        self.slots.iter().filter(|s| s.busy).map(|s| s.cache.context_len() + 1).sum()
    }

    /// One full layer sweep for `m` consecutive rows of slot `slot`'s
    /// sequence (the prompt pass). KV state after an `Err` is unspecified.
    fn forward_slot_seq(&mut self, slot: usize, ids: &[usize]) -> Result<(), OffloadError> {
        let StreamedEngine { store, scratch, slots, .. } = self;
        let c = store.config();
        let m = ids.len();
        let cache = &mut slots[slot].cache;
        let offset = cache.context_len();
        assert!(offset + m <= c.max_seq, "sequence exceeds max_seq");
        scratch.ensure(c, m);
        let rg = store.resident();
        embed_seq_into(c, &rg.wte, &rg.wpe, ids, offset, scratch);
        for l in 0..c.layers {
            let panel = store.acquire(l)?;
            store.prefetch_ahead(l + 1);
            layer_seq_step(c, scratch, &panel, &mut cache.layers[l], m, offset);
            // `panel` drops here: release-before-refetch, so the budget
            // always has the in-use panel's slot back before the worker
            // needs room for the next one.
        }
        logits_into(c, scratch, m, &rg.lnf_g, &rg.lnf_b, &rg.wte_packed);
        Ok(())
    }

    /// One ragged decode step over `slot_ids` (strictly ascending, busy).
    fn forward_slot_rows(&mut self, slot_ids: &[usize]) -> Result<(), OffloadError> {
        let StreamedEngine { store, scratch, slots, .. } = self;
        let c = store.config();
        let m = slot_ids.len();
        scratch.ensure(c, m);
        let mut rows: Vec<StepRow<'_>> = slots
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| slot_ids.binary_search(i).is_ok())
            .map(|(_, s)| StepRow { token: s.last, cache: &mut s.cache })
            .collect();
        assert_eq!(rows.len(), m, "decode_step: slot out of range");
        let rg = store.resident();
        embed_rows_into(c, &rg.wte, &rg.wpe, &rows, scratch);
        for l in 0..c.layers {
            let panel = store.acquire(l)?;
            store.prefetch_ahead(l + 1);
            layer_rows_step(c, scratch, &panel, &mut rows, l);
        }
        logits_into(c, scratch, m, &rg.lnf_g, &rg.lnf_b, &rg.wte_packed);
        Ok(())
    }
}

fn classify(e: OffloadError) -> EngineError {
    EngineError::classified(e.to_string())
}

impl BatchEngine for StreamedEngine {
    fn max_slots(&self) -> usize {
        self.slots.len()
    }

    fn prefill(&mut self, slot: usize, prompt: &[usize]) -> Result<usize, EngineError> {
        assert!(!prompt.is_empty(), "empty prompt");
        assert!(!self.slots[slot].busy, "prefill into busy slot {slot}");
        self.slots[slot].cache.clear();
        if let Err(e) = self.forward_slot_seq(slot, prompt) {
            // Contract: on Err the slot stays free and holds nothing.
            self.slots[slot].cache.clear();
            return Err(classify(e));
        }
        let vocab = self.store.config().vocab;
        let next = argmax(self.scratch.logits_row(prompt.len() - 1, vocab));
        let sq = &mut self.slots[slot];
        sq.last = next;
        sq.busy = true;
        self.high_water = self.high_water.max(self.tokens_in_use());
        Ok(next)
    }

    fn decode_step(&mut self, slots: &[usize], out: &mut Vec<usize>) -> Result<(), EngineError> {
        assert!(!slots.is_empty(), "decode_step: empty batch");
        assert!(
            slots.windows(2).all(|w| w[0] < w[1]),
            "decode_step: slots must be strictly ascending"
        );
        for &s in slots {
            assert!(self.slots[s].busy, "decode_step on free slot {s}");
        }
        self.forward_slot_rows(slots).map_err(classify)?;
        let vocab = self.store.config().vocab;
        for (r, &i) in slots.iter().enumerate() {
            let next = argmax(self.scratch.logits_row(r, vocab));
            self.slots[i].last = next;
            out.push(next);
        }
        self.high_water = self.high_water.max(self.tokens_in_use());
        Ok(())
    }

    fn release(&mut self, slot: usize) {
        let sq = &mut self.slots[slot];
        sq.cache.clear();
        sq.last = 0;
        sq.busy = false;
    }

    fn kv_stats(&self) -> Option<PageStats> {
        let in_use = self.tokens_in_use();
        Some(PageStats {
            pages_total: self.token_budget,
            pages_in_use: in_use,
            pages_free: self.token_budget.saturating_sub(in_use),
            high_water: self.high_water,
            page_tokens: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_zero::offload::OffloadConfig;
    use dsi_model::fast::PackedModel;
    use dsi_model::reference::GptModel;
    use dsi_model::zoo;

    fn saved(layers: usize, seed: u64, tag: &str) -> (GptModel, std::path::PathBuf) {
        let m = GptModel::random(zoo::tiny(layers), seed);
        let path = std::env::temp_dir().join(format!("dsi_streamed_{tag}_{seed}_{layers}.bin"));
        dsi_model::io::save(&m, &path).expect("save");
        (m, path)
    }

    #[test]
    fn streamed_decode_matches_resident_oracle() {
        let (m, path) = saved(3, 41, "oracle");
        let store = OffloadStore::open(&path, OffloadConfig::default()).expect("open");
        let mut eng = StreamedEngine::new(store, 1, 4096);
        let pm = PackedModel::pack(&m);
        let mut oracle = pm.session(4);
        let want = oracle.generate(&[1, 2, 3, 4], 8);
        let mut got = vec![eng.prefill(0, &[1, 2, 3, 4]).expect("prefill")];
        for _ in 1..8 {
            eng.decode_step(&[0], &mut got).expect("decode");
        }
        assert_eq!(got, want);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn streamed_batch_matches_solo_sessions_under_tight_budget() {
        let (m, path) = saved(4, 43, "batch");
        let probe = OffloadStore::open(&path, OffloadConfig::default()).expect("probe");
        let budget = probe.panel_bytes() * 2;
        drop(probe);
        let cfg = OffloadConfig { resident_budget_bytes: budget, ..OffloadConfig::default() };
        let store = OffloadStore::open(&path, cfg).expect("open");
        assert!(store.file_bytes() > budget, "model bigger than the budget");
        let mut eng = StreamedEngine::new(store, 3, 4096);
        let prompts = [vec![1usize, 2, 3], vec![9, 8], vec![4, 5, 6, 7]];
        let pm = PackedModel::pack(&m);
        let mut streams: Vec<Vec<usize>> = prompts
            .iter()
            .enumerate()
            .map(|(s, p)| vec![eng.prefill(s, p).expect("prefill")])
            .collect();
        for _ in 1..6 {
            let mut out = Vec::new();
            eng.decode_step(&[0, 1, 2], &mut out).expect("decode");
            for (s, t) in out.into_iter().enumerate() {
                streams[s].push(t);
            }
        }
        for (s, p) in prompts.iter().enumerate() {
            let want = pm.session(p.len()).generate(p, 6);
            assert_eq!(streams[s], want, "slot {s}");
        }
        assert!(eng.store().stats().evictions > 0, "tight budget must evict");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn release_frees_the_slot_for_reuse() {
        let (m, path) = saved(2, 47, "reuse");
        let store = OffloadStore::open(&path, OffloadConfig::default()).expect("open");
        let mut eng = StreamedEngine::new(store, 1, 64);
        let pm = PackedModel::pack(&m);
        let first = eng.prefill(0, &[5, 6]).expect("prefill");
        eng.release(0);
        assert_eq!(eng.kv_stats().unwrap().pages_in_use, 0);
        let again = eng.prefill(0, &[5, 6]).expect("prefill again");
        assert_eq!(first, again);
        assert_eq!(again, pm.session(2).generate(&[5, 6], 1)[0]);
        let _ = std::fs::remove_file(path);
    }
}
