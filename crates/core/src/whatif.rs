//! Hardware sensitivity analysis: which resource actually bounds a
//! deployment?
//!
//! The paper's whole argument is a set of roofline attributions — small
//! batch is HBM-bound (Sec. I), cross-node TP is network-bound (Sec. II),
//! launch overhead binds small models (Sec. III-D), NVMe binds 530B
//! streaming (Sec. VI). This module makes those attributions queryable:
//! scale one hardware knob at a time and report the latency elasticity
//! `−d log(latency) / d log(knob)` — 1.0 means the knob is the bottleneck,
//! 0.0 means it is irrelevant.

use crate::engine::{EngineConfig, InferenceEngine};
use dsi_sim::hw::ClusterSpec;
use serde::Serialize;

/// A hardware knob the sensitivity analysis can scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Knob {
    /// GPU HBM bandwidth.
    MemBandwidth,
    /// GPU peak math throughput (all precisions).
    PeakFlops,
    /// Kernel-launch overhead (inverse: larger knob = lower overhead).
    LaunchOverhead,
    /// Intra-node interconnect bandwidth (NVLink/NVSwitch).
    IntraBandwidth,
    /// Inter-node network bandwidth.
    InterBandwidth,
}

pub const ALL_KNOBS: [Knob; 5] = [
    Knob::MemBandwidth,
    Knob::PeakFlops,
    Knob::LaunchOverhead,
    Knob::IntraBandwidth,
    Knob::InterBandwidth,
];

/// Scale a cluster's hardware along one knob by `factor` (> 1 = better
/// hardware).
pub fn scale_cluster(base: &ClusterSpec, knob: Knob, factor: f64) -> ClusterSpec {
    assert!(factor > 0.0);
    let mut c = base.clone();
    match knob {
        Knob::MemBandwidth => c.node.gpu.mem_bw *= factor,
        Knob::PeakFlops => {
            c.node.gpu.peak_fp32 *= factor;
            c.node.gpu.peak_fp16 *= factor;
            c.node.gpu.peak_int8 *= factor;
        }
        Knob::LaunchOverhead => c.node.gpu.kernel_launch_overhead /= factor,
        Knob::IntraBandwidth => c.node.intra_link.bw *= factor,
        Knob::InterBandwidth => c.inter_bw *= factor,
    }
    c
}

/// Sensitivity of one workload to one knob.
#[derive(Debug, Clone, Serialize)]
pub struct Sensitivity {
    pub knob: Knob,
    /// Latency elasticity in [0, 1]: fraction of latency the knob governs.
    pub elasticity: f64,
}

/// Measure the latency elasticity of every knob for a deployment +
/// workload: re-run the engine with each knob improved by `factor` (default
/// 2×) and convert the speedup into an elasticity.
pub fn sensitivities(
    cfg: &EngineConfig,
    batch: usize,
    prompt: usize,
    gen: usize,
    factor: f64,
) -> Vec<Sensitivity> {
    let base = InferenceEngine::new(cfg.clone())
        .generation(batch, prompt, gen)
        .total_latency;
    ALL_KNOBS
        .iter()
        .map(|&knob| {
            let mut scaled = cfg.clone();
            scaled.cluster = scale_cluster(&cfg.cluster, knob, factor);
            let t = InferenceEngine::new(scaled)
                .generation(batch, prompt, gen)
                .total_latency;
            // If the knob governed everything, t = base/factor; if nothing,
            // t = base. Map linearly onto [0, 1] in log space.
            let elasticity = (base / t).ln() / factor.ln();
            Sensitivity {
                knob,
                elasticity: elasticity.clamp(-0.05, 1.05),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_model::zoo::dense_by_name;

    fn sens(model: &str, tp: usize, pp: usize, nodes: usize, batch: usize) -> Vec<Sensitivity> {
        let cfg = EngineConfig::deepspeed(
            dense_by_name(model).unwrap(),
            ClusterSpec::dgx_a100(nodes),
            tp,
            pp,
        );
        sensitivities(&cfg, batch, 128, 8, 2.0)
    }

    fn get(v: &[Sensitivity], k: Knob) -> f64 {
        v.iter().find(|s| s.knob == k).unwrap().elasticity
    }

    #[test]
    fn small_batch_single_gpu_is_memory_bound() {
        // Sec. I: batch-1 latency is weight-read bound.
        let v = sens("GPT-J-6B", 1, 1, 1, 1);
        let mem = get(&v, Knob::MemBandwidth);
        assert!(mem > 0.5, "memory elasticity {mem:.2}");
        assert!(mem > 3.0 * get(&v, Knob::PeakFlops).max(0.05));
        assert!(get(&v, Knob::InterBandwidth).abs() < 0.05);
    }

    #[test]
    fn large_batch_prompt_is_compute_bound() {
        let v = sens("GPT-J-6B", 1, 1, 1, 64);
        let flops = get(&v, Knob::PeakFlops);
        let mem = get(&v, Knob::MemBandwidth);
        assert!(flops > mem, "flops {flops:.2} vs mem {mem:.2}");
    }

    #[test]
    fn cross_node_tp_feels_the_network() {
        // TP=16 spans two nodes: inter-node bandwidth must matter there and
        // not for the TP=8 single-node mapping.
        let wide = sens("LM-175B", 16, 1, 2, 8);
        let narrow = sens("LM-175B", 8, 2, 2, 8);
        assert!(
            get(&wide, Knob::InterBandwidth) > get(&narrow, Knob::InterBandwidth) + 0.05,
            "wide {:.2} narrow {:.2}",
            get(&wide, Knob::InterBandwidth),
            get(&narrow, Knob::InterBandwidth)
        );
    }

    #[test]
    fn elasticities_are_fractions_of_a_whole() {
        // Knobs partition the latency (roughly): summed elasticity ≈ ≤ 1.2.
        let v = sens("GPT-13B", 4, 1, 1, 4);
        let sum: f64 = v.iter().map(|s| s.elasticity.max(0.0)).sum();
        assert!(sum < 1.4, "sum {sum:.2}");
        assert!(sum > 0.5, "sum {sum:.2}");
    }

    #[test]
    fn scale_cluster_is_pure() {
        let base = ClusterSpec::dgx_a100(1);
        let scaled = scale_cluster(&base, Knob::MemBandwidth, 2.0);
        assert_eq!(scaled.node.gpu.mem_bw, base.node.gpu.mem_bw * 2.0);
        assert_eq!(base.node.gpu.mem_bw, ClusterSpec::dgx_a100(1).node.gpu.mem_bw);
    }
}
