//! Property tests for the streamed decode engine: across model shapes ×
//! prefetch depths × resident budgets (including budgets so tight every
//! layer step evicts the previous panel mid-stream), greedy decode through
//! [`StreamedEngine`] is **bit-identical** to the fully-resident
//! [`FastSession`] oracle. This is the correctness half of the streaming
//! weight offload: the layer kernels are shared free functions and the
//! panels round-trip bit-exactly through the checksummed v2 file, so any
//! divergence here is a prefetch/eviction bug, not a numerics question.
//!
//! [`FastSession`]: dsi_model::fast::FastSession

use dsi_core::{OffloadConfig, OffloadStore, StreamedEngine};
use dsi_core::batch::BatchEngine;
use dsi_model::fast::PackedModel;
use dsi_model::reference::GptModel;
use dsi_model::zoo;
use proptest::prelude::*;
use std::path::PathBuf;

/// Save a fresh random model to a uniquely-named v2 weight file.
fn saved(layers: usize, seed: u64, tag: &str) -> (GptModel, PathBuf) {
    let m = GptModel::random(zoo::tiny(layers), seed);
    let path = std::env::temp_dir().join(format!(
        "dsi_offload_prop_{tag}_{}_{seed}_{layers}.bin",
        std::process::id()
    ));
    dsi_model::io::save(&m, &path).expect("save weight file");
    (m, path)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Single-stream decode matches the resident oracle at every prefetch
    /// depth and budget — including `budget = 1 panel` (effective depth 0:
    /// pure demand fetch, evicting the previous layer every step).
    #[test]
    fn streamed_decode_is_oracle_identical(
        seed in 0u64..10_000,
        layers in 1usize..5,
        depth in 0usize..5,
        budget_panels_sel in 0usize..3,
        prompt_len in 1usize..6,
    ) {
        let (m, path) = saved(layers, seed, "solo");
        let prompt: Vec<usize> = (0..prompt_len).map(|i| (seed as usize + 7 * i) % 101).collect();
        let n = 6;
        let want = PackedModel::pack(&m).session(prompt.len()).generate(&prompt, n);

        let probe = OffloadStore::open(&path, OffloadConfig::default()).expect("probe open");
        let panel = probe.panel_bytes();
        let file = probe.file_bytes();
        drop(probe);
        // 1 panel (thrash), 2 panels (double-buffer), everything resident.
        let budget = [panel, panel * 2, file][budget_panels_sel];

        let cfg = OffloadConfig {
            resident_budget_bytes: budget,
            prefetch_depth: depth,
            ..OffloadConfig::default()
        };
        let store = OffloadStore::open(&path, cfg).expect("open");
        let mut eng = StreamedEngine::new(store, 1, 4096);
        let mut got = vec![eng.prefill(0, &prompt).expect("prefill")];
        for _ in 1..n {
            eng.decode_step(&[0], &mut got).expect("decode");
        }
        let stats = eng.store().stats();
        let _ = std::fs::remove_file(&path);

        prop_assert_eq!(
            &got, &want,
            "streamed diverged (seed={}, layers={}, depth={}, budget={}B)",
            seed, layers, depth, budget
        );
        // The budget is honoured even while panels churn mid-stream.
        prop_assert!(
            stats.peak_resident_bytes <= budget,
            "peak {} exceeds budget {}", stats.peak_resident_bytes, budget
        );
        if budget_panels_sel == 0 && layers > 1 {
            prop_assert!(stats.evictions > 0, "one-panel budget must evict");
        }
    }

    /// Ragged multi-slot decode under a tight budget matches per-prompt
    /// solo oracles: eviction churn from interleaved slots never leaks one
    /// stream's state into another.
    #[test]
    fn streamed_batch_is_oracle_identical_per_slot(
        seed in 0u64..10_000,
        layers in 2usize..5,
        depth in 0usize..3,
    ) {
        let (m, path) = saved(layers, seed, "batch");
        let probe = OffloadStore::open(&path, OffloadConfig::default()).expect("probe open");
        let budget = probe.panel_bytes() * 2;
        drop(probe);
        let cfg = OffloadConfig {
            resident_budget_bytes: budget,
            prefetch_depth: depth,
            ..OffloadConfig::default()
        };
        let store = OffloadStore::open(&path, cfg).expect("open");
        prop_assert!(store.file_bytes() > budget, "model must exceed the resident budget");

        let mut eng = StreamedEngine::new(store, 3, 4096);
        let prompts: Vec<Vec<usize>> = (0..3)
            .map(|s| (0..=s + 1).map(|i| (seed as usize + 13 * s + i) % 101).collect())
            .collect();
        let n = 5;
        let mut streams: Vec<Vec<usize>> = prompts
            .iter()
            .enumerate()
            .map(|(s, p)| vec![eng.prefill(s, p).expect("prefill")])
            .collect();
        for _ in 1..n {
            let mut out = Vec::new();
            eng.decode_step(&[0, 1, 2], &mut out).expect("decode");
            for (s, t) in out.into_iter().enumerate() {
                streams[s].push(t);
            }
        }
        let _ = std::fs::remove_file(&path);

        let pm = PackedModel::pack(&m);
        for (s, p) in prompts.iter().enumerate() {
            let want = pm.session(p.len()).generate(p, n);
            prop_assert_eq!(
                &streams[s], &want,
                "slot {} diverged (seed={}, layers={}, depth={})", s, seed, layers, depth
            );
        }
    }
}
