//! Cache-blocked GEMM over panel-packed weights — the "executed" half of
//! Deep-Fusion's GEMM scheduling (Sec. III-B/III-C).
//!
//! Inference reuses the same weight matrix for every generated token, so the
//! layout work that makes a GEMM fast should be paid **once per model, not
//! once per call** (the same observation that motivates the paper's SBI-GeMM
//! weight-layout transform). [`PackedB`] stores a `[k, n]` weight repacked
//! into panels of [`PANEL`] output columns: panel `jp` holds rows
//! `0..k`, each row contributing `PANEL` consecutive weights, so the decode
//! GEMV streams the panel exactly once with unit stride. Output columns past
//! `n` are zero-padded inside the last panel and never stored.
//!
//! Against that layout the row kernel keeps one accumulator register lane
//! per output column for the whole `k` loop: each step broadcasts one
//! element of `a` and fuses it into four 8-wide accumulators (AVX2+FMA when
//! the CPU has it — detected once at runtime, `std::arch` only, no
//! dependencies — otherwise a portable 32-lane scalar loop the
//! auto-vectorizer handles). Four independent chains break the FMA latency
//! serialization a single running sum would pay, and the output row is
//! touched exactly once — no read-modify-write traffic like the naive
//! saxpy form in [`crate::ops::matmul`].
//!
//! Every kernel writes into a caller-provided output slice, so steady-state
//! decode can run entirely out of preallocated scratch (see
//! `dsi-model::fast`). The `matmul_*_into` variants fuse the common
//! epilogues (bias, bias+GeLU, bias+residual) into the same output pass —
//! the interior tensor of each Fig. 1(c) region never touches memory twice.

use crate::tensor::Tensor;

/// Output columns per packed panel: four 8-float SIMD registers.
pub const PANEL: usize = 32;

/// Unit-stride dot product with 4 independent accumulators.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (x, y) in (&mut ca).zip(&mut cb) {
        acc[0] += x[0] * y[0];
        acc[1] += x[1] * y[1];
        acc[2] += x[2] * y[2];
        acc[3] += x[3] * y[3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        s += x * y;
    }
    s
}


#[cfg(target_arch = "x86_64")]
mod avx {
    use super::PANEL;
    use std::arch::x86_64::*;

    /// One GEMV row over panel-packed weights: `out[0..n] = a[0..k] · B`.
    ///
    /// # Safety
    /// Caller must have verified AVX2+FMA support, and `panels` must hold
    /// `n.div_ceil(PANEL)` panels of `k * PANEL` floats ([`super::PackedB`]
    /// layout).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gemv(a: &[f32], k: usize, panels: &[f32], out: &mut [f32]) {
        let n = out.len();
        let n_panels = n.div_ceil(PANEL);
        // Contract checks: the SAFETY arguments below all reduce to these
        // two equalities (the `PackedB` layout invariant).
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(panels.len(), n_panels * k * PANEL);
        for jp in 0..n_panels {
            // SAFETY: `jp < n_panels` and `panels.len() == n_panels * k *
            // PANEL`, so the panel base stays in bounds (`add` lands at most
            // one-past-the-end when `k == 0`).
            let p = unsafe { panels.as_ptr().add(jp * k * PANEL) };
            // Four independent FMA chains: one register per 8 output
            // columns, alive across the whole k loop.
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut acc2 = _mm256_setzero_ps();
            let mut acc3 = _mm256_setzero_ps();
            for i in 0..k {
                // SAFETY: `i < k == a.len()` bounds the `get_unchecked`;
                // `i * PANEL + 24 + 8 <= k * PANEL` keeps all four 8-wide
                // loads inside panel `jp` of `panels`.
                unsafe {
                    let av = _mm256_set1_ps(*a.get_unchecked(i));
                    let row = p.add(i * PANEL);
                    acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(row), acc0);
                    acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(row.add(8)), acc1);
                    acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(row.add(16)), acc2);
                    acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(row.add(24)), acc3);
                }
            }
            let j0 = jp * PANEL;
            if j0 + PANEL <= n {
                // SAFETY: `j0 + PANEL <= n == out.len()`, so the four
                // stores cover exactly `out[j0..j0 + 32]`.
                unsafe {
                    let o = out.as_mut_ptr().add(j0);
                    _mm256_storeu_ps(o, acc0);
                    _mm256_storeu_ps(o.add(8), acc1);
                    _mm256_storeu_ps(o.add(16), acc2);
                    _mm256_storeu_ps(o.add(24), acc3);
                }
            } else {
                // Tail panel: spill the padded lanes, store only the real
                // columns.
                let mut tmp = [0.0f32; PANEL];
                // SAFETY: `tmp` is exactly `PANEL == 32` floats, matching
                // the four 8-wide stores at offsets 0/8/16/24.
                unsafe {
                    _mm256_storeu_ps(tmp.as_mut_ptr(), acc0);
                    _mm256_storeu_ps(tmp.as_mut_ptr().add(8), acc1);
                    _mm256_storeu_ps(tmp.as_mut_ptr().add(16), acc2);
                    _mm256_storeu_ps(tmp.as_mut_ptr().add(24), acc3);
                }
                out[j0..n].copy_from_slice(&tmp[..n - j0]);
            }
        }
    }
}

/// Portable fallback row kernel over the same panel layout. The fixed-width
/// 32-lane accumulator loop is what the auto-vectorizer wants to see.
fn gemv_scalar(a: &[f32], k: usize, panels: &[f32], out: &mut [f32]) {
    let n = out.len();
    let n_panels = n.div_ceil(PANEL);
    debug_assert_eq!(a.len(), k);
    debug_assert_eq!(panels.len(), n_panels * k * PANEL);
    for jp in 0..n_panels {
        let panel = &panels[jp * k * PANEL..(jp + 1) * k * PANEL];
        let mut acc = [0.0f32; PANEL];
        for (i, rows) in panel.chunks_exact(PANEL).enumerate() {
            let av = a[i];
            for (lane, &w) in acc.iter_mut().zip(rows) {
                *lane += av * w;
            }
        }
        let j0 = jp * PANEL;
        let je = (j0 + PANEL).min(n);
        out[j0..je].copy_from_slice(&acc[..je - j0]);
    }
}

#[inline]
fn gemv(a: &[f32], k: usize, panels: &[f32], out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_fma() {
        // SAFETY: feature support verified by `avx2_fma`; the slice layout
        // contract is upheld by `PackedB` (the only producer of `panels`).
        unsafe { avx::gemv(a, k, panels, out) };
        return;
    }
    gemv_scalar(a, k, panels, out);
}

/// A weight matrix packed for repeated right-multiplication: logically
/// `[k, n]`, stored as `n.div_ceil(PANEL)` panels of `PANEL` consecutive
/// output columns (`data[jp * k * PANEL + i * PANEL + jr] == B[i, jp*PANEL +
/// jr]`, zero past column `n`).
#[derive(Debug, Clone)]
pub struct PackedB {
    k: usize,
    n: usize,
    data: Vec<f32>,
}

impl PackedB {
    fn with_writer(k: usize, n: usize, fill: impl Fn(usize, usize) -> f32) -> Self {
        let n_panels = n.div_ceil(PANEL);
        let mut data = vec![0.0f32; n_panels * k * PANEL];
        for jp in 0..n_panels {
            let panel = &mut data[jp * k * PANEL..(jp + 1) * k * PANEL];
            let width = (n - jp * PANEL).min(PANEL);
            for i in 0..k {
                for jr in 0..width {
                    panel[i * PANEL + jr] = fill(i, jp * PANEL + jr);
                }
            }
        }
        PackedB { k, n, data }
    }

    /// Pack a `[k, n]` matrix (one-time layout transform; amortized over
    /// every subsequent token).
    pub fn pack(b: &Tensor) -> Self {
        let (k, n) = (b.rows(), b.cols());
        let bd = b.data();
        Self::with_writer(k, n, |i, j| bd[i * n + j])
    }

    /// Pack a matrix already stored transposed (`[n, k]` row-major), e.g.
    /// the tied embedding used for the logits projection `x · wteᵀ`.
    pub fn from_pre_transposed(bt: &Tensor) -> Self {
        let (n, k) = (bt.rows(), bt.cols());
        let bd = bt.data();
        Self::with_writer(k, n, |i, j| bd[j * k + i])
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn n(&self) -> usize {
        self.n
    }
}

/// How the GEMM finishes each output element (fused epilogue).
#[derive(Clone, Copy)]
enum Epilogue<'a> {
    /// `out = a·B`
    None,
    /// `out = a·B + bias`
    Bias(&'a [f32]),
    /// `out = gelu(a·B + bias)`
    BiasGelu(&'a [f32]),
    /// `out = a·B + bias + residual` (residual is `[m, n]` like `out`)
    BiasAdd(&'a [f32], &'a [f32]),
}

/// GeLU (tanh approximation), matching [`crate::ops::gelu`].
#[inline]
pub fn gelu_scalar(u: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * u * (1.0 + (C * (u + 0.044715 * u * u * u)).tanh())
}

fn gemm_epilogue(a: &[f32], m: usize, b: &PackedB, out: &mut [f32], ep: Epilogue<'_>) {
    let (k, n) = (b.k, b.n);
    assert_eq!(a.len(), m * k, "gemm: lhs size mismatch");
    assert_eq!(out.len(), m * n, "gemm: out size mismatch");
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        gemv(arow, k, &b.data, orow);
        // The epilogue runs while the freshly written row is still hot in
        // L1 — one extra register pass, no second GEMM-sized traversal.
        match ep {
            Epilogue::None => {}
            Epilogue::Bias(bias) => {
                for (o, &bv) in orow.iter_mut().zip(bias) {
                    *o += bv;
                }
            }
            Epilogue::BiasGelu(bias) => crate::simd::bias_gelu_row(orow, bias),
            Epilogue::BiasAdd(bias, res) => {
                let rrow = &res[i * n..(i + 1) * n];
                for ((o, &bv), &rv) in orow.iter_mut().zip(bias).zip(rrow) {
                    *o += bv + rv;
                }
            }
        }
    }
}

/// `out[m,n] = a[m,k] · B`, into caller storage.
pub fn matmul_into(a: &[f32], m: usize, b: &PackedB, out: &mut [f32]) {
    gemm_epilogue(a, m, b, out, Epilogue::None);
}

/// `out = a·B + bias` in one output pass.
pub fn matmul_bias_into(a: &[f32], m: usize, b: &PackedB, bias: &[f32], out: &mut [f32]) {
    assert_eq!(bias.len(), b.n, "bias length mismatch");
    gemm_epilogue(a, m, b, out, Epilogue::Bias(bias));
}

/// `out = gelu(a·B + bias)` in one output pass (Fig. 1(c) region 4 tail).
pub fn matmul_bias_gelu_into(a: &[f32], m: usize, b: &PackedB, bias: &[f32], out: &mut [f32]) {
    assert_eq!(bias.len(), b.n, "bias length mismatch");
    gemm_epilogue(a, m, b, out, Epilogue::BiasGelu(bias));
}

/// `out = a·B + bias + residual` in one output pass (Fig. 1(c) regions 3
/// and 5 tails: projection GEMM, bias add, and residual connection fused).
pub fn matmul_bias_add_into(
    a: &[f32],
    m: usize,
    b: &PackedB,
    bias: &[f32],
    residual: &[f32],
    out: &mut [f32],
) {
    assert_eq!(bias.len(), b.n, "bias length mismatch");
    assert_eq!(residual.len(), m * b.n, "residual size mismatch");
    gemm_epilogue(a, m, b, out, Epilogue::BiasAdd(bias, residual));
}

/// Allocating convenience wrapper: `a [m,k] · B -> [m,n]`.
pub fn matmul_packed(a: &Tensor, b: &PackedB) -> Tensor {
    let m = a.rows();
    let mut out = Tensor::zeros(&[m, b.n]);
    matmul_into(a.data(), m, b, out.data_mut());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn packed_matmul_matches_naive() {
        // Shapes straddle panel boundaries: n < PANEL, n == PANEL, ragged
        // tails, and the real layer shapes.
        for (m, k, n) in [
            (1, 7, 5),
            (3, 16, 9),
            (4, 33, 12),
            (1, 16, 32),
            (2, 10, 37),
            (1, 64, 101),
            (2, 64, 192),
        ] {
            let a = Tensor::randn(&[m, k], 1.0, 11);
            let b = Tensor::randn(&[k, n], 1.0, 12);
            let want = ops::matmul(&a, &b);
            let got = matmul_packed(&a, &PackedB::pack(&b));
            assert!(
                got.allclose(&want, 1e-4),
                "({m},{k},{n}) diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn scalar_fallback_matches_dispatch() {
        // Whatever the runtime dispatch picks must agree with the portable
        // kernel on identical inputs.
        let a = Tensor::randn(&[2, 48], 1.0, 15);
        let b = Tensor::randn(&[48, 77], 1.0, 16);
        let pb = PackedB::pack(&b);
        let mut got = vec![0.0f32; 2 * 77];
        matmul_into(a.data(), 2, &pb, &mut got);
        let mut want = vec![0.0f32; 2 * 77];
        for i in 0..2 {
            gemv_scalar(&a.data()[i * 48..(i + 1) * 48], 48, &pb.data, &mut want[i * 77..(i + 1) * 77]);
        }
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-5, "{g} vs {w}");
        }
    }

    #[test]
    fn pre_transposed_matches_matmul_transb() {
        let a = Tensor::randn(&[3, 16], 1.0, 21);
        let bt = Tensor::randn(&[9, 16], 1.0, 22); // stored [n, k]
        let want = ops::matmul_transb(&a, &bt);
        let mut got = Tensor::zeros(&[3, 9]);
        matmul_into(a.data(), 3, &PackedB::from_pre_transposed(&bt), got.data_mut());
        assert!(got.allclose(&want, 1e-4), "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn pre_transposed_pack_matches_pack() {
        let b = Tensor::randn(&[10, 6], 1.0, 31);
        let mut bt = Tensor::zeros(&[6, 10]);
        for i in 0..10 {
            for j in 0..6 {
                bt.row_mut(j)[i] = b.row(i)[j];
            }
        }
        let a = Tensor::randn(&[2, 10], 1.0, 32);
        let c1 = matmul_packed(&a, &PackedB::pack(&b));
        let c2 = matmul_packed(&a, &PackedB::from_pre_transposed(&bt));
        assert!(c1.allclose(&c2, 0.0));
    }

    #[test]
    fn bias_epilogue_matches_unfused() {
        let a = Tensor::randn(&[3, 20], 1.0, 41);
        let b = Tensor::randn(&[20, 11], 1.0, 42);
        let bias = Tensor::randn(&[11], 1.0, 43);
        let mut want = ops::matmul(&a, &b);
        ops::add_bias(&mut want, &bias);
        let mut got = Tensor::zeros(&[3, 11]);
        matmul_bias_into(a.data(), 3, &PackedB::pack(&b), bias.data(), got.data_mut());
        assert!(got.allclose(&want, 1e-4));
    }

    #[test]
    fn bias_gelu_epilogue_matches_unfused() {
        let a = Tensor::randn(&[2, 12], 1.0, 51);
        let b = Tensor::randn(&[12, 8], 1.0, 52);
        let bias = Tensor::randn(&[8], 1.0, 53);
        let mut want = ops::matmul(&a, &b);
        ops::add_bias(&mut want, &bias);
        ops::gelu(&mut want);
        let mut got = Tensor::zeros(&[2, 8]);
        matmul_bias_gelu_into(a.data(), 2, &PackedB::pack(&b), bias.data(), got.data_mut());
        assert!(got.allclose(&want, 1e-5));
    }

    #[test]
    fn bias_add_epilogue_matches_unfused() {
        let a = Tensor::randn(&[2, 12], 1.0, 61);
        let b = Tensor::randn(&[12, 12], 1.0, 62);
        let bias = Tensor::randn(&[12], 1.0, 63);
        let res = Tensor::randn(&[2, 12], 1.0, 64);
        let mut want = ops::matmul(&a, &b);
        ops::add_bias(&mut want, &bias);
        ops::add_inplace(&mut want, &res);
        let mut got = Tensor::zeros(&[2, 12]);
        matmul_bias_add_into(
            a.data(),
            2,
            &PackedB::pack(&b),
            bias.data(),
            res.data(),
            got.data_mut(),
        );
        assert!(got.allclose(&want, 1e-4));
    }

    #[test]
    fn nan_propagates_through_packed_gemm() {
        // The packed path must keep IEEE semantics: a NaN anywhere in the
        // reduction poisons every real output column (the zero-padded tail
        // lanes are never stored, so they cannot launder the NaN away).
        let mut a = Tensor::zeros(&[1, 8]);
        a.data_mut()[3] = f32::NAN;
        let b = Tensor::randn(&[8, 4], 1.0, 71);
        let got = matmul_packed(&a, &PackedB::pack(&b));
        assert!(got.data().iter().all(|v| v.is_nan()));
    }
}
