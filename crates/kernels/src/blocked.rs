//! Cache-blocked GEMM over panel-packed weights — the "executed" half of
//! Deep-Fusion's GEMM scheduling (Sec. III-B/III-C).
//!
//! Inference reuses the same weight matrix for every generated token, so the
//! layout work that makes a GEMM fast should be paid **once per model, not
//! once per call** (the same observation that motivates the paper's SBI-GeMM
//! weight-layout transform). [`PackedB`] stores a `[k, n]` weight repacked
//! into panels of [`PANEL`] output columns: panel `jp` holds rows
//! `0..k`, each row contributing `PANEL` consecutive weights, so the decode
//! GEMV streams the panel exactly once with unit stride. Output columns past
//! `n` are zero-padded inside the last panel and never stored.
//!
//! Against that layout the row kernel keeps one accumulator register lane
//! per output column for the whole `k` loop: each step broadcasts one
//! element of `a` and fuses it into four 8-wide accumulators (AVX2+FMA when
//! the CPU has it — detected once at runtime, `std::arch` only, no
//! dependencies — otherwise a portable 32-lane scalar loop the
//! auto-vectorizer handles). Four independent chains break the FMA latency
//! serialization a single running sum would pay, and the output row is
//! touched exactly once — no read-modify-write traffic like the naive
//! saxpy form in [`crate::ops::matmul`].
//!
//! Every kernel writes into a caller-provided output slice, so steady-state
//! decode can run entirely out of preallocated scratch (see
//! `dsi-model::fast`). The `matmul_*_into` variants fuse the common
//! epilogues (bias, bias+GeLU, bias+residual) into the same output pass —
//! the interior tensor of each Fig. 1(c) region never touches memory twice.

use crate::tensor::Tensor;

/// Output columns per packed panel: four 8-float SIMD registers.
pub const PANEL: usize = 32;

/// Unit-stride dot product with 4 independent accumulators.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (x, y) in (&mut ca).zip(&mut cb) {
        acc[0] += x[0] * y[0];
        acc[1] += x[1] * y[1];
        acc[2] += x[2] * y[2];
        acc[3] += x[3] * y[3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        s += x * y;
    }
    s
}


#[cfg(target_arch = "x86_64")]
mod avx {
    use super::PANEL;
    use std::arch::x86_64::*;

    /// One GEMV row over panel-packed weights: `out[0..n] = a[0..k] · B`.
    ///
    /// # Safety
    /// Caller must have verified AVX2+FMA support, and `panels` must hold
    /// `n.div_ceil(PANEL)` panels of `k * PANEL` floats ([`super::PackedB`]
    /// layout).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gemv(a: &[f32], k: usize, panels: &[f32], out: &mut [f32]) {
        let n = out.len();
        let n_panels = n.div_ceil(PANEL);
        // Contract checks: the SAFETY arguments below all reduce to these
        // two equalities (the `PackedB` layout invariant).
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(panels.len(), n_panels * k * PANEL);
        for jp in 0..n_panels {
            // SAFETY: `jp < n_panels` and `panels.len() == n_panels * k *
            // PANEL`, so the panel base stays in bounds (`add` lands at most
            // one-past-the-end when `k == 0`).
            let p = unsafe { panels.as_ptr().add(jp * k * PANEL) };
            // Four independent FMA chains: one register per 8 output
            // columns, alive across the whole k loop.
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut acc2 = _mm256_setzero_ps();
            let mut acc3 = _mm256_setzero_ps();
            for i in 0..k {
                // SAFETY: `i < k == a.len()` bounds the `get_unchecked`;
                // `i * PANEL + 24 + 8 <= k * PANEL` keeps all four 8-wide
                // loads inside panel `jp` of `panels`.
                unsafe {
                    let av = _mm256_set1_ps(*a.get_unchecked(i));
                    let row = p.add(i * PANEL);
                    acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(row), acc0);
                    acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(row.add(8)), acc1);
                    acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(row.add(16)), acc2);
                    acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(row.add(24)), acc3);
                }
            }
            let j0 = jp * PANEL;
            if j0 + PANEL <= n {
                // SAFETY: `j0 + PANEL <= n == out.len()`, so the four
                // stores cover exactly `out[j0..j0 + 32]`.
                unsafe {
                    let o = out.as_mut_ptr().add(j0);
                    _mm256_storeu_ps(o, acc0);
                    _mm256_storeu_ps(o.add(8), acc1);
                    _mm256_storeu_ps(o.add(16), acc2);
                    _mm256_storeu_ps(o.add(24), acc3);
                }
            } else {
                // Tail panel: spill the padded lanes, store only the real
                // columns.
                let mut tmp = [0.0f32; PANEL];
                // SAFETY: `tmp` is exactly `PANEL == 32` floats, matching
                // the four 8-wide stores at offsets 0/8/16/24.
                unsafe {
                    _mm256_storeu_ps(tmp.as_mut_ptr(), acc0);
                    _mm256_storeu_ps(tmp.as_mut_ptr().add(8), acc1);
                    _mm256_storeu_ps(tmp.as_mut_ptr().add(16), acc2);
                    _mm256_storeu_ps(tmp.as_mut_ptr().add(24), acc3);
                }
                out[j0..n].copy_from_slice(&tmp[..n - j0]);
            }
        }
    }

    /// `MR`-row register-blocked GEMM over one panel-packed operand:
    /// `out[0..MR, 0..n] = a[0..MR, 0..k] · B`, with `a` and `out` row-major
    /// and densely packed (`lda == k`, `ldc == n`).
    ///
    /// Each weight panel is streamed from memory **once per column group**
    /// and broadcast across all `MR` activation rows — the CPU execution of
    /// the paper's Sec. III-C3 M-row interleaving: for skinny decode GEMMs
    /// the weight stream dominates, so amortizing it across M rows multiplies
    /// arithmetic per byte by M. `NR` is the number of 8-wide column
    /// registers per pass; `MR * NR` accumulators plus `NR` weight registers
    /// plus one broadcast must fit the 16 YMM registers (MR=16 deliberately
    /// spills — the dispatcher measures whether that ever wins rather than
    /// assuming).
    ///
    /// Numerics: each output element accumulates over `k` sequentially in a
    /// single register lane, exactly like [`gemv`] — every `(MR, NR)`
    /// instantiation is bit-identical to the M=1 kernel, so microkernel
    /// choice is purely a performance decision.
    ///
    /// # Safety
    /// Caller must have verified AVX2+FMA support; `panels` must be in
    /// [`super::PackedB`] layout for `k` rows and `n.div_ceil(PANEL)` panels;
    /// `a.len() == MR * k`; `out.len() == MR * n`; `PANEL % (8 * NR) == 0`.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn gemm_block<const MR: usize, const NR: usize>(
        a: &[f32],
        k: usize,
        panels: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let n_panels = n.div_ceil(PANEL);
        debug_assert_eq!(a.len(), MR * k);
        debug_assert_eq!(out.len(), MR * n);
        debug_assert_eq!(panels.len(), n_panels * k * PANEL);
        debug_assert_eq!(PANEL % (8 * NR), 0);
        for jp in 0..n_panels {
            // SAFETY: `jp < n_panels` and `panels.len() == n_panels * k *
            // PANEL` keep the panel base in bounds (one-past-the-end only
            // when `k == 0`).
            let p = unsafe { panels.as_ptr().add(jp * k * PANEL) };
            // Column-group passes: the panel is re-read once per group, but
            // it stays L1/L2-resident between passes, so DRAM still streams
            // it once per block of MR rows.
            for cg in 0..PANEL / (8 * NR) {
                let base = cg * 8 * NR;
                let mut acc = [[_mm256_setzero_ps(); NR]; MR];
                for i in 0..k {
                    // SAFETY: `i < k` and `base + 8 * (NR - 1) + 8 <= PANEL`
                    // keep every 8-wide load inside panel `jp`; `r * k + i <
                    // MR * k == a.len()` bounds the broadcasts.
                    unsafe {
                        let row = p.add(i * PANEL + base);
                        let mut w = [_mm256_setzero_ps(); NR];
                        for (t, wt) in w.iter_mut().enumerate() {
                            *wt = _mm256_loadu_ps(row.add(8 * t));
                        }
                        for (r, accr) in acc.iter_mut().enumerate() {
                            let av = _mm256_set1_ps(*a.get_unchecked(r * k + i));
                            for (wt, at) in w.iter().zip(accr.iter_mut()) {
                                *at = _mm256_fmadd_ps(av, *wt, *at);
                            }
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    for (t, at) in accr.iter().enumerate() {
                        let j0 = jp * PANEL + base + 8 * t;
                        if j0 + 8 <= n {
                            // SAFETY: `r < MR` and `j0 + 8 <= n` keep the
                            // store inside row `r` of `out` (`MR * n` floats).
                            unsafe { _mm256_storeu_ps(out.as_mut_ptr().add(r * n + j0), *at) };
                        } else if j0 < n {
                            // Tail columns: spill the padded lanes, copy only
                            // the real ones.
                            let mut tmp = [0.0f32; 8];
                            // SAFETY: `tmp` is exactly 8 floats.
                            unsafe { _mm256_storeu_ps(tmp.as_mut_ptr(), *at) };
                            out[r * n + j0..r * n + n].copy_from_slice(&tmp[..n - j0]);
                        }
                    }
                }
            }
        }
    }

    /// Runtime-`mr` front end over the const-generic block kernels. `mr`
    /// must be one of the dispatch candidates (1, 2, 4, 8, 16).
    ///
    /// # Safety
    /// Same contract as [`gemm_block`] with `MR == mr`.
    pub unsafe fn gemm_rows(a: &[f32], mr: usize, k: usize, panels: &[f32], n: usize, out: &mut [f32]) {
        // SAFETY: forwarded caller contract; each arm fixes MR == mr and an
        // NR that divides PANEL/8, with MR*NR + NR + 1 <= 16 registers
        // (except the deliberately-spilling MR=16 candidate).
        unsafe {
            match mr {
                1 => gemv(a, k, panels, out),
                2 => gemm_block::<2, 4>(a, k, panels, n, out),
                4 => gemm_block::<4, 2>(a, k, panels, n, out),
                8 => gemm_block::<8, 1>(a, k, panels, n, out),
                16 => gemm_block::<16, 1>(a, k, panels, n, out),
                _ => unreachable!("unsupported microkernel row count {mr}"),
            }
        }
    }
}

/// Portable fallback row kernel over the same panel layout. The fixed-width
/// 32-lane accumulator loop is what the auto-vectorizer wants to see.
fn gemv_scalar(a: &[f32], k: usize, panels: &[f32], out: &mut [f32]) {
    let n = out.len();
    let n_panels = n.div_ceil(PANEL);
    debug_assert_eq!(a.len(), k);
    debug_assert_eq!(panels.len(), n_panels * k * PANEL);
    for jp in 0..n_panels {
        let panel = &panels[jp * k * PANEL..(jp + 1) * k * PANEL];
        let mut acc = [0.0f32; PANEL];
        for (i, rows) in panel.chunks_exact(PANEL).enumerate() {
            let av = a[i];
            for (lane, &w) in acc.iter_mut().zip(rows) {
                *lane += av * w;
            }
        }
        let j0 = jp * PANEL;
        let je = (j0 + PANEL).min(n);
        out[j0..je].copy_from_slice(&acc[..je - j0]);
    }
}

#[inline]
fn gemv(a: &[f32], k: usize, panels: &[f32], out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_fma() {
        // SAFETY: feature support verified by `avx2_fma`; the slice layout
        // contract is upheld by `PackedB` (the only producer of `panels`).
        unsafe { avx::gemv(a, k, panels, out) };
        return;
    }
    gemv_scalar(a, k, panels, out);
}

/// A weight matrix packed for repeated right-multiplication: logically
/// `[k, n]`, stored as `n.div_ceil(PANEL)` panels of `PANEL` consecutive
/// output columns (`data[jp * k * PANEL + i * PANEL + jr] == B[i, jp*PANEL +
/// jr]`, zero past column `n`).
#[derive(Debug, Clone)]
pub struct PackedB {
    k: usize,
    n: usize,
    data: Vec<f32>,
}

impl PackedB {
    fn with_writer(k: usize, n: usize, fill: impl Fn(usize, usize) -> f32) -> Self {
        let n_panels = n.div_ceil(PANEL);
        let mut data = vec![0.0f32; n_panels * k * PANEL];
        for jp in 0..n_panels {
            let panel = &mut data[jp * k * PANEL..(jp + 1) * k * PANEL];
            let width = (n - jp * PANEL).min(PANEL);
            for i in 0..k {
                for jr in 0..width {
                    panel[i * PANEL + jr] = fill(i, jp * PANEL + jr);
                }
            }
        }
        PackedB { k, n, data }
    }

    /// Pack a `[k, n]` matrix (one-time layout transform; amortized over
    /// every subsequent token).
    pub fn pack(b: &Tensor) -> Self {
        let (k, n) = (b.rows(), b.cols());
        let bd = b.data();
        Self::with_writer(k, n, |i, j| bd[i * n + j])
    }

    /// Pack a matrix already stored transposed (`[n, k]` row-major), e.g.
    /// the tied embedding used for the logits projection `x · wteᵀ`.
    pub fn from_pre_transposed(bt: &Tensor) -> Self {
        let (n, k) = (bt.rows(), bt.cols());
        let bd = bt.data();
        Self::with_writer(k, n, |i, j| bd[j * k + i])
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn n(&self) -> usize {
        self.n
    }
}

/// How the GEMM finishes each output element (fused epilogue).
#[derive(Clone, Copy)]
pub enum Epilogue<'a> {
    /// `out = a·B`
    None,
    /// `out = a·B + bias`
    Bias(&'a [f32]),
    /// `out = gelu(a·B + bias)`
    BiasGelu(&'a [f32]),
    /// `out = a·B + bias + residual` (residual is `[m, n]` like `out`)
    BiasAdd(&'a [f32], &'a [f32]),
}

/// Weight storage a fused region kernel can right-multiply by: panel-packed
/// FP32 ([`PackedB`]) or group-quantized INT8
/// ([`crate::quant::QuantizedPackedB`]).
///
/// `gemm` computes `out[m, n] = a[m, k] · B` with the epilogue fused into
/// the output pass; implementations walk the rows in microkernel blocks
/// chosen per `(remaining rows, dtype)` by [`crate::dispatch`]. Every
/// microkernel accumulates each output element in the same order, so the
/// block decomposition never changes results — batched decode stays
/// bit-identical to one-row-at-a-time decode.
pub trait PanelWeights {
    /// Input (reduction) dimension.
    fn k(&self) -> usize;
    /// Output dimension.
    fn n(&self) -> usize;
    /// Bytes streamed per full traversal of the packed operand (including
    /// scale metadata for quantized forms) — roofline accounting for the
    /// decode bench.
    fn storage_bytes(&self) -> usize;
    /// `out[m, n] = a[m, k] · B`, epilogue fused into the output pass.
    fn gemm(&self, a: &[f32], m: usize, out: &mut [f32], ep: Epilogue<'_>);
}

/// GeLU (tanh approximation), matching [`crate::ops::gelu`].
#[inline]
pub fn gelu_scalar(u: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * u * (1.0 + (C * (u + 0.044715 * u * u * u)).tanh())
}

/// Apply the fused epilogue to rows `r0..r0 + mr` of `out` while they are
/// still hot in L1 — one extra register pass, no second GEMM-sized
/// traversal.
#[inline]
pub(crate) fn apply_epilogue_rows(
    out: &mut [f32],
    n: usize,
    r0: usize,
    mr: usize,
    ep: Epilogue<'_>,
) {
    for i in r0..r0 + mr {
        let orow = &mut out[i * n..(i + 1) * n];
        match ep {
            Epilogue::None => {}
            Epilogue::Bias(bias) => {
                for (o, &bv) in orow.iter_mut().zip(bias) {
                    *o += bv;
                }
            }
            Epilogue::BiasGelu(bias) => crate::simd::bias_gelu_row(orow, bias),
            Epilogue::BiasAdd(bias, res) => {
                let rrow = &res[i * n..(i + 1) * n];
                for ((o, &bv), &rv) in orow.iter_mut().zip(bias).zip(rrow) {
                    *o += bv + rv;
                }
            }
        }
    }
}

/// Dispatch-driven row-blocked GEMM over FP32 panels. `force_mr` pins the
/// microkernel row count (used by [`crate::dispatch`] calibration, which
/// must not consult the table it is building); `None` consults the measured
/// table per remaining-row count.
pub(crate) fn gemm_f32_with(
    a: &[f32],
    m: usize,
    b: &PackedB,
    out: &mut [f32],
    ep: Epilogue<'_>,
    force_mr: Option<usize>,
) {
    let (k, n) = (b.k, b.n);
    assert_eq!(a.len(), m * k, "gemm: lhs size mismatch");
    assert_eq!(out.len(), m * n, "gemm: out size mismatch");
    #[cfg(target_arch = "x86_64")]
    let use_avx = crate::simd::avx2_fma();
    #[cfg(not(target_arch = "x86_64"))]
    let use_avx = false;
    let mut r = 0;
    while r < m {
        let rem = m - r;
        let mr = if use_avx {
            match force_mr {
                Some(c) => crate::dispatch::largest_candidate_le(c.min(rem)),
                None => crate::dispatch::mr_for(rem, crate::dispatch::GemmDtype::F32),
            }
        } else {
            1
        };
        let ablk = &a[r * k..(r + mr) * k];
        let oblk = &mut out[r * n..(r + mr) * n];
        if mr == 1 {
            gemv(ablk, k, &b.data, oblk);
        } else {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `use_avx` verified AVX2+FMA; slice layout upheld by
            // `PackedB` (the only producer of `b.data`), block sizes by the
            // asserts above.
            unsafe {
                avx::gemm_rows(ablk, mr, k, &b.data, n, oblk)
            };
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("mr > 1 requires AVX2");
        }
        apply_epilogue_rows(out, n, r, mr, ep);
        r += mr;
    }
}

impl PanelWeights for PackedB {
    fn k(&self) -> usize {
        self.k
    }
    fn n(&self) -> usize {
        self.n
    }
    fn storage_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
    fn gemm(&self, a: &[f32], m: usize, out: &mut [f32], ep: Epilogue<'_>) {
        gemm_f32_with(a, m, self, out, ep, None);
    }
}

/// `out[m,n] = a[m,k] · B`, into caller storage.
pub fn matmul_into<B: PanelWeights + ?Sized>(a: &[f32], m: usize, b: &B, out: &mut [f32]) {
    b.gemm(a, m, out, Epilogue::None);
}

/// `out = a·B + bias` in one output pass.
pub fn matmul_bias_into<B: PanelWeights + ?Sized>(
    a: &[f32],
    m: usize,
    b: &B,
    bias: &[f32],
    out: &mut [f32],
) {
    assert_eq!(bias.len(), b.n(), "bias length mismatch");
    b.gemm(a, m, out, Epilogue::Bias(bias));
}

/// `out = gelu(a·B + bias)` in one output pass (Fig. 1(c) region 4 tail).
pub fn matmul_bias_gelu_into<B: PanelWeights + ?Sized>(
    a: &[f32],
    m: usize,
    b: &B,
    bias: &[f32],
    out: &mut [f32],
) {
    assert_eq!(bias.len(), b.n(), "bias length mismatch");
    b.gemm(a, m, out, Epilogue::BiasGelu(bias));
}

/// `out = a·B + bias + residual` in one output pass (Fig. 1(c) regions 3
/// and 5 tails: projection GEMM, bias add, and residual connection fused).
pub fn matmul_bias_add_into<B: PanelWeights + ?Sized>(
    a: &[f32],
    m: usize,
    b: &B,
    bias: &[f32],
    residual: &[f32],
    out: &mut [f32],
) {
    assert_eq!(bias.len(), b.n(), "bias length mismatch");
    assert_eq!(residual.len(), m * b.n(), "residual size mismatch");
    b.gemm(a, m, out, Epilogue::BiasAdd(bias, residual));
}

/// Allocating convenience wrapper: `a [m,k] · B -> [m,n]`.
pub fn matmul_packed<B: PanelWeights + ?Sized>(a: &Tensor, b: &B) -> Tensor {
    let m = a.rows();
    let mut out = Tensor::zeros(&[m, b.n()]);
    matmul_into(a.data(), m, b, out.data_mut());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn packed_matmul_matches_naive() {
        // Shapes straddle panel boundaries: n < PANEL, n == PANEL, ragged
        // tails, and the real layer shapes.
        for (m, k, n) in [
            (1, 7, 5),
            (3, 16, 9),
            (4, 33, 12),
            (1, 16, 32),
            (2, 10, 37),
            (1, 64, 101),
            (2, 64, 192),
        ] {
            let a = Tensor::randn(&[m, k], 1.0, 11);
            let b = Tensor::randn(&[k, n], 1.0, 12);
            let want = ops::matmul(&a, &b);
            let got = matmul_packed(&a, &PackedB::pack(&b));
            assert!(
                got.allclose(&want, 1e-4),
                "({m},{k},{n}) diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn scalar_fallback_matches_dispatch() {
        // Whatever the runtime dispatch picks must agree with the portable
        // kernel on identical inputs.
        let a = Tensor::randn(&[2, 48], 1.0, 15);
        let b = Tensor::randn(&[48, 77], 1.0, 16);
        let pb = PackedB::pack(&b);
        let mut got = vec![0.0f32; 2 * 77];
        matmul_into(a.data(), 2, &pb, &mut got);
        let mut want = vec![0.0f32; 2 * 77];
        for i in 0..2 {
            gemv_scalar(&a.data()[i * 48..(i + 1) * 48], 48, &pb.data, &mut want[i * 77..(i + 1) * 77]);
        }
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-5, "{g} vs {w}");
        }
    }

    #[test]
    fn pre_transposed_matches_matmul_transb() {
        let a = Tensor::randn(&[3, 16], 1.0, 21);
        let bt = Tensor::randn(&[9, 16], 1.0, 22); // stored [n, k]
        let want = ops::matmul_transb(&a, &bt);
        let mut got = Tensor::zeros(&[3, 9]);
        matmul_into(a.data(), 3, &PackedB::from_pre_transposed(&bt), got.data_mut());
        assert!(got.allclose(&want, 1e-4), "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn pre_transposed_pack_matches_pack() {
        let b = Tensor::randn(&[10, 6], 1.0, 31);
        let mut bt = Tensor::zeros(&[6, 10]);
        for i in 0..10 {
            for j in 0..6 {
                bt.row_mut(j)[i] = b.row(i)[j];
            }
        }
        let a = Tensor::randn(&[2, 10], 1.0, 32);
        let c1 = matmul_packed(&a, &PackedB::pack(&b));
        let c2 = matmul_packed(&a, &PackedB::from_pre_transposed(&bt));
        assert!(c1.allclose(&c2, 0.0));
    }

    #[test]
    fn bias_epilogue_matches_unfused() {
        let a = Tensor::randn(&[3, 20], 1.0, 41);
        let b = Tensor::randn(&[20, 11], 1.0, 42);
        let bias = Tensor::randn(&[11], 1.0, 43);
        let mut want = ops::matmul(&a, &b);
        ops::add_bias(&mut want, &bias);
        let mut got = Tensor::zeros(&[3, 11]);
        matmul_bias_into(a.data(), 3, &PackedB::pack(&b), bias.data(), got.data_mut());
        assert!(got.allclose(&want, 1e-4));
    }

    #[test]
    fn bias_gelu_epilogue_matches_unfused() {
        let a = Tensor::randn(&[2, 12], 1.0, 51);
        let b = Tensor::randn(&[12, 8], 1.0, 52);
        let bias = Tensor::randn(&[8], 1.0, 53);
        let mut want = ops::matmul(&a, &b);
        ops::add_bias(&mut want, &bias);
        ops::gelu(&mut want);
        let mut got = Tensor::zeros(&[2, 8]);
        matmul_bias_gelu_into(a.data(), 2, &PackedB::pack(&b), bias.data(), got.data_mut());
        assert!(got.allclose(&want, 1e-5));
    }

    #[test]
    fn bias_add_epilogue_matches_unfused() {
        let a = Tensor::randn(&[2, 12], 1.0, 61);
        let b = Tensor::randn(&[12, 12], 1.0, 62);
        let bias = Tensor::randn(&[12], 1.0, 63);
        let res = Tensor::randn(&[2, 12], 1.0, 64);
        let mut want = ops::matmul(&a, &b);
        ops::add_bias(&mut want, &bias);
        ops::add_inplace(&mut want, &res);
        let mut got = Tensor::zeros(&[2, 12]);
        matmul_bias_add_into(
            a.data(),
            2,
            &PackedB::pack(&b),
            bias.data(),
            res.data(),
            got.data_mut(),
        );
        assert!(got.allclose(&want, 1e-4));
    }

    #[test]
    fn mrow_blocks_bit_identical_to_per_row() {
        // Every forced microkernel (and whatever the measured dispatch
        // picks) must produce bit-identical output to the M=1 row kernel:
        // per output element the k-reduction runs sequentially in one lane
        // regardless of the block shape, so dispatch is perf-only.
        for (m, k, n) in [(2, 48, 77), (4, 64, 192), (8, 33, 12), (16, 64, 101), (5, 16, 32), (11, 20, 37)] {
            let a = Tensor::randn(&[m, k], 1.0, 81);
            let b = Tensor::randn(&[k, n], 1.0, 82);
            let pb = PackedB::pack(&b);
            let mut want = vec![0.0f32; m * n];
            for i in 0..m {
                gemv(&a.data()[i * k..(i + 1) * k], k, &pb.data, &mut want[i * n..(i + 1) * n]);
            }
            for force in [1, 2, 4, 8, 16] {
                let mut got = vec![0.0f32; m * n];
                gemm_f32_with(a.data(), m, &pb, &mut got, Epilogue::None, Some(force));
                assert_eq!(got, want, "m={m} k={k} n={n} force={force}");
            }
            let mut got = vec![0.0f32; m * n];
            gemm_f32_with(a.data(), m, &pb, &mut got, Epilogue::None, None);
            assert_eq!(got, want, "m={m} k={k} n={n} dispatch");
        }
    }

    #[test]
    fn nan_propagates_through_packed_gemm() {
        // The packed path must keep IEEE semantics: a NaN anywhere in the
        // reduction poisons every real output column (the zero-padded tail
        // lanes are never stored, so they cannot launder the NaN away).
        let mut a = Tensor::zeros(&[1, 8]);
        a.data_mut()[3] = f32::NAN;
        let b = Tensor::randn(&[8, 4], 1.0, 71);
        let got = matmul_packed(&a, &PackedB::pack(&b));
        assert!(got.data().iter().all(|v| v.is_nan()));
    }
}
