//! Kernel cost model: rooflines plus calibrated efficiency curves.
//!
//! Sec. III frames small-batch inference as a memory-bandwidth problem
//! ("inference latency of a model is lower bounded by the time it takes to
//! load all the model parameters") and large-batch inference as a compute
//! problem. Accordingly a kernel's execution time is
//!
//! ```text
//! t = max( flops / (peak_flops · compute_eff),
//!          bytes / (mem_bw    · bw_eff) )        (+ launch overhead)
//! ```
//!
//! The efficiency curves in [`gemm_policy`] are the calibration layer of the
//! reproduction. They encode the paper's qualitative statements — "neither
//! cuBLAS nor CUTLASS GeMM libraries are well tuned for extremely small
//! batch sizes" (Sec. III-A), SBI-GeMM "achieving maximum memory bandwidth
//! utilization" (Sec. III-C), CUTLASS INT8 "tuned for different batch sizes"
//! (Sec. III-D) — as %-of-peak numbers chosen so the end-to-end harness
//! lands in the speedup bands of Fig. 6/10 (≈1.5× FP16, ≈1.9× INT8).

use dsi_sim::hw::{DType, GpuSpec};
use serde::Serialize;

/// Resource usage of one kernel (or fused region).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct KernelCost {
    /// Floating-point (or INT8 MAC) operations.
    pub flops: f64,
    /// Model-weight bytes read from HBM. Never elided by fusion: weights are
    /// resident in global memory.
    pub weight_bytes: f64,
    /// Activation bytes read from HBM. Fusion elides interior reads.
    pub act_read: f64,
    /// Activation bytes written to HBM. Fusion elides interior writes.
    pub act_write: f64,
}

impl KernelCost {
    pub fn total_bytes(&self) -> f64 {
        self.weight_bytes + self.act_read + self.act_write
    }

    pub fn add(&mut self, other: &KernelCost) {
        self.flops += other.flops;
        self.weight_bytes += other.weight_bytes;
        self.act_read += other.act_read;
        self.act_write += other.act_write;
    }
}

/// Which GEMM implementation executes a (fused) GEMM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum GemmImpl {
    /// Vendor BLAS, tuned for large square problems (the training-oriented
    /// default the baselines use).
    CuBlas,
    /// The paper's custom small-batch-inference GEMM (Sec. III-C).
    Sbi,
    /// CUTLASS INT8 with fused quantize/dequantize epilogues (Sec. III-D).
    CutlassInt8,
}

/// Per-run execution configuration.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ExecConfig {
    /// Weight precision for GEMMs.
    pub weight_dtype: DType,
    /// Activation precision (bandwidth of non-weight traffic).
    pub act_dtype: DType,
    /// CUDA-graph capture (Sec. III-D): per-kernel launch overhead collapses
    /// to a single graph-replay overhead per forward pass.
    pub cuda_graph: bool,
}

impl ExecConfig {
    pub fn fp16(cuda_graph: bool) -> Self {
        ExecConfig {
            weight_dtype: DType::Fp16,
            act_dtype: DType::Fp16,
            cuda_graph,
        }
    }

    pub fn int8(cuda_graph: bool) -> Self {
        ExecConfig {
            weight_dtype: DType::Int8,
            act_dtype: DType::Fp16,
            cuda_graph,
        }
    }

    pub fn fp32() -> Self {
        ExecConfig {
            weight_dtype: DType::Fp32,
            act_dtype: DType::Fp32,
            cuda_graph: false,
        }
    }
}

/// Piecewise-linear interpolation over `(x, y)` points sorted by `x`;
/// clamps outside the range.
fn interp(points: &[(f64, f64)], x: f64) -> f64 {
    debug_assert!(points.windows(2).all(|w| w[0].0 < w[1].0));
    if x <= points[0].0 {
        return points[0].1;
    }
    for w in points.windows(2) {
        if x <= w[1].0 {
            let t = (x - w[0].0) / (w[1].0 - w[0].0);
            return w[0].1 + t * (w[1].1 - w[0].1);
        }
    }
    points.last().unwrap().1
}

/// Calibrated GEMM efficiency curves, keyed by the number of activation rows
/// `m` (tokens in flight) — the "batch" of Sec. III.
pub mod gemm_policy {
    use super::*;

    /// Fraction of peak HBM bandwidth a GEMM's weight read achieves.
    pub fn bw_efficiency(imp: GemmImpl, m: f64) -> f64 {
        match imp {
            // "cuBLAS ... cannot achieve good memory-bandwidth utilization"
            // for skinny problems (Sec. III-A).
            GemmImpl::CuBlas => interp(
                &[
                    (1.0, 0.63),
                    (4.0, 0.65),
                    (8.0, 0.67),
                    (16.0, 0.71),
                    (32.0, 0.75),
                    (128.0, 0.82),
                    (512.0, 0.86),
                ],
                m,
            ),
            // SBI-GeMM reads weights at near peak via the full-cache-line
            // layout; loses a little ground as m grows (register pressure),
            // which is why DeepSpeed falls back to cuBLAS at large batch.
            GemmImpl::Sbi => interp(
                &[(1.0, 0.92), (8.0, 0.91), (16.0, 0.88), (32.0, 0.82), (64.0, 0.74)],
                m,
            ),
            // INT8 halves the bytes but the fused quantize/dequantize
            // epilogues cost bandwidth headroom, so utilization sits well
            // below SBI's — this is why DS-INT8 lands at ~1.9x over the FP16
            // baseline rather than a clean 2x on top of DS-FP16 (Fig. 6).
            GemmImpl::CutlassInt8 => interp(
                &[(1.0, 0.60), (8.0, 0.59), (16.0, 0.58), (32.0, 0.56), (512.0, 0.52)],
                m,
            ),
        }
    }

    /// Fraction of peak math throughput achieved once compute-bound.
    pub fn compute_efficiency(imp: GemmImpl, m: f64) -> f64 {
        match imp {
            GemmImpl::CuBlas => interp(
                &[
                    (1.0, 0.02),
                    (16.0, 0.10),
                    (32.0, 0.18),
                    (64.0, 0.25),
                    (128.0, 0.33),
                    (256.0, 0.45),
                    (1024.0, 0.60),
                    (4096.0, 0.70),
                    (16384.0, 0.75),
                    (65536.0, 0.78),
                ],
                m,
            ),
            // SBI is a bandwidth kernel; its math pipeline saturates early.
            GemmImpl::Sbi => interp(&[(1.0, 0.02), (32.0, 0.20), (64.0, 0.30)], m),
            GemmImpl::CutlassInt8 => interp(
                &[
                    (1.0, 0.015),
                    (32.0, 0.13),
                    (128.0, 0.25),
                    (256.0, 0.36),
                    (1024.0, 0.50),
                    (16384.0, 0.62),
                    (65536.0, 0.66),
                ],
                m,
            ),
        }
    }

    /// *End-to-end* efficiency of a whole transformer stack (GEMMs plus
    /// attention, normalization, and framework glue folded in) as a function
    /// of total tokens in flight. Saturates far more slowly than a lone GEMM
    /// and plateaus near the fractions of peak the paper reports for its
    /// throughput runs: 54% on A6000 (84/158.4 TFLOPS, Sec. VII-D2), 53% on
    /// V100 (67/125, Fig. 9c). Used by the ZeRO-Inference engine, whose
    /// compute term covers the full layer.
    pub fn end_to_end_efficiency(rows: f64, hidden: usize) -> f64 {
        let m = rows * (hidden as f64 / 12288.0).sqrt();
        interp(
            &[
                (1.0, 0.02),
                (16.0, 0.10),
                (64.0, 0.25),
                (256.0, 0.35),
                (1024.0, 0.40),
                (4096.0, 0.42),
                (16384.0, 0.50),
                (65536.0, 0.575),
                (262144.0, 0.60),
            ],
            m,
        )
    }

    /// Compute efficiency adjusted for GEMM width: a token row of a
    /// hidden=20480 model carries more work per thread-block than one of a
    /// hidden=768 model, so utilization saturates at fewer rows. Rows are
    /// rescaled by `sqrt(hidden / 12288)` (GPT-3's width as the reference)
    /// before the lookup — sub-linear because only one of the two GEMM tile
    /// dimensions grows with the hidden size.
    pub fn compute_efficiency_scaled(imp: GemmImpl, rows: f64, hidden: usize) -> f64 {
        compute_efficiency(imp, rows * (hidden as f64 / 12288.0).sqrt())
    }

    /// The GEMM implementation DeepSpeed Inference selects for `m` activation
    /// rows at the given weight precision (Sec. III-D): SBI below the
    /// crossover, cuBLAS/CUTLASS above.
    pub fn deepspeed_select(m: usize, weight_dtype: DType) -> GemmImpl {
        match weight_dtype {
            DType::Int8 => GemmImpl::CutlassInt8,
            _ if m <= 32 => GemmImpl::Sbi,
            _ => GemmImpl::CuBlas,
        }
    }
}

/// Bandwidth efficiency of non-GEMM kernels.
pub mod mem_policy {
    /// Element-wise / reduction kernels stream well.
    pub const ELEMENTWISE_BW_EFF: f64 = 0.78;
    /// Attention does strided KV reads; worse locality. The Deep-Fusion
    /// attention region (transpose fused with the score/context kernels,
    /// Fig. 1c region 2) keeps the layout coalesced.
    pub const ATTENTION_BW_EFF: f64 = 0.60;
    /// FasterTransformer/E.T.-class fused attention without the layout
    /// co-design.
    pub const ATTENTION_BW_EFF_BASELINE: f64 = 0.45;
    /// Eager (decomposed) attention with materialized intermediates.
    pub const ATTENTION_BW_EFF_EAGER: f64 = 0.40;
    /// Attention math efficiency (small GEMMs per head).
    pub const ATTENTION_COMPUTE_EFF: f64 = 0.25;
    /// Data-layout transforms (transposes).
    pub const LAYOUT_BW_EFF: f64 = 0.70;
}

/// Execution-time roofline for one kernel, excluding launch overhead.
pub fn exec_time(gpu: &GpuSpec, cost: &KernelCost, dtype: DType, compute_eff: f64, bw_eff: f64) -> f64 {
    let t_compute = if cost.flops > 0.0 {
        cost.flops / (gpu.peak_flops(dtype) * compute_eff.max(1e-6))
    } else {
        0.0
    };
    let t_mem = cost.total_bytes() / (gpu.mem_bw * bw_eff.max(1e-6));
    t_compute.max(t_mem)
}

/// Launch-overhead time for `launches` kernels under an [`ExecConfig`]:
/// CUDA graphs replace per-kernel overhead by a single replay cost that the
/// caller adds once per forward pass via [`graph_replay_overhead`].
pub fn launch_time(gpu: &GpuSpec, launches: usize, cfg: &ExecConfig) -> f64 {
    if cfg.cuda_graph {
        0.0
    } else {
        launches as f64 * gpu.kernel_launch_overhead
    }
}

/// One-time cost of replaying a captured CUDA graph for a whole forward
/// pass (Sec. III-D); roughly the cost of a handful of launches.
pub fn graph_replay_overhead(gpu: &GpuSpec) -> f64 {
    4.0 * gpu.kernel_launch_overhead
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interp_clamps_and_interpolates() {
        let pts = [(1.0, 0.0), (3.0, 1.0)];
        assert_eq!(interp(&pts, 0.5), 0.0);
        assert_eq!(interp(&pts, 2.0), 0.5);
        assert_eq!(interp(&pts, 10.0), 1.0);
    }

    #[test]
    fn sbi_beats_cublas_bandwidth_at_small_batch() {
        for m in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
            assert!(
                gemm_policy::bw_efficiency(GemmImpl::Sbi, m)
                    > gemm_policy::bw_efficiency(GemmImpl::CuBlas, m),
                "SBI should win at m={m}"
            );
        }
    }

    #[test]
    fn cublas_bandwidth_recovers_at_large_batch() {
        assert!(
            gemm_policy::bw_efficiency(GemmImpl::CuBlas, 512.0)
                > gemm_policy::bw_efficiency(GemmImpl::Sbi, 64.0)
        );
    }

    #[test]
    fn deepspeed_gemm_selection_crossover() {
        assert_eq!(gemm_policy::deepspeed_select(1, DType::Fp16), GemmImpl::Sbi);
        assert_eq!(gemm_policy::deepspeed_select(32, DType::Fp16), GemmImpl::Sbi);
        assert_eq!(gemm_policy::deepspeed_select(64, DType::Fp16), GemmImpl::CuBlas);
        assert_eq!(
            gemm_policy::deepspeed_select(1, DType::Int8),
            GemmImpl::CutlassInt8
        );
    }

    #[test]
    fn small_batch_gemm_is_bandwidth_bound() {
        // Batch-1 GEMM on an A100: time must equal the memory roofline.
        let gpu = GpuSpec::a100_40gb();
        let (k, n) = (4096.0, 12288.0);
        let cost = KernelCost {
            flops: 2.0 * k * n,
            weight_bytes: k * n * 2.0,
            act_read: k * 2.0,
            act_write: n * 2.0,
        };
        let t = exec_time(&gpu, &cost, DType::Fp16, 0.02, 0.9);
        let t_mem = cost.total_bytes() / (gpu.mem_bw * 0.9);
        assert!((t - t_mem).abs() / t_mem < 1e-9);
    }

    #[test]
    fn large_batch_gemm_is_compute_bound() {
        let gpu = GpuSpec::a100_40gb();
        let m = 8192.0;
        let (k, n) = (4096.0, 12288.0);
        let cost = KernelCost {
            flops: 2.0 * m * k * n,
            weight_bytes: k * n * 2.0,
            act_read: m * k * 2.0,
            act_write: m * n * 2.0,
        };
        let t = exec_time(&gpu, &cost, DType::Fp16, 0.66, 0.85);
        let t_comp = cost.flops / (gpu.peak_flops(DType::Fp16) * 0.66);
        assert!((t - t_comp).abs() / t_comp < 1e-9);
    }

    #[test]
    fn cuda_graph_eliminates_launch_overhead() {
        let gpu = GpuSpec::a100_40gb();
        let no_graph = launch_time(&gpu, 100, &ExecConfig::fp16(false));
        let graph = launch_time(&gpu, 100, &ExecConfig::fp16(true));
        assert!(no_graph > 0.0);
        assert_eq!(graph, 0.0);
        assert!(graph_replay_overhead(&gpu) < no_graph);
    }

    #[test]
    fn int8_weights_halve_bytes() {
        // The INT8 speedup at small batch comes purely from byte reduction.
        let gpu = GpuSpec::a100_40gb();
        let (k, n) = (4096.0, 12288.0);
        let mk_cost = |wbytes: f64| KernelCost {
            flops: 2.0 * k * n,
            weight_bytes: wbytes,
            act_read: k * 2.0,
            act_write: n * 2.0,
        };
        let t16 = exec_time(&gpu, &mk_cost(k * n * 2.0), DType::Fp16, 0.02, 0.9);
        let t8 = exec_time(&gpu, &mk_cost(k * n * 1.0), DType::Int8, 0.015, 0.86);
        let speedup = t16 / t8;
        assert!(speedup > 1.7 && speedup < 2.2, "speedup {speedup}");
    }
}
