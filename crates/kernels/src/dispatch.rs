//! Measured microkernel dispatch for the executed fast path — the CPU
//! analog of the paper's batch-size-dependent GEMM switch (SBI-GeMM below
//! the crossover batch, cuBLAS above it, Sec. III-C; GDEV-AI's point that
//! the crossover must be *measured*, not assumed).
//!
//! Each `(row count, dtype)` pair maps to a microkernel row-block `MR`.
//! The mapping is calibrated once per process at first use ("pack time"):
//! every candidate `MR` is timed on a synthetic decode-shaped GEMM
//! (`k = n = 256`, the skinny regime where the weight stream dominates) and
//! the winner recorded per batch width. A static fallback seeded by the
//! SBI interleave hint ([`crate::sbi::cpu_microkernel_rows`]) covers
//! non-AVX builds and degenerate clocks.
//!
//! Correctness never depends on the table: every candidate accumulates each
//! output element in the same order (see `blocked::gemm_block`), so dispatch
//! is purely a performance decision.

use crate::blocked::{Epilogue, PackedB};
use crate::quant::{QuantizedMatrix, QuantizedPackedB};
use crate::tensor::Tensor;
use std::sync::OnceLock;
use std::time::Instant;

/// Element type of the packed GEMM operand being dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmDtype {
    F32,
    Int8,
}

/// Microkernel row counts, largest first. 16 deliberately exceeds the
/// 16-YMM register budget (its accumulators spill); it is included so the
/// measurement — not an assumption — decides whether it ever wins.
pub const MR_CANDIDATES: [usize; 5] = [16, 8, 4, 2, 1];

/// Largest batch width with its own table entry; wider GEMMs reuse it.
pub const MAX_M: usize = 16;

/// Largest candidate `MR` that is `<= m` (and at least 1).
pub fn largest_candidate_le(m: usize) -> usize {
    for &c in &MR_CANDIDATES {
        if c <= m {
            return c;
        }
    }
    1
}

/// The calibrated `(m, dtype) -> MR` table.
#[derive(Debug, Clone)]
pub struct DispatchTable {
    /// Entry `m` holds the microkernel row count for an `m`-row GEMM
    /// (index 0 unused).
    pub f32_mr: [usize; MAX_M + 1],
    pub int8_mr: [usize; MAX_M + 1],
    /// False when the static fallback was used (no AVX2, or a degenerate
    /// clock made the timings meaningless).
    pub measured: bool,
}

impl DispatchTable {
    /// The microkernel row count for the next block of an `m`-row GEMM.
    /// Guaranteed to be a candidate `<= m`.
    pub fn mr_for(&self, m: usize, dtype: GemmDtype) -> usize {
        let entry = match dtype {
            GemmDtype::F32 => self.f32_mr[m.min(MAX_M)],
            GemmDtype::Int8 => self.int8_mr[m.min(MAX_M)],
        };
        largest_candidate_le(entry.min(m))
    }
}

/// Static fallback: the paper-motivated interleave hint caps growth, and a
/// power-of-two block never overshoots the remaining rows.
fn fallback_table(dtype: GemmDtype) -> [usize; MAX_M + 1] {
    let hint = crate::sbi::cpu_microkernel_rows(match dtype {
        GemmDtype::F32 => 4,
        GemmDtype::Int8 => 1,
    });
    let cap = (hint * 2).min(8);
    let mut t = [1usize; MAX_M + 1];
    for (m, e) in t.iter_mut().enumerate().skip(1) {
        *e = largest_candidate_le(m.min(cap));
    }
    t
}

/// Deterministic pseudo-random fill for the calibration operands (no RNG
/// dependency in this crate; values only need to be non-degenerate).
fn lcg_fill(len: usize, seed: u32) -> Vec<f32> {
    let mut s = seed.wrapping_mul(2654435761).wrapping_add(12345);
    (0..len)
        .map(|_| {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            ((s >> 9) as f32 / (1 << 23) as f32) - 1.0
        })
        .collect()
}

/// Time one forced-`mr` GEMM configuration; returns the best-of-reps
/// duration in nanoseconds for `iters` back-to-back calls.
fn time_config(mut run: impl FnMut(), iters: usize) -> u128 {
    run(); // warm: page in operands, settle the branch predictors
    let mut best = u128::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            run();
        }
        best = best.min(t0.elapsed().as_nanos());
    }
    best
}

/// Batch widths actually timed; intermediate widths inherit the nearest
/// measured width below them.
const PROBE_M: [usize; 5] = [1, 2, 4, 8, 16];

fn calibrate() -> DispatchTable {
    let mut table = DispatchTable {
        f32_mr: fallback_table(GemmDtype::F32),
        int8_mr: fallback_table(GemmDtype::Int8),
        measured: false,
    };
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_fma() {
        // Decode-shaped operands: skinny activations against a square-ish
        // weight big enough that the weight stream dominates.
        let (k, n) = (256usize, 256usize);
        let b = Tensor::from_vec(&[k, n], lcg_fill(k * n, 7));
        let pb = PackedB::pack(&b);
        let qb = QuantizedPackedB::from_matrix(&QuantizedMatrix::quantize(&b, 64));
        let a = lcg_fill(MAX_M * k, 11);
        let mut out = vec![0.0f32; MAX_M * n];
        let mut ok = true;
        for dtype in [GemmDtype::F32, GemmDtype::Int8] {
            let mut chosen = [0usize; MAX_M + 1];
            for &m in &PROBE_M {
                let iters = (32 / m).max(2);
                let mut best = (u128::MAX, 1usize);
                for &cand in &MR_CANDIDATES {
                    if cand > m {
                        continue;
                    }
                    let ns = match dtype {
                        GemmDtype::F32 => time_config(
                            || {
                                crate::blocked::gemm_f32_with(
                                    &a[..m * k],
                                    m,
                                    &pb,
                                    &mut out[..m * n],
                                    Epilogue::None,
                                    Some(cand),
                                )
                            },
                            iters,
                        ),
                        GemmDtype::Int8 => time_config(
                            || {
                                crate::quant::gemm_int8_with(
                                    &a[..m * k],
                                    m,
                                    &qb,
                                    &mut out[..m * n],
                                    Epilogue::None,
                                    Some(cand),
                                )
                            },
                            iters,
                        ),
                    };
                    if ns == 0 {
                        ok = false; // degenerate clock: keep the fallback
                    }
                    if ns < best.0 {
                        best = (ns, cand);
                    }
                }
                chosen[m] = best.1;
            }
            // Fill unprobed widths from the nearest probed width below.
            let mut last = 1;
            for (m, e) in chosen.iter_mut().enumerate().skip(1) {
                if PROBE_M.contains(&m) {
                    last = *e;
                } else {
                    *e = largest_candidate_le(last.min(m));
                }
            }
            match dtype {
                GemmDtype::F32 => table.f32_mr = chosen,
                GemmDtype::Int8 => table.int8_mr = chosen,
            }
        }
        if ok {
            table.measured = true;
        }
        // `out` participated in every timing; keep the compiler honest.
        std::hint::black_box(&out);
    }
    table
}

static TABLE: OnceLock<DispatchTable> = OnceLock::new();

/// The process-wide calibrated table (built on first use).
pub fn table() -> &'static DispatchTable {
    TABLE.get_or_init(calibrate)
}

/// The microkernel row count for the next block of an `m`-row GEMM.
pub fn mr_for(m: usize, dtype: GemmDtype) -> usize {
    table().mr_for(m, dtype)
}

/// Human/JSON-friendly view of the table for the decode bench.
pub fn summary() -> Vec<(usize, usize, usize)> {
    let t = table();
    PROBE_M.iter().map(|&m| (m, t.f32_mr[m], t.int8_mr[m])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_entries_are_valid_candidates() {
        let t = table();
        for m in 1..=MAX_M {
            for dtype in [GemmDtype::F32, GemmDtype::Int8] {
                let mr = t.mr_for(m, dtype);
                assert!(MR_CANDIDATES.contains(&mr), "m={m} mr={mr}");
                assert!(mr <= m, "m={m} mr={mr}");
            }
        }
        // Wider-than-table GEMMs reuse the widest entry.
        assert_eq!(t.mr_for(1000, GemmDtype::F32), t.mr_for(MAX_M, GemmDtype::F32));
    }

    #[test]
    fn fallback_is_monotone_and_capped() {
        for dtype in [GemmDtype::F32, GemmDtype::Int8] {
            let t = fallback_table(dtype);
            for m in 1..MAX_M {
                assert!(t[m] <= t[m + 1], "fallback not monotone at {m}");
                assert!(t[m] <= m);
            }
        }
    }

    #[test]
    fn largest_candidate_le_basics() {
        assert_eq!(largest_candidate_le(0), 1);
        assert_eq!(largest_candidate_le(1), 1);
        assert_eq!(largest_candidate_le(3), 2);
        assert_eq!(largest_candidate_le(7), 4);
        assert_eq!(largest_candidate_le(15), 8);
        assert_eq!(largest_candidate_le(100), 16);
    }
}
