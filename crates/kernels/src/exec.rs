//! Functional execution of the kernel IR — including *tiled* execution of
//! fusion regions, which turns Deep-Fusion's legality rule into a checkable
//! numerical property.
//!
//! Sec. III-B's argument is: a region may be fused iff it can be tiled along
//! an axis with no cross-tile data dependencies; then each tile runs
//! independently (in one thread block, intermediates in registers). This
//! module interprets the [`crate::graph::OpDesc`] list over real tensors two
//! ways — whole-tensor, and split into independent token tiles per fused
//! region — and the test suite demonstrates:
//!
//! * for legal plans, tiled execution is *exactly* whole-tensor execution;
//! * for an illegal fusion (tiling attention along tokens of the same
//!   sequence), tiled execution visibly diverges — i.e. the legality check
//!   in [`crate::fusion`] is load-bearing, not decorative.

use crate::fusion::FusionPlan;
use crate::ops;
use crate::tensor::Tensor;

/// Concrete weights backing one transformer layer's op list (a thin view of
/// `dsi-model`'s layer weights, kept here to avoid a dependency cycle).
#[derive(Debug, Clone)]
pub struct LayerTensors {
    pub ln1_g: Tensor,
    pub ln1_b: Tensor,
    pub w_qkv: Tensor,
    pub b_qkv: Tensor,
    pub w_o: Tensor,
    pub b_o: Tensor,
    pub ln2_g: Tensor,
    pub ln2_b: Tensor,
    pub w_ff1: Tensor,
    pub b_ff1: Tensor,
    pub w_ff2: Tensor,
    pub b_ff2: Tensor,
    pub heads: usize,
}

impl LayerTensors {
    /// Deterministic random weights for a `hidden`-wide layer.
    pub fn random(hidden: usize, heads: usize, seed: u64) -> Self {
        let h = hidden;
        let s = 1.0 / (h as f32).sqrt();
        LayerTensors {
            ln1_g: Tensor::from_vec(&[h], vec![1.0; h]),
            ln1_b: Tensor::zeros(&[h]),
            w_qkv: Tensor::randn(&[h, 3 * h], s, seed + 1),
            b_qkv: Tensor::randn(&[3 * h], 0.01, seed + 2),
            w_o: Tensor::randn(&[h, h], s, seed + 3),
            b_o: Tensor::randn(&[h], 0.01, seed + 4),
            ln2_g: Tensor::from_vec(&[h], vec![1.0; h]),
            ln2_b: Tensor::zeros(&[h]),
            w_ff1: Tensor::randn(&[h, 4 * h], s, seed + 5),
            b_ff1: Tensor::randn(&[4 * h], 0.01, seed + 6),
            w_ff2: Tensor::randn(&[4 * h, h], s * 0.5, seed + 7),
            b_ff2: Tensor::randn(&[h], 0.01, seed + 8),
        heads,
        }
    }
}

/// Execution state flowing through the canonical 12-op layer dataflow (see
/// [`crate::graph::transformer_layer_ops`]): the current activation plus the
/// residual saved at block boundaries.
#[derive(Debug, Clone)]
struct Flow {
    x: Tensor,
    residual: Tensor,
}

/// Execute one op of the canonical layer list, by index. `full_x`/`kv` give
/// attention its whole-sequence context (what makes token-tiling attention
/// illegal — it reaches outside the tile).
fn exec_op(idx: usize, w: &LayerTensors, flow: &mut Flow, causal_offset: usize) {
    match idx {
        0 => {
            // ln_1: save the residual, normalize.
            flow.residual = flow.x.clone();
            flow.x = ops::layernorm(&flow.x, &w.ln1_g, &w.ln1_b, 1e-5);
        }
        1 => flow.x = ops::matmul(&flow.x, &w.w_qkv),
        2 => ops::add_bias(&mut flow.x, &w.b_qkv),
        3 => { /* head transpose: layout-only, a no-op on our row-major data */ }
        4 => {
            // attention over the qkv produced by ops 1-2.
            let h = w.w_o.rows();
            let q = flow.x.col_slice(0, h);
            let k = flow.x.col_slice(h, 2 * h);
            let v = flow.x.col_slice(2 * h, 3 * h);
            flow.x = ops::attention(&q, &k, &v, w.heads, causal_offset);
        }
        5 => flow.x = ops::matmul(&flow.x, &w.w_o),
        6 => {
            ops::add_bias(&mut flow.x, &w.b_o);
            ops::add_inplace(&mut flow.x, &flow.residual);
            flow.residual = flow.x.clone();
        }
        7 => flow.x = ops::layernorm(&flow.x, &w.ln2_g, &w.ln2_b, 1e-5),
        8 => flow.x = ops::matmul(&flow.x, &w.w_ff1),
        9 => {
            ops::add_bias(&mut flow.x, &w.b_ff1);
            ops::gelu(&mut flow.x);
        }
        10 => flow.x = ops::matmul(&flow.x, &w.w_ff2),
        11 => {
            ops::add_bias(&mut flow.x, &w.b_ff2);
            ops::add_inplace(&mut flow.x, &flow.residual);
        }
        _ => panic!("op index {idx} out of the canonical 12-op list"),
    }
}

/// Whole-tensor execution of the canonical layer over `x` (`[t, h]`).
pub fn layer_forward_whole(w: &LayerTensors, x: &Tensor) -> Tensor {
    let mut flow = Flow {
        x: x.clone(),
        residual: x.clone(),
    };
    for idx in 0..12 {
        exec_op(idx, w, &mut flow, 0);
    }
    flow.x
}

/// Whether the canonical op at `idx` can be tiled along the *token* axis
/// with no cross-tile dependency (mirrors the `tile_axes` declarations).
pub fn token_tileable(idx: usize) -> bool {
    idx != 4 // attention couples tokens of one sequence
}

/// Tiled execution: run each fusion region token-tile by token-tile (tile
/// width `tile`), mimicking the per-thread-block execution of a fused
/// kernel. Regions whose ops are all token-tileable are split; a region
/// containing attention processes the full tensor (its tile axis is Head,
/// which our row-major data keeps together — splitting *tokens* there would
/// be the illegal fusion the legality check exists to prevent).
///
/// With `force_tile_attention`, attention is (incorrectly) token-tiled too,
/// demonstrating the divergence.
pub fn layer_forward_tiled(
    w: &LayerTensors,
    x: &Tensor,
    plan: &FusionPlan,
    tile: usize,
    force_tile_attention: bool,
) -> Tensor {
    assert!(tile >= 1);
    let t = x.rows();
    let mut flow = Flow {
        x: x.clone(),
        residual: x.clone(),
    };
    for &(lo, hi) in &plan.regions {
        let tileable = (lo..hi).all(|i| token_tileable(i) || force_tile_attention);
        if !tileable || t <= tile {
            for idx in lo..hi {
                exec_op(idx, w, &mut flow, 0);
            }
            continue;
        }
        // Split the region's input state into token tiles and run the whole
        // region per tile — exactly what one fused thread block does.
        let mut out_parts: Vec<Tensor> = Vec::new();
        let mut res_parts: Vec<Tensor> = Vec::new();
        let mut start = 0;
        while start < t {
            let end = (start + tile).min(t);
            let mut tile_flow = Flow {
                x: flow.x.row_slice(start, end),
                residual: flow.residual.row_slice(start, end),
            };
            for idx in lo..hi {
                // A token tile that (illegally) includes attention sees only
                // its own tokens as context — offset keeps causality local.
                exec_op(idx, w, &mut tile_flow, 0);
            }
            out_parts.push(tile_flow.x);
            res_parts.push(tile_flow.residual);
            start = end;
        }
        flow.x = Tensor::cat_rows(&out_parts.iter().collect::<Vec<_>>());
        flow.residual = Tensor::cat_rows(&res_parts.iter().collect::<Vec<_>>());
    }
    flow.x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (LayerTensors, Tensor) {
        let w = LayerTensors::random(32, 4, 91);
        let x = Tensor::randn(&[8, 32], 1.0, 92);
        (w, x)
    }

    #[test]
    fn whole_execution_matches_reference_dataflow() {
        // Sanity: the op-list interpreter is a faithful transformer layer —
        // check shape and finiteness, and that it is deterministic.
        let (w, x) = setup();
        let a = layer_forward_whole(&w, &x);
        let b = layer_forward_whole(&w, &x);
        assert_eq!(a.shape(), x.shape());
        assert!(a.data().iter().all(|v| v.is_finite()));
        assert!(a.allclose(&b, 0.0));
    }

    #[test]
    fn legal_plans_tile_exactly() {
        // The Deep-Fusion legality theorem, numerically: for every built-in
        // plan, per-tile execution of each region equals whole-tensor
        // execution, for several tile widths.
        let (w, x) = setup();
        let want = layer_forward_whole(&w, &x);
        for plan in [
            FusionPlan::unfused(12),
            FusionPlan::deepspeed_small_batch(),
            FusionPlan::deepspeed_large_batch(),
            FusionPlan::faster_transformer(),
        ] {
            for tile in [1usize, 2, 3, 4] {
                let got = layer_forward_tiled(&w, &x, &plan, tile, false);
                assert!(
                    got.allclose(&want, 1e-4),
                    "plan {:?} tile {tile}: diff {}",
                    plan.regions,
                    got.max_abs_diff(&want)
                );
            }
        }
    }

    #[test]
    fn illegal_attention_tiling_diverges() {
        // Token-tiling the attention region breaks cross-token dependencies:
        // the result must differ — this is exactly the fusion the legality
        // rule forbids.
        let (w, x) = setup();
        let want = layer_forward_whole(&w, &x);
        let plan = FusionPlan::deepspeed_small_batch();
        let got = layer_forward_tiled(&w, &x, &plan, 2, true);
        assert!(
            got.max_abs_diff(&want) > 1e-3,
            "illegally tiled attention should diverge (diff {})",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn single_token_makes_every_tiling_legal() {
        // With t=1 there is nothing to couple: even attention token-tiling
        // degenerates to correct execution.
        let w = LayerTensors::random(32, 4, 93);
        let x = Tensor::randn(&[1, 32], 1.0, 94);
        let want = layer_forward_whole(&w, &x);
        let got = layer_forward_tiled(&w, &x, &FusionPlan::deepspeed_small_batch(), 1, true);
        assert!(got.allclose(&want, 1e-5));
    }
}
