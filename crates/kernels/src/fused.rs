//! Executed Deep-Fusion kernels: single-pass implementations of the four
//! Fig. 1(c) small-batch fusion regions.
//!
//! [`crate::fusion`] *plans* fused regions and prices their launch/traffic
//! savings; this module *executes* them. Each function is one "launch": it
//! reads its region's inputs once, keeps every interior value in registers
//! (or a caller-provided scratch row standing in for shared memory), and
//! writes only the region boundary tensor:
//!
//! * region 1 — [`ln_matmul_bias_into`]: layer-norm → QKV GEMM → bias; the
//!   normalized row never becomes a tensor, it lives in a scratch row reused
//!   across rows and tokens.
//! * region 2 — [`attention_into`]: score → softmax → weighted-sum in one
//!   streaming pass over the keys (online softmax), with **no scores
//!   buffer** of any size — the running max/sum rescale trick keeps state
//!   in three registers plus the output accumulator.
//! * regions 3/5 — `blocked::matmul_bias_add_into`: projection GEMM with
//!   the bias and residual folded into the output write.
//! * region 4 — [`ln_matmul_bias_gelu_into`]: layer-norm → FF1 GEMM → bias
//!   → GeLU, again one output pass.
//!
//! All kernels write into caller scratch, so a steady-state decode step
//! performs zero heap allocations (see `dsi-model::fast`).

use crate::blocked::{dot, matmul_bias_gelu_into, matmul_bias_into, PanelWeights};
use crate::tensor::Tensor;

/// Layer-norm one row into `out` (gamma/beta applied).
#[inline]
pub fn layernorm_row_into(row: &[f32], gamma: &[f32], beta: &[f32], eps: f32, out: &mut [f32]) {
    let n = row.len();
    debug_assert_eq!(gamma.len(), n);
    debug_assert_eq!(beta.len(), n);
    debug_assert_eq!(out.len(), n);
    let mean = row.iter().sum::<f32>() / n as f32;
    let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
    let inv = 1.0 / (var + eps).sqrt();
    for i in 0..n {
        out[i] = (row[i] - mean) * inv * gamma[i] + beta[i];
    }
}

/// Fig. 1(c) region 1: `out = layernorm(x)·W + bias` for `x = [m, h]`.
/// `normed` is an `[m, h]` scratch block (the region's interior tensor):
/// all rows are normalized first, then a **single M-row GEMM** streams the
/// weight panels once for the whole batch instead of once per row — the
/// Sec. III-C3 amortization that makes batched decode scale.
#[allow(clippy::too_many_arguments)]
pub fn ln_matmul_bias_into<B: PanelWeights + ?Sized>(
    x: &[f32],
    m: usize,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    w: &B,
    bias: &[f32],
    normed: &mut [f32],
    out: &mut [f32],
) {
    let h = w.k();
    assert_eq!(x.len(), m * h, "ln_matmul: input size mismatch");
    assert_eq!(normed.len(), m * h, "ln_matmul: scratch must be [m*h]");
    for i in 0..m {
        layernorm_row_into(
            &x[i * h..(i + 1) * h],
            gamma,
            beta,
            eps,
            &mut normed[i * h..(i + 1) * h],
        );
    }
    matmul_bias_into(normed, m, w, bias, out);
}

/// Fig. 1(c) region 4: `out = gelu(layernorm(x)·W + bias)`; same `[m, h]`
/// scratch contract and single M-row GEMM as [`ln_matmul_bias_into`].
#[allow(clippy::too_many_arguments)]
pub fn ln_matmul_bias_gelu_into<B: PanelWeights + ?Sized>(
    x: &[f32],
    m: usize,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    w: &B,
    bias: &[f32],
    normed: &mut [f32],
    out: &mut [f32],
) {
    let h = w.k();
    assert_eq!(x.len(), m * h, "ln_matmul_gelu: input size mismatch");
    assert_eq!(normed.len(), m * h, "ln_matmul_gelu: scratch must be [m*h]");
    for i in 0..m {
        layernorm_row_into(
            &x[i * h..(i + 1) * h],
            gamma,
            beta,
            eps,
            &mut normed[i * h..(i + 1) * h],
        );
    }
    matmul_bias_gelu_into(normed, m, w, bias, out);
}

/// Fused `x += bias` then GeLU, one pass over the rows (the eager pair
/// `add_bias`; `gelu` reads and writes `x` twice).
pub fn bias_gelu_inplace(x: &mut [f32], bias: &[f32]) {
    let n = bias.len();
    for row in x.chunks_exact_mut(n) {
        crate::simd::bias_gelu_row(row, bias);
    }
}

/// Fused `x += bias; x += residual` in one pass.
pub fn bias_residual_inplace(x: &mut [f32], bias: &[f32], residual: &[f32]) {
    let n = bias.len();
    assert_eq!(x.len(), residual.len(), "residual size mismatch");
    for (row, rrow) in x.chunks_exact_mut(n).zip(residual.chunks_exact(n)) {
        for ((v, &b), &r) in row.iter_mut().zip(bias).zip(rrow) {
            *v += b + r;
        }
    }
}

/// Fig. 1(c) region 2: multi-head causal attention as one streaming pass
/// per (head, query) over the visible keys — the score row is never
/// materialized. Uses the online-softmax recurrence: on a new running max
/// the accumulator and weight sum are rescaled by `exp(m_old - m_new)`, so
/// score → softmax → weighted-sum completes in a single traversal of the KV
/// cache with O(1) extra state.
///
/// Shapes match [`crate::ops::attention`]: `q = [t_new, h]` (as a slice),
/// `k`/`v = [t_ctx, h]`, query `i` attends to context `<= causal_offset+i`.
/// `out` must be `[t_new * h]`; it doubles as the accumulator.
pub fn attention_into(
    q: &[f32],
    t_new: usize,
    k: &Tensor,
    v: &Tensor,
    n_heads: usize,
    causal_offset: usize,
    out: &mut [f32],
) {
    let h = k.cols();
    assert_eq!(q.len(), t_new * h, "attention: q size mismatch");
    attention_seq_into(q, h, t_new, k, v, n_heads, causal_offset, out);
}

/// [`attention_into`] with a **strided** query: row `i`'s query lives at
/// `q[i * q_stride .. i * q_stride + h]`. This lets the model layer read
/// queries in place from the fused QKV scratch (`q_stride = 3h`) instead of
/// gathering them into a contiguous buffer first.
#[allow(clippy::too_many_arguments)]
pub fn attention_seq_into(
    q: &[f32],
    q_stride: usize,
    t_new: usize,
    k: &Tensor,
    v: &Tensor,
    n_heads: usize,
    causal_offset: usize,
    out: &mut [f32],
) {
    let t_ctx = k.rows();
    let h = k.cols();
    assert!(q_stride >= h, "attention: q stride narrower than hidden");
    assert!(
        t_new == 0 || (t_new - 1) * q_stride + h <= q.len(),
        "attention: q size mismatch"
    );
    assert_eq!(out.len(), t_new * h, "attention: out size mismatch");
    for i in 0..t_new {
        let visible = (causal_offset + i + 1).min(t_ctx);
        attention_row_core(
            &q[i * q_stride..i * q_stride + h],
            k,
            v,
            n_heads,
            visible,
            &mut out[i * h..(i + 1) * h],
        );
    }
}

/// One query row of a **ragged batch**: each sequence carries its own KV
/// tensors and causal position. The query attends to keys `0..=offset`
/// (clamped to the cache length).
pub fn attention_row_into(
    q: &[f32],
    k: &Tensor,
    v: &Tensor,
    n_heads: usize,
    offset: usize,
    out: &mut [f32],
) {
    let visible = (offset + 1).min(k.rows());
    attention_row_core(q, k, v, n_heads, visible, out);
}

/// One sequence's KV cache plus the causal position of the query row being
/// decoded against it (ragged-batch attention operand).
pub struct KvView<'a> {
    pub k: &'a Tensor,
    pub v: &'a Tensor,
    /// The query's position: it attends to keys `0..=offset`.
    pub offset: usize,
}

/// One sequence's **paged** KV cache: K/V rows live in shared per-layer
/// arenas, scattered across fixed-size token pages named by `pages` (the
/// sequence's page table). Token position `j` resolves to arena row
/// `pages[j / page_tokens] * page_tokens + j % page_tokens`.
pub struct PagedKvView<'a> {
    /// K arena, `[pages_total * page_tokens, h]` row-major.
    pub k: &'a [f32],
    /// V arena, same shape as `k`.
    pub v: &'a [f32],
    /// This sequence's page table, in position order.
    pub pages: &'a [u32],
    /// Tokens per page.
    pub page_tokens: usize,
    /// Context rows written through the table so far.
    pub len: usize,
    /// The query's position: it attends to keys `0..=offset`.
    pub offset: usize,
}

/// One query row attending through a page table ([`PagedKvView`]). The FLOP
/// sequence is the *same monomorphized code* as [`attention_row_into`] —
/// only the key-row addressing differs — so the output is bit-identical to
/// contiguous attention over the same K/V values.
pub fn attention_row_paged_into(
    q: &[f32],
    kv: &PagedKvView<'_>,
    n_heads: usize,
    out: &mut [f32],
) {
    let h = q.len();
    let pt = kv.page_tokens;
    assert!(pt > 0, "paged attention: zero page_tokens");
    let visible = (kv.offset + 1).min(kv.len);
    let pages_needed = visible.div_ceil(pt);
    assert!(
        pages_needed <= kv.pages.len(),
        "paged attention: page table too short ({} pages for {visible} tokens)",
        kv.pages.len()
    );
    // Every page the pass will touch must map inside both arenas — this is
    // the bounds contract the AVX kernel's raw pointer arithmetic relies on.
    for &p in &kv.pages[..pages_needed] {
        let end = (p as usize + 1) * pt * h;
        assert!(
            end <= kv.k.len() && end <= kv.v.len(),
            "paged attention: page {p} out of arena bounds"
        );
    }
    attention_row_core_indexed(
        q,
        kv.k,
        kv.v,
        h,
        n_heads,
        visible,
        PagedRows { pages: kv.pages, page_tokens: pt },
        out,
    );
}

/// Maps a logical context index to its physical row in the K/V backing
/// storage. Contiguous caches are the identity; paged caches translate
/// through a page table. Monomorphization keeps the floating-point
/// instruction sequence of both paths identical — paged attention is
/// bit-identical to contiguous attention by construction, not by tolerance.
trait RowIndex: Copy {
    fn row(&self, j: usize) -> usize;
}

#[derive(Clone, Copy)]
struct ContigRows;

impl RowIndex for ContigRows {
    #[inline(always)]
    fn row(&self, j: usize) -> usize {
        j
    }
}

#[derive(Clone, Copy)]
struct PagedRows<'a> {
    pages: &'a [u32],
    page_tokens: usize,
}

impl RowIndex for PagedRows<'_> {
    #[inline(always)]
    fn row(&self, j: usize) -> usize {
        self.pages[j / self.page_tokens] as usize * self.page_tokens + j % self.page_tokens
    }
}

/// Ragged-batch region-2 kernel: row `i` of the strided `q` block attends
/// over its own `kvs[i]` (per-row KV tensors and per-row sequence length).
/// This is [`attention_seq_into`] generalized from "one cache, stair-step
/// offsets" to "one cache *per row*" — the batched-decode shape where every
/// sequence is at a different position.
pub fn attention_ragged_into(
    q: &[f32],
    q_stride: usize,
    kvs: &[KvView<'_>],
    n_heads: usize,
    out: &mut [f32],
) {
    let m = kvs.len();
    if m == 0 {
        return;
    }
    let h = kvs[0].k.cols();
    assert!(q_stride >= h, "attention: q stride narrower than hidden");
    assert!(
        (m - 1) * q_stride + h <= q.len(),
        "attention: q size mismatch"
    );
    assert_eq!(out.len(), m * h, "attention: out size mismatch");
    for (i, kv) in kvs.iter().enumerate() {
        attention_row_into(
            &q[i * q_stride..i * q_stride + h],
            kv.k,
            kv.v,
            n_heads,
            kv.offset,
            &mut out[i * h..(i + 1) * h],
        );
    }
}

/// Shared per-(query row) core: all heads, `visible` keys, AVX2 fast path
/// when the head dim allows it.
fn attention_row_core(
    qrow: &[f32],
    k: &Tensor,
    v: &Tensor,
    n_heads: usize,
    visible: usize,
    out: &mut [f32],
) {
    let t_ctx = k.rows();
    let h = k.cols();
    assert_eq!(v.rows(), t_ctx);
    assert_eq!(v.cols(), h);
    assert!(visible <= t_ctx, "attention: visible exceeds cache");
    attention_row_core_indexed(qrow, k.data(), v.data(), h, n_heads, visible, ContigRows, out);
}

/// [`attention_row_core`] over arbitrary K/V row placement: logical context
/// index `j` reads arena row `idx.row(j)`. The caller must guarantee
/// `(idx.row(j) + 1) * h <= kd.len(), vd.len()` for every `j < visible`.
#[allow(clippy::too_many_arguments)]
fn attention_row_core_indexed<I: RowIndex>(
    qrow: &[f32],
    kd: &[f32],
    vd: &[f32],
    h: usize,
    n_heads: usize,
    visible: usize,
    idx: I,
    out: &mut [f32],
) {
    assert_eq!(qrow.len(), h, "attention: q row size mismatch");
    assert_eq!(out.len(), h, "attention: out row size mismatch");
    assert_eq!(h % n_heads, 0, "heads must divide hidden");
    let d = h / n_heads;
    let scale = 1.0 / (d as f32).sqrt();
    for hd in 0..n_heads {
        let lo = hd * d;
        let qi = &qrow[lo..lo + d];
        let acc = &mut out[lo..lo + d];
        #[cfg(target_arch = "x86_64")]
        if d.is_multiple_of(8) && crate::simd::avx2_fma() {
            // SAFETY: feature support checked; `d` divides 8; the pointer
            // arithmetic stays inside `kd`/`vd` because the caller bounds
            // every `idx.row(j)` row inside both arenas and `lo + d <= h`.
            unsafe { attn_avx::head_attention(qi, kd, vd, h, lo, visible, scale, idx, acc) };
            continue;
        }
        head_attention_scalar(qi, kd, vd, h, lo, visible, scale, idx, acc);
    }
}

/// One (query, head) online-softmax pass: the portable reference kernel.
#[allow(clippy::too_many_arguments)]
fn head_attention_scalar<I: RowIndex>(
    qi: &[f32],
    kd: &[f32],
    vd: &[f32],
    h: usize,
    lo: usize,
    visible: usize,
    scale: f32,
    idx: I,
    acc: &mut [f32],
) {
    let d = qi.len();
    acc.fill(0.0);
    let mut m_run = f32::NEG_INFINITY;
    let mut sum = 0.0f32;
    for j in 0..visible {
        let r = idx.row(j);
        let kj = &kd[r * h + lo..r * h + lo + d];
        let s = dot(qi, kj) * scale;
        if s > m_run {
            // Rescale history to the new max. First iteration:
            // exp(-inf - s) = 0 zeroes the (already zero) state.
            let corr = (m_run - s).exp();
            sum *= corr;
            for a in acc.iter_mut() {
                *a *= corr;
            }
            m_run = s;
        }
        let w = (s - m_run).exp();
        sum += w;
        let vj = &vd[r * h + lo..r * h + lo + d];
        for (a, &vv) in acc.iter_mut().zip(vj) {
            *a += w * vv;
        }
    }
    let inv = 1.0 / sum;
    for a in acc.iter_mut() {
        *a *= inv;
    }
}

#[cfg(target_arch = "x86_64")]
mod attn_avx {
    use super::RowIndex;
    use crate::simd::avx::exp_ps;
    use std::arch::x86_64::*;

    /// Horizontal sum of one YMM register.
    ///
    /// # Safety
    /// Requires AVX2+FMA.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum(v: __m256) -> f32 {
        let s = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
        _mm_cvtss_f32(s)
    }

    /// One (query, head) online-softmax pass, blocked 8 keys at a time:
    /// 8 vector dot products, one shared running-max rescale, one 8-wide
    /// `exp`, then 8 FMA accumulations — same recurrence as the scalar
    /// kernel, still O(1) state (an 8-score register block, no per-query
    /// buffer). Key rows are addressed through `idx` (identity for
    /// contiguous caches, page-table translation for paged ones); each of
    /// the 8 dots addresses its own row, so non-contiguous placement
    /// changes nothing but the load addresses. Requires `d % 8 == 0`.
    ///
    /// # Safety
    /// Requires AVX2+FMA; `kd`/`vd` must hold `h`-column rows with
    /// `(idx.row(j) + 1) * h <= kd.len(), vd.len()` for every
    /// `j < visible`, `lo + d <= h`, `d == qi.len() == acc.len()`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn head_attention<I: RowIndex>(
        qi: &[f32],
        kd: &[f32],
        vd: &[f32],
        h: usize,
        lo: usize,
        visible: usize,
        scale: f32,
        idx: I,
        acc: &mut [f32],
    ) {
        let d = qi.len();
        // Contract checks: every SAFETY argument below reduces to these.
        debug_assert!(d.is_multiple_of(8), "head_dim must be a multiple of 8");
        debug_assert_eq!(acc.len(), d);
        debug_assert!(lo + d <= h, "head slice must fit inside the hidden dim");
        debug_assert!(
            (0..visible).all(|j| (idx.row(j) + 1) * h <= kd.len().min(vd.len())),
            "indexed rows exceed K/V data"
        );
        acc.fill(0.0);
        let mut m_run = f32::NEG_INFINITY;
        let mut sum = 0.0f32;
        let mut sbuf = [0.0f32; 8];
        let mut wbuf = [0.0f32; 8];
        let mut j = 0;
        while j + 8 <= visible {
            for (jr, sb) in sbuf.iter_mut().enumerate() {
                // SAFETY: `j + jr < visible`, the caller's row bound
                // `(idx.row(j) + 1) * h <= kd.len()` and `lo + d <= h` keep
                // `kj.add(t)` (t < d, 8-aligned strides) inside `kd`; `t + 8
                // <= d == qi.len()` bounds the q loads; AVX2+FMA per this fn.
                unsafe {
                    let kj = kd.as_ptr().add(idx.row(j + jr) * h + lo);
                    let mut dv = _mm256_setzero_ps();
                    let mut t = 0;
                    while t < d {
                        dv = _mm256_fmadd_ps(
                            _mm256_loadu_ps(qi.as_ptr().add(t)),
                            _mm256_loadu_ps(kj.add(t)),
                            dv,
                        );
                        t += 8;
                    }
                    *sb = hsum(dv) * scale;
                }
            }
            // Block max via `>` so a NaN score leaves `m_run` alone and
            // poisons the weights (and thus `sum`) instead — identical to
            // the scalar kernel's NaN behavior.
            let mut bm = m_run;
            for &sc in &sbuf {
                if sc > bm {
                    bm = sc;
                }
            }
            if bm > m_run {
                let corr = (m_run - bm).exp();
                sum *= corr;
                let cv = _mm256_set1_ps(corr);
                let mut t = 0;
                while t < d {
                    // SAFETY: `t + 8 <= d == acc.len()` bounds the
                    // read-modify-write of `acc[t..t + 8]`.
                    unsafe {
                        let p = acc.as_mut_ptr().add(t);
                        _mm256_storeu_ps(p, _mm256_mul_ps(cv, _mm256_loadu_ps(p)));
                    }
                    t += 8;
                }
                m_run = bm;
            }
            // SAFETY: `sbuf`/`wbuf` are exactly 8 floats; `exp_ps` and
            // `hsum` require AVX2+FMA, guaranteed by this fn's contract.
            let w_sum = unsafe {
                let w = exp_ps(_mm256_sub_ps(
                    _mm256_loadu_ps(sbuf.as_ptr()),
                    _mm256_set1_ps(m_run),
                ));
                _mm256_storeu_ps(wbuf.as_mut_ptr(), w);
                hsum(w)
            };
            sum += w_sum;
            for (jr, &wv) in wbuf.iter().enumerate() {
                let wv = _mm256_set1_ps(wv);
                // SAFETY: same bounds as the K pass — `j + jr < visible`,
                // the caller's row bound on `vd`, `lo + d <= h` keep the V
                // loads in bounds; `t + 8 <= d == acc.len()` bounds the
                // accumulator update.
                unsafe {
                    let vj = vd.as_ptr().add(idx.row(j + jr) * h + lo);
                    let mut t = 0;
                    while t < d {
                        let p = acc.as_mut_ptr().add(t);
                        _mm256_storeu_ps(
                            p,
                            _mm256_fmadd_ps(wv, _mm256_loadu_ps(vj.add(t)), _mm256_loadu_ps(p)),
                        );
                        t += 8;
                    }
                }
            }
            j += 8;
        }
        // Scalar tail: fewer than 8 keys left.
        for jj in j..visible {
            let r = idx.row(jj);
            let kj = &kd[r * h + lo..r * h + lo + d];
            let s = crate::blocked::dot(qi, kj) * scale;
            if s > m_run {
                let corr = (m_run - s).exp();
                sum *= corr;
                for a in acc.iter_mut() {
                    *a *= corr;
                }
                m_run = s;
            }
            let w = (s - m_run).exp();
            sum += w;
            let vj = &vd[r * h + lo..r * h + lo + d];
            for (a, &vv) in acc.iter_mut().zip(vj) {
                *a += w * vv;
            }
        }
        let inv = 1.0 / sum;
        for a in acc.iter_mut() {
            *a *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocked::PackedB;
    use crate::ops;

    #[test]
    fn ln_gemm_bias_matches_unfused() {
        let (m, h, n) = (3, 16, 24);
        let x = Tensor::randn(&[m, h], 1.0, 1);
        let g = Tensor::randn(&[h], 0.3, 2);
        let b = Tensor::randn(&[h], 0.1, 3);
        let w = Tensor::randn(&[h, n], 0.5, 4);
        let bias = Tensor::randn(&[n], 0.1, 5);
        let mut want = ops::matmul(&ops::layernorm(&x, &g, &b, 1e-5), &w);
        ops::add_bias(&mut want, &bias);
        let pw = PackedB::pack(&w);
        let mut normed = vec![0.0f32; m * h];
        let mut got = Tensor::zeros(&[m, n]);
        ln_matmul_bias_into(
            x.data(), m, g.data(), b.data(), 1e-5, &pw, bias.data(),
            &mut normed, got.data_mut(),
        );
        assert!(got.allclose(&want, 1e-5), "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn ln_gemm_bias_gelu_matches_unfused() {
        let (m, h, n) = (2, 16, 64);
        let x = Tensor::randn(&[m, h], 1.0, 11);
        let g = Tensor::from_vec(&[h], vec![1.0; h]);
        let b = Tensor::zeros(&[h]);
        let w = Tensor::randn(&[h, n], 0.5, 12);
        let bias = Tensor::randn(&[n], 0.1, 13);
        let mut want = ops::matmul(&ops::layernorm(&x, &g, &b, 1e-5), &w);
        ops::add_bias(&mut want, &bias);
        ops::gelu(&mut want);
        let pw = PackedB::pack(&w);
        let mut normed = vec![0.0f32; m * h];
        let mut got = Tensor::zeros(&[m, n]);
        ln_matmul_bias_gelu_into(
            x.data(), m, g.data(), b.data(), 1e-5, &pw, bias.data(),
            &mut normed, got.data_mut(),
        );
        assert!(got.allclose(&want, 1e-5), "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn bias_gelu_pass_matches_unfused() {
        let mut x = Tensor::randn(&[3, 8], 1.0, 21);
        let bias = Tensor::randn(&[8], 0.5, 22);
        let mut want = x.clone();
        ops::add_bias(&mut want, &bias);
        ops::gelu(&mut want);
        bias_gelu_inplace(x.data_mut(), bias.data());
        assert!(x.allclose(&want, 1e-6));
    }

    #[test]
    fn bias_residual_pass_matches_unfused() {
        let mut x = Tensor::randn(&[3, 8], 1.0, 31);
        let bias = Tensor::randn(&[8], 0.5, 32);
        let res = Tensor::randn(&[3, 8], 1.0, 33);
        let mut want = x.clone();
        ops::add_bias(&mut want, &bias);
        ops::add_inplace(&mut want, &res);
        bias_residual_inplace(x.data_mut(), bias.data(), res.data());
        assert!(x.allclose(&want, 1e-6));
    }

    #[test]
    fn streaming_attention_matches_reference() {
        for (t_new, t_ctx, heads, off) in [(1, 1, 1, 0), (1, 9, 2, 8), (4, 4, 4, 0), (3, 7, 2, 4)] {
            let h = 8 * heads;
            let q = Tensor::randn(&[t_new, h], 1.0, 41);
            let k = Tensor::randn(&[t_ctx, h], 1.0, 42);
            let v = Tensor::randn(&[t_ctx, h], 1.0, 43);
            let want = ops::attention(&q, &k, &v, heads, off);
            let mut got = Tensor::zeros(&[t_new, h]);
            attention_into(q.data(), t_new, &k, &v, heads, off, got.data_mut());
            assert!(
                got.allclose(&want, 1e-5),
                "({t_new},{t_ctx},{heads},{off}) diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn strided_query_matches_contiguous() {
        // Reading queries in place from a QKV-shaped block (stride 3h) must
        // equal gathering them into a contiguous buffer first.
        let (t_new, t_ctx, heads, off) = (3, 7, 2, 4);
        let h = 8 * heads;
        let qkv = Tensor::randn(&[t_new, 3 * h], 1.0, 61);
        let k = Tensor::randn(&[t_ctx, h], 1.0, 62);
        let v = Tensor::randn(&[t_ctx, h], 1.0, 63);
        let mut gathered = Tensor::zeros(&[t_new, h]);
        for i in 0..t_new {
            gathered.row_mut(i).copy_from_slice(&qkv.row(i)[..h]);
        }
        let mut want = Tensor::zeros(&[t_new, h]);
        attention_into(gathered.data(), t_new, &k, &v, heads, off, want.data_mut());
        let mut got = Tensor::zeros(&[t_new, h]);
        attention_seq_into(qkv.data(), 3 * h, t_new, &k, &v, heads, off, got.data_mut());
        assert!(got.allclose(&want, 0.0));
    }

    #[test]
    fn ragged_attention_matches_reference_per_row() {
        // Each row has its own KV length/offset; every row must equal an
        // independent single-query reference attention over its own cache.
        let heads = 2;
        let h = 8 * heads;
        let lens = [1usize, 5, 3, 9];
        let q = Tensor::randn(&[lens.len(), 3 * h], 1.0, 71);
        let ks: Vec<Tensor> = (0..lens.len())
            .map(|i| Tensor::randn(&[lens[i], h], 1.0, 72 + i as u64))
            .collect();
        let vs: Vec<Tensor> = (0..lens.len())
            .map(|i| Tensor::randn(&[lens[i], h], 1.0, 90 + i as u64))
            .collect();
        let kvs: Vec<KvView<'_>> = (0..lens.len())
            .map(|i| KvView { k: &ks[i], v: &vs[i], offset: lens[i] - 1 })
            .collect();
        let mut got = Tensor::zeros(&[lens.len(), h]);
        attention_ragged_into(q.data(), 3 * h, &kvs, heads, got.data_mut());
        for i in 0..lens.len() {
            let qi = Tensor::from_vec(&[1, h], q.row(i)[..h].to_vec());
            let want = ops::attention(&qi, &ks[i], &vs[i], heads, lens[i] - 1);
            let gi = Tensor::from_vec(&[1, h], got.row(i).to_vec());
            assert!(
                gi.allclose(&want, 1e-5),
                "row {i} diff {}",
                gi.max_abs_diff(&want)
            );
        }
    }

    /// Scatter the rows of a contiguous `[t, h]` K (or V) into a paged
    /// arena through an arbitrary page table.
    fn scatter_paged(src: &Tensor, pages: &[u32], pt: usize, arena_pages: usize) -> Vec<f32> {
        let h = src.cols();
        let mut arena = vec![f32::NAN; arena_pages * pt * h]; // poison unused slots
        for j in 0..src.rows() {
            let r = pages[j / pt] as usize * pt + j % pt;
            arena[r * h..(r + 1) * h].copy_from_slice(src.row(j));
        }
        arena
    }

    #[test]
    fn paged_attention_bit_identical_to_contiguous() {
        // Shuffled, non-adjacent page tables; lengths that land mid-page, on
        // page edges, and inside the first page; head dims hitting both the
        // AVX (d % 8 == 0) and scalar paths.
        let cases = [
            (1usize, 4usize, 1usize, 8usize), // single token, AVX head
            (7, 4, 2, 8),                     // mid-page, 2 heads
            (8, 4, 1, 8),                     // exact page boundary
            (13, 4, 2, 8),                    // crosses 3 pages
            (16, 8, 2, 8),                    // two full pages
            (9, 3, 1, 4),                     // pt % 8 != 0, scalar head (d=4)
            (21, 5, 3, 8),                    // ragged everything
        ];
        for (ci, &(len, pt, heads, d)) in cases.iter().enumerate() {
            let h = heads * d;
            let seed = 100 + ci as u64;
            let q = Tensor::randn(&[1, h], 1.0, seed);
            let k = Tensor::randn(&[len, h], 1.0, seed + 1);
            let v = Tensor::randn(&[len, h], 1.0, seed + 2);
            let n_pages = len.div_ceil(pt);
            // Reverse page order + a gap: pages are deliberately scattered.
            let arena_pages = n_pages + 2;
            let pages: Vec<u32> = (0..n_pages).map(|p| (arena_pages - 1 - p) as u32).collect();
            let ka = scatter_paged(&k, &pages, pt, arena_pages);
            let va = scatter_paged(&v, &pages, pt, arena_pages);
            for offset in [0, len / 2, len - 1] {
                let mut want = vec![0.0f32; h];
                attention_row_into(q.row(0), &k, &v, heads, offset, &mut want);
                let mut got = vec![0.0f32; h];
                attention_row_paged_into(
                    q.row(0),
                    &PagedKvView {
                        k: &ka,
                        v: &va,
                        pages: &pages,
                        page_tokens: pt,
                        len,
                        offset,
                    },
                    heads,
                    &mut got,
                );
                assert_eq!(
                    got.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    "case {ci} (len {len}, pt {pt}, offset {offset}) not bit-identical"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "page table too short")]
    fn paged_attention_rejects_short_table() {
        let h = 8;
        let arena = vec![0.0f32; 4 * h];
        let q = vec![0.0f32; h];
        let mut out = vec![0.0f32; h];
        attention_row_paged_into(
            &q,
            &PagedKvView { k: &arena, v: &arena, pages: &[0], page_tokens: 4, len: 6, offset: 5 },
            1,
            &mut out,
        );
    }

    #[test]
    #[should_panic(expected = "out of arena bounds")]
    fn paged_attention_rejects_out_of_range_page() {
        let h = 8;
        let arena = vec![0.0f32; 4 * h]; // one 4-token page worth of rows
        let q = vec![0.0f32; h];
        let mut out = vec![0.0f32; h];
        attention_row_paged_into(
            &q,
            &PagedKvView { k: &arena, v: &arena, pages: &[3], page_tokens: 4, len: 2, offset: 1 },
            1,
            &mut out,
        );
    }

    #[test]
    fn streaming_attention_propagates_nan() {
        // A NaN key must poison the affected query's output — the seed's
        // `w == 0.0` skip could silently drop it.
        let q = Tensor::randn(&[1, 8], 1.0, 51);
        let mut k = Tensor::randn(&[3, 8], 1.0, 52);
        k.data_mut()[0] = f32::NAN;
        let v = Tensor::randn(&[3, 8], 1.0, 53);
        let mut got = Tensor::zeros(&[1, 8]);
        attention_into(q.data(), 1, &k, &v, 1, 2, got.data_mut());
        assert!(got.data().iter().all(|x| x.is_nan()));
    }
}
