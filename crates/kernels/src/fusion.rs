//! Deep-Fusion (Sec. III-B): partition a layer's op list into fused regions
//! under the tile-dependency legality rule, and recompute costs with interior
//! activations held in registers/shared memory.
//!
//! Fusion legality: "two operators can be fused using Deep-Fusion if each
//! tile of the second operator depends on exactly one output tile of the
//! first" — which holds exactly when the two ops share a tileable axis. A
//! region is legal iff every adjacent pair shares an axis.
//!
//! Cost effect of fusing a region:
//! * launches: 1 (vs one — or several, for eager frameworks — per op),
//! * weight bytes: unchanged (weights always stream from HBM),
//! * activation traffic: only the region's *boundary* tensors hit HBM; all
//!   interior producer→consumer tensors stay on-chip ("the data produced by
//!   each tile is either kept in registers or in shared memory").

use crate::cost::KernelCost;
use crate::graph::{OpDesc, OpKind};
use dsi_sim::hw::DType;
use serde::Serialize;

/// A partition of an op list into contiguous fused regions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FusionPlan {
    /// Each region is a contiguous, non-empty range of op indices; regions
    /// must cover `0..n` in order.
    pub regions: Vec<(usize, usize)>,
}

/// Ways a plan can be rejected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum FusionError {
    /// Regions don't tile `0..n` contiguously.
    BadPartition,
    /// Adjacent ops in a region share no tileable axis. Carries both the op
    /// indices and their names, so the error is actionable without the op
    /// list at hand.
    NoSharedAxis {
        left: usize,
        right: usize,
        left_name: &'static str,
        right_name: &'static str,
    },
}

impl std::fmt::Display for FusionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FusionError::BadPartition => write!(f, "regions do not partition the op list"),
            FusionError::NoSharedAxis {
                left,
                right,
                left_name,
                right_name,
            } => {
                write!(
                    f,
                    "ops {left} (`{left_name}`) and {right} (`{right_name}`) share no tileable axis; cannot fuse"
                )
            }
        }
    }
}

impl std::error::Error for FusionError {}

impl FusionPlan {
    /// Every op in its own region (the eager / unfused baseline).
    pub fn unfused(n_ops: usize) -> Self {
        FusionPlan {
            regions: (0..n_ops).map(|i| (i, i + 1)).collect(),
        }
    }

    /// The DeepSpeed small-batch plan of Fig. 1(c): four fused regions
    /// around the GEMMs — (1) input layer-norm + QKV GEMM (+bias),
    /// (2) transposition + attention, (3) attention-output GEMM + bias +
    /// residual, (4) post-attention layer-norm + FF1 GEMM + GeLU, and
    /// (5) FF2 GEMM + bias + residual. Indices refer to
    /// [`crate::graph::transformer_layer_ops`].
    pub fn deepspeed_small_batch() -> Self {
        FusionPlan {
            regions: vec![(0, 3), (3, 5), (5, 7), (7, 10), (10, 12)],
        }
    }

    /// The DeepSpeed large-batch plan (Sec. III-D): "we follow the same
    /// fusion strategy ... with the difference that we use CUBLAS for GeMM
    /// operations, and keep them unfused". GEMMs stand alone; the non-GEMM
    /// chains between them stay fused.
    pub fn deepspeed_large_batch() -> Self {
        FusionPlan {
            regions: vec![
                (0, 1),   // ln_1
                (1, 2),   // qkv_gemm (cuBLAS, unfused)
                (2, 5),   // qkv_bias + transpose + attention
                (5, 6),   // attn_out_gemm
                (6, 8),   // bias+residual + ln_2
                (8, 9),   // ff1_gemm
                (9, 10),  // gelu_bias
                (10, 11), // ff2_gemm
                (11, 12), // bias+residual
            ],
        }
    }

    /// FasterTransformer-style fusion: attention block fused, biases fused
    /// with activations, but no layer-norm/GEMM cross-fusion and no custom
    /// GEMM (the baseline of Fig. 6).
    pub fn faster_transformer() -> Self {
        FusionPlan {
            regions: vec![
                (0, 1),
                (1, 2),
                (2, 5), // qkv_bias + transpose + attention
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 9),
                (9, 10),
                (10, 11),
                (11, 12),
            ],
        }
    }
}

/// A fused kernel: one launch covering a region of ops.
#[derive(Debug, Clone, Serialize)]
pub struct FusedKernel {
    pub name: String,
    pub cost: KernelCost,
    /// Launches this kernel costs on an optimized runtime.
    pub launches: usize,
    /// Launches on an eager framework (sum of micro-launches).
    pub eager_launches: usize,
    /// Activation rows `m` of the largest GEMM in the region (drives the
    /// GEMM efficiency curves); `None` if the region has no GEMM.
    pub gemm_rows: Option<usize>,
    /// Region contains an attention op (uses attention efficiency).
    pub has_attention: bool,
}

fn shares_axis(a: &OpDesc, b: &OpDesc) -> bool {
    a.tile_axes.iter().any(|ax| b.tile_axes.contains(ax))
}

/// Check a plan against an op list and return **all** legality violations
/// (an empty vector means the plan is legal). `fuse` keeps its fail-fast
/// `Result` API on top of this; static tooling (`dsi-verify`) wants the
/// complete list.
pub fn validate(ops: &[OpDesc], plan: &FusionPlan) -> Vec<FusionError> {
    let mut errs = Vec::new();
    // Partition check: regions must tile `0..ops.len()` contiguously. A
    // broken partition makes per-region axis checks meaningless, so report
    // it alone.
    let mut expect = 0usize;
    let mut partition_ok = true;
    for &(lo, hi) in &plan.regions {
        if lo != expect || hi <= lo || hi > ops.len() {
            partition_ok = false;
            break;
        }
        expect = hi;
    }
    if !partition_ok || expect != ops.len() {
        errs.push(FusionError::BadPartition);
        return errs;
    }
    for &(lo, hi) in &plan.regions {
        let region = &ops[lo..hi];
        // Legality: each adjacent producer→consumer pair must share a tile
        // axis ("each tile of the second operator depends on exactly one
        // output tile of the first"). The tiling axis may change across a
        // pair boundary — the fused kernel re-tiles through shared memory,
        // as the paper's transposition+attention region does.
        for i in 0..region.len() - 1 {
            if !shares_axis(&region[i], &region[i + 1]) {
                errs.push(FusionError::NoSharedAxis {
                    left: lo + i,
                    right: lo + i + 1,
                    left_name: region[i].name,
                    right_name: region[i + 1].name,
                });
            }
        }
    }
    errs
}

/// Apply a fusion plan to an op list, checking legality and producing fused
/// kernels with boundary-only activation traffic.
pub fn fuse(
    ops: &[OpDesc],
    plan: &FusionPlan,
    act_dtype: DType,
) -> Result<Vec<FusedKernel>, FusionError> {
    if let Some(err) = validate(ops, plan).into_iter().next() {
        return Err(err);
    }

    let mut out = Vec::with_capacity(plan.regions.len());
    for &(lo, hi) in &plan.regions {
        let region = &ops[lo..hi];
        let mut cost = KernelCost::default();
        let mut eager = 0usize;
        let mut gemm_rows = None;
        let mut has_attention = false;
        for (i, op) in region.iter().enumerate() {
            let c = op.cost(act_dtype);
            cost.flops += c.flops;
            cost.weight_bytes += c.weight_bytes;
            eager += op.micro_launches;
            match op.kind {
                OpKind::Gemm { m, .. } => {
                    gemm_rows = Some(gemm_rows.map_or(m, |g: usize| g.max(m)));
                }
                OpKind::Attention { .. } => has_attention = true,
                _ => {}
            }
            // Boundary traffic: the first op's reads enter from HBM and the
            // last op's writes leave to HBM. Interior tensors stay on-chip,
            // *except* extra external operands (residual inputs), which are
            // reads from outside the region regardless of position.
            if i == 0 {
                cost.act_read += c.act_read;
            } else if let OpKind::Elementwise {
                elems,
                extra_input: true,
            } = op.kind
            {
                cost.act_read += elems as f64 * act_dtype.bytes() as f64;
            }
            if i == region.len() - 1 {
                cost.act_write += c.act_write;
            }
        }
        let name = region
            .iter()
            .map(|o| o.name)
            .collect::<Vec<_>>()
            .join("+");
        out.push(FusedKernel {
            name,
            cost,
            launches: 1,
            eager_launches: eager,
            gemm_rows,
            has_attention,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::transformer_layer_ops;

    fn ops() -> Vec<OpDesc> {
        transformer_layer_ops(1, 1, 128, 512, 8, DType::Fp16)
    }

    #[test]
    fn unfused_plan_is_identity() {
        let ops = ops();
        let fused = fuse(&ops, &FusionPlan::unfused(ops.len()), DType::Fp16).unwrap();
        assert_eq!(fused.len(), ops.len());
        for (f, o) in fused.iter().zip(&ops) {
            let c = o.cost(DType::Fp16);
            assert_eq!(f.cost.act_read, c.act_read);
            assert_eq!(f.cost.act_write, c.act_write);
        }
    }

    #[test]
    fn deepspeed_plans_are_legal() {
        let ops = ops();
        assert!(fuse(&ops, &FusionPlan::deepspeed_small_batch(), DType::Fp16).is_ok());
        assert!(fuse(&ops, &FusionPlan::deepspeed_large_batch(), DType::Fp16).is_ok());
        assert!(fuse(&ops, &FusionPlan::faster_transformer(), DType::Fp16).is_ok());
    }

    #[test]
    fn fusion_preserves_flops_and_weights() {
        let ops = ops();
        let unfused = fuse(&ops, &FusionPlan::unfused(ops.len()), DType::Fp16).unwrap();
        let fused = fuse(&ops, &FusionPlan::deepspeed_small_batch(), DType::Fp16).unwrap();
        let sum = |ks: &[FusedKernel], f: fn(&KernelCost) -> f64| -> f64 {
            ks.iter().map(|k| f(&k.cost)).sum()
        };
        assert_eq!(sum(&unfused, |c| c.flops), sum(&fused, |c| c.flops));
        assert_eq!(
            sum(&unfused, |c| c.weight_bytes),
            sum(&fused, |c| c.weight_bytes)
        );
    }

    #[test]
    fn fusion_reduces_activation_traffic_and_launches() {
        let ops = ops();
        let unfused = fuse(&ops, &FusionPlan::unfused(ops.len()), DType::Fp16).unwrap();
        let fused = fuse(&ops, &FusionPlan::deepspeed_small_batch(), DType::Fp16).unwrap();
        let traffic = |ks: &[FusedKernel]| -> f64 {
            ks.iter().map(|k| k.cost.act_read + k.cost.act_write).sum()
        };
        assert!(traffic(&fused) < traffic(&unfused));
        let launches = |ks: &[FusedKernel]| -> usize { ks.iter().map(|k| k.launches).sum() };
        assert_eq!(launches(&fused), 5);
        assert_eq!(launches(&unfused), 12);
    }

    #[test]
    fn residual_read_survives_fusion() {
        // Region (5,7) = attn_out_gemm + bias_residual: the residual stream
        // must still be read from HBM even though the gemm output is fused.
        let ops = ops();
        let fused = fuse(&ops, &FusionPlan::deepspeed_small_batch(), DType::Fp16).unwrap();
        let region = &fused[2];
        assert!(region.name.contains("attn_bias_residual"));
        let m_h_bytes = (512 * 2) as f64;
        // reads: gemm input (m×h) + residual (m×h).
        assert!(region.cost.act_read >= 2.0 * m_h_bytes);
    }

    #[test]
    fn illegal_partition_rejected() {
        let ops = ops();
        let bad = FusionPlan {
            regions: vec![(0, 5), (6, 12)], // gap at 5
        };
        assert_eq!(
            fuse(&ops, &bad, DType::Fp16).unwrap_err(),
            FusionError::BadPartition
        );
    }

    #[test]
    fn no_shared_axis_rejected() {
        // attention tiles only along Head; attn_out_gemm tiles along
        // Token/OutputCol — fusing them directly must be rejected.
        let ops = ops();
        let bad = FusionPlan {
            regions: vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 6), (6, 12)],
        };
        let err = fuse(&ops, &bad, DType::Fp16).unwrap_err();
        assert!(matches!(
            err,
            FusionError::NoSharedAxis {
                left: 4,
                right: 5,
                left_name: "attention",
                right_name: "attn_out_gemm",
            }
        ));
        assert!(err.to_string().contains("attention"), "{err}");
    }

    #[test]
    fn validate_returns_all_violations() {
        use crate::graph::Axis;
        let op = |name: &'static str, axes: &'static [Axis]| OpDesc {
            name,
            kind: OpKind::Elementwise { elems: 8, extra_input: false },
            tile_axes: axes,
            micro_launches: 1,
        };
        // Token|Head|Token fused into one region: both adjacencies break.
        let chain = [
            op("a", &[Axis::Token]),
            op("b", &[Axis::Head]),
            op("c", &[Axis::Token]),
        ];
        let errs = validate(&chain, &FusionPlan { regions: vec![(0, 3)] });
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(matches!(errs[0], FusionError::NoSharedAxis { left: 0, right: 1, .. }));
        assert!(matches!(errs[1], FusionError::NoSharedAxis { left: 1, right: 2, .. }));
        // A partition defect is reported alone.
        let gap = FusionPlan { regions: vec![(0, 5), (6, 12)] };
        assert_eq!(validate(&ops(), &gap), vec![FusionError::BadPartition]);
    }

    #[test]
    fn eager_launch_counts_exceed_fused() {
        let ops = ops();
        let fused = fuse(&ops, &FusionPlan::unfused(ops.len()), DType::Fp16).unwrap();
        let eager: usize = fused.iter().map(|k| k.eager_launches).sum();
        let opt: usize = fused.iter().map(|k| k.launches).sum();
        assert!(eager > 2 * opt, "eager {eager} opt {opt}");
    }
}
