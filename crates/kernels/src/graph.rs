//! Kernel IR: the operator list of a transformer layer annotated with
//! iteration-space tiling axes and resource costs.
//!
//! Deep-Fusion (Sec. III-B) reasons about *tiles*: "Deep-Fusion tiles the
//! computation-space along dimensions of the iteration space which incur no
//! cross-tile data-dependencies ... two operators can be fused if each tile
//! of the second operator depends on exactly one output tile of the first."
//! Each [`OpDesc`] therefore declares the axes along which it can be tiled
//! without cross-tile dependencies; [`crate::fusion`] checks that adjacent
//! ops in a fusion region share such an axis.

use crate::cost::KernelCost;
use dsi_sim::hw::DType;
use serde::Serialize;

/// Iteration-space axes a kernel can be tiled along without cross-tile data
/// dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Axis {
    /// One tile per token (row of the activation matrix). Layer-norm's
    /// reductions are *within* a token, so it tiles here (Sec. III-B).
    Token,
    /// One tile per slice of output features (the GEMM output-dimension
    /// tiling of Sec. III-C1).
    OutputCol,
    /// One tile per attention head.
    Head,
}

/// What an operator computes, with enough shape information to derive its
/// cost.
#[derive(Debug, Clone, Copy, Serialize)]
pub enum OpKind {
    /// `[m, k] × [k, n]` GEMM against resident weights of `weight_dtype`.
    Gemm {
        m: usize,
        k: usize,
        n: usize,
        weight_dtype: DType,
    },
    /// Streaming element-wise op over `elems` activations (bias add, GeLU,
    /// residual). `extra_input` marks a second streamed operand (the
    /// residual), which stays an external read even under fusion.
    Elementwise { elems: usize, extra_input: bool },
    /// Row-wise reduction + normalization over `rows × cols` (layer-norm,
    /// standalone softmax).
    Reduction { rows: usize, cols: usize },
    /// Pure data-layout transform over `elems` activations (head
    /// transposition).
    DataLayout { elems: usize },
    /// Fused multi-head attention for `batch` sequences: `t_new` query
    /// tokens each attending to `t_ctx` context tokens (KV cache included).
    Attention {
        batch: usize,
        heads: usize,
        t_new: usize,
        t_ctx: usize,
        head_dim: usize,
    },
}

/// One operator of a layer's dataflow.
#[derive(Debug, Clone, Serialize)]
pub struct OpDesc {
    pub name: &'static str,
    pub kind: OpKind,
    /// Axes with no cross-tile dependencies (fusion legality).
    pub tile_axes: &'static [Axis],
    /// Kernel launches this op costs when executed by an eager framework
    /// (PyTorch decomposes layer-norm into mean/var/normalize/affine, etc.).
    /// Optimized runtimes pay 1 per fused region instead.
    pub micro_launches: usize,
}

impl OpDesc {
    /// Resource cost of this op executed standalone with activations of
    /// `act_dtype`.
    pub fn cost(&self, act_dtype: DType) -> KernelCost {
        let ab = act_dtype.bytes() as f64;
        match self.kind {
            OpKind::Gemm {
                m,
                k,
                n,
                weight_dtype,
            } => KernelCost {
                flops: 2.0 * m as f64 * k as f64 * n as f64,
                weight_bytes: k as f64 * n as f64 * weight_dtype.bytes() as f64,
                act_read: m as f64 * k as f64 * ab,
                act_write: m as f64 * n as f64 * ab,
            },
            OpKind::Elementwise { elems, extra_input } => KernelCost {
                flops: 4.0 * elems as f64,
                weight_bytes: 0.0,
                act_read: elems as f64 * ab * if extra_input { 2.0 } else { 1.0 },
                act_write: elems as f64 * ab,
            },
            OpKind::Reduction { rows, cols } => {
                let elems = (rows * cols) as f64;
                KernelCost {
                    flops: 8.0 * elems,
                    weight_bytes: 0.0,
                    act_read: elems * ab,
                    act_write: elems * ab,
                }
            }
            OpKind::DataLayout { elems } => KernelCost {
                flops: 0.0,
                weight_bytes: 0.0,
                act_read: elems as f64 * ab,
                act_write: elems as f64 * ab,
            },
            OpKind::Attention {
                batch,
                heads,
                t_new,
                t_ctx,
                head_dim,
            } => {
                let h = (heads * head_dim) as f64;
                let (b, tn, tc) = (batch as f64, t_new as f64, t_ctx as f64);
                KernelCost {
                    // Q·Kᵀ and P·V, per head.
                    flops: 4.0 * b * heads as f64 * tn * tc * head_dim as f64,
                    weight_bytes: 0.0,
                    // Read Q for new tokens plus K and V for the whole
                    // context (this is where the KV cache's bandwidth cost
                    // lives), write the context output.
                    act_read: b * (tn + 2.0 * tc) * h * ab,
                    act_write: b * tn * h * ab,
                }
            }
        }
    }
}

/// Canonical operator list for one GPT-style transformer layer processing
/// `batch` sequences of `t_new` tokens each, with `t_ctx` total context
/// tokens (prompt: `t_ctx == t_new`; generation: `t_ctx = prompt + generated`
/// with `t_new == 1`). Weight GEMMs use `weight_dtype`.
///
/// The list matches Fig. 1(c): layer-norm → QKV GEMM (+bias) → head
/// transposition → attention → output GEMM (+bias+residual) → layer-norm →
/// FF1 GEMM (+GeLU+bias) → FF2 GEMM (+bias+residual).
pub fn transformer_layer_ops(
    batch: usize,
    t_new: usize,
    t_ctx: usize,
    hidden: usize,
    heads: usize,
    weight_dtype: DType,
) -> Vec<OpDesc> {
    assert!(hidden.is_multiple_of(heads));
    let m = batch * t_new;
    let h = hidden;
    let ffn = 4 * hidden;
    use Axis::*;
    vec![
        OpDesc {
            name: "ln_1",
            kind: OpKind::Reduction { rows: m, cols: h },
            tile_axes: &[Token],
            micro_launches: 4,
        },
        OpDesc {
            name: "qkv_gemm",
            kind: OpKind::Gemm {
                m,
                k: h,
                n: 3 * h,
                weight_dtype,
            },
            tile_axes: &[Token, OutputCol],
            micro_launches: 1,
        },
        OpDesc {
            name: "qkv_bias",
            kind: OpKind::Elementwise {
                elems: m * 3 * h,
                extra_input: false,
            },
            tile_axes: &[Token, OutputCol],
            micro_launches: 1,
        },
        OpDesc {
            name: "head_transpose",
            kind: OpKind::DataLayout { elems: m * 3 * h },
            tile_axes: &[Token, Head],
            micro_launches: 3,
        },
        OpDesc {
            name: "attention",
            kind: OpKind::Attention {
                batch,
                heads,
                t_new,
                t_ctx,
                head_dim: h / heads,
            },
            tile_axes: &[Head],
            micro_launches: 6,
        },
        OpDesc {
            name: "attn_out_gemm",
            kind: OpKind::Gemm {
                m,
                k: h,
                n: h,
                weight_dtype,
            },
            tile_axes: &[Token, OutputCol],
            micro_launches: 1,
        },
        OpDesc {
            name: "attn_bias_residual",
            kind: OpKind::Elementwise {
                elems: m * h,
                extra_input: true,
            },
            tile_axes: &[Token, OutputCol],
            micro_launches: 2,
        },
        OpDesc {
            name: "ln_2",
            kind: OpKind::Reduction { rows: m, cols: h },
            tile_axes: &[Token],
            micro_launches: 4,
        },
        OpDesc {
            name: "ff1_gemm",
            kind: OpKind::Gemm {
                m,
                k: h,
                n: ffn,
                weight_dtype,
            },
            tile_axes: &[Token, OutputCol],
            micro_launches: 1,
        },
        OpDesc {
            name: "gelu_bias",
            kind: OpKind::Elementwise {
                elems: m * ffn,
                extra_input: false,
            },
            tile_axes: &[Token, OutputCol],
            micro_launches: 2,
        },
        OpDesc {
            name: "ff2_gemm",
            kind: OpKind::Gemm {
                m,
                k: ffn,
                n: h,
                weight_dtype,
            },
            tile_axes: &[Token, OutputCol],
            micro_launches: 1,
        },
        OpDesc {
            name: "ff2_bias_residual",
            kind: OpKind::Elementwise {
                elems: m * h,
                extra_input: true,
            },
            tile_axes: &[Token, OutputCol],
            micro_launches: 2,
        },
    ]
}

/// Operator list for one layer under `tp`-way tensor slicing (Sec. IV-A):
/// column-parallel QKV/FF1, row-parallel attn-out/FF2, heads split `tp`
/// ways; layer-norms and the post-all-reduce bias/residual adds stay
/// replicated at full width. The two per-layer all-reduces are charged
/// separately by the caller.
pub fn transformer_layer_ops_tp(
    batch: usize,
    t_new: usize,
    t_ctx: usize,
    hidden: usize,
    heads: usize,
    tp: usize,
    weight_dtype: DType,
) -> Vec<OpDesc> {
    assert!(hidden.is_multiple_of(tp) && heads.is_multiple_of(tp), "tp must divide hidden and heads");
    let mut ops = transformer_layer_ops(batch, t_new, t_ctx, hidden, heads, weight_dtype);
    if tp == 1 {
        return ops;
    }
    let m = batch * t_new;
    let h = hidden;
    for op in &mut ops {
        match (op.name, &mut op.kind) {
            ("qkv_gemm", OpKind::Gemm { n, .. }) => *n = 3 * h / tp,
            ("attn_out_gemm", OpKind::Gemm { k, .. }) => *k = h / tp,
            ("ff1_gemm", OpKind::Gemm { n, .. }) => *n = 4 * h / tp,
            ("ff2_gemm", OpKind::Gemm { k, .. }) => *k = 4 * h / tp,
            ("qkv_bias", OpKind::Elementwise { elems, .. }) => *elems = m * 3 * h / tp,
            ("head_transpose", OpKind::DataLayout { elems }) => *elems = m * 3 * h / tp,
            ("gelu_bias", OpKind::Elementwise { elems, .. }) => *elems = m * 4 * h / tp,
            ("attention", OpKind::Attention { heads: hh, .. }) => *hh = heads / tp,
            _ => {}
        }
    }
    ops
}

/// Total weight bytes of one layer at the given precision (the quantity the
/// small-batch roofline reads every token).
pub fn layer_weight_bytes(hidden: usize, weight_dtype: DType) -> f64 {
    let h = hidden as f64;
    // QKV (h×3h) + attn-out (h×h) + FF1 (h×4h) + FF2 (4h×h) = 12 h².
    12.0 * h * h * weight_dtype.bytes() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_has_twelve_ops_and_four_gemms() {
        let ops = transformer_layer_ops(1, 1, 128, 512, 8, DType::Fp16);
        assert_eq!(ops.len(), 12);
        let gemms = ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Gemm { .. }))
            .count();
        assert_eq!(gemms, 4);
    }

    #[test]
    fn weight_bytes_match_op_costs() {
        let hidden = 512;
        let ops = transformer_layer_ops(2, 4, 4, hidden, 8, DType::Fp16);
        let total: f64 = ops.iter().map(|o| o.cost(DType::Fp16).weight_bytes).sum();
        assert_eq!(total, layer_weight_bytes(hidden, DType::Fp16));
    }

    #[test]
    fn int8_weights_halve_layer_bytes() {
        assert_eq!(
            layer_weight_bytes(1024, DType::Int8) * 2.0,
            layer_weight_bytes(1024, DType::Fp16)
        );
    }

    #[test]
    fn generation_attention_reads_full_context() {
        // t_new=1 but t_ctx=1024: KV-cache reads dominate attention traffic.
        let ops = transformer_layer_ops(1, 1, 1024, 512, 8, DType::Fp16);
        let attn = ops.iter().find(|o| o.name == "attention").unwrap();
        let c = attn.cost(DType::Fp16);
        // 2 * t_ctx * hidden * 2 bytes of KV reads, plus q/out.
        assert!(c.act_read > 2.0 * 1024.0 * 512.0 * 2.0);
    }

    #[test]
    fn gemm_flops_scale_with_tokens() {
        let ops1 = transformer_layer_ops(1, 1, 1, 256, 4, DType::Fp16);
        let ops8 = transformer_layer_ops(8, 1, 1, 256, 4, DType::Fp16);
        let f1: f64 = ops1.iter().map(|o| o.cost(DType::Fp16).flops).sum();
        let f8: f64 = ops8.iter().map(|o| o.cost(DType::Fp16).flops).sum();
        assert!(f8 > 7.0 * f1 && f8 < 9.0 * f1);
    }

    #[test]
    fn weight_bytes_independent_of_batch() {
        let ops1 = transformer_layer_ops(1, 1, 1, 256, 4, DType::Fp16);
        let ops8 = transformer_layer_ops(64, 1, 1, 256, 4, DType::Fp16);
        let w1: f64 = ops1.iter().map(|o| o.cost(DType::Fp16).weight_bytes).sum();
        let w8: f64 = ops8.iter().map(|o| o.cost(DType::Fp16).weight_bytes).sum();
        assert_eq!(w1, w8);
    }
}
