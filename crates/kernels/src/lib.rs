//! # dsi-kernels — transformer kernels: functional CPU implementations and
//! GPU cost models
//!
//! Sec. III of the paper introduces inference-optimized transformer kernels
//! built from three techniques: Deep-Fusion (Sec. III-B), the SBI-GeMM
//! skinny-matrix GEMM (Sec. III-C), and CUDA-graph launch elision
//! (Sec. III-D). This crate reproduces all three at two levels:
//!
//! * **Functional** — every operator of a transformer layer (GEMM,
//!   layer-norm, softmax, attention with KV caching, GeLU, bias/residual,
//!   quantize/dequantize, the SBI weight-layout transform) is implemented on
//!   CPU with `rayon` data-parallelism, so the numerical claims (fused
//!   dataflow ≡ unfused, sharded ≡ unsharded, INT8 error bounds) are *tested*,
//!   not assumed.
//! * **Cost** — each operator carries a [`cost::KernelCost`] (FLOPs, bytes
//!   moved, launch class). [`fusion`] partitions a layer's op-list into fused
//!   regions under the paper's tile-dependency legality rule and recomputes
//!   traffic with interior tensors held in registers/shared memory;
//!   [`cost::gemm_policy`] supplies the batch-size-dependent efficiency
//!   curves that distinguish cuBLAS from SBI-GeMM from CUTLASS-INT8.

//!
//! The *executed* counterpart of the fusion planner is the fast functional
//! path: [`blocked`] provides cache-blocked GEMM over panel-packed (pack
//! once, reuse every token) weights with fused epilogues, and [`fused`]
//! provides single-pass kernels for the four Fig. 1(c) small-batch fusion
//! regions, including a zero-allocation streaming-softmax attention. Both
//! write into caller-provided scratch so steady-state decode allocates
//! nothing per token.

// Unsafe hygiene contract (enforced by `cargo xtask unsafe-audit` on the
// comment side): every unsafe *operation* must sit in an explicit `unsafe`
// block with a `// SAFETY:` justification, even inside `unsafe fn`.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod blocked;
pub mod simd;
pub mod cost;
pub mod dispatch;
pub mod exec;
pub mod fused;
pub mod fusion;
pub mod graph;
pub mod ops;
pub mod precision;
pub mod quant;
pub mod sbi;
pub mod tensor;

pub use blocked::{PackedB, PanelWeights};
pub use quant::QuantizedPackedB;
pub use cost::{ExecConfig, GemmImpl, KernelCost};
pub use fusion::{FusedKernel, FusionPlan};
pub use graph::{Axis, OpDesc, OpKind};
pub use tensor::Tensor;
