//! Functional transformer operators (CPU, rayon-parallel).
//!
//! These are the numerical reference for everything else in the
//! reproduction: the tensor-parallel sharding of Sec. IV-A, the MoE routing
//! rewrite of Sec. V-C, and the INT8 path of Sec. III-D are all validated
//! against forward passes built from these operators.

use crate::tensor::Tensor;
use rayon::prelude::*;

/// `a [m,k] × b [k,n] -> [m,n]`, rows in parallel.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul inner-dim mismatch: {k} vs {kb}");
    let mut out = Tensor::zeros(&[m, n]);
    let bd = b.data();
    out.data_mut()
        .par_chunks_mut(n)
        .zip(a.data().par_chunks(k))
        .for_each(|(orow, arow)| {
            // No data-dependent skip on `av == 0.0`: the branch stalls the
            // inner loop on real data (activations are almost never exactly
            // zero) and silently drops NaN/Inf propagation for zero inputs.
            for (kk, &av) in arow.iter().enumerate() {
                let brow = &bd[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        });
    out
}

/// `a [m,k] × bᵀ` where `b` is stored `[n,k]` -> `[m,n]`. Used for attention
/// scores (Q·Kᵀ).
pub fn matmul_transb(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, kb) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul_transb inner-dim mismatch");
    let mut out = Tensor::zeros(&[m, n]);
    out.data_mut()
        .par_chunks_mut(n)
        .zip(a.data().par_chunks(k))
        .for_each(|(orow, arow)| {
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = b.row(j);
                *o = arow.iter().zip(brow).map(|(x, y)| x * y).sum();
            }
        });
    out
}

/// Add a `[n]` bias to every row of a `[m,n]` tensor, in place.
pub fn add_bias(x: &mut Tensor, bias: &Tensor) {
    let n = x.cols();
    assert_eq!(bias.len(), n, "bias length mismatch");
    let b = bias.data();
    x.data_mut().par_chunks_mut(n).for_each(|row| {
        for (v, bv) in row.iter_mut().zip(b) {
            *v += bv;
        }
    });
}

/// Element-wise `x += y` (residual connection).
pub fn add_inplace(x: &mut Tensor, y: &Tensor) {
    assert_eq!(x.shape(), y.shape(), "residual shape mismatch");
    x.data_mut()
        .par_iter_mut()
        .zip(y.data().par_iter())
        .for_each(|(a, b)| *a += b);
}

/// Scale every element in place.
pub fn scale_inplace(x: &mut Tensor, s: f32) {
    x.data_mut().par_iter_mut().for_each(|v| *v *= s);
}

/// GeLU activation (tanh approximation, as in GPT-2/3), in place.
pub fn gelu(x: &mut Tensor) {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    x.data_mut().par_iter_mut().for_each(|v| {
        let u = *v;
        *v = 0.5 * u * (1.0 + (C * (u + 0.044715 * u * u * u)).tanh());
    });
}

/// Layer norm over the trailing dimension with learnable `gamma`/`beta`.
///
/// The paper (Sec. III-B) notes all micro-operations of a layer-norm tile
/// along the token dimension with reductions inside a tile; the per-row loop
/// below is exactly that tile.
pub fn layernorm(x: &Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) -> Tensor {
    let n = x.cols();
    assert_eq!(gamma.len(), n);
    assert_eq!(beta.len(), n);
    let mut out = x.clone();
    let (g, b) = (gamma.data(), beta.data());
    out.data_mut().par_chunks_mut(n).for_each(|row| {
        let mean = row.iter().sum::<f32>() / n as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for (i, v) in row.iter_mut().enumerate() {
            *v = (*v - mean) * inv * g[i] + b[i];
        }
    });
    out
}

/// Row-wise softmax in place.
pub fn softmax_rows(x: &mut Tensor) {
    let n = x.cols();
    x.data_mut().par_chunks_mut(n).for_each(|row| {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    });
}

/// Multi-head scaled-dot-product attention for one sequence.
///
/// * `q` — `[t_new, h]` queries for the tokens being processed this step,
/// * `k`/`v` — `[t_ctx, h]` keys/values for the *full* context so far (the KV
///   cache concatenated with this step's keys/values; Sec. II-d KV-caching),
/// * `n_heads` — attention heads; `h` must divide evenly,
/// * `causal_offset` — index of `q`'s first token in the full context, so
///   query `i` may attend to context positions `<= causal_offset + i`.
pub fn attention(q: &Tensor, k: &Tensor, v: &Tensor, n_heads: usize, causal_offset: usize) -> Tensor {
    let (t_new, h) = (q.rows(), q.cols());
    let t_ctx = k.rows();
    assert_eq!(k.cols(), h);
    assert_eq!(v.rows(), t_ctx);
    assert_eq!(v.cols(), h);
    assert_eq!(h % n_heads, 0, "heads must divide hidden");
    let d = h / n_heads;
    let scale = 1.0 / (d as f32).sqrt();

    let mut out = Tensor::zeros(&[t_new, h]);
    // Parallelize over heads; each head works on its column slice.
    let head_outputs: Vec<(usize, Vec<f32>)> = (0..n_heads)
        .into_par_iter()
        .map(|hd| {
            let lo = hd * d;
            let mut ho = vec![0.0f32; t_new * d];
            for i in 0..t_new {
                let qi = &q.row(i)[lo..lo + d];
                let limit = causal_offset + i; // inclusive highest position
                // Causal masking by iteration bound: scores exist only for
                // the attendable prefix `0..=limit`, which both avoids the
                // masked -inf entries and removes the data-dependent
                // `w == 0.0` skip the weighted sum previously used (that
                // branch also broke NaN propagation: a NaN weight must
                // poison the output, not be skipped).
                let visible = (limit + 1).min(t_ctx);
                let mut scores = vec![0.0f32; visible];
                for (j, s) in scores.iter_mut().enumerate() {
                    let kj = &k.row(j)[lo..lo + d];
                    *s = qi.iter().zip(kj).map(|(a, b)| a * b).sum::<f32>() * scale;
                }
                // softmax over the visible prefix
                let m = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0;
                for s in scores.iter_mut() {
                    *s = (*s - m).exp();
                    sum += *s;
                }
                for s in scores.iter_mut() {
                    *s /= sum;
                }
                // weighted sum of visible values
                let orow = &mut ho[i * d..(i + 1) * d];
                for (j, &w) in scores.iter().enumerate() {
                    let vj = &v.row(j)[lo..lo + d];
                    for (o, &vv) in orow.iter_mut().zip(vj) {
                        *o += w * vv;
                    }
                }
            }
            (hd, ho)
        })
        .collect();
    for (hd, ho) in head_outputs {
        let lo = hd * d;
        for i in 0..t_new {
            out.row_mut(i)[lo..lo + d].copy_from_slice(&ho[i * d..(i + 1) * d]);
        }
    }
    out
}

/// Embedding lookup: `ids` into a `[vocab, h]` table.
pub fn embedding(table: &Tensor, ids: &[usize]) -> Tensor {
    let h = table.cols();
    let mut out = Tensor::zeros(&[ids.len(), h]);
    for (i, &id) in ids.iter().enumerate() {
        assert!(id < table.rows(), "token id {id} out of vocab");
        out.row_mut(i).copy_from_slice(table.row(id));
    }
    out
}

/// Row-wise argmax (greedy decoding), rows in parallel.
pub fn argmax_rows(x: &Tensor) -> Vec<usize> {
    let n = x.cols();
    x.data()
        .par_chunks(n)
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        let i = Tensor::from_vec(&[2, 2], vec![1., 0., 0., 1.]);
        assert!(matmul(&a, &i).allclose(&a, 0.0));
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_transb_matches_matmul() {
        let a = Tensor::randn(&[3, 5], 1.0, 1);
        let b = Tensor::randn(&[5, 4], 1.0, 2);
        // Build bT stored [4,5]
        let mut bt = Tensor::zeros(&[4, 5]);
        for i in 0..5 {
            for j in 0..4 {
                bt.row_mut(j)[i] = b.row(i)[j];
            }
        }
        let c1 = matmul(&a, &b);
        let c2 = matmul_transb(&a, &bt);
        assert!(c1.allclose(&c2, 1e-5));
    }

    #[test]
    fn bias_and_residual() {
        let mut x = Tensor::from_vec(&[2, 2], vec![1., 1., 1., 1.]);
        add_bias(&mut x, &Tensor::from_vec(&[2], vec![1., 2.]));
        assert_eq!(x.data(), &[2., 3., 2., 3.]);
        let y = Tensor::from_vec(&[2, 2], vec![1., 1., 1., 1.]);
        add_inplace(&mut x, &y);
        assert_eq!(x.data(), &[3., 4., 3., 4.]);
    }

    #[test]
    fn gelu_fixed_points() {
        let mut x = Tensor::from_vec(&[3], vec![0.0, 10.0, -10.0]);
        gelu(&mut x);
        assert!(x.data()[0].abs() < 1e-6);
        assert!((x.data()[1] - 10.0).abs() < 1e-3);
        assert!(x.data()[2].abs() < 1e-3);
    }

    #[test]
    fn layernorm_normalizes() {
        let x = Tensor::from_vec(&[1, 4], vec![1., 2., 3., 4.]);
        let g = Tensor::from_vec(&[4], vec![1.; 4]);
        let b = Tensor::from_vec(&[4], vec![0.; 4]);
        let y = layernorm(&x, &g, &b, 1e-5);
        let mean: f32 = y.data().iter().sum::<f32>() / 4.0;
        let var: f32 = y.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut x = Tensor::from_vec(&[2, 3], vec![1., 2., 3., -1., 0., 1.]);
        softmax_rows(&mut x);
        for r in 0..2 {
            let s: f32 = x.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Larger logits get larger probability.
        assert!(x.row(0)[2] > x.row(0)[0]);
    }

    #[test]
    fn attention_single_token_is_value_passthrough() {
        // One token attending only to itself returns exactly its value row.
        let q = Tensor::randn(&[1, 8], 1.0, 3);
        let k = Tensor::randn(&[1, 8], 1.0, 4);
        let v = Tensor::randn(&[1, 8], 1.0, 5);
        let o = attention(&q, &k, &v, 2, 0);
        assert!(o.allclose(&v, 1e-6));
    }

    #[test]
    fn attention_causality() {
        // Token 0 must not see token 1: its output is independent of later
        // context rows.
        let q = Tensor::randn(&[2, 8], 1.0, 6);
        let k = Tensor::randn(&[2, 8], 1.0, 7);
        let v = Tensor::randn(&[2, 8], 1.0, 8);
        let o_full = attention(&q, &k, &v, 2, 0);
        let o_first = attention(&q.row_slice(0, 1), &k.row_slice(0, 1), &v.row_slice(0, 1), 2, 0);
        assert!(o_full.row_slice(0, 1).allclose(&o_first, 1e-6));
    }

    #[test]
    fn attention_uniform_when_keys_equal() {
        // Identical keys -> uniform weights -> output = mean of values.
        let q = Tensor::randn(&[1, 4], 1.0, 9);
        let k = Tensor::from_vec(&[3, 4], vec![1.0; 12]);
        let v = Tensor::from_vec(&[3, 4], {
            let mut d = vec![0.0; 12];
            for (i, x) in d.iter_mut().enumerate() {
                *x = i as f32;
            }
            d
        });
        let o = attention(&q, &k, &v, 1, 2);
        for j in 0..4 {
            let mean = (v.row(0)[j] + v.row(1)[j] + v.row(2)[j]) / 3.0;
            assert!((o.row(0)[j] - mean).abs() < 1e-5);
        }
    }

    #[test]
    fn embedding_and_argmax() {
        let table = Tensor::from_vec(&[3, 2], vec![0., 1., 10., 11., 20., 21.]);
        let e = embedding(&table, &[2, 0]);
        assert_eq!(e.row(0), &[20., 21.]);
        assert_eq!(e.row(1), &[0., 1.]);
        assert_eq!(argmax_rows(&e), vec![1, 1]);
    }
}
