//! Reduced-precision emulation: FP16/BF16 rounding on f32 storage.
//!
//! The cost layer treats FP16 as a bandwidth property; this module supplies
//! the *numerics*: round-to-nearest-even conversion to IEEE binary16 and
//! bfloat16 grids, so tests can measure how much precision the paper's FP16
//! execution actually costs a model (it should be negligible — that's why
//! FP16 inference is standard — and now that's checked, not assumed).

use crate::tensor::Tensor;

/// Round an `f32` to the nearest IEEE-754 binary16 value (returned as f32).
/// Handles normals, subnormals, overflow to infinity, and NaN.
pub fn to_fp16(x: f32) -> f32 {
    let bits = x.to_bits();
    let sign = (bits >> 16) & 0x8000;
    let mut exp = ((bits >> 23) & 0xff) as i32;
    let mut frac = bits & 0x007f_ffff;

    let half_bits: u32 = if exp == 0xff {
        // Inf / NaN.
        sign | 0x7c00 | if frac != 0 { 0x0200 } else { 0 }
    } else {
        exp -= 127 - 15; // rebias
        if exp >= 0x1f {
            sign | 0x7c00 // overflow -> inf
        } else if exp <= 0 {
            // Subnormal half (or zero).
            if exp < -10 {
                sign
            } else {
                frac |= 0x0080_0000; // implicit leading 1
                let shift = (14 - exp) as u32;
                let sub = frac >> shift;
                // Round to nearest even.
                let rem = frac & ((1 << shift) - 1);
                let half = 1u32 << (shift - 1);
                let rounded = match rem.cmp(&half) {
                    std::cmp::Ordering::Greater => sub + 1,
                    std::cmp::Ordering::Equal => sub + (sub & 1),
                    std::cmp::Ordering::Less => sub,
                };
                sign | rounded
            }
        } else {
            // Normal: keep 10 fraction bits, round-to-nearest-even on the
            // remaining 13.
            let rem = frac & 0x1fff;
            let mut out = (exp as u32) << 10 | (frac >> 13);
            match rem.cmp(&0x1000) {
                std::cmp::Ordering::Greater => out += 1,
                std::cmp::Ordering::Equal => out += out & 1,
                std::cmp::Ordering::Less => {}
            }
            sign | out // carry into the exponent is correct by construction
        }
    };

    // Expand back to f32.
    let s = half_bits & 0x8000;
    let e = (half_bits >> 10) & 0x1f;
    let f = half_bits & 0x3ff;
    let out_bits = if e == 0 {
        if f == 0 {
            s << 16
        } else {
            // Subnormal half: renormalize.
            let mut e32 = 127 - 15 + 1;
            let mut f32v = f;
            while f32v & 0x400 == 0 {
                f32v <<= 1;
                e32 -= 1;
            }
            (s << 16) | ((e32 as u32) << 23) | ((f32v & 0x3ff) << 13)
        }
    } else if e == 0x1f {
        (s << 16) | 0x7f80_0000 | (f << 13)
    } else {
        (s << 16) | ((e + 127 - 15) << 23) | (f << 13)
    };
    f32::from_bits(out_bits)
}

/// Round to the nearest bfloat16 value (round-to-nearest-even on the low 16
/// mantissa bits).
pub fn to_bf16(x: f32) -> f32 {
    let bits = x.to_bits();
    if x.is_nan() {
        return x;
    }
    let rem = bits & 0xffff;
    let mut hi = bits >> 16;
    match rem.cmp(&0x8000) {
        std::cmp::Ordering::Greater => hi += 1,
        std::cmp::Ordering::Equal => hi += hi & 1,
        std::cmp::Ordering::Less => {}
    }
    f32::from_bits(hi << 16)
}

/// Round every element of a tensor to the FP16 grid.
pub fn tensor_to_fp16(t: &Tensor) -> Tensor {
    let data = t.data().iter().map(|&x| to_fp16(x)).collect();
    Tensor::from_vec(t.shape(), data)
}

/// Round every element of a tensor to the BF16 grid.
pub fn tensor_to_bf16(t: &Tensor) -> Tensor {
    let data = t.data().iter().map(|&x| to_bf16(x)).collect();
    Tensor::from_vec(t.shape(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_survive() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25] {
            assert_eq!(to_fp16(v), v, "{v} should be exactly representable");
        }
    }

    #[test]
    fn fp16_relative_error_bounded() {
        // Normal range: relative error ≤ 2^-11.
        let mut x = 1e-3f32;
        while x < 6e4 {
            let r = to_fp16(x);
            assert!(
                ((r - x) / x).abs() <= 1.0 / 2048.0 + 1e-7,
                "x={x} rounded to {r}"
            );
            x *= 1.37;
        }
    }

    #[test]
    fn fp16_overflow_to_infinity() {
        assert!(to_fp16(1e6).is_infinite());
        assert!(to_fp16(-1e6).is_infinite() && to_fp16(-1e6) < 0.0);
        // Largest half value survives.
        assert_eq!(to_fp16(65504.0), 65504.0);
    }

    #[test]
    fn fp16_subnormals() {
        // Smallest positive half subnormal ≈ 5.96e-8.
        let tiny = 5.9604645e-8f32;
        assert_eq!(to_fp16(tiny), tiny);
        // Far below it flushes to zero.
        assert_eq!(to_fp16(1e-9), 0.0);
    }

    #[test]
    fn fp16_round_to_nearest_even() {
        // 1 + 2^-11 is exactly between 1.0 and 1+2^-10: rounds to even (1.0).
        let x = 1.0 + 2f32.powi(-11);
        assert_eq!(to_fp16(x), 1.0);
        // 1 + 3·2^-11 sits exactly between mantissa 1 (odd) and mantissa 2
        // (even) — ties-to-even picks the even neighbor 1 + 2^-9.
        let y = 1.0 + 3.0 * 2f32.powi(-11);
        assert_eq!(to_fp16(y), 1.0 + 2f32.powi(-9));
    }

    #[test]
    fn bf16_preserves_range_loses_precision() {
        // Huge values stay finite (unlike FP16) — BF16 keeps the f32
        // exponent range.
        assert!(to_bf16(1e38).is_finite());
        assert!(to_fp16(1e38).is_infinite());
        // But the mantissa is truncated to 7 bits.
        let x = 1.0 + 2f32.powi(-9);
        assert!((to_bf16(x) - x).abs() > 0.0, "bf16 must drop low mantissa bits");
        // Relative error bound ~2^-8.
        let v = std::f32::consts::PI;
        assert!(((to_bf16(v) - v) / v).abs() <= 1.0 / 256.0);
    }

    #[test]
    fn idempotent() {
        for v in [std::f32::consts::PI, -0.007, 123.456] {
            let once = to_fp16(v);
            assert_eq!(to_fp16(once), once);
            let once = to_bf16(v);
            assert_eq!(to_bf16(once), once);
        }
    }

    #[test]
    fn tensor_rounding_elementwise() {
        let t = Tensor::randn(&[4, 4], 1.0, 1);
        let h = tensor_to_fp16(&t);
        for (a, b) in t.data().iter().zip(h.data()) {
            assert_eq!(*b, to_fp16(*a));
        }
        assert!(t.max_abs_diff(&h) < 1e-3);
    }
}
