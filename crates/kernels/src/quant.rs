//! INT8 weight quantization (Sec. III-D).
//!
//! The paper's INT8 path quantizes GEMM weights to 8 bits (halving the bytes
//! the memory-bandwidth-bound small-batch GEMMs must read, and unlocking the
//! 2× INT8 tensor-core peak at large batch). We implement symmetric
//! group-wise quantization: each group of `group_size` consecutive weights
//! along the input dimension shares one `f32` scale, chosen so the group's
//! max-abs value maps to 127.

use crate::blocked::{Epilogue, PanelWeights, PANEL};
use crate::ops;
use crate::tensor::Tensor;

/// An INT8-quantized matrix with group-wise scales.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    /// Original shape `[k, n]`.
    pub shape: [usize; 2],
    /// Quantized values, row-major, same layout as the source.
    pub q: Vec<i8>,
    /// One scale per (row-group, column): `scales[g * n + j]`.
    pub scales: Vec<f32>,
    /// Rows per quantization group.
    pub group_size: usize,
}

impl QuantizedMatrix {
    /// Quantize a `[k, n]` weight matrix with `group_size` rows per group.
    pub fn quantize(w: &Tensor, group_size: usize) -> Self {
        let (k, n) = (w.rows(), w.cols());
        assert!(group_size > 0);
        let n_groups = k.div_ceil(group_size);
        let mut scales = vec![0.0f32; n_groups * n];
        let mut q = vec![0i8; k * n];
        for g in 0..n_groups {
            let lo = g * group_size;
            let hi = (lo + group_size).min(k);
            for j in 0..n {
                let mut maxabs = 0.0f32;
                for r in lo..hi {
                    maxabs = maxabs.max(w.row(r)[j].abs());
                }
                let scale = if maxabs == 0.0 { 1.0 } else { maxabs / 127.0 };
                scales[g * n + j] = scale;
                for r in lo..hi {
                    let v = (w.row(r)[j] / scale).round();
                    q[r * n + j] = v.clamp(-127.0, 127.0) as i8;
                }
            }
        }
        QuantizedMatrix {
            shape: [k, n],
            q,
            scales,
            group_size,
        }
    }

    /// Reconstruct the `f32` matrix.
    pub fn dequantize(&self) -> Tensor {
        let [k, n] = self.shape;
        let mut out = Tensor::zeros(&[k, n]);
        for r in 0..k {
            let g = r / self.group_size;
            let row = out.row_mut(r);
            for (j, o) in row.iter_mut().enumerate() {
                *o = self.q[r * n + j] as f32 * self.scales[g * n + j];
            }
        }
        out
    }

    /// The worst-case absolute reconstruction error of any element: half a
    /// quantization step, i.e. `scale / 2`, per group/column.
    pub fn max_error_bound(&self) -> f32 {
        self.scales.iter().copied().fold(0.0, f32::max) / 2.0 + f32::EPSILON
    }

    /// Bytes of the quantized representation (values + scales); used by the
    /// cost model to credit the 2× weight-read reduction.
    pub fn storage_bytes(&self) -> usize {
        self.q.len() + self.scales.len() * 4
    }
}

/// `x [m,k] × dequant(wq) [k,n]`: the INT8 GEMM of Sec. III-D with the
/// dequantization epilogue fused (we dequantize on the fly rather than
/// materializing the f32 weights).
///
/// This is the **portable oracle** for the AVX2 dequant-in-register kernels
/// in [`QuantizedPackedB`]: group-blocked so the scale row is resolved once
/// per group (not recomputed per element, as the old saxpy form did), with
/// the per-term operation order `x * (q as f32 * scale)` — two roundings,
/// plain mul then add — and a strictly sequential k-accumulation per output
/// element. The AVX kernels perform the *same* three roundings in the same
/// order, so oracle and kernel are bit-exact equals, not approximations
/// (enforced by proptest). Deliberately no `x == 0.0` skip: the kernels
/// don't skip, and `-0.0 + 0.0` normalization would otherwise diverge.
pub fn matmul_quantized(x: &Tensor, wq: &QuantizedMatrix) -> Tensor {
    let [k, n] = wq.shape;
    assert_eq!(x.cols(), k, "quantized matmul inner-dim mismatch");
    let m = x.rows();
    let n_groups = k.div_ceil(wq.group_size);
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        let xi = x.row(i);
        let orow = out.row_mut(i);
        for g in 0..n_groups {
            let lo = g * wq.group_size;
            let hi = (lo + wq.group_size).min(k);
            let srow = &wq.scales[g * n..(g + 1) * n];
            for (r, &xv) in xi.iter().enumerate().take(hi).skip(lo) {
                let qrow = &wq.q[r * n..(r + 1) * n];
                for ((o, &qv), &s) in orow.iter_mut().zip(qrow).zip(srow) {
                    *o += xv * (qv as f32 * s);
                }
            }
        }
    }
    out
}

/// An INT8 weight matrix repacked into [`PANEL`]-column panels for the
/// executed fast path, with the group scales panel-packed alongside
/// (`scales[jp * n_groups * PANEL + g * PANEL + jr]`).
///
/// The GEMM dequantizes **in registers**: 8 INT8 lanes are widened with
/// `_mm256_cvtepi8_epi32`, converted via `_mm256_cvtepi32_ps`, and
/// multiplied by the group's scale register — the FP32 weight row never
/// exists in memory, so the decode loop streams ~¼ the weight bytes of the
/// FP32 path (Sec. III-D's bandwidth argument executed on CPU). Padded tail
/// columns store `q == 0`, `scale == 0.0` and are never written back.
#[derive(Debug, Clone)]
pub struct QuantizedPackedB {
    k: usize,
    n: usize,
    group_size: usize,
    n_groups: usize,
    q: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedPackedB {
    /// Repack an already-quantized matrix into panel layout (one-time).
    pub fn from_matrix(wq: &QuantizedMatrix) -> Self {
        let [k, n] = wq.shape;
        let n_groups = k.div_ceil(wq.group_size);
        let n_panels = n.div_ceil(PANEL);
        let mut q = vec![0i8; n_panels * k * PANEL];
        let mut scales = vec![0.0f32; n_panels * n_groups * PANEL];
        for jp in 0..n_panels {
            let width = (n - jp * PANEL).min(PANEL);
            for i in 0..k {
                for jr in 0..width {
                    q[jp * k * PANEL + i * PANEL + jr] = wq.q[i * n + jp * PANEL + jr];
                }
            }
            for g in 0..n_groups {
                for jr in 0..width {
                    scales[jp * n_groups * PANEL + g * PANEL + jr] =
                        wq.scales[g * n + jp * PANEL + jr];
                }
            }
        }
        QuantizedPackedB {
            k,
            n,
            group_size: wq.group_size,
            n_groups,
            q,
            scales,
        }
    }

    /// Quantize a `[k, n]` weight matrix and pack it in one step.
    pub fn quantize_pack(w: &Tensor, group_size: usize) -> Self {
        Self::from_matrix(&QuantizedMatrix::quantize(w, group_size))
    }

    /// Quantize a matrix stored transposed (`[n, k]` row-major, e.g. the
    /// tied embedding used for the logits projection); groups still run
    /// along the input dimension `k`.
    pub fn quantize_pack_pre_transposed(bt: &Tensor, group_size: usize) -> Self {
        let (n, k) = (bt.rows(), bt.cols());
        let btd = bt.data();
        let mut w = Tensor::zeros(&[k, n]);
        for i in 0..k {
            let row = w.row_mut(i);
            for (j, o) in row.iter_mut().enumerate() {
                *o = btd[j * k + i];
            }
        }
        Self::quantize_pack(&w, group_size)
    }

    pub fn group_size(&self) -> usize {
        self.group_size
    }
}

/// Portable fallback row kernel over the packed INT8 layout. Performs the
/// identical rounding sequence (`x * (q as f32 * s)`, plain mul/add, group
/// outer, row inner) as both [`matmul_quantized`] and the AVX kernels.
fn gemv_int8_scalar(a: &[f32], b: &QuantizedPackedB, out: &mut [f32]) {
    let (k, n) = (b.k, b.n);
    debug_assert_eq!(a.len(), k);
    debug_assert_eq!(out.len(), n);
    let n_panels = n.div_ceil(PANEL);
    for jp in 0..n_panels {
        let qp = &b.q[jp * k * PANEL..(jp + 1) * k * PANEL];
        let sp = &b.scales[jp * b.n_groups * PANEL..(jp + 1) * b.n_groups * PANEL];
        let mut acc = [0.0f32; PANEL];
        for g in 0..b.n_groups {
            let lo = g * b.group_size;
            let hi = (lo + b.group_size).min(k);
            let srow = &sp[g * PANEL..(g + 1) * PANEL];
            for i in lo..hi {
                let xv = a[i];
                let qrow = &qp[i * PANEL..(i + 1) * PANEL];
                for ((lane, &qv), &s) in acc.iter_mut().zip(qrow).zip(srow) {
                    *lane += xv * (qv as f32 * s);
                }
            }
        }
        let j0 = jp * PANEL;
        let je = (j0 + PANEL).min(n);
        out[j0..je].copy_from_slice(&acc[..je - j0]);
    }
}

#[cfg(target_arch = "x86_64")]
mod avx {
    use super::{QuantizedPackedB, PANEL};
    use std::arch::x86_64::*;

    /// `MR`-row GEMM over panel-packed INT8 weights with dequant in
    /// registers: per 8-column lane group, `q` bytes are widened
    /// (`cvtepi8_epi32` → `cvtepi32_ps`), multiplied by the group-scale
    /// register hoisted outside the group's k-rows, then accumulated with
    /// **separate mul and add** (not FMA): the scalar oracle performs plain
    /// two-rounding ops, and bit-exactness with the oracle is part of the
    /// kernel's contract.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support; `b` must uphold the
    /// `QuantizedPackedB` layout invariants; `a.len() == MR * b.k`;
    /// `out.len() == MR * b.n`; `PANEL % (8 * NR) == 0`.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn gemm_block_int8<const MR: usize, const NR: usize>(
        a: &[f32],
        b: &QuantizedPackedB,
        out: &mut [f32],
    ) {
        let (k, n) = (b.k, b.n);
        let n_panels = n.div_ceil(PANEL);
        debug_assert_eq!(a.len(), MR * k);
        debug_assert_eq!(out.len(), MR * n);
        debug_assert_eq!(b.q.len(), n_panels * k * PANEL);
        debug_assert_eq!(b.scales.len(), n_panels * b.n_groups * PANEL);
        debug_assert_eq!(PANEL % (8 * NR), 0);
        for jp in 0..n_panels {
            // SAFETY: `jp < n_panels` with the two length equalities above
            // keeps both panel bases in bounds.
            let (qp, sp) = unsafe {
                (
                    b.q.as_ptr().add(jp * k * PANEL),
                    b.scales.as_ptr().add(jp * b.n_groups * PANEL),
                )
            };
            for cg in 0..PANEL / (8 * NR) {
                let base = cg * 8 * NR;
                let mut acc = [[_mm256_setzero_ps(); NR]; MR];
                for g in 0..b.n_groups {
                    let lo = g * b.group_size;
                    let hi = (lo + b.group_size).min(k);
                    // Group scales: NR registers alive for the whole group.
                    let mut sv = [_mm256_setzero_ps(); NR];
                    for (t, svt) in sv.iter_mut().enumerate() {
                        // SAFETY: `g < n_groups`, `base + 8t + 8 <= PANEL`
                        // keep the load inside scale panel `jp`.
                        *svt = unsafe { _mm256_loadu_ps(sp.add(g * PANEL + base + 8 * t)) };
                    }
                    for i in lo..hi {
                        // SAFETY: `i < k`, `base + 8t + 8 <= PANEL` keep the
                        // 8-byte INT8 loads inside q-panel `jp`; `r * k + i
                        // < MR * k == a.len()` bounds the broadcasts.
                        unsafe {
                            let qrow = qp.add(i * PANEL + base);
                            for (t, svt) in sv.iter().enumerate() {
                                // Dequantize 8 lanes in registers: i8 → i32
                                // → f32 → × scale. No FP32 weight memory.
                                let qi = _mm_loadl_epi64(qrow.add(8 * t) as *const __m128i);
                                let qf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(qi));
                                let w = _mm256_mul_ps(qf, *svt);
                                for (r, accr) in acc.iter_mut().enumerate() {
                                    let av = _mm256_set1_ps(*a.get_unchecked(r * k + i));
                                    accr[t] = _mm256_add_ps(accr[t], _mm256_mul_ps(av, w));
                                }
                            }
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    for (t, at) in accr.iter().enumerate() {
                        let j0 = jp * PANEL + base + 8 * t;
                        if j0 + 8 <= n {
                            // SAFETY: `r < MR` and `j0 + 8 <= n` keep the
                            // store inside row `r` of `out`.
                            unsafe { _mm256_storeu_ps(out.as_mut_ptr().add(r * n + j0), *at) };
                        } else if j0 < n {
                            let mut tmp = [0.0f32; 8];
                            // SAFETY: `tmp` is exactly 8 floats.
                            unsafe { _mm256_storeu_ps(tmp.as_mut_ptr(), *at) };
                            out[r * n + j0..r * n + n].copy_from_slice(&tmp[..n - j0]);
                        }
                    }
                }
            }
        }
    }

    /// Runtime-`mr` front end; `mr` must be a dispatch candidate.
    ///
    /// # Safety
    /// Same contract as [`gemm_block_int8`] with `MR == mr`.
    pub unsafe fn gemm_rows_int8(a: &[f32], mr: usize, b: &QuantizedPackedB, out: &mut [f32]) {
        // SAFETY: forwarded caller contract; each arm fixes MR == mr with an
        // NR that keeps MR*NR acc + NR scale + 2 temps within 16 YMM regs
        // (except the deliberately-spilling MR=16 candidate).
        unsafe {
            match mr {
                1 => gemm_block_int8::<1, 4>(a, b, out),
                2 => gemm_block_int8::<2, 4>(a, b, out),
                4 => gemm_block_int8::<4, 2>(a, b, out),
                8 => gemm_block_int8::<8, 1>(a, b, out),
                16 => gemm_block_int8::<16, 1>(a, b, out),
                _ => unreachable!("unsupported microkernel row count {mr}"),
            }
        }
    }
}

/// Dispatch-driven row-blocked GEMM over INT8 panels (mirror of
/// `blocked::gemm_f32_with`).
pub(crate) fn gemm_int8_with(
    a: &[f32],
    m: usize,
    b: &QuantizedPackedB,
    out: &mut [f32],
    ep: Epilogue<'_>,
    force_mr: Option<usize>,
) {
    let (k, n) = (b.k, b.n);
    assert_eq!(a.len(), m * k, "int8 gemm: lhs size mismatch");
    assert_eq!(out.len(), m * n, "int8 gemm: out size mismatch");
    #[cfg(target_arch = "x86_64")]
    let use_avx = crate::simd::avx2_fma();
    #[cfg(not(target_arch = "x86_64"))]
    let use_avx = false;
    let mut r = 0;
    while r < m {
        let rem = m - r;
        let mr = if use_avx {
            match force_mr {
                Some(c) => crate::dispatch::largest_candidate_le(c.min(rem)),
                None => crate::dispatch::mr_for(rem, crate::dispatch::GemmDtype::Int8),
            }
        } else {
            1
        };
        let ablk = &a[r * k..(r + mr) * k];
        let oblk = &mut out[r * n..(r + mr) * n];
        if use_avx {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `use_avx` verified AVX2+FMA; layout invariants upheld
            // by `QuantizedPackedB` construction; block sizes by the asserts
            // above.
            unsafe {
                avx::gemm_rows_int8(ablk, mr, b, oblk)
            };
        } else {
            gemv_int8_scalar(ablk, b, oblk);
        }
        crate::blocked::apply_epilogue_rows(out, n, r, mr, ep);
        r += mr;
    }
}

impl PanelWeights for QuantizedPackedB {
    fn k(&self) -> usize {
        self.k
    }
    fn n(&self) -> usize {
        self.n
    }
    fn storage_bytes(&self) -> usize {
        self.q.len() + self.scales.len() * std::mem::size_of::<f32>()
    }
    fn gemm(&self, a: &[f32], m: usize, out: &mut [f32], ep: Epilogue<'_>) {
        gemm_int8_with(a, m, self, out, ep, None);
    }
}

/// Relative Frobenius-norm error between an f32 GEMM and its INT8
/// counterpart; the quality metric the INT8 claims rest on.
pub fn quantized_gemm_rel_error(x: &Tensor, w: &Tensor, group_size: usize) -> f32 {
    let exact = ops::matmul(x, w);
    let wq = QuantizedMatrix::quantize(w, group_size);
    let approx = matmul_quantized(x, &wq);
    let num: f32 = exact
        .data()
        .iter()
        .zip(approx.data())
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    let den: f32 = exact.data().iter().map(|a| a * a).sum();
    if den == 0.0 {
        0.0
    } else {
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_bounded() {
        let w = Tensor::randn(&[16, 8], 0.5, 11);
        let q = QuantizedMatrix::quantize(&w, 4);
        let d = q.dequantize();
        let bound = q.max_error_bound();
        assert!(w.max_abs_diff(&d) <= bound, "err {} bound {}", w.max_abs_diff(&d), bound);
    }

    #[test]
    fn zero_matrix_quantizes_exactly() {
        let w = Tensor::zeros(&[4, 4]);
        let q = QuantizedMatrix::quantize(&w, 2);
        assert!(q.dequantize().allclose(&w, 0.0));
    }

    #[test]
    fn max_values_map_to_127() {
        let w = Tensor::from_vec(&[2, 1], vec![2.0, -2.0]);
        let q = QuantizedMatrix::quantize(&w, 2);
        assert_eq!(q.q[0], 127);
        assert_eq!(q.q[1], -127);
    }

    #[test]
    fn storage_halves_vs_fp16() {
        let w = Tensor::randn(&[128, 128], 0.1, 3);
        let q = QuantizedMatrix::quantize(&w, 64);
        let fp16_bytes = w.len() * 2;
        // INT8 + scale overhead must still be well under FP16.
        assert!(q.storage_bytes() < fp16_bytes * 6 / 10);
    }

    #[test]
    fn quantized_gemm_small_error() {
        let x = Tensor::randn(&[4, 32], 1.0, 21);
        let w = Tensor::randn(&[32, 16], 0.2, 22);
        let err = quantized_gemm_rel_error(&x, &w, 8);
        assert!(err < 0.02, "relative error too high: {err}");
    }

    #[test]
    fn smaller_groups_reduce_error() {
        let x = Tensor::randn(&[4, 64], 1.0, 31);
        // Heavy-tailed weights: one large outlier per column region.
        let mut w = Tensor::randn(&[64, 16], 0.1, 32);
        for j in 0..16 {
            w.row_mut(0)[j] = 5.0;
        }
        let coarse = quantized_gemm_rel_error(&x, &w, 64);
        let fine = quantized_gemm_rel_error(&x, &w, 8);
        assert!(fine < coarse, "fine {fine} coarse {coarse}");
    }

    #[test]
    fn ragged_last_group_handled() {
        let w = Tensor::randn(&[10, 4], 0.5, 41);
        let q = QuantizedMatrix::quantize(&w, 4); // groups of 4,4,2
        assert!(w.max_abs_diff(&q.dequantize()) <= q.max_error_bound());
    }

    #[test]
    fn oracle_matches_dequantized_gemm() {
        // The restructured group-blocked oracle must still compute the same
        // product (allclose; op-order differs from a dense f32 GEMM).
        let x = Tensor::randn(&[3, 40], 1.0, 51);
        let w = Tensor::randn(&[40, 21], 0.3, 52);
        let wq = QuantizedMatrix::quantize(&w, 16);
        let want = ops::matmul(&x, &wq.dequantize());
        let got = matmul_quantized(&x, &wq);
        assert!(got.allclose(&want, 1e-4), "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn packed_int8_bit_exact_with_oracle() {
        // Every microkernel (scalar fallback, every forced MR, and the
        // measured dispatch) performs the identical rounding sequence as the
        // portable oracle — bit-exact, not allclose.
        for (m, k, n, gs) in [
            (1, 32, 16, 8),
            (3, 48, 77, 16),
            (8, 33, 40, 7),
            (16, 64, 101, 32),
            (5, 20, 37, 64), // group larger than k: single ragged group
        ] {
            let x = Tensor::randn(&[m, k], 1.0, 61);
            let w = Tensor::randn(&[k, n], 0.4, 62);
            let wq = QuantizedMatrix::quantize(&w, gs);
            let want = matmul_quantized(&x, &wq);
            let qb = QuantizedPackedB::from_matrix(&wq);
            let mut scalar = vec![0.0f32; m * n];
            for i in 0..m {
                gemv_int8_scalar(&x.data()[i * k..(i + 1) * k], &qb, &mut scalar[i * n..(i + 1) * n]);
            }
            assert_eq!(scalar, want.data(), "scalar m={m} k={k} n={n} gs={gs}");
            for force in [1, 2, 4, 8, 16] {
                let mut got = vec![0.0f32; m * n];
                gemm_int8_with(x.data(), m, &qb, &mut got, Epilogue::None, Some(force));
                assert_eq!(got, want.data(), "m={m} k={k} n={n} gs={gs} force={force}");
            }
            let mut got = vec![0.0f32; m * n];
            gemm_int8_with(x.data(), m, &qb, &mut got, Epilogue::None, None);
            assert_eq!(got, want.data(), "m={m} k={k} n={n} gs={gs} dispatch");
        }
    }

    #[test]
    fn pre_transposed_quantize_matches_direct() {
        let w = Tensor::randn(&[12, 9], 0.5, 71);
        let mut wt = Tensor::zeros(&[9, 12]);
        for i in 0..12 {
            for j in 0..9 {
                wt.row_mut(j)[i] = w.row(i)[j];
            }
        }
        let x = Tensor::randn(&[2, 12], 1.0, 72);
        let a = crate::blocked::matmul_packed(&x, &QuantizedPackedB::quantize_pack(&w, 4));
        let b = crate::blocked::matmul_packed(&x, &QuantizedPackedB::quantize_pack_pre_transposed(&wt, 4));
        assert!(a.allclose(&b, 0.0));
    }
}
