//! INT8 weight quantization (Sec. III-D).
//!
//! The paper's INT8 path quantizes GEMM weights to 8 bits (halving the bytes
//! the memory-bandwidth-bound small-batch GEMMs must read, and unlocking the
//! 2× INT8 tensor-core peak at large batch). We implement symmetric
//! group-wise quantization: each group of `group_size` consecutive weights
//! along the input dimension shares one `f32` scale, chosen so the group's
//! max-abs value maps to 127.

use crate::ops;
use crate::tensor::Tensor;

/// An INT8-quantized matrix with group-wise scales.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    /// Original shape `[k, n]`.
    pub shape: [usize; 2],
    /// Quantized values, row-major, same layout as the source.
    pub q: Vec<i8>,
    /// One scale per (row-group, column): `scales[g * n + j]`.
    pub scales: Vec<f32>,
    /// Rows per quantization group.
    pub group_size: usize,
}

impl QuantizedMatrix {
    /// Quantize a `[k, n]` weight matrix with `group_size` rows per group.
    pub fn quantize(w: &Tensor, group_size: usize) -> Self {
        let (k, n) = (w.rows(), w.cols());
        assert!(group_size > 0);
        let n_groups = k.div_ceil(group_size);
        let mut scales = vec![0.0f32; n_groups * n];
        let mut q = vec![0i8; k * n];
        for g in 0..n_groups {
            let lo = g * group_size;
            let hi = (lo + group_size).min(k);
            for j in 0..n {
                let mut maxabs = 0.0f32;
                for r in lo..hi {
                    maxabs = maxabs.max(w.row(r)[j].abs());
                }
                let scale = if maxabs == 0.0 { 1.0 } else { maxabs / 127.0 };
                scales[g * n + j] = scale;
                for r in lo..hi {
                    let v = (w.row(r)[j] / scale).round();
                    q[r * n + j] = v.clamp(-127.0, 127.0) as i8;
                }
            }
        }
        QuantizedMatrix {
            shape: [k, n],
            q,
            scales,
            group_size,
        }
    }

    /// Reconstruct the `f32` matrix.
    pub fn dequantize(&self) -> Tensor {
        let [k, n] = self.shape;
        let mut out = Tensor::zeros(&[k, n]);
        for r in 0..k {
            let g = r / self.group_size;
            let row = out.row_mut(r);
            for (j, o) in row.iter_mut().enumerate() {
                *o = self.q[r * n + j] as f32 * self.scales[g * n + j];
            }
        }
        out
    }

    /// The worst-case absolute reconstruction error of any element: half a
    /// quantization step, i.e. `scale / 2`, per group/column.
    pub fn max_error_bound(&self) -> f32 {
        self.scales.iter().copied().fold(0.0, f32::max) / 2.0 + f32::EPSILON
    }

    /// Bytes of the quantized representation (values + scales); used by the
    /// cost model to credit the 2× weight-read reduction.
    pub fn storage_bytes(&self) -> usize {
        self.q.len() + self.scales.len() * 4
    }
}

/// `x [m,k] × dequant(wq) [k,n]`: the INT8 GEMM of Sec. III-D with the
/// dequantization epilogue fused (we dequantize on the fly rather than
/// materializing the f32 weights).
pub fn matmul_quantized(x: &Tensor, wq: &QuantizedMatrix) -> Tensor {
    let [k, n] = wq.shape;
    assert_eq!(x.cols(), k, "quantized matmul inner-dim mismatch");
    let m = x.rows();
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        let xi = x.row(i);
        let orow = out.row_mut(i);
        for (r, &xv) in xi.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let g = r / wq.group_size;
            let qrow = &wq.q[r * n..(r + 1) * n];
            let srow = &wq.scales[g * n..(g + 1) * n];
            for ((o, &qv), &s) in orow.iter_mut().zip(qrow).zip(srow) {
                *o += xv * qv as f32 * s;
            }
        }
    }
    out
}

/// Relative Frobenius-norm error between an f32 GEMM and its INT8
/// counterpart; the quality metric the INT8 claims rest on.
pub fn quantized_gemm_rel_error(x: &Tensor, w: &Tensor, group_size: usize) -> f32 {
    let exact = ops::matmul(x, w);
    let wq = QuantizedMatrix::quantize(w, group_size);
    let approx = matmul_quantized(x, &wq);
    let num: f32 = exact
        .data()
        .iter()
        .zip(approx.data())
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    let den: f32 = exact.data().iter().map(|a| a * a).sum();
    if den == 0.0 {
        0.0
    } else {
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_bounded() {
        let w = Tensor::randn(&[16, 8], 0.5, 11);
        let q = QuantizedMatrix::quantize(&w, 4);
        let d = q.dequantize();
        let bound = q.max_error_bound();
        assert!(w.max_abs_diff(&d) <= bound, "err {} bound {}", w.max_abs_diff(&d), bound);
    }

    #[test]
    fn zero_matrix_quantizes_exactly() {
        let w = Tensor::zeros(&[4, 4]);
        let q = QuantizedMatrix::quantize(&w, 2);
        assert!(q.dequantize().allclose(&w, 0.0));
    }

    #[test]
    fn max_values_map_to_127() {
        let w = Tensor::from_vec(&[2, 1], vec![2.0, -2.0]);
        let q = QuantizedMatrix::quantize(&w, 2);
        assert_eq!(q.q[0], 127);
        assert_eq!(q.q[1], -127);
    }

    #[test]
    fn storage_halves_vs_fp16() {
        let w = Tensor::randn(&[128, 128], 0.1, 3);
        let q = QuantizedMatrix::quantize(&w, 64);
        let fp16_bytes = w.len() * 2;
        // INT8 + scale overhead must still be well under FP16.
        assert!(q.storage_bytes() < fp16_bytes * 6 / 10);
    }

    #[test]
    fn quantized_gemm_small_error() {
        let x = Tensor::randn(&[4, 32], 1.0, 21);
        let w = Tensor::randn(&[32, 16], 0.2, 22);
        let err = quantized_gemm_rel_error(&x, &w, 8);
        assert!(err < 0.02, "relative error too high: {err}");
    }

    #[test]
    fn smaller_groups_reduce_error() {
        let x = Tensor::randn(&[4, 64], 1.0, 31);
        // Heavy-tailed weights: one large outlier per column region.
        let mut w = Tensor::randn(&[64, 16], 0.1, 32);
        for j in 0..16 {
            w.row_mut(0)[j] = 5.0;
        }
        let coarse = quantized_gemm_rel_error(&x, &w, 64);
        let fine = quantized_gemm_rel_error(&x, &w, 8);
        assert!(fine < coarse, "fine {fine} coarse {coarse}");
    }

    #[test]
    fn ragged_last_group_handled() {
        let w = Tensor::randn(&[10, 4], 0.5, 41);
        let q = QuantizedMatrix::quantize(&w, 4); // groups of 4,4,2
        assert!(w.max_abs_diff(&q.dequantize()) <= q.max_error_bound());
    }
}
