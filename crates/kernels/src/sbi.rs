//! SBI-GeMM: the custom small-batch-inference GEMM of Sec. III-C.
//!
//! Three ideas from the paper are reproduced functionally:
//!
//! 1. **Tiling strategy** (Sec. III-C1): tile the output dimension so the
//!    reduction stays within a tile (one kernel). When the output dimension
//!    is too small to fill the SMs, additionally tile the *input* dimension
//!    and finish with a cross-tile reduction (two kernels). [`SbiPlan`]
//!    makes that choice exactly as described.
//! 2. **Cooperative-group reduction** (Sec. III-C2): each "warp" produces a
//!    partial result for an output tile; a data-layout transpose makes
//!    partials of the same output element contiguous so one warp reduces
//!    them without a shared-memory reduction tree. [`gemm_sbi`] executes
//!    this two-phase structure literally (partials buffer → transpose →
//!    final reduce) so the dataflow is testable.
//! 3. **Full cache-line layout** (Sec. III-C3): the weight matrix is
//!    transposed at init so `M` rows of each column are contiguous, letting
//!    each thread read `M` elements along the input dimension (M=2 for FP16,
//!    4 for INT8). [`SbiLayout`] performs that transform and is verified to
//!    be a bijection.

use crate::tensor::Tensor;
use dsi_sim::hw::DType;
use rayon::prelude::*;

/// CPU analog of the Sec. III-C3 interleave choice: how many activation
/// rows a decode microkernel should amortize one 64-byte weight cache line
/// across, per element width. Smaller elements stream fewer bytes per
/// column, so more rows are needed before the kernel leaves the
/// bandwidth-bound regime (FP16→2, INT8→4 on the paper's 128-byte GPU
/// transactions; halved line size here). [`crate::dispatch`] uses this as
/// the static prior its measurements start from.
pub fn cpu_microkernel_rows(elem_bytes: usize) -> usize {
    (64 / (8 * elem_bytes.max(1))).clamp(1, 8)
}

/// SBI weight layout: `[k, n]` stored so that for each output column `j`,
/// blocks of `m_interleave` consecutive input-rows are contiguous.
#[derive(Debug, Clone)]
pub struct SbiLayout {
    pub k: usize,
    pub n: usize,
    pub m_interleave: usize,
    /// Padded block count along k.
    blocks: usize,
    data: Vec<f32>,
}

impl SbiLayout {
    /// Transform a row-major `[k, n]` weight matrix into SBI layout for the
    /// given data type's interleave factor.
    pub fn from_weights(w: &Tensor, dtype: DType) -> Self {
        let (k, n) = (w.rows(), w.cols());
        let m = dtype.sbi_interleave();
        let blocks = k.div_ceil(m);
        let mut data = vec![0.0f32; blocks * m * n];
        for r in 0..k {
            for j in 0..n {
                let (blk, off) = (r / m, r % m);
                data[(j * blocks + blk) * m + off] = w.row(r)[j];
            }
        }
        SbiLayout {
            k,
            n,
            m_interleave: m,
            blocks,
            data,
        }
    }

    /// Element at logical position `(r, j)` of the original matrix.
    pub fn get(&self, r: usize, j: usize) -> f32 {
        let m = self.m_interleave;
        self.data[(j * self.blocks + r / m) * m + r % m]
    }

    /// Invert the transform (used to prove it is lossless).
    pub fn to_row_major(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.k, self.n]);
        for r in 0..self.k {
            for j in 0..self.n {
                out.row_mut(r)[j] = self.get(r, j);
            }
        }
        out
    }

    /// The contiguous slice a single "thread" reads for column `j`, block
    /// `blk`: exactly `m_interleave` values, i.e. one cache-line-filling read
    /// per warp.
    pub fn block(&self, j: usize, blk: usize) -> &[f32] {
        let m = self.m_interleave;
        &self.data[(j * self.blocks + blk) * m..(j * self.blocks + blk + 1) * m]
    }
}

/// Kernel-count decision of Sec. III-C1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SbiPlan {
    /// Tiles along the output dimension.
    pub output_tiles: usize,
    /// Tiles along the input (reduction) dimension; `> 1` forces a second
    /// reduction kernel.
    pub input_tiles: usize,
}

impl SbiPlan {
    /// Outputs per thread-block tile (64 output elements per tile keeps a
    /// block's warps busy on all modeled parts).
    pub const TILE_N: usize = 64;

    /// Choose tiling for an `[k] × [k,n]` product on a GPU with `sm_count`
    /// SMs. If output tiles alone cannot occupy the SMs ("for small models,
    /// where the output dimension is too small"), split the input dimension
    /// until they do.
    pub fn choose(k: usize, n: usize, sm_count: usize) -> SbiPlan {
        let output_tiles = n.div_ceil(Self::TILE_N).max(1);
        if output_tiles >= sm_count {
            return SbiPlan {
                output_tiles,
                input_tiles: 1,
            };
        }
        let want = sm_count.div_ceil(output_tiles);
        // Each input tile should still be a few cache lines deep.
        let max_split = (k / 256).max(1);
        SbiPlan {
            output_tiles,
            input_tiles: want.min(max_split).max(1),
        }
    }

    pub const fn kernels(&self) -> usize {
        if self.input_tiles > 1 {
            2
        } else {
            1
        }
    }
}

/// Warp width used by the two-phase reduction.
const WARP: usize = 32;

/// SBI GEMM: `x [m,k] × w [k,n] -> [m,n]` where `w` is in [`SbiLayout`].
///
/// The computation follows the kernel structure of Fig. 1(a): per output
/// tile, each of `WARP`-sized chunks of the reduction dimension produces a
/// partial sum ("warp partials"), the partials are transposed so that all
/// partials of one output element are contiguous, and a final pass reduces
/// them. With `plan.input_tiles > 1` the final reduction crosses tile
/// boundaries, modeling the second kernel.
pub fn gemm_sbi(x: &Tensor, w: &SbiLayout, plan: SbiPlan) -> Tensor {
    let (mrows, k) = (x.rows(), x.cols());
    assert_eq!(k, w.k, "gemm_sbi inner-dim mismatch");
    let n = w.n;
    let m = w.m_interleave;
    let mut out = Tensor::zeros(&[mrows, n]);

    // Reduction-dimension chunking: each "warp" covers WARP*m consecutive k.
    let chunk = WARP * m;
    let n_chunks = k.div_ceil(chunk);
    // Partition chunks across input tiles.
    let chunks_per_tile = n_chunks.div_ceil(plan.input_tiles);

    for row in 0..mrows {
        let xr = x.row(row);
        // Phase 1: per (input-tile, chunk) partial sums per output element.
        // partials[j][c] = partial over chunk c.
        let partials: Vec<Vec<f32>> = (0..n)
            .into_par_iter()
            .map(|j| {
                let mut p = vec![0.0f32; n_chunks];
                for (c, pc) in p.iter_mut().enumerate() {
                    let lo = c * chunk;
                    let hi = (lo + chunk).min(k);
                    let mut acc = 0.0f32;
                    let mut r = lo;
                    while r < hi {
                        let blk = r / m;
                        let b = w.block(j, blk);
                        let take = (hi - r).min(m - (r % m));
                        for t in 0..take {
                            acc += xr[r + t] * b[r % m + t];
                        }
                        r += take;
                    }
                    *pc = acc;
                }
                p
            })
            .collect();
        // Phase 2: the "transpose + cooperative-group reduce". Reduce within
        // each input tile first (the first kernel's epilogue), then across
        // tiles (the second kernel when input_tiles > 1).
        let orow = out.row_mut(row);
        for (j, o) in orow.iter_mut().enumerate() {
            let mut tile_sums = vec![0.0f32; plan.input_tiles];
            for (c, &p) in partials[j].iter().enumerate() {
                tile_sums[(c / chunks_per_tile).min(plan.input_tiles - 1)] += p;
            }
            *o = tile_sums.iter().sum();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul;

    #[test]
    fn layout_roundtrip_fp16() {
        let w = Tensor::randn(&[64, 48], 0.3, 5);
        let l = SbiLayout::from_weights(&w, DType::Fp16);
        assert_eq!(l.m_interleave, 2);
        assert!(l.to_row_major().allclose(&w, 0.0));
    }

    #[test]
    fn layout_roundtrip_int8_interleave() {
        let w = Tensor::randn(&[63, 7], 0.3, 6); // ragged k
        let l = SbiLayout::from_weights(&w, DType::Int8);
        assert_eq!(l.m_interleave, 4);
        assert!(l.to_row_major().allclose(&w, 0.0));
    }

    #[test]
    fn block_is_contiguous_along_k() {
        let w = Tensor::from_vec(&[4, 2], vec![0., 10., 1., 11., 2., 12., 3., 13.]);
        let l = SbiLayout::from_weights(&w, DType::Fp16);
        // Column 0, block 0 holds rows 0 and 1 of column 0.
        assert_eq!(l.block(0, 0), &[0., 1.]);
        assert_eq!(l.block(1, 1), &[12., 13.]);
    }

    #[test]
    fn plan_single_kernel_for_wide_output() {
        // 108 SMs, n = 12288 -> 192 output tiles >= SMs: one kernel.
        let p = SbiPlan::choose(4096, 12288, 108);
        assert_eq!(p.input_tiles, 1);
        assert_eq!(p.kernels(), 1);
    }

    #[test]
    fn plan_two_kernels_for_narrow_output() {
        // Small model: n = 768 -> 12 tiles < 108 SMs: split input dim.
        let p = SbiPlan::choose(3072, 768, 108);
        assert!(p.input_tiles > 1);
        assert_eq!(p.kernels(), 2);
    }

    #[test]
    fn gemm_sbi_matches_reference_one_kernel() {
        let x = Tensor::randn(&[2, 96], 1.0, 7);
        let w = Tensor::randn(&[96, 130], 0.2, 8);
        let l = SbiLayout::from_weights(&w, DType::Fp16);
        let plan = SbiPlan {
            output_tiles: 3,
            input_tiles: 1,
        };
        let got = gemm_sbi(&x, &l, plan);
        assert!(got.allclose(&matmul(&x, &w), 1e-4));
    }

    #[test]
    fn gemm_sbi_matches_reference_two_kernels() {
        let x = Tensor::randn(&[1, 512], 1.0, 9);
        let w = Tensor::randn(&[512, 64], 0.2, 10);
        let l = SbiLayout::from_weights(&w, DType::Fp16);
        let plan = SbiPlan::choose(512, 64, 108);
        assert_eq!(plan.kernels(), 2);
        let got = gemm_sbi(&x, &l, plan);
        assert!(got.allclose(&matmul(&x, &w), 1e-4));
    }

    #[test]
    fn gemm_sbi_int8_layout_matches() {
        let x = Tensor::randn(&[3, 128], 1.0, 11);
        let w = Tensor::randn(&[128, 32], 0.2, 12);
        let l = SbiLayout::from_weights(&w, DType::Int8);
        let plan = SbiPlan::choose(128, 32, 84);
        let got = gemm_sbi(&x, &l, plan);
        assert!(got.allclose(&matmul(&x, &w), 1e-4));
    }
}
