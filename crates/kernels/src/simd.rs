//! Runtime-dispatched SIMD transcendentals for the executed fusion path.
//!
//! The fused epilogues spend most of their time in `tanh` (GeLU) and `exp`
//! (softmax) — on the hidden sizes of the tiny models a single decode token
//! makes thousands of scalar libm calls, which ends up costing more than the
//! GEMMs once those are register-blocked. This module provides 8-wide
//! AVX2+FMA implementations (classic Cephes range-reduction + degree-5
//! polynomial, ~1 ulp for `exp`), selected once at runtime; every entry
//! point falls back to scalar libm so results stay portable.
//!
//! NaN inputs propagate: the range clamp is ordered so an unordered compare
//! keeps the NaN operand, and every downstream step is arithmetic.

/// Whether the AVX2+FMA kernels can run on this CPU (checked once).
#[cfg(target_arch = "x86_64")]
#[inline]
pub(crate) fn avx2_fma() -> bool {
    static AVAIL: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVAIL.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx {
    use std::arch::x86_64::*;

    /// 8-wide `exp(x)` (Cephes `expf`): `n = round(x/ln2)`, degree-5
    /// polynomial on the reduced argument, scale by `2^n` through the
    /// exponent bits.
    ///
    /// # Safety
    /// Requires AVX2+FMA.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn exp_ps(x: __m256) -> __m256 {
        // Clamp to the finite range of f32 exp. Operand order matters: with
        // `x` as the second operand, min/max return the NaN unchanged.
        let x = _mm256_min_ps(_mm256_set1_ps(88.376_26), x);
        let x = _mm256_max_ps(_mm256_set1_ps(-88.376_26), x);
        let n = _mm256_round_ps(
            _mm256_mul_ps(x, _mm256_set1_ps(std::f32::consts::LOG2_E)),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC,
        );
        // r = x - n*ln2, ln2 split in two for extra bits.
        let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(0.693_359_4), x);
        let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(-2.121_944_4e-4), r);
        // e^r ≈ 1 + r + r^2·P(r) on r ∈ [-ln2/2, ln2/2].
        let mut p = _mm256_set1_ps(1.987_569_1e-4);
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.398_199_9e-3));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(8.333_452e-3));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(4.166_579_6e-2));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.666_666_5e-1));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(0.5));
        let r2 = _mm256_mul_ps(r, r);
        let y = _mm256_add_ps(
            _mm256_fmadd_ps(p, r2, r),
            _mm256_set1_ps(1.0),
        );
        // 2^n via exponent-field construction.
        let pow2n = _mm256_castsi256_ps(_mm256_slli_epi32(
            _mm256_add_epi32(_mm256_cvtps_epi32(n), _mm256_set1_epi32(127)),
            23,
        ));
        _mm256_mul_ps(y, pow2n)
    }

    /// 8-wide `tanh(x) = 1 - 2/(e^{2x} + 1)`.
    ///
    /// # Safety
    /// Requires AVX2+FMA.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn tanh_ps(x: __m256) -> __m256 {
        // SAFETY: `exp_ps` requires AVX2+FMA, which this fn's own contract
        // already guarantees.
        let e2x = unsafe { exp_ps(_mm256_add_ps(x, x)) };
        let one = _mm256_set1_ps(1.0);
        _mm256_sub_ps(
            one,
            _mm256_div_ps(_mm256_set1_ps(2.0), _mm256_add_ps(e2x, one)),
        )
    }

    /// 8-wide GeLU (tanh approximation), matching
    /// [`crate::blocked::gelu_scalar`].
    ///
    /// # Safety
    /// Requires AVX2+FMA.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gelu_ps(u: __m256) -> __m256 {
        let c = _mm256_set1_ps(0.797_884_6); // sqrt(2/pi)
        let u3 = _mm256_mul_ps(_mm256_mul_ps(u, u), u);
        let inner = _mm256_mul_ps(c, _mm256_fmadd_ps(_mm256_set1_ps(0.044715), u3, u));
        // SAFETY: `tanh_ps` requires AVX2+FMA, guaranteed by this fn's own
        // contract.
        let t = unsafe { tanh_ps(inner) };
        _mm256_mul_ps(
            _mm256_mul_ps(_mm256_set1_ps(0.5), u),
            _mm256_add_ps(_mm256_set1_ps(1.0), t),
        )
    }

    /// `row[j] = gelu(row[j] + bias[j])` for a full row, 8 lanes at a time
    /// with a scalar tail.
    ///
    /// # Safety
    /// Requires AVX2+FMA; `bias.len() == row.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn bias_gelu_row(row: &mut [f32], bias: &[f32]) {
        let n = row.len();
        debug_assert_eq!(bias.len(), n, "bias/row length mismatch");
        let mut j = 0;
        while j + 8 <= n {
            // SAFETY: `j + 8 <= n == row.len() == bias.len()` bounds both
            // loads and the store; `gelu_ps` requires AVX2+FMA, guaranteed
            // by this fn's own contract.
            unsafe {
                let v = _mm256_add_ps(
                    _mm256_loadu_ps(row.as_ptr().add(j)),
                    _mm256_loadu_ps(bias.as_ptr().add(j)),
                );
                _mm256_storeu_ps(row.as_mut_ptr().add(j), gelu_ps(v));
            }
            j += 8;
        }
        for jj in j..n {
            row[jj] = crate::blocked::gelu_scalar(row[jj] + bias[jj]);
        }
    }
}

/// `row[j] = gelu(row[j] + bias[j])`, vectorized when the CPU allows.
#[inline]
pub fn bias_gelu_row(row: &mut [f32], bias: &[f32]) {
    debug_assert_eq!(row.len(), bias.len());
    #[cfg(target_arch = "x86_64")]
    if avx2_fma() {
        // SAFETY: feature support checked; lengths asserted above.
        unsafe { avx::bias_gelu_row(row, bias) };
        return;
    }
    for (v, &b) in row.iter_mut().zip(bias) {
        *v = crate::blocked::gelu_scalar(*v + b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_gelu_row_matches_scalar() {
        let n = 37; // exercises both the 8-wide body and the scalar tail
        let mut row: Vec<f32> = (0..n).map(|i| (i as f32 - 18.0) * 0.37).collect();
        let bias: Vec<f32> = (0..n).map(|i| (i as f32) * 0.05 - 1.0).collect();
        let want: Vec<f32> = row
            .iter()
            .zip(&bias)
            .map(|(&v, &b)| crate::blocked::gelu_scalar(v + b))
            .collect();
        bias_gelu_row(&mut row, &bias);
        for (g, w) in row.iter().zip(&want) {
            assert!((g - w).abs() <= 2e-6 * (1.0 + w.abs()), "{g} vs {w}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn vector_exp_matches_libm() {
        if !avx2_fma() {
            return;
        }
        use std::arch::x86_64::*;
        for base in [-80.0f32, -10.0, -1.0, -0.01, 0.0, 0.01, 1.0, 10.0, 80.0] {
            let xs: [f32; 8] = std::array::from_fn(|i| base + i as f32 * 0.123);
            let mut out = [0.0f32; 8];
            // SAFETY: avx2_fma() checked above.
            unsafe {
                _mm256_storeu_ps(out.as_mut_ptr(), avx::exp_ps(_mm256_loadu_ps(xs.as_ptr())));
            }
            for (x, got) in xs.iter().zip(out) {
                let want = x.exp();
                assert!(
                    (got - want).abs() <= 2e-6 * (1.0 + want.abs()),
                    "exp({x}) = {got}, want {want}"
                );
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn vector_exp_propagates_nan() {
        if !avx2_fma() {
            return;
        }
        use std::arch::x86_64::*;
        let xs = [f32::NAN, 0.0, 1.0, -1.0, f32::NAN, 2.0, 3.0, 4.0];
        let mut out = [0.0f32; 8];
        // SAFETY: avx2_fma() checked above.
        unsafe {
            _mm256_storeu_ps(out.as_mut_ptr(), avx::exp_ps(_mm256_loadu_ps(xs.as_ptr())));
        }
        assert!(out[0].is_nan() && out[4].is_nan());
        assert!((out[1] - 1.0).abs() < 1e-6);
    }
}
