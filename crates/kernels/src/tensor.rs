//! A minimal dense row-major tensor.
//!
//! Storage is always `f32`; reduced-precision formats (FP16/INT8) are
//! modeled at the cost layer ([`crate::cost`]) and, for INT8, functionally
//! through explicit quantize/dequantize in [`crate::quant`]. This mirrors how
//! the paper's system treats precision: a storage/bandwidth property of the
//! GEMM inputs, not a different algorithm.

use rand::distributions::Distribution;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Dense row-major tensor of `f32`.
///
/// ```
/// use dsi_kernels::tensor::Tensor;
/// use dsi_kernels::ops;
/// let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
/// let id = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
/// assert!(ops::matmul(&a, &id).allclose(&a, 0.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Tensor from existing data; length must match the shape.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {shape:?} does not match data length {}",
            data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Deterministic pseudo-random tensor, N(0, scale²), seeded for
    /// reproducible tests.
    pub fn randn(shape: &[usize], scale: f32, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let normal = rand::distributions::Uniform::new(-1.0f32, 1.0);
        let n: usize = shape.iter().product();
        // Sum of 4 uniforms approximates a normal well enough for init and
        // keeps the dependency surface small.
        let data = (0..n)
            .map(|_| {
                let s: f32 = (0..4).map(|_| normal.sample(&mut rng)).sum();
                s * 0.5 * scale
            })
            .collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret with a new shape of the same element count.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.data.len(),
            "reshape {shape:?} incompatible with {} elements",
            self.data.len()
        );
        self.shape = shape.to_vec();
        self
    }

    /// Number of rows when viewed as a 2-D `[rows, cols]` matrix (all leading
    /// dims folded).
    pub fn rows(&self) -> usize {
        assert!(!self.shape.is_empty());
        self.data.len() / self.shape[self.shape.len() - 1]
    }

    /// Trailing dimension.
    pub fn cols(&self) -> usize {
        *self.shape.last().expect("rank-0 tensor")
    }

    /// Row `i` as a slice (2-D view).
    pub fn row(&self, i: usize) -> &[f32] {
        let c = self.cols();
        &self.data[i * c..(i + 1) * c]
    }

    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let c = self.cols();
        &mut self.data[i * c..(i + 1) * c]
    }

    /// Largest absolute element difference against another tensor.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in comparison");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Element-wise approximate equality.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }

    /// Empty `[0, cols]` tensor with backing storage for `rows_cap` rows
    /// already reserved, so subsequent [`Tensor::push_rows`] calls up to the
    /// capacity never reallocate. This is the allocation contract behind the
    /// amortized KV cache: reserve once at session start, append per token.
    pub fn with_capacity_rows(rows_cap: usize, cols: usize) -> Self {
        Tensor {
            shape: vec![0, cols],
            data: Vec::with_capacity(rows_cap * cols),
        }
    }

    /// Reserve storage for `additional` more rows without changing the shape.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.data.reserve(additional * self.cols());
    }

    /// Rows that fit in the current backing storage without reallocating.
    pub fn capacity_rows(&self) -> usize {
        let c = self.cols();
        self.data.capacity().checked_div(c).unwrap_or(0)
    }

    /// Append `src`'s rows in place (2-D view; trailing dims must agree).
    ///
    /// Unlike [`Tensor::cat_rows`] — which copies *both* operands into a
    /// fresh allocation, making a T-step decode loop O(T²) in copied bytes —
    /// this grows the existing buffer, so appending T single rows costs
    /// amortized O(T·cols) total (and exactly zero reallocations when
    /// capacity was reserved up front).
    pub fn push_rows(&mut self, src: &Tensor) {
        let c = self.cols();
        assert_eq!(src.cols(), c, "push_rows: trailing dim mismatch");
        self.data.extend_from_slice(src.data());
        self.set_rows_2d(c);
    }

    /// Append one raw row in place (`row.len()` must equal `cols`).
    pub fn push_row_slice(&mut self, row: &[f32]) {
        let c = self.cols();
        assert_eq!(row.len(), c, "push_row_slice: length mismatch");
        self.data.extend_from_slice(row);
        self.set_rows_2d(c);
    }

    /// Drop all rows past `rows`, keeping the backing storage (the inverse
    /// of [`Tensor::push_row_slice`]): a session reset truncates its KV
    /// tensors to zero rows and the next request appends into the same
    /// allocation.
    pub fn truncate_rows(&mut self, rows: usize) {
        let c = self.cols();
        assert!(rows <= self.rows(), "truncate_rows: growing");
        self.data.truncate(rows * c);
        self.set_rows_2d(c);
    }

    /// Collapse the shape to 2-D `[rows, cols]` after a data append, reusing
    /// the shape vector's storage: per-token KV appends must not allocate.
    fn set_rows_2d(&mut self, cols: usize) {
        let new_rows = self.rows(); // derived from data.len(), already grown
        self.shape.clear();
        self.shape.push(new_rows);
        self.shape.push(cols);
    }

    /// Concatenate along the first axis; trailing dims must agree.
    pub fn cat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty());
        let cols = parts[0].cols();
        let mut data = Vec::new();
        let mut rows = 0;
        for p in parts {
            assert_eq!(p.cols(), cols, "cat_rows: trailing dim mismatch");
            data.extend_from_slice(p.data());
            rows += p.rows();
        }
        Tensor::from_vec(&[rows, cols], data)
    }

    /// Concatenate 2-D tensors along the column axis.
    pub fn cat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty());
        let rows = parts[0].rows();
        let total_cols: usize = parts.iter().map(|p| p.cols()).sum();
        let mut out = Tensor::zeros(&[rows, total_cols]);
        for r in 0..rows {
            let mut off = 0;
            for p in parts {
                assert_eq!(p.rows(), rows, "cat_cols: row mismatch");
                let c = p.cols();
                out.row_mut(r)[off..off + c].copy_from_slice(p.row(r));
                off += c;
            }
        }
        out
    }

    /// Slice of columns `[lo, hi)` of a 2-D view.
    pub fn col_slice(&self, lo: usize, hi: usize) -> Tensor {
        assert!(lo <= hi && hi <= self.cols());
        let rows = self.rows();
        let mut out = Tensor::zeros(&[rows, hi - lo]);
        for r in 0..rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[lo..hi]);
        }
        out
    }

    /// Slice of rows `[lo, hi)` of a 2-D view.
    pub fn row_slice(&self, lo: usize, hi: usize) -> Tensor {
        assert!(lo <= hi && hi <= self.rows());
        let c = self.cols();
        Tensor::from_vec(&[hi - lo, c], self.data[lo * c..hi * c].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn randn_is_deterministic() {
        let a = Tensor::randn(&[4, 4], 0.1, 7);
        let b = Tensor::randn(&[4, 4], 0.1, 7);
        let c = Tensor::randn(&[4, 4], 0.1, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rows_cols_views() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.row(1), &[4., 5., 6.]);
    }

    #[test]
    fn folded_rows_for_3d() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.rows(), 6);
        assert_eq!(t.cols(), 4);
    }

    #[test]
    fn cat_and_slice_roundtrip() {
        let a = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(&[2, 2], vec![5., 6., 7., 8.]);
        let c = Tensor::cat_cols(&[&a, &b]);
        assert_eq!(c.shape(), &[2, 4]);
        assert_eq!(c.row(0), &[1., 2., 5., 6.]);
        assert!(c.col_slice(0, 2).allclose(&a, 0.0));
        assert!(c.col_slice(2, 4).allclose(&b, 0.0));

        let r = Tensor::cat_rows(&[&a, &b]);
        assert_eq!(r.shape(), &[4, 2]);
        assert!(r.row_slice(2, 4).allclose(&b, 0.0));
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_checks_len() {
        Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn push_rows_matches_cat_rows() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[1, 3], vec![7., 8., 9.]);
        let want = Tensor::cat_rows(&[&a, &b]);
        let mut got = Tensor::with_capacity_rows(4, 3);
        got.push_rows(&a);
        got.push_rows(&b);
        assert!(got.allclose(&want, 0.0));
        assert_eq!(got.shape(), &[3, 3]);
    }

    #[test]
    fn reserved_capacity_prevents_reallocation() {
        let mut t = Tensor::with_capacity_rows(8, 4);
        assert!(t.capacity_rows() >= 8);
        let ptr = t.data().as_ptr();
        for i in 0..8 {
            t.push_row_slice(&[i as f32; 4]);
        }
        // All appends fit in the reserved buffer: same backing allocation.
        assert_eq!(t.data().as_ptr(), ptr);
        assert_eq!(t.rows(), 8);
        assert_eq!(t.row(5), &[5.0; 4]);
    }

    #[test]
    fn reserve_rows_grows_capacity() {
        let mut t = Tensor::zeros(&[1, 4]);
        t.reserve_rows(16);
        assert!(t.capacity_rows() >= 17);
    }

    #[test]
    #[should_panic(expected = "trailing dim")]
    fn push_rows_checks_cols() {
        let mut t = Tensor::zeros(&[1, 4]);
        t.push_rows(&Tensor::zeros(&[1, 3]));
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        let b = Tensor::from_vec(&[2], vec![1.5, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!(a.allclose(&b, 0.5));
        assert!(!a.allclose(&b, 0.4));
    }
}
