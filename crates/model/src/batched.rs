//! Batched serving over the functional reference: multiple independent
//! sequences with per-sequence KV caches, ragged prompts, and early
//! termination — the request-level structure that the paper's scheduling
//! work (micro-batches of sequences, Sec. IV-C1) operates on.
//!
//! Greedy decode steps route through the packed M-row fast path
//! ([`crate::fast::PackedModel::forward_rows`]): one ragged-batch forward
//! advances every active sequence instead of the old one-model-call-per-
//! sequence loop (kept as [`BatchSession::step_reference`], the oracle the
//! fast route is proptested against). Sampled (non-greedy) decoding still
//! uses the reference path — its RNG consumption is part of the session's
//! observable behavior.

use crate::fast::{self, PackedModel, Scratch, StepRow};
use crate::reference::{GptModel, KvCache};
use crate::sampling::Sampler;
use dsi_kernels::tensor::Tensor;
use serde::Serialize;

/// State of one sequence in a batch.
#[derive(Debug, Clone)]
pub struct SequenceState {
    pub cache: KvCache,
    /// All tokens so far (prompt + generated).
    pub tokens: Vec<usize>,
    /// Tokens generated so far.
    pub generated: usize,
    pub finished: bool,
}

/// Batched generation session over a shared model.
pub struct BatchSession<'m> {
    pub model: &'m GptModel,
    pub sequences: Vec<SequenceState>,
    /// Token id that terminates a sequence (greedy EOS), if any.
    pub eos: Option<usize>,
    /// Per-sequence generation cap.
    pub max_new_tokens: usize,
    /// Lazily-packed fast path for greedy steps (packing is paid once, on
    /// the first greedy step).
    fast: Option<FastBatch<'m>>,
}

/// Packed weights + row-stacked scratch for the greedy M-row step route.
struct FastBatch<'m> {
    pm: PackedModel<'m>,
    scratch: Scratch,
}

/// Summary of a completed batch run.
#[derive(Debug, Clone, Serialize)]
pub struct BatchReport {
    pub sequences: usize,
    pub total_generated: usize,
    pub steps: usize,
}

impl<'m> BatchSession<'m> {
    /// Start a session: process every prompt (ragged lengths allowed).
    pub fn new(model: &'m GptModel, prompts: &[Vec<usize>], max_new_tokens: usize) -> Self {
        assert!(!prompts.is_empty());
        let cfg = &model.config;
        let sequences = prompts
            .iter()
            .map(|p| {
                assert!(!p.is_empty(), "empty prompt");
                SequenceState {
                    cache: KvCache::new(cfg.layers, cfg.hidden),
                    tokens: p.clone(),
                    generated: 0,
                    finished: false,
                }
            })
            .collect();
        BatchSession {
            model,
            sequences,
            eos: None,
            max_new_tokens,
            fast: None,
        }
    }

    /// Prompt phase: run every sequence's prompt, emit each one's first
    /// generated token via the sampler.
    pub fn prompt(&mut self, sampler: &mut Sampler) {
        for s in &mut self.sequences {
            let prompt = s.tokens.clone();
            let logits = self.model.forward(&prompt, &mut s.cache);
            let last = logits.row_slice(logits.rows() - 1, logits.rows());
            let next = sampler.sample(last.row(0));
            s.tokens.push(next);
            s.generated = 1;
            s.finished = Some(next) == self.eos || s.generated >= self.max_new_tokens;
        }
    }

    /// One generation step: every unfinished sequence advances by one token.
    /// Returns how many sequences are still active.
    ///
    /// Greedy sampling (`temperature <= 0`) consumes no randomness and is
    /// argmax-deterministic, so it routes through the packed M-row forward:
    /// one model call per step instead of one per sequence. Any other
    /// configuration falls back to [`Self::step_reference`].
    pub fn step(&mut self, sampler: &mut Sampler) -> usize {
        if sampler.config.temperature <= 0.0 {
            self.step_fast_greedy()
        } else {
            self.step_reference(sampler)
        }
    }

    /// The original serial per-sequence step: one reference forward per
    /// unfinished sequence. Kept as the oracle the fast greedy route is
    /// proptested against, and as the path for sampled decoding.
    pub fn step_reference(&mut self, sampler: &mut Sampler) -> usize {
        for s in &mut self.sequences {
            if s.finished {
                continue;
            }
            let last = *s.tokens.last().unwrap();
            let logits = self.model.forward(&[last], &mut s.cache);
            let next = sampler.sample(logits.row(0));
            s.tokens.push(next);
            s.generated += 1;
            if Some(next) == self.eos || s.generated >= self.max_new_tokens {
                s.finished = true;
            }
        }
        self.sequences.iter().filter(|s| !s.finished).count()
    }

    /// Greedy step through the M-row fast path: all unfinished sequences
    /// advance in a single ragged-batch forward over packed weights.
    fn step_fast_greedy(&mut self) -> usize {
        let model = self.model;
        let batch = self.sequences.len();
        let fb = self.fast.get_or_insert_with(|| {
            let pm = PackedModel::pack(model);
            let scratch = Scratch::new(&model.config, batch.max(1));
            FastBatch { pm, scratch }
        });
        fb.scratch.ensure(&model.config, batch.max(1));
        let mut rows: Vec<StepRow<'_>> = self
            .sequences
            .iter_mut()
            .filter(|s| !s.finished)
            .map(|s| StepRow {
                token: *s.tokens.last().unwrap(),
                cache: &mut s.cache,
            })
            .collect();
        if rows.is_empty() {
            return 0;
        }
        fb.pm.forward_rows(&mut fb.scratch, &mut rows);
        drop(rows);
        let vocab = model.config.vocab;
        let mut r = 0;
        for s in &mut self.sequences {
            if s.finished {
                continue;
            }
            let next = fast::argmax(fb.scratch.logits_row(r, vocab));
            r += 1;
            s.tokens.push(next);
            s.generated += 1;
            if Some(next) == self.eos || s.generated >= self.max_new_tokens {
                s.finished = true;
            }
        }
        self.sequences.iter().filter(|s| !s.finished).count()
    }

    /// Run to completion.
    pub fn run(&mut self, sampler: &mut Sampler) -> BatchReport {
        self.prompt(sampler);
        let mut steps = 1;
        while self.step(sampler) > 0 {
            steps += 1;
            assert!(steps <= self.max_new_tokens + 1, "runaway generation");
        }
        BatchReport {
            sequences: self.sequences.len(),
            total_generated: self.sequences.iter().map(|s| s.generated).sum(),
            steps,
        }
    }

    /// Generated suffix of sequence `i`.
    pub fn output(&self, i: usize) -> &[usize] {
        let s = &self.sequences[i];
        &s.tokens[s.tokens.len() - s.generated..]
    }

    /// Aggregate KV bytes across the batch (the Sec. IV-B3 capacity
    /// pressure, observable).
    pub fn kv_bytes(&self) -> usize {
        self.sequences.iter().map(|s| s.cache.total_bytes()).sum()
    }

    /// Logits of the full batch's last tokens, stacked (for inspection).
    pub fn last_logits(&mut self) -> Tensor {
        let rows: Vec<Tensor> = self
            .sequences
            .iter_mut()
            .map(|s| {
                let last = *s.tokens.last().unwrap();
                // Peek without mutating: clone the cache.
                let mut c = s.cache.clone();
                self.model.forward(&[last], &mut c)
            })
            .collect();
        let refs: Vec<&Tensor> = rows.iter().collect();
        Tensor::cat_rows(&refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::SamplerConfig;
    use crate::zoo;

    fn model() -> GptModel {
        GptModel::random(zoo::tiny(2), 5)
    }

    #[test]
    fn batched_greedy_matches_sequential_generate() {
        let m = model();
        let prompts = vec![vec![1, 2, 3], vec![9, 8, 7, 6]];
        let mut session = BatchSession::new(&m, &prompts, 5);
        let mut sampler = Sampler::new(SamplerConfig::greedy(), 0);
        session.run(&mut sampler);
        for (i, p) in prompts.iter().enumerate() {
            let want = m.generate(p, 5);
            assert_eq!(session.output(i), &want[..], "sequence {i}");
        }
    }

    #[test]
    fn ragged_prompts_supported() {
        let m = model();
        let prompts = vec![vec![1], vec![2, 3, 4, 5, 6, 7, 8]];
        let mut session = BatchSession::new(&m, &prompts, 3);
        let mut sampler = Sampler::new(SamplerConfig::greedy(), 0);
        let report = session.run(&mut sampler);
        assert_eq!(report.sequences, 2);
        assert_eq!(report.total_generated, 6);
        // The cache holds the prompt plus every *forwarded* token; the last
        // sampled token is never fed back, so context = prompt + gen - 1.
        assert_eq!(session.sequences[0].cache.context_len(), 1 + 3 - 1);
        assert_eq!(session.sequences[1].cache.context_len(), 7 + 3 - 1);
    }

    #[test]
    fn eos_terminates_early() {
        let m = model();
        // Find the first greedy token and use it as EOS: the sequence must
        // finish after one token.
        let first = m.generate(&[1, 2, 3], 1)[0];
        let mut session = BatchSession::new(&m, &[vec![1, 2, 3]], 10);
        session.eos = Some(first);
        let mut sampler = Sampler::new(SamplerConfig::greedy(), 0);
        let report = session.run(&mut sampler);
        assert_eq!(report.total_generated, 1);
        assert!(session.sequences[0].finished);
    }

    #[test]
    fn kv_bytes_grow_with_generation() {
        let m = model();
        let mut session = BatchSession::new(&m, &[vec![1, 2]], 4);
        let mut sampler = Sampler::new(SamplerConfig::greedy(), 0);
        session.prompt(&mut sampler);
        let b1 = session.kv_bytes();
        session.step(&mut sampler);
        assert!(session.kv_bytes() > b1);
    }

    #[test]
    fn finished_sequences_do_not_advance() {
        let m = model();
        let mut session = BatchSession::new(&m, &[vec![1, 2], vec![3, 4]], 2);
        let mut sampler = Sampler::new(SamplerConfig::greedy(), 0);
        session.prompt(&mut sampler);
        session.sequences[0].finished = true;
        let len_before = session.sequences[0].tokens.len();
        session.step(&mut sampler);
        assert_eq!(session.sequences[0].tokens.len(), len_before);
        assert_eq!(session.sequences[1].generated, 2);
    }
}
