//! Beam-search decoding over the functional reference model.
//!
//! Beam search multiplies the KV-cache footprint by the beam width — each
//! hypothesis carries its own cache — which is exactly the "activation
//! memory scales with the number of sequences that are concurrently
//! generated" pressure of Sec. IV-B3. The implementation therefore exposes
//! its cache bytes, so the memory model's assumptions are observable.

use crate::reference::{GptModel, KvCache};

/// One live hypothesis.
#[derive(Debug, Clone)]
struct Hypothesis {
    cache: KvCache,
    tokens: Vec<usize>,
    /// Sum of log-probabilities of the generated tokens.
    score: f64,
}

/// Result of a beam search.
#[derive(Debug, Clone)]
pub struct BeamResult {
    /// Generated continuations, best first, with their total log-probs.
    pub hypotheses: Vec<(Vec<usize>, f64)>,
    /// Peak KV bytes held across all live beams.
    pub peak_kv_bytes: usize,
}

fn log_softmax_row(logits: &[f32]) -> Vec<f64> {
    let m = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
    let z: f64 = logits.iter().map(|&l| ((l as f64) - m).exp()).sum();
    let lz = m + z.ln();
    logits.iter().map(|&l| l as f64 - lz).collect()
}

/// Beam-search `n_tokens` continuation tokens for `prompt` with `width`
/// beams (deterministic; ties broken toward lower token ids).
pub fn beam_search(model: &GptModel, prompt: &[usize], width: usize, n_tokens: usize) -> BeamResult {
    assert!(width >= 1 && n_tokens >= 1);
    let cfg = &model.config;

    // Prompt pass: one shared forward, then fan out the top-`width` tokens.
    let mut cache = KvCache::new(cfg.layers, cfg.hidden);
    let logits = model.forward(prompt, &mut cache);
    let last = logits.row_slice(logits.rows() - 1, logits.rows());
    let lp = log_softmax_row(last.row(0));
    let mut first: Vec<(usize, f64)> = lp.iter().copied().enumerate().collect();
    first.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

    let mut beams: Vec<Hypothesis> = first
        .into_iter()
        .take(width)
        .map(|(tok, score)| Hypothesis {
            cache: cache.clone(),
            tokens: vec![tok],
            score,
        })
        .collect();
    let mut peak_kv = beams.iter().map(|b| b.cache.total_bytes()).sum::<usize>();

    for _ in 1..n_tokens {
        // Expand every beam, keep the global top-`width`.
        let mut candidates: Vec<(usize, usize, f64)> = Vec::new(); // (beam, token, score)
        let mut stepped: Vec<KvCache> = Vec::with_capacity(beams.len());
        for (bi, b) in beams.iter().enumerate() {
            let mut c = b.cache.clone();
            let logits = model.forward(&[*b.tokens.last().unwrap()], &mut c);
            let lp = log_softmax_row(logits.row(0));
            // Only the top `width` per beam can survive globally.
            let mut per: Vec<(usize, f64)> = lp.iter().copied().enumerate().collect();
            per.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            for &(tok, l) in per.iter().take(width) {
                candidates.push((bi, tok, b.score + l));
            }
            stepped.push(c);
        }
        candidates.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap()
                .then(a.0.cmp(&b.0))
                .then(a.1.cmp(&b.1))
        });
        let mut next: Vec<Hypothesis> = Vec::with_capacity(width);
        for &(bi, tok, score) in candidates.iter().take(width) {
            let mut tokens = beams[bi].tokens.clone();
            tokens.push(tok);
            next.push(Hypothesis {
                cache: stepped[bi].clone(),
                tokens,
                score,
            });
        }
        beams = next;
        peak_kv = peak_kv.max(beams.iter().map(|b| b.cache.total_bytes()).sum());
    }

    BeamResult {
        hypotheses: beams.into_iter().map(|b| (b.tokens, b.score)).collect(),
        peak_kv_bytes: peak_kv,
    }
}

/// Total sequence log-probability of a fixed continuation under the model
/// (for verifying beam-search optimality on small vocabularies).
pub fn continuation_logprob(model: &GptModel, prompt: &[usize], continuation: &[usize]) -> f64 {
    let cfg = &model.config;
    let mut cache = KvCache::new(cfg.layers, cfg.hidden);
    let mut score = 0.0;
    let mut logits = model.forward(prompt, &mut cache);
    for &tok in continuation {
        let last = logits.row_slice(logits.rows() - 1, logits.rows());
        score += log_softmax_row(last.row(0))[tok];
        logits = model.forward(&[tok], &mut cache);
    }
    score
}

/// Greedy decoding expressed through the beam machinery (width 1).
pub fn greedy_via_beam(model: &GptModel, prompt: &[usize], n_tokens: usize) -> Vec<usize> {
    beam_search(model, prompt, 1, n_tokens).hypotheses[0].0.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn model() -> GptModel {
        GptModel::random(zoo::tiny(2), 13)
    }

    #[test]
    fn width_one_equals_greedy() {
        let m = model();
        let want = m.generate(&[1, 2, 3], 5);
        let got = greedy_via_beam(&m, &[1, 2, 3], 5);
        assert_eq!(got, want);
    }

    #[test]
    fn hypotheses_sorted_and_distinct() {
        let m = model();
        let r = beam_search(&m, &[4, 5], 3, 4);
        assert_eq!(r.hypotheses.len(), 3);
        for w in r.hypotheses.windows(2) {
            assert!(w[0].1 >= w[1].1, "scores must be descending");
        }
        assert_ne!(r.hypotheses[0].0, r.hypotheses[1].0);
    }

    #[test]
    fn scores_match_independent_rescoring() {
        // The score the search reports equals the sequence log-prob computed
        // from scratch.
        let m = model();
        let r = beam_search(&m, &[7, 8, 9], 2, 3);
        for (tokens, score) in &r.hypotheses {
            let rescored = continuation_logprob(&m, &[7, 8, 9], tokens);
            assert!(
                (score - rescored).abs() < 1e-3,
                "reported {score} vs rescored {rescored}"
            );
        }
    }

    #[test]
    fn beam_never_scores_below_greedy() {
        // The best beam hypothesis dominates the greedy path by construction.
        let m = model();
        let greedy = m.generate(&[2, 4, 6], 4);
        let greedy_score = continuation_logprob(&m, &[2, 4, 6], &greedy);
        let beam = beam_search(&m, &[2, 4, 6], 4, 4);
        assert!(
            beam.hypotheses[0].1 >= greedy_score - 1e-4,
            "beam {} < greedy {}",
            beam.hypotheses[0].1,
            greedy_score
        );
    }

    #[test]
    fn kv_bytes_scale_with_width() {
        // The Sec. IV-B3 memory pressure: W beams ≈ W× the cache.
        let m = model();
        let w1 = beam_search(&m, &[1, 2, 3, 4], 1, 3).peak_kv_bytes;
        let w4 = beam_search(&m, &[1, 2, 3, 4], 4, 3).peak_kv_bytes;
        assert!(w4 > 3 * w1, "w4 {w4} vs w1 {w1}");
    }
}
