//! Model configurations and resource accounting.
//!
//! Everything the cost models need about a model is derived here: parameter
//! counts (weights bytes = the small-batch latency lower bound of Sec. I),
//! forward FLOPs (the large-batch throughput bound), and KV-cache bytes (the
//! memory-capacity pressure of Sec. IV-B).

use dsi_sim::hw::DType;
use serde::{Deserialize, Serialize};

/// GPT-style decoder-only transformer (Table I).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GptConfig {
    pub name: String,
    pub hidden: usize,
    pub layers: usize,
    pub heads: usize,
    pub vocab: usize,
    pub max_seq: usize,
}

impl GptConfig {
    pub fn new(name: &str, hidden: usize, layers: usize, heads: usize) -> Self {
        GptConfig {
            name: name.into(),
            hidden,
            layers,
            heads,
            vocab: 50_257,
            max_seq: 2048,
        }
    }

    /// Parameters of one transformer layer: QKV `h×3h`, attention output
    /// `h×h`, FFN `h×4h` and `4h×h` (= 12 h²), plus biases and layer-norms.
    pub fn layer_params(&self) -> f64 {
        let h = self.hidden as f64;
        12.0 * h * h + 13.0 * h
    }

    /// Total parameters including token/position embeddings (output
    /// projection tied to the token embedding).
    pub fn total_params(&self) -> f64 {
        self.layers as f64 * self.layer_params()
            + (self.vocab + self.max_seq) as f64 * self.hidden as f64
            + 2.0 * self.hidden as f64
    }

    /// Bytes of model weights at a precision.
    pub fn weight_bytes(&self, dtype: DType) -> f64 {
        self.total_params() * dtype.bytes() as f64
    }

    /// Bytes of one layer's weights at a precision (the unit ZeRO-Inference
    /// streams, Sec. VI-A).
    pub fn layer_weight_bytes(&self, dtype: DType) -> f64 {
        self.layer_params() * dtype.bytes() as f64
    }

    /// Forward FLOPs for processing `tokens` tokens (prompt or batched
    /// generation), ignoring attention's quadratic term: ≈ 2 · params ·
    /// tokens. The paper uses exactly this ("one GPT3-175B layer requires
    /// about 7 TFlops to process an input of batch size 1" at seq 2048,
    /// Sec. VI-A).
    pub fn forward_flops(&self, tokens: f64) -> f64 {
        2.0 * self.layers as f64 * self.layer_params() * tokens
    }

    /// Attention's additional context-dependent FLOPs for a batch of
    /// sequences each attending over `ctx` positions with `t_new` new tokens.
    pub fn attention_flops(&self, batch: f64, t_new: f64, ctx: f64) -> f64 {
        4.0 * batch * self.layers as f64 * t_new * ctx * self.hidden as f64
    }

    /// KV-cache bytes per token of context per sequence (all layers):
    /// 2 (K and V) · hidden · layers.
    pub fn kv_bytes_per_token(&self, dtype: DType) -> f64 {
        2.0 * self.hidden as f64 * self.layers as f64 * dtype.bytes() as f64
    }

    /// Peak activation working-set bytes for a forward pass over `tokens`
    /// tokens at once (a few live `[tokens, 4h]` buffers; calibrated factor
    /// of 8 hidden-widths covers QKV + FFN intermediates with buffer reuse).
    pub fn activation_bytes(&self, tokens: f64, dtype: DType) -> f64 {
        8.0 * tokens * self.hidden as f64 * dtype.bytes() as f64
    }

    /// Per-sequence activation working set of a *prompt* forward over `seq`
    /// tokens, including the materialized attention-score matrix
    /// (`heads × seq²`) that 2022-era unfused attention kernels keep live —
    /// the term that actually caps prompt batch sizes on a single GPU
    /// (Sec. VI-A's batch-size discussion).
    pub fn prompt_activation_bytes_per_seq(&self, seq: usize, dtype: DType) -> f64 {
        let ab = dtype.bytes() as f64;
        let s = seq as f64;
        (8.0 * s * self.hidden as f64 + self.heads as f64 * s * s) * ab
    }
}

/// BERT-style encoder (Fig. 12 comparison with E.T.).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BertConfig {
    pub name: String,
    pub hidden: usize,
    pub layers: usize,
    pub heads: usize,
}

impl BertConfig {
    pub fn new(name: &str, hidden: usize, layers: usize, heads: usize) -> Self {
        BertConfig {
            name: name.into(),
            hidden,
            layers,
            heads,
        }
    }

    pub fn total_params(&self) -> f64 {
        let h = self.hidden as f64;
        self.layers as f64 * (12.0 * h * h + 13.0 * h)
    }
}

/// Mixture-of-Experts transformer (Table II): a dense GPT base whose
/// feed-forward blocks are replaced by Position-wise MoE layers in
/// `moe_layers` of the `base.layers` blocks (Sec. II-b).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MoeConfig {
    pub name: String,
    pub base: GptConfig,
    /// Experts per MoE layer.
    pub experts: usize,
    /// How many of the base's layers carry an MoE block.
    pub moe_layers: usize,
    /// Top-k gating (1 for Switch-style routing used here).
    pub top_k: usize,
    /// Expert capacity factor: capacity = factor · tokens · top_k / experts.
    pub capacity_factor: f64,
    /// Tensor (model) parallel degree for the dense components.
    pub mp_degree: usize,
    /// Expert-parallel degree.
    pub ep_degree: usize,
    /// Expert-slicing degree (tensor-slicing *within* an expert, Sec. V-A).
    pub expert_slicing: usize,
    /// Total GPUs the configuration targets.
    pub gpus: usize,
}

impl MoeConfig {
    /// Parameters of a single expert: one FFN block, `h×4h + 4h×h = 8 h²`.
    pub fn expert_params(&self) -> f64 {
        let h = self.base.hidden as f64;
        8.0 * h * h
    }

    /// All expert parameters across the model.
    pub fn total_expert_params(&self) -> f64 {
        self.moe_layers as f64 * self.experts as f64 * self.expert_params()
    }

    /// Dense (non-expert) parameters: the base model minus the FFN blocks
    /// that MoE replaced, plus gating projections.
    pub fn dense_params(&self) -> f64 {
        let h = self.base.hidden as f64;
        let base = self.base.total_params();
        let removed_ffn = self.moe_layers as f64 * 8.0 * h * h;
        let gates = self.moe_layers as f64 * h * self.experts as f64;
        base - removed_ffn + gates
    }

    pub fn total_params(&self) -> f64 {
        self.dense_params() + self.total_expert_params()
    }

    /// Experts resident on one GPU: `experts / ep_degree`, each further
    /// sliced `expert_slicing` ways.
    pub fn expert_params_per_gpu(&self) -> f64 {
        self.total_expert_params() / (self.ep_degree as f64 * self.expert_slicing as f64)
    }

    /// Expert capacity (tokens per expert) for a batch of `tokens` tokens.
    pub fn capacity(&self, tokens: usize) -> usize {
        ((self.capacity_factor * tokens as f64 * self.top_k as f64) / self.experts as f64)
            .ceil()
            .max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt3_175b_parameter_count() {
        let c = GptConfig::new("LM-175B", 12288, 96, 96);
        let p = c.total_params();
        assert!(
            (p - 175e9).abs() / 175e9 < 0.02,
            "175B config gives {:.1}B",
            p / 1e9
        );
    }

    #[test]
    fn mt_nlg_530b_parameter_count() {
        let c = GptConfig::new("LM-530B", 20480, 105, 128);
        let p = c.total_params();
        assert!(
            (p - 530e9).abs() / 530e9 < 0.02,
            "530B config gives {:.1}B",
            p / 1e9
        );
    }

    #[test]
    fn paper_7tflops_per_175b_layer() {
        // Sec. VI-A: "one GPT3-175B layer requires about 7 TFlops to process
        // an input of batch size 1" (seq 2048).
        let c = GptConfig::new("LM-175B", 12288, 96, 96);
        let per_layer = 2.0 * c.layer_params() * 2048.0;
        assert!(
            (per_layer - 7e12).abs() / 7e12 < 0.08,
            "per-layer flops {:.2}T",
            per_layer / 1e12
        );
    }

    #[test]
    fn weight_bytes_track_dtype() {
        let c = GptConfig::new("x", 1024, 4, 16);
        assert_eq!(c.weight_bytes(DType::Fp16) * 2.0, c.weight_bytes(DType::Fp32));
        assert_eq!(c.weight_bytes(DType::Int8) * 2.0, c.weight_bytes(DType::Fp16));
    }

    #[test]
    fn kv_cache_bytes() {
        let c = GptConfig::new("x", 1024, 4, 16);
        // 2 * 1024 * 4 * 2 bytes = 16 KiB per context token.
        assert_eq!(c.kv_bytes_per_token(DType::Fp16), 16384.0);
    }

    #[test]
    fn moe_capacity_formula() {
        let m = MoeConfig {
            name: "t".into(),
            base: GptConfig::new("b", 2048, 24, 16),
            experts: 128,
            moe_layers: 12,
            top_k: 1,
            capacity_factor: 1.0,
            mp_degree: 1,
            ep_degree: 128,
            expert_slicing: 1,
            gpus: 128,
        };
        assert_eq!(m.capacity(1280), 10);
        assert_eq!(m.capacity(1), 1); // floor of one slot
    }

    #[test]
    fn moe_param_split_consistent() {
        let m = MoeConfig {
            name: "t".into(),
            base: GptConfig::new("b", 2048, 24, 16),
            experts: 128,
            moe_layers: 12,
            top_k: 1,
            capacity_factor: 1.0,
            mp_degree: 1,
            ep_degree: 128,
            expert_slicing: 1,
            gpus: 128,
        };
        assert!((m.total_params() - m.dense_params() - m.total_expert_params()).abs() < 1.0);
        // 1.3B base + 128 experts over 12 layers ≈ 52B (Table II row 1).
        assert!(
            (m.total_params() - 52e9).abs() / 52e9 < 0.05,
            "got {:.1}B",
            m.total_params() / 1e9
        );
    }

    #[test]
    fn expert_slicing_halves_per_gpu_experts() {
        let mut m = MoeConfig {
            name: "t".into(),
            base: GptConfig::new("b", 8192, 40, 64),
            experts: 128,
            moe_layers: 20,
            top_k: 1,
            capacity_factor: 1.0,
            mp_degree: 8,
            ep_degree: 128,
            expert_slicing: 1,
            gpus: 128,
        };
        let one = m.expert_params_per_gpu();
        m.expert_slicing = 2;
        assert_eq!(m.expert_params_per_gpu(), one / 2.0);
    }
}
