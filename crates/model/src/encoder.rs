//! Functional BERT-style encoder — the Fig. 12 model family, executable.
//!
//! Same operator inventory as the decoder (which is why the paper's kernels
//! serve both: "DeepSpeed Inference supports encoder, decoder, and sparsely
//! gated MoE models", Sec. VII-E6) with two differences: attention is
//! bidirectional (no causal mask, no KV cache) and BERT uses post-layer-norm
//! blocks.

use crate::config::BertConfig;
use crate::reference::LayerWeights;
use dsi_kernels::ops;
use dsi_kernels::tensor::Tensor;

/// One encoder layer (reuses the decoder's weight container; `ln1`/`ln2`
/// act as the two *post*-norms here).
fn encoder_layer(lw: &LayerWeights, x: &Tensor, heads: usize) -> Tensor {
    let h = x.cols();
    let t = x.rows();
    // Self-attention (bidirectional: every query sees the whole sequence).
    let mut qkv = ops::matmul(x, &lw.w_qkv);
    ops::add_bias(&mut qkv, &lw.b_qkv);
    let q = qkv.col_slice(0, h);
    let k = qkv.col_slice(h, 2 * h);
    let v = qkv.col_slice(2 * h, 3 * h);
    // causal_offset = t makes position limits vacuous (j <= t-1 always).
    let attn = ops::attention(&q, &k, &v, heads, t);
    let mut out = ops::matmul(&attn, &lw.w_o);
    ops::add_bias(&mut out, &lw.b_o);
    ops::add_inplace(&mut out, x);
    let out = ops::layernorm(&out, &lw.ln1_g, &lw.ln1_b, 1e-5); // post-LN

    // Feed-forward.
    let mut ff = ops::matmul(&out, &lw.w_ff1);
    ops::add_bias(&mut ff, &lw.b_ff1);
    ops::gelu(&mut ff);
    let mut y = ops::matmul(&ff, &lw.w_ff2);
    ops::add_bias(&mut y, &lw.b_ff2);
    ops::add_inplace(&mut y, &out);
    ops::layernorm(&y, &lw.ln2_g, &lw.ln2_b, 1e-5)
}

/// A functional BERT-style encoder.
pub struct BertModel {
    pub config: BertConfig,
    pub vocab: usize,
    pub max_seq: usize,
    /// `[vocab, h]` token embedding.
    pub wte: Tensor,
    /// `[max_seq, h]` position embedding.
    pub wpe: Tensor,
    pub layers: Vec<LayerWeights>,
}

impl BertModel {
    /// Deterministic random encoder with a small test vocab.
    pub fn random(config: BertConfig, vocab: usize, max_seq: usize, seed: u64) -> Self {
        let h = config.hidden;
        BertModel {
            wte: Tensor::randn(&[vocab, h], 0.05, seed + 1),
            wpe: Tensor::randn(&[max_seq, h], 0.01, seed + 2),
            layers: (0..config.layers)
                .map(|i| LayerWeights::random(h, seed + 100 + i as u64))
                .collect(),
            config,
            vocab,
            max_seq,
        }
    }

    /// Encode a token sequence into `[t, h]` contextual embeddings.
    pub fn encode(&self, ids: &[usize]) -> Tensor {
        assert!(ids.len() <= self.max_seq, "sequence exceeds max_seq");
        let mut x = ops::embedding(&self.wte, ids);
        for (i, row) in x.data_mut().chunks_mut(self.config.hidden).enumerate() {
            for (a, b) in row.iter_mut().zip(self.wpe.row(i)) {
                *a += b;
            }
        }
        for lw in &self.layers {
            x = encoder_layer(lw, &x, self.config.heads);
        }
        x
    }

    /// Mean-pooled sequence embedding (the common sentence-encoder head).
    pub fn embed_sequence(&self, ids: &[usize]) -> Vec<f32> {
        let x = self.encode(ids);
        let (t, h) = (x.rows(), x.cols());
        let mut out = vec![0.0f32; h];
        for r in 0..t {
            for (o, v) in out.iter_mut().zip(x.row(r)) {
                *o += v / t as f32;
            }
        }
        out
    }
}

/// Cosine similarity of two embeddings.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    dot / (na * nb).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> BertModel {
        BertModel::random(BertConfig::new("tiny-bert", 64, 2, 4), 101, 64, 7)
    }

    #[test]
    fn encode_shapes_and_determinism() {
        let m = model();
        let a = m.encode(&[1, 2, 3, 4]);
        assert_eq!(a.shape(), &[4, 64]);
        assert!(a.allclose(&m.encode(&[1, 2, 3, 4]), 0.0));
        assert!(a.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn attention_is_bidirectional() {
        // Changing the LAST token must change the FIRST token's output —
        // impossible under a causal mask, guaranteed under bidirectional
        // attention.
        let m = model();
        let a = m.encode(&[1, 2, 3, 4]);
        let b = m.encode(&[1, 2, 3, 99]);
        let first_diff = a
            .row(0)
            .iter()
            .zip(b.row(0))
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(first_diff > 1e-4, "first token ignored the future: {first_diff}");
    }

    #[test]
    fn post_norm_output_is_normalized() {
        let m = model();
        let x = m.encode(&[5, 6, 7]);
        for r in 0..3 {
            let mean: f32 = x.row(r).iter().sum::<f32>() / 64.0;
            let var: f32 = x.row(r).iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-3 && (var - 1.0).abs() < 0.05, "r{r}: {mean} {var}");
        }
    }

    #[test]
    fn sequence_embeddings_separate_inputs() {
        let m = model();
        let a = m.embed_sequence(&[1, 2, 3, 4, 5]);
        let a2 = m.embed_sequence(&[1, 2, 3, 4, 5]);
        let b = m.embed_sequence(&[60, 70, 80, 90, 100]);
        assert!((cosine(&a, &a2) - 1.0).abs() < 1e-6);
        assert!(cosine(&a, &b) < 0.99, "distinct inputs should not collapse");
    }

    #[test]
    #[should_panic(expected = "max_seq")]
    fn overlong_rejected() {
        let m = model();
        let ids: Vec<usize> = (0..65).map(|i| i % 101).collect();
        m.encode(&ids);
    }
}
