//! The executed Deep-Fusion decode path: packed weights + fused kernels +
//! amortized KV + scratch reuse.
//!
//! [`GptModel`] (the reference) is written for clarity: every operator
//! allocates its output, the KV cache is rebuilt per token, and GEMMs run
//! against the row-major weight layout. This module is the performance
//! counterpart the paper's Sec. III argues for, built from four ingredients:
//!
//! 1. **Pack once, reuse every token** — [`PackedModel`] pre-transposes each
//!    layer's four weight matrices into the panel layout of
//!    `dsi_kernels::blocked` at construction, including the tied embedding
//!    (stored `[vocab, h]`, i.e. already transposed for the logits
//!    projection — `PackedB::from_pre_transposed` only re-panels it).
//! 2. **Fused region kernels** — each transformer layer executes as the four
//!    Fig. 1(c) small-batch fused regions (`dsi_kernels::fused`): interior
//!    activations live in scratch rows, never in fresh tensors.
//! 3. **Amortized KV cache** — the session reserves the full
//!    prompt+generation KV budget up front and appends rows in place
//!    ([`LayerKv::append_row_slices`]), replacing the seed's O(T²) per-token
//!    `cat_rows` rebuild.
//! 4. **Scratch reuse** — [`Scratch`] owns every intermediate buffer; the
//!    steady-state one-token decode loop performs **zero heap allocations**
//!    (asserted by `Scratch::alloc_guard` in tests).
//!
//! Numerically the path tracks the reference within f32 reassociation noise
//! (the packed GEMM sums in a different order); greedy decode is verified
//! token-for-token against [`GptModel::generate`] in the property suite.

use crate::config::GptConfig;
use crate::reference::{GptModel, KvCache, LayerWeights};
use dsi_kernels::blocked::{self, PackedB};
use dsi_kernels::fused;

/// One layer's weights in execution layout: GEMM operands packed, vectors
/// as plain slices.
#[derive(Debug, Clone)]
pub struct PackedLayer {
    pub ln1_g: Vec<f32>,
    pub ln1_b: Vec<f32>,
    /// `[h, 3h]` QKV projection, packed.
    pub w_qkv: PackedB,
    pub b_qkv: Vec<f32>,
    /// `[h, h]` attention output projection, packed.
    pub w_o: PackedB,
    pub b_o: Vec<f32>,
    pub ln2_g: Vec<f32>,
    pub ln2_b: Vec<f32>,
    /// `[h, 4h]`, packed.
    pub w_ff1: PackedB,
    pub b_ff1: Vec<f32>,
    /// `[4h, h]`, packed.
    pub w_ff2: PackedB,
    pub b_ff2: Vec<f32>,
}

impl PackedLayer {
    pub fn pack(lw: &LayerWeights) -> Self {
        PackedLayer {
            ln1_g: lw.ln1_g.data().to_vec(),
            ln1_b: lw.ln1_b.data().to_vec(),
            w_qkv: PackedB::pack(&lw.w_qkv),
            b_qkv: lw.b_qkv.data().to_vec(),
            w_o: PackedB::pack(&lw.w_o),
            b_o: lw.b_o.data().to_vec(),
            ln2_g: lw.ln2_g.data().to_vec(),
            ln2_b: lw.ln2_b.data().to_vec(),
            w_ff1: PackedB::pack(&lw.w_ff1),
            b_ff1: lw.b_ff1.data().to_vec(),
            w_ff2: PackedB::pack(&lw.w_ff2),
            b_ff2: lw.b_ff2.data().to_vec(),
        }
    }
}

/// A reference model plus its packed execution layout. Embedding lookups and
/// final layer-norm parameters are borrowed from the model; the tied
/// embedding is additionally panel-packed once as the logits operand.
pub struct PackedModel<'m> {
    pub model: &'m GptModel,
    pub layers: Vec<PackedLayer>,
    /// `wteᵀ` as the packed `[h, vocab]` logits projection.
    pub wte_packed: PackedB,
}

impl<'m> PackedModel<'m> {
    /// One-time packing pass over all layers.
    pub fn pack(model: &'m GptModel) -> Self {
        PackedModel {
            layers: model.layers.iter().map(PackedLayer::pack).collect(),
            wte_packed: PackedB::from_pre_transposed(&model.wte),
            model,
        }
    }

    pub fn config(&self) -> &GptConfig {
        &self.model.config
    }

    /// Start a decode session with all scratch and KV capacity sized for
    /// `max_prompt` prompt tokens plus generation up to the model's
    /// `max_seq`.
    pub fn session(&self, max_prompt: usize) -> FastSession<'_, 'm> {
        let c = self.config();
        FastSession {
            pm: self,
            cache: KvCache::with_capacity(c.layers, c.hidden, c.max_seq),
            scratch: Scratch::new(c, max_prompt.max(1)),
            last_m: 0,
            to_feed: None,
        }
    }
}

/// Preallocated intermediate buffers for the fused layer loop. Sized for
/// `m` concurrent rows (the prompt length; steady-state decode uses `m=1`
/// slices of the same buffers).
#[derive(Debug)]
pub struct Scratch {
    /// `[h]` layer-norm output row (interior of fused regions 1 and 4).
    normed: Vec<f32>,
    /// `[m, h]` current activations.
    x: Vec<f32>,
    /// `[m, 3h]` fused QKV projection output.
    qkv: Vec<f32>,
    /// `[m, h]` attention context output.
    attn: Vec<f32>,
    /// `[m, h]` block output (regions 3/5 write here, then swap with `x`).
    y: Vec<f32>,
    /// `[m, 4h]` FF1 activation.
    ff: Vec<f32>,
    /// `[m, vocab]` logits.
    logits: Vec<f32>,
}

/// The scratch arena's layout: `(buffer name, capacity in floats)` for `m`
/// concurrent rows, in declaration order. [`Scratch::new`] allocates from
/// this table and the static verifier (`dsi-verify::scratch`) analyses
/// aliasing/lifetimes against it, so the two cannot drift apart.
pub fn scratch_layout(c: &GptConfig, m: usize) -> [(&'static str, usize); 7] {
    let h = c.hidden;
    [
        ("normed", h),
        ("x", m * h),
        ("qkv", m * 3 * h),
        ("attn", m * h),
        ("y", m * h),
        ("ff", m * 4 * h),
        ("logits", m * c.vocab),
    ]
}

impl Scratch {
    fn new(c: &GptConfig, m: usize) -> Self {
        let [normed, x, qkv, attn, y, ff, logits] =
            scratch_layout(c, m).map(|(_, len)| vec![0.0; len]);
        Scratch { normed, x, qkv, attn, y, ff, logits }
    }

    /// Grow (never shrink) to fit `m` rows.
    fn ensure(&mut self, c: &GptConfig, m: usize) {
        let h = c.hidden;
        if self.x.len() < m * h {
            *self = Scratch::new(c, m);
        }
    }

    /// Capacity fingerprint: total reserved floats across all buffers. The
    /// zero-allocation invariant of steady-state decode is "this value and
    /// every buffer pointer are unchanged across tokens".
    pub fn reserved_len(&self) -> usize {
        self.normed.len()
            + self.x.len()
            + self.qkv.len()
            + self.attn.len()
            + self.y.len()
            + self.ff.len()
            + self.logits.len()
    }
}

/// A generation session over a packed model: owns the KV cache and scratch.
pub struct FastSession<'p, 'm> {
    pm: &'p PackedModel<'m>,
    pub cache: KvCache,
    scratch: Scratch,
    /// Row count of the most recent [`FastSession::forward`] call; selects
    /// the sampling row inside the scratch logits buffer.
    last_m: usize,
    /// The token emitted by the last [`FastSession::generate_step`] that has
    /// not been fed through the model yet. Feeding is deferred to the start
    /// of the *next* step so a caller that stops early (deadline,
    /// cancellation) never pays for a forward pass whose logits it will not
    /// sample.
    to_feed: Option<usize>,
}

impl FastSession<'_, '_> {
    /// Context length consumed so far.
    pub fn context_len(&self) -> usize {
        self.cache.context_len()
    }

    /// The `[vocab]` logits row of the most recently forwarded position —
    /// the row greedy sampling reads. Centralizes the
    /// `(m - 1) * vocab` slice math so session front-ends (this one and
    /// `dsi-parallel`'s `TpSession`) never duplicate it.
    ///
    /// Panics if no `forward` has run yet.
    pub fn last_logits(&self) -> &[f32] {
        assert!(self.last_m > 0, "last_logits() before any forward()");
        let vocab = self.pm.config().vocab;
        &self.scratch.logits[(self.last_m - 1) * vocab..self.last_m * vocab]
    }

    /// Forward `ids` through all layers, extending the KV cache; leaves
    /// `[ids.len(), vocab]` logits in scratch and returns them as a slice.
    pub fn forward(&mut self, ids: &[usize]) -> &[f32] {
        let c = self.pm.config();
        let (h, heads) = (c.hidden, c.heads);
        let m = ids.len();
        let offset = self.cache.context_len();
        assert!(offset + m <= c.max_seq, "sequence exceeds max_seq");
        self.scratch.ensure(c, m);
        let s = &mut self.scratch;
        let model = self.pm.model;

        // Embedding: token row + position row, fused into one write.
        for (i, &id) in ids.iter().enumerate() {
            assert!(id < c.vocab, "token id {id} out of vocab");
            let te = model.wte.row(id);
            let pe = model.wpe.row(offset + i);
            for (x, (&t, &p)) in s.x[i * h..(i + 1) * h].iter_mut().zip(te.iter().zip(pe)) {
                *x = t + p;
            }
        }

        for (l, pl) in self.pm.layers.iter().enumerate() {
            let kv = &mut self.cache.layers[l];
            // Region 1: layer-norm → QKV GEMM → bias.
            fused::ln_matmul_bias_into(
                &s.x[..m * h], m, &pl.ln1_g, &pl.ln1_b, 1e-5,
                &pl.w_qkv, &pl.b_qkv, &mut s.normed, &mut s.qkv[..m * 3 * h],
            );
            // KV append in place (amortized; no reallocation at steady state).
            for i in 0..m {
                let row = &s.qkv[i * 3 * h..(i + 1) * 3 * h];
                kv.append_row_slices(&row[h..2 * h], &row[2 * h..3 * h]);
            }
            // Region 2: streaming-softmax attention over the cache. At
            // decode (m=1) the query is the leading `[h]` slice of the QKV
            // row — used in place. For multi-row prompts the query rows sit
            // strided inside `qkv`, so gather them into `y` first.
            if m == 1 {
                fused::attention_into(
                    &s.qkv[..h], 1, &kv.k, &kv.v, heads, offset, &mut s.attn[..h],
                );
            } else {
                for i in 0..m {
                    s.y[i * h..(i + 1) * h]
                        .copy_from_slice(&s.qkv[i * 3 * h..i * 3 * h + h]);
                }
                fused::attention_into(
                    &s.y[..m * h], m, &kv.k, &kv.v, heads, offset, &mut s.attn[..m * h],
                );
            }
            // Region 3: output projection GEMM + bias + residual.
            blocked::matmul_bias_add_into(
                &s.attn[..m * h], m, &pl.w_o, &pl.b_o, &s.x[..m * h], &mut s.y[..m * h],
            );
            std::mem::swap(&mut s.x, &mut s.y);
            // Region 4: layer-norm → FF1 GEMM → bias → GeLU.
            fused::ln_matmul_bias_gelu_into(
                &s.x[..m * h], m, &pl.ln2_g, &pl.ln2_b, 1e-5,
                &pl.w_ff1, &pl.b_ff1, &mut s.normed, &mut s.ff[..m * 4 * h],
            );
            // Region 5: FF2 GEMM + bias + residual.
            blocked::matmul_bias_add_into(
                &s.ff[..m * 4 * h], m, &pl.w_ff2, &pl.b_ff2, &s.x[..m * h],
                &mut s.y[..m * h],
            );
            std::mem::swap(&mut s.x, &mut s.y);
        }

        // Final layer-norm (row-wise into `normed`), then tied-embedding
        // logits via the pre-packed `wteᵀ`.
        let wte = &self.pm.wte_packed;
        for i in 0..m {
            fused::layernorm_row_into(
                &s.x[i * h..(i + 1) * h],
                model.lnf_g.data(), model.lnf_b.data(), 1e-5,
                &mut s.normed,
            );
            blocked::matmul_into(&s.normed, 1, wte, &mut s.logits[i * c.vocab..(i + 1) * c.vocab]);
        }
        self.last_m = m;
        &self.scratch.logits[..m * c.vocab]
    }

    /// Ingest `prompt` and arm step-wise generation: after `begin`, each
    /// [`FastSession::generate_step`] emits the next greedy token. The
    /// step-wise pair is token-identical to one-shot
    /// [`FastSession::generate`] (which is implemented on top of it).
    pub fn begin(&mut self, prompt: &[usize]) {
        self.forward(prompt);
        self.to_feed = None;
    }

    /// Emit the next greedy token. The previous step's token (if any) is fed
    /// through the model first, then the fresh logits row is sampled — so a
    /// caller can stop between any two steps (deadline, cancellation) with
    /// the tokens emitted so far forming an exact prefix of the full
    /// generation.
    ///
    /// Panics if no [`FastSession::begin`] / [`FastSession::forward`] has
    /// run yet.
    pub fn generate_step(&mut self) -> usize {
        if let Some(t) = self.to_feed.take() {
            self.forward(&[t]);
        }
        let tok = argmax(self.last_logits());
        self.to_feed = Some(tok);
        tok
    }

    /// Greedy generation: process `prompt`, then emit `n_tokens` tokens
    /// (`n_tokens == 0` ingests the prompt and returns no tokens). Matches
    /// [`GptModel::generate`] token-for-token (up to f32 reassociation in
    /// the GEMMs).
    pub fn generate(&mut self, prompt: &[usize], n_tokens: usize) -> Vec<usize> {
        self.begin(prompt);
        (0..n_tokens).map(|_| self.generate_step()).collect()
    }

    /// Scratch capacity fingerprint (see [`Scratch::reserved_len`]).
    pub fn scratch_reserved(&self) -> usize {
        self.scratch.reserved_len()
    }

    /// Data pointers of every scratch buffer and KV tensor — unchanged
    /// pointers across decode steps prove the loop ran allocation-free.
    pub fn buffer_fingerprint(&self) -> Vec<usize> {
        let s = &self.scratch;
        let mut f = vec![
            s.normed.as_ptr() as usize,
            s.qkv.as_ptr() as usize,
            s.attn.as_ptr() as usize,
            s.ff.as_ptr() as usize,
            s.logits.as_ptr() as usize,
        ];
        // x and y swap per layer, so fingerprint them as an unordered pair.
        let (a, b) = (s.x.as_ptr() as usize, s.y.as_ptr() as usize);
        f.push(a.min(b));
        f.push(a.max(b));
        for l in &self.cache.layers {
            f.push(l.k.data().as_ptr() as usize);
            f.push(l.v.data().as_ptr() as usize);
        }
        f
    }
}

/// Greedy sampling over one logits row, shared by every session front-end
/// (fast path, TP engine, benches) so tie-breaking cannot drift.
#[inline]
pub fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    let mut bv = f32::NEG_INFINITY;
    // `>=` keeps the *last* maximum on exact ties, matching the reference
    // `ops::argmax_rows` (Iterator::max_by returns the last of equals).
    for (i, &v) in row.iter().enumerate() {
        if v >= bv {
            bv = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use dsi_kernels::tensor::Tensor;

    fn model(layers: usize, seed: u64) -> GptModel {
        GptModel::random(zoo::tiny(layers), seed)
    }

    #[test]
    fn fast_logits_match_reference() {
        let m = model(2, 42);
        let pm = PackedModel::pack(&m);
        let mut sess = pm.session(4);
        let got = sess.forward(&[1, 2, 3, 4]).to_vec();
        let want = m.forward_full(&[1, 2, 3, 4]);
        let gt = Tensor::from_vec(&[4, 101], got);
        assert!(
            gt.allclose(&want, 1e-3),
            "max diff {}",
            gt.max_abs_diff(&want)
        );
    }

    #[test]
    fn fast_incremental_matches_fast_full() {
        let m = model(3, 7);
        let pm = PackedModel::pack(&m);
        let mut inc = pm.session(3);
        inc.forward(&[5, 6, 7]);
        let got = inc.forward(&[8]).to_vec();
        let mut full = pm.session(4);
        let all = full.forward(&[5, 6, 7, 8]);
        let last = &all[3 * 101..4 * 101];
        let diff = got
            .iter()
            .zip(last)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(diff < 1e-3, "max diff {diff}");
    }

    #[test]
    fn fast_generate_matches_reference_generate() {
        for seed in [1u64, 9, 33] {
            let m = model(2, seed);
            let pm = PackedModel::pack(&m);
            let mut sess = pm.session(4);
            let want = m.generate(&[1, 2, 3, 4], 8);
            let got = sess.generate(&[1, 2, 3, 4], 8);
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn steady_state_decode_does_not_allocate() {
        let m = model(2, 5);
        let pm = PackedModel::pack(&m);
        let mut sess = pm.session(4);
        // Prompt + one decode step to reach steady state.
        sess.forward(&[1, 2, 3, 4]);
        sess.forward(&[7]);
        let fp = sess.buffer_fingerprint();
        let reserved = sess.scratch_reserved();
        // Every further token must reuse the same buffers: identical data
        // pointers for all scratch and KV storage.
        for t in 0..20 {
            sess.forward(&[(t * 13 + 2) % 101]);
            assert_eq!(sess.buffer_fingerprint(), fp, "token {t} reallocated");
            assert_eq!(sess.scratch_reserved(), reserved);
        }
    }

    #[test]
    fn session_reuse_across_prompts() {
        let m = model(2, 11);
        let pm = PackedModel::pack(&m);
        let mut a = pm.session(3);
        let first = a.generate(&[1, 2, 3], 4);
        // A fresh session over the same packed model reproduces it.
        let mut b = pm.session(3);
        assert_eq!(b.generate(&[1, 2, 3], 4), first);
    }
}
