//! The executed Deep-Fusion decode path: packed weights + fused kernels +
//! amortized KV + scratch reuse.
//!
//! [`GptModel`] (the reference) is written for clarity: every operator
//! allocates its output, the KV cache is rebuilt per token, and GEMMs run
//! against the row-major weight layout. This module is the performance
//! counterpart the paper's Sec. III argues for, built from four ingredients:
//!
//! 1. **Pack once, reuse every token** — [`PackedModel`] pre-transposes each
//!    layer's four weight matrices into the panel layout of
//!    `dsi_kernels::blocked` at construction, including the tied embedding
//!    (stored `[vocab, h]`, i.e. already transposed for the logits
//!    projection — `PackedB::from_pre_transposed` only re-panels it).
//! 2. **Fused region kernels** — each transformer layer executes as the four
//!    Fig. 1(c) small-batch fused regions (`dsi_kernels::fused`): interior
//!    activations live in scratch rows, never in fresh tensors.
//! 3. **Amortized KV cache** — the session reserves the full
//!    prompt+generation KV budget up front and appends rows in place
//!    ([`LayerKv::append_row_slices`]), replacing the seed's O(T²) per-token
//!    `cat_rows` rebuild.
//! 4. **Scratch reuse** — [`Scratch`] owns every intermediate buffer; the
//!    steady-state one-token decode loop performs **zero heap allocations**
//!    (asserted by `Scratch::alloc_guard` in tests).
//!
//! Numerically the path tracks the reference within f32 reassociation noise
//! (the packed GEMM sums in a different order); greedy decode is verified
//! token-for-token against [`GptModel::generate`] in the property suite.

use crate::config::GptConfig;
use crate::reference::{GptModel, KvCache, LayerKv, LayerWeights};
use dsi_kernels::blocked::{self, PackedB, PanelWeights};
use dsi_kernels::fused;
use dsi_kernels::quant::QuantizedPackedB;
use dsi_kernels::tensor::Tensor;

/// One layer's weights in execution layout: GEMM operands packed (FP32
/// panels by default, group-quantized INT8 panels for the
/// [`QuantizedPackedModel`] fast path), vectors as plain slices.
#[derive(Debug, Clone)]
pub struct PackedLayer<B = PackedB> {
    pub ln1_g: Vec<f32>,
    pub ln1_b: Vec<f32>,
    /// `[h, 3h]` QKV projection, packed.
    pub w_qkv: B,
    pub b_qkv: Vec<f32>,
    /// `[h, h]` attention output projection, packed.
    pub w_o: B,
    pub b_o: Vec<f32>,
    pub ln2_g: Vec<f32>,
    pub ln2_b: Vec<f32>,
    /// `[h, 4h]`, packed.
    pub w_ff1: B,
    pub b_ff1: Vec<f32>,
    /// `[4h, h]`, packed.
    pub w_ff2: B,
    pub b_ff2: Vec<f32>,
}

impl<B> PackedLayer<B> {
    /// Pack one layer with an arbitrary weight-packing function (FP32
    /// panels, INT8 quantize-and-pack, ...).
    pub fn pack_with(lw: &LayerWeights, f: impl Fn(&Tensor) -> B) -> Self {
        PackedLayer {
            ln1_g: lw.ln1_g.data().to_vec(),
            ln1_b: lw.ln1_b.data().to_vec(),
            w_qkv: f(&lw.w_qkv),
            b_qkv: lw.b_qkv.data().to_vec(),
            w_o: f(&lw.w_o),
            b_o: lw.b_o.data().to_vec(),
            ln2_g: lw.ln2_g.data().to_vec(),
            ln2_b: lw.ln2_b.data().to_vec(),
            w_ff1: f(&lw.w_ff1),
            b_ff1: lw.b_ff1.data().to_vec(),
            w_ff2: f(&lw.w_ff2),
            b_ff2: lw.b_ff2.data().to_vec(),
        }
    }
}

impl PackedLayer<PackedB> {
    pub fn pack(lw: &LayerWeights) -> Self {
        Self::pack_with(lw, PackedB::pack)
    }
}

/// A reference model plus its packed execution layout. Embedding lookups and
/// final layer-norm parameters are borrowed from the model; the tied
/// embedding is additionally panel-packed once as the logits operand.
///
/// Generic over the packed weight storage `B`: `PackedModel<'m>` is the
/// FP32 fast path, [`QuantizedPackedModel`] streams ~¼ the weight bytes via
/// INT8 panels dequantized in registers (Sec. III-D).
pub struct PackedModel<'m, B = PackedB> {
    pub model: &'m GptModel,
    pub layers: Vec<PackedLayer<B>>,
    /// `wteᵀ` as the packed `[h, vocab]` logits projection.
    pub wte_packed: B,
}

/// The INT8 weight-only fast path: group-quantized panels, FP32
/// activations, dequantization in registers inside the GEMM microkernels —
/// the FP32 weights are never materialized.
pub type QuantizedPackedModel<'m> = PackedModel<'m, QuantizedPackedB>;

/// A [`FastSession`] decoding over INT8 packed weights.
pub type QuantizedFastSession<'p, 'm> = FastSession<'p, 'm, QuantizedPackedB>;

impl<'m> PackedModel<'m> {
    /// One-time packing pass over all layers.
    pub fn pack(model: &'m GptModel) -> Self {
        PackedModel {
            layers: model.layers.iter().map(PackedLayer::pack).collect(),
            wte_packed: PackedB::from_pre_transposed(&model.wte),
            model,
        }
    }
}

impl<'m> QuantizedPackedModel<'m> {
    /// One-time group-quantize + pack pass over all layers (`group_size`
    /// input rows share one scale).
    pub fn quantize_pack(model: &'m GptModel, group_size: usize) -> Self {
        PackedModel {
            layers: model
                .layers
                .iter()
                .map(|lw| PackedLayer::pack_with(lw, |w| QuantizedPackedB::quantize_pack(w, group_size)))
                .collect(),
            wte_packed: QuantizedPackedB::quantize_pack_pre_transposed(&model.wte, group_size),
            model,
        }
    }
}

impl<'m, B: PanelWeights> PackedModel<'m, B> {
    pub fn config(&self) -> &GptConfig {
        &self.model.config
    }

    /// Bytes of packed weight storage streamed by one full forward pass
    /// (all four layer GEMM operands plus the logits projection) — the
    /// denominator of the decode bench's effective-bandwidth number.
    pub fn weight_stream_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| {
                l.w_qkv.storage_bytes()
                    + l.w_o.storage_bytes()
                    + l.w_ff1.storage_bytes()
                    + l.w_ff2.storage_bytes()
            })
            .sum::<usize>()
            + self.wte_packed.storage_bytes()
    }

    /// Start a decode session with all scratch and KV capacity sized for
    /// `max_prompt` prompt tokens plus generation up to the model's
    /// `max_seq`.
    pub fn session(&self, max_prompt: usize) -> FastSession<'_, 'm, B> {
        let c = self.config();
        FastSession {
            pm: self,
            cache: KvCache::with_capacity(c.layers, c.hidden, c.max_seq),
            scratch: Scratch::new(c, max_prompt.max(1)),
            last_m: 0,
            to_feed: None,
        }
    }

    /// Start a batched decode session stepping `prompts.len()` sequences
    /// per forward pass (the `Engine`-step surface of ROADMAP item 1).
    pub fn batched_session(
        &self,
        prompts: &[Vec<usize>],
        max_new_tokens: usize,
    ) -> BatchedFastSession<'_, 'm, B> {
        assert!(!prompts.is_empty());
        let c = self.config();
        let max_prompt = prompts.iter().map(Vec::len).max().unwrap_or(1);
        let seqs = prompts
            .iter()
            .map(|p| {
                assert!(!p.is_empty(), "empty prompt");
                BatchedSeq {
                    cache: KvCache::with_capacity(c.layers, c.hidden, c.max_seq),
                    tokens: p.clone(),
                    prompt_len: p.len(),
                    generated: 0,
                    finished: false,
                }
            })
            .collect();
        BatchedFastSession {
            pm: self,
            seqs,
            scratch: Scratch::new(c, max_prompt.max(prompts.len()).max(1)),
            eos: None,
            max_new_tokens,
            active_idx: Vec::with_capacity(prompts.len()),
        }
    }

    /// Start an **empty** batched session with `max_slots` reusable slots,
    /// all initially released — the multi-slot contiguous-KV engine surface
    /// behind `dsi-core`'s `BatchEngine` ([`BatchedFastSession::prefill_slot`]
    /// / [`BatchedFastSession::decode_slots`] /
    /// [`BatchedFastSession::release_slot`]).
    pub fn slot_session(&self, max_slots: usize, max_prompt: usize) -> BatchedFastSession<'_, 'm, B> {
        assert!(max_slots > 0);
        let c = self.config();
        BatchedFastSession {
            pm: self,
            seqs: (0..max_slots)
                .map(|_| BatchedSeq {
                    cache: KvCache::with_capacity(c.layers, c.hidden, c.max_seq),
                    tokens: Vec::new(),
                    prompt_len: 0,
                    generated: 0,
                    finished: true,
                })
                .collect(),
            scratch: Scratch::new(c, max_prompt.max(max_slots).max(1)),
            eos: None,
            max_new_tokens: usize::MAX,
            active_idx: Vec::with_capacity(max_slots),
        }
    }

    /// Forward `ids` as consecutive positions of **one** sequence over
    /// `cache`, leaving `[ids.len(), vocab]` logits in `scratch`. The
    /// engine core shared by [`FastSession::forward`] and the batched
    /// prompt phase.
    pub fn forward_seq(&self, s: &mut Scratch, cache: &mut KvCache, ids: &[usize]) {
        let c = self.config();
        let m = ids.len();
        let offset = cache.context_len();
        assert!(offset + m <= c.max_seq, "sequence exceeds max_seq");
        s.ensure(c, m);
        embed_seq_into(c, &self.model.wte, &self.model.wpe, ids, offset, s);
        for (l, pl) in self.layers.iter().enumerate() {
            layer_seq_step(c, s, pl, &mut cache.layers[l], m, offset);
        }
        logits_into(c, s, m, self.model.lnf_g.data(), self.model.lnf_b.data(), &self.wte_packed);
    }

    /// Forward one token of **each of `rows.len()` independent sequences**
    /// in a single ragged-batch pass: dense M-row GEMMs for regions 1/3/4/5
    /// and the logits projection, per-row KV append and online-softmax
    /// attention over each row's own cache (per-row lengths). Leaves
    /// `[rows.len(), vocab]` logits in `scratch`, row `i` belonging to
    /// `rows[i]`.
    ///
    /// Because every microkernel accumulates like the M=1 kernel, the
    /// logits of row `i` are **bit-identical** to stepping that sequence
    /// alone through [`PackedModel::forward_seq`].
    pub fn forward_rows(&self, s: &mut Scratch, rows: &mut [StepRow<'_>]) {
        let c = self.config();
        let m = rows.len();
        assert!(m > 0, "forward_rows: empty batch");
        s.ensure(c, m);
        embed_rows_into(c, &self.model.wte, &self.model.wpe, rows, s);
        for (l, pl) in self.layers.iter().enumerate() {
            layer_rows_step(c, s, pl, rows, l);
        }
        logits_into(c, s, m, self.model.lnf_g.data(), self.model.lnf_b.data(), &self.wte_packed);
    }
}

// ---------------------------------------------------------------------------
// The fused forward pass, one free function per stage.
//
// These are the single source of the Deep-Fusion kernel sequence: both the
// fully-resident [`PackedModel`] engines and `dsi-zero`'s streamed engine
// (which holds only a window of layer panels resident at a time) drive the
// same functions, so "streamed decode is token-identical to the resident
// oracle" holds by construction — the two paths cannot drift apart
// numerically, only in where the `PackedLayer` came from.
// ---------------------------------------------------------------------------

/// Embedding stage for `ids` as consecutive positions (starting at
/// `offset`) of one sequence: token row + position row fused into one write
/// of `s.x`. Caller has run `s.ensure(c, ids.len())`.
pub fn embed_seq_into(c: &GptConfig, wte: &Tensor, wpe: &Tensor, ids: &[usize], offset: usize, s: &mut Scratch) {
    let h = c.hidden;
    for (i, &id) in ids.iter().enumerate() {
        assert!(id < c.vocab, "token id {id} out of vocab");
        let te = wte.row(id);
        let pe = wpe.row(offset + i);
        for (x, (&t, &p)) in s.x[i * h..(i + 1) * h].iter_mut().zip(te.iter().zip(pe)) {
            *x = t + p;
        }
    }
}

/// Embedding stage for one token of each of `rows.len()` independent
/// sequences, each at its own cache position. Caller has run
/// `s.ensure(c, rows.len())`.
pub fn embed_rows_into(c: &GptConfig, wte: &Tensor, wpe: &Tensor, rows: &[StepRow<'_>], s: &mut Scratch) {
    let h = c.hidden;
    for (i, row) in rows.iter().enumerate() {
        let pos = row.cache.context_len();
        assert!(pos < c.max_seq, "sequence exceeds max_seq");
        assert!(row.token < c.vocab, "token id {} out of vocab", row.token);
        let te = wte.row(row.token);
        let pe = wpe.row(pos);
        for (x, (&t, &p)) in s.x[i * h..(i + 1) * h].iter_mut().zip(te.iter().zip(pe)) {
            *x = t + p;
        }
    }
}

/// One transformer layer over `m` consecutive rows of a single sequence
/// whose prior context length is `offset` (the `forward_seq` layer body):
/// fused regions 1–5, KV appended in place to `kv`.
pub fn layer_seq_step<B: PanelWeights>(
    c: &GptConfig,
    s: &mut Scratch,
    pl: &PackedLayer<B>,
    kv: &mut LayerKv,
    m: usize,
    offset: usize,
) {
    let (h, heads) = (c.hidden, c.heads);
    // Region 1: layer-norm rows → one M-row QKV GEMM → bias.
    fused::ln_matmul_bias_into(
        &s.x[..m * h], m, &pl.ln1_g, &pl.ln1_b, 1e-5,
        &pl.w_qkv, &pl.b_qkv, &mut s.normed[..m * h], &mut s.qkv[..m * 3 * h],
    );
    // KV append in place (amortized; no reallocation at steady state).
    for i in 0..m {
        let row = &s.qkv[i * 3 * h..(i + 1) * 3 * h];
        kv.append_row_slices(&row[h..2 * h], &row[2 * h..3 * h]);
    }
    // Region 2: streaming-softmax attention over the cache, queries read in
    // place from the QKV block (stride 3h) — no gather.
    fused::attention_seq_into(
        &s.qkv[..m * 3 * h], 3 * h, m, &kv.k, &kv.v, heads, offset,
        &mut s.attn[..m * h],
    );
    // Region 3: output projection GEMM + bias + residual.
    blocked::matmul_bias_add_into(
        &s.attn[..m * h], m, &pl.w_o, &pl.b_o, &s.x[..m * h], &mut s.y[..m * h],
    );
    std::mem::swap(&mut s.x, &mut s.y);
    // Region 4: layer-norm → FF1 GEMM → bias → GeLU.
    fused::ln_matmul_bias_gelu_into(
        &s.x[..m * h], m, &pl.ln2_g, &pl.ln2_b, 1e-5,
        &pl.w_ff1, &pl.b_ff1, &mut s.normed[..m * h], &mut s.ff[..m * 4 * h],
    );
    // Region 5: FF2 GEMM + bias + residual.
    blocked::matmul_bias_add_into(
        &s.ff[..m * 4 * h], m, &pl.w_ff2, &pl.b_ff2, &s.x[..m * h],
        &mut s.y[..m * h],
    );
    std::mem::swap(&mut s.x, &mut s.y);
}

/// One transformer layer (`layer`) over a ragged batch: dense M-row GEMMs
/// for regions 1/3/4/5, per-row KV append + online-softmax attention over
/// each row's own cache (the `forward_rows` layer body).
pub fn layer_rows_step<B: PanelWeights>(
    c: &GptConfig,
    s: &mut Scratch,
    pl: &PackedLayer<B>,
    rows: &mut [StepRow<'_>],
    layer: usize,
) {
    let (h, heads) = (c.hidden, c.heads);
    let m = rows.len();
    fused::ln_matmul_bias_into(
        &s.x[..m * h], m, &pl.ln1_g, &pl.ln1_b, 1e-5,
        &pl.w_qkv, &pl.b_qkv, &mut s.normed[..m * h], &mut s.qkv[..m * 3 * h],
    );
    // Ragged region 2: each row appends to and attends over its own cache
    // at its own position.
    for (i, row) in rows.iter_mut().enumerate() {
        let kv = &mut row.cache.layers[layer];
        let off = kv.len();
        let qkv_row = &s.qkv[i * 3 * h..(i + 1) * 3 * h];
        kv.append_row_slices(&qkv_row[h..2 * h], &qkv_row[2 * h..3 * h]);
        fused::attention_row_into(
            &s.qkv[i * 3 * h..i * 3 * h + h],
            &kv.k, &kv.v, heads, off,
            &mut s.attn[i * h..(i + 1) * h],
        );
    }
    blocked::matmul_bias_add_into(
        &s.attn[..m * h], m, &pl.w_o, &pl.b_o, &s.x[..m * h], &mut s.y[..m * h],
    );
    std::mem::swap(&mut s.x, &mut s.y);
    fused::ln_matmul_bias_gelu_into(
        &s.x[..m * h], m, &pl.ln2_g, &pl.ln2_b, 1e-5,
        &pl.w_ff1, &pl.b_ff1, &mut s.normed[..m * h], &mut s.ff[..m * 4 * h],
    );
    blocked::matmul_bias_add_into(
        &s.ff[..m * 4 * h], m, &pl.w_ff2, &pl.b_ff2, &s.x[..m * h],
        &mut s.y[..m * h],
    );
    std::mem::swap(&mut s.x, &mut s.y);
}

/// Final stage: layer-norm each of the `m` rows, then one M-row
/// tied-embedding logits GEMM via the pre-packed `wteᵀ` into `s.logits`.
pub fn logits_into<B: PanelWeights>(
    c: &GptConfig,
    s: &mut Scratch,
    m: usize,
    lnf_g: &[f32],
    lnf_b: &[f32],
    wte_packed: &B,
) {
    let h = c.hidden;
    for i in 0..m {
        fused::layernorm_row_into(
            &s.x[i * h..(i + 1) * h],
            lnf_g, lnf_b, 1e-5,
            &mut s.normed[i * h..(i + 1) * h],
        );
    }
    blocked::matmul_into(&s.normed[..m * h], m, wte_packed, &mut s.logits[..m * c.vocab]);
}

/// One sequence's contribution to a batched decode step: the token to feed
/// and the KV cache it extends.
pub struct StepRow<'a> {
    pub token: usize,
    pub cache: &'a mut KvCache,
}

/// Preallocated intermediate buffers for the fused layer loop. Sized for
/// `m` concurrent rows (the prompt length; steady-state decode uses `m=1`
/// slices of the same buffers).
#[derive(Debug)]
pub struct Scratch {
    /// `[h]` layer-norm output row (interior of fused regions 1 and 4).
    pub(crate) normed: Vec<f32>,
    /// `[m, h]` current activations.
    pub(crate) x: Vec<f32>,
    /// `[m, 3h]` fused QKV projection output.
    pub(crate) qkv: Vec<f32>,
    /// `[m, h]` attention context output.
    pub(crate) attn: Vec<f32>,
    /// `[m, h]` block output (regions 3/5 write here, then swap with `x`).
    pub(crate) y: Vec<f32>,
    /// `[m, 4h]` FF1 activation.
    pub(crate) ff: Vec<f32>,
    /// `[m, vocab]` logits.
    pub(crate) logits: Vec<f32>,
}

/// The scratch arena's layout: `(buffer name, capacity in floats)` for `m`
/// concurrent rows, in declaration order. [`Scratch::new`] allocates from
/// this table and the static verifier (`dsi-verify::scratch`) analyses
/// aliasing/lifetimes against it, so the two cannot drift apart.
pub fn scratch_layout(c: &GptConfig, m: usize) -> [(&'static str, usize); 7] {
    let h = c.hidden;
    [
        ("normed", m * h),
        ("x", m * h),
        ("qkv", m * 3 * h),
        ("attn", m * h),
        ("y", m * h),
        ("ff", m * 4 * h),
        ("logits", m * c.vocab),
    ]
}

impl Scratch {
    /// Allocate for `m` concurrent rows (public so batched front-ends in
    /// sibling modules can own their scratch).
    pub fn new(c: &GptConfig, m: usize) -> Self {
        let [normed, x, qkv, attn, y, ff, logits] =
            scratch_layout(c, m).map(|(_, len)| vec![0.0; len]);
        Scratch { normed, x, qkv, attn, y, ff, logits }
    }

    /// Grow (never shrink) to fit `m` rows.
    pub fn ensure(&mut self, c: &GptConfig, m: usize) {
        let h = c.hidden;
        if self.x.len() < m * h {
            *self = Scratch::new(c, m);
        }
    }

    /// Logits row `i` of the most recent `m`-row forward.
    pub fn logits_row(&self, i: usize, vocab: usize) -> &[f32] {
        &self.logits[i * vocab..(i + 1) * vocab]
    }

    /// Capacity fingerprint: total reserved floats across all buffers. The
    /// zero-allocation invariant of steady-state decode is "this value and
    /// every buffer pointer are unchanged across tokens".
    pub fn reserved_len(&self) -> usize {
        self.normed.len()
            + self.x.len()
            + self.qkv.len()
            + self.attn.len()
            + self.y.len()
            + self.ff.len()
            + self.logits.len()
    }
}

/// A generation session over a packed model: owns the KV cache and scratch.
pub struct FastSession<'p, 'm, B = PackedB> {
    pm: &'p PackedModel<'m, B>,
    pub cache: KvCache,
    scratch: Scratch,
    /// Row count of the most recent [`FastSession::forward`] call; selects
    /// the sampling row inside the scratch logits buffer.
    last_m: usize,
    /// The token emitted by the last [`FastSession::generate_step`] that has
    /// not been fed through the model yet. Feeding is deferred to the start
    /// of the *next* step so a caller that stops early (deadline,
    /// cancellation) never pays for a forward pass whose logits it will not
    /// sample.
    to_feed: Option<usize>,
}

impl<B: PanelWeights> FastSession<'_, '_, B> {
    /// Context length consumed so far.
    pub fn context_len(&self) -> usize {
        self.cache.context_len()
    }

    /// The `[vocab]` logits row of the most recently forwarded position —
    /// the row greedy sampling reads. Centralizes the
    /// `(m - 1) * vocab` slice math so session front-ends (this one and
    /// `dsi-parallel`'s `TpSession`) never duplicate it.
    ///
    /// Panics if no `forward` has run yet.
    pub fn last_logits(&self) -> &[f32] {
        assert!(self.last_m > 0, "last_logits() before any forward()");
        let vocab = self.pm.config().vocab;
        &self.scratch.logits[(self.last_m - 1) * vocab..self.last_m * vocab]
    }

    /// Forward `ids` through all layers, extending the KV cache; leaves
    /// `[ids.len(), vocab]` logits in scratch and returns them as a slice.
    pub fn forward(&mut self, ids: &[usize]) -> &[f32] {
        let m = ids.len();
        self.pm.forward_seq(&mut self.scratch, &mut self.cache, ids);
        self.last_m = m;
        &self.scratch.logits[..m * self.pm.config().vocab]
    }

    /// Ingest `prompt` and arm step-wise generation: after `begin`, each
    /// [`FastSession::generate_step`] emits the next greedy token. The
    /// step-wise pair is token-identical to one-shot
    /// [`FastSession::generate`] (which is implemented on top of it).
    pub fn begin(&mut self, prompt: &[usize]) {
        self.forward(prompt);
        self.to_feed = None;
    }

    /// Emit the next greedy token. The previous step's token (if any) is fed
    /// through the model first, then the fresh logits row is sampled — so a
    /// caller can stop between any two steps (deadline, cancellation) with
    /// the tokens emitted so far forming an exact prefix of the full
    /// generation.
    ///
    /// Panics if no [`FastSession::begin`] / [`FastSession::forward`] has
    /// run yet.
    pub fn generate_step(&mut self) -> usize {
        if let Some(t) = self.to_feed.take() {
            self.forward(&[t]);
        }
        let tok = argmax(self.last_logits());
        self.to_feed = Some(tok);
        tok
    }

    /// Drop all decode state (KV context, pending token), keeping every
    /// buffer's capacity: the session is ready for a fresh prompt with zero
    /// reallocation — the single-slot engine's `release` path.
    pub fn reset(&mut self) {
        self.cache.clear();
        self.to_feed = None;
        self.last_m = 0;
    }

    /// Greedy generation: process `prompt`, then emit `n_tokens` tokens
    /// (`n_tokens == 0` ingests the prompt and returns no tokens). Matches
    /// [`GptModel::generate`] token-for-token (up to f32 reassociation in
    /// the GEMMs).
    pub fn generate(&mut self, prompt: &[usize], n_tokens: usize) -> Vec<usize> {
        self.begin(prompt);
        (0..n_tokens).map(|_| self.generate_step()).collect()
    }

    /// Scratch capacity fingerprint (see [`Scratch::reserved_len`]).
    pub fn scratch_reserved(&self) -> usize {
        self.scratch.reserved_len()
    }

    /// Data pointers of every scratch buffer and KV tensor — unchanged
    /// pointers across decode steps prove the loop ran allocation-free.
    pub fn buffer_fingerprint(&self) -> Vec<usize> {
        let s = &self.scratch;
        let mut f = vec![
            s.normed.as_ptr() as usize,
            s.qkv.as_ptr() as usize,
            s.attn.as_ptr() as usize,
            s.ff.as_ptr() as usize,
            s.logits.as_ptr() as usize,
        ];
        // x and y swap per layer, so fingerprint them as an unordered pair.
        let (a, b) = (s.x.as_ptr() as usize, s.y.as_ptr() as usize);
        f.push(a.min(b));
        f.push(a.max(b));
        for l in &self.cache.layers {
            f.push(l.k.data().as_ptr() as usize);
            f.push(l.v.data().as_ptr() as usize);
        }
        f
    }
}

/// State of one sequence inside a [`BatchedFastSession`].
#[derive(Debug, Clone)]
pub struct BatchedSeq {
    pub cache: KvCache,
    /// All tokens so far (prompt + generated).
    pub tokens: Vec<usize>,
    pub prompt_len: usize,
    /// Tokens generated so far.
    pub generated: usize,
    pub finished: bool,
}

/// Greedy batched decode over a packed model: **M sequences advance per
/// forward pass** through the M-row microkernels, each over its own KV
/// cache (ragged lengths, early EOS). Construct via
/// [`PackedModel::batched_session`].
///
/// Token streams are bit-identical to running each sequence alone through a
/// [`FastSession`] — the microkernel accumulation-order invariant makes the
/// batch decomposition invisible to the numerics. Scratch and KV storage
/// are preallocated; steady-state steps reuse them (the only per-step
/// allocation is the transient `StepRow` pointer list).
pub struct BatchedFastSession<'p, 'm, B = PackedB> {
    pm: &'p PackedModel<'m, B>,
    pub seqs: Vec<BatchedSeq>,
    scratch: Scratch,
    /// Token id that terminates a sequence, if any.
    pub eos: Option<usize>,
    /// Per-sequence generation cap.
    pub max_new_tokens: usize,
    /// Reused per-step list of unfinished sequence indices.
    active_idx: Vec<usize>,
}

impl<B: PanelWeights> BatchedFastSession<'_, '_, B> {
    /// Prompt phase: ingest every sequence's prompt (one `forward_seq`
    /// each — prompts are ragged, so they cannot share a dense batch) and
    /// emit each sequence's first greedy token.
    pub fn prompt(&mut self) {
        let c = self.pm.config();
        for sq in &mut self.seqs {
            self.pm.forward_seq(&mut self.scratch, &mut sq.cache, &sq.tokens.clone());
            let next = argmax(self.scratch.logits_row(sq.prompt_len - 1, c.vocab));
            sq.tokens.push(next);
            sq.generated = 1;
            sq.finished = Some(next) == self.eos || sq.generated >= self.max_new_tokens;
        }
    }

    /// One batched generation step: every unfinished sequence's pending
    /// token is fed through a single M-row forward pass and its next greedy
    /// token sampled. Returns how many sequences advanced.
    pub fn step(&mut self) -> usize {
        let vocab = self.pm.config().vocab;
        self.active_idx.clear();
        self.active_idx
            .extend(self.seqs.iter().enumerate().filter(|(_, s)| !s.finished).map(|(i, _)| i));
        if self.active_idx.is_empty() {
            return 0;
        }
        let mut rows: Vec<StepRow<'_>> = self
            .seqs
            .iter_mut()
            .filter(|s| !s.finished)
            .map(|s| StepRow {
                token: *s.tokens.last().expect("non-empty prompt"),
                cache: &mut s.cache,
            })
            .collect();
        self.pm.forward_rows(&mut self.scratch, &mut rows);
        drop(rows);
        let advanced = self.active_idx.len();
        for r in 0..advanced {
            let i = self.active_idx[r];
            let next = argmax(self.scratch.logits_row(r, vocab));
            let sq = &mut self.seqs[i];
            sq.tokens.push(next);
            sq.generated += 1;
            if Some(next) == self.eos || sq.generated >= self.max_new_tokens {
                sq.finished = true;
            }
        }
        advanced
    }

    /// Run prompt + steps to completion; returns total generated tokens.
    pub fn run(&mut self) -> usize {
        self.prompt();
        let mut guard = 0;
        while self.step() > 0 {
            guard += 1;
            assert!(guard <= self.max_new_tokens + 1, "runaway generation");
        }
        self.seqs.iter().map(|s| s.generated).sum()
    }

    /// Generated suffix of sequence `i`.
    pub fn output(&self, i: usize) -> &[usize] {
        let s = &self.seqs[i];
        &s.tokens[s.prompt_len..]
    }

    /// Engine-slot surface: (re)fill `slot` with a fresh prompt, run its
    /// prompt pass, and return the first greedy token (recorded as the
    /// slot's pending feed). Unlike [`BatchedFastSession::prompt`], slot
    /// retirement (EOS, caps) is the *caller's* decision — this surface
    /// only executes.
    pub fn prefill_slot(&mut self, slot: usize, prompt: &[usize]) -> usize {
        assert!(!prompt.is_empty(), "empty prompt");
        let vocab = self.pm.config().vocab;
        let sq = &mut self.seqs[slot];
        sq.cache.clear();
        sq.tokens.clear();
        sq.tokens.extend_from_slice(prompt);
        sq.prompt_len = prompt.len();
        sq.finished = false;
        self.pm.forward_seq(&mut self.scratch, &mut sq.cache, prompt);
        let next = argmax(self.scratch.logits_row(prompt.len() - 1, vocab));
        sq.tokens.push(next);
        sq.generated = 1;
        next
    }

    /// Engine-slot surface: advance the given slots (strictly ascending,
    /// in-use) by one token each through a single ragged M-row pass,
    /// appending each slot's new token to `out` in `slots` order.
    pub fn decode_slots(&mut self, slots: &[usize], out: &mut Vec<usize>) {
        assert!(!slots.is_empty(), "decode_slots: empty batch");
        assert!(
            slots.windows(2).all(|w| w[0] < w[1]),
            "decode_slots: slots must be strictly ascending"
        );
        let vocab = self.pm.config().vocab;
        let mut rows: Vec<StepRow<'_>> = self
            .seqs
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| slots.binary_search(i).is_ok())
            .map(|(_, s)| StepRow {
                token: *s.tokens.last().expect("slot not prefilled"),
                cache: &mut s.cache,
            })
            .collect();
        assert_eq!(rows.len(), slots.len(), "decode_slots: slot out of range");
        self.pm.forward_rows(&mut self.scratch, &mut rows);
        drop(rows);
        for (r, &i) in slots.iter().enumerate() {
            let next = argmax(self.scratch.logits_row(r, vocab));
            let sq = &mut self.seqs[i];
            sq.tokens.push(next);
            sq.generated += 1;
            out.push(next);
        }
    }

    /// Engine-slot surface: return `slot` to the released state, keeping
    /// its KV capacity for the next occupant.
    pub fn release_slot(&mut self, slot: usize) {
        let sq = &mut self.seqs[slot];
        sq.cache.clear();
        sq.tokens.clear();
        sq.prompt_len = 0;
        sq.generated = 0;
        sq.finished = true;
    }

    /// Scratch + KV data pointers; unchanged values across steps prove the
    /// steady-state loop reuses its buffers.
    pub fn buffer_fingerprint(&self) -> Vec<usize> {
        let mut f = self.scratch_fingerprint();
        for sq in &self.seqs {
            for l in &sq.cache.layers {
                f.push(l.k.data().as_ptr() as usize);
                f.push(l.v.data().as_ptr() as usize);
            }
        }
        f
    }

    fn scratch_fingerprint(&self) -> Vec<usize> {
        let s = &self.scratch;
        let (a, b) = (s.x.as_ptr() as usize, s.y.as_ptr() as usize);
        vec![
            s.normed.as_ptr() as usize,
            s.qkv.as_ptr() as usize,
            s.attn.as_ptr() as usize,
            s.ff.as_ptr() as usize,
            s.logits.as_ptr() as usize,
            a.min(b),
            a.max(b),
        ]
    }
}

/// Greedy sampling over one logits row, shared by every session front-end
/// (fast path, TP engine, benches) so tie-breaking cannot drift.
#[inline]
pub fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    let mut bv = f32::NEG_INFINITY;
    // `>=` keeps the *last* maximum on exact ties, matching the reference
    // `ops::argmax_rows` (Iterator::max_by returns the last of equals).
    for (i, &v) in row.iter().enumerate() {
        if v >= bv {
            bv = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use dsi_kernels::tensor::Tensor;

    fn model(layers: usize, seed: u64) -> GptModel {
        GptModel::random(zoo::tiny(layers), seed)
    }

    #[test]
    fn fast_logits_match_reference() {
        let m = model(2, 42);
        let pm = PackedModel::pack(&m);
        let mut sess = pm.session(4);
        let got = sess.forward(&[1, 2, 3, 4]).to_vec();
        let want = m.forward_full(&[1, 2, 3, 4]);
        let gt = Tensor::from_vec(&[4, 101], got);
        assert!(
            gt.allclose(&want, 1e-3),
            "max diff {}",
            gt.max_abs_diff(&want)
        );
    }

    #[test]
    fn fast_incremental_matches_fast_full() {
        let m = model(3, 7);
        let pm = PackedModel::pack(&m);
        let mut inc = pm.session(3);
        inc.forward(&[5, 6, 7]);
        let got = inc.forward(&[8]).to_vec();
        let mut full = pm.session(4);
        let all = full.forward(&[5, 6, 7, 8]);
        let last = &all[3 * 101..4 * 101];
        let diff = got
            .iter()
            .zip(last)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(diff < 1e-3, "max diff {diff}");
    }

    #[test]
    fn fast_generate_matches_reference_generate() {
        for seed in [1u64, 9, 33] {
            let m = model(2, seed);
            let pm = PackedModel::pack(&m);
            let mut sess = pm.session(4);
            let want = m.generate(&[1, 2, 3, 4], 8);
            let got = sess.generate(&[1, 2, 3, 4], 8);
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn steady_state_decode_does_not_allocate() {
        let m = model(2, 5);
        let pm = PackedModel::pack(&m);
        let mut sess = pm.session(4);
        // Prompt + one decode step to reach steady state.
        sess.forward(&[1, 2, 3, 4]);
        sess.forward(&[7]);
        let fp = sess.buffer_fingerprint();
        let reserved = sess.scratch_reserved();
        // Every further token must reuse the same buffers: identical data
        // pointers for all scratch and KV storage.
        for t in 0..20 {
            sess.forward(&[(t * 13 + 2) % 101]);
            assert_eq!(sess.buffer_fingerprint(), fp, "token {t} reallocated");
            assert_eq!(sess.scratch_reserved(), reserved);
        }
    }

    #[test]
    fn batched_decode_token_identical_to_per_sequence() {
        // The acceptance gate: batched FP32 decode must be *token-identical*
        // (in fact bit-identical in logits) to per-sequence FastSession runs.
        let m = model(2, 17);
        let pm = PackedModel::pack(&m);
        let prompts = vec![vec![1, 2, 3], vec![9usize, 8, 7, 6], vec![4], vec![5, 5]];
        let mut bs = pm.batched_session(&prompts, 6);
        bs.run();
        for (i, p) in prompts.iter().enumerate() {
            let mut solo = pm.session(p.len());
            let want = solo.generate(p, 6);
            assert_eq!(bs.output(i), &want[..], "sequence {i}");
        }
    }

    #[test]
    fn batched_eos_and_caps_respected() {
        let m = model(2, 23);
        let pm = PackedModel::pack(&m);
        let first = pm.session(3).generate(&[1, 2, 3], 1)[0];
        let mut bs = pm.batched_session(&[vec![1, 2, 3], vec![4, 5]], 10);
        bs.eos = Some(first);
        bs.run();
        assert_eq!(bs.seqs[0].generated, 1, "eos must stop sequence 0");
        assert!(bs.seqs[1].generated <= 10);
        assert!(bs.seqs.iter().all(|s| s.finished));
    }

    #[test]
    fn batched_steady_state_reuses_buffers() {
        let m = model(2, 29);
        let pm = PackedModel::pack(&m);
        let mut bs = pm.batched_session(&[vec![1, 2], vec![3, 4, 5], vec![6]], 16);
        bs.prompt();
        bs.step();
        let fp = bs.buffer_fingerprint();
        for _ in 0..6 {
            bs.step();
            assert_eq!(bs.buffer_fingerprint(), fp, "batched step reallocated");
        }
    }

    #[test]
    fn quantized_packed_model_decodes() {
        // Fidelity bounds live in the root proptest suite; here: the INT8
        // session runs end-to-end and mostly agrees with FP32 greedy decode
        // on a well-separated tiny model.
        let m = model(2, 31);
        let qm = QuantizedPackedModel::quantize_pack(&m, 32);
        let fp = PackedModel::pack(&m);
        let got = qm.session(4).generate(&[1, 2, 3, 4], 8);
        let want = fp.session(4).generate(&[1, 2, 3, 4], 8);
        let agree = got.iter().zip(&want).filter(|(a, b)| a == b).count();
        assert!(agree * 2 >= want.len(), "agreement {agree}/{}", want.len());
    }

    #[test]
    fn int8_weight_stream_is_under_half_of_fp32() {
        let m = model(2, 37);
        let fp = PackedModel::pack(&m);
        let qm = QuantizedPackedModel::quantize_pack(&m, 64);
        assert!(
            qm.weight_stream_bytes() * 2 < fp.weight_stream_bytes(),
            "int8 {} vs fp32 {}",
            qm.weight_stream_bytes(),
            fp.weight_stream_bytes()
        );
    }

    #[test]
    fn session_reuse_across_prompts() {
        let m = model(2, 11);
        let pm = PackedModel::pack(&m);
        let mut a = pm.session(3);
        let first = a.generate(&[1, 2, 3], 4);
        // A fresh session over the same packed model reproduces it.
        let mut b = pm.session(3);
        assert_eq!(b.generate(&[1, 2, 3], 4), first);
    }
}
