//! Model checkpoints: a compact binary format for saving/loading the
//! functional models (weights are the unit ZeRO-Inference pins to NVMe —
//! a serving system needs them on disk).
//!
//! Format: magic `DSI1`, then the config as a JSON-free binary header, then
//! each tensor as `(rank, dims..., f32 data)` little-endian. All failure
//! paths are typed ([`IoError`]); loading validates magic, version, and
//! structural consistency.

use crate::config::GptConfig;
use crate::reference::{GptModel, LayerWeights};
use bytes::{Buf, BufMut};
use dsi_kernels::tensor::Tensor;
use std::fs;
use std::path::Path;

const MAGIC: &[u8; 4] = b"DSI1";
const VERSION: u16 = 1;

/// Checkpoint errors.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    /// Not a checkpoint / wrong magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Structurally inconsistent payload.
    Corrupt(&'static str),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::BadMagic => write!(f, "not a DSI checkpoint"),
            IoError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            IoError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) {
    out.put_u8(t.shape().len() as u8);
    for &d in t.shape() {
        out.put_u64_le(d as u64);
    }
    for &v in t.data() {
        out.put_f32_le(v);
    }
}

fn get_tensor(buf: &mut &[u8]) -> Result<Tensor, IoError> {
    if buf.remaining() < 1 {
        return Err(IoError::Corrupt("truncated tensor header"));
    }
    let rank = buf.get_u8() as usize;
    if rank == 0 || rank > 4 {
        return Err(IoError::Corrupt("implausible tensor rank"));
    }
    if buf.remaining() < rank * 8 {
        return Err(IoError::Corrupt("truncated shape"));
    }
    let mut shape = Vec::with_capacity(rank);
    let mut n: usize = 1;
    for _ in 0..rank {
        let d = buf.get_u64_le() as usize;
        if d == 0 || d > 1 << 28 {
            return Err(IoError::Corrupt("implausible dimension"));
        }
        n = n.checked_mul(d).ok_or(IoError::Corrupt("shape overflow"))?;
        shape.push(d);
    }
    if buf.remaining() < n * 4 {
        return Err(IoError::Corrupt("truncated tensor data"));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f32_le());
    }
    Ok(Tensor::from_vec(&shape, data))
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8]) -> Result<String, IoError> {
    if buf.remaining() < 4 {
        return Err(IoError::Corrupt("truncated string"));
    }
    let len = buf.get_u32_le() as usize;
    if len > 1 << 16 || buf.remaining() < len {
        return Err(IoError::Corrupt("implausible string"));
    }
    let s = String::from_utf8(buf.chunk()[..len].to_vec())
        .map_err(|_| IoError::Corrupt("non-utf8 string"))?;
    buf.advance(len);
    Ok(s)
}

/// Serialize a model to bytes.
pub fn to_bytes(model: &GptModel) -> Vec<u8> {
    let c = &model.config;
    let mut out = Vec::new();
    out.put_slice(MAGIC);
    out.put_u16_le(VERSION);
    put_string(&mut out, &c.name);
    for v in [c.hidden, c.layers, c.heads, c.vocab, c.max_seq] {
        out.put_u64_le(v as u64);
    }
    put_tensor(&mut out, &model.wte);
    put_tensor(&mut out, &model.wpe);
    put_tensor(&mut out, &model.lnf_g);
    put_tensor(&mut out, &model.lnf_b);
    for lw in &model.layers {
        for t in [
            &lw.ln1_g, &lw.ln1_b, &lw.w_qkv, &lw.b_qkv, &lw.w_o, &lw.b_o, &lw.ln2_g, &lw.ln2_b,
            &lw.w_ff1, &lw.b_ff1, &lw.w_ff2, &lw.b_ff2,
        ] {
            put_tensor(&mut out, t);
        }
    }
    out
}

/// Deserialize a model from bytes.
pub fn from_bytes(mut buf: &[u8]) -> Result<GptModel, IoError> {
    if buf.remaining() < 6 {
        return Err(IoError::BadMagic);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IoError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(IoError::BadVersion(version));
    }
    let name = get_string(&mut buf)?;
    if buf.remaining() < 5 * 8 {
        return Err(IoError::Corrupt("truncated config"));
    }
    let hidden = buf.get_u64_le() as usize;
    let layers = buf.get_u64_le() as usize;
    let heads = buf.get_u64_le() as usize;
    let vocab = buf.get_u64_le() as usize;
    let max_seq = buf.get_u64_le() as usize;
    if layers == 0 || layers > 1024 || heads == 0 || !hidden.is_multiple_of(heads.max(1)) {
        return Err(IoError::Corrupt("implausible config"));
    }
    let config = GptConfig {
        name,
        hidden,
        layers,
        heads,
        vocab,
        max_seq,
    };
    let wte = get_tensor(&mut buf)?;
    let wpe = get_tensor(&mut buf)?;
    let lnf_g = get_tensor(&mut buf)?;
    let lnf_b = get_tensor(&mut buf)?;
    if wte.shape() != [vocab, hidden] || wpe.shape() != [max_seq, hidden] {
        return Err(IoError::Corrupt("embedding shape mismatch"));
    }
    let mut lws = Vec::with_capacity(layers);
    for _ in 0..layers {
        let ln1_g = get_tensor(&mut buf)?;
        let ln1_b = get_tensor(&mut buf)?;
        let w_qkv = get_tensor(&mut buf)?;
        let b_qkv = get_tensor(&mut buf)?;
        let w_o = get_tensor(&mut buf)?;
        let b_o = get_tensor(&mut buf)?;
        let ln2_g = get_tensor(&mut buf)?;
        let ln2_b = get_tensor(&mut buf)?;
        let w_ff1 = get_tensor(&mut buf)?;
        let b_ff1 = get_tensor(&mut buf)?;
        let w_ff2 = get_tensor(&mut buf)?;
        let b_ff2 = get_tensor(&mut buf)?;
        if w_qkv.shape() != [hidden, 3 * hidden] || w_ff2.shape() != [4 * hidden, hidden] {
            return Err(IoError::Corrupt("layer shape mismatch"));
        }
        lws.push(LayerWeights {
            ln1_g,
            ln1_b,
            w_qkv,
            b_qkv,
            w_o,
            b_o,
            ln2_g,
            ln2_b,
            w_ff1,
            b_ff1,
            w_ff2,
            b_ff2,
        });
    }
    if buf.has_remaining() {
        return Err(IoError::Corrupt("trailing bytes"));
    }
    Ok(GptModel {
        config,
        wte,
        wpe,
        layers: lws,
        lnf_g,
        lnf_b,
    })
}

/// Save to a file.
pub fn save(model: &GptModel, path: impl AsRef<Path>) -> Result<(), IoError> {
    Ok(fs::write(path, to_bytes(model))?)
}

/// Load from a file.
pub fn load(path: impl AsRef<Path>) -> Result<GptModel, IoError> {
    from_bytes(&fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn model() -> GptModel {
        GptModel::random(zoo::tiny(2), 77)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let m = model();
        let bytes = to_bytes(&m);
        let back = from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back.config.hidden, m.config.hidden);
        assert_eq!(back.config.name, m.config.name);
        assert!(back.wte.allclose(&m.wte, 0.0));
        for (a, b) in back.layers.iter().zip(&m.layers) {
            assert!(a.w_qkv.allclose(&b.w_qkv, 0.0));
            assert!(a.w_ff2.allclose(&b.w_ff2, 0.0));
        }
        // Behavioural identity.
        assert_eq!(back.generate(&[1, 2, 3], 5), m.generate(&[1, 2, 3], 5));
    }

    #[test]
    fn file_roundtrip() {
        let m = model();
        let path = std::env::temp_dir().join("dsi_ckpt_test.bin");
        save(&m, &path).expect("save");
        let back = load(&path).expect("load");
        assert_eq!(back.generate(&[4], 3), m.generate(&[4], 3));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = to_bytes(&model());
        bytes[0] = b'X';
        assert!(matches!(from_bytes(&bytes), Err(IoError::BadMagic)));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = to_bytes(&model());
        bytes[4] = 99;
        assert!(matches!(from_bytes(&bytes), Err(IoError::BadVersion(_))));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = to_bytes(&model());
        // Chop at a sample of offsets: every prefix must fail cleanly, never
        // panic.
        for cut in [3usize, 6, 10, 40, bytes.len() / 2, bytes.len() - 1] {
            let r = from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes must be rejected");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = to_bytes(&model());
        bytes.extend_from_slice(&[0u8; 8]);
        assert!(matches!(from_bytes(&bytes), Err(IoError::Corrupt(_))));
    }

    #[test]
    fn nonexistent_file_is_io_error() {
        assert!(matches!(
            load("/definitely/not/a/path.bin"),
            Err(IoError::Io(_))
        ));
    }
}
