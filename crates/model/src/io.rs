//! Model checkpoints: a compact binary format for saving/loading the
//! functional models (weights are the unit ZeRO-Inference pins to NVMe —
//! a serving system needs them on disk).
//!
//! Format v2: magic `DSI1`, version, the config as a JSON-free binary
//! header, then a **panel directory** — one `(byte length, CRC32)` entry
//! per panel — followed by the panel payloads back to back. Panel 0 is the
//! *resident group* (embeddings + final layer-norm: the tensors every
//! token touches at both ends of the stack); panel `1 + l` is layer `l`'s
//! twelve tensors. Each tensor is `(rank, dims..., f32 data)`
//! little-endian.
//!
//! The directory serves two consumers:
//! * [`from_bytes`] — whole-model load, which now verifies every panel
//!   checksum before parsing (v1 accepted silent bit-rot in tensor data;
//!   truncation was caught structurally but a flipped mantissa bit read
//!   back as a valid, wrong model);
//! * `dsi-zero`'s `OffloadStore` — random access: seek to one layer's
//!   panel, read it, verify its checksum, without touching the rest of a
//!   file that may be much larger than memory.
//!
//! All failure paths are typed ([`IoError`]); loading validates magic,
//! version, structural consistency, and per-panel integrity.

use crate::config::GptConfig;
use crate::reference::{GptModel, LayerWeights};
use bytes::{Buf, BufMut};
use dsi_kernels::tensor::Tensor;
use std::fs;
use std::path::Path;

const MAGIC: &[u8; 4] = b"DSI1";
const VERSION: u16 = 2;

/// Checkpoint errors.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    /// Not a checkpoint / wrong magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Structurally inconsistent payload.
    Corrupt(&'static str),
    /// A panel's stored CRC32 does not match its payload — bit-rot, a torn
    /// write, or an unfaithful tier read.
    ChecksumMismatch { panel: usize },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::BadMagic => write!(f, "not a DSI checkpoint"),
            IoError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            IoError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            IoError::ChecksumMismatch { panel } => {
                write!(f, "corrupt checkpoint: panel {panel} checksum mismatch")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, table-driven).
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes` — the per-panel integrity check. Public so tier
/// readers (the offload store) can verify panels they read directly.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Tensor / string primitives.
// ---------------------------------------------------------------------------

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) {
    out.put_u8(t.shape().len() as u8);
    for &d in t.shape() {
        out.put_u64_le(d as u64);
    }
    for &v in t.data() {
        out.put_f32_le(v);
    }
}

fn get_tensor(buf: &mut &[u8]) -> Result<Tensor, IoError> {
    if buf.remaining() < 1 {
        return Err(IoError::Corrupt("truncated tensor header"));
    }
    let rank = buf.get_u8() as usize;
    if rank == 0 || rank > 4 {
        return Err(IoError::Corrupt("implausible tensor rank"));
    }
    if buf.remaining() < rank * 8 {
        return Err(IoError::Corrupt("truncated shape"));
    }
    let mut shape = Vec::with_capacity(rank);
    let mut n: usize = 1;
    for _ in 0..rank {
        let d = buf.get_u64_le() as usize;
        if d == 0 || d > 1 << 28 {
            return Err(IoError::Corrupt("implausible dimension"));
        }
        n = n.checked_mul(d).ok_or(IoError::Corrupt("shape overflow"))?;
        shape.push(d);
    }
    if buf.remaining() < n * 4 {
        return Err(IoError::Corrupt("truncated tensor data"));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f32_le());
    }
    Ok(Tensor::from_vec(&shape, data))
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8]) -> Result<String, IoError> {
    if buf.remaining() < 4 {
        return Err(IoError::Corrupt("truncated string"));
    }
    let len = buf.get_u32_le() as usize;
    if len > 1 << 16 || buf.remaining() < len {
        return Err(IoError::Corrupt("implausible string"));
    }
    let s = String::from_utf8(buf.chunk()[..len].to_vec())
        .map_err(|_| IoError::Corrupt("non-utf8 string"))?;
    buf.advance(len);
    Ok(s)
}

// ---------------------------------------------------------------------------
// Panel directory.
// ---------------------------------------------------------------------------

/// One panel's location in the weight file: `[offset, offset + len)` holds
/// the payload whose IEEE CRC32 is `crc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PanelEntry {
    /// Absolute byte offset of the payload from the start of the file.
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
    /// CRC32 of the payload.
    pub crc: u32,
}

/// The parsed header of a v2 weight file: the model config plus one
/// [`PanelEntry`] per panel. `panels[0]` is the resident group (wte, wpe,
/// final layer-norm); `panels[1 + l]` is layer `l`. Parsing the directory
/// touches only the header bytes, so an offload store over a memory-mapped
/// file learns every panel's location without faulting in the payloads.
#[derive(Debug, Clone)]
pub struct PanelDirectory {
    pub config: GptConfig,
    pub panels: Vec<PanelEntry>,
}

impl PanelDirectory {
    /// The layer count implied by the directory (`panels.len() - 1`).
    pub fn layers(&self) -> usize {
        self.panels.len() - 1
    }

    /// Directory entry for layer `l` (panel `1 + l`).
    pub fn layer_panel(&self, l: usize) -> &PanelEntry {
        &self.panels[1 + l]
    }

    /// Total payload bytes across all layer panels — the file-side size of
    /// everything an offload store streams (excludes the resident group).
    pub fn layer_payload_bytes(&self) -> usize {
        self.panels[1..].iter().map(|p| p.len).sum()
    }
}

/// Parse magic, version, config, and the panel directory of a v2 weight
/// file, validating that every directory entry lies inside `bytes` and
/// that the payloads exactly tile the remainder of the file. Does not
/// verify checksums (that is per-panel work — [`from_bytes`] does it for
/// whole-model loads, tier readers do it per read).
pub fn read_directory(mut buf: &[u8]) -> Result<PanelDirectory, IoError> {
    let total = buf.len();
    if buf.remaining() < 6 {
        return Err(IoError::BadMagic);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IoError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(IoError::BadVersion(version));
    }
    let name = get_string(&mut buf)?;
    if buf.remaining() < 5 * 8 {
        return Err(IoError::Corrupt("truncated config"));
    }
    let hidden = buf.get_u64_le() as usize;
    let layers = buf.get_u64_le() as usize;
    let heads = buf.get_u64_le() as usize;
    let vocab = buf.get_u64_le() as usize;
    let max_seq = buf.get_u64_le() as usize;
    if layers == 0 || layers > 1024 || heads == 0 || !hidden.is_multiple_of(heads.max(1)) {
        return Err(IoError::Corrupt("implausible config"));
    }
    let config = GptConfig { name, hidden, layers, heads, vocab, max_seq };
    if buf.remaining() < 4 {
        return Err(IoError::Corrupt("truncated panel directory"));
    }
    let panel_count = buf.get_u32_le() as usize;
    if panel_count != layers + 1 {
        return Err(IoError::Corrupt("panel count does not match layer count"));
    }
    if buf.remaining() < panel_count * 12 {
        return Err(IoError::Corrupt("truncated panel directory"));
    }
    let mut panels = Vec::with_capacity(panel_count);
    let mut lens = Vec::with_capacity(panel_count);
    for _ in 0..panel_count {
        let len = buf.get_u64_le() as usize;
        let crc = buf.get_u32_le();
        if len == 0 || len > 1 << 40 {
            return Err(IoError::Corrupt("implausible panel length"));
        }
        lens.push((len, crc));
    }
    // Payloads are laid out back to back after the directory; offsets are
    // implied by the running sum. The final offset must land exactly on
    // the end of the file: short files are truncation, long files are
    // trailing garbage — both typed.
    let mut offset = total - buf.remaining();
    for (len, crc) in lens {
        if offset.checked_add(len).is_none_or(|end| end > total) {
            return Err(IoError::Corrupt("truncated panel payload"));
        }
        panels.push(PanelEntry { offset, len, crc });
        offset += len;
    }
    if offset != total {
        return Err(IoError::Corrupt("trailing bytes"));
    }
    Ok(PanelDirectory { config, panels })
}

/// Parse panel 0 (the resident group): `(wte, wpe, lnf_g, lnf_b)`, with
/// shape validation against `config`. `buf` is exactly the panel payload.
pub fn parse_resident_panel(
    mut buf: &[u8],
    c: &GptConfig,
) -> Result<(Tensor, Tensor, Tensor, Tensor), IoError> {
    let wte = get_tensor(&mut buf)?;
    let wpe = get_tensor(&mut buf)?;
    let lnf_g = get_tensor(&mut buf)?;
    let lnf_b = get_tensor(&mut buf)?;
    if wte.shape() != [c.vocab, c.hidden] || wpe.shape() != [c.max_seq, c.hidden] {
        return Err(IoError::Corrupt("embedding shape mismatch"));
    }
    if buf.has_remaining() {
        return Err(IoError::Corrupt("trailing bytes in resident panel"));
    }
    Ok((wte, wpe, lnf_g, lnf_b))
}

/// Parse one layer panel into its twelve tensors, with shape validation
/// against `config`. `buf` is exactly the panel payload.
pub fn parse_layer_panel(mut buf: &[u8], c: &GptConfig) -> Result<LayerWeights, IoError> {
    let ln1_g = get_tensor(&mut buf)?;
    let ln1_b = get_tensor(&mut buf)?;
    let w_qkv = get_tensor(&mut buf)?;
    let b_qkv = get_tensor(&mut buf)?;
    let w_o = get_tensor(&mut buf)?;
    let b_o = get_tensor(&mut buf)?;
    let ln2_g = get_tensor(&mut buf)?;
    let ln2_b = get_tensor(&mut buf)?;
    let w_ff1 = get_tensor(&mut buf)?;
    let b_ff1 = get_tensor(&mut buf)?;
    let w_ff2 = get_tensor(&mut buf)?;
    let b_ff2 = get_tensor(&mut buf)?;
    if w_qkv.shape() != [c.hidden, 3 * c.hidden] || w_ff2.shape() != [4 * c.hidden, c.hidden] {
        return Err(IoError::Corrupt("layer shape mismatch"));
    }
    if buf.has_remaining() {
        return Err(IoError::Corrupt("trailing bytes in layer panel"));
    }
    Ok(LayerWeights {
        ln1_g, ln1_b, w_qkv, b_qkv, w_o, b_o, ln2_g, ln2_b, w_ff1, b_ff1, w_ff2, b_ff2,
    })
}

// ---------------------------------------------------------------------------
// Whole-model serialize / deserialize.
// ---------------------------------------------------------------------------

/// Serialize a model to bytes (format v2: header, panel directory, panels).
pub fn to_bytes(model: &GptModel) -> Vec<u8> {
    let c = &model.config;
    // Build panel payloads first so the directory can record their
    // lengths and checksums.
    let mut resident = Vec::new();
    put_tensor(&mut resident, &model.wte);
    put_tensor(&mut resident, &model.wpe);
    put_tensor(&mut resident, &model.lnf_g);
    put_tensor(&mut resident, &model.lnf_b);
    let mut panels: Vec<Vec<u8>> = vec![resident];
    for lw in &model.layers {
        let mut p = Vec::new();
        for t in [
            &lw.ln1_g, &lw.ln1_b, &lw.w_qkv, &lw.b_qkv, &lw.w_o, &lw.b_o, &lw.ln2_g, &lw.ln2_b,
            &lw.w_ff1, &lw.b_ff1, &lw.w_ff2, &lw.b_ff2,
        ] {
            put_tensor(&mut p, t);
        }
        panels.push(p);
    }

    let mut out = Vec::new();
    out.put_slice(MAGIC);
    out.put_u16_le(VERSION);
    put_string(&mut out, &c.name);
    for v in [c.hidden, c.layers, c.heads, c.vocab, c.max_seq] {
        out.put_u64_le(v as u64);
    }
    out.put_u32_le(panels.len() as u32);
    for p in &panels {
        out.put_u64_le(p.len() as u64);
        out.put_u32_le(crc32(p));
    }
    for p in &panels {
        out.put_slice(p);
    }
    out
}

/// Deserialize a model from bytes, verifying every panel checksum.
pub fn from_bytes(buf: &[u8]) -> Result<GptModel, IoError> {
    let dir = read_directory(buf)?;
    let c = dir.config.clone();
    for (i, p) in dir.panels.iter().enumerate() {
        if crc32(&buf[p.offset..p.offset + p.len]) != p.crc {
            return Err(IoError::ChecksumMismatch { panel: i });
        }
    }
    let p0 = &dir.panels[0];
    let (wte, wpe, lnf_g, lnf_b) = parse_resident_panel(&buf[p0.offset..p0.offset + p0.len], &c)?;
    let mut lws = Vec::with_capacity(c.layers);
    for l in 0..c.layers {
        let p = dir.layer_panel(l);
        lws.push(parse_layer_panel(&buf[p.offset..p.offset + p.len], &c)?);
    }
    Ok(GptModel { config: c, wte, wpe, layers: lws, lnf_g, lnf_b })
}

/// Save to a file.
pub fn save(model: &GptModel, path: impl AsRef<Path>) -> Result<(), IoError> {
    Ok(fs::write(path, to_bytes(model))?)
}

/// Load from a file.
pub fn load(path: impl AsRef<Path>) -> Result<GptModel, IoError> {
    from_bytes(&fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn model() -> GptModel {
        GptModel::random(zoo::tiny(2), 77)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let m = model();
        let bytes = to_bytes(&m);
        let back = from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back.config.hidden, m.config.hidden);
        assert_eq!(back.config.name, m.config.name);
        assert!(back.wte.allclose(&m.wte, 0.0));
        for (a, b) in back.layers.iter().zip(&m.layers) {
            assert!(a.w_qkv.allclose(&b.w_qkv, 0.0));
            assert!(a.w_ff2.allclose(&b.w_ff2, 0.0));
        }
        // Behavioural identity.
        assert_eq!(back.generate(&[1, 2, 3], 5), m.generate(&[1, 2, 3], 5));
    }

    #[test]
    fn file_roundtrip() {
        let m = model();
        let path = std::env::temp_dir().join("dsi_ckpt_test.bin");
        save(&m, &path).expect("save");
        let back = load(&path).expect("load");
        assert_eq!(back.generate(&[4], 3), m.generate(&[4], 3));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = to_bytes(&model());
        bytes[0] = b'X';
        assert!(matches!(from_bytes(&bytes), Err(IoError::BadMagic)));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = to_bytes(&model());
        bytes[4] = 99;
        assert!(matches!(from_bytes(&bytes), Err(IoError::BadVersion(_))));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = to_bytes(&model());
        // Chop at a sample of offsets: every prefix must fail cleanly, never
        // panic.
        for cut in [3usize, 6, 10, 40, bytes.len() / 2, bytes.len() - 1] {
            let r = from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes must be rejected");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = to_bytes(&model());
        bytes.extend_from_slice(&[0u8; 8]);
        assert!(matches!(from_bytes(&bytes), Err(IoError::Corrupt(_))));
    }

    #[test]
    fn flipped_payload_bit_is_a_checksum_mismatch() {
        // The v1 gap this format closes: bit-rot inside tensor data parsed
        // fine and loaded a silently wrong model. Now every panel is
        // checksummed, so a single flipped bit anywhere in any payload is a
        // typed rejection naming the panel.
        let m = model();
        let clean = to_bytes(&m);
        let dir = read_directory(&clean).expect("directory");
        for (i, p) in dir.panels.iter().enumerate() {
            let mut bytes = clean.clone();
            bytes[p.offset + p.len / 2] ^= 0x10;
            match from_bytes(&bytes) {
                Err(IoError::ChecksumMismatch { panel }) => assert_eq!(panel, i),
                other => panic!("panel {i}: expected checksum mismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupted_directory_entry_rejected_typed() {
        let m = model();
        let bytes = to_bytes(&m);
        let dir = read_directory(&bytes).expect("directory");
        // Inflate panel 0's recorded length: the payloads no longer tile
        // the file, which must read as truncation, not a panic.
        let len_field = dir.panels[0].offset - dir.panels.len() * 12;
        let mut bad = bytes.clone();
        bad[len_field] = 0xff;
        assert!(from_bytes(&bad).is_err());
    }

    #[test]
    fn directory_names_every_layer_panel() {
        let m = model();
        let bytes = to_bytes(&m);
        let dir = read_directory(&bytes).expect("directory");
        assert_eq!(dir.layers(), m.config.layers);
        assert_eq!(dir.panels.len(), m.config.layers + 1);
        // Every layer panel parses standalone through the random-access
        // path the offload store uses.
        for l in 0..dir.layers() {
            let p = dir.layer_panel(l);
            let payload = &bytes[p.offset..p.offset + p.len];
            assert_eq!(crc32(payload), p.crc);
            let lw = parse_layer_panel(payload, &dir.config).expect("layer panel");
            assert!(lw.w_qkv.allclose(&m.layers[l].w_qkv, 0.0));
        }
        assert!(dir.layer_payload_bytes() > 0);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn nonexistent_file_is_io_error() {
        assert!(matches!(
            load("/definitely/not/a/path.bin"),
            Err(IoError::Io(_))
        ));
    }
}
