//! # dsi-model — transformer model definitions and functional reference
//!
//! Three pieces:
//!
//! * [`config`] — GPT-style decoder, BERT-style encoder, and MoE model
//!   configurations with exact parameter / FLOP / KV-cache accounting. These
//!   are the quantities every roofline in the reproduction is built from.
//! * [`zoo`] — the concrete models of the paper's evaluation: Table I's
//!   dense family (GPT-2 1.5B through LM-530B), Table II's sparse family
//!   (52B through 2T MoE), and the Fig. 12 encoders (DistilBERT, BERT).
//! * [`reference`] — a complete functional GPT implementation (embedding,
//!   transformer stack, KV cache, greedy decoding) on the CPU kernels of
//!   `dsi-kernels`. It is the ground truth that tensor-parallel sharding,
//!   MoE routing rewrites, and fused kernels are verified against.

//! * [`fast`] — the executed Deep-Fusion path: the same decoder built from
//!   packed-weight blocked GEMMs, the four Fig. 1(c) fused region kernels,
//!   an amortized in-place KV cache, and reusable scratch, so steady-state
//!   decode allocates nothing per token. Verified token-for-token against
//!   [`reference`].

pub mod batched;
pub mod beam;
pub mod config;
pub mod encoder;
pub mod fast;
pub mod io;
pub mod paged;
pub mod quantized;
pub mod reference;
pub mod sampling;
pub mod zoo;

pub use batched::BatchSession;
pub use beam::beam_search;
pub use encoder::BertModel;
pub use config::{BertConfig, GptConfig, MoeConfig};
pub use fast::{
    BatchedFastSession, BatchedSeq, FastSession, PackedLayer, PackedModel, QuantizedFastSession,
    QuantizedPackedModel, StepRow,
};
pub use paged::{PagePool, PageStats, PagedEngine, PagedSeq, PagesExhausted};
pub use quantized::QuantizedGptModel;
pub use reference::{GptModel, KvCache, LayerKv, LayerWeights};
pub use sampling::{Sampler, SamplerConfig};
