//! Paged KV allocator + multi-slot decode engine — the executed analog of
//! the paper's Sec. IV memory-pressure story, replacing the contiguous
//! per-sequence KV growth of [`crate::reference::KvCache`] with vLLM-style
//! fixed-size token pages.
//!
//! * [`PagePool`] owns per-layer K/V arenas carved into pages of
//!   `page_tokens` context rows. A page id names the same slot in **every**
//!   layer's arena, so one page allocation covers a token's K/V across the
//!   whole stack. Pages are recycled through a LIFO free list — zero
//!   external fragmentation by construction (any free page serves any
//!   sequence), and the always-on accounting identity
//!   `pages_total == pages_in_use + pages_free` is asserted on every
//!   transition.
//! * [`PagedSeq`] is one sequence's page table: position `j` lives in page
//!   `pages[j / page_tokens]`, slot `j % page_tokens`. Attention reads
//!   resolve through the table via `fused::attention_row_paged_into`, whose
//!   FLOP sequence is shared with the contiguous kernel — paged decode is
//!   **bit-identical** to [`crate::fast::FastSession`], not merely close.
//! * [`PagedEngine`] hosts up to `max_slots` concurrent sequences over one
//!   packed model and one scratch arena: `prefill` admits a prompt into a
//!   free slot (reserving its prompt pages up front, all-or-nothing),
//!   `decode` advances any subset of slots one token through a single
//!   ragged M-row pass (reserving at page granularity *per step*), and
//!   `release` returns a retired sequence's pages to the free list. This is
//!   the execution surface `dsi-serve`'s continuous-batching scheduler
//!   drives.

use crate::config::GptConfig;
use crate::fast::{argmax, PackedModel, Scratch};
use dsi_kernels::blocked::{self, PackedB, PanelWeights};
use dsi_kernels::fused::{self, PagedKvView};

/// A page reservation failed: the pool has fewer free pages than the
/// request needs. Nothing was allocated (reservations are all-or-nothing),
/// so the caller can evict and retry, or surface typed memory pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagesExhausted {
    /// Pages the reservation needed.
    pub needed: usize,
    /// Pages that were free.
    pub free: usize,
}

impl std::fmt::Display for PagesExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kv pages exhausted: need {}, {} free", self.needed, self.free)
    }
}

impl std::error::Error for PagesExhausted {}

/// One sequence's page table plus its committed context length.
#[derive(Debug, Default, Clone)]
pub struct PagedSeq {
    pages: Vec<u32>,
    len: usize,
}

impl PagedSeq {
    pub fn new() -> Self {
        Self::default()
    }

    /// Context rows committed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The page table, in position order.
    pub fn pages(&self) -> &[u32] {
        &self.pages
    }
}

/// Fixed-size-page KV arena shared by every resident sequence.
///
/// Storage is `layers × 2` arenas of `pages_total × page_tokens` rows of
/// `hidden` floats, allocated once; page allocation/release never touches
/// the heap.
#[derive(Debug)]
pub struct PagePool {
    hidden: usize,
    page_tokens: usize,
    pages_total: usize,
    /// Per-layer K arenas, `[pages_total * page_tokens, hidden]` row-major.
    k: Vec<Vec<f32>>,
    /// Per-layer V arenas, same shape.
    v: Vec<Vec<f32>>,
    /// LIFO free list (most recently released page is reused first — the
    /// warmest rows in cache).
    free: Vec<u32>,
    in_use: usize,
    high_water: usize,
}

/// Point-in-time allocator statistics for reports and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageStats {
    pub pages_total: usize,
    pub pages_in_use: usize,
    pub pages_free: usize,
    pub high_water: usize,
    pub page_tokens: usize,
}

impl PagePool {
    pub fn new(layers: usize, hidden: usize, pages_total: usize, page_tokens: usize) -> Self {
        assert!(layers > 0 && hidden > 0 && pages_total > 0 && page_tokens > 0);
        let rows = pages_total * page_tokens;
        let pool = PagePool {
            hidden,
            page_tokens,
            pages_total,
            k: (0..layers).map(|_| vec![0.0; rows * hidden]).collect(),
            v: (0..layers).map(|_| vec![0.0; rows * hidden]).collect(),
            // Reverse order so page 0 is handed out first (LIFO pop).
            free: (0..pages_total as u32).rev().collect(),
            in_use: 0,
            high_water: 0,
        };
        pool.assert_identity();
        pool
    }

    /// The always-on accounting identity: every page is exactly one of
    /// in-use or free. Runs on every allocation/release transition.
    fn assert_identity(&self) {
        assert_eq!(
            self.pages_total,
            self.in_use + self.free.len(),
            "page pool identity violated: {} total != {} in_use + {} free",
            self.pages_total,
            self.in_use,
            self.free.len()
        );
    }

    pub fn page_tokens(&self) -> usize {
        self.page_tokens
    }

    pub fn stats(&self) -> PageStats {
        PageStats {
            pages_total: self.pages_total,
            pages_in_use: self.in_use,
            pages_free: self.free.len(),
            high_water: self.high_water,
            page_tokens: self.page_tokens,
        }
    }

    /// Pages needed to hold `tokens` context rows.
    pub fn pages_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.page_tokens)
    }

    /// Grow `seq`'s table to cover `additional` more tokens. All-or-nothing:
    /// on `Err` no page moved and the sequence is untouched.
    pub fn reserve(&mut self, seq: &mut PagedSeq, additional: usize) -> Result<(), PagesExhausted> {
        let target = self.pages_for(seq.len + additional);
        let need = target.saturating_sub(seq.pages.len());
        if need > self.free.len() {
            return Err(PagesExhausted { needed: need, free: self.free.len() });
        }
        for _ in 0..need {
            seq.pages.push(self.free.pop().expect("checked above"));
        }
        self.in_use += need;
        self.high_water = self.high_water.max(self.in_use);
        self.assert_identity();
        Ok(())
    }

    /// Return every page of `seq` to the free list (reverse order, so the
    /// most recently used page is reallocated first) and reset the
    /// sequence. Debug builds also reject double-frees: a page already on
    /// the free list means two page tables claimed the same page (the
    /// recovery/replay path releases possibly-poisoned sequences, so this
    /// is exactly where an aliasing bug would corrupt a survivor's KV).
    pub fn release(&mut self, seq: &mut PagedSeq) {
        let n = seq.pages.len();
        while let Some(p) = seq.pages.pop() {
            debug_assert!((p as usize) < self.pages_total, "foreign page released");
            debug_assert!(
                !self.free.contains(&p),
                "double free: page {p} is already on the free list"
            );
            self.free.push(p);
        }
        self.in_use -= n;
        seq.len = 0;
        self.assert_identity();
    }

    /// Write one context row (`layer`, position `pos`) of `seq` through its
    /// page table. The position must already be reserved.
    pub fn write_row(&mut self, seq: &PagedSeq, layer: usize, pos: usize, k: &[f32], v: &[f32]) {
        let h = self.hidden;
        assert_eq!(k.len(), h);
        assert_eq!(v.len(), h);
        assert!(
            pos < seq.pages.len() * self.page_tokens,
            "write past reservation: pos {pos}, {} pages",
            seq.pages.len()
        );
        let r = seq.pages[pos / self.page_tokens] as usize * self.page_tokens
            + pos % self.page_tokens;
        self.k[layer][r * h..(r + 1) * h].copy_from_slice(k);
        self.v[layer][r * h..(r + 1) * h].copy_from_slice(v);
    }

    /// One layer's K/V arenas (attention read operands).
    pub fn arenas(&self, layer: usize) -> (&[f32], &[f32]) {
        (&self.k[layer], &self.v[layer])
    }
}

/// One resident sequence of a [`PagedEngine`].
#[derive(Debug)]
struct PagedSlot {
    seq: PagedSeq,
    /// The last emitted token, pending feed on the next decode step.
    last: usize,
}

/// Multi-slot decode engine over one packed model and one [`PagePool`].
/// See the module docs for the slot lifecycle.
pub struct PagedEngine<'p, 'm, B = PackedB> {
    pm: &'p PackedModel<'m, B>,
    pool: PagePool,
    slots: Vec<Option<PagedSlot>>,
    scratch: Scratch,
}

impl<'p, 'm, B: PanelWeights> PagedEngine<'p, 'm, B> {
    /// An engine with `max_slots` sequence slots over a pool of
    /// `pages_total` pages of `page_tokens` tokens each.
    pub fn new(
        pm: &'p PackedModel<'m, B>,
        max_slots: usize,
        pages_total: usize,
        page_tokens: usize,
    ) -> Self {
        assert!(max_slots > 0);
        let c = pm.config();
        PagedEngine {
            pool: PagePool::new(c.layers, c.hidden, pages_total, page_tokens),
            slots: (0..max_slots).map(|_| None).collect(),
            scratch: Scratch::new(c, max_slots.max(1)),
            pm,
        }
    }

    pub fn max_slots(&self) -> usize {
        self.slots.len()
    }

    pub fn pool_stats(&self) -> PageStats {
        self.pool.stats()
    }

    /// Pages a `tokens`-long context will pin.
    pub fn pages_for(&self, tokens: usize) -> usize {
        self.pool.pages_for(tokens)
    }

    pub fn slot_in_use(&self, slot: usize) -> bool {
        self.slots[slot].is_some()
    }

    /// Committed context length of an occupied slot.
    pub fn context_len(&self, slot: usize) -> usize {
        self.slots[slot].as_ref().expect("slot not in use").seq.len()
    }

    /// Every occupied slot's page table (aliasing-audit operand: the tables
    /// must be pairwise disjoint, which `dsi-verify`'s page-alias check
    /// asserts in the test suites).
    pub fn page_tables(&self) -> Vec<&[u32]> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|s| s.seq.pages()))
            .collect()
    }

    pub fn config(&self) -> &GptConfig {
        self.pm.config()
    }

    /// Admit a prompt into free `slot`: reserve its prompt pages
    /// (all-or-nothing), run the prompt pass, and return the first greedy
    /// token. On `Err` the slot stays free and no page is held.
    pub fn prefill(&mut self, slot: usize, prompt: &[usize]) -> Result<usize, PagesExhausted> {
        assert!(self.slots[slot].is_none(), "prefill into occupied slot {slot}");
        assert!(!prompt.is_empty(), "empty prompt");
        let mut seq = PagedSeq::new();
        self.pool.reserve(&mut seq, prompt.len())?;
        self.forward_seq_paged(&mut seq, prompt);
        let vocab = self.pm.config().vocab;
        let tok = argmax(self.scratch.logits_row(prompt.len() - 1, vocab));
        self.slots[slot] = Some(PagedSlot { seq, last: tok });
        Ok(tok)
    }

    /// Advance the given occupied slots (strictly ascending) one token each
    /// in a single ragged M-row pass, pushing each new token to `out` in
    /// `slots` order. Page reservation for the step happens **before any
    /// compute**, atomically across the batch: on `Err` no slot advanced
    /// and no page moved, so the scheduler can retire a victim and retry.
    pub fn decode(&mut self, slots: &[usize], out: &mut Vec<usize>) -> Result<(), PagesExhausted> {
        assert!(!slots.is_empty(), "decode: empty batch");
        assert!(
            slots.windows(2).all(|w| w[0] < w[1]),
            "decode: slots must be strictly ascending"
        );
        // Atomic page reservation for the whole step.
        let mut needed = 0;
        for &si in slots {
            let slot = self.slots[si].as_ref().expect("decode of free slot");
            needed += self
                .pool
                .pages_for(slot.seq.len + 1)
                .saturating_sub(slot.seq.pages.len());
        }
        if needed > self.pool.free.len() {
            return Err(PagesExhausted { needed, free: self.pool.free.len() });
        }
        for &si in slots {
            let slot = self.slots[si].as_mut().expect("decode of free slot");
            self.pool.reserve(&mut slot.seq, 1).expect("reservation pre-checked");
        }
        self.forward_rows_paged(slots);
        let vocab = self.pm.config().vocab;
        for (r, &si) in slots.iter().enumerate() {
            let next = argmax(self.scratch.logits_row(r, vocab));
            self.slots[si].as_mut().expect("occupied").last = next;
            out.push(next);
        }
        Ok(())
    }

    /// Retire `slot`: return its pages to the free list.
    pub fn release(&mut self, slot: usize) {
        let mut s = self.slots[slot].take().expect("release of free slot");
        self.pool.release(&mut s.seq);
    }

    /// Mirror of `PackedModel::forward_seq` with the KV append and
    /// attention read routed through the page pool. Same fused-region
    /// sequence, same scratch layout, same per-row attention core —
    /// logits are bit-identical to the contiguous path.
    fn forward_seq_paged(&mut self, seq: &mut PagedSeq, ids: &[usize]) {
        let c = self.pm.config();
        let (h, heads) = (c.hidden, c.heads);
        let pt = self.pool.page_tokens;
        let m = ids.len();
        let offset = seq.len;
        assert!(offset + m <= c.max_seq, "sequence exceeds max_seq");
        assert!(offset + m <= seq.pages.len() * pt, "forward past reservation");
        self.scratch.ensure(c, m);
        let s = &mut self.scratch;
        let model = self.pm.model;

        for (i, &id) in ids.iter().enumerate() {
            assert!(id < c.vocab, "token id {id} out of vocab");
            let te = model.wte.row(id);
            let pe = model.wpe.row(offset + i);
            for (x, (&t, &p)) in s.x[i * h..(i + 1) * h].iter_mut().zip(te.iter().zip(pe)) {
                *x = t + p;
            }
        }

        for (l, pl) in self.pm.layers.iter().enumerate() {
            fused::ln_matmul_bias_into(
                &s.x[..m * h], m, &pl.ln1_g, &pl.ln1_b, 1e-5,
                &pl.w_qkv, &pl.b_qkv, &mut s.normed[..m * h], &mut s.qkv[..m * 3 * h],
            );
            for i in 0..m {
                let row = &s.qkv[i * 3 * h..(i + 1) * 3 * h];
                self.pool.write_row(seq, l, offset + i, &row[h..2 * h], &row[2 * h..3 * h]);
            }
            let (ka, va) = self.pool.arenas(l);
            for i in 0..m {
                fused::attention_row_paged_into(
                    &s.qkv[i * 3 * h..i * 3 * h + h],
                    &PagedKvView {
                        k: ka,
                        v: va,
                        pages: &seq.pages,
                        page_tokens: pt,
                        len: offset + i + 1,
                        offset: offset + i,
                    },
                    heads,
                    &mut s.attn[i * h..(i + 1) * h],
                );
            }
            blocked::matmul_bias_add_into(
                &s.attn[..m * h], m, &pl.w_o, &pl.b_o, &s.x[..m * h], &mut s.y[..m * h],
            );
            std::mem::swap(&mut s.x, &mut s.y);
            fused::ln_matmul_bias_gelu_into(
                &s.x[..m * h], m, &pl.ln2_g, &pl.ln2_b, 1e-5,
                &pl.w_ff1, &pl.b_ff1, &mut s.normed[..m * h], &mut s.ff[..m * 4 * h],
            );
            blocked::matmul_bias_add_into(
                &s.ff[..m * 4 * h], m, &pl.w_ff2, &pl.b_ff2, &s.x[..m * h],
                &mut s.y[..m * h],
            );
            std::mem::swap(&mut s.x, &mut s.y);
        }

        for i in 0..m {
            fused::layernorm_row_into(
                &s.x[i * h..(i + 1) * h],
                model.lnf_g.data(), model.lnf_b.data(), 1e-5,
                &mut s.normed[i * h..(i + 1) * h],
            );
        }
        blocked::matmul_into(&s.normed[..m * h], m, &self.pm.wte_packed, &mut s.logits[..m * c.vocab]);
        seq.len = offset + m;
    }

    /// Mirror of `PackedModel::forward_rows` over the page pool: one token
    /// of each listed slot per call, dense M-row GEMMs, per-row paged
    /// attention at each sequence's own position.
    fn forward_rows_paged(&mut self, active: &[usize]) {
        let c = self.pm.config();
        let (h, heads) = (c.hidden, c.heads);
        let pt = self.pool.page_tokens;
        let m = active.len();
        self.scratch.ensure(c, m);
        let s = &mut self.scratch;
        let model = self.pm.model;

        for (i, &si) in active.iter().enumerate() {
            let slot = self.slots[si].as_ref().expect("decode of free slot");
            let pos = slot.seq.len;
            assert!(pos < c.max_seq, "sequence exceeds max_seq");
            let te = model.wte.row(slot.last);
            let pe = model.wpe.row(pos);
            for (x, (&t, &p)) in s.x[i * h..(i + 1) * h].iter_mut().zip(te.iter().zip(pe)) {
                *x = t + p;
            }
        }

        for (l, pl) in self.pm.layers.iter().enumerate() {
            fused::ln_matmul_bias_into(
                &s.x[..m * h], m, &pl.ln1_g, &pl.ln1_b, 1e-5,
                &pl.w_qkv, &pl.b_qkv, &mut s.normed[..m * h], &mut s.qkv[..m * 3 * h],
            );
            for (i, &si) in active.iter().enumerate() {
                let slot = self.slots[si].as_ref().expect("occupied");
                let pos = slot.seq.len;
                let qkv_row = &s.qkv[i * 3 * h..(i + 1) * 3 * h];
                self.pool
                    .write_row(&slot.seq, l, pos, &qkv_row[h..2 * h], &qkv_row[2 * h..3 * h]);
                let (ka, va) = self.pool.arenas(l);
                fused::attention_row_paged_into(
                    &s.qkv[i * 3 * h..i * 3 * h + h],
                    &PagedKvView {
                        k: ka,
                        v: va,
                        pages: slot.seq.pages(),
                        page_tokens: pt,
                        len: pos + 1,
                        offset: pos,
                    },
                    heads,
                    &mut s.attn[i * h..(i + 1) * h],
                );
            }
            blocked::matmul_bias_add_into(
                &s.attn[..m * h], m, &pl.w_o, &pl.b_o, &s.x[..m * h], &mut s.y[..m * h],
            );
            std::mem::swap(&mut s.x, &mut s.y);
            fused::ln_matmul_bias_gelu_into(
                &s.x[..m * h], m, &pl.ln2_g, &pl.ln2_b, 1e-5,
                &pl.w_ff1, &pl.b_ff1, &mut s.normed[..m * h], &mut s.ff[..m * 4 * h],
            );
            blocked::matmul_bias_add_into(
                &s.ff[..m * 4 * h], m, &pl.w_ff2, &pl.b_ff2, &s.x[..m * h],
                &mut s.y[..m * h],
            );
            std::mem::swap(&mut s.x, &mut s.y);
        }

        for i in 0..m {
            fused::layernorm_row_into(
                &s.x[i * h..(i + 1) * h],
                model.lnf_g.data(), model.lnf_b.data(), 1e-5,
                &mut s.normed[i * h..(i + 1) * h],
            );
        }
        blocked::matmul_into(&s.normed[..m * h], m, &self.pm.wte_packed, &mut s.logits[..m * c.vocab]);
        for &si in active {
            let slot = self.slots[si].as_mut().expect("occupied");
            slot.seq.len += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::GptModel;
    use crate::zoo;

    fn model(layers: usize, seed: u64) -> GptModel {
        GptModel::random(zoo::tiny(layers), seed)
    }

    /// A page table holding a page that is already back on the free list
    /// (the double-free shape a buggy replay-release would produce) must
    /// trip the debug assert instead of silently aliasing a survivor.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_is_caught_in_debug_builds() {
        let mut pool = PagePool::new(1, 4, 4, 2);
        let mut a = PagedSeq::new();
        pool.reserve(&mut a, 3).unwrap(); // 2 pages
        let mut alias = PagedSeq { pages: a.pages().to_vec(), len: a.len() };
        pool.release(&mut a);
        pool.release(&mut alias);
    }

    #[test]
    fn pool_identity_and_lifo_reuse() {
        let mut pool = PagePool::new(2, 8, 6, 4);
        let mut a = PagedSeq::new();
        let mut b = PagedSeq::new();
        pool.reserve(&mut a, 9).unwrap(); // 3 pages
        pool.reserve(&mut b, 4).unwrap(); // 1 page
        assert_eq!(pool.stats().pages_in_use, 4);
        assert_eq!(pool.stats().high_water, 4);
        let a_pages = a.pages().to_vec();
        pool.release(&mut a);
        assert_eq!(pool.stats().pages_in_use, 1);
        assert_eq!(pool.stats().high_water, 4, "high water survives release");
        // LIFO: the next reservation reuses a's first page, released last.
        let mut c = PagedSeq::new();
        pool.reserve(&mut c, 1).unwrap();
        assert_eq!(c.pages()[0], a_pages[0]);
    }

    #[test]
    fn pool_exhaustion_is_all_or_nothing() {
        let mut pool = PagePool::new(1, 8, 3, 4);
        let mut a = PagedSeq::new();
        pool.reserve(&mut a, 8).unwrap(); // 2 of 3 pages
        let mut b = PagedSeq::new();
        let err = pool.reserve(&mut b, 12).unwrap_err(); // needs 3, 1 free
        assert_eq!(err, PagesExhausted { needed: 3, free: 1 });
        assert!(b.pages().is_empty(), "failed reservation must not hold pages");
        assert_eq!(pool.stats().pages_in_use, 2);
        // Growing a into the free page still works (len is 0 until a
        // forward commits rows, so the target is the full 12 tokens).
        pool.reserve(&mut a, 12).unwrap();
        assert_eq!(a.pages().len(), 3);
        assert_eq!(pool.stats().pages_free, 0);
    }

    #[test]
    fn paged_engine_matches_fast_session_tokens() {
        // The tentpole identity: paged decode through scattered page tables
        // is bit-identical (hence token-identical) to solo contiguous runs.
        let m = model(2, 17);
        let pm = PackedModel::pack(&m);
        // page_tokens=3 deliberately misaligns pages with the AVX 8-block.
        let mut eng = PagedEngine::new(&pm, 4, 64, 3);
        let prompts = [vec![1usize, 2, 3], vec![9, 8, 7, 6], vec![4], vec![5, 5]];
        let mut outs: Vec<Vec<usize>> = prompts
            .iter()
            .enumerate()
            .map(|(i, p)| vec![eng.prefill(i, p).unwrap()])
            .collect();
        let all = [0usize, 1, 2, 3];
        for _ in 0..5 {
            let mut step = Vec::new();
            eng.decode(&all, &mut step).unwrap();
            for (i, &t) in step.iter().enumerate() {
                outs[i].push(t);
            }
        }
        for (i, p) in prompts.iter().enumerate() {
            let want = pm.session(p.len()).generate(p, 6);
            assert_eq!(outs[i], want, "slot {i}");
        }
    }

    #[test]
    fn ragged_join_and_retire_keep_identity() {
        // Sequences join and leave mid-stream; released pages are recycled
        // by later admissions without perturbing residents.
        let m = model(2, 23);
        let pm = PackedModel::pack(&m);
        let mut eng = PagedEngine::new(&pm, 3, 32, 4);
        let p0 = vec![1usize, 2, 3];
        let p1 = vec![7usize, 6];
        let p2 = vec![11usize, 12, 13, 14];
        let mut o0 = vec![eng.prefill(0, &p0).unwrap()];
        let mut step = Vec::new();
        eng.decode(&[0], &mut step).unwrap();
        o0.push(step[0]);
        // Slot 1 joins; both advance together.
        let mut o1 = vec![eng.prefill(1, &p1).unwrap()];
        step.clear();
        eng.decode(&[0, 1], &mut step).unwrap();
        o0.push(step[0]);
        o1.push(step[1]);
        // Slot 0 retires; its pages go back; slot 2 joins reusing them.
        eng.release(0);
        let mut o2 = vec![eng.prefill(2, &p2).unwrap()];
        for _ in 0..3 {
            step.clear();
            eng.decode(&[1, 2], &mut step).unwrap();
            o1.push(step[0]);
            o2.push(step[1]);
        }
        assert_eq!(o0, pm.session(3).generate(&p0, 3));
        assert_eq!(o1, pm.session(2).generate(&p1, 5));
        assert_eq!(o2, pm.session(4).generate(&p2, 4));
        // All tables disjoint throughout (spot-check final state).
        let tables = eng.page_tables();
        let mut seen = std::collections::HashSet::new();
        for t in &tables {
            for &p in *t {
                assert!(seen.insert(p), "page {p} aliased across slots");
            }
        }
    }

    #[test]
    fn decode_out_of_pages_is_typed_and_non_destructive() {
        let m = model(1, 31);
        let pm = PackedModel::pack(&m);
        // 2 pages of 2 tokens: a 3-token prompt takes both.
        let mut eng = PagedEngine::new(&pm, 2, 2, 2);
        eng.prefill(0, &[1, 2, 3]).unwrap();
        let before = eng.context_len(0);
        let mut out = Vec::new();
        // Position 3 fits page 1 (capacity 4): first decode succeeds.
        eng.decode(&[0], &mut out).unwrap();
        // Position 4 needs a third page: typed failure, nothing advanced.
        let err = eng.decode(&[0], &mut out).unwrap_err();
        assert_eq!(err.needed, 1);
        assert_eq!(err.free, 0);
        assert_eq!(eng.context_len(0), before + 1);
        assert_eq!(out.len(), 1);
        // Releasing the resident frees everything.
        eng.release(0);
        assert_eq!(eng.pool_stats().pages_in_use, 0);
        assert_eq!(eng.pool_stats().pages_free, 2);
    }

    #[test]
    fn prefill_rejects_oversized_prompt_without_leak() {
        let m = model(1, 37);
        let pm = PackedModel::pack(&m);
        let mut eng = PagedEngine::new(&pm, 1, 2, 2);
        let err = eng.prefill(0, &[1, 2, 3, 4, 5]).unwrap_err();
        assert_eq!(err, PagesExhausted { needed: 3, free: 2 });
        assert!(!eng.slot_in_use(0));
        assert_eq!(eng.pool_stats().pages_in_use, 0);
    }
}
