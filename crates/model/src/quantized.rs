//! End-to-end INT8 model: every GEMM weight of the reference model
//! quantized (Sec. III-D), with the dequantize folded into the matmul the
//! way the paper fuses it into the CUTLASS epilogue.
//!
//! This is the *quality* side of the INT8 claim: the performance side lives
//! in the cost model; here we verify that a generation run under INT8
//! weights stays close to the FP32 reference (logit drift, agreement rate,
//! cross-entropy).

use crate::config::GptConfig;
use crate::reference::{GptModel, KvCache, LayerKv, LayerWeights};
use dsi_kernels::ops;
use dsi_kernels::quant::{matmul_quantized, QuantizedMatrix};
use dsi_kernels::tensor::Tensor;

/// INT8-quantized weights of one layer (layer-norms stay FP32, as in the
/// paper's kernels).
#[derive(Debug, Clone)]
pub struct QuantizedLayer {
    pub ln1_g: Tensor,
    pub ln1_b: Tensor,
    pub w_qkv: QuantizedMatrix,
    pub b_qkv: Tensor,
    pub w_o: QuantizedMatrix,
    pub b_o: Tensor,
    pub ln2_g: Tensor,
    pub ln2_b: Tensor,
    pub w_ff1: QuantizedMatrix,
    pub b_ff1: Tensor,
    pub w_ff2: QuantizedMatrix,
    pub b_ff2: Tensor,
}

impl QuantizedLayer {
    pub fn from_layer(lw: &LayerWeights, group: usize) -> Self {
        QuantizedLayer {
            ln1_g: lw.ln1_g.clone(),
            ln1_b: lw.ln1_b.clone(),
            w_qkv: QuantizedMatrix::quantize(&lw.w_qkv, group),
            b_qkv: lw.b_qkv.clone(),
            w_o: QuantizedMatrix::quantize(&lw.w_o, group),
            b_o: lw.b_o.clone(),
            ln2_g: lw.ln2_g.clone(),
            ln2_b: lw.ln2_b.clone(),
            w_ff1: QuantizedMatrix::quantize(&lw.w_ff1, group),
            b_ff1: lw.b_ff1.clone(),
            w_ff2: QuantizedMatrix::quantize(&lw.w_ff2, group),
            b_ff2: lw.b_ff2.clone(),
        }
    }

    /// Bytes of this layer's GEMM weights in the quantized representation.
    pub fn storage_bytes(&self) -> usize {
        self.w_qkv.storage_bytes()
            + self.w_o.storage_bytes()
            + self.w_ff1.storage_bytes()
            + self.w_ff2.storage_bytes()
    }
}

/// Forward one INT8 layer (mirrors `reference::layer_forward`).
pub fn layer_forward_int8(lw: &QuantizedLayer, x: &Tensor, kv: &mut LayerKv, heads: usize) -> Tensor {
    let h = x.cols();
    let offset = kv.len();
    let normed = ops::layernorm(x, &lw.ln1_g, &lw.ln1_b, 1e-5);
    let mut qkv = matmul_quantized(&normed, &lw.w_qkv);
    ops::add_bias(&mut qkv, &lw.b_qkv);
    let q = qkv.col_slice(0, h);
    let k = qkv.col_slice(h, 2 * h);
    let v = qkv.col_slice(2 * h, 3 * h);
    kv.append(&k, &v);
    let attn = ops::attention(&q, &kv.k, &kv.v, heads, offset);
    let mut out = matmul_quantized(&attn, &lw.w_o);
    ops::add_bias(&mut out, &lw.b_o);
    ops::add_inplace(&mut out, x);
    let normed2 = ops::layernorm(&out, &lw.ln2_g, &lw.ln2_b, 1e-5);
    let mut ff = matmul_quantized(&normed2, &lw.w_ff1);
    ops::add_bias(&mut ff, &lw.b_ff1);
    ops::gelu(&mut ff);
    let mut y = matmul_quantized(&ff, &lw.w_ff2);
    ops::add_bias(&mut y, &lw.b_ff2);
    ops::add_inplace(&mut y, &out);
    y
}

/// A fully INT8-weighted GPT (embeddings kept FP32: they are lookups, not
/// bandwidth-bound GEMMs).
pub struct QuantizedGptModel {
    pub config: GptConfig,
    pub wte: Tensor,
    pub wpe: Tensor,
    pub layers: Vec<QuantizedLayer>,
    pub lnf_g: Tensor,
    pub lnf_b: Tensor,
}

impl QuantizedGptModel {
    /// Quantize an existing model with `group`-row quantization groups.
    pub fn quantize(model: &GptModel, group: usize) -> Self {
        QuantizedGptModel {
            config: model.config.clone(),
            wte: model.wte.clone(),
            wpe: model.wpe.clone(),
            layers: model
                .layers
                .iter()
                .map(|lw| QuantizedLayer::from_layer(lw, group))
                .collect(),
            lnf_g: model.lnf_g.clone(),
            lnf_b: model.lnf_b.clone(),
        }
    }

    /// Forward `ids` through the INT8 stack.
    pub fn forward(&self, ids: &[usize], cache: &mut KvCache) -> Tensor {
        let offset = cache.context_len();
        let mut x = ops::embedding(&self.wte, ids);
        for (i, row) in (offset..offset + ids.len()).enumerate() {
            let pos = self.wpe.row(row).to_vec();
            for (a, b) in x.row_mut(i).iter_mut().zip(pos) {
                *a += b;
            }
        }
        for (l, lw) in self.layers.iter().enumerate() {
            x = layer_forward_int8(lw, &x, &mut cache.layers[l], self.config.heads);
        }
        let x = ops::layernorm(&x, &self.lnf_g, &self.lnf_b, 1e-5);
        ops::matmul_transb(&x, &self.wte)
    }

    /// Greedy generation under INT8 weights.
    pub fn generate(&self, prompt: &[usize], n_tokens: usize) -> Vec<usize> {
        let mut cache = KvCache::new(self.config.layers, self.config.hidden);
        let logits = self.forward(prompt, &mut cache);
        let mut next =
            ops::argmax_rows(&logits.row_slice(logits.rows() - 1, logits.rows()))[0];
        let mut out = vec![next];
        for _ in 1..n_tokens {
            let logits = self.forward(&[next], &mut cache);
            next = ops::argmax_rows(&logits)[0];
            out.push(next);
        }
        out
    }

    /// Quantized GEMM-weight bytes across the model.
    pub fn gemm_storage_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.storage_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::cross_entropy;
    use crate::zoo;

    fn pair() -> (GptModel, QuantizedGptModel) {
        let m = GptModel::random(zoo::tiny(2), 31);
        let q = QuantizedGptModel::quantize(&m, 32);
        (m, q)
    }

    #[test]
    fn int8_logits_close_to_fp32() {
        let (m, q) = pair();
        let ids = [4usize, 8, 15, 16, 23];
        let want = m.forward_full(&ids);
        let mut cache = KvCache::new(2, 64);
        let got = q.forward(&ids, &mut cache);
        let diff = want.max_abs_diff(&got);
        assert!(diff < 0.6, "logit drift {diff}");
    }

    #[test]
    fn int8_generation_mostly_agrees_with_fp32() {
        let (m, q) = pair();
        let a = m.generate(&[1, 2, 3, 4], 10);
        let b = q.generate(&[1, 2, 3, 4], 10);
        let agree = a.iter().zip(&b).take_while(|(x, y)| x == y).count();
        assert!(agree >= 3, "INT8 diverged immediately: {a:?} vs {b:?}");
    }

    #[test]
    fn int8_cross_entropy_close() {
        let (m, q) = pair();
        let ids = [2usize, 4, 6, 8, 10, 12];
        let targets = &ids[1..];
        let l_fp = m.forward_full(&ids);
        let mut cache = KvCache::new(2, 64);
        let l_q = q.forward(&ids, &mut cache);
        let ce_fp = cross_entropy(&l_fp.row_slice(0, 5), targets);
        let ce_q = cross_entropy(&l_q.row_slice(0, 5), targets);
        assert!(
            (ce_fp - ce_q).abs() < 0.1,
            "cross-entropy drift: fp {ce_fp} int8 {ce_q}"
        );
    }

    #[test]
    fn int8_storage_roughly_halves_fp16() {
        let (m, q) = pair();
        let fp16: usize = m
            .layers
            .iter()
            .map(|l| (l.w_qkv.len() + l.w_o.len() + l.w_ff1.len() + l.w_ff2.len()) * 2)
            .sum();
        let int8 = q.gemm_storage_bytes();
        let ratio = int8 as f64 / fp16 as f64;
        assert!(ratio < 0.6, "INT8/FP16 storage ratio {ratio:.2}");
    }
}
