//! Functional GPT reference implementation on the CPU kernels.
//!
//! This is the numerical ground truth of the reproduction. It implements the
//! full decoder forward pass — embeddings, pre-norm transformer blocks,
//! multi-head causal attention with a KV cache (Sec. II-d), tied-embedding
//! logits, greedy decoding — entirely from `dsi-kernels` operators, so the
//! parallel implementations (tensor slicing, pipeline stages, MoE routing)
//! can be checked for exact/near-exact equivalence on small configurations.

use crate::config::GptConfig;
use dsi_kernels::ops;
use dsi_kernels::tensor::Tensor;

/// Weights of one transformer layer.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    pub ln1_g: Tensor,
    pub ln1_b: Tensor,
    /// `[h, 3h]` fused QKV projection.
    pub w_qkv: Tensor,
    pub b_qkv: Tensor,
    /// `[h, h]` attention output projection.
    pub w_o: Tensor,
    pub b_o: Tensor,
    pub ln2_g: Tensor,
    pub ln2_b: Tensor,
    /// `[h, 4h]`.
    pub w_ff1: Tensor,
    pub b_ff1: Tensor,
    /// `[4h, h]`.
    pub w_ff2: Tensor,
    pub b_ff2: Tensor,
}

impl LayerWeights {
    /// Deterministic random initialization (scaled to keep activations
    /// stable through deep stacks).
    pub fn random(hidden: usize, seed: u64) -> Self {
        let h = hidden;
        let s = 1.0 / (h as f32).sqrt();
        LayerWeights {
            ln1_g: Tensor::from_vec(&[h], vec![1.0; h]),
            ln1_b: Tensor::zeros(&[h]),
            w_qkv: Tensor::randn(&[h, 3 * h], s, seed.wrapping_mul(31).wrapping_add(1)),
            b_qkv: Tensor::randn(&[3 * h], 0.01, seed.wrapping_mul(31).wrapping_add(2)),
            w_o: Tensor::randn(&[h, h], s, seed.wrapping_mul(31).wrapping_add(3)),
            b_o: Tensor::randn(&[h], 0.01, seed.wrapping_mul(31).wrapping_add(4)),
            ln2_g: Tensor::from_vec(&[h], vec![1.0; h]),
            ln2_b: Tensor::zeros(&[h]),
            w_ff1: Tensor::randn(&[h, 4 * h], s, seed.wrapping_mul(31).wrapping_add(5)),
            b_ff1: Tensor::randn(&[4 * h], 0.01, seed.wrapping_mul(31).wrapping_add(6)),
            w_ff2: Tensor::randn(&[4 * h, h], s * 0.5, seed.wrapping_mul(31).wrapping_add(7)),
            b_ff2: Tensor::randn(&[h], 0.01, seed.wrapping_mul(31).wrapping_add(8)),
        }
    }
}

/// Cached keys/values for one layer of one sequence.
#[derive(Debug, Clone)]
pub struct LayerKv {
    /// `[t_ctx, h]`.
    pub k: Tensor,
    /// `[t_ctx, h]`.
    pub v: Tensor,
}

impl LayerKv {
    pub fn empty(hidden: usize) -> Self {
        LayerKv {
            k: Tensor::zeros(&[0, hidden]),
            v: Tensor::zeros(&[0, hidden]),
        }
    }

    /// Empty cache with storage for `capacity` context rows reserved, so
    /// appends up to the capacity never reallocate (decode reserves the full
    /// prompt+generation budget once, then appends in place per token).
    pub fn with_capacity(hidden: usize, capacity: usize) -> Self {
        LayerKv {
            k: Tensor::with_capacity_rows(capacity, hidden),
            v: Tensor::with_capacity_rows(capacity, hidden),
        }
    }

    /// Context length cached so far.
    pub fn len(&self) -> usize {
        self.k.rows()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append this step's keys/values, in place.
    ///
    /// Amortized O(rows added): grows the existing buffers (doubling, or
    /// zero reallocation when capacity was reserved). The seed implementation
    /// rebuilt both tensors with `cat_rows`, copying the entire context every
    /// token — O(T²) bytes over a T-token decode.
    pub fn append(&mut self, k: &Tensor, v: &Tensor) {
        self.k.push_rows(k);
        self.v.push_rows(v);
    }

    /// Append one step's key/value rows given as raw slices (the fast
    /// path's zero-allocation variant).
    pub fn append_row_slices(&mut self, k: &[f32], v: &[f32]) {
        self.k.push_row_slice(k);
        self.v.push_row_slice(v);
    }

    /// Bytes held (f32 storage; the capacity pressure of Sec. IV-B3).
    pub fn bytes(&self) -> usize {
        (self.k.len() + self.v.len()) * 4
    }

    /// Drop all cached context, keeping the backing storage for reuse.
    pub fn clear(&mut self) {
        self.k.truncate_rows(0);
        self.v.truncate_rows(0);
    }
}

/// Per-layer KV cache for one sequence.
#[derive(Debug, Clone)]
pub struct KvCache {
    pub layers: Vec<LayerKv>,
}

impl KvCache {
    pub fn new(layers: usize, hidden: usize) -> Self {
        KvCache {
            layers: (0..layers).map(|_| LayerKv::empty(hidden)).collect(),
        }
    }

    /// Cache with `capacity` context rows reserved per layer (see
    /// [`LayerKv::with_capacity`]).
    pub fn with_capacity(layers: usize, hidden: usize, capacity: usize) -> Self {
        KvCache {
            layers: (0..layers)
                .map(|_| LayerKv::with_capacity(hidden, capacity))
                .collect(),
        }
    }

    pub fn context_len(&self) -> usize {
        self.layers.first().map_or(0, |l| l.len())
    }

    pub fn total_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.bytes()).sum()
    }

    /// Drop all cached context in every layer, keeping capacity (session
    /// reuse across requests).
    pub fn clear(&mut self) {
        for l in &mut self.layers {
            l.clear();
        }
    }
}

/// The self-attention sub-layer (pre-norm): layer-norm + QKV GEMM +
/// attention over the cached context + output projection + residual
/// (regions 1–3 of Fig. 1c). Exposed standalone so MoE models can pair it
/// with a Position-wise MoE block instead of the dense FFN (Sec. II-b).
pub fn attention_block(lw: &LayerWeights, x: &Tensor, kv: &mut LayerKv, heads: usize) -> Tensor {
    let h = x.cols();
    let offset = kv.len();
    let normed = ops::layernorm(x, &lw.ln1_g, &lw.ln1_b, 1e-5);
    let mut qkv = ops::matmul(&normed, &lw.w_qkv);
    ops::add_bias(&mut qkv, &lw.b_qkv);
    let q = qkv.col_slice(0, h);
    let k = qkv.col_slice(h, 2 * h);
    let v = qkv.col_slice(2 * h, 3 * h);
    kv.append(&k, &v);
    let attn = ops::attention(&q, &kv.k, &kv.v, heads, offset);
    let mut out = ops::matmul(&attn, &lw.w_o);
    ops::add_bias(&mut out, &lw.b_o);
    ops::add_inplace(&mut out, x);
    out
}

/// The dense feed-forward sub-layer (pre-norm): layer-norm + FF1 + GeLU +
/// FF2 + residual (regions 4–5 of Fig. 1c).
pub fn ffn_block(lw: &LayerWeights, x: &Tensor) -> Tensor {
    let normed2 = ops::layernorm(x, &lw.ln2_g, &lw.ln2_b, 1e-5);
    let mut ff = ops::matmul(&normed2, &lw.w_ff1);
    ops::add_bias(&mut ff, &lw.b_ff1);
    ops::gelu(&mut ff);
    let mut y = ops::matmul(&ff, &lw.w_ff2);
    ops::add_bias(&mut y, &lw.b_ff2);
    ops::add_inplace(&mut y, x);
    y
}

/// Forward one transformer layer for `x` = `[t_new, h]`, appending to the
/// layer's KV cache. Exposed standalone so the parallelism crate can re-use
/// the exact same math on weight shards.
pub fn layer_forward(lw: &LayerWeights, x: &Tensor, kv: &mut LayerKv, heads: usize) -> Tensor {
    let out = attention_block(lw, x, kv, heads);
    ffn_block(lw, &out)
}

/// A complete functional GPT model.
///
/// ```
/// use dsi_model::reference::GptModel;
/// use dsi_model::zoo;
/// let model = GptModel::random(zoo::tiny(2), 42);
/// let tokens = model.generate(&[1, 2, 3], 4);
/// assert_eq!(tokens.len(), 4);
/// // Deterministic: same prompt, same continuation.
/// assert_eq!(tokens, model.generate(&[1, 2, 3], 4));
/// ```
#[derive(Debug, Clone)]
pub struct GptModel {
    pub config: GptConfig,
    /// `[vocab, h]` token embedding (tied with the output projection).
    pub wte: Tensor,
    /// `[max_seq, h]` learned position embedding.
    pub wpe: Tensor,
    pub layers: Vec<LayerWeights>,
    pub lnf_g: Tensor,
    pub lnf_b: Tensor,
}

impl GptModel {
    /// Deterministic random model.
    pub fn random(config: GptConfig, seed: u64) -> Self {
        let h = config.hidden;
        let layers = (0..config.layers)
            .map(|i| LayerWeights::random(h, seed.wrapping_add(1000 + i as u64)))
            .collect();
        GptModel {
            wte: Tensor::randn(&[config.vocab, h], 0.05, seed.wrapping_add(1)),
            wpe: Tensor::randn(&[config.max_seq, h], 0.01, seed.wrapping_add(2)),
            lnf_g: Tensor::from_vec(&[h], vec![1.0; h]),
            lnf_b: Tensor::zeros(&[h]),
            layers,
            config,
        }
    }

    /// Forward `ids` (new tokens) through the model, extending `cache`.
    /// Returns `[ids.len(), vocab]` logits.
    pub fn forward(&self, ids: &[usize], cache: &mut KvCache) -> Tensor {
        assert_eq!(cache.layers.len(), self.config.layers);
        let offset = cache.context_len();
        assert!(
            offset + ids.len() <= self.config.max_seq,
            "sequence exceeds max_seq"
        );
        let mut x = ops::embedding(&self.wte, ids);
        // Position embedding for the absolute positions of these tokens
        // (added straight from the table row; no temporary copy).
        for (i, row) in (offset..offset + ids.len()).enumerate() {
            let pos = self.wpe.row(row);
            for (a, &b) in x.row_mut(i).iter_mut().zip(pos) {
                *a += b;
            }
        }
        for (l, lw) in self.layers.iter().enumerate() {
            x = layer_forward(lw, &x, &mut cache.layers[l], self.config.heads);
        }
        let x = ops::layernorm(&x, &self.lnf_g, &self.lnf_b, 1e-5);
        // Tied output projection: logits = x · wteᵀ.
        ops::matmul_transb(&x, &self.wte)
    }

    /// Forward with no cache reuse (recomputes the whole prefix); used to
    /// validate KV-cache equivalence.
    pub fn forward_full(&self, ids: &[usize]) -> Tensor {
        let mut cache = KvCache::new(self.config.layers, self.config.hidden);
        self.forward(ids, &mut cache)
    }

    /// Greedy generation: process `prompt`, then emit `n_tokens` tokens.
    pub fn generate(&self, prompt: &[usize], n_tokens: usize) -> Vec<usize> {
        let mut cache = KvCache::new(self.config.layers, self.config.hidden);
        let logits = self.forward(prompt, &mut cache);
        let mut out = Vec::with_capacity(n_tokens);
        let mut next = *ops::argmax_rows(&logits.row_slice(logits.rows() - 1, logits.rows()))
            .first()
            .unwrap();
        out.push(next);
        for _ in 1..n_tokens {
            let logits = self.forward(&[next], &mut cache);
            next = ops::argmax_rows(&logits)[0];
            out.push(next);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::tiny;

    fn model(layers: usize) -> GptModel {
        GptModel::random(tiny(layers), 42)
    }

    #[test]
    fn forward_shapes() {
        let m = model(2);
        let mut cache = KvCache::new(2, 64);
        let logits = m.forward(&[1, 2, 3], &mut cache);
        assert_eq!(logits.shape(), &[3, 101]);
        assert_eq!(cache.context_len(), 3);
    }

    #[test]
    fn incremental_equals_full_recompute() {
        // The KV-cache invariant: processing [a,b,c] then d must produce the
        // same logits for d as processing [a,b,c,d] at once.
        let m = model(2);
        let mut cache = KvCache::new(2, 64);
        m.forward(&[5, 6, 7], &mut cache);
        let inc = m.forward(&[8], &mut cache);
        let full = m.forward_full(&[5, 6, 7, 8]);
        let last = full.row_slice(3, 4);
        assert!(
            inc.allclose(&last, 1e-3),
            "max diff {}",
            inc.max_abs_diff(&last)
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let m = model(2);
        let a = m.generate(&[1, 2, 3, 4], 6);
        let b = m.generate(&[1, 2, 3, 4], 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert!(a.iter().all(|&t| t < 101));
    }

    #[test]
    fn generation_depends_on_prompt() {
        let m = model(2);
        let a = m.generate(&[1, 2, 3, 4], 4);
        let b = m.generate(&[4, 3, 2, 1], 4);
        assert_ne!(a, b, "different prompts should diverge (almost surely)");
    }

    #[test]
    fn cache_grows_per_token() {
        let m = model(1);
        let mut cache = KvCache::new(1, 64);
        m.forward(&[1, 2], &mut cache);
        let b2 = cache.total_bytes();
        m.forward(&[3], &mut cache);
        let b3 = cache.total_bytes();
        assert_eq!(cache.context_len(), 3);
        // 2 tensors * hidden * 4 bytes per token per layer.
        assert_eq!(b3 - b2, 2 * 64 * 4);
    }

    #[test]
    fn logits_finite() {
        let m = model(3);
        let logits = m.forward_full(&[10, 20, 30, 40, 50]);
        assert!(logits.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "max_seq")]
    fn overlong_sequence_rejected() {
        let m = model(1);
        let ids: Vec<usize> = (0..70).map(|i| i % 101).collect();
        m.forward_full(&ids);
    }
}
