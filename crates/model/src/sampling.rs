//! Decoding strategies over the reference model's logits.
//!
//! The paper's latency workloads are greedy generation, but a serving system
//! exposes the standard sampler knobs; these are implemented here so the
//! examples and tests can exercise realistic decoding loops (temperature,
//! top-k, nucleus) deterministically (seeded RNG).

use dsi_kernels::ops;
use dsi_kernels::tensor::Tensor;
use rand::distributions::Distribution;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A decoding configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Softmax temperature; 0 means greedy.
    pub temperature: f32,
    /// Keep only the `top_k` most likely tokens (0 = disabled).
    pub top_k: usize,
    /// Nucleus sampling: keep the smallest set of tokens with cumulative
    /// probability ≥ `top_p` (1.0 = disabled).
    pub top_p: f32,
}

impl SamplerConfig {
    pub fn greedy() -> Self {
        SamplerConfig {
            temperature: 0.0,
            top_k: 0,
            top_p: 1.0,
        }
    }

    pub fn top_k(k: usize, temperature: f32) -> Self {
        SamplerConfig {
            temperature,
            top_k: k,
            top_p: 1.0,
        }
    }

    pub fn nucleus(p: f32, temperature: f32) -> Self {
        SamplerConfig {
            temperature,
            top_k: 0,
            top_p: p,
        }
    }
}

/// A deterministic sampler.
///
/// ```
/// use dsi_model::sampling::{Sampler, SamplerConfig};
/// let mut s = Sampler::new(SamplerConfig::greedy(), 0);
/// assert_eq!(s.sample(&[0.1, 2.0, 0.3]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Sampler {
    pub config: SamplerConfig,
    rng: ChaCha8Rng,
}

impl Sampler {
    pub fn new(config: SamplerConfig, seed: u64) -> Self {
        Sampler {
            config,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Sample one token id from a `[vocab]` logits row.
    pub fn sample(&mut self, logits: &[f32]) -> usize {
        if self.config.temperature <= 0.0 {
            return argmax(logits);
        }
        // Temperature-scaled softmax.
        let mut probs: Vec<(usize, f32)> = logits
            .iter()
            .enumerate()
            .map(|(i, &l)| (i, l / self.config.temperature))
            .collect();
        let m = probs.iter().map(|&(_, v)| v).fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for (_, v) in probs.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        for (_, v) in probs.iter_mut() {
            *v /= sum;
        }
        // Sort by probability for the truncation filters.
        probs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        if self.config.top_k > 0 {
            probs.truncate(self.config.top_k.max(1));
        }
        if self.config.top_p < 1.0 {
            let mut cum = 0.0;
            let mut keep = 0;
            for (i, &(_, p)) in probs.iter().enumerate() {
                cum += p;
                keep = i + 1;
                if cum >= self.config.top_p {
                    break;
                }
            }
            probs.truncate(keep.max(1));
        }
        // Renormalize and draw.
        let total: f32 = probs.iter().map(|&(_, p)| p).sum();
        let u: f32 = rand::distributions::Uniform::new(0.0f32, 1.0).sample(&mut self.rng) * total;
        let mut acc = 0.0;
        for &(id, p) in &probs {
            acc += p;
            if u <= acc {
                return id;
            }
        }
        probs.last().map(|&(id, _)| id).unwrap_or(0)
    }

    /// Sample one token per row of a `[rows, vocab]` logits tensor.
    pub fn sample_rows(&mut self, logits: &Tensor) -> Vec<usize> {
        (0..logits.rows()).map(|r| self.sample(logits.row(r))).collect()
    }
}

fn argmax(row: &[f32]) -> usize {
    // First maximum wins on ties, matching the top-k filter's stable order.
    let mut best = 0;
    for (i, &v) in row.iter().enumerate().skip(1) {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// Softmax cross-entropy of the observed next tokens under the model's
/// logits — the quality metric used to check that INT8 quantization does not
/// wreck the distribution (Sec. III-D is a performance technique; quality
/// must be preserved).
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> f32 {
    assert_eq!(logits.rows(), targets.len());
    let mut total = 0.0;
    for (r, &t) in targets.iter().enumerate() {
        let mut row = Tensor::from_vec(&[1, logits.cols()], logits.row(r).to_vec());
        ops::softmax_rows(&mut row);
        total -= row.row(0)[t].max(1e-9).ln();
    }
    total / targets.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits() -> Vec<f32> {
        vec![0.1, 3.0, 0.2, 2.9, -1.0]
    }

    #[test]
    fn greedy_is_argmax() {
        let mut s = Sampler::new(SamplerConfig::greedy(), 1);
        assert_eq!(s.sample(&logits()), 1);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let draw = |seed| {
            let mut s = Sampler::new(SamplerConfig::top_k(3, 1.0), seed);
            (0..20).map(|_| s.sample(&logits())).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn top_k_restricts_support() {
        let mut s = Sampler::new(SamplerConfig::top_k(2, 1.0), 3);
        for _ in 0..200 {
            let t = s.sample(&logits());
            assert!(t == 1 || t == 3, "token {t} outside top-2");
        }
    }

    #[test]
    fn nucleus_restricts_support() {
        // Tokens 1 and 3 carry ~95% of the mass; p=0.9 keeps only them.
        let mut s = Sampler::new(SamplerConfig::nucleus(0.9, 1.0), 4);
        for _ in 0..200 {
            let t = s.sample(&logits());
            assert!(t == 1 || t == 3, "token {t} outside the nucleus");
        }
    }

    #[test]
    fn low_temperature_concentrates() {
        let mut hot = Sampler::new(SamplerConfig::top_k(0, 2.0), 5);
        let mut cold = Sampler::new(SamplerConfig::top_k(0, 0.02), 5);
        let n = 300;
        let count = |s: &mut Sampler| (0..n).filter(|_| s.sample(&logits()) == 1).count();
        let hot_top = count(&mut hot);
        let cold_top = count(&mut cold);
        assert!(cold_top > hot_top, "cold {cold_top} hot {hot_top}");
        assert!(cold_top as f64 > 0.95 * n as f64);
    }

    #[test]
    fn cross_entropy_prefers_correct_targets() {
        let l = Tensor::from_vec(&[2, 3], vec![5.0, 0.0, 0.0, 0.0, 5.0, 0.0]);
        let good = cross_entropy(&l, &[0, 1]);
        let bad = cross_entropy(&l, &[2, 2]);
        assert!(good < bad);
        assert!(good < 0.1);
    }
}
