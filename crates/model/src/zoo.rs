//! The paper's evaluated models.
//!
//! * [`table1`] — the dense family of Table I with its TP/PP mappings.
//! * [`table2`] — the sparse family of Table II (52B – 2T parameters).
//! * [`encoders`] — DistilBERT and BERT for the E.T. comparison (Fig. 12).
//!
//! For Table II the paper reports total sizes (52, 107.7, 349, 1064.9,
//! 2024 billion); the number of MoE layers is derived to match those totals
//! given each base's hidden size (the DeepSpeed-MoE "every other layer"
//! placement for the smaller models, denser placement for the larger ones).

use crate::config::{BertConfig, GptConfig, MoeConfig};
use serde::{Deserialize, Serialize};

/// A Table I row: model plus its parallelism mapping per experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DenseEntry {
    pub config: GptConfig,
    /// Tensor-parallel degree used in Fig. 6 (0 = not part of Fig. 6).
    pub fig6_tp: usize,
    /// (TP, PP) used in Fig. 8 (None = not part of Fig. 8).
    pub fig8: Option<(usize, usize)>,
    /// Appears in Fig. 9 (ZeRO-Inference) at TP=1.
    pub fig9: bool,
}

/// Table I, in paper order.
pub fn table1() -> Vec<DenseEntry> {
    vec![
        DenseEntry {
            config: GptConfig::new("GPT-2-1.5B", 1600, 48, 25),
            fig6_tp: 1,
            fig8: None,
            fig9: false,
        },
        DenseEntry {
            config: GptConfig::new("GPT-Neo-2.7B", 2560, 32, 20),
            fig6_tp: 1,
            fig8: None,
            fig9: false,
        },
        DenseEntry {
            config: GptConfig::new("GPT-J-6B", 4096, 28, 32),
            fig6_tp: 1,
            fig8: None,
            fig9: false,
        },
        DenseEntry {
            config: GptConfig::new("GPT-13B", 5120, 40, 40),
            fig6_tp: 1,
            fig8: None,
            fig9: false,
        },
        DenseEntry {
            config: GptConfig::new("GPT-NeoX-20B", 6144, 44, 64),
            fig6_tp: 2,
            fig8: None,
            fig9: true,
        },
        DenseEntry {
            config: GptConfig::new("GPT-50B", 8192, 62, 64),
            fig6_tp: 4,
            fig8: None,
            fig9: true,
        },
        DenseEntry {
            config: GptConfig::new("GPT-87B", 12288, 48, 96),
            fig6_tp: 8,
            fig8: None,
            fig9: false,
        },
        DenseEntry {
            config: GptConfig::new("LM-175B", 12288, 96, 96),
            fig6_tp: 16,
            fig8: Some((8, 2)),
            fig9: true,
        },
        DenseEntry {
            config: GptConfig::new("LM-530B", 20480, 105, 128),
            fig6_tp: 0,
            fig8: Some((8, 5)),
            fig9: true,
        },
    ]
}

/// Look up a Table I model by name.
pub fn dense_by_name(name: &str) -> Option<GptConfig> {
    table1().into_iter().find(|e| e.config.name == name).map(|e| e.config)
}

fn moe(
    name: &str,
    base: GptConfig,
    moe_layers: usize,
    mp: usize,
    ep: usize,
    slicing: usize,
    gpus: usize,
) -> MoeConfig {
    MoeConfig {
        name: name.into(),
        base,
        experts: 128,
        moe_layers,
        top_k: 1,
        capacity_factor: 1.0,
        mp_degree: mp,
        ep_degree: ep,
        expert_slicing: slicing,
        gpus,
    }
}

/// Table II, in paper order: (name, total size B, #layers, hidden, MP, EP,
/// expert-slicing, #GPUs) =
/// (1.3B+MoE-128, 52, 24, 2048, 1, 128, 1, 128),
/// (2.4B+MoE-128, 107.7, 16, 3584, 1, 128, 1, 128),
/// (8B+MoE-128, 349.0, 30, 4096, 4, 128, 1, 128),
/// (24B+MoE-128, 1064.9, 40, 8192, 8, 128, 2, 256),
/// (47B+MoE-128, 2024.0, 58, 8192, 8, 128, 2, 256).
pub fn table2() -> Vec<MoeConfig> {
    vec![
        moe(
            "1.3B+MoE-128",
            GptConfig::new("GPT-1.3B", 2048, 24, 16),
            12,
            1,
            128,
            1,
            128,
        ),
        moe(
            "2.4B+MoE-128",
            GptConfig::new("GPT-2.4B", 3584, 16, 28),
            8,
            1,
            128,
            1,
            128,
        ),
        moe(
            "8B+MoE-128",
            GptConfig::new("GPT-8B", 4096, 30, 32),
            20,
            4,
            128,
            1,
            128,
        ),
        moe(
            "24B+MoE-128",
            GptConfig::new("GPT-24B", 8192, 40, 64),
            15,
            8,
            128,
            2,
            256,
        ),
        moe(
            "47B+MoE-128",
            GptConfig::new("GPT-47B", 8192, 58, 64),
            29,
            8,
            128,
            2,
            256,
        ),
    ]
}

/// The Fig. 12 encoder models.
pub fn encoders() -> Vec<BertConfig> {
    vec![
        BertConfig::new("DistilBERT", 768, 6, 12),
        BertConfig::new("BERT-base", 768, 12, 12),
    ]
}

/// A small configuration for functional tests: big enough to have real
/// multi-head structure, small enough to run everywhere.
pub fn tiny(layers: usize) -> GptConfig {
    GptConfig {
        name: "tiny".into(),
        hidden: 64,
        layers,
        heads: 4,
        vocab: 101,
        max_seq: 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sizes_match_names() {
        // Every entry's computed size should be within 15% of the nominal
        // billions in its name (embeddings dominate small models' slack).
        for e in table1() {
            let nominal: f64 = e
                .config
                .name
                .trim_end_matches('B')
                .rsplit('-')
                .next()
                .unwrap()
                .replace("LM", "")
                .parse()
                .unwrap_or(0.0);
            if nominal > 0.0 {
                let got = e.config.total_params() / 1e9;
                assert!(
                    (got - nominal).abs() / nominal < 0.35,
                    "{}: computed {got:.1}B vs nominal {nominal}B",
                    e.config.name
                );
            }
        }
    }

    #[test]
    fn table2_totals_match_paper() {
        let expected = [52.0, 107.7, 349.0, 1064.9, 2024.0];
        for (m, &exp) in table2().iter().zip(&expected) {
            let got = m.total_params() / 1e9;
            assert!(
                (got - exp).abs() / exp < 0.06,
                "{}: computed {got:.1}B vs paper {exp}B",
                m.name
            );
        }
    }

    #[test]
    fn table2_largest_exceeds_two_trillion() {
        let m = &table2()[4];
        assert!(m.total_params() > 2.0e12);
    }

    #[test]
    fn table2_gpu_counts() {
        let t = table2();
        assert!(t[..3].iter().all(|m| m.gpus == 128));
        assert!(t[3..].iter().all(|m| m.gpus == 256 && m.expert_slicing == 2));
    }

    #[test]
    fn fig6_models_have_tp() {
        let with_tp: Vec<_> = table1().into_iter().filter(|e| e.fig6_tp > 0).collect();
        assert_eq!(with_tp.len(), 8);
        assert_eq!(with_tp.last().unwrap().fig6_tp, 16);
    }

    #[test]
    fn encoder_sizes() {
        let e = encoders();
        // DistilBERT has half BERT's layers.
        assert_eq!(e[0].layers * 2, e[1].layers);
        assert!(e[1].total_params() > e[0].total_params());
    }

    #[test]
    fn dense_by_name_lookup() {
        assert!(dense_by_name("LM-175B").is_some());
        assert!(dense_by_name("nope").is_none());
    }
}
