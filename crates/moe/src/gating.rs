//! The gating function (Sec. V-C step 1): softmax over expert logits,
//! top-k expert selection, capacity-constrained slot assignment.
//!
//! The output is deliberately the *dense table* representation the paper's
//! optimized kernels use — "we replace the one-hot representation of the
//! token to expert mapping using a table data-structure" — from which
//! [`crate::routing`] derives both the sparse-einsum reference and the
//! table-based scatter/gather.

use dsi_kernels::ops;
use dsi_kernels::tensor::Tensor;
use serde::Serialize;

/// One token's routing to one expert.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Assignment {
    pub expert: usize,
    /// Capacity slot within the expert's buffer.
    pub slot: usize,
    /// Normalized gate weight for combining expert outputs.
    pub weight: f32,
}

/// Dense routing tables produced by the gating function.
#[derive(Debug, Clone, Serialize)]
pub struct GateDecision {
    pub n_tokens: usize,
    pub n_experts: usize,
    pub capacity: usize,
    pub top_k: usize,
    /// Token → up to `top_k` assignments (fewer if capacity dropped some).
    pub token_to_expert: Vec<Vec<Assignment>>,
    /// Expert → slot → source token (the inverse table of Sec. V-C step 2).
    pub expert_to_token: Vec<Vec<Option<usize>>>,
    /// Tokens that lost every assignment to capacity limits.
    pub dropped: Vec<usize>,
}

impl GateDecision {
    /// Tokens assigned to `expert`.
    pub fn expert_load(&self, expert: usize) -> usize {
        self.expert_to_token[expert].iter().flatten().count()
    }

    /// Load-imbalance factor: max expert load over mean expert load
    /// (1.0 = perfectly balanced). The quantity the Switch-style auxiliary
    /// loss drives toward 1 during training, and the quantity that decides
    /// how badly expert-parallel GPUs collide at inference (Sec. V-A).
    pub fn imbalance(&self) -> f64 {
        let loads: Vec<usize> = (0..self.n_experts).map(|e| self.expert_load(e)).collect();
        let total: usize = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.n_experts as f64;
        *loads.iter().max().unwrap() as f64 / mean
    }

    /// Fraction of routed assignments that were dropped to capacity.
    pub fn drop_rate(&self) -> f64 {
        if self.n_tokens == 0 {
            return 0.0;
        }
        self.dropped.len() as f64 / self.n_tokens as f64
    }
}

/// Top-k gating over `logits` (`[tokens, experts]`) with per-expert
/// `capacity` slots. Tokens claim slots in token order (the deterministic
/// cumsum ordering of the paper's step 2); an assignment that finds its
/// expert full is dropped. Gate weights are the softmax probabilities of the
/// selected experts renormalized over the *kept* assignments.
pub fn top_k_gating(logits: &Tensor, top_k: usize, capacity: usize) -> GateDecision {
    let (s, e) = (logits.rows(), logits.cols());
    assert!(top_k >= 1 && top_k <= e, "top_k out of range");
    let mut probs = logits.clone();
    ops::softmax_rows(&mut probs);

    let mut token_to_expert: Vec<Vec<Assignment>> = vec![Vec::new(); s];
    let mut expert_to_token: Vec<Vec<Option<usize>>> = vec![vec![None; capacity]; e];
    let mut next_slot = vec![0usize; e];
    let mut dropped = Vec::new();

    #[allow(clippy::needless_range_loop)] // t indexes both probs rows and tables
    for t in 0..s {
        // Select top-k experts by probability (stable order for ties).
        let mut idx: Vec<usize> = (0..e).collect();
        idx.sort_by(|&a, &b| {
            probs.row(t)[b]
                .partial_cmp(&probs.row(t)[a])
                .unwrap()
                .then(a.cmp(&b))
        });
        let chosen = &idx[..top_k];
        let mut kept = Vec::new();
        for &ex in chosen {
            if next_slot[ex] < capacity {
                let slot = next_slot[ex];
                next_slot[ex] += 1;
                expert_to_token[ex][slot] = Some(t);
                kept.push((ex, slot, probs.row(t)[ex]));
            }
        }
        if kept.is_empty() {
            dropped.push(t);
            continue;
        }
        let norm: f32 = kept.iter().map(|&(_, _, w)| w).sum();
        token_to_expert[t] = kept
            .into_iter()
            .map(|(expert, slot, w)| Assignment {
                expert,
                slot,
                weight: w / norm,
            })
            .collect();
    }

    GateDecision {
        n_tokens: s,
        n_experts: e,
        capacity,
        top_k,
        token_to_expert,
        expert_to_token,
        dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits(s: usize, e: usize, seed: u64) -> Tensor {
        Tensor::randn(&[s, e], 1.0, seed)
    }

    #[test]
    fn every_token_gets_k_assignments_with_ample_capacity() {
        let d = top_k_gating(&logits(32, 8, 1), 2, 32);
        assert!(d.dropped.is_empty());
        for t in &d.token_to_expert {
            assert_eq!(t.len(), 2);
            // Distinct experts per token.
            assert_ne!(t[0].expert, t[1].expert);
        }
    }

    #[test]
    fn capacity_never_exceeded() {
        let d = top_k_gating(&logits(64, 4, 2), 1, 3);
        for e in 0..4 {
            assert!(d.expert_load(e) <= 3);
        }
        // 64 tokens into 4 experts × 3 slots: most are dropped.
        assert!(d.dropped.len() >= 64 - 12);
    }

    #[test]
    fn tables_are_mutually_inverse() {
        let d = top_k_gating(&logits(20, 6, 3), 2, 8);
        for (t, asgs) in d.token_to_expert.iter().enumerate() {
            for a in asgs {
                assert_eq!(d.expert_to_token[a.expert][a.slot], Some(t));
            }
        }
        for (e, slots) in d.expert_to_token.iter().enumerate() {
            for (slot, tok) in slots.iter().enumerate() {
                if let Some(t) = tok {
                    assert!(d.token_to_expert[*t]
                        .iter()
                        .any(|a| a.expert == e && a.slot == slot));
                }
            }
        }
    }

    #[test]
    fn gate_weights_normalized() {
        let d = top_k_gating(&logits(16, 8, 4), 2, 16);
        for asgs in &d.token_to_expert {
            let sum: f32 = asgs.iter().map(|a| a.weight).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn top1_picks_argmax() {
        let l = Tensor::from_vec(&[2, 3], vec![0.1, 5.0, 0.2, 3.0, 0.0, 0.0]);
        let d = top_k_gating(&l, 1, 2);
        assert_eq!(d.token_to_expert[0][0].expert, 1);
        assert_eq!(d.token_to_expert[1][0].expert, 0);
        // Top-1 weight renormalizes to 1.
        assert!((d.token_to_expert[0][0].weight - 1.0).abs() < 1e-6);
    }

    #[test]
    fn imbalance_metrics() {
        // Uniform logits route ~evenly: imbalance close to 1.
        let l = Tensor::randn(&[512, 8], 0.05, 9);
        let d = top_k_gating(&l, 1, 512);
        assert!(d.imbalance() < 1.6, "imbalance {}", d.imbalance());
        assert_eq!(d.drop_rate(), 0.0);
        // A hot expert drives imbalance toward E.
        let mut hot = Tensor::randn(&[512, 8], 0.05, 10);
        for r in 0..512 {
            hot.row_mut(r)[3] += 10.0;
        }
        let d = top_k_gating(&hot, 1, 512);
        assert!(d.imbalance() > 7.0, "imbalance {}", d.imbalance());
    }

    #[test]
    fn slots_fill_in_token_order() {
        let l = Tensor::from_vec(&[3, 2], vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        let d = top_k_gating(&l, 1, 4);
        assert_eq!(d.expert_to_token[0][0], Some(0));
        assert_eq!(d.expert_to_token[0][1], Some(1));
        assert_eq!(d.expert_to_token[0][2], Some(2));
    }
}
