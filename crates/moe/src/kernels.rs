//! Cost models for the two MoE kernel implementations of Sec. V-C.
//!
//! The baseline gating path builds one-hot masks, runs top-k selection,
//! cumulative sums, and two sparse einsums of complexity `S·E·M·c_e` — "not
//! only wasteful due to the sparse tensor representation, but also extremely
//! slow due to many kernel call invocations". The optimized path keeps
//! mapping tables and replaces both einsums with data-layout transforms of
//! complexity `S·M·c_e`, fused into (nearly) a single kernel. The paper
//! reports "over 6× reduction in MoE kernel-related latency"; the test at
//! the bottom recovers that factor from the two models.

use dsi_kernels::cost::{self, KernelCost};
use dsi_sim::hw::{DType, GpuSpec};
use serde::Serialize;

/// Cost of the routing-related kernels of one MoE layer (everything except
/// the expert FFNs and the all-to-alls).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MoeKernelCost {
    pub cost: KernelCost,
    /// Kernel launches.
    pub launches: usize,
}

/// Baseline sparse path: gating function (masks, top-k, cumsum, sparse
/// matmul — "numerous operations") plus the two sparse einsums.
pub fn sparse_routing_cost(
    tokens: usize,
    experts: usize,
    hidden: usize,
    capacity: usize,
    act_dtype: DType,
) -> MoeKernelCost {
    let (s, e, m, c) = (tokens as f64, experts as f64, hidden as f64, capacity as f64);
    let ab = act_dtype.bytes() as f64;
    // Gate projection handled by the dense layer model; here: one-hot mask
    // creation, top-k, cumsum, inverse-map matmuls.
    let mask_elems = s * e * c;
    // Two einsums, each S×E×M×c_e multiply-adds, reading the mask and the
    // token matrix and writing the dispatched/combined tensor; the one-hot
    // intermediates are materialized in f32 as eager PyTorch does.
    let einsum_flops = 2.0 * 2.0 * s * e * m * c;
    let einsum_traffic = 2.0 * (mask_elems * 4.0 + s * m * ab + e * c * m * ab);
    let gating_traffic = 6.0 * mask_elems * 4.0; // masks re-read by each micro-op
    MoeKernelCost {
        cost: KernelCost {
            flops: einsum_flops + 10.0 * mask_elems,
            weight_bytes: 0.0,
            act_read: einsum_traffic + gating_traffic,
            act_write: einsum_traffic / 2.0,
        },
        // Micro-kernels for the gating function (masking, top-k, cumsum,
        // one-hot matmuls) plus the einsum launches and their layout
        // preludes (Sec. V-C: "many kernel call invocations").
        launches: 40,
    }
}

/// Optimized dense-table path: build token→expert table, invert it by a
/// parallel scan, and do both scatter and gather as row copies; all but the
/// final transform fused into one kernel.
pub fn dense_routing_cost(
    tokens: usize,
    experts: usize,
    hidden: usize,
    capacity: usize,
    act_dtype: DType,
) -> MoeKernelCost {
    let (s, e, m, c) = (tokens as f64, experts as f64, hidden as f64, capacity as f64);
    let ab = act_dtype.bytes() as f64;
    let _ = c;
    // Table building touches S×E gate probabilities once; the two layout
    // transforms move each routed token row twice (S·M·c_e with c_e folded
    // into the rows actually moved).
    let copy_traffic = 2.0 * 2.0 * s * m * ab;
    MoeKernelCost {
        cost: KernelCost {
            flops: 4.0 * s * e + 8.0 * s * m,
            weight_bytes: 0.0,
            act_read: copy_traffic + s * e * 4.0,
            act_write: copy_traffic / 2.0,
        },
        // One fused kernel plus the final data-layout transform.
        launches: 2,
    }
}

/// Wall-clock time of a routing cost on a GPU (no CUDA graph for the
/// baseline; the optimized path is fused into the graph so its launches are
/// also charged here for a conservative comparison).
pub fn routing_time(gpu: &GpuSpec, k: &MoeKernelCost, dtype: DType) -> f64 {
    let exec = cost::exec_time(gpu, &k.cost, dtype, 0.3, cost::mem_policy::ELEMENTWISE_BW_EFF);
    exec + k.launches as f64 * gpu.kernel_launch_overhead
}

/// The headline kernel-latency ratio (sparse / dense) for a configuration.
pub fn kernel_speedup(gpu: &GpuSpec, tokens: usize, experts: usize, hidden: usize, capacity: usize) -> f64 {
    let sp = sparse_routing_cost(tokens, experts, hidden, capacity, DType::Fp16);
    let de = dense_routing_cost(tokens, experts, hidden, capacity, DType::Fp16);
    routing_time(gpu, &sp, DType::Fp16) / routing_time(gpu, &de, DType::Fp16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_path_has_fewer_launches() {
        let sp = sparse_routing_cost(8, 128, 4096, 8, DType::Fp16);
        let de = dense_routing_cost(8, 128, 4096, 8, DType::Fp16);
        assert!(de.launches * 10 <= sp.launches);
    }

    #[test]
    fn dense_path_moves_less_data() {
        let sp = sparse_routing_cost(64, 128, 4096, 8, DType::Fp16);
        let de = dense_routing_cost(64, 128, 4096, 8, DType::Fp16);
        assert!(de.cost.act_read < sp.cost.act_read);
        assert!(de.cost.flops < sp.cost.flops);
    }

    #[test]
    fn paper_six_x_kernel_reduction() {
        // Sec. V-C: "over 6× reduction in MoE kernel-related latency" for
        // inference-scale token counts.
        let gpu = GpuSpec::a100_40gb();
        let s = kernel_speedup(&gpu, 8, 128, 4096, 8);
        assert!(s > 6.0, "kernel speedup only {s:.1}x");
        // And it should stay >4x even for prompt-sized token counts.
        let s2 = kernel_speedup(&gpu, 1024, 128, 4096, 16);
        assert!(s2 > 4.0, "prompt kernel speedup only {s2:.1}x");
    }

    #[test]
    fn sparse_cost_scales_with_experts_dense_does_not() {
        let s64 = sparse_routing_cost(32, 64, 1024, 8, DType::Fp16);
        let s256 = sparse_routing_cost(32, 256, 1024, 8, DType::Fp16);
        assert!(s256.cost.flops > 3.0 * s64.cost.flops);
        let d64 = dense_routing_cost(32, 64, 1024, 8, DType::Fp16);
        let d256 = dense_routing_cost(32, 256, 1024, 8, DType::Fp16);
        // Dense path's copies are expert-count independent (only the S×E
        // gate-probability scan grows).
        assert!(d256.cost.act_read < d64.cost.act_read * 1.5);
    }
}
