//! Functional MoE layer and its expert-parallel execution.
//!
//! * [`MoeLayer::forward`] — the single-device reference: gate → dispatch →
//!   per-expert FFN → weighted combine.
//! * [`ep_forward`] — expert parallelism (Sec. V-A): tokens are partitioned
//!   across ranks, experts are partitioned across ranks, and two *real*
//!   all-to-alls (dispatch and combine) move token rows between them through
//!   [`CommGroup`] buffers. Verified equal to the single-device reference.
//! * [`flat_exchange`] / [`pcc_exchange`] — the communication schedules of
//!   Fig. 5 at the data level. With tensor-slicing degree `L`, the data held
//!   by the `L` ranks of a TP group is replicated, so the flat all-to-all
//!   over all `p` ranks moves every chunk `L` times; PCC runs the all-to-all
//!   only between same-TP-slot ranks and restores replication with an
//!   intra-group all-gather. Both must (and do) produce identical final
//!   states — the property the cost savings of Sec. V-B rest on.

use crate::gating::top_k_gating;
use crate::routing::{dispatch_dense, gather_dense};
use dsi_kernels::ops;
use dsi_kernels::tensor::Tensor;
use dsi_sim::collectives::CommGroup;

/// One expert: a position-wise FFN block (`h → 4h → h`).
#[derive(Debug, Clone)]
pub struct ExpertFfn {
    pub w1: Tensor,
    pub b1: Tensor,
    pub w2: Tensor,
    pub b2: Tensor,
}

impl ExpertFfn {
    pub fn random(hidden: usize, seed: u64) -> Self {
        let s = 1.0 / (hidden as f32).sqrt();
        ExpertFfn {
            w1: Tensor::randn(&[hidden, 4 * hidden], s, seed.wrapping_add(1)),
            b1: Tensor::randn(&[4 * hidden], 0.01, seed.wrapping_add(2)),
            w2: Tensor::randn(&[4 * hidden, hidden], s * 0.5, seed.wrapping_add(3)),
            b2: Tensor::randn(&[hidden], 0.01, seed.wrapping_add(4)),
        }
    }

    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = ops::matmul(x, &self.w1);
        ops::add_bias(&mut h, &self.b1);
        ops::gelu(&mut h);
        let mut y = ops::matmul(&h, &self.w2);
        ops::add_bias(&mut y, &self.b2);
        y
    }
}

/// A position-wise MoE layer: learned gate plus `E` experts.
///
/// ```
/// use dsi_moe::layer::MoeLayer;
/// use dsi_kernels::tensor::Tensor;
/// let layer = MoeLayer::random(16, 4, 1, 7);
/// let x = Tensor::randn(&[8, 16], 1.0, 8);
/// let y = layer.forward(&x, /*capacity*/ 8);
/// assert_eq!(y.shape(), &[8, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct MoeLayer {
    /// `[h, E]` gating projection.
    pub gate_w: Tensor,
    pub experts: Vec<ExpertFfn>,
    pub top_k: usize,
}

impl MoeLayer {
    pub fn random(hidden: usize, n_experts: usize, top_k: usize, seed: u64) -> Self {
        MoeLayer {
            gate_w: Tensor::randn(&[hidden, n_experts], 0.1, seed),
            experts: (0..n_experts)
                .map(|i| ExpertFfn::random(hidden, seed.wrapping_add(100 + 10 * i as u64)))
                .collect(),
            top_k,
        }
    }

    /// Single-device forward over `x` (`[S, h]`) with per-expert capacity.
    pub fn forward(&self, x: &Tensor, capacity: usize) -> Tensor {
        let logits = ops::matmul(x, &self.gate_w);
        let gate = top_k_gating(&logits, self.top_k, capacity);
        let dispatched = dispatch_dense(x, &gate);
        // Run each expert on its capacity block.
        let h = x.cols();
        let mut outs = Tensor::zeros(&[self.experts.len() * capacity, h]);
        for (e, ex) in self.experts.iter().enumerate() {
            let block = dispatched.row_slice(e * capacity, (e + 1) * capacity);
            let y = ex.forward(&block);
            for c in 0..capacity {
                outs.row_mut(e * capacity + c).copy_from_slice(y.row(c));
            }
        }
        gather_dense(&outs, &gate)
    }
}

/// Expert-parallel forward across `n_ranks` simulated devices.
///
/// Tokens are split into `n_ranks` contiguous shards; experts are split into
/// `n_ranks` contiguous groups. Each rank gates its local tokens, scatters
/// them into an `[E, cap_local, h]` send buffer grouped by destination rank,
/// and the dispatch/combine all-to-alls run through [`CommGroup::alltoall`].
/// `cap_local` is the per-source-rank slot budget per expert.
pub fn ep_forward(layer: &MoeLayer, x: &Tensor, n_ranks: usize, cap_local: usize) -> Tensor {
    let s = x.rows();
    let h = x.cols();
    let e = layer.experts.len();
    assert!(s.is_multiple_of(n_ranks), "tokens must split evenly across ranks");
    assert!(e.is_multiple_of(n_ranks), "experts must split evenly across ranks");
    let s_local = s / n_ranks;
    let e_local = e / n_ranks;

    // Per-rank gating over local tokens.
    let mut gates = Vec::with_capacity(n_ranks);
    for r in 0..n_ranks {
        let xt = x.row_slice(r * s_local, (r + 1) * s_local);
        let logits = ops::matmul(&xt, &layer.gate_w);
        gates.push(top_k_gating(&logits, layer.top_k, cap_local));
    }

    // Build send buffers: [dest rank][local experts of dest][cap_local][h].
    let chunk_elems = e_local * cap_local * h;
    let buffers: Vec<Vec<f32>> = (0..n_ranks)
        .map(|r| {
            let xt = x.row_slice(r * s_local, (r + 1) * s_local);
            let dispatched = dispatch_dense(&xt, &gates[r]); // [e*cap_local, h]
            // dispatch_dense already orders by expert id, which is grouped by
            // destination rank (contiguous expert split) — so the flat data
            // is exactly the concatenation of per-destination chunks.
            debug_assert_eq!(dispatched.len(), n_ranks * chunk_elems);
            dispatched.into_data()
        })
        .collect();

    // Dispatch all-to-all.
    let mut comm = CommGroup::new(buffers);
    comm.alltoall();

    // Each rank runs its local experts over the received slots.
    let out_buffers: Vec<Vec<f32>> = (0..n_ranks)
        .map(|d| {
            let recv = &comm.buffers[d]; // [src][e_local][cap_local][h]
            let mut out = vec![0.0f32; recv.len()];
            for src in 0..n_ranks {
                for le in 0..e_local {
                    let base = (src * e_local + le) * cap_local * h;
                    let block =
                        Tensor::from_vec(&[cap_local, h], recv[base..base + cap_local * h].to_vec());
                    let y = layer.experts[d * e_local + le].forward(&block);
                    out[base..base + cap_local * h].copy_from_slice(y.data());
                }
            }
            out
        })
        .collect();

    // Combine all-to-all (the reverse exchange).
    let mut comm = CommGroup::new(out_buffers);
    comm.alltoall();

    // Local weighted combine.
    let mut result = Tensor::zeros(&[s, h]);
    #[allow(clippy::needless_range_loop)] // r indexes gates, buffers, and rows
    for r in 0..n_ranks {
        let recv = Tensor::from_vec(&[e * cap_local, h], comm.buffers[r].clone());
        let combined = gather_dense(&recv, &gates[r]);
        for t in 0..s_local {
            result
                .row_mut(r * s_local + t)
                .copy_from_slice(combined.row(t));
        }
    }
    result
}

/// [`ep_forward`] with automatic token padding: real all-to-alls need equal
/// per-rank shards, so systems pad the token count to a multiple of the
/// world size (the capacity padding of GShard-style implementations). Pad
/// rows are zero tokens whose outputs are discarded.
pub fn ep_forward_padded(
    layer: &MoeLayer,
    x: &Tensor,
    n_ranks: usize,
    cap_local: usize,
) -> Tensor {
    let s = x.rows();
    let h = x.cols();
    let padded = s.div_ceil(n_ranks) * n_ranks;
    if padded == s {
        return ep_forward(layer, x, n_ranks, cap_local);
    }
    let mut data = x.data().to_vec();
    data.extend(std::iter::repeat_n(0.0, (padded - s) * h));
    let xp = Tensor::from_vec(&[padded, h], data);
    let yp = ep_forward(layer, &xp, n_ranks, cap_local);
    yp.row_slice(0, s)
}

/// The chunk each expert-parallel group sends to each other group, as flat
/// data: `data[src_group]` is the replicated buffer of that group, laid out
/// as `groups` equal chunks (one per destination group).
type GroupData = Vec<Vec<f32>>;

/// Baseline flat all-to-all over all `p = groups·l` ranks (bottom of
/// Fig. 5): every rank of a source group sends the full destination chunk to
/// every rank of the destination group; receivers drop the `l−1` duplicate
/// copies. Returns each rank's final `[groups × chunk]` state.
pub fn flat_exchange(data: &GroupData, l: usize) -> Vec<Vec<f32>> {
    let groups = data.len();
    let p = groups * l;
    let chunk = data[0].len() / groups;
    assert!(data.iter().all(|d| d.len() == groups * chunk));

    // Rank (j, c) sends, for each destination rank d = (j', c'), the chunk
    // j→j'. Buffer = concat over d of that chunk.
    let buffers: Vec<Vec<f32>> = (0..p)
        .map(|r| {
            let j = r / l;
            let mut b = Vec::with_capacity(p * chunk);
            for d in 0..p {
                let jp = d / l;
                b.extend_from_slice(&data[j][jp * chunk..(jp + 1) * chunk]);
            }
            b
        })
        .collect();
    let mut comm = CommGroup::new(buffers);
    comm.alltoall();

    // Receiver (j', c') got, from each source rank (j, c), chunk j→j'; the l
    // copies per source group are identical — keep the first (the "local
    // transform" dedupe).
    comm.buffers
        .iter()
        .map(|recv| {
            let mut out = Vec::with_capacity(groups * chunk);
            for j in 0..groups {
                let src_rank = j * l; // slot-0 replica
                out.extend_from_slice(&recv[src_rank * chunk..src_rank * chunk + chunk]);
            }
            out
        })
        .collect()
}

/// PCC schedule (top of Fig. 5): (1) local split so TP slot `c` owns the
/// `c`-th `1/l` of every chunk, (2) all-to-all among same-slot ranks only,
/// (3) all-gather within each TP group, (4) local reorder. Produces the same
/// final per-rank state as [`flat_exchange`] while moving each chunk across
/// the expert-parallel dimension exactly once.
pub fn pcc_exchange(data: &GroupData, l: usize) -> Vec<Vec<f32>> {
    let groups = data.len();
    let chunk = data[0].len() / groups;
    assert!(chunk.is_multiple_of(l), "chunk must split across tensor-parallel ranks");
    let sub = chunk / l;

    // Step 1+2: for each TP slot c, an all-to-all among the `groups` ranks
    // holding slot c. Rank (j, c)'s buffer: concat over destination group j'
    // of subchunk c of chunk j→j'.
    let mut slot_results: Vec<Vec<Vec<f32>>> = Vec::with_capacity(l);
    for c in 0..l {
        let buffers: Vec<Vec<f32>> = (0..groups)
            .map(|j| {
                let mut b = Vec::with_capacity(groups * sub);
                for jp in 0..groups {
                    let base = jp * chunk + c * sub;
                    b.extend_from_slice(&data[j][base..base + sub]);
                }
                b
            })
            .collect();
        let mut comm = CommGroup::new(buffers);
        comm.alltoall();
        slot_results.push(comm.buffers);
    }

    // Step 3: all-gather within each TP group j' (over c), then
    // Step 4: local reorder back to [j][chunk].
    let mut out = Vec::with_capacity(groups * l);
    #[allow(clippy::needless_range_loop)] // jp selects the per-slot results of group jp
    for jp in 0..groups {
        let gathered: Vec<Vec<f32>> = (0..l).map(|c| slot_results[c][jp].clone()).collect();
        let mut comm = CommGroup::new(gathered);
        comm.allgather();
        // Every TP rank of group j' now holds concat over c of
        // (concat over j of subchunk c of chunk j→j').
        let flat = &comm.buffers[0];
        let mut reordered = vec![0.0f32; groups * chunk];
        for c in 0..l {
            for j in 0..groups {
                let src = (c * groups + j) * sub;
                let dst = j * chunk + c * sub;
                reordered[dst..dst + sub].copy_from_slice(&flat[src..src + sub]);
            }
        }
        for _ in 0..l {
            out.push(reordered.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expert_ffn_deterministic() {
        let e = ExpertFfn::random(16, 5);
        let x = Tensor::randn(&[3, 16], 1.0, 6);
        assert!(e.forward(&x).allclose(&e.forward(&x), 0.0));
    }

    #[test]
    fn moe_layer_forward_shapes() {
        let layer = MoeLayer::random(16, 4, 1, 7);
        let x = Tensor::randn(&[8, 16], 1.0, 8);
        let y = layer.forward(&x, 8);
        assert_eq!(y.shape(), &[8, 16]);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ep_forward_matches_single_device() {
        // 2 ranks, ample capacity so nothing drops: the expert-parallel
        // execution with real all-to-alls must equal the reference.
        let layer = MoeLayer::random(16, 4, 1, 9);
        let x = Tensor::randn(&[8, 16], 1.0, 10);
        // Single-device with capacity = n_ranks * cap_local (same budget).
        let want = layer.forward(&x, 8);
        let got = ep_forward(&layer, &x, 2, 4);
        assert!(
            got.allclose(&want, 1e-4),
            "max diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn ep_forward_four_ranks() {
        let layer = MoeLayer::random(16, 8, 2, 11);
        let x = Tensor::randn(&[16, 16], 1.0, 12);
        let want = layer.forward(&x, 16);
        let got = ep_forward(&layer, &x, 4, 4);
        assert!(
            got.allclose(&want, 1e-4),
            "max diff {}",
            got.max_abs_diff(&want)
        );
    }

    fn group_data(groups: usize, chunk: usize, seed: u64) -> GroupData {
        (0..groups)
            .map(|j| {
                Tensor::randn(&[groups * chunk], 1.0, seed + j as u64).into_data()
            })
            .collect()
    }

    #[test]
    fn pcc_equals_flat_exchange() {
        // The Sec. V-B claim, functionally: identical final states.
        for l in [1usize, 2, 4] {
            let data = group_data(4, 8, 100 + l as u64);
            let flat = flat_exchange(&data, l);
            let pcc = pcc_exchange(&data, l);
            assert_eq!(flat.len(), pcc.len());
            for (a, b) in flat.iter().zip(&pcc) {
                assert_eq!(a, b, "mismatch at l={l}");
            }
        }
    }

    #[test]
    fn exchange_delivers_correct_chunks() {
        // Destination group j' must end with [chunk(j→j') for all j].
        let groups = 3;
        let chunk = 4;
        let data = group_data(groups, chunk, 200);
        let flat = flat_exchange(&data, 2);
        for jp in 0..groups {
            for c in 0..2 {
                let rank = jp * 2 + c;
                for j in 0..groups {
                    let got = &flat[rank][j * chunk..(j + 1) * chunk];
                    let want = &data[j][jp * chunk..(jp + 1) * chunk];
                    assert_eq!(got, want);
                }
            }
        }
    }

    #[test]
    fn pcc_replicates_within_tp_group() {
        let data = group_data(2, 8, 300);
        let pcc = pcc_exchange(&data, 4);
        // Ranks 0..4 (group 0) identical; 4..8 (group 1) identical.
        for c in 1..4 {
            assert_eq!(pcc[0], pcc[c]);
            assert_eq!(pcc[4], pcc[4 + c]);
        }
    }
}
