//! # dsi-moe — Mixture-of-Experts inference (Sec. V)
//!
//! The paper's massive-scale sparse inference system has three parts, all
//! reproduced here:
//!
//! * [`gating`] — the top-k gating function with expert capacity and token
//!   dropping, implemented functionally.
//! * [`routing`] — the two scatter/gather implementations of Sec. V-C: the
//!   *sparse one-hot einsum* reference (complexity `S·E·M·c_e`, many small
//!   kernels) and the *dense mapping-table* rewrite (complexity `S·M·c_e`,
//!   fused); proven equivalent on random inputs.
//! * [`layer`] — a complete functional MoE layer (gate → dispatch → expert
//!   FFNs → combine) plus an expert-parallel execution across simulated
//!   ranks using real all-to-all data movement, including the PCC
//!   (parallelism-coordinated communication) schedule of Sec. V-B verified
//!   against the flat all-to-all.
//! * [`kernels`] — kernel cost models for both gating implementations (the
//!   claimed "over 6× reduction in MoE kernel-related latency").
//! * [`system`] — the end-to-end per-token latency model for Table II
//!   models on up to 256 simulated GPUs: dense component (TP + data
//!   parallel), gating, two all-to-alls, and expert compute with
//!   expert-slicing; with a PyTorch-style baseline mode for Figs. 7 and 11.

pub mod gating;
pub mod kernels;
pub mod layer;
pub mod moe_model;
pub mod routing;
pub mod slicing;
pub mod system;

pub use gating::{top_k_gating, GateDecision};
pub use layer::{ExpertFfn, MoeLayer};
pub use moe_model::MoeGptModel;
pub use slicing::{slice_expert, sliced_expert_forward};
pub use system::{MoeSystem, MoeSystemKind};
