//! A complete functional MoE transformer: the Table II architecture — a
//! GPT base whose feed-forward blocks are replaced by Position-wise MoE
//! layers on a subset of the blocks (Sec. II-b: "MoE models add conditional
//! computation by replacing the feedforward blocks with a Position-wise MoE
//! layer").

use crate::layer::MoeLayer;
use dsi_kernels::ops;
use dsi_kernels::tensor::Tensor;
use dsi_model::config::GptConfig;
use dsi_model::reference::{attention_block, ffn_block, GptModel, KvCache};

/// The feed-forward block of one transformer layer.
pub enum FfnBlock {
    /// The base model's dense FFN.
    Dense,
    /// A Position-wise MoE layer (pre-norm uses the base layer's `ln2`).
    Moe(MoeLayer),
}

/// A GPT whose designated layers carry MoE feed-forward blocks.
pub struct MoeGptModel {
    pub base: GptModel,
    /// One entry per layer.
    pub blocks: Vec<FfnBlock>,
    /// Expert capacity per forward call per expert.
    pub capacity: usize,
}

impl MoeGptModel {
    /// Build from a base model: every `stride`-th layer (starting at 1, the
    /// DeepSpeed-MoE "every other layer" placement when `stride == 2`)
    /// becomes an MoE block with `experts` experts and top-`k` gating.
    pub fn from_base(
        base: GptModel,
        stride: usize,
        experts: usize,
        top_k: usize,
        capacity: usize,
        seed: u64,
    ) -> Self {
        assert!(stride >= 1);
        let h = base.config.hidden;
        let blocks = (0..base.config.layers)
            .map(|l| {
                if l % stride == stride - 1 {
                    FfnBlock::Moe(MoeLayer::random(h, experts, top_k, seed + 31 * l as u64))
                } else {
                    FfnBlock::Dense
                }
            })
            .collect();
        MoeGptModel {
            base,
            blocks,
            capacity,
        }
    }

    pub fn n_moe_layers(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| matches!(b, FfnBlock::Moe(_)))
            .count()
    }

    /// Forward `ids`, extending `cache`. Mirrors the dense reference except
    /// for the MoE blocks.
    pub fn forward(&self, ids: &[usize], cache: &mut KvCache) -> Tensor {
        let cfg = &self.base.config;
        let offset = cache.context_len();
        let mut x = ops::embedding(&self.base.wte, ids);
        for (i, row) in (offset..offset + ids.len()).enumerate() {
            let pos = self.base.wpe.row(row).to_vec();
            for (a, b) in x.row_mut(i).iter_mut().zip(pos) {
                *a += b;
            }
        }
        for (l, lw) in self.base.layers.iter().enumerate() {
            let out = attention_block(lw, &x, &mut cache.layers[l], cfg.heads);
            x = match &self.blocks[l] {
                FfnBlock::Dense => ffn_block(lw, &out),
                FfnBlock::Moe(moe) => {
                    // Pre-norm with the layer's ln2, route through the
                    // experts, residual back.
                    let normed = ops::layernorm(&out, &lw.ln2_g, &lw.ln2_b, 1e-5);
                    let mut y = moe.forward(&normed, self.capacity);
                    ops::add_inplace(&mut y, &out);
                    y
                }
            };
        }
        let x = ops::layernorm(&x, &self.base.lnf_g, &self.base.lnf_b, 1e-5);
        ops::matmul_transb(&x, &self.base.wte)
    }

    /// Forward with the MoE blocks executed *expert-parallel* across
    /// `ranks` simulated devices (real all-to-alls via
    /// [`crate::layer::ep_forward_padded`]); dense blocks and attention run
    /// replicated. Numerically equivalent to [`Self::forward`] when no
    /// tokens are dropped.
    pub fn forward_ep(&self, ids: &[usize], cache: &mut KvCache, ranks: usize) -> Tensor {
        let cfg = &self.base.config;
        let offset = cache.context_len();
        let mut x = ops::embedding(&self.base.wte, ids);
        for (i, row) in (offset..offset + ids.len()).enumerate() {
            let pos = self.base.wpe.row(row).to_vec();
            for (a, b) in x.row_mut(i).iter_mut().zip(pos) {
                *a += b;
            }
        }
        for (l, lw) in self.base.layers.iter().enumerate() {
            let out = attention_block(lw, &x, &mut cache.layers[l], cfg.heads);
            x = match &self.blocks[l] {
                FfnBlock::Dense => ffn_block(lw, &out),
                FfnBlock::Moe(moe) => {
                    let normed = ops::layernorm(&out, &lw.ln2_g, &lw.ln2_b, 1e-5);
                    let cap_local = self.capacity.div_ceil(ranks).max(1);
                    let mut y =
                        crate::layer::ep_forward_padded(moe, &normed, ranks, cap_local);
                    ops::add_inplace(&mut y, &out);
                    y
                }
            };
        }
        let x = ops::layernorm(&x, &self.base.lnf_g, &self.base.lnf_b, 1e-5);
        ops::matmul_transb(&x, &self.base.wte)
    }

    /// Greedy generation.
    pub fn generate(&self, prompt: &[usize], n_tokens: usize) -> Vec<usize> {
        let cfg = &self.base.config;
        let mut cache = KvCache::new(cfg.layers, cfg.hidden);
        let logits = self.forward(prompt, &mut cache);
        let mut next =
            ops::argmax_rows(&logits.row_slice(logits.rows() - 1, logits.rows()))[0];
        let mut out = vec![next];
        for _ in 1..n_tokens {
            let logits = self.forward(&[next], &mut cache);
            next = ops::argmax_rows(&logits)[0];
            out.push(next);
        }
        out
    }

    /// Total parameters, counting every expert.
    pub fn total_params(&self) -> usize {
        let cfg: &GptConfig = &self.base.config;
        let dense: usize = self
            .base
            .layers
            .iter()
            .map(|l| l.w_qkv.len() + l.w_o.len() + l.w_ff1.len() + l.w_ff2.len())
            .sum();
        let experts: usize = self
            .blocks
            .iter()
            .filter_map(|b| match b {
                FfnBlock::Moe(m) => Some(
                    m.gate_w.len()
                        + m.experts
                            .iter()
                            .map(|e| e.w1.len() + e.w2.len())
                            .sum::<usize>(),
                ),
                FfnBlock::Dense => None,
            })
            .sum();
        dense + experts + cfg.vocab * cfg.hidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_model::zoo;

    fn model(experts: usize) -> MoeGptModel {
        let base = GptModel::random(zoo::tiny(4), 61);
        MoeGptModel::from_base(base, 2, experts, 1, 16, 62)
    }

    #[test]
    fn alternating_placement() {
        let m = model(4);
        assert_eq!(m.n_moe_layers(), 2);
        assert!(matches!(m.blocks[1], FfnBlock::Moe(_)));
        assert!(matches!(m.blocks[0], FfnBlock::Dense));
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let m = model(4);
        let a = m.generate(&[1, 2, 3], 5);
        let b = m.generate(&[1, 2, 3], 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn kv_cache_equivalence_holds_for_moe() {
        // The MoE model must satisfy the same incremental-vs-full invariant
        // as the dense reference (routing decisions are per-token, so the
        // cache doesn't change them).
        let m = model(4);
        let mut cache = KvCache::new(4, 64);
        m.forward(&[5, 6, 7], &mut cache);
        let inc = m.forward(&[8], &mut cache);
        let mut full_cache = KvCache::new(4, 64);
        let full = m.forward(&[5, 6, 7, 8], &mut full_cache);
        let last = full.row_slice(3, 4);
        assert!(
            inc.allclose(&last, 5e-3),
            "diff {}",
            inc.max_abs_diff(&last)
        );
    }

    #[test]
    fn single_expert_moe_equals_dense_with_that_expert() {
        // With E=1 every token routes to expert 0 with weight 1, so the MoE
        // block computes exactly that expert's FFN: replace the dense FFN
        // weights with the expert's and the two models must agree.
        let base = GptModel::random(zoo::tiny(2), 71);
        let mut moe = MoeGptModel::from_base(base.clone(), 2, 1, 1, 64, 72);
        // Copy the expert weights into the base layer's dense FFN.
        let mut dense = base;
        if let FfnBlock::Moe(m) = &moe.blocks[1] {
            let e = &m.experts[0];
            dense.layers[1].w_ff1 = e.w1.clone();
            dense.layers[1].b_ff1 = e.b1.clone();
            dense.layers[1].w_ff2 = e.w2.clone();
            dense.layers[1].b_ff2 = e.b2.clone();
        } else {
            panic!("layer 1 should be MoE");
        }
        moe.capacity = 64; // never drop
        let ids = [9usize, 4, 2];
        let mut c1 = KvCache::new(2, 64);
        let got = moe.forward(&ids, &mut c1);
        let want = dense.forward_full(&ids);
        assert!(
            got.allclose(&want, 1e-3),
            "diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn expert_parallel_full_model_equivalence() {
        // The whole MoE-GPT under expert parallelism (tokens really exchanged
        // through all-to-alls) matches the single-device model, including a
        // generation step whose token count doesn't divide the world size.
        let m = model(4);
        let ids = [3usize, 1, 4, 1, 5]; // 5 tokens on 2 ranks -> padded
        let mut c1 = KvCache::new(4, 64);
        let want = m.forward(&ids, &mut c1);
        for ranks in [1usize, 2, 4] {
            let mut c2 = KvCache::new(4, 64);
            let got = m.forward_ep(&ids, &mut c2, ranks);
            assert!(
                got.allclose(&want, 1e-3),
                "ranks {ranks}: diff {}",
                got.max_abs_diff(&want)
            );
            // Single-token generation step through EP.
            let g1 = m.forward(&[9], &mut c1);
            let g2 = m.forward_ep(&[9], &mut c2, ranks);
            assert!(g2.allclose(&g1, 5e-3), "gen diff {}", g2.max_abs_diff(&g1));
            // Re-sync the reference cache for the next ranks iteration.
            c1 = {
                let mut c = KvCache::new(4, 64);
                m.forward(&ids, &mut c);
                c
            };
        }
    }

    #[test]
    fn more_experts_means_more_params_same_flops_shape() {
        let small = model(2);
        let big = model(8);
        assert!(big.total_params() > small.total_params());
        // Same architecture otherwise: generation still works.
        assert_eq!(big.generate(&[1], 2).len(), 2);
    }
}
