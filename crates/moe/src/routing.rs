//! Scatter/gather routing: sparse one-hot einsum reference vs the dense
//! mapping-table rewrite (Sec. V-C steps 3–4).
//!
//! The baseline "sparse einsum" path materializes one-hot masks and
//! multiplies through them — `(E−1)` out of `E` multiply-adds per token are
//! with zeros, giving the `S × E × M × c_e` complexity the paper calls out.
//! The optimized path walks the expert→token table and copies rows —
//! `S × M × c_e`. Both are implemented literally so the equivalence (and the
//! complexity gap, which the cost model in [`crate::kernels`] charges) is
//! demonstrated rather than asserted.

use crate::gating::GateDecision;
use dsi_kernels::tensor::Tensor;

/// Dispatch tokens (`[S, h]`) into per-expert buffers (`[E, capacity, h]`,
/// returned flattened `[E * capacity, h]`) via the *sparse einsum*:
/// `dispatched[e, c, :] = Σ_s onehot[s, e, c] · tokens[s, :]`.
pub fn dispatch_sparse(tokens: &Tensor, gate: &GateDecision) -> Tensor {
    let h = tokens.cols();
    let (e, cap) = (gate.n_experts, gate.capacity);
    // Materialize the one-hot mask [S, E, cap] exactly as the baseline does.
    let mut mask = vec![0.0f32; gate.n_tokens * e * cap];
    for (t, asgs) in gate.token_to_expert.iter().enumerate() {
        for a in asgs {
            mask[(t * e + a.expert) * cap + a.slot] = 1.0;
        }
    }
    let mut out = Tensor::zeros(&[e * cap, h]);
    // The wasteful full contraction: every (expert, slot) scans every token.
    for ex in 0..e {
        for c in 0..cap {
            let row = out.row_mut(ex * cap + c);
            for t in 0..gate.n_tokens {
                let m = mask[(t * e + ex) * cap + c];
                if m != 0.0 {
                    for (o, &x) in row.iter_mut().zip(tokens.row(t)) {
                        *o += m * x;
                    }
                }
            }
        }
    }
    out
}

/// Dispatch via the dense expert→token table: for each occupied slot, copy
/// the token row (step 3's "data-layout transformation").
pub fn dispatch_dense(tokens: &Tensor, gate: &GateDecision) -> Tensor {
    let h = tokens.cols();
    let (e, cap) = (gate.n_experts, gate.capacity);
    let mut out = Tensor::zeros(&[e * cap, h]);
    for (ex, slots) in gate.expert_to_token.iter().enumerate() {
        for (c, tok) in slots.iter().enumerate() {
            if let Some(t) = tok {
                out.row_mut(ex * cap + c).copy_from_slice(tokens.row(*t));
            }
        }
    }
    out
}

/// Gather expert outputs (`[E * capacity, h]`) back to token order via the
/// sparse einsum, weighting by the gate probabilities.
pub fn gather_sparse(expert_out: &Tensor, gate: &GateDecision) -> Tensor {
    let h = expert_out.cols();
    let (e, cap) = (gate.n_experts, gate.capacity);
    let mut mask = vec![0.0f32; gate.n_tokens * e * cap];
    for (t, asgs) in gate.token_to_expert.iter().enumerate() {
        for a in asgs {
            mask[(t * e + a.expert) * cap + a.slot] = a.weight;
        }
    }
    let mut out = Tensor::zeros(&[gate.n_tokens, h]);
    for t in 0..gate.n_tokens {
        let row = out.row_mut(t);
        for ex in 0..e {
            for c in 0..cap {
                let w = mask[(t * e + ex) * cap + c];
                if w != 0.0 {
                    for (o, &x) in row.iter_mut().zip(expert_out.row(ex * cap + c)) {
                        *o += w * x;
                    }
                }
            }
        }
    }
    out
}

/// Gather via the dense token→expert table (step 4).
pub fn gather_dense(expert_out: &Tensor, gate: &GateDecision) -> Tensor {
    let h = expert_out.cols();
    let cap = gate.capacity;
    let mut out = Tensor::zeros(&[gate.n_tokens, h]);
    for (t, asgs) in gate.token_to_expert.iter().enumerate() {
        let row = out.row_mut(t);
        for a in asgs {
            for (o, &x) in row.iter_mut().zip(expert_out.row(a.expert * cap + a.slot)) {
                *o += a.weight * x;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gating::top_k_gating;

    fn setup(s: usize, e: usize, cap: usize, k: usize) -> (Tensor, GateDecision) {
        let tokens = Tensor::randn(&[s, 16], 1.0, 77);
        let logits = Tensor::randn(&[s, e], 1.0, 78);
        (tokens.clone(), top_k_gating(&logits, k, cap))
    }

    #[test]
    fn dispatch_sparse_equals_dense_top1() {
        let (tokens, gate) = setup(24, 8, 8, 1);
        let a = dispatch_sparse(&tokens, &gate);
        let b = dispatch_dense(&tokens, &gate);
        assert!(a.allclose(&b, 1e-6));
    }

    #[test]
    fn dispatch_sparse_equals_dense_top2() {
        let (tokens, gate) = setup(16, 4, 16, 2);
        let a = dispatch_sparse(&tokens, &gate);
        let b = dispatch_dense(&tokens, &gate);
        assert!(a.allclose(&b, 1e-6));
    }

    #[test]
    fn gather_sparse_equals_dense() {
        let (_, gate) = setup(16, 4, 16, 2);
        let expert_out = Tensor::randn(&[4 * 16, 16], 1.0, 79);
        let a = gather_sparse(&expert_out, &gate);
        let b = gather_dense(&expert_out, &gate);
        assert!(a.allclose(&b, 1e-5));
    }

    #[test]
    fn roundtrip_identity_experts() {
        // With identity experts (output = input), gather(dispatch(x)) must
        // return x for every non-dropped token (weights sum to 1).
        let (tokens, gate) = setup(20, 5, 8, 2);
        let d = dispatch_dense(&tokens, &gate);
        let back = gather_dense(&d, &gate);
        for t in 0..20 {
            if !gate.dropped.contains(&t) && gate.token_to_expert[t].len() == 2 {
                let diff: f32 = back
                    .row(t)
                    .iter()
                    .zip(tokens.row(t))
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f32::max);
                assert!(diff < 1e-5, "token {t} diff {diff}");
            }
        }
    }

    #[test]
    fn dropped_tokens_get_zero_output() {
        // Tiny capacity forces drops; dropped tokens combine nothing.
        let tokens = Tensor::randn(&[16, 8], 1.0, 80);
        let logits = Tensor::from_vec(&[16, 2], [1.0, 0.0].repeat(16));
        let gate = top_k_gating(&logits, 1, 2);
        assert!(!gate.dropped.is_empty());
        let d = dispatch_dense(&tokens, &gate);
        let out = gather_dense(&d, &gate);
        for &t in &gate.dropped {
            assert!(out.row(t).iter().all(|&v| v == 0.0));
        }
    }
}
