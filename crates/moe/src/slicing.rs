//! Expert-slicing (Sec. V-A, Fig. 4): tensor-slicing *within* an expert's
//! FFN so that one expert's weight read is split across multiple GPUs.
//!
//! Table II's 24B/47B configurations use expert-slicing degree 2 on 256
//! GPUs; the latency model credits the halved per-GPU weight read. This
//! module is the functional counterpart: a sliced expert really computes on
//! column/row shards and really sums its partials through the functional
//! all-reduce, and is verified equal to the unsliced expert.

use crate::layer::ExpertFfn;
use dsi_kernels::ops;
use dsi_kernels::tensor::Tensor;
use dsi_sim::collectives::CommGroup;

/// One rank's shard of an expert FFN.
#[derive(Debug, Clone)]
pub struct ExpertShard {
    /// Column shard `[h, 4h/L]`.
    pub w1: Tensor,
    pub b1: Tensor,
    /// Row shard `[4h/L, h]`.
    pub w2: Tensor,
    /// `b2 / L` so the all-reduce applies it exactly once.
    pub b2: Tensor,
}

/// Slice an expert `l` ways (column-parallel FF1, row-parallel FF2 — the
/// same Megatron decomposition the dense blocks use).
pub fn slice_expert(e: &ExpertFfn, l: usize) -> Vec<ExpertShard> {
    let f = e.w1.cols();
    assert!(f.is_multiple_of(l), "ffn width {f} not divisible by slicing degree {l}");
    let fs = f / l;
    (0..l)
        .map(|r| {
            let mut b2 = e.b2.clone();
            ops::scale_inplace(&mut b2, 1.0 / l as f32);
            ExpertShard {
                w1: e.w1.col_slice(r * fs, (r + 1) * fs),
                b1: Tensor::from_vec(&[fs], e.b1.data()[r * fs..(r + 1) * fs].to_vec()),
                w2: e.w2.row_slice(r * fs, (r + 1) * fs),
                b2,
            }
        })
        .collect()
}

impl ExpertShard {
    /// This rank's partial output (pre-all-reduce).
    pub fn forward_partial(&self, x: &Tensor) -> Tensor {
        let mut h = ops::matmul(x, &self.w1);
        ops::add_bias(&mut h, &self.b1);
        ops::gelu(&mut h);
        let mut y = ops::matmul(&h, &self.w2);
        ops::add_bias(&mut y, &self.b2);
        y
    }
}

/// Run a sliced expert across all its shards with a functional all-reduce.
pub fn sliced_expert_forward(shards: &[ExpertShard], x: &Tensor) -> Tensor {
    let partials: Vec<Vec<f32>> = shards
        .iter()
        .map(|s| s.forward_partial(x).into_data())
        .collect();
    let shape = [x.rows(), shards[0].w2.cols()];
    let mut comm = CommGroup::new(partials);
    comm.allreduce_sum();
    Tensor::from_vec(&shape, comm.buffers[0].clone())
}

/// Per-GPU weight elements of a sliced expert — the quantity the latency
/// model divides by the slicing degree.
pub fn shard_weight_elems(shard: &ExpertShard) -> usize {
    shard.w1.len() + shard.w2.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expert() -> ExpertFfn {
        ExpertFfn::random(32, 13)
    }

    #[test]
    fn sliced_matches_unsliced() {
        let e = expert();
        let x = Tensor::randn(&[5, 32], 1.0, 14);
        let want = e.forward(&x);
        for l in [1usize, 2, 4] {
            let shards = slice_expert(&e, l);
            let got = sliced_expert_forward(&shards, &x);
            assert!(
                got.allclose(&want, 1e-4),
                "L={l}: diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn shards_partition_weights() {
        let e = expert();
        let shards = slice_expert(&e, 4);
        let total: usize = shards.iter().map(shard_weight_elems).sum();
        assert_eq!(total, e.w1.len() + e.w2.len());
        // Per-GPU read is exactly 1/L.
        assert_eq!(shard_weight_elems(&shards[0]) * 4, total);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_slicing_rejected() {
        slice_expert(&expert(), 3);
    }

    #[test]
    fn gelu_nonlinearity_respected() {
        // Slicing FF1 column-wise is exact because GeLU is applied
        // *element-wise after the column split* — verify on a case where a
        // wrong decomposition (e.g. slicing before the bias) would differ.
        let e = expert();
        let x = Tensor::from_vec(&[1, 32], vec![0.5; 32]);
        let want = e.forward(&x);
        let got = sliced_expert_forward(&slice_expert(&e, 2), &x);
        assert!(got.allclose(&want, 1e-5));
    }
}
