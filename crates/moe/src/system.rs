//! End-to-end MoE inference latency model (Sec. V, Figs. 7 and 11).
//!
//! A generation step of a Table II model on `p` GPUs decomposes into:
//!
//! * **dense component** — attention blocks (and the FFN of non-MoE layers),
//!   tensor-sliced `mp_degree` ways and data-parallel beyond that. Memory
//!   bandwidth bound at inference batch sizes: time ≈ per-GPU dense weight
//!   bytes / achieved bandwidth, plus two all-reduces per layer and the
//!   framework's kernel-launch overhead.
//! * **gating kernels** — sparse one-hot path for the PyTorch baseline,
//!   dense mapping-table path for DeepSpeed ([`crate::kernels`]).
//! * **two all-to-alls per MoE layer** — flat over all expert-parallel ranks
//!   for the baseline, PCC (`O(p/L) + O(L)`) for DeepSpeed when tensor
//!   slicing is present (Sec. V-B).
//! * **expert compute** — each active expert streams its FFN weights; with
//!   expert-slicing the read is split across `expert_slicing` GPUs
//!   (Sec. V-A). Collisions (two active experts on one GPU) serialize.
//!
//! The latency difference between the two systems is therefore *entirely*
//! attributable to the paper's three optimizations — expert-slicing, PCC,
//! and MoE-specific kernels — plus the dense-kernel improvements of
//! Sec. III, matching the experimental control of Sec. VII-B2.

use crate::kernels::{dense_routing_cost, routing_time, sparse_routing_cost};
use dsi_kernels::cost::{gemm_policy, GemmImpl};
use dsi_model::config::MoeConfig;
use dsi_sim::collectives::Collectives;
use dsi_sim::hw::{ClusterSpec, DType};
use dsi_sim::topology::Topology;
use serde::Serialize;

/// Which system executes the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MoeSystemKind {
    /// DeepSpeed-MoE: dense-table gating, PCC all-to-all, expert-slicing,
    /// fused dense kernels with CUDA graphs.
    DeepSpeed,
    /// The full-featured distributed PyTorch implementation of Sec. VII-A1:
    /// sparse einsum gating, flat all-to-all, no expert-slicing, eager
    /// kernels.
    PyTorchBaseline,
}

/// Per-token-step latency breakdown, seconds.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TokenLatency {
    pub dense_compute: f64,
    pub launch_overhead: f64,
    pub tp_allreduce: f64,
    pub gating: f64,
    pub alltoall: f64,
    pub expert_compute: f64,
    pub total: f64,
}

/// A Table II model bound to a cluster and a system implementation.
#[derive(Debug, Clone)]
pub struct MoeSystem {
    pub config: MoeConfig,
    pub cluster: ClusterSpec,
    pub kind: MoeSystemKind,
}

impl MoeSystem {
    /// Build on the DGX-A100 cluster sized for the model's GPU count.
    pub fn new(config: MoeConfig, kind: MoeSystemKind) -> Self {
        let nodes = config.gpus.div_ceil(8).max(1);
        MoeSystem {
            config,
            cluster: ClusterSpec::dgx_a100(nodes),
            kind,
        }
    }

    fn is_ds(&self) -> bool {
        self.kind == MoeSystemKind::DeepSpeed
    }

    /// Effective expert-slicing degree (a DeepSpeed-only optimization).
    fn slicing(&self) -> usize {
        if self.is_ds() {
            self.config.expert_slicing
        } else {
            1
        }
    }

    /// Serialization factor from expert collisions: `active` experts land on
    /// `gpu_groups` GPU groups; the slowest group does the max load.
    fn expert_max_load(active: usize, gpu_groups: usize) -> usize {
        if active == 0 || gpu_groups == 0 {
            return 0;
        }
        let base = active.div_ceil(gpu_groups);
        // Random placement: when groups don't comfortably outnumber the
        // active experts, expect one collision on the critical path.
        if gpu_groups < 2 * active && gpu_groups > 1 {
            base + 1
        } else {
            base
        }
    }

    /// Latency of one token-generation step with `batch` sequences in
    /// flight (Fig. 7 setting: batch 8, one new token per sequence).
    pub fn token_latency(&self, batch: usize) -> TokenLatency {
        let cfg = &self.config;
        let gpu = &self.cluster.node.gpu;
        let topo = Topology::new(self.cluster.clone());
        let h = cfg.base.hidden as f64;
        let wb = DType::Fp16.bytes() as f64;
        let ab = DType::Fp16.bytes() as f64;
        let tokens = batch; // one new token per sequence per step

        // Tokens per tensor-parallel replica (data parallelism shards the
        // batch across the gpus/mp replicas, floor 1).
        let replicas = (cfg.gpus / cfg.mp_degree).max(1);
        let tokens_per_replica = tokens.div_ceil(replicas).max(1) as f64;

        // --- dense component ---
        let dense_bytes_per_gpu = cfg.dense_params() * wb / cfg.mp_degree as f64;
        let gemm = if self.is_ds() {
            gemm_policy::deepspeed_select(tokens_per_replica as usize, DType::Fp16)
        } else {
            GemmImpl::CuBlas
        };
        let bw_eff = gemm_policy::bw_efficiency(gemm, tokens_per_replica);
        let dense_compute = dense_bytes_per_gpu / (gpu.mem_bw * bw_eff);

        // Launch overhead: DeepSpeed captures the step in a CUDA graph;
        // PyTorch pays ~30 launches per layer (Sec. III-A / Fig. 10a).
        let launch_overhead = if self.is_ds() {
            4.0 * gpu.kernel_launch_overhead
        } else {
            cfg.base.layers as f64 * 30.0 * gpu.kernel_launch_overhead
        };

        // Two all-reduces per layer across the TP group.
        let tp_allreduce = if cfg.mp_degree > 1 {
            let group = topo.tp_group(0, cfg.mp_degree);
            let bytes = tokens_per_replica * h * ab;
            2.0 * cfg.base.layers as f64 * Collectives::allreduce(&topo, &group, bytes).time
        } else {
            0.0
        };

        // --- gating kernels, per MoE layer ---
        let capacity = cfg.capacity(tokens.max(1));
        let routing = if self.is_ds() {
            dense_routing_cost(tokens, cfg.experts, cfg.base.hidden, capacity, DType::Fp16)
        } else {
            sparse_routing_cost(tokens, cfg.experts, cfg.base.hidden, capacity, DType::Fp16)
        };
        let gating = cfg.moe_layers as f64 * routing_time(gpu, &routing, DType::Fp16);

        // --- all-to-alls: two per MoE layer over the expert-parallel world ---
        let world: Vec<usize> = (0..cfg.gpus.min(topo.world_size())).collect();
        let a2a_bytes_per_rank = (tokens.div_ceil(cfg.ep_degree).max(1) as f64) * h * ab;
        let a2a_one = if self.is_ds() && cfg.mp_degree > 1 {
            Collectives::pcc_alltoall(&topo, &world, cfg.mp_degree, a2a_bytes_per_rank).0
        } else {
            Collectives::alltoall(&topo, &world, a2a_bytes_per_rank)
        };
        // The PyTorch implementation issues the exchange as per-expert
        // send/recv pairs rather than one fused NCCL all-to-all, forfeiting
        // message pipelining and NCCL channel aggregation (Sec. VII-A1
        // baseline).
        let a2a_impl_penalty = if self.is_ds() { 1.0 } else { 3.0 };
        let alltoall = 2.0 * cfg.moe_layers as f64 * a2a_one.time * a2a_impl_penalty;

        // --- expert compute, per MoE layer ---
        let active = (tokens * cfg.top_k).min(cfg.experts);
        let max_load = Self::expert_max_load(active, cfg.ep_degree.min(cfg.experts));
        let expert_bytes = cfg.expert_params() * wb / self.slicing() as f64;
        let expert_read = expert_bytes / (gpu.mem_bw * bw_eff);
        let slicing_reduce = if self.slicing() > 1 {
            let group = topo.tp_group(0, self.slicing());
            Collectives::allreduce(&topo, &group, capacity as f64 * h * ab).time
        } else {
            0.0
        };
        let expert_compute =
            cfg.moe_layers as f64 * (max_load as f64 * expert_read + slicing_reduce);

        let total =
            dense_compute + launch_overhead + tp_allreduce + gating + alltoall + expert_compute;
        TokenLatency {
            dense_compute,
            launch_overhead,
            tp_allreduce,
            gating,
            alltoall,
            expert_compute,
            total,
        }
    }

    /// Tokens per second per GPU at a given batch (the Fig. 7 throughput
    /// axis).
    pub fn throughput_per_gpu(&self, batch: usize) -> f64 {
        let lat = self.token_latency(batch).total;
        batch as f64 / (lat * self.config.gpus as f64)
    }

    /// "Aggregate memory bandwidth" in the paper's sense (Sec. VII-B2): the
    /// full model weights divided by the per-token latency — the effective
    /// rate at which the cluster's HBM serves the model.
    pub fn aggregate_bandwidth(&self, batch: usize) -> f64 {
        self.config.total_params() * DType::Fp16.bytes() as f64 / self.token_latency(batch).total
    }

    /// Fig. 11 weak-scaling view: rescale the model's expert parallelism to
    /// `gpus` and report per-GPU traffic summed over the cluster divided by
    /// latency, with `batch_per_gpu` sequences per GPU.
    pub fn weak_scaling_bandwidth(&self, gpus: usize, batch_per_gpu: usize) -> f64 {
        let mut cfg = self.config.clone();
        cfg.ep_degree = gpus.min(cfg.experts);
        cfg.gpus = gpus;
        let sys = MoeSystem {
            config: cfg.clone(),
            cluster: ClusterSpec::dgx_a100(gpus.div_ceil(8).max(1)),
            kind: self.kind,
        };
        let batch = batch_per_gpu * gpus;
        let lat = sys.token_latency(batch).total;
        // Bytes each GPU streams per step: its dense shard plus its share of
        // active expert reads.
        let wb = DType::Fp16.bytes() as f64;
        let dense = cfg.dense_params() * wb / cfg.mp_degree as f64;
        let active = (batch * cfg.top_k).min(cfg.experts * gpus / cfg.ep_degree.max(1));
        let expert = cfg.moe_layers as f64 * active.min(cfg.experts) as f64 * cfg.expert_params()
            * wb
            / gpus as f64;
        gpus as f64 * (dense + expert) / lat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_model::zoo::table2;

    fn systems(i: usize) -> (MoeSystem, MoeSystem) {
        let cfg = table2().into_iter().nth(i).unwrap();
        (
            MoeSystem::new(cfg.clone(), MoeSystemKind::DeepSpeed),
            MoeSystem::new(cfg, MoeSystemKind::PyTorchBaseline),
        )
    }

    #[test]
    fn deepspeed_faster_on_every_table2_model() {
        for i in 0..5 {
            let (ds, base) = systems(i);
            let lds = ds.token_latency(8).total;
            let lb = base.token_latency(8).total;
            assert!(
                lds < lb,
                "{}: DS {lds:.4}s vs baseline {lb:.4}s",
                ds.config.name
            );
        }
    }

    #[test]
    fn speedup_reaches_multiples_at_scale() {
        // Fig. 7: "up to 7.3×" — the larger 256-GPU models with PCC and
        // slicing should show several-fold gains.
        let (ds, base) = systems(4); // 47B+MoE-128, 2T params
        let speedup = base.token_latency(8).total / ds.token_latency(8).total;
        assert!(speedup > 3.0, "2T speedup only {speedup:.2}x");
        assert!(speedup < 12.0, "2T speedup implausibly high: {speedup:.2}x");
    }

    #[test]
    fn speedup_grows_with_model_scale() {
        let s_small = {
            let (ds, b) = systems(0);
            b.token_latency(8).total / ds.token_latency(8).total
        };
        let s_large = {
            let (ds, b) = systems(4);
            b.token_latency(8).total / ds.token_latency(8).total
        };
        assert!(s_large > s_small, "large {s_large:.2} small {s_small:.2}");
    }

    #[test]
    fn trillion_parameter_model_under_25ms() {
        // Headline claim (Sec. VII-B2): 1T+ MoE under 25 ms on 256 GPUs.
        let (ds, _) = systems(3); // 24B+MoE-128 = 1.06T params, 256 GPUs
        let lat = ds.token_latency(8).total;
        assert!(lat < 25e-3, "1T latency {:.1} ms", lat * 1e3);
        assert!(lat > 1e-3, "1T latency implausibly low: {:.2} ms", lat * 1e3);
    }

    #[test]
    fn aggregate_bandwidth_fraction_of_peak() {
        // ~33% of 256-GPU peak claimed for the 1T model.
        let (ds, _) = systems(3);
        let frac = ds.aggregate_bandwidth(8) / ds.cluster.aggregate_mem_bw();
        assert!(frac > 0.15 && frac < 0.6, "bandwidth fraction {frac:.2}");
    }

    #[test]
    fn pcc_contributes_at_high_mp() {
        // For an MP=8 model the all-to-all term must be much smaller under
        // DeepSpeed than the baseline.
        let (ds, base) = systems(4);
        let a_ds = ds.token_latency(8).alltoall;
        let a_b = base.token_latency(8).alltoall;
        assert!(a_ds * 2.0 < a_b, "DS a2a {a_ds} baseline {a_b}");
    }

    #[test]
    fn weak_scaling_bandwidth_grows(){
        // Fig. 11: 52B model, 8 -> 128 GPUs.
        let (ds, base) = systems(0);
        let b8 = ds.weak_scaling_bandwidth(8, 8);
        let b128 = ds.weak_scaling_bandwidth(128, 8);
        assert!(b128 > 4.5 * b8, "DS scaling {b8:.2e} -> {b128:.2e}");
        // Baseline scales worse.
        let p8 = base.weak_scaling_bandwidth(8, 8);
        let p128 = base.weak_scaling_bandwidth(128, 8);
        assert!(b128 / b8 > p128 / p8 * 0.99);
        assert!(b128 > 1.5 * p128, "DS {b128:.2e} vs baseline {p128:.2e} at 128");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let (ds, _) = systems(2);
        let t = ds.token_latency(8);
        let sum = t.dense_compute
            + t.launch_overhead
            + t.tp_allreduce
            + t.gating
            + t.alltoall
            + t.expert_compute;
        assert!((sum - t.total).abs() < 1e-12);
    }

    #[test]
    fn expert_max_load_properties() {
        assert_eq!(MoeSystem::expert_max_load(8, 128), 1);
        assert_eq!(MoeSystem::expert_max_load(8, 8), 2); // collisions expected
        assert_eq!(MoeSystem::expert_max_load(0, 8), 0);
        assert_eq!(MoeSystem::expert_max_load(16, 1), 16);
    }
}
