//! # dsi-parallel — model parallelism for inference
//!
//! Sec. IV of the paper adapts training-era model parallelism to the
//! constraints of autoregressive inference. This crate implements:
//!
//! * [`tp`] — Megatron-style tensor slicing (Sec. IV-A): column-parallel
//!   QKV/FF1, row-parallel attention-output/FF2, two all-reduces per layer.
//!   Implemented *functionally* over per-rank weight shards and verified to
//!   reproduce the unsharded reference bit-for-bit (up to f32 accumulation
//!   order).
//! * [`tp_exec`] — the *executed* counterpart: the fast path's packed
//!   weights sharded per rank at pack time, each rank decoding on its own
//!   pinned OS thread with rank-private scratch/KV, meeting the group at
//!   the two per-layer all-reduces through `dsi-sim`'s shared-memory
//!   barrier/all-reduce backend. Token-identical to the single-thread
//!   fast path at every TP degree, zero allocations per decoded token.
//! * [`pipeline`] — inference-optimized pipeline parallelism (Sec. IV-B/C):
//!   the training-style schedule with its token-boundary bubbles (Fig. 2a),
//!   the dynamic token-queue schedule that hides them (Fig. 2b), and the
//!   hybrid prompt/generation micro-batch schedule (Fig. 3), all realized as
//!   task graphs on the discrete-event engine.
//! * [`offload`] — KV-cache offload to host memory with the odd/even layer
//!   scheduling that avoids PCIe contention between GPUs sharing a link
//!   (Sec. IV-C2/3).
//! * [`supervisor`] — fault-tolerant TP decoding: heartbeat/timeout
//!   detection of dead ranks, bounded retry-with-backoff for transient
//!   faults, graceful degradation to a smaller TP degree (with KV-shard
//!   salvage) for permanent ones — decoding resumes token-identically.

pub mod mapping;
pub mod offload;
pub mod pipeline;
pub mod pp_exec;
pub mod supervisor;
pub mod tp;
pub mod tp_exec;

pub use mapping::Mapping3D;
pub use pipeline::{PipelineSchedule, PipelineSpec};
pub use pp_exec::PipelinedModel;
pub use supervisor::{FaultError, FtConfig, FtReport, FtSession, RetryPolicy};
pub use tp::{tp_layer_forward, tp_layer_forward_into, TpLayer};
pub use tp_exec::{Dismantled, RankFailure, RankFailureCause, TpPackedModel, TpSession};
