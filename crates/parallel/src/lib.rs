//! # dsi-parallel — model parallelism for inference
//!
//! Sec. IV of the paper adapts training-era model parallelism to the
//! constraints of autoregressive inference. This crate implements:
//!
//! * [`tp`] — Megatron-style tensor slicing (Sec. IV-A): column-parallel
//!   QKV/FF1, row-parallel attention-output/FF2, two all-reduces per layer.
//!   Implemented *functionally* over per-rank weight shards and verified to
//!   reproduce the unsharded reference bit-for-bit (up to f32 accumulation
//!   order).
//! * [`pipeline`] — inference-optimized pipeline parallelism (Sec. IV-B/C):
//!   the training-style schedule with its token-boundary bubbles (Fig. 2a),
//!   the dynamic token-queue schedule that hides them (Fig. 2b), and the
//!   hybrid prompt/generation micro-batch schedule (Fig. 3), all realized as
//!   task graphs on the discrete-event engine.
//! * [`offload`] — KV-cache offload to host memory with the odd/even layer
//!   scheduling that avoids PCIe contention between GPUs sharing a link
//!   (Sec. IV-C2/3).

pub mod mapping;
pub mod offload;
pub mod pipeline;
pub mod pp_exec;
pub mod tp;

pub use mapping::Mapping3D;
pub use pipeline::{PipelineSchedule, PipelineSpec};
pub use pp_exec::PipelinedModel;
pub use tp::{tp_layer_forward, TpLayer};
