//! 3D parallelism mapping: data × tensor × pipeline rank layout.
//!
//! The paper's systems combine parallelism modes (Sec. II-c: "3D parallelism
//! combines data, tensor, and pipeline parallelism"); serving replicates a
//! TP×PP engine `dp` ways for throughput. This module owns the rank
//! arithmetic — which global rank plays which (dp, pp, tp) coordinate, and
//! which ranks form each communication group — with the invariants
//! (partition, alignment to nodes) tested rather than assumed.
//!
//! Layout (rank-major, TP fastest): `rank = ((dp·PP) + pp)·TP + tp`, so a TP
//! group is `TP` consecutive ranks (inside a node, per the Sec. II guidance)
//! and a pipeline stage boundary is a stride-`TP` hop.

use serde::{Deserialize, Serialize};

/// A complete 3D mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping3D {
    /// Data-parallel replicas.
    pub dp: usize,
    /// Pipeline stages per replica.
    pub pp: usize,
    /// Tensor-parallel degree per stage.
    pub tp: usize,
}

/// A rank's coordinate in the 3D mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coord {
    pub dp: usize,
    pub pp: usize,
    pub tp: usize,
}

impl Mapping3D {
    pub fn new(dp: usize, pp: usize, tp: usize) -> Self {
        assert!(dp >= 1 && pp >= 1 && tp >= 1);
        Mapping3D { dp, pp, tp }
    }

    /// Total GPUs.
    pub fn world_size(&self) -> usize {
        self.dp * self.pp * self.tp
    }

    /// Global rank of a coordinate.
    pub fn rank(&self, c: Coord) -> usize {
        assert!(c.dp < self.dp && c.pp < self.pp && c.tp < self.tp);
        (c.dp * self.pp + c.pp) * self.tp + c.tp
    }

    /// Coordinate of a global rank.
    pub fn coord(&self, rank: usize) -> Coord {
        assert!(rank < self.world_size(), "rank {rank} out of range");
        Coord {
            tp: rank % self.tp,
            pp: (rank / self.tp) % self.pp,
            dp: rank / (self.tp * self.pp),
        }
    }

    /// The tensor-parallel group containing `rank` (consecutive ranks).
    pub fn tp_group(&self, rank: usize) -> Vec<usize> {
        let base = (rank / self.tp) * self.tp;
        (base..base + self.tp).collect()
    }

    /// The pipeline group containing `rank` (same dp and tp, all stages).
    pub fn pp_group(&self, rank: usize) -> Vec<usize> {
        let c = self.coord(rank);
        (0..self.pp)
            .map(|pp| self.rank(Coord { pp, ..c }))
            .collect()
    }

    /// The data-parallel group containing `rank` (same pp and tp, all
    /// replicas) — the group gradients would reduce over in training, and
    /// the replica set a load balancer spreads requests across in serving.
    pub fn dp_group(&self, rank: usize) -> Vec<usize> {
        let c = self.coord(rank);
        (0..self.dp)
            .map(|dp| self.rank(Coord { dp, ..c }))
            .collect()
    }

    /// Ranks of pipeline stage `pp` in replica `dp` (one TP group).
    pub fn stage_ranks(&self, dp: usize, pp: usize) -> Vec<usize> {
        (0..self.tp)
            .map(|tp| self.rank(Coord { dp, pp, tp }))
            .collect()
    }

    /// Does every TP group sit inside a node of `gpus_per_node` GPUs? The
    /// paper's placement requirement (Sec. II-c: tensor slicing needs the
    /// intra-node interconnect).
    pub fn tp_within_nodes(&self, gpus_per_node: usize) -> bool {
        if self.tp > gpus_per_node {
            return false;
        }
        (0..self.world_size()).step_by(self.tp).all(|base| {
            base / gpus_per_node == (base + self.tp - 1) / gpus_per_node
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn m() -> Mapping3D {
        Mapping3D::new(2, 2, 4) // 16 ranks
    }

    #[test]
    fn rank_coord_roundtrip() {
        let m = m();
        for rank in 0..m.world_size() {
            assert_eq!(m.rank(m.coord(rank)), rank);
        }
    }

    #[test]
    fn tp_groups_are_consecutive_and_partition() {
        let m = m();
        let mut seen = HashSet::new();
        for rank in (0..m.world_size()).step_by(m.tp) {
            let g = m.tp_group(rank);
            assert_eq!(g, (rank..rank + 4).collect::<Vec<_>>());
            for r in g {
                assert!(seen.insert(r), "rank {r} in two TP groups");
            }
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn groups_partition_world() {
        let m = m();
        for group_fn in [
            Mapping3D::tp_group as fn(&Mapping3D, usize) -> Vec<usize>,
            Mapping3D::pp_group,
            Mapping3D::dp_group,
        ] {
            let mut seen = HashSet::new();
            for rank in 0..m.world_size() {
                let g = group_fn(&m, rank);
                assert!(g.contains(&rank), "group must contain its member");
                // Each rank appears in exactly one group of each kind: check
                // by only inserting canonical (min-rank) groups.
                if *g.iter().min().unwrap() == rank {
                    for r in &g {
                        assert!(seen.insert(*r));
                    }
                }
            }
            assert_eq!(seen.len(), m.world_size());
        }
    }

    #[test]
    fn stage_ranks_match_coords() {
        let m = m();
        let s = m.stage_ranks(1, 0);
        for (tp, &rank) in s.iter().enumerate() {
            assert_eq!(m.coord(rank), Coord { dp: 1, pp: 0, tp });
        }
    }

    #[test]
    fn pipeline_neighbors_stride_tp() {
        let m = m();
        let g = m.pp_group(0);
        assert_eq!(g, vec![0, 4]);
        let g = m.pp_group(5);
        assert_eq!(g, vec![1, 5]);
    }

    #[test]
    fn node_alignment_rule() {
        assert!(Mapping3D::new(2, 2, 4).tp_within_nodes(8));
        assert!(Mapping3D::new(1, 1, 8).tp_within_nodes(8));
        assert!(!Mapping3D::new(1, 1, 16).tp_within_nodes(8));
        // tp=4 on 8-GPU nodes always aligns; tp=8 with pp=3 (24 ranks) too.
        assert!(Mapping3D::new(1, 3, 8).tp_within_nodes(8));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_rank_rejected() {
        m().coord(16);
    }
}
