//! KV-cache offload to host memory (Sec. IV-C2/3).
//!
//! The cached key/value activations of a sequence "will not be used again
//! until generating the next token", so they can live in host DRAM between
//! steps. Two things decide whether this is free:
//!
//! 1. **Overlap** — offload (D2H) and reload (H2D) of layer `l`'s KV can run
//!    on the copy engines while other layers compute.
//! 2. **Contention** — on nodes where two GPUs share one PCIe link, naive
//!    simultaneous offload halves each GPU's bandwidth. The paper's fix:
//!    "odd-numbered GPUs offload activations for odd-numbered layers, while
//!    even-numbered GPUs offload activation for even-numbered layers",
//!    de-synchronizing the pair so each sees the full link.
//!
//! We build the per-token task graph for a pair of PCIe-sharing GPUs and
//! measure the stall directly.

use dsi_sim::engine::{Resource, TaskGraph};
use serde::Serialize;

/// Parameters of one token-generation step on a pair of GPUs that share a
/// PCIe link.
#[derive(Debug, Clone, Serialize)]
pub struct OffloadSpec {
    /// Transformer layers per GPU (pipeline-stage slice).
    pub layers: usize,
    /// Compute time of one layer's token step.
    pub layer_compute: f64,
    /// KV bytes to move per layer per step (off + back on).
    pub kv_bytes_per_layer: f64,
    /// Full PCIe link bandwidth (bytes/s).
    pub pcie_bw: f64,
    /// Do the two GPUs share one PCIe link?
    pub shared_link: bool,
    /// Stagger offloads odd/even across the paired GPUs (Sec. IV-C3).
    pub odd_even_schedule: bool,
}

/// Result of simulating one generation step with offload.
#[derive(Debug, Clone, Serialize)]
pub struct OffloadResult {
    /// Step makespan across both GPUs.
    pub step_time: f64,
    /// Pure compute time (lower bound).
    pub compute_time: f64,
    /// Fraction of the step spent stalled on PCIe.
    pub stall_fraction: f64,
}

impl OffloadSpec {
    /// Which layers GPU `gpu` offloads this step. Under odd/even scheduling
    /// GPU parity picks layer parity; otherwise every layer offloads.
    fn offloads_layer(&self, gpu: usize, layer: usize) -> bool {
        if !self.odd_even_schedule {
            return true;
        }
        layer % 2 == gpu % 2
    }

    /// Effective PCIe bandwidth seen by `gpu` when offloading `layer`,
    /// given contention with its partner on a shared link.
    fn effective_bw(&self, gpu: usize, layer: usize) -> f64 {
        if !self.shared_link {
            return self.pcie_bw;
        }
        let partner = gpu ^ 1;
        if self.offloads_layer(partner, layer) {
            // Both GPUs move the same layer's KV at the same time: the
            // shared link splits.
            self.pcie_bw / 2.0
        } else {
            self.pcie_bw
        }
    }

    /// Build and simulate the step for two GPUs.
    pub fn run(&self) -> OffloadResult {
        let mut g = TaskGraph::new();
        for gpu in 0..2usize {
            let mut prev_compute = None;
            let mut prev_offload = None;
            for l in 0..self.layers {
                let mut deps = Vec::new();
                if let Some(p) = prev_compute {
                    deps.push(p);
                }
                // Layer compute waits for its KV to be resident: the reload
                // of this layer's KV must finish. We fold off+on into one
                // transfer of kv_bytes (the paper overlaps both directions on
                // separate engines; a single engine here is conservative).
                if self.offloads_layer(gpu, l) {
                    let bw = self.effective_bw(gpu, l);
                    let mut tdeps = Vec::new();
                    if let Some(p) = prev_offload {
                        tdeps.push(p);
                    }
                    let x = g.add(
                        format!("kv_xfer g{gpu} l{l}"),
                        Resource::CopyD2H(gpu),
                        self.kv_bytes_per_layer / bw,
                        &tdeps,
                    );
                    prev_offload = Some(x);
                    deps.push(x);
                }
                let c = g.add(
                    format!("compute g{gpu} l{l}"),
                    Resource::Compute(gpu),
                    self.layer_compute,
                    &deps,
                );
                prev_compute = Some(c);
            }
        }
        let sched = g.simulate();
        debug_assert!(sched.validate(&g).is_ok());
        let compute_time = self.layers as f64 * self.layer_compute;
        let step_time = sched.makespan;
        OffloadResult {
            step_time,
            compute_time,
            stall_fraction: ((step_time - compute_time) / step_time).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> OffloadSpec {
        OffloadSpec {
            layers: 24,
            layer_compute: 1.0e-3,
            // Sized so that full-bandwidth transfer just fits under compute
            // but half bandwidth does not.
            kv_bytes_per_layer: 20e6,
            pcie_bw: 25e9,
            shared_link: true,
            odd_even_schedule: false,
        }
    }

    #[test]
    fn odd_even_removes_contention_stall() {
        let naive = spec().run();
        let staggered = OffloadSpec {
            odd_even_schedule: true,
            ..spec()
        }
        .run();
        assert!(
            staggered.step_time < naive.step_time,
            "staggered {} naive {}",
            staggered.step_time,
            naive.step_time
        );
        assert!(staggered.stall_fraction < naive.stall_fraction);
    }

    #[test]
    fn dedicated_links_match_odd_even_benefit() {
        // With unshared links the naive schedule is already stall-free-ish;
        // odd/even brings the shared case close to it.
        let dedicated = OffloadSpec {
            shared_link: false,
            ..spec()
        }
        .run();
        let staggered = OffloadSpec {
            odd_even_schedule: true,
            ..spec()
        }
        .run();
        // Odd/even halves the per-GPU transfer count, so it can even beat
        // the dedicated-link naive schedule; allow generous slack.
        assert!(staggered.step_time <= dedicated.step_time * 1.05);
    }

    #[test]
    fn small_kv_fully_overlaps() {
        let r = OffloadSpec {
            kv_bytes_per_layer: 1e3,
            odd_even_schedule: true,
            ..spec()
        }
        .run();
        assert!(r.stall_fraction < 0.02, "stall {}", r.stall_fraction);
    }

    #[test]
    fn huge_kv_is_transfer_bound() {
        let s = OffloadSpec {
            kv_bytes_per_layer: 500e6,
            odd_even_schedule: true,
            ..spec()
        };
        let r = s.run();
        assert!(r.stall_fraction > 0.5, "stall {}", r.stall_fraction);
    }
}
