//! Inference-optimized pipeline parallelism (Sec. IV-B/C, Figs. 2–3).
//!
//! Autoregressive generation breaks the training pipeline assumption that
//! batches are independent: token `t+1` of a sequence cannot enter stage 0
//! until token `t` leaves the last stage. The paper contrasts:
//!
//! * the **training-style schedule** (Fig. 2a): all micro-batches of token
//!   `t` drain the pipeline before token `t+1` starts — a `P−1`-slot bubble
//!   per generated token;
//! * the **inference token-queue schedule** (Fig. 2b): each micro-batch's
//!   next token is queued the moment its previous token leaves the last
//!   stage, amortizing the bubble over the whole generation;
//! * **hybrid scheduling** (Fig. 3): prompt processing is compute-bound, so
//!   many small micro-batches shrink the pipeline-fill bubble; token
//!   generation is weight-fetch-bound, so per-stage time is independent of
//!   micro-batch size and the number of micro-batches should be the minimum
//!   that still fills the pipeline (= pipeline depth `P`).
//!
//! Schedules are materialized as task graphs and played on the
//! discrete-event engine, so bubbles are *observed*, not asserted.

use dsi_sim::engine::{Resource, TaskGraph, TaskId};
use serde::Serialize;

/// Which inter-token dependency policy to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PipelineSchedule {
    /// Fig. 2a: full pipeline drain between generated tokens.
    TrainingStyle,
    /// Fig. 2b: per-micro-batch token queueing (DeepSpeed Inference).
    InferenceQueue,
}

/// Timing parameters of a pipelined generation run.
///
/// ```
/// use dsi_parallel::pipeline::{PipelineSchedule, PipelineSpec};
/// let spec = PipelineSpec {
///     stages: 4,
///     prompt_microbatches: 4,
///     gen_microbatches: 4,
///     gen_tokens: 16,
///     stage_prompt_time_full: 40e-3,
///     stage_gen_time: 2e-3,
///     microbatch_overhead: 0.1e-3,
///     p2p_time: 0.05e-3,
/// };
/// let train = spec.run(PipelineSchedule::TrainingStyle);
/// let queue = spec.run(PipelineSchedule::InferenceQueue);
/// assert!(queue.total_latency < train.total_latency); // Fig. 2b beats 2a
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct PipelineSpec {
    /// Pipeline depth `P`.
    pub stages: usize,
    /// Micro-batches during prompt processing.
    pub prompt_microbatches: usize,
    /// Micro-batches during token generation (hybrid scheduling uses a
    /// smaller value here than for the prompt; Sec. IV-C1).
    pub gen_microbatches: usize,
    /// Tokens generated after the prompt pass (the prompt pass itself emits
    /// the first token).
    pub gen_tokens: usize,
    /// Compute time of the *entire batch's* prompt through one stage;
    /// divided across prompt micro-batches (prompt compute saturates the GPU,
    /// so it splits ~linearly).
    pub stage_prompt_time_full: f64,
    /// Token-generation time of one micro-batch through one stage. Memory
    /// bandwidth bound: independent of micro-batch size (Sec. IV-C1).
    pub stage_gen_time: f64,
    /// Fixed per-(micro-batch, stage) overhead — kernel launches and small
    /// batch inefficiency. This is what penalizes excessive micro-batching.
    pub microbatch_overhead: f64,
    /// Inter-stage activation transfer time.
    pub p2p_time: f64,
}

/// Observable results of simulating a pipeline schedule.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineResult {
    /// Time at which the last prompt micro-batch left the last stage (first
    /// token available).
    pub prompt_latency: f64,
    /// End-to-end time for prompt + all generated tokens.
    pub total_latency: f64,
    /// Average time per generated token after the prompt.
    pub per_token_latency: f64,
    /// Mean fraction of the active window each stage sat idle.
    pub bubble_fraction: f64,
}

impl PipelineSpec {
    /// Build the task graph for the chosen schedule. Returns the graph and
    /// the ids of the last-stage prompt tasks (prompt-completion markers).
    #[allow(clippy::needless_range_loop)] // indices name (micro-batch, stage) cells
    pub fn build(&self, schedule: PipelineSchedule) -> (TaskGraph, Vec<TaskId>) {
        assert!(self.stages >= 1 && self.prompt_microbatches >= 1 && self.gen_microbatches >= 1);
        let mut g = TaskGraph::new();
        let p = self.stages;
        let mp = self.prompt_microbatches;
        let mg = self.gen_microbatches;

        let prompt_task = self.stage_prompt_time_full / mp as f64 + self.microbatch_overhead;
        let gen_task = self.stage_gen_time + self.microbatch_overhead;

        // ---- Prompt phase ----
        // prompt[m][s] = compute task of micro-batch m at stage s.
        let mut prompt_last: Vec<TaskId> = Vec::with_capacity(mp);
        let mut prev_stage: Vec<Vec<TaskId>> = vec![Vec::new(); mp];
        for m in 0..mp {
            let mut dep: Option<TaskId> = None;
            for s in 0..p {
                let mut deps: Vec<TaskId> = Vec::new();
                if let Some(d) = dep {
                    // Activation hand-off across the stage boundary.
                    let c = g.add(
                        format!("prompt_p2p m{m} s{s}"),
                        Resource::Network(s - 1),
                        self.p2p_time,
                        &[d],
                    );
                    deps.push(c);
                }
                let t = g.add(
                    format!("prompt m{m} s{s}"),
                    Resource::Compute(s),
                    prompt_task,
                    &deps,
                );
                prev_stage[m].push(t);
                dep = Some(t);
            }
            prompt_last.push(dep.unwrap());
        }

        // ---- Generation phase ----
        // Re-batching barrier between phases: generation micro-batches are
        // regrouped from the prompt batch, so token 1 of every generation
        // micro-batch depends on the full prompt (hybrid scheduling changes
        // the micro-batch count across this boundary).
        let mut last_token_exit: Vec<TaskId> = vec![*prompt_last.last().unwrap(); mg];
        // For the training-style drain, track ALL last-stage exits of the
        // previous token.
        let mut prev_token_exits: Vec<TaskId> = prompt_last.clone();

        for t in 0..self.gen_tokens {
            let mut this_token_exits: Vec<TaskId> = Vec::with_capacity(mg);
            for m in 0..mg {
                let mut dep: Option<TaskId> = None;
                for s in 0..p {
                    let mut deps: Vec<TaskId> = Vec::new();
                    if s == 0 {
                        match schedule {
                            PipelineSchedule::TrainingStyle => {
                                // Token t starts only after token t-1 fully
                                // drained (all micro-batches).
                                deps.extend(prev_token_exits.iter().copied());
                            }
                            PipelineSchedule::InferenceQueue => {
                                // Only this micro-batch's own previous token
                                // gates it (the dynamic queue of Fig. 2b).
                                deps.push(last_token_exit[m]);
                            }
                        }
                    }
                    if let Some(d) = dep {
                        let c = g.add(
                            format!("gen_p2p t{t} m{m} s{s}"),
                            Resource::Network(s - 1),
                            self.p2p_time,
                            &[d],
                        );
                        deps.push(c);
                    }
                    let task = g.add(
                        format!("gen t{t} m{m} s{s}"),
                        Resource::Compute(s),
                        gen_task,
                        &deps,
                    );
                    dep = Some(task);
                }
                let exit = dep.unwrap();
                last_token_exit[m] = exit;
                this_token_exits.push(exit);
            }
            prev_token_exits = this_token_exits;
        }

        (g, prompt_last)
    }

    /// Simulate the schedule and extract latency/bubble metrics.
    pub fn run(&self, schedule: PipelineSchedule) -> PipelineResult {
        let (graph, prompt_last) = self.build(schedule);
        let sched = graph.simulate();
        debug_assert!(sched.validate(&graph).is_ok());
        let prompt_latency = prompt_last
            .iter()
            .map(|&t| sched.end[t])
            .fold(0.0f64, f64::max);
        let total = sched.makespan;
        let per_token = if self.gen_tokens > 0 {
            (total - prompt_latency) / self.gen_tokens as f64
        } else {
            0.0
        };
        let bubble: f64 = (0..self.stages)
            .map(|s| {
                let r = Resource::Compute(s);
                let span_busy = sched.busy_time(&graph, r);
                let span = span_busy + sched.bubble_time(&graph, r);
                if span > 0.0 {
                    1.0 - span_busy / span
                } else {
                    0.0
                }
            })
            .sum::<f64>()
            / self.stages as f64;
        PipelineResult {
            prompt_latency,
            total_latency: total,
            per_token_latency: per_token,
            bubble_fraction: bubble,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PipelineSpec {
        PipelineSpec {
            stages: 4,
            prompt_microbatches: 4,
            gen_microbatches: 4,
            gen_tokens: 16,
            stage_prompt_time_full: 40e-3,
            stage_gen_time: 2e-3,
            microbatch_overhead: 0.1e-3,
            p2p_time: 0.05e-3,
        }
    }

    #[test]
    fn inference_queue_beats_training_style() {
        let s = spec();
        let train = s.run(PipelineSchedule::TrainingStyle);
        let inf = s.run(PipelineSchedule::InferenceQueue);
        assert!(
            inf.total_latency < train.total_latency,
            "queue {} vs train {}",
            inf.total_latency,
            train.total_latency
        );
        assert!(inf.bubble_fraction < train.bubble_fraction);
    }

    #[test]
    fn training_style_bubble_grows_with_depth() {
        // Deeper pipelines pay a larger drain bubble per token.
        let mut s = spec();
        let b4 = s.run(PipelineSchedule::TrainingStyle).bubble_fraction;
        s.stages = 8;
        s.prompt_microbatches = 8;
        s.gen_microbatches = 8;
        let b8 = s.run(PipelineSchedule::TrainingStyle).bubble_fraction;
        assert!(b8 > b4, "b8 {b8} b4 {b4}");
    }

    #[test]
    fn queue_schedule_token_rate_is_microbatch_bound() {
        // Steady-state: each stage must process mg micro-batches per token,
        // so per-token latency ≈ mg * stage_gen_time (plus overheads).
        let s = spec();
        let r = s.run(PipelineSchedule::InferenceQueue);
        let lower = s.gen_microbatches as f64 * s.stage_gen_time;
        assert!(r.per_token_latency >= lower * 0.99);
        assert!(r.per_token_latency < lower * 1.6, "got {}", r.per_token_latency);
    }

    #[test]
    fn hybrid_reduces_generation_time() {
        // Same prompt micro-batching, fewer generation micro-batches:
        // generation gets faster (Fig. 3 bottom).
        let mut s = spec();
        s.prompt_microbatches = 16;
        s.gen_microbatches = 16;
        let uniform = s.run(PipelineSchedule::InferenceQueue);
        s.gen_microbatches = 4; // = pipeline depth
        let hybrid = s.run(PipelineSchedule::InferenceQueue);
        assert!(
            hybrid.per_token_latency < uniform.per_token_latency / 2.0,
            "hybrid {} uniform {}",
            hybrid.per_token_latency,
            uniform.per_token_latency
        );
        // Prompt latency unchanged (same prompt micro-batching).
        assert!((hybrid.prompt_latency - uniform.prompt_latency).abs() < 1e-9);
    }

    #[test]
    fn more_prompt_microbatches_cut_prompt_bubble() {
        // Prompt fill bubble ≈ (P-1) * per-micro-batch time; more
        // micro-batches shrink it as long as overhead stays small (Fig. 3 top).
        let mut s = spec();
        s.gen_tokens = 0;
        s.prompt_microbatches = 4;
        let coarse = s.run(PipelineSchedule::InferenceQueue).prompt_latency;
        s.prompt_microbatches = 16;
        let fine = s.run(PipelineSchedule::InferenceQueue).prompt_latency;
        assert!(fine < coarse, "fine {fine} coarse {coarse}");
    }

    #[test]
    fn excessive_microbatching_hurts_prompt() {
        // Past the sweet spot, per-micro-batch overhead dominates.
        let mut s = spec();
        s.gen_tokens = 0;
        s.microbatch_overhead = 1e-3;
        s.prompt_microbatches = 8;
        let mid = s.run(PipelineSchedule::InferenceQueue).prompt_latency;
        s.prompt_microbatches = 256;
        let excessive = s.run(PipelineSchedule::InferenceQueue).prompt_latency;
        assert!(excessive > mid, "excessive {excessive} mid {mid}");
    }

    #[test]
    fn single_stage_has_no_bubble() {
        let mut s = spec();
        s.stages = 1;
        s.prompt_microbatches = 1;
        s.gen_microbatches = 1;
        let r = s.run(PipelineSchedule::InferenceQueue);
        assert!(r.bubble_fraction < 1e-9);
    }

    #[test]
    fn schedules_agree_with_one_microbatch_one_token() {
        let mut s = spec();
        s.prompt_microbatches = 1;
        s.gen_microbatches = 1;
        s.gen_tokens = 1;
        let a = s.run(PipelineSchedule::TrainingStyle);
        let b = s.run(PipelineSchedule::InferenceQueue);
        assert!((a.total_latency - b.total_latency).abs() < 1e-12);
    }
}
