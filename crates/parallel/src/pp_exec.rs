//! Functional pipeline-parallel execution: run the reference model through
//! the *exact interleaved order* produced by the discrete-event pipeline
//! schedule, and verify the generated tokens match unpipelined generation.
//!
//! This closes the loop between the scheduling layer (Fig. 2/3 task graphs)
//! and the numerical layer: the schedule is not just costed, it is
//! *executed*. Each compute task of the simulated schedule triggers the
//! corresponding stage's layers on the corresponding micro-batch's
//! activations; if the schedule violated a data dependency, execution would
//! read a stale activation and the equivalence test would fail.

use crate::pipeline::{PipelineSchedule, PipelineSpec};
use dsi_kernels::ops;
use dsi_kernels::tensor::Tensor;
use dsi_model::reference::{layer_forward, GptModel, KvCache};

/// A reference model partitioned into `stages` contiguous layer groups.
pub struct PipelinedModel<'m> {
    pub model: &'m GptModel,
    /// `(start, end)` layer ranges per stage.
    pub stages: Vec<(usize, usize)>,
}

impl<'m> PipelinedModel<'m> {
    pub fn new(model: &'m GptModel, stages: usize) -> Self {
        let l = model.config.layers;
        assert!(stages >= 1 && l.is_multiple_of(stages), "layers must split evenly");
        let per = l / stages;
        PipelinedModel {
            model,
            stages: (0..stages).map(|s| (s * per, (s + 1) * per)).collect(),
        }
    }

    /// Run one stage's layers over `x`, updating the micro-batch's cache.
    fn stage_forward(&self, stage: usize, x: Tensor, cache: &mut KvCache) -> Tensor {
        let (lo, hi) = self.stages[stage];
        let mut x = x;
        for l in lo..hi {
            x = layer_forward(
                &self.model.layers[l],
                &x,
                &mut cache.layers[l],
                self.model.config.heads,
            );
        }
        x
    }

    /// Embed token ids at absolute positions starting at `offset`.
    fn embed(&self, ids: &[usize], offset: usize) -> Tensor {
        let mut x = ops::embedding(&self.model.wte, ids);
        for (i, row) in (offset..offset + ids.len()).enumerate() {
            let pos = self.model.wpe.row(row).to_vec();
            for (a, b) in x.row_mut(i).iter_mut().zip(pos) {
                *a += b;
            }
        }
        x
    }

    /// Final layer-norm + tied logits, greedy pick of the last row.
    fn head(&self, x: &Tensor) -> usize {
        let x = ops::layernorm(x, &self.model.lnf_g, &self.model.lnf_b, 1e-5);
        let logits = ops::matmul_transb(&x, &self.model.wte);
        ops::argmax_rows(&logits.row_slice(logits.rows() - 1, logits.rows()))[0]
    }

    /// Greedy generation of `gen_tokens` tokens for one prompt per
    /// micro-batch, executed in the simulated schedule's task order.
    ///
    /// Returns per-micro-batch generated tokens.
    pub fn generate_scheduled(
        &self,
        prompts: &[Vec<usize>],
        gen_tokens: usize,
        schedule: PipelineSchedule,
    ) -> Vec<Vec<usize>> {
        let p = self.stages.len();
        let m = prompts.len();
        assert!(m >= 1 && gen_tokens >= 1);

        // Build the same task graph the cost model uses (timings are
        // irrelevant for correctness; only the order matters).
        let spec = PipelineSpec {
            stages: p,
            prompt_microbatches: m,
            gen_microbatches: m,
            gen_tokens: gen_tokens - 1,
            stage_prompt_time_full: 1.0,
            stage_gen_time: 0.1,
            microbatch_overhead: 0.01,
            p2p_time: 0.001,
        };
        let (graph, _) = spec.build(schedule);
        let sched = graph.simulate();
        sched.validate(&graph).expect("schedule must be valid");

        // Execute compute tasks in realized start order.
        let mut order: Vec<usize> = (0..graph.len()).collect();
        order.sort_by(|&a, &b| {
            sched.start[a]
                .partial_cmp(&sched.start[b])
                .unwrap()
                .then(a.cmp(&b))
        });

        // Per-micro-batch state.
        let mut caches: Vec<KvCache> = (0..m)
            .map(|_| KvCache::new(self.model.config.layers, self.model.config.hidden))
            .collect();
        let mut activations: Vec<Option<Tensor>> = vec![None; m];
        let mut outputs: Vec<Vec<usize>> = vec![Vec::new(); m];

        for id in order {
            let task = graph.task(id);
            let label = &task.label;
            if label.contains("p2p") {
                continue; // pure transfer
            }
            // Labels: "prompt m{mb} s{stage}" / "gen t{t} m{mb} s{stage}".
            let parse = |key: char| -> usize {
                label
                    .split(|c: char| !c.is_ascii_alphanumeric())
                    .find_map(|tok| tok.strip_prefix(key))
                    .and_then(|v| v.parse().ok())
                    .expect("task label carries indices")
            };
            let mb = parse('m');
            let stage = parse('s');
            if label.starts_with("prompt") {
                if stage == 0 {
                    activations[mb] = Some(self.embed(&prompts[mb], 0));
                }
                let x = activations[mb].take().expect("stage input present");
                let y = self.stage_forward(stage, x, &mut caches[mb]);
                if stage == p - 1 {
                    let next = self.head(&y);
                    outputs[mb].push(next);
                    activations[mb] = None;
                } else {
                    activations[mb] = Some(y);
                }
            } else {
                // Generation pass for one token.
                if stage == 0 {
                    let last = *outputs[mb].last().expect("token from previous pass");
                    let offset = caches[mb].context_len();
                    activations[mb] = Some(self.embed(&[last], offset));
                }
                let x = activations[mb].take().expect("stage input present");
                let y = self.stage_forward(stage, x, &mut caches[mb]);
                if stage == p - 1 {
                    let next = self.head(&y);
                    outputs[mb].push(next);
                    activations[mb] = None;
                } else {
                    activations[mb] = Some(y);
                }
            }
        }
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_model::zoo;

    fn model() -> GptModel {
        GptModel::random(zoo::tiny(4), 17)
    }

    #[test]
    fn pipelined_generation_matches_reference_queue_schedule() {
        let m = model();
        let pm = PipelinedModel::new(&m, 2);
        let prompts = vec![vec![1, 2, 3], vec![4, 5], vec![6, 7, 8, 9]];
        let got = pm.generate_scheduled(&prompts, 5, PipelineSchedule::InferenceQueue);
        for (i, p) in prompts.iter().enumerate() {
            let want = m.generate(p, 5);
            assert_eq!(got[i], want, "micro-batch {i}");
        }
    }

    #[test]
    fn pipelined_generation_matches_reference_training_schedule() {
        let m = model();
        let pm = PipelinedModel::new(&m, 4);
        let prompts = vec![vec![10, 20], vec![30, 40]];
        let got = pm.generate_scheduled(&prompts, 4, PipelineSchedule::TrainingStyle);
        for (i, p) in prompts.iter().enumerate() {
            assert_eq!(got[i], m.generate(p, 4), "micro-batch {i}");
        }
    }

    #[test]
    fn single_stage_single_microbatch_degenerates() {
        let m = model();
        let pm = PipelinedModel::new(&m, 1);
        let got = pm.generate_scheduled(&[vec![7, 7, 7]], 3, PipelineSchedule::InferenceQueue);
        assert_eq!(got[0], m.generate(&[7, 7, 7], 3));
    }

    #[test]
    #[should_panic(expected = "evenly")]
    fn uneven_stage_split_rejected() {
        let m = model();
        PipelinedModel::new(&m, 3); // 4 layers / 3 stages
    }
}
