//! Fault-tolerant TP decoding: detection, retry, and graceful degradation.
//!
//! The paper's scale story (Sec. VII: up to 256 GPUs for the MT-530B runs)
//! makes fault handling a first-class part of the serving system: at that
//! rank count a stalled peer or crashed worker is routine, and the
//! difference between a production system and a benchmark harness is what
//! happens *next*. [`FtSession`] wraps the executed TP engine
//! ([`TpSession`]) with the supervisor loop the issue specifies:
//!
//! * **Detection** — every collective is bounded (timeout + arrival
//!   heartbeats in `dsi-sim::shmem`), so a fault surfaces as a typed
//!   [`CollectiveError`] or a caught panic, never a hang. The supervisor
//!   additionally catches rank 0's own unwind, so a driver-side fault is
//!   handled symmetrically with a worker-side one.
//! * **Classification** — faults where a rank's *memory* is gone (panic,
//!   scripted crash, wedged-and-detached thread) are **permanent**: the
//!   group cannot be rebuilt at the same width. Faults where every rank
//!   survived with intact state (timeout from a transient stall, poison
//!   propagation, a corrupt chunk caught by checksum) are **transient**:
//!   the same degree is retried after an exponential backoff.
//! * **Degradation** — on permanent loss the supervisor re-shards the model
//!   to the largest feasible TP degree not exceeding the survivor count
//!   (`tp | heads` must hold; degree 1 — the single-rank fast path — is the
//!   floor, so decoding can always continue).
//! * **KV salvage** — surviving ranks' KV shards are column shards of the
//!   full cache (head-contiguous, rank `r` owns columns
//!   `[r·h/tp, (r+1)·h/tp)`), so when *every* shard survives, the committed
//!   prefix is re-sliced to the new partition without recomputing anything
//!   ([`repack_kv`]). If any shard is lost the full cache is rebuilt by
//!   re-prefilling the token history — more compute, same result.
//! * **Token identity** — KV rows are bit-identical whether produced in a
//!   prompt batch or stepwise, and column shards of the panel GEMMs are
//!   bit-identical per column (the PR-3 property suite), so replay after a
//!   rebuild reproduces exactly the state an uninterrupted run would have
//!   had: decoding resumes **token-identically**, which the chaos harness
//!   asserts for every fault kind × injection site.
//!
//! Determinism is preserved end to end: the fault script is seed-driven and
//! fire-once (a rebuilt group replaying the same epochs does not re-trip a
//!  consumed fault), greedy argmax is deterministic, and the supervisor
//! never samples from replayed logits — only from fresh steps.
//!
//! [`CollectiveError`]: dsi_sim::CollectiveError

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dsi_model::fast::argmax;
use dsi_model::reference::{GptModel, KvCache};
use dsi_sim::clock::{CancelToken, Clock};
use dsi_sim::shmem::CommConfig;
use dsi_sim::CollectiveErrorKind;
use serde::Serialize;

use crate::tp_exec::{
    panic_payload_to_string, RankFailureCause, TpPackedModel, TpSession,
};

/// Terminal failure of a fault-tolerant decode: retries and degradation
/// could not produce a working group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// The retry budget ran out; `last` describes the final fault.
    RetriesExhausted { attempts: u32, last: String },
    /// No feasible group remains (e.g. every rank's memory was lost and the
    /// model cannot be resharded).
    Unrecoverable(String),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts (last fault: {last})")
            }
            FaultError::Unrecoverable(s) => write!(f, "unrecoverable fault: {s}"),
        }
    }
}

impl std::error::Error for FaultError {}

/// Per-step control surface for bounded generation: cancellation,
/// deadline, and a progress heartbeat. All fields are optional — the
/// default [`StepCtl::NONE`] imposes nothing, so the unbounded surface
/// ([`FtSession::generate`]) pays one branch per check site.
///
/// Checks happen **between** decode steps and between fault-recovery
/// attempts, so the latency from `cancel()` (or a deadline passing) to the
/// engine yielding is bounded by one step plus one collective
/// timeout/backoff — never a hang, and never a torn step: an aborted
/// session's committed history is exactly the emitted tokens.
pub struct StepCtl<'a> {
    /// Cooperative cancellation (watchdog, drain, impatient client).
    pub cancel: Option<&'a CancelToken>,
    /// Clock the deadline is measured against.
    pub clock: Option<&'a Clock>,
    /// Absolute deadline in `clock` nanoseconds; checked only when `clock`
    /// is present.
    pub deadline_ns: Option<u64>,
    /// Progress heartbeat: stamped with `clock.now_ns()` after every
    /// emitted token, so a watchdog can distinguish "slow" from "wedged".
    pub progress_ns: Option<&'a AtomicU64>,
}

impl StepCtl<'_> {
    /// The no-op control: never cancels, no deadline, no heartbeat.
    pub const NONE: StepCtl<'static> =
        StepCtl { cancel: None, clock: None, deadline_ns: None, progress_ns: None };

    /// Which abort (if any) applies right now. Cancellation outranks the
    /// deadline so a watchdog-cancelled request reports *why* it died even
    /// when its deadline has also lapsed.
    fn verdict(&self) -> Option<StepAbort> {
        if self.cancel.is_some_and(|c| c.is_cancelled()) {
            return Some(StepAbort::Cancelled);
        }
        if let (Some(clock), Some(deadline)) = (self.clock, self.deadline_ns) {
            if clock.now_ns() >= deadline {
                return Some(StepAbort::DeadlineExceeded);
            }
        }
        None
    }

    /// Stamp the progress heartbeat (if armed).
    fn tick(&self) {
        if let (Some(p), Some(clock)) = (self.progress_ns, self.clock) {
            p.store(clock.now_ns(), Ordering::Release);
        }
    }
}

/// Why a bounded step stopped without producing a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepAbort {
    /// The [`CancelToken`] was set.
    Cancelled,
    /// The absolute deadline passed.
    DeadlineExceeded,
}

/// Failure of one bounded step: either a control-plane abort (the session
/// stays healthy and *resumable* — the pending token is preserved) or a
/// terminal fault (retries/degradation exhausted; reset before reuse).
#[derive(Debug)]
pub enum StepError {
    Aborted(StepAbort),
    Fault(FaultError),
}

impl std::fmt::Display for StepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepError::Aborted(StepAbort::Cancelled) => write!(f, "cancelled"),
            StepError::Aborted(StepAbort::DeadlineExceeded) => write!(f, "deadline exceeded"),
            StepError::Fault(e) => write!(f, "{e}"),
        }
    }
}

/// How a bounded generation ended early. `partial` is the exact prefix of
/// tokens emitted before the abort — bit-identical to the same prefix of an
/// unbounded run (the chaos and property suites assert this).
#[derive(Debug)]
pub struct GenError {
    pub abort: StepError,
    pub partial: Vec<usize>,
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "generation stopped after {} token(s): {}", self.partial.len(), self.abort)
    }
}

impl std::error::Error for GenError {}

/// Bounded retry-with-backoff policy for transient faults. The backoff
/// doubles per attempt (capped at 64× the base), so a brief stall storm is
/// ridden out without hammering the rebuild path.
#[derive(Debug, Clone, Serialize)]
pub struct RetryPolicy {
    /// Total fault-recovery attempts (transient retries *and* degradations)
    /// allowed per step before giving up.
    pub max_retries: u32,
    /// Base backoff before a transient retry, in milliseconds.
    pub backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 8, backoff_ms: 5 }
    }
}

/// Configuration of a fault-tolerant session.
#[derive(Debug, Clone)]
pub struct FtConfig {
    /// Initial TP degree.
    pub tp: usize,
    /// Collective configuration (timeout, checksums, fault injection)
    /// applied to every group this session builds.
    pub comm: CommConfig,
    pub retry: RetryPolicy,
}

impl FtConfig {
    pub fn new(tp: usize) -> Self {
        FtConfig { tp, comm: CommConfig::default(), retry: RetryPolicy::default() }
    }
}

/// What the supervisor did to keep decoding alive — the chaos harness's
/// and `bench_fault`'s observability surface.
#[derive(Debug, Clone, Default, Serialize)]
pub struct FtReport {
    /// Transient faults retried at the same degree.
    pub retries: u32,
    /// Groups (re)built after a fault (excludes the initial group).
    pub rebuilds: u32,
    /// Degradations as `(from_tp, to_tp)` pairs, in order.
    pub degradations: Vec<(usize, usize)>,
    /// Human-readable description of every fault observed.
    pub faults: Vec<String>,
    /// KV rows salvaged across all rebuilds (rows that did not need
    /// re-prefilling).
    pub rows_salvaged: usize,
    /// KV rows re-prefilled across all rebuilds.
    pub rows_replayed: usize,
}

/// How a supervised step failed: a typed collective error from any rank, or
/// rank 0's own panic (caught by the supervisor's unwind guard).
#[derive(Debug)]
enum StepFailure {
    Collective(dsi_sim::CollectiveError),
    Rank0Panic(String),
}

impl std::fmt::Display for StepFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepFailure::Collective(e) => write!(f, "{e}"),
            StepFailure::Rank0Panic(p) => write!(f, "rank 0 panicked: {p}"),
        }
    }
}

/// Unwrap a [`StepError`] produced under [`StepCtl::NONE`], where aborts
/// are impossible by construction.
fn unwrap_fault(e: StepError) -> FaultError {
    match e {
        StepError::Fault(f) => f,
        StepError::Aborted(_) => unreachable!("StepCtl::NONE never aborts"),
    }
}

/// The largest TP degree `d ≤ survivors` with `heads.is_multiple_of(*d)` (degree 1 is
/// always feasible — the single-rank fast-path fallback).
fn degrade_tp(heads: usize, survivors: usize) -> usize {
    (1..=survivors.min(heads)).rev().find(|d| heads.is_multiple_of(*d)).unwrap_or(1)
}

/// Re-slice salvaged per-rank KV shards (old column partition) into
/// `new_tp` shards, keeping only the first `committed` rows per layer.
///
/// Returns `None` when any shard is missing — some columns of the cache are
/// then unrecoverable and the caller must re-prefill from token history.
/// Rows beyond `committed` (partial appends from the failing step) are
/// dropped: the failed step is re-run, and keeping its partial rows would
/// double-append them.
pub fn repack_kv(
    salvaged: &[Option<KvCache>],
    committed: usize,
    hidden: usize,
    layers: usize,
    max_seq: usize,
    new_tp: usize,
) -> Option<(Vec<KvCache>, usize)> {
    let old_tp = salvaged.len();
    let shards: Vec<&KvCache> = salvaged.iter().map(|s| s.as_ref()).collect::<Option<_>>()?;
    let hs_old = hidden / old_tp;
    let hs_new = hidden / new_tp;
    // Rows present in *every* layer of *every* shard, capped at committed.
    let mut rows = committed;
    for kv in &shards {
        for l in &kv.layers {
            rows = rows.min(l.len());
        }
    }
    let mut out: Vec<KvCache> =
        (0..new_tp).map(|_| KvCache::with_capacity(layers, hs_new, max_seq)).collect();
    let mut kfull = vec![0.0f32; hidden];
    let mut vfull = vec![0.0f32; hidden];
    for l in 0..layers {
        for i in 0..rows {
            for (o, kv) in shards.iter().enumerate() {
                kfull[o * hs_old..(o + 1) * hs_old].copy_from_slice(kv.layers[l].k.row(i));
                vfull[o * hs_old..(o + 1) * hs_old].copy_from_slice(kv.layers[l].v.row(i));
            }
            for (r, nkv) in out.iter_mut().enumerate() {
                nkv.layers[l].append_row_slices(
                    &kfull[r * hs_new..(r + 1) * hs_new],
                    &vfull[r * hs_new..(r + 1) * hs_new],
                );
            }
        }
    }
    Some((out, rows))
}

/// A fault-tolerant greedy-decode session: the supervisor of the issue's
/// tentpole. Drives [`TpSession`] groups, detects faults (typed collective
/// errors, caught panics, wedged threads), retries transient ones with
/// backoff, degrades the TP degree on permanent rank loss (salvaging the
/// surviving KV shards), and resumes decoding token-identically.
pub struct FtSession {
    model: Arc<GptModel>,
    packed: Arc<TpPackedModel>,
    cfg: FtConfig,
    tp: usize,
    base_max_prompt: usize,
    sess: Option<TpSession>,
    /// KV shards (in the *current* partition) to seed the next group with.
    pending_kv: Option<Vec<KvCache>>,
    /// Committed fed tokens: the i-th entry occupies KV row i of every
    /// group this session ever builds.
    history: Vec<usize>,
    /// Token emitted by the last step that has not been fed yet (fed lazily
    /// at the start of the next step). Preserved across control-plane
    /// aborts, so a cancelled generation can resume token-identically.
    to_feed: Option<usize>,
    report: FtReport,
}

impl FtSession {
    pub fn new(model: Arc<GptModel>, max_prompt: usize, cfg: FtConfig) -> Self {
        let packed = Arc::new(TpPackedModel::shard(&model, cfg.tp));
        FtSession {
            tp: cfg.tp,
            model,
            packed,
            cfg,
            base_max_prompt: max_prompt.max(1),
            sess: None,
            pending_kv: None,
            history: Vec::new(),
            to_feed: None,
            report: FtReport::default(),
        }
    }

    /// Current TP degree (shrinks on degradation).
    pub fn tp(&self) -> usize {
        self.tp
    }

    /// Committed context length (tokens fed through completed steps).
    pub fn context_len(&self) -> usize {
        self.history.len()
    }

    pub fn report(&self) -> &FtReport {
        &self.report
    }

    /// Greedy generation with the [`TpSession::generate`] semantics, but
    /// fault-tolerant: any fault is detected, classified, and survived
    /// (retry or degrade) or reported typed — never a hang, never a panic
    /// for scripted faults. Implemented on the step-wise surface, so it is
    /// token-identical to `begin` + `n_tokens × generate_step` by
    /// construction.
    pub fn generate(&mut self, prompt: &[usize], n_tokens: usize) -> Result<Vec<usize>, FaultError> {
        self.generate_bounded(prompt, n_tokens, &StepCtl::NONE).map_err(|e| match e.abort {
            StepError::Fault(f) => f,
            StepError::Aborted(_) => unreachable!("StepCtl::NONE never aborts"),
        })
    }

    /// Ingest `prompt` as a committed step and arm step-wise generation.
    pub fn begin(&mut self, prompt: &[usize]) -> Result<(), FaultError> {
        self.begin_ctl(prompt, &StepCtl::NONE).map_err(unwrap_fault)
    }

    /// [`FtSession::begin`] under a [`StepCtl`]: the prompt step itself can
    /// be cancelled or deadline out (before any compute — the checks run at
    /// the top of every recovery attempt).
    pub fn begin_ctl(&mut self, prompt: &[usize], ctl: &StepCtl) -> Result<(), StepError> {
        assert!(!prompt.is_empty(), "empty prompt");
        self.to_feed = None;
        self.step_committed(prompt, ctl)
    }

    /// Emit the next greedy token (fault-tolerantly). See
    /// [`FtSession::generate_step_ctl`] for the bounded variant.
    pub fn generate_step(&mut self) -> Result<usize, FaultError> {
        self.generate_step_ctl(&StepCtl::NONE).map_err(unwrap_fault)
    }

    /// Emit the next greedy token under a [`StepCtl`]. On a control-plane
    /// abort ([`StepError::Aborted`]) the session stays healthy and the
    /// pending token is preserved: a later `generate_step_ctl` resumes
    /// token-identically. On [`StepError::Fault`] the session must be
    /// [`FtSession::reset`] (or re-prompted via `begin`) before reuse.
    pub fn generate_step_ctl(&mut self, ctl: &StepCtl) -> Result<usize, StepError> {
        // Check before the free argmax path too: a step after `begin` feeds
        // nothing, and a cancelled request must not emit through it.
        if let Some(abort) = ctl.verdict() {
            return Err(StepError::Aborted(abort));
        }
        if let Some(t) = self.to_feed {
            self.step_committed(&[t], ctl)?;
            self.to_feed = None;
        }
        let tok = argmax(self.sess.as_ref().expect("live session").last_logits());
        self.to_feed = Some(tok);
        Ok(tok)
    }

    /// Bounded greedy generation: `begin_ctl` + `n_tokens` steps, stopping
    /// early on cancellation, deadline, or a terminal fault. The error
    /// carries the exact prefix of tokens emitted before the stop, so a
    /// serving layer can return partial output with a typed reason.
    pub fn generate_bounded(
        &mut self,
        prompt: &[usize],
        n_tokens: usize,
        ctl: &StepCtl,
    ) -> Result<Vec<usize>, GenError> {
        if let Err(abort) = self.begin_ctl(prompt, ctl) {
            return Err(GenError { abort, partial: Vec::new() });
        }
        ctl.tick();
        let mut out = Vec::with_capacity(n_tokens);
        for _ in 0..n_tokens {
            match self.generate_step_ctl(ctl) {
                Ok(tok) => {
                    out.push(tok);
                    ctl.tick();
                }
                Err(abort) => return Err(GenError { abort, partial: out }),
            }
        }
        Ok(out)
    }

    /// Drop all request state — context history, pending KV, the live group
    /// — routing teardown through [`TpSession::dismantle`] (bounded joins,
    /// salvage discarded). The session is then ready for an unrelated
    /// prompt at the current (possibly degraded) TP degree; the serving
    /// runtime calls this between requests and after watchdog
    /// cancellations.
    pub fn reset(&mut self) {
        if let Some(sess) = self.sess.take() {
            let _ = sess.dismantle();
        }
        self.pending_kv = None;
        self.history.clear();
        self.to_feed = None;
    }

    /// Shut the current group down cleanly (if any), salvaging its KV for a
    /// potential later `generate` on the same context.
    pub fn park(&mut self) {
        if let Some(sess) = self.sess.take() {
            let d = sess.dismantle();
            if let Some((kv, rows)) = repack_kv(
                &d.kv,
                self.history.len(),
                self.model.config.hidden,
                self.model.config.layers,
                self.model.config.max_seq,
                self.tp,
            ) {
                if rows == self.history.len() {
                    self.pending_kv = Some(kv);
                }
            }
        }
    }

    /// Feed `tokens` as one committed step, surviving faults. On success the
    /// session's `last_logits()` covers the final fed position. The control
    /// surface is checked at the top of every attempt (first try *and* each
    /// retry/degrade), so a watchdog can break a stall-storm recovery loop
    /// without waiting out the whole retry budget.
    fn step_committed(&mut self, tokens: &[usize], ctl: &StepCtl) -> Result<(), StepError> {
        let mut attempt = 0u32;
        loop {
            if let Some(abort) = ctl.verdict() {
                return Err(StepError::Aborted(abort));
            }
            if self.sess.is_none() {
                self.build_session(tokens.len());
            }
            // Replay any committed suffix the salvage could not cover. The
            // replayed logits are never sampled — the next tokens are known —
            // so replay only has to rebuild KV state, which it does
            // bit-identically (batched and stepwise KV rows agree exactly).
            let ctx = self.sess.as_ref().expect("live session").context_len();
            if ctx < self.history.len() {
                let replay = self.history[ctx..].to_vec();
                self.report.rows_replayed += replay.len();
                match self.catch_step(&replay) {
                    Ok(()) => {}
                    Err(failure) => {
                        self.handle_fault(failure, &mut attempt).map_err(StepError::Fault)?;
                        continue;
                    }
                }
            }
            match self.catch_step(tokens) {
                Ok(()) => {
                    self.history.extend_from_slice(tokens);
                    return Ok(());
                }
                Err(failure) => {
                    self.handle_fault(failure, &mut attempt).map_err(StepError::Fault)?
                }
            }
        }
    }

    /// Build a fresh group at the current degree, seeded with whatever KV
    /// the last salvage produced.
    fn build_session(&mut self, step_len: usize) {
        let seeded = self.pending_kv.take();
        let have = seeded.as_ref().map_or(0, |v| v[0].context_len());
        self.report.rows_salvaged += have;
        let max_prompt = self
            .base_max_prompt
            .max(self.history.len().saturating_sub(have))
            .max(step_len);
        self.sess =
            Some(self.packed.session_with(max_prompt, self.cfg.comm.clone(), seeded));
    }

    /// Run one step on the live group, converting rank 0's own unwind into
    /// a typed failure (scripted panics can target rank 0 too).
    fn catch_step(&mut self, tokens: &[usize]) -> Result<(), StepFailure> {
        let sess = self.sess.as_mut().expect("live session");
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if tokens.len() == 1 && sess.context_len() > 0 {
                sess.try_decode(tokens[0])
            } else {
                sess.try_prompt(tokens)
            }
        }));
        match res {
            Ok(Ok(())) => Ok(()),
            Ok(Err(e)) => Err(StepFailure::Collective(e)),
            Err(payload) => {
                // The unwind tore through the step: mark rank 0's memory
                // untrustworthy so dismantle does not salvage it.
                self.sess.as_mut().expect("live session").note_rank0_panic();
                Err(StepFailure::Rank0Panic(panic_payload_to_string(payload)))
            }
        }
    }

    /// Dismantle the failed group, classify the fault, and prepare the next
    /// attempt: backoff-retry at the same degree for transient faults,
    /// degrade to fewer ranks for permanent ones.
    fn handle_fault(&mut self, failure: StepFailure, attempt: &mut u32) -> Result<(), FaultError> {
        let sess = self.sess.take().expect("failed session");
        let old_tp = self.tp;
        let d = sess.dismantle();
        self.report.faults.push(format!("tp={old_tp}: {failure}"));

        // Permanent = some rank's memory is gone: a caught panic, a scripted
        // crash (InjectedExit), or a thread wedged past the join deadline.
        let mut lost = vec![false; old_tp];
        if let StepFailure::Rank0Panic(_) = &failure {
            lost[0] = true;
        }
        for f in &d.failures {
            self.report.faults.push(format!("tp={old_tp} rank {}: {}", f.rank, f.cause));
            match &f.cause {
                RankFailureCause::Panicked(_) | RankFailureCause::Unjoined => {
                    lost[f.rank] = true;
                }
                RankFailureCause::Collective(e)
                    if e.kind == CollectiveErrorKind::InjectedExit =>
                {
                    lost[f.rank] = true;
                }
                RankFailureCause::Collective(_) => {}
            }
        }

        *attempt += 1;
        if *attempt > self.cfg.retry.max_retries {
            return Err(FaultError::RetriesExhausted {
                attempts: *attempt,
                last: failure.to_string(),
            });
        }

        let survivors = old_tp - lost.iter().filter(|&&l| l).count();
        if lost.iter().any(|&l| l) {
            // Permanent: degrade to the widest feasible surviving degree.
            if survivors == 0 && old_tp == 1 {
                return Err(FaultError::Unrecoverable(format!(
                    "the last rank was lost at tp=1 ({failure})"
                )));
            }
            let new_tp = degrade_tp(self.model.config.heads, survivors.max(1));
            self.report.degradations.push((old_tp, new_tp));
            self.pending_kv = repack_kv(
                &d.kv,
                self.history.len(),
                self.model.config.hidden,
                self.model.config.layers,
                self.model.config.max_seq,
                new_tp,
            )
            .map(|(kv, _)| kv);
            self.tp = new_tp;
            self.packed = Arc::new(TpPackedModel::shard(&self.model, new_tp));
        } else {
            // Transient: every rank survived with intact memory — retry the
            // same degree after a doubling backoff.
            self.report.retries += 1;
            let shift = (*attempt - 1).min(6);
            std::thread::sleep(Duration::from_millis(self.cfg.retry.backoff_ms << shift));
            self.pending_kv = repack_kv(
                &d.kv,
                self.history.len(),
                self.model.config.hidden,
                self.model.config.layers,
                self.model.config.max_seq,
                old_tp,
            )
            .map(|(kv, _)| kv);
        }
        self.report.rebuilds += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_model::zoo;
    use dsi_sim::fault::{FaultKind, FaultPlan, FaultSite, FaultSpec};
    use dsi_sim::shmem::CommConfig;

    fn model(layers: usize, seed: u64) -> Arc<GptModel> {
        Arc::new(GptModel::random(zoo::tiny(layers), seed))
    }

    fn fault_cfg(tp: usize, plan: FaultPlan, checksum: bool) -> FtConfig {
        FtConfig {
            tp,
            comm: CommConfig {
                timeout: Duration::from_millis(300),
                checksum,
                injector: Some(Arc::new(plan.injector())),
            },
            retry: RetryPolicy { max_retries: 8, backoff_ms: 1 },
        }
    }

    fn baseline(m: &Arc<GptModel>, prompt: &[usize], n: usize) -> Vec<usize> {
        let tpm = Arc::new(TpPackedModel::shard(m, 1));
        tpm.session(prompt.len()).generate(prompt, n)
    }

    #[test]
    fn degrade_tp_picks_widest_divisor() {
        assert_eq!(degrade_tp(4, 3), 2);
        assert_eq!(degrade_tp(4, 4), 4);
        assert_eq!(degrade_tp(4, 1), 1);
        assert_eq!(degrade_tp(6, 5), 3);
        assert_eq!(degrade_tp(8, 7), 4);
    }

    #[test]
    fn fault_free_supervised_run_matches_baseline() {
        let m = model(2, 31);
        let want = baseline(&m, &[1, 2, 3], 6);
        let mut ft = FtSession::new(Arc::clone(&m), 4, FtConfig::new(2));
        let got = ft.generate(&[1, 2, 3], 6).expect("no faults");
        assert_eq!(got, want);
        assert_eq!(ft.report().rebuilds, 0);
        assert_eq!(ft.tp(), 2);
    }

    #[test]
    fn worker_crash_degrades_and_resumes_token_identically() {
        // Rank 1 crashes (drops its arrival) during decode: the supervisor
        // must detect the timeout, degrade 2 → 1, re-prefill (rank 1's KV
        // columns are gone), and produce the exact baseline tokens.
        let m = model(2, 37);
        let want = baseline(&m, &[1, 2, 3], 6);
        let plan = FaultPlan::new(vec![FaultSpec {
            rank: 1,
            site: FaultSite::Barrier { epoch: 9 },
            kind: FaultKind::Exit,
        }]);
        let mut ft = FtSession::new(Arc::clone(&m), 4, fault_cfg(2, plan, false));
        let got = ft.generate(&[1, 2, 3], 6).expect("must survive");
        assert_eq!(got, want);
        assert_eq!(ft.tp(), 1, "group must have degraded");
        assert_eq!(ft.report().degradations, vec![(2, 1)]);
    }

    #[test]
    fn transient_stall_retries_at_same_degree() {
        // A stall longer than the collective timeout: detected as a timeout,
        // classified transient (the stalled rank is alive and salvaged), and
        // retried at the same degree.
        let m = model(2, 41);
        let want = baseline(&m, &[2, 7], 5);
        let plan = FaultPlan::new(vec![FaultSpec {
            rank: 1,
            site: FaultSite::Barrier { epoch: 5 },
            kind: FaultKind::Stall { millis: 1500 },
        }]);
        let mut ft = FtSession::new(Arc::clone(&m), 4, fault_cfg(2, plan, false));
        let got = ft.generate(&[2, 7], 5).expect("must survive");
        assert_eq!(got, want);
        assert_eq!(ft.tp(), 2, "transient faults must not degrade");
        assert!(ft.report().retries >= 1, "{:?}", ft.report());
    }

    #[test]
    fn corrupt_chunk_is_caught_and_retried() {
        let m = model(2, 43);
        let want = baseline(&m, &[5, 6], 5);
        let plan = FaultPlan::new(vec![FaultSpec {
            rank: 1,
            site: FaultSite::Reduce { epoch: 1 },
            kind: FaultKind::Corrupt,
        }]);
        let mut ft = FtSession::new(Arc::clone(&m), 4, fault_cfg(2, plan, true));
        let got = ft.generate(&[5, 6], 5).expect("must survive");
        assert_eq!(got, want);
        assert_eq!(ft.tp(), 2);
        assert!(
            ft.report().faults.iter().any(|f| f.contains("corrupt")),
            "{:?}",
            ft.report().faults
        );
    }

    #[test]
    fn rank0_panic_is_survived_via_degradation() {
        let m = model(2, 47);
        let want = baseline(&m, &[4, 2], 5);
        let plan = FaultPlan::new(vec![FaultSpec {
            rank: 0,
            site: FaultSite::Layer { token: 3, layer: 1 },
            kind: FaultKind::Panic,
        }]);
        let mut ft = FtSession::new(Arc::clone(&m), 4, fault_cfg(2, plan, false));
        let got = ft.generate(&[4, 2], 5).expect("must survive");
        assert_eq!(got, want);
        assert_eq!(ft.tp(), 1);
    }

    #[test]
    fn multiple_faults_across_one_decode_are_all_survived() {
        // A transient stall *and* a later permanent crash in one run.
        let m = model(2, 53);
        let want = baseline(&m, &[1, 2, 3, 4], 8);
        let plan = FaultPlan::new(vec![
            FaultSpec {
                rank: 0,
                site: FaultSite::Barrier { epoch: 3 },
                kind: FaultKind::Stall { millis: 1500 },
            },
            FaultSpec {
                rank: 1,
                site: FaultSite::Layer { token: 6, layer: 0 },
                kind: FaultKind::Exit,
            },
        ]);
        let mut ft = FtSession::new(Arc::clone(&m), 4, fault_cfg(2, plan, false));
        let got = ft.generate(&[1, 2, 3, 4], 8).expect("must survive");
        assert_eq!(got, want);
        assert_eq!(ft.tp(), 1);
        assert!(ft.report().rebuilds >= 2, "{:?}", ft.report());
    }

    #[test]
    fn retry_budget_exhaustion_is_a_typed_error() {
        // A zero-retry budget with a scripted stall storm: the supervisor
        // must give up with RetriesExhausted, not hang or panic. (The stall
        // is much longer than the timeout so the fault fires regardless of
        // scheduler noise.)
        let m = model(1, 59);
        let specs: Vec<FaultSpec> = (0..2)
            .map(|e| FaultSpec {
                rank: 1,
                site: FaultSite::Barrier { epoch: e },
                kind: FaultKind::Stall { millis: 800 },
            })
            .collect();
        let mut cfg = fault_cfg(2, FaultPlan::new(specs), false);
        cfg.comm.timeout = Duration::from_millis(100);
        cfg.retry = RetryPolicy { max_retries: 0, backoff_ms: 1 };
        let mut ft = FtSession::new(m, 4, cfg);
        let err = ft.generate(&[1, 2], 4).expect_err("budget must run out");
        assert!(matches!(err, FaultError::RetriesExhausted { attempts: 1, .. }), "{err}");
    }

    #[test]
    fn same_degree_repack_is_the_identity_on_committed_rows() {
        // Repacking salvaged shards at the same degree must reproduce the
        // old group's KV bits exactly (truncated to the committed prefix) —
        // this is what transient-fault retries rely on.
        let m = model(2, 61);
        let tpm4 = Arc::new(TpPackedModel::shard(&m, 4));
        let mut s4 = tpm4.session(3);
        let out4 = s4.generate(&[1, 2, 3], 3);
        let committed = 3 + out4.len() - 1;
        let d4 = s4.dismantle();
        let c = &m.config;
        let (same, rows) =
            repack_kv(&d4.kv, committed, c.hidden, c.layers, c.max_seq, 4).expect("all salvaged");
        assert_eq!(rows, committed);
        for (r, packed) in same.iter().enumerate() {
            let old = d4.kv[r].as_ref().unwrap();
            for l in 0..c.layers {
                assert_eq!(packed.layers[l].k.data(), old.layers[l].k.data(), "rank {r} K");
                assert_eq!(packed.layers[l].v.data(), old.layers[l].v.data(), "rank {r} V");
            }
        }
    }

    #[test]
    fn cross_degree_repack_resumes_token_identically() {
        // Decode at tp=4, dismantle, re-slice the salvaged shards to tp=2,
        // and continue decoding on a seeded tp=2 group: the continuation
        // must match an uninterrupted run token-for-token. (The repacked
        // rows carry the tp=4 group's exact bits — salvage recomputes
        // nothing.)
        let m = model(2, 61);
        let tpm4 = Arc::new(TpPackedModel::shard(&m, 4));
        let mut oracle = tpm4.session(3);
        let out_a = oracle.generate(&[1, 2, 3], 3);
        let want_b = oracle.generate(&[out_a[2]], 4);

        let mut s4 = tpm4.session(3);
        let got_a = s4.generate(&[1, 2, 3], 3);
        assert_eq!(got_a, out_a);
        let committed = 3 + got_a.len() - 1;
        let d4 = s4.dismantle();
        let c = &m.config;
        let (repacked, rows) =
            repack_kv(&d4.kv, committed, c.hidden, c.layers, c.max_seq, 2).expect("all salvaged");
        assert_eq!(rows, committed);
        let tpm2 = Arc::new(TpPackedModel::shard(&m, 2));
        let mut s2 = tpm2.session_with(3, CommConfig::default(), Some(repacked));
        assert_eq!(s2.context_len(), committed);
        let got_b = s2.generate(&[got_a[2]], 4);
        assert_eq!(got_b, want_b);
    }

    #[test]
    fn park_salvages_kv_for_reuse() {
        let m = model(2, 67);
        let want_a = baseline(&m, &[3, 1], 3);
        let mut ft = FtSession::new(Arc::clone(&m), 4, FtConfig::new(2));
        let got_a = ft.generate(&[3, 1], 3).expect("clean");
        assert_eq!(got_a, want_a);
        ft.park();
        // Continue on the parked context: must match an uninterrupted run.
        let tpm = Arc::new(TpPackedModel::shard(&m, 1));
        let mut oracle = tpm.session(2);
        let _ = oracle.generate(&[3, 1], 3);
        let want_b = oracle.generate(&[want_a[2]], 3);
        let got_b = ft.generate(&[got_a[2]], 3).expect("resume");
        assert_eq!(got_b, want_b);
        assert_eq!(ft.report().rows_replayed, 0, "park salvage must avoid replay");
    }
}
