//! Tensor (model) parallelism — Megatron-style layer sharding (Sec. IV-A).
//!
//! Column-parallel first GEMMs (QKV, FF1), row-parallel second GEMMs
//! (attention output, FF2). Each rank computes attention over its own subset
//! of heads, so the only cross-rank communication is the two all-reduces per
//! layer that sum the row-parallel partial outputs — exactly the
//! communication structure DeepSpeed Inference inherits from Megatron-LM
//! ("using NCCL all-reduce collectives to perform the necessary across GPU
//! communication").
//!
//! The implementation is functional: [`shard_layer`] really splits the
//! weight tensors, [`tp_layer_forward_into`] really runs every rank's shard
//! and really sums the partials through an in-place
//! [`allreduce_sum_slices`] all-reduce, and the test suite proves the result
//! equals the unsharded reference. It remains the sequential correctness
//! oracle; the *threaded* engine lives in [`tp_exec`](crate::tp_exec).

use dsi_kernels::ops;
use dsi_kernels::tensor::Tensor;
use dsi_model::reference::{LayerKv, LayerWeights};
use dsi_sim::collectives::allreduce_sum_slices;
use dsi_sim::hw::DType;

/// One rank's shard of a transformer layer.
#[derive(Debug, Clone)]
pub struct TpLayer {
    /// Tensor-parallel degree.
    pub tp: usize,
    /// This shard's rank within the TP group.
    pub rank: usize,
    /// Heads owned by this rank.
    pub heads: usize,
    /// Replicated input layer-norm.
    pub ln1_g: Tensor,
    pub ln1_b: Tensor,
    /// Column shard `[h, 3h/tp]` (q-cols | k-cols | v-cols of this rank).
    pub w_qkv: Tensor,
    pub b_qkv: Tensor,
    /// Row shard `[h/tp, h]` of the output projection.
    pub w_o: Tensor,
    /// Output bias, applied once after the all-reduce (held by every rank,
    /// divided by tp so the reduce applies it exactly once).
    pub b_o: Tensor,
    pub ln2_g: Tensor,
    pub ln2_b: Tensor,
    /// Column shard `[h, 4h/tp]`.
    pub w_ff1: Tensor,
    pub b_ff1: Tensor,
    /// Row shard `[4h/tp, h]`.
    pub w_ff2: Tensor,
    pub b_ff2: Tensor,
}

/// Split a layer's weights across `tp` ranks.
pub fn shard_layer(lw: &LayerWeights, total_heads: usize, tp: usize) -> Vec<TpLayer> {
    let h = lw.w_o.rows();
    assert!(h.is_multiple_of(tp), "hidden {h} not divisible by tp {tp}");
    assert!(total_heads.is_multiple_of(tp), "heads {total_heads} not divisible by tp {tp}");
    let hs = h / tp; // hidden shard width
    let f = 4 * h;
    let fs = f / tp;

    (0..tp)
        .map(|r| {
            // Column shard of QKV: take this rank's column range from each of
            // the Q, K, V blocks so attention heads stay contiguous per rank.
            let q = lw.w_qkv.col_slice(r * hs, (r + 1) * hs);
            let k = lw.w_qkv.col_slice(h + r * hs, h + (r + 1) * hs);
            let v = lw.w_qkv.col_slice(2 * h + r * hs, 2 * h + (r + 1) * hs);
            let w_qkv = Tensor::cat_cols(&[&q, &k, &v]);
            let bq = lw.b_qkv.data();
            let mut b_qkv = Vec::with_capacity(3 * hs);
            b_qkv.extend_from_slice(&bq[r * hs..(r + 1) * hs]);
            b_qkv.extend_from_slice(&bq[h + r * hs..h + (r + 1) * hs]);
            b_qkv.extend_from_slice(&bq[2 * h + r * hs..2 * h + (r + 1) * hs]);

            let mut scaled_bo = lw.b_o.clone();
            ops::scale_inplace(&mut scaled_bo, 1.0 / tp as f32);
            let mut scaled_bff2 = lw.b_ff2.clone();
            ops::scale_inplace(&mut scaled_bff2, 1.0 / tp as f32);

            TpLayer {
                tp,
                rank: r,
                heads: total_heads / tp,
                ln1_g: lw.ln1_g.clone(),
                ln1_b: lw.ln1_b.clone(),
                w_qkv,
                b_qkv: Tensor::from_vec(&[3 * hs], b_qkv),
                w_o: lw.w_o.row_slice(r * hs, (r + 1) * hs),
                b_o: scaled_bo,
                ln2_g: lw.ln2_g.clone(),
                ln2_b: lw.ln2_b.clone(),
                w_ff1: lw.w_ff1.col_slice(r * fs, (r + 1) * fs),
                b_ff1: Tensor::from_vec(&[fs], lw.b_ff1.data()[r * fs..(r + 1) * fs].to_vec()),
                w_ff2: lw.w_ff2.row_slice(r * fs, (r + 1) * fs),
                b_ff2: scaled_bff2,
            }
        })
        .collect()
}

/// One rank's partial attention-block output (pre-all-reduce).
fn rank_attention_partial(shard: &TpLayer, x: &Tensor, kv: &mut LayerKv) -> Tensor {
    let hs = shard.w_o.rows();
    let offset = kv.len();
    let normed = ops::layernorm(x, &shard.ln1_g, &shard.ln1_b, 1e-5);
    let mut qkv = ops::matmul(&normed, &shard.w_qkv);
    ops::add_bias(&mut qkv, &shard.b_qkv);
    let q = qkv.col_slice(0, hs);
    let k = qkv.col_slice(hs, 2 * hs);
    let v = qkv.col_slice(2 * hs, 3 * hs);
    kv.append(&k, &v);
    let attn = ops::attention(&q, &kv.k, &kv.v, shard.heads, offset);
    let mut out = ops::matmul(&attn, &shard.w_o);
    ops::add_bias(&mut out, &shard.b_o);
    out
}

/// One rank's partial FFN-block output (pre-all-reduce).
fn rank_ffn_partial(shard: &TpLayer, x: &Tensor) -> Tensor {
    let normed = ops::layernorm(x, &shard.ln2_g, &shard.ln2_b, 1e-5);
    let mut ff = ops::matmul(&normed, &shard.w_ff1);
    ops::add_bias(&mut ff, &shard.b_ff1);
    ops::gelu(&mut ff);
    let mut y = ops::matmul(&ff, &shard.w_ff2);
    ops::add_bias(&mut y, &shard.b_ff2);
    y
}

/// Execute a tensor-parallel layer across all shards, reducing into the
/// caller-provided `out` tensor (`x`'s shape, overwritten). The two
/// per-layer all-reduces run in place over the rank partials via
/// [`allreduce_sum_slices`] — no `CommGroup` construction (which would move
/// every partial into its buffer list) and no `buffers[0].clone()` back out,
/// the double copy per block the sequential path used to pay. `kvs[r]` is
/// rank `r`'s KV cache shard (each rank caches only its heads — the memory
/// saving that lets TP hold longer contexts).
///
/// This stays the slow *reference oracle* for the threaded engine
/// (`tp_exec`): internally it still runs every rank sequentially through
/// the allocating reference ops.
pub fn tp_layer_forward_into(shards: &[TpLayer], x: &Tensor, kvs: &mut [LayerKv], out: &mut Tensor) {
    assert_eq!(shards.len(), kvs.len());
    assert_eq!(out.shape(), x.shape(), "out must match x's shape");

    // Attention block: every rank computes its partial, then all-reduce in
    // place and add the replicated residual into `out`.
    let mut partials: Vec<Vec<f32>> = shards
        .iter()
        .zip(kvs.iter_mut())
        .map(|(s, kv)| rank_attention_partial(s, x, kv).into_data())
        .collect();
    let mut views: Vec<&mut [f32]> = partials.iter_mut().map(|p| p.as_mut_slice()).collect();
    allreduce_sum_slices(&mut views);
    for ((o, &p), &xv) in out.data_mut().iter_mut().zip(&partials[0]).zip(x.data()) {
        *o = p + xv;
    }

    // FFN block: partials + in-place all-reduce + residual.
    let mut partials: Vec<Vec<f32>> = shards
        .iter()
        .map(|s| rank_ffn_partial(s, out).into_data())
        .collect();
    let mut views: Vec<&mut [f32]> = partials.iter_mut().map(|p| p.as_mut_slice()).collect();
    allreduce_sum_slices(&mut views);
    for (o, &p) in out.data_mut().iter_mut().zip(&partials[0]) {
        *o += p;
    }
}

/// Allocating convenience wrapper around [`tp_layer_forward_into`].
pub fn tp_layer_forward(shards: &[TpLayer], x: &Tensor, kvs: &mut [LayerKv]) -> Tensor {
    let mut out = Tensor::zeros(x.shape());
    tp_layer_forward_into(shards, x, kvs, &mut out);
    out
}

/// Bytes all-reduced per layer per forward: two reduces of the `[tokens, h]`
/// activation (the communication the cost model charges per layer).
pub fn tp_layer_comm_bytes(tokens: usize, hidden: usize, act_dtype: DType) -> f64 {
    2.0 * tokens as f64 * hidden as f64 * act_dtype.bytes() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_model::reference::{layer_forward, LayerWeights};

    fn reference_and_shards(tp: usize) -> (LayerWeights, Vec<TpLayer>) {
        let lw = LayerWeights::random(64, 9);
        let shards = shard_layer(&lw, 4, tp);
        (lw, shards)
    }

    #[test]
    fn tp1_is_identity_sharding() {
        let (lw, shards) = reference_and_shards(1);
        let x = Tensor::randn(&[3, 64], 1.0, 1);
        let mut kv_ref = LayerKv::empty(64);
        let mut kvs = vec![LayerKv::empty(64)];
        let want = layer_forward(&lw, &x, &mut kv_ref, 4);
        let got = tp_layer_forward(&shards, &x, &mut kvs);
        assert!(got.allclose(&want, 1e-4), "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn tp2_matches_reference() {
        let (lw, shards) = reference_and_shards(2);
        let x = Tensor::randn(&[5, 64], 1.0, 2);
        let mut kv_ref = LayerKv::empty(64);
        let mut kvs = vec![LayerKv::empty(32), LayerKv::empty(32)];
        let want = layer_forward(&lw, &x, &mut kv_ref, 4);
        let got = tp_layer_forward(&shards, &x, &mut kvs);
        assert!(got.allclose(&want, 1e-3), "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn tp4_matches_reference_with_kv_cache_steps() {
        // Multi-step generation through the sharded layer must track the
        // reference including causal attention over the cached context.
        let (lw, shards) = reference_and_shards(4);
        let mut kv_ref = LayerKv::empty(64);
        let mut kvs: Vec<LayerKv> = (0..4).map(|_| LayerKv::empty(16)).collect();
        // Prompt step.
        let x0 = Tensor::randn(&[4, 64], 1.0, 3);
        let w0 = layer_forward(&lw, &x0, &mut kv_ref, 4);
        let g0 = tp_layer_forward(&shards, &x0, &mut kvs);
        assert!(g0.allclose(&w0, 1e-3), "prompt diff {}", g0.max_abs_diff(&w0));
        // Generation step.
        let x1 = Tensor::randn(&[1, 64], 1.0, 4);
        let w1 = layer_forward(&lw, &x1, &mut kv_ref, 4);
        let g1 = tp_layer_forward(&shards, &x1, &mut kvs);
        assert!(g1.allclose(&w1, 1e-3), "gen diff {}", g1.max_abs_diff(&w1));
    }

    #[test]
    fn shards_partition_parameters() {
        let (lw, shards) = reference_and_shards(4);
        // Total sharded GEMM parameters equal the unsharded layer's.
        let shard_params: usize = shards
            .iter()
            .map(|s| s.w_qkv.len() + s.w_o.len() + s.w_ff1.len() + s.w_ff2.len())
            .sum();
        let full = lw.w_qkv.len() + lw.w_o.len() + lw.w_ff1.len() + lw.w_ff2.len();
        assert_eq!(shard_params, full);
    }

    #[test]
    fn kv_cache_is_sharded() {
        let (_, shards) = reference_and_shards(4);
        let mut kvs: Vec<LayerKv> = (0..4).map(|_| LayerKv::empty(16)).collect();
        let x = Tensor::randn(&[2, 64], 1.0, 5);
        tp_layer_forward(&shards, &x, &mut kvs);
        // Each rank caches only hidden/tp = 16 columns.
        for kv in &kvs {
            assert_eq!(kv.k.cols(), 16);
            assert_eq!(kv.len(), 2);
        }
    }

    #[test]
    fn comm_bytes_formula() {
        assert_eq!(tp_layer_comm_bytes(8, 512, DType::Fp16), 2.0 * 8.0 * 512.0 * 2.0);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_tp_rejected() {
        let lw = LayerWeights::random(64, 9);
        shard_layer(&lw, 4, 3);
    }
}
