//! Executed tensor parallelism: threaded TP ranks over the fast path.
//!
//! [`tp`](crate::tp) proves the Megatron sharding math (Sec. IV-A) but runs
//! every rank sequentially through the slow reference ops, so it can never
//! show a *speedup* — the whole point of Fig. 8's scaling story. This module
//! is the executed counterpart:
//!
//! * **Pack-time sharding** — [`TpPackedModel::shard`] splits every layer
//!   with [`tp::shard_layer`](crate::tp::shard_layer) (column-parallel
//!   QKV/FF1, row-parallel W_o/FF2, heads contiguous per rank) and packs
//!   each shard into the panel layout of `dsi_kernels::blocked::PackedB`,
//!   exactly like `PackedModel` packs the full weights. The output biases
//!   are kept *full* and applied once after the all-reduce (the functional
//!   path instead pre-divides them by `tp`; summing `tp` rounded copies of
//!   `b/tp` is not bit-stable, applying `b` once is).
//! * **One OS thread per rank** — [`TpSession`] runs rank 0 inline on the
//!   caller's thread and spawns ranks `1..tp` as worker threads, each with
//!   its own scratch arena and KV shard (`h/tp` columns — the KV memory
//!   saving of Sec. IV-A). Workers are pinned to distinct cores when the
//!   host has enough of them (best-effort `sched_setaffinity`).
//! * **Shared-memory collectives** — the two per-layer all-reduces run on
//!   [`dsi_sim::shmem::ShmRank::try_allreduce_sum`]: a sense-reversing
//!   barrier plus a chunked in-place reduce over published buffer pointers.
//!   No per-token allocation, no full-buffer clones, reduction in rank
//!   order.
//! * **Lock-step command protocol** — the driver publishes a command
//!   (prompt / decode / shutdown) and crosses the group barrier; every rank
//!   then runs the same forward step and meets again at the next step
//!   barrier. The barrier's release/acquire chain makes the command and the
//!   decoded token visible without locks in the steady state.
//!
//! Greedy decode is **token-identical** to the single-thread
//! [`FastSession`]: column shards of a panel GEMM produce bit-identical
//! columns (each output column has its own accumulator chain), attention
//! heads are disjoint, and the row-parallel partial sums only reassociate
//! the same f32 additions the fused epilogue performs — the property suite
//! asserts exact token equality across random configs.
//!
//! ## Failure handling
//!
//! Every rendezvous is bounded (the `dsi-sim` collectives carry a timeout),
//! so a dead or wedged rank surfaces as a typed
//! [`CollectiveError`] through [`TpSession::try_prompt`] /
//! [`TpSession::try_decode`] instead of a hang. Worker threads run their
//! rank loop under `catch_unwind`: on any exit — clean shutdown, collective
//! failure, scripted crash, or panic — they report a [`WorkerExit`] over a
//! salvage channel carrying their KV shard (when their memory is still
//! trustworthy) and the failure cause (including the panic payload).
//! [`TpSession::dismantle`] tears the group down with a *deadline* join —
//! never hanging on a wedged thread — and returns everything salvaged, so a
//! supervisor (see [`supervisor`](crate::supervisor)) can re-pack the KV to
//! a smaller TP degree and resume decoding token-identically.
//!
//! [`FastSession`]: dsi_model::fast::FastSession
//! [`CollectiveError`]: dsi_sim::CollectiveError

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dsi_kernels::blocked::{self, PackedB};
use dsi_kernels::fused;
use dsi_kernels::tensor::Tensor;
use dsi_model::config::GptConfig;
use dsi_model::fast::argmax;
use dsi_model::reference::{GptModel, KvCache};
use dsi_sim::fault::{apply_stall, FaultKind};
use dsi_sim::shmem::{CommConfig, ShmComm, ShmRank};
use dsi_sim::{CollectiveError, CollectiveErrorKind};

use crate::tp::shard_layer;

/// One rank's shard of one layer, in execution layout (packed GEMM panels,
/// bias vectors as plain slices). Mirrors `dsi_model::fast::PackedLayer`,
/// but with `w_qkv`/`w_ff1` column-sharded, `w_o`/`w_ff2` row-sharded, and
/// the two output biases full-width (applied once post-reduce).
#[derive(Debug)]
pub struct TpPackedShard {
    pub ln1_g: Vec<f32>,
    pub ln1_b: Vec<f32>,
    /// `[h, 3h/tp]` column shard (this rank's q|k|v columns), packed.
    pub w_qkv: PackedB,
    pub b_qkv: Vec<f32>,
    /// `[h/tp, h]` row shard of the output projection, packed.
    pub w_o: PackedB,
    /// Full `[h]` output bias, applied once after the all-reduce.
    pub b_o: Vec<f32>,
    pub ln2_g: Vec<f32>,
    pub ln2_b: Vec<f32>,
    /// `[h, 4h/tp]` column shard, packed.
    pub w_ff1: PackedB,
    pub b_ff1: Vec<f32>,
    /// `[4h/tp, h]` row shard, packed.
    pub w_ff2: PackedB,
    /// Full `[h]` FF2 bias, applied once after the all-reduce.
    pub b_ff2: Vec<f32>,
}

/// A model sharded and packed for `tp` executed ranks. Owns everything the
/// rank threads touch (replicated embeddings, final layer-norm, per-rank
/// packed shards), so it can sit behind an `Arc` shared across threads.
#[derive(Debug)]
pub struct TpPackedModel {
    config: GptConfig,
    tp: usize,
    /// `shards[rank][layer]`.
    shards: Vec<Vec<TpPackedShard>>,
    /// Replicated `[vocab, h]` token embedding (also the logits operand).
    wte: Tensor,
    /// Replicated `[max_seq, h]` position embedding.
    wpe: Tensor,
    lnf_g: Vec<f32>,
    lnf_b: Vec<f32>,
    /// `wteᵀ` panel-packed as the `[h, vocab]` logits projection (rank 0
    /// computes logits; the projection is not sharded).
    wte_packed: PackedB,
}

impl TpPackedModel {
    /// Shard `model` across `tp` ranks and pack every shard. Requires
    /// `tp | heads` (and therefore `tp | hidden`).
    pub fn shard(model: &GptModel, tp: usize) -> Self {
        let c = model.config.clone();
        let mut shards: Vec<Vec<TpPackedShard>> =
            (0..tp).map(|_| Vec::with_capacity(c.layers)).collect();
        for lw in &model.layers {
            for (r, s) in shard_layer(lw, c.heads, tp).iter().enumerate() {
                shards[r].push(TpPackedShard {
                    ln1_g: s.ln1_g.data().to_vec(),
                    ln1_b: s.ln1_b.data().to_vec(),
                    w_qkv: PackedB::pack(&s.w_qkv),
                    b_qkv: s.b_qkv.data().to_vec(),
                    w_o: PackedB::pack(&s.w_o),
                    b_o: lw.b_o.data().to_vec(),
                    ln2_g: s.ln2_g.data().to_vec(),
                    ln2_b: s.ln2_b.data().to_vec(),
                    w_ff1: PackedB::pack(&s.w_ff1),
                    b_ff1: s.b_ff1.data().to_vec(),
                    w_ff2: PackedB::pack(&s.w_ff2),
                    b_ff2: lw.b_ff2.data().to_vec(),
                });
            }
        }
        TpPackedModel {
            tp,
            shards,
            wte: model.wte.clone(),
            wpe: model.wpe.clone(),
            lnf_g: model.lnf_g.data().to_vec(),
            lnf_b: model.lnf_b.data().to_vec(),
            wte_packed: PackedB::from_pre_transposed(&model.wte),
            config: c,
        }
    }

    pub fn config(&self) -> &GptConfig {
        &self.config
    }

    pub fn tp(&self) -> usize {
        self.tp
    }

    /// Start a decode session: spawns the `tp - 1` worker rank threads and
    /// sizes every rank's scratch/KV for `max_prompt` prompt tokens plus
    /// generation up to the model's `max_seq`.
    pub fn session(self: &Arc<Self>, max_prompt: usize) -> TpSession {
        TpSession::new(Arc::clone(self), max_prompt)
    }

    /// [`TpPackedModel::session`] with an explicit collective configuration
    /// (timeout / checksum / fault injection) and optionally one pre-seeded
    /// KV shard per rank (salvaged from a previous group — the supervisor's
    /// recovery path).
    pub fn session_with(
        self: &Arc<Self>,
        max_prompt: usize,
        cfg: CommConfig,
        kv: Option<Vec<KvCache>>,
    ) -> TpSession {
        TpSession::with_options(Arc::clone(self), max_prompt, cfg, kv)
    }
}

// --- command protocol -------------------------------------------------------

const CMD_PROMPT: u8 = 1;
const CMD_DECODE: u8 = 2;
const CMD_SHUTDOWN: u8 = 3;

/// Grace added to the collective timeout when joining worker threads: long
/// enough for a worker stuck in a rendezvous to observe its own timeout and
/// exit, short enough that teardown stays bounded.
const JOIN_GRACE: Duration = Duration::from_secs(2);

/// Step descriptor published by the driver before each step barrier and read
/// by every worker after it. The barrier's release/acquire chain orders the
/// plain atomic stores against the reads, so the steady-state decode step
/// touches no locks (the mutex only guards the prompt hand-off).
#[derive(Debug)]
struct TpShared {
    cmd: AtomicU8,
    /// The token id to decode (valid when `cmd == CMD_DECODE`).
    token: AtomicUsize,
    /// The prompt to ingest (valid when `cmd == CMD_PROMPT`).
    prompt: Mutex<Vec<usize>>,
}

// --- worker exit reporting --------------------------------------------------

/// Why a rank left the group.
#[derive(Debug)]
pub enum RankFailureCause {
    /// A collective call failed typed (timeout / poison / corrupt chunk /
    /// scripted crash).
    Collective(CollectiveError),
    /// The rank's thread panicked; the payload is preserved.
    Panicked(String),
    /// The rank's thread did not exit within the join deadline (wedged);
    /// it was detached, its state abandoned.
    Unjoined,
}

impl std::fmt::Display for RankFailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankFailureCause::Collective(e) => write!(f, "collective failure: {e}"),
            RankFailureCause::Panicked(p) => write!(f, "panicked: {p}"),
            RankFailureCause::Unjoined => write!(f, "thread wedged past the join deadline"),
        }
    }
}

/// One rank's failure, as reported by [`TpSession::dismantle`].
#[derive(Debug)]
pub struct RankFailure {
    pub rank: usize,
    pub cause: RankFailureCause,
}

/// A worker thread's exit report, sent over the salvage channel.
#[derive(Debug)]
struct WorkerExit {
    rank: usize,
    /// The rank's KV shard, when its memory is still trustworthy (clean
    /// shutdown or typed collective failure). `None` models a crashed
    /// process whose memory is gone (scripted exit, panic).
    kv: Option<KvCache>,
    cause: Option<RankFailureCause>,
}

/// Everything [`TpSession::dismantle`] could salvage from a (possibly
/// failed) group: per-rank KV shards and the per-rank failure causes. The
/// supervisor re-packs the shards to a smaller TP degree when every column
/// survived, or falls back to re-prefilling from the token history.
#[derive(Debug)]
pub struct Dismantled {
    /// `kv[rank]` is the rank's salvaged KV shard, `None` if the rank's
    /// memory was lost (crash / panic / wedged thread).
    pub kv: Vec<Option<KvCache>>,
    /// Every failure observed during the group's lifetime and teardown.
    pub failures: Vec<RankFailure>,
}

// --- per-rank execution state ----------------------------------------------

/// One rank's private buffers: KV shard plus a scratch arena mirroring
/// `dsi_model::fast::Scratch`, sized once at session start so the
/// steady-state decode loop performs zero heap allocations (alloc-guard
/// tested).
struct RankState {
    rank: usize,
    /// Max prompt rows the scratch is sized for.
    m_max: usize,
    /// KV shard: `h/tp` columns per layer.
    kv: KvCache,
    /// `[m, h]` replicated activations.
    x: Vec<f32>,
    /// `[m, h]` layer-norm rows (interior of the fused regions).
    normed: Vec<f32>,
    /// `[m, 3h/tp]` sharded QKV output; attention reads query rows in place
    /// at stride `3h/tp` (no gather buffer).
    qkv: Vec<f32>,
    /// `[m, h/tp]` attention context over this rank's heads.
    attn: Vec<f32>,
    /// `[m, h]` row-parallel partial output; the all-reduce buffer.
    part: Vec<f32>,
    /// `[m, 4h/tp]` sharded FF1 activation.
    ff: Vec<f32>,
    /// `[m, vocab]` logits (rank 0 only; empty on workers).
    logits: Vec<f32>,
    /// Workers' private copy of the prompt (filled under the hand-off lock,
    /// released before compute starts so ranks never serialize on it).
    ids_buf: Vec<usize>,
    /// Row count of the most recent forward (selects the sampling row).
    last_m: usize,
}

impl RankState {
    fn new(model: &TpPackedModel, rank: usize, max_prompt: usize, kv: Option<KvCache>) -> Self {
        let c = &model.config;
        let m = max_prompt.max(1);
        let hs = c.hidden / model.tp;
        let kv = match kv {
            Some(kv) => {
                assert_eq!(kv.layers.len(), c.layers, "seeded KV layer count");
                kv
            }
            None => KvCache::with_capacity(c.layers, hs, c.max_seq),
        };
        RankState {
            rank,
            m_max: m,
            kv,
            x: vec![0.0; m * c.hidden],
            normed: vec![0.0; m * c.hidden],
            qkv: vec![0.0; m * 3 * hs],
            attn: vec![0.0; m * hs],
            part: vec![0.0; m * c.hidden],
            ff: vec![0.0; m * 4 * hs],
            logits: if rank == 0 { vec![0.0; m * c.vocab] } else { Vec::new() },
            ids_buf: Vec::with_capacity(m),
            last_m: 0,
        }
    }

    /// Forward `ids` through this rank's layer shards, meeting the group at
    /// the two per-layer all-reduces. Every rank computes the full `[m, h]`
    /// activations (replicated, as in Megatron) but only its own slice of
    /// heads / FF neurons; rank 0 additionally computes logits.
    ///
    /// Fails typed when a collective rendezvous fails (the error names the
    /// reporting rank, failure kind, and collective epoch) or when the fault
    /// injector scripts a crash at a layer site; an injected panic at a
    /// layer site panics here (the worker's `catch_unwind` converts it to a
    /// [`RankFailureCause::Panicked`] report).
    fn try_forward(
        &mut self,
        model: &TpPackedModel,
        comm: &mut ShmRank,
        ids: &[usize],
    ) -> Result<(), CollectiveError> {
        let c = &model.config;
        let (h, tp) = (c.hidden, model.tp);
        let hs = h / tp;
        let heads = c.heads / tp;
        let m = ids.len();
        let offset = self.kv.context_len();
        assert!(m <= self.m_max, "step of {m} rows exceeds scratch capacity");
        assert!(offset + m <= c.max_seq, "sequence exceeds max_seq");
        let s = self;

        // Replicated embedding: token row + position row.
        for (i, &id) in ids.iter().enumerate() {
            assert!(id < c.vocab, "token id {id} out of vocab");
            let te = model.wte.row(id);
            let pe = model.wpe.row(offset + i);
            for (x, (&t, &p)) in s.x[i * h..(i + 1) * h].iter_mut().zip(te.iter().zip(pe)) {
                *x = t + p;
            }
        }

        for (l, pl) in model.shards[s.rank].iter().enumerate() {
            // Layer-site fault hook: one `Option` check when no injector is
            // installed. The site key is the sequence-position range this
            // step covers, so a "token 5, layer 2" script fires whether
            // position 5 arrives in the prompt batch or as a decode step.
            if let Some(inj) = comm.injector() {
                match inj.at_layer(s.rank, offset, offset + m, l) {
                    Some(FaultKind::Stall { millis }) => apply_stall(millis),
                    Some(FaultKind::Exit) => {
                        return Err(CollectiveError {
                            rank: s.rank,
                            kind: CollectiveErrorKind::InjectedExit,
                            epoch: comm.epoch(),
                        });
                    }
                    Some(FaultKind::Panic) => {
                        panic!("injected fault: rank {} panics at layer {l}", s.rank)
                    }
                    Some(FaultKind::Corrupt) | None => {}
                }
            }
            let kv = &mut s.kv.layers[l];
            // Region 1: layer-norm → sharded QKV GEMM → bias.
            fused::ln_matmul_bias_into(
                &s.x[..m * h], m, &pl.ln1_g, &pl.ln1_b, 1e-5,
                &pl.w_qkv, &pl.b_qkv, &mut s.normed[..m * h], &mut s.qkv[..m * 3 * hs],
            );
            // KV shard append in place (this rank's heads only).
            for i in 0..m {
                let row = &s.qkv[i * 3 * hs..(i + 1) * 3 * hs];
                kv.append_row_slices(&row[hs..2 * hs], &row[2 * hs..3 * hs]);
            }
            // Region 2: streaming-softmax attention over this rank's heads,
            // reading query rows in place from the QKV scratch (stride
            // 3h/tp) — no gather, no m == 1 special case.
            fused::attention_seq_into(
                &s.qkv[..m * 3 * hs], 3 * hs, m, &kv.k, &kv.v, heads, offset,
                &mut s.attn[..m * hs],
            );
            // Region 3: row-parallel output projection → all-reduce →
            // bias + residual (applied once, post-reduce).
            blocked::matmul_into(&s.attn[..m * hs], m, &pl.w_o, &mut s.part[..m * h]);
            comm.try_allreduce_sum(&mut s.part[..m * h])?;
            fused::bias_residual_inplace(&mut s.part[..m * h], &pl.b_o, &s.x[..m * h]);
            std::mem::swap(&mut s.x, &mut s.part);
            // Region 4: layer-norm → sharded FF1 GEMM → bias → GeLU.
            fused::ln_matmul_bias_gelu_into(
                &s.x[..m * h], m, &pl.ln2_g, &pl.ln2_b, 1e-5,
                &pl.w_ff1, &pl.b_ff1, &mut s.normed[..m * h], &mut s.ff[..m * 4 * hs],
            );
            // Region 5: row-parallel FF2 → all-reduce → bias + residual.
            blocked::matmul_into(&s.ff[..m * 4 * hs], m, &pl.w_ff2, &mut s.part[..m * h]);
            comm.try_allreduce_sum(&mut s.part[..m * h])?;
            fused::bias_residual_inplace(&mut s.part[..m * h], &pl.b_ff2, &s.x[..m * h]);
            std::mem::swap(&mut s.x, &mut s.part);
        }

        // Logits on rank 0 only: final layer-norm + tied-embedding GEMM
        // (replicated activations make the projection rank-local).
        if s.rank == 0 {
            for i in 0..m {
                fused::layernorm_row_into(
                    &s.x[i * h..(i + 1) * h], &model.lnf_g, &model.lnf_b, 1e-5,
                    &mut s.normed[i * h..(i + 1) * h],
                );
            }
            blocked::matmul_into(
                &s.normed[..m * h], m, &model.wte_packed, &mut s.logits[..m * c.vocab],
            );
        }
        s.last_m = m;
        Ok(())
    }
}

// --- thread pinning ---------------------------------------------------------

/// Best-effort pin of the calling thread to `cpu` (Linux/x86-64 only; other
/// targets report `false`). Uses the raw `sched_setaffinity` syscall — the
/// repo links no libc crate.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn pin_current_thread(cpu: usize) -> bool {
    let mut mask = [0u64; 16]; // 1024-cpu affinity set
    if cpu >= mask.len() * 64 {
        return false;
    }
    mask[cpu / 64] = 1u64 << (cpu % 64);
    let ret: isize;
    // Raw syscall 203 (sched_setaffinity) on x86-64 Linux with pid 0
    // (= the calling thread), the size of, and a pointer to, a stack-owned
    // cpu_set_t bitmask that outlives the call.
    //
    // SAFETY: the kernel only reads the mask and mutates scheduler state;
    // registers follow the syscall ABI (rax in/out, rdi/rsi/rdx arguments,
    // rcx/r11 clobbered), and `nostack` holds — no stack red-zone use.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret,
            in("rdi") 0usize,
            in("rsi") std::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

/// Non-Linux / non-x86-64 fallback: pinning unavailable.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub fn pin_current_thread(_cpu: usize) -> bool {
    false
}

// --- the worker loop --------------------------------------------------------

/// A worker rank's lock-step loop: barrier, read command, execute, repeat.
/// Returns `Ok` on a clean shutdown command, `Err` when any collective (or
/// the layer fault hook) fails typed.
fn worker_loop(
    state: &mut RankState,
    model: &TpPackedModel,
    shared: &TpShared,
    comm: &mut ShmRank,
) -> Result<(), CollectiveError> {
    loop {
        // Step barrier: the driver has published the command.
        comm.try_barrier()?;
        match shared.cmd.load(Ordering::Relaxed) {
            CMD_SHUTDOWN => return Ok(()),
            CMD_PROMPT => {
                {
                    let p = shared.prompt.lock().unwrap();
                    state.ids_buf.clear();
                    state.ids_buf.extend_from_slice(&p);
                } // drop the guard before compute
                let ids = std::mem::take(&mut state.ids_buf);
                let r = state.try_forward(model, comm, &ids);
                state.ids_buf = ids;
                r?;
            }
            CMD_DECODE => {
                let id = shared.token.load(Ordering::Relaxed);
                state.try_forward(model, comm, &[id])?;
            }
            other => panic!("tp_exec: invalid step command {other}"),
        }
    }
}

pub(crate) fn panic_payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// --- the session ------------------------------------------------------------

/// A threaded tensor-parallel decode session with the same `generate`
/// surface as [`dsi_model::fast::FastSession`]. Rank 0 runs inline on the
/// caller's thread; ranks `1..tp` run on their own (best-effort pinned)
/// OS threads and rendezvous at the shared-memory barrier each step.
///
/// The fallible surface ([`TpSession::try_prompt`],
/// [`TpSession::try_decode`], [`TpSession::dismantle`]) reports collective
/// failures typed and salvages surviving state; the legacy surface
/// ([`TpSession::generate`]) panics on failure, including any worker panic
/// payloads in the message.
pub struct TpSession {
    model: Arc<TpPackedModel>,
    shared: Arc<TpShared>,
    comm: ShmRank,
    rank0: RankState,
    workers: Vec<(usize, JoinHandle<()>)>,
    exits: Receiver<WorkerExit>,
    /// True between publishing a step command and rank 0 completing its
    /// forward. If rank 0 unwinds mid-step, the workers may not have read
    /// the command yet — a graceful shutdown rendezvous would race the
    /// in-flight command, so teardown must poison instead.
    inflight: bool,
    /// The failure that killed the session, if any. Once set, every further
    /// step refuses with a clone of it.
    failed: Option<CollectiveError>,
    /// Rank 0's memory is not trustworthy (scripted crash or a panic the
    /// supervisor caught): `dismantle` reports its KV as lost.
    rank0_lost: bool,
    /// `dismantle` ran: `Drop` has nothing left to do.
    done: bool,
    /// Token emitted by the last [`TpSession::try_generate_step`] that has
    /// not been fed yet (fed lazily at the start of the next step, so an
    /// early stop never pays for an unsampled forward).
    to_feed: Option<usize>,
}

impl TpSession {
    pub fn new(model: Arc<TpPackedModel>, max_prompt: usize) -> Self {
        Self::with_options(model, max_prompt, CommConfig::default(), None)
    }

    /// [`TpSession::new`] with an explicit collective configuration and
    /// optionally one pre-seeded KV shard per rank (in rank order; the
    /// supervisor's recovery path hands salvaged shards back in here).
    pub fn with_options(
        model: Arc<TpPackedModel>,
        max_prompt: usize,
        cfg: CommConfig,
        kv: Option<Vec<KvCache>>,
    ) -> Self {
        let tp = model.tp;
        let mut seeded: Vec<Option<KvCache>> = match kv {
            Some(v) => {
                assert_eq!(v.len(), tp, "need one seeded KV shard per rank");
                v.into_iter().map(Some).collect()
            }
            None => (0..tp).map(|_| None).collect(),
        };
        let shared = Arc::new(TpShared {
            cmd: AtomicU8::new(0),
            token: AtomicUsize::new(0),
            prompt: Mutex::new(Vec::with_capacity(max_prompt.max(1))),
        });
        let (tx, exits) = std::sync::mpsc::channel::<WorkerExit>();
        let mut ranks = ShmComm::create_with(tp, cfg);
        // Pin only when the host actually has a core per rank; on smaller
        // hosts the barrier's yield path keeps correctness via the scheduler.
        let pin = std::thread::available_parallelism().is_ok_and(|n| n.get() >= tp);
        let workers = ranks
            .drain(1..)
            .map(|mut rank_comm| {
                let model = Arc::clone(&model);
                let shared = Arc::clone(&shared);
                let tx: Sender<WorkerExit> = tx.clone();
                let r = rank_comm.rank();
                let seed_kv = seeded[r].take();
                let handle = std::thread::spawn(move || {
                    let poisoner = rank_comm.poisoner();
                    if pin {
                        pin_current_thread(r);
                    }
                    // The rank loop runs under `catch_unwind` so that even a
                    // panicking worker reports an exit (with its payload)
                    // instead of silently dying; the state comes back out so
                    // its KV shard can be salvaged.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        move || {
                            let mut state = RankState::new(&model, r, max_prompt, seed_kv);
                            let res = worker_loop(&mut state, &model, &shared, &mut rank_comm);
                            (state.kv, res)
                        },
                    ));
                    let exit = match outcome {
                        Ok((kv, Ok(()))) => WorkerExit { rank: r, kv: Some(kv), cause: None },
                        // A scripted crash models a dead process: its memory
                        // is gone, and it does NOT poison — peers must detect
                        // the loss through the timeout/heartbeat path.
                        Ok((_, Err(e))) if e.kind == CollectiveErrorKind::InjectedExit => {
                            WorkerExit {
                                rank: r,
                                kv: None,
                                cause: Some(RankFailureCause::Collective(e)),
                            }
                        }
                        // A typed collective failure leaves the rank's own
                        // memory intact: salvage the KV, poison so every
                        // peer unblocks promptly.
                        Ok((kv, Err(e))) => {
                            poisoner.poison();
                            WorkerExit {
                                rank: r,
                                kv: Some(kv),
                                cause: Some(RankFailureCause::Collective(e)),
                            }
                        }
                        Err(payload) => {
                            poisoner.poison();
                            WorkerExit {
                                rank: r,
                                kv: None,
                                cause: Some(RankFailureCause::Panicked(panic_payload_to_string(
                                    payload,
                                ))),
                            }
                        }
                    };
                    let _ = tx.send(exit);
                });
                (r, handle)
            })
            .collect();
        let comm = ranks.pop().expect("rank 0 handle");
        let rank0 = RankState::new(&model, 0, max_prompt, seeded[0].take());
        TpSession {
            model,
            shared,
            comm,
            rank0,
            workers,
            exits,
            inflight: false,
            failed: None,
            rank0_lost: false,
            done: false,
            to_feed: None,
        }
    }

    pub fn tp(&self) -> usize {
        self.model.tp
    }

    /// Context length consumed so far.
    pub fn context_len(&self) -> usize {
        self.rank0.kv.context_len()
    }

    /// The failure that killed this session, if any.
    pub fn failure(&self) -> Option<&CollectiveError> {
        self.failed.as_ref()
    }

    /// The `[vocab]` logits row of the most recently forwarded position
    /// (same contract as [`FastSession::last_logits`]).
    ///
    /// [`FastSession::last_logits`]: dsi_model::fast::FastSession::last_logits
    pub fn last_logits(&self) -> &[f32] {
        assert!(self.rank0.last_m > 0, "last_logits() before any step");
        let vocab = self.model.config.vocab;
        &self.rank0.logits[(self.rank0.last_m - 1) * vocab..self.rank0.last_m * vocab]
    }

    /// Feed a multi-token prompt step. On failure the session is dead:
    /// every later call refuses with the same error, and
    /// [`TpSession::dismantle`] salvages what survives.
    pub fn try_prompt(&mut self, prompt: &[usize]) -> Result<(), CollectiveError> {
        assert!(!prompt.is_empty(), "empty prompt");
        assert!(prompt.len() <= self.rank0.m_max, "prompt exceeds session max_prompt");
        {
            let mut p = self.shared.prompt.lock().unwrap();
            p.clear();
            p.extend_from_slice(prompt);
        }
        self.try_step(CMD_PROMPT, prompt)
    }

    /// Feed one decode token. Same failure contract as
    /// [`TpSession::try_prompt`].
    pub fn try_decode(&mut self, token: usize) -> Result<(), CollectiveError> {
        self.shared.token.store(token, Ordering::Relaxed);
        let ids = [token];
        self.try_step(CMD_DECODE, &ids)
    }

    /// Run one group step: publish the command, cross the step barrier, and
    /// execute rank 0's share inline.
    fn try_step(&mut self, cmd: u8, ids: &[usize]) -> Result<(), CollectiveError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        if self.comm.is_poisoned() {
            let e = CollectiveError {
                rank: 0,
                kind: CollectiveErrorKind::Poisoned,
                epoch: self.comm.epoch(),
            };
            return Err(self.fail(e));
        }
        self.inflight = true;
        self.shared.cmd.store(cmd, Ordering::Relaxed);
        if let Err(e) = self.comm.try_barrier() {
            return Err(self.fail(e));
        }
        match self.rank0.try_forward(&self.model, &mut self.comm, ids) {
            Ok(()) => {
                // The workers have read the command (they joined this step's
                // all-reduces), so a later shutdown store cannot race it.
                self.inflight = false;
                Ok(())
            }
            Err(e) => Err(self.fail(e)),
        }
    }

    /// Record a fatal step failure: poison the group so every worker
    /// unblocks promptly (they salvage their KV on the way out), remember
    /// the error, classify rank 0's own memory.
    fn fail(&mut self, e: CollectiveError) -> CollectiveError {
        self.comm.poison();
        if e.rank == 0 && e.kind == CollectiveErrorKind::InjectedExit {
            self.rank0_lost = true;
        }
        self.failed = Some(e.clone());
        e
    }

    /// Record that the driver (rank 0) panicked out of a step — called by a
    /// supervisor that caught the unwind. Poisons the group and marks rank
    /// 0's memory untrustworthy, so [`TpSession::dismantle`] reports its KV
    /// as lost.
    pub fn note_rank0_panic(&mut self) {
        self.comm.poison();
        self.rank0_lost = true;
        self.inflight = true;
    }

    /// Ingest `prompt` and arm step-wise generation: after `try_begin`,
    /// each [`TpSession::try_generate_step`] emits the next greedy token.
    /// Token-identical to one-shot [`TpSession::generate`], which is
    /// implemented on top of this pair.
    pub fn try_begin(&mut self, prompt: &[usize]) -> Result<(), CollectiveError> {
        self.try_prompt(prompt)?;
        self.to_feed = None;
        Ok(())
    }

    /// Emit the next greedy token: feed the previously emitted token (if
    /// any) through the group, then sample the fresh logits row. A caller
    /// can stop between any two steps — the emitted tokens form an exact
    /// prefix of the full generation, and the unfed final token costs no
    /// group step.
    pub fn try_generate_step(&mut self) -> Result<usize, CollectiveError> {
        if let Some(t) = self.to_feed {
            self.try_decode(t)?;
            self.to_feed = None;
        }
        let tok = argmax(self.last_logits());
        self.to_feed = Some(tok);
        Ok(tok)
    }

    /// Greedy generation with the exact [`FastSession`] semantics: process
    /// `prompt`, then emit `n_tokens` tokens (`n_tokens == 0` ingests the
    /// prompt and returns no tokens).
    ///
    /// Panics on any collective failure; the panic message carries the typed
    /// error plus any worker panic payloads collected before the deadline.
    ///
    /// [`FastSession`]: dsi_model::fast::FastSession
    pub fn generate(&mut self, prompt: &[usize], n_tokens: usize) -> Vec<usize> {
        if let Err(e) = self.try_begin(prompt) {
            self.panic_with_failures(e);
        }
        let mut out = Vec::with_capacity(n_tokens);
        for _ in 0..n_tokens {
            match self.try_generate_step() {
                Ok(tok) => out.push(tok),
                Err(e) => self.panic_with_failures(e),
            }
        }
        out
    }

    /// Join the dead group (with the deadline) and panic with the collected
    /// failure detail — the legacy surface's error report.
    fn panic_with_failures(&mut self, e: CollectiveError) -> ! {
        let deadline = self.comm.config().timeout + JOIN_GRACE;
        let _ = join_with_deadline(&mut self.workers, deadline);
        let mut msg = format!("tp_exec group failed: {e}");
        while let Ok(exit) = self.exits.try_recv() {
            if let Some(cause) = exit.cause {
                msg.push_str(&format!("; rank {}: {cause}", exit.rank));
            }
        }
        panic!("{msg}");
    }

    /// Tear the group down and salvage what survives. Clean sessions get a
    /// graceful shutdown rendezvous; failed ones are poisoned. Workers are
    /// joined with a deadline (collective timeout + grace) — a wedged thread
    /// is detached and reported [`RankFailureCause::Unjoined`], never
    /// hung on. Worker panic payloads come back in
    /// [`Dismantled::failures`].
    pub fn dismantle(mut self) -> Dismantled {
        let tp = self.model.tp;
        let clean = self.failed.is_none()
            && !self.inflight
            && !self.rank0_lost
            && !self.comm.is_poisoned();
        if clean {
            self.shared.cmd.store(CMD_SHUTDOWN, Ordering::Relaxed);
            if self.comm.try_barrier().is_err() {
                self.comm.poison();
            }
        } else {
            self.comm.poison();
        }
        let deadline = self.comm.config().timeout + JOIN_GRACE;
        let mut failures = Vec::new();
        if let Some(e) = self.failed.take() {
            failures.push(RankFailure { rank: e.rank, cause: RankFailureCause::Collective(e) });
        }
        let unjoined = join_with_deadline(&mut self.workers, deadline);
        let mut kv: Vec<Option<KvCache>> = (0..tp).map(|_| None).collect();
        let mut exited = vec![false; tp];
        while let Ok(exit) = self.exits.try_recv() {
            exited[exit.rank] = true;
            kv[exit.rank] = exit.kv;
            if let Some(cause) = exit.cause {
                failures.push(RankFailure { rank: exit.rank, cause });
            }
        }
        // A worker that finished just past the join deadline may still have
        // delivered its exit report (the channel send precedes the thread's
        // actual exit): it is not a lost rank, and its salvage stands. Only
        // ranks with no report are truly wedged.
        for rank in unjoined {
            if !exited[rank] {
                failures.push(RankFailure { rank, cause: RankFailureCause::Unjoined });
            }
        }
        if !self.rank0_lost {
            kv[0] = Some(std::mem::replace(
                &mut self.rank0.kv,
                KvCache::with_capacity(0, 1, 0),
            ));
        }
        self.done = true;
        Dismantled { kv, failures }
    }
}

/// Poll-join every handle until `deadline` elapses; handles that never
/// finish are detached (dropped) and their ranks returned. `JoinHandle` has
/// no native timed join, and blocking forever on a wedged worker is exactly
/// the hang this layer exists to prevent.
fn join_with_deadline(
    workers: &mut Vec<(usize, JoinHandle<()>)>,
    deadline: Duration,
) -> Vec<usize> {
    let start = std::time::Instant::now();
    while !workers.is_empty() && start.elapsed() < deadline {
        if workers.iter().all(|(_, h)| h.is_finished()) {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut unjoined = Vec::new();
    for (rank, handle) in workers.drain(..) {
        if handle.is_finished() {
            // The worker caught its own panic, so this join cannot panic.
            let _ = handle.join();
        } else {
            unjoined.push(rank);
        }
    }
    unjoined
}

impl Drop for TpSession {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        if self.inflight
            || self.failed.is_some()
            || self.comm.is_poisoned()
            || std::thread::panicking()
        {
            // A rank (possibly this one) is already dead: make sure every
            // spinning peer unblocks, then reap without double-panicking.
            self.comm.poison();
        } else {
            self.shared.cmd.store(CMD_SHUTDOWN, Ordering::Relaxed);
            // A worker can still die between the check above and the
            // rendezvous; the typed result means a failed shutdown barrier
            // is "group already dead", not a new panic out of Drop.
            if self.comm.try_barrier().is_err() {
                self.comm.poison();
            }
        }
        // Deadline join: Drop must never hang, even on a wedged worker.
        let deadline = self.comm.config().timeout + JOIN_GRACE;
        let _ = join_with_deadline(&mut self.workers, deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_model::fast::PackedModel;
    use dsi_model::zoo;
    use dsi_sim::fault::{FaultPlan, FaultSite, FaultSpec};

    fn model(layers: usize, seed: u64) -> GptModel {
        GptModel::random(zoo::tiny(layers), seed)
    }

    #[test]
    fn tp1_generate_matches_fast_session_exactly() {
        let m = model(2, 42);
        let pm = PackedModel::pack(&m);
        let want = pm.session(4).generate(&[1, 2, 3, 4], 8);
        let tpm = Arc::new(TpPackedModel::shard(&m, 1));
        let got = tpm.session(4).generate(&[1, 2, 3, 4], 8);
        assert_eq!(got, want);
    }

    #[test]
    fn tp2_and_tp4_generate_match_fast_session() {
        for seed in [7u64, 21] {
            let m = model(2, seed);
            let pm = PackedModel::pack(&m);
            let want = pm.session(4).generate(&[5, 6, 7], 10);
            for tp in [2usize, 4] {
                let tpm = Arc::new(TpPackedModel::shard(&m, tp));
                let got = tpm.session(4).generate(&[5, 6, 7], 10);
                assert_eq!(got, want, "tp {tp} seed {seed}");
            }
        }
    }

    #[test]
    fn zero_token_generate_returns_empty_after_ingesting_prompt() {
        // n_tokens == 0 must not emit a token; the prompt is still ingested
        // (context advances and last_logits covers its final position), so
        // a later generate continues exactly like an uninterrupted one.
        let m = model(2, 9);
        let pm = PackedModel::pack(&m);
        let mut fast = pm.session(4);
        assert!(fast.generate(&[1, 2], 0).is_empty());
        let want = fast.generate(&[3], 3);
        let tpm = Arc::new(TpPackedModel::shard(&m, 2));
        let mut sess = tpm.session(4);
        assert!(sess.generate(&[1, 2], 0).is_empty());
        assert_eq!(sess.context_len(), 2);
        assert_eq!(sess.last_logits().len(), tpm.config().vocab); // prompt row is live
        assert_eq!(sess.generate(&[3], 3), want);
    }

    #[test]
    fn session_reuse_continues_context() {
        // Two generate calls on one session share the KV context, exactly
        // like FastSession.
        let m = model(2, 9);
        let pm = PackedModel::pack(&m);
        let mut fast = pm.session(4);
        let f1 = fast.generate(&[1, 2], 3);
        let f2 = fast.generate(&[8, 9], 3);
        let tpm = Arc::new(TpPackedModel::shard(&m, 2));
        let mut sess = tpm.session(4);
        assert_eq!(sess.generate(&[1, 2], 3), f1);
        assert_eq!(sess.generate(&[8, 9], 3), f2);
    }

    #[test]
    fn last_logits_exposes_sampling_row() {
        let m = model(1, 3);
        let tpm = Arc::new(TpPackedModel::shard(&m, 2));
        let mut sess = tpm.session(2);
        let toks = sess.generate(&[1, 2], 1);
        assert_eq!(toks[0], argmax(sess.last_logits()));
        assert_eq!(sess.last_logits().len(), tpm.config().vocab);
    }

    #[test]
    fn worker_panic_poisons_instead_of_hanging() {
        // An out-of-vocab token makes every rank's forward assert; the
        // workers' catch_unwind must fail the group loudly (and Drop must
        // reap the dead threads without hanging).
        let m = model(1, 5);
        let tpm = Arc::new(TpPackedModel::shard(&m, 2));
        let mut sess = tpm.session(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sess.generate(&[1_000_000], 1);
        }));
        assert!(caught.is_err());
        drop(sess); // must not deadlock
    }

    #[test]
    fn indivisible_tp_rejected() {
        let m = model(1, 1);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            TpPackedModel::shard(&m, 3); // tiny() has 4 heads
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn clean_dismantle_salvages_every_kv_shard() {
        let m = model(2, 11);
        let tpm = Arc::new(TpPackedModel::shard(&m, 2));
        let mut sess = tpm.session(4);
        let out = sess.generate(&[1, 2, 3], 4);
        let ctx = 3 + out.len() - 1; // prompt rows + decode rows
        let d = sess.dismantle();
        assert!(d.failures.is_empty(), "{:?}", d.failures);
        assert_eq!(d.kv.len(), 2);
        for (r, kv) in d.kv.iter().enumerate() {
            let kv = kv.as_ref().unwrap_or_else(|| panic!("rank {r} kv lost"));
            assert_eq!(kv.context_len(), ctx, "rank {r}");
        }
    }

    #[test]
    fn worker_panic_payload_surfaces_in_dismantle() {
        // Script rank 1 to panic at a layer site: the step fails typed on
        // rank 0 (timeout or poison), and dismantle carries rank 1's panic
        // payload back to the caller.
        let m = model(2, 13);
        let tpm = Arc::new(TpPackedModel::shard(&m, 2));
        let plan = FaultPlan::new(vec![FaultSpec {
            rank: 1,
            site: FaultSite::Layer { token: 0, layer: 0 },
            kind: FaultKind::Panic,
        }]);
        let cfg = CommConfig {
            timeout: Duration::from_millis(500),
            injector: Some(Arc::new(plan.injector())),
            ..CommConfig::default()
        };
        let mut sess = tpm.session_with(4, cfg, None);
        let err = sess.try_prompt(&[1, 2]).expect_err("group must fail typed");
        assert!(
            matches!(
                err.kind,
                CollectiveErrorKind::Poisoned | CollectiveErrorKind::Timeout { .. }
            ),
            "{err}"
        );
        let d = sess.dismantle();
        assert!(d.kv[1].is_none(), "panicked rank's memory must not be salvaged");
        let payload = d.failures.iter().find_map(|f| match &f.cause {
            RankFailureCause::Panicked(p) if f.rank == 1 => Some(p.clone()),
            _ => None,
        });
        let payload = payload.expect("rank 1 panic payload must surface");
        assert!(payload.contains("injected fault"), "{payload}");
    }

    #[test]
    fn scripted_worker_exit_times_out_and_salvage_drops_its_kv() {
        // Rank 1 "crashes" (drops its arrival): rank 0 must observe a typed
        // timeout naming rank 1, and dismantle must salvage rank 0's KV but
        // not rank 1's.
        let m = model(1, 17);
        let tpm = Arc::new(TpPackedModel::shard(&m, 2));
        let plan = FaultPlan::new(vec![FaultSpec {
            rank: 1,
            site: FaultSite::Barrier { epoch: 0 },
            kind: FaultKind::Exit,
        }]);
        let cfg = CommConfig {
            timeout: Duration::from_millis(200),
            injector: Some(Arc::new(plan.injector())),
            ..CommConfig::default()
        };
        let mut sess = tpm.session_with(4, cfg, None);
        let err = sess.try_prompt(&[1, 2]).expect_err("lost rank must surface");
        match &err.kind {
            CollectiveErrorKind::Timeout { stalled } => assert_eq!(stalled, &[1], "{err}"),
            other => panic!("expected Timeout, got {other:?}"),
        }
        let d = sess.dismantle();
        assert!(d.kv[0].is_some(), "rank 0 survives");
        assert!(d.kv[1].is_none(), "crashed rank's memory is gone");
        assert!(
            d.failures.iter().any(|f| f.rank == 1
                && matches!(&f.cause, RankFailureCause::Collective(e)
                    if e.kind == CollectiveErrorKind::InjectedExit)),
            "{:?}",
            d.failures
        );
    }

    #[test]
    fn failed_session_refuses_further_steps_with_same_error() {
        let m = model(1, 19);
        let tpm = Arc::new(TpPackedModel::shard(&m, 2));
        let plan = FaultPlan::new(vec![FaultSpec {
            rank: 1,
            site: FaultSite::Barrier { epoch: 0 },
            kind: FaultKind::Exit,
        }]);
        let cfg = CommConfig {
            timeout: Duration::from_millis(200),
            injector: Some(Arc::new(plan.injector())),
            ..CommConfig::default()
        };
        let mut sess = tpm.session_with(4, cfg, None);
        let e1 = sess.try_prompt(&[1]).expect_err("first failure");
        let e2 = sess.try_decode(1).expect_err("dead session refuses");
        assert_eq!(e1, e2);
    }

    #[test]
    fn seeded_kv_resumes_decoding_token_identically() {
        // Decode a few tokens, dismantle, rebuild a session at the same tp
        // from the salvaged shards, and continue: the continuation must
        // match an uninterrupted run token-for-token.
        let m = model(2, 23);
        let tpm = Arc::new(TpPackedModel::shard(&m, 2));
        let mut uninterrupted = tpm.session(4);
        let want_a = uninterrupted.generate(&[3, 1, 4], 3);
        let want_b = uninterrupted.generate(&[want_a[2]], 4);

        let mut first = tpm.session(4);
        let got_a = first.generate(&[3, 1, 4], 3);
        assert_eq!(got_a, want_a);
        let d = first.dismantle();
        let kv: Vec<KvCache> = d.kv.into_iter().map(|k| k.unwrap()).collect();
        let mut second = tpm.session_with(4, CommConfig::default(), Some(kv));
        let got_b = second.generate(&[got_a[2]], 4);
        assert_eq!(got_b, want_b);
    }
}
