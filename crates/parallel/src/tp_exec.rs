//! Executed tensor parallelism: threaded TP ranks over the fast path.
//!
//! [`tp`](crate::tp) proves the Megatron sharding math (Sec. IV-A) but runs
//! every rank sequentially through the slow reference ops, so it can never
//! show a *speedup* — the whole point of Fig. 8's scaling story. This module
//! is the executed counterpart:
//!
//! * **Pack-time sharding** — [`TpPackedModel::shard`] splits every layer
//!   with [`tp::shard_layer`](crate::tp::shard_layer) (column-parallel
//!   QKV/FF1, row-parallel W_o/FF2, heads contiguous per rank) and packs
//!   each shard into the panel layout of `dsi_kernels::blocked::PackedB`,
//!   exactly like `PackedModel` packs the full weights. The output biases
//!   are kept *full* and applied once after the all-reduce (the functional
//!   path instead pre-divides them by `tp`; summing `tp` rounded copies of
//!   `b/tp` is not bit-stable, applying `b` once is).
//! * **One OS thread per rank** — [`TpSession`] runs rank 0 inline on the
//!   caller's thread and spawns ranks `1..tp` as worker threads, each with
//!   its own scratch arena and KV shard (`h/tp` columns — the KV memory
//!   saving of Sec. IV-A). Workers are pinned to distinct cores when the
//!   host has enough of them (best-effort `sched_setaffinity`).
//! * **Shared-memory collectives** — the two per-layer all-reduces run on
//!   [`dsi_sim::shmem::ShmRank::allreduce_sum`]: a sense-reversing barrier
//!   plus a chunked in-place reduce over published buffer pointers. No
//!   per-token allocation, no full-buffer clones, reduction in rank order.
//! * **Lock-step command protocol** — the driver publishes a command
//!   (prompt / decode / shutdown) and crosses the group barrier; every rank
//!   then runs the same forward step and meets again at the next step
//!   barrier. The barrier's release/acquire chain makes the command and the
//!   decoded token visible without locks in the steady state.
//!
//! Greedy decode is **token-identical** to the single-thread
//! [`FastSession`]: column shards of a panel GEMM produce bit-identical
//! columns (each output column has its own accumulator chain), attention
//! heads are disjoint, and the row-parallel partial sums only reassociate
//! the same f32 additions the fused epilogue performs — the property suite
//! asserts exact token equality across random configs.
//!
//! A rank that panics poisons the group barrier (via a drop guard), so the
//! remaining ranks fail loudly instead of spinning on a dead rendezvous.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use dsi_kernels::blocked::{self, PackedB};
use dsi_kernels::fused;
use dsi_model::config::GptConfig;
use dsi_model::fast::argmax;
use dsi_model::reference::{GptModel, KvCache};
use dsi_kernels::tensor::Tensor;
use dsi_sim::shmem::{ShmComm, ShmPoisoner, ShmRank};

use crate::tp::shard_layer;

/// One rank's shard of one layer, in execution layout (packed GEMM panels,
/// bias vectors as plain slices). Mirrors `dsi_model::fast::PackedLayer`,
/// but with `w_qkv`/`w_ff1` column-sharded, `w_o`/`w_ff2` row-sharded, and
/// the two output biases full-width (applied once post-reduce).
#[derive(Debug)]
pub struct TpPackedShard {
    pub ln1_g: Vec<f32>,
    pub ln1_b: Vec<f32>,
    /// `[h, 3h/tp]` column shard (this rank's q|k|v columns), packed.
    pub w_qkv: PackedB,
    pub b_qkv: Vec<f32>,
    /// `[h/tp, h]` row shard of the output projection, packed.
    pub w_o: PackedB,
    /// Full `[h]` output bias, applied once after the all-reduce.
    pub b_o: Vec<f32>,
    pub ln2_g: Vec<f32>,
    pub ln2_b: Vec<f32>,
    /// `[h, 4h/tp]` column shard, packed.
    pub w_ff1: PackedB,
    pub b_ff1: Vec<f32>,
    /// `[4h/tp, h]` row shard, packed.
    pub w_ff2: PackedB,
    /// Full `[h]` FF2 bias, applied once after the all-reduce.
    pub b_ff2: Vec<f32>,
}

/// A model sharded and packed for `tp` executed ranks. Owns everything the
/// rank threads touch (replicated embeddings, final layer-norm, per-rank
/// packed shards), so it can sit behind an `Arc` shared across threads.
#[derive(Debug)]
pub struct TpPackedModel {
    config: GptConfig,
    tp: usize,
    /// `shards[rank][layer]`.
    shards: Vec<Vec<TpPackedShard>>,
    /// Replicated `[vocab, h]` token embedding (also the logits operand).
    wte: Tensor,
    /// Replicated `[max_seq, h]` position embedding.
    wpe: Tensor,
    lnf_g: Vec<f32>,
    lnf_b: Vec<f32>,
    /// `wteᵀ` panel-packed as the `[h, vocab]` logits projection (rank 0
    /// computes logits; the projection is not sharded).
    wte_packed: PackedB,
}

impl TpPackedModel {
    /// Shard `model` across `tp` ranks and pack every shard. Requires
    /// `tp | heads` (and therefore `tp | hidden`).
    pub fn shard(model: &GptModel, tp: usize) -> Self {
        let c = model.config.clone();
        let mut shards: Vec<Vec<TpPackedShard>> =
            (0..tp).map(|_| Vec::with_capacity(c.layers)).collect();
        for lw in &model.layers {
            for (r, s) in shard_layer(lw, c.heads, tp).iter().enumerate() {
                shards[r].push(TpPackedShard {
                    ln1_g: s.ln1_g.data().to_vec(),
                    ln1_b: s.ln1_b.data().to_vec(),
                    w_qkv: PackedB::pack(&s.w_qkv),
                    b_qkv: s.b_qkv.data().to_vec(),
                    w_o: PackedB::pack(&s.w_o),
                    b_o: lw.b_o.data().to_vec(),
                    ln2_g: s.ln2_g.data().to_vec(),
                    ln2_b: s.ln2_b.data().to_vec(),
                    w_ff1: PackedB::pack(&s.w_ff1),
                    b_ff1: s.b_ff1.data().to_vec(),
                    w_ff2: PackedB::pack(&s.w_ff2),
                    b_ff2: lw.b_ff2.data().to_vec(),
                });
            }
        }
        TpPackedModel {
            tp,
            shards,
            wte: model.wte.clone(),
            wpe: model.wpe.clone(),
            lnf_g: model.lnf_g.data().to_vec(),
            lnf_b: model.lnf_b.data().to_vec(),
            wte_packed: PackedB::from_pre_transposed(&model.wte),
            config: c,
        }
    }

    pub fn config(&self) -> &GptConfig {
        &self.config
    }

    pub fn tp(&self) -> usize {
        self.tp
    }

    /// Start a decode session: spawns the `tp - 1` worker rank threads and
    /// sizes every rank's scratch/KV for `max_prompt` prompt tokens plus
    /// generation up to the model's `max_seq`.
    pub fn session(self: &Arc<Self>, max_prompt: usize) -> TpSession {
        TpSession::new(Arc::clone(self), max_prompt)
    }
}

// --- command protocol -------------------------------------------------------

const CMD_PROMPT: u8 = 1;
const CMD_DECODE: u8 = 2;
const CMD_SHUTDOWN: u8 = 3;

/// Step descriptor published by the driver before each step barrier and read
/// by every worker after it. The barrier's release/acquire chain orders the
/// plain atomic stores against the reads, so the steady-state decode step
/// touches no locks (the mutex only guards the prompt hand-off).
#[derive(Debug)]
struct TpShared {
    cmd: AtomicU8,
    /// The token id to decode (valid when `cmd == CMD_DECODE`).
    token: AtomicUsize,
    /// The prompt to ingest (valid when `cmd == CMD_PROMPT`).
    prompt: Mutex<Vec<usize>>,
}

/// Poisons the group barrier if its rank thread unwinds, so peer ranks
/// panic out of their spin loops instead of hanging on a dead rendezvous.
struct PoisonGuard(ShmPoisoner);

impl Drop for PoisonGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

// --- per-rank execution state ----------------------------------------------

/// One rank's private buffers: KV shard plus a scratch arena mirroring
/// `dsi_model::fast::Scratch`, sized once at session start so the
/// steady-state decode loop performs zero heap allocations (alloc-guard
/// tested).
struct RankState {
    rank: usize,
    /// Max prompt rows the scratch is sized for.
    m_max: usize,
    /// KV shard: `h/tp` columns per layer.
    kv: KvCache,
    /// `[m, h]` replicated activations.
    x: Vec<f32>,
    /// `[h]` layer-norm row (interior of the fused regions).
    normed: Vec<f32>,
    /// `[m, 3h/tp]` sharded QKV output.
    qkv: Vec<f32>,
    /// `[m, h/tp]` query rows gathered for multi-row prompts.
    q: Vec<f32>,
    /// `[m, h/tp]` attention context over this rank's heads.
    attn: Vec<f32>,
    /// `[m, h]` row-parallel partial output; the all-reduce buffer.
    part: Vec<f32>,
    /// `[m, 4h/tp]` sharded FF1 activation.
    ff: Vec<f32>,
    /// `[m, vocab]` logits (rank 0 only; empty on workers).
    logits: Vec<f32>,
    /// Workers' private copy of the prompt (filled under the hand-off lock,
    /// released before compute starts so ranks never serialize on it).
    ids_buf: Vec<usize>,
    /// Row count of the most recent forward (selects the sampling row).
    last_m: usize,
}

impl RankState {
    fn new(model: &TpPackedModel, rank: usize, max_prompt: usize) -> Self {
        let c = &model.config;
        let m = max_prompt.max(1);
        let hs = c.hidden / model.tp;
        RankState {
            rank,
            m_max: m,
            kv: KvCache::with_capacity(c.layers, hs, c.max_seq),
            x: vec![0.0; m * c.hidden],
            normed: vec![0.0; c.hidden],
            qkv: vec![0.0; m * 3 * hs],
            q: vec![0.0; m * hs],
            attn: vec![0.0; m * hs],
            part: vec![0.0; m * c.hidden],
            ff: vec![0.0; m * 4 * hs],
            logits: if rank == 0 { vec![0.0; m * c.vocab] } else { Vec::new() },
            ids_buf: Vec::with_capacity(m),
            last_m: 0,
        }
    }

    /// Forward `ids` through this rank's layer shards, meeting the group at
    /// the two per-layer all-reduces. Every rank computes the full `[m, h]`
    /// activations (replicated, as in Megatron) but only its own slice of
    /// heads / FF neurons; rank 0 additionally computes logits.
    fn forward(&mut self, model: &TpPackedModel, comm: &mut ShmRank, ids: &[usize]) {
        let c = &model.config;
        let (h, tp) = (c.hidden, model.tp);
        let hs = h / tp;
        let heads = c.heads / tp;
        let m = ids.len();
        let offset = self.kv.context_len();
        assert!(m <= self.m_max, "step of {m} rows exceeds scratch capacity");
        assert!(offset + m <= c.max_seq, "sequence exceeds max_seq");
        let s = self;

        // Replicated embedding: token row + position row.
        for (i, &id) in ids.iter().enumerate() {
            assert!(id < c.vocab, "token id {id} out of vocab");
            let te = model.wte.row(id);
            let pe = model.wpe.row(offset + i);
            for (x, (&t, &p)) in s.x[i * h..(i + 1) * h].iter_mut().zip(te.iter().zip(pe)) {
                *x = t + p;
            }
        }

        for (l, pl) in model.shards[s.rank].iter().enumerate() {
            let kv = &mut s.kv.layers[l];
            // Region 1: layer-norm → sharded QKV GEMM → bias.
            fused::ln_matmul_bias_into(
                &s.x[..m * h], m, &pl.ln1_g, &pl.ln1_b, 1e-5,
                &pl.w_qkv, &pl.b_qkv, &mut s.normed, &mut s.qkv[..m * 3 * hs],
            );
            // KV shard append in place (this rank's heads only).
            for i in 0..m {
                let row = &s.qkv[i * 3 * hs..(i + 1) * 3 * hs];
                kv.append_row_slices(&row[hs..2 * hs], &row[2 * hs..3 * hs]);
            }
            // Region 2: streaming-softmax attention over this rank's heads.
            if m == 1 {
                fused::attention_into(
                    &s.qkv[..hs], 1, &kv.k, &kv.v, heads, offset, &mut s.attn[..hs],
                );
            } else {
                for i in 0..m {
                    s.q[i * hs..(i + 1) * hs]
                        .copy_from_slice(&s.qkv[i * 3 * hs..i * 3 * hs + hs]);
                }
                fused::attention_into(
                    &s.q[..m * hs], m, &kv.k, &kv.v, heads, offset, &mut s.attn[..m * hs],
                );
            }
            // Region 3: row-parallel output projection → all-reduce →
            // bias + residual (applied once, post-reduce).
            blocked::matmul_into(&s.attn[..m * hs], m, &pl.w_o, &mut s.part[..m * h]);
            comm.allreduce_sum(&mut s.part[..m * h]);
            fused::bias_residual_inplace(&mut s.part[..m * h], &pl.b_o, &s.x[..m * h]);
            std::mem::swap(&mut s.x, &mut s.part);
            // Region 4: layer-norm → sharded FF1 GEMM → bias → GeLU.
            fused::ln_matmul_bias_gelu_into(
                &s.x[..m * h], m, &pl.ln2_g, &pl.ln2_b, 1e-5,
                &pl.w_ff1, &pl.b_ff1, &mut s.normed, &mut s.ff[..m * 4 * hs],
            );
            // Region 5: row-parallel FF2 → all-reduce → bias + residual.
            blocked::matmul_into(&s.ff[..m * 4 * hs], m, &pl.w_ff2, &mut s.part[..m * h]);
            comm.allreduce_sum(&mut s.part[..m * h]);
            fused::bias_residual_inplace(&mut s.part[..m * h], &pl.b_ff2, &s.x[..m * h]);
            std::mem::swap(&mut s.x, &mut s.part);
        }

        // Logits on rank 0 only: final layer-norm + tied-embedding GEMM
        // (replicated activations make the projection rank-local).
        if s.rank == 0 {
            for i in 0..m {
                fused::layernorm_row_into(
                    &s.x[i * h..(i + 1) * h], &model.lnf_g, &model.lnf_b, 1e-5, &mut s.normed,
                );
                blocked::matmul_into(
                    &s.normed, 1, &model.wte_packed,
                    &mut s.logits[i * c.vocab..(i + 1) * c.vocab],
                );
            }
        }
        s.last_m = m;
    }
}

// --- thread pinning ---------------------------------------------------------

/// Best-effort pin of the calling thread to `cpu` (Linux/x86-64 only; other
/// targets report `false`). Uses the raw `sched_setaffinity` syscall — the
/// repo links no libc crate.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn pin_current_thread(cpu: usize) -> bool {
    let mut mask = [0u64; 16]; // 1024-cpu affinity set
    if cpu >= mask.len() * 64 {
        return false;
    }
    mask[cpu / 64] = 1u64 << (cpu % 64);
    let ret: isize;
    // Raw syscall 203 (sched_setaffinity) on x86-64 Linux with pid 0
    // (= the calling thread), the size of, and a pointer to, a stack-owned
    // cpu_set_t bitmask that outlives the call.
    //
    // SAFETY: the kernel only reads the mask and mutates scheduler state;
    // registers follow the syscall ABI (rax in/out, rdi/rsi/rdx arguments,
    // rcx/r11 clobbered), and `nostack` holds — no stack red-zone use.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret,
            in("rdi") 0usize,
            in("rsi") std::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

/// Non-Linux / non-x86-64 fallback: pinning unavailable.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub fn pin_current_thread(_cpu: usize) -> bool {
    false
}

// --- the session ------------------------------------------------------------

/// A threaded tensor-parallel decode session with the same `generate`
/// surface as [`dsi_model::fast::FastSession`]. Rank 0 runs inline on the
/// caller's thread; ranks `1..tp` run on their own (best-effort pinned)
/// OS threads and rendezvous at the shared-memory barrier each step.
pub struct TpSession {
    model: Arc<TpPackedModel>,
    shared: Arc<TpShared>,
    comm: ShmRank,
    rank0: RankState,
    workers: Vec<JoinHandle<()>>,
    /// True between publishing a step command and rank 0 completing its
    /// forward. If rank 0 unwinds mid-step, the workers may not have read
    /// the command yet — a graceful shutdown rendezvous would race the
    /// in-flight command, so `Drop` must poison instead.
    inflight: bool,
}

impl TpSession {
    pub fn new(model: Arc<TpPackedModel>, max_prompt: usize) -> Self {
        let tp = model.tp;
        let shared = Arc::new(TpShared {
            cmd: AtomicU8::new(0),
            token: AtomicUsize::new(0),
            prompt: Mutex::new(Vec::with_capacity(max_prompt.max(1))),
        });
        let mut ranks = ShmComm::create(tp);
        // Pin only when the host actually has a core per rank; on smaller
        // hosts the barrier's yield path keeps correctness via the scheduler.
        let pin = std::thread::available_parallelism().is_ok_and(|n| n.get() >= tp);
        let workers = ranks
            .drain(1..)
            .map(|mut rank_comm| {
                let model = Arc::clone(&model);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let _guard = PoisonGuard(rank_comm.poisoner());
                    let r = rank_comm.rank();
                    if pin {
                        pin_current_thread(r);
                    }
                    let mut state = RankState::new(&model, r, max_prompt);
                    loop {
                        // Step barrier: the driver has published the command.
                        rank_comm.barrier();
                        match shared.cmd.load(Ordering::Relaxed) {
                            CMD_SHUTDOWN => break,
                            CMD_PROMPT => {
                                {
                                    let p = shared.prompt.lock().unwrap();
                                    state.ids_buf.clear();
                                    state.ids_buf.extend_from_slice(&p);
                                } // drop the guard before compute
                                let ids = std::mem::take(&mut state.ids_buf);
                                state.forward(&model, &mut rank_comm, &ids);
                                state.ids_buf = ids;
                            }
                            CMD_DECODE => {
                                let id = shared.token.load(Ordering::Relaxed);
                                state.forward(&model, &mut rank_comm, &[id]);
                            }
                            other => panic!("tp_exec: invalid step command {other}"),
                        }
                    }
                })
            })
            .collect();
        let comm = ranks.pop().expect("rank 0 handle");
        let rank0 = RankState::new(&model, 0, max_prompt);
        TpSession { model, shared, comm, rank0, workers, inflight: false }
    }

    pub fn tp(&self) -> usize {
        self.model.tp
    }

    /// Context length consumed so far.
    pub fn context_len(&self) -> usize {
        self.rank0.kv.context_len()
    }

    /// The `[vocab]` logits row of the most recently forwarded position
    /// (same contract as [`FastSession::last_logits`]).
    ///
    /// [`FastSession::last_logits`]: dsi_model::fast::FastSession::last_logits
    pub fn last_logits(&self) -> &[f32] {
        assert!(self.rank0.last_m > 0, "last_logits() before any step");
        let vocab = self.model.config.vocab;
        &self.rank0.logits[(self.rank0.last_m - 1) * vocab..self.rank0.last_m * vocab]
    }

    /// Run one group step: publish the command, cross the step barrier, and
    /// execute rank 0's share inline.
    fn step(&mut self, cmd: u8, ids: &[usize]) {
        assert!(
            !self.comm.is_poisoned(),
            "tp_exec: a rank panicked; the session is dead"
        );
        self.inflight = true;
        self.shared.cmd.store(cmd, Ordering::Relaxed);
        self.comm.barrier();
        self.rank0.forward(&self.model, &mut self.comm, ids);
        // The workers have read the command (they joined this step's
        // all-reduces), so a later shutdown store cannot race it.
        self.inflight = false;
    }

    /// Greedy generation with the exact [`FastSession`] semantics: process
    /// `prompt`, then emit `n_tokens` tokens.
    ///
    /// [`FastSession`]: dsi_model::fast::FastSession
    pub fn generate(&mut self, prompt: &[usize], n_tokens: usize) -> Vec<usize> {
        assert!(!prompt.is_empty(), "empty prompt");
        assert!(prompt.len() <= self.rank0.m_max, "prompt exceeds session max_prompt");
        {
            let mut p = self.shared.prompt.lock().unwrap();
            p.clear();
            p.extend_from_slice(prompt);
        }
        self.step(CMD_PROMPT, prompt);
        let mut next = argmax(self.last_logits());
        let mut out = Vec::with_capacity(n_tokens);
        out.push(next);
        for _ in 1..n_tokens {
            self.shared.token.store(next, Ordering::Relaxed);
            self.step(CMD_DECODE, &[next]);
            next = argmax(self.last_logits());
            out.push(next);
        }
        out
    }
}

impl Drop for TpSession {
    fn drop(&mut self) {
        if self.inflight || self.comm.is_poisoned() || std::thread::panicking() {
            // A rank (possibly this one) is already dead: make sure every
            // spinning peer unblocks, then reap without double-panicking.
            self.comm.poison();
        } else {
            self.shared.cmd.store(CMD_SHUTDOWN, Ordering::Relaxed);
            // A worker can still die between the check above and the
            // rendezvous; a poisoned shutdown barrier then means "group
            // already dead", not a new failure worth panicking out of Drop.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.comm.barrier();
            }));
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_model::fast::PackedModel;
    use dsi_model::zoo;

    fn model(layers: usize, seed: u64) -> GptModel {
        GptModel::random(zoo::tiny(layers), seed)
    }

    #[test]
    fn tp1_generate_matches_fast_session_exactly() {
        let m = model(2, 42);
        let pm = PackedModel::pack(&m);
        let want = pm.session(4).generate(&[1, 2, 3, 4], 8);
        let tpm = Arc::new(TpPackedModel::shard(&m, 1));
        let got = tpm.session(4).generate(&[1, 2, 3, 4], 8);
        assert_eq!(got, want);
    }

    #[test]
    fn tp2_and_tp4_generate_match_fast_session() {
        for seed in [7u64, 21] {
            let m = model(2, seed);
            let pm = PackedModel::pack(&m);
            let want = pm.session(4).generate(&[5, 6, 7], 10);
            for tp in [2usize, 4] {
                let tpm = Arc::new(TpPackedModel::shard(&m, tp));
                let got = tpm.session(4).generate(&[5, 6, 7], 10);
                assert_eq!(got, want, "tp {tp} seed {seed}");
            }
        }
    }

    #[test]
    fn session_reuse_continues_context() {
        // Two generate calls on one session share the KV context, exactly
        // like FastSession.
        let m = model(2, 9);
        let pm = PackedModel::pack(&m);
        let mut fast = pm.session(4);
        let f1 = fast.generate(&[1, 2], 3);
        let f2 = fast.generate(&[8, 9], 3);
        let tpm = Arc::new(TpPackedModel::shard(&m, 2));
        let mut sess = tpm.session(4);
        assert_eq!(sess.generate(&[1, 2], 3), f1);
        assert_eq!(sess.generate(&[8, 9], 3), f2);
    }

    #[test]
    fn last_logits_exposes_sampling_row() {
        let m = model(1, 3);
        let tpm = Arc::new(TpPackedModel::shard(&m, 2));
        let mut sess = tpm.session(2);
        let toks = sess.generate(&[1, 2], 1);
        assert_eq!(toks[0], argmax(sess.last_logits()));
        assert_eq!(sess.last_logits().len(), tpm.config().vocab);
    }

    #[test]
    fn worker_panic_poisons_instead_of_hanging() {
        // An out-of-vocab token makes every rank's forward assert; the
        // workers' poison guards must fail the group loudly (and Drop must
        // reap the dead threads without hanging).
        let m = model(1, 5);
        let tpm = Arc::new(TpPackedModel::shard(&m, 2));
        let mut sess = tpm.session(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sess.generate(&[1_000_000], 1);
        }));
        assert!(caught.is_err());
        drop(sess); // must not deadlock
    }

    #[test]
    fn indivisible_tp_rejected() {
        let m = model(1, 1);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            TpPackedModel::shard(&m, 3); // tiny() has 4 heads
        }));
        assert!(caught.is_err());
    }
}
