//! Chaos harness: deterministic fault sweeps over the executed TP engine.
//!
//! Every test injects scripted faults (via `dsi_sim::fault::FaultPlan`) into
//! a supervised decode and asserts the issue's acceptance criterion: for
//! every fault kind × injection point, decoding either **recovers with
//! tokens identical to the fault-free run** or returns a **typed error** —
//! never a hang (CI runs this file under a wall-clock timeout) and never an
//! unhandled panic for scripted faults.

use std::sync::Arc;
use std::time::Duration;

use dsi_model::reference::GptModel;
use dsi_model::zoo;
use dsi_parallel::supervisor::{FtConfig, FtSession, RetryPolicy};
use dsi_parallel::tp_exec::TpPackedModel;
use dsi_sim::fault::{FaultKind, FaultPlan, FaultSite, FaultSpec};
use dsi_sim::shmem::CommConfig;

const PROMPT: [usize; 3] = [1, 2, 3];
const N_TOKENS: usize = 6;
const LAYERS: usize = 2;

fn model(seed: u64) -> Arc<GptModel> {
    Arc::new(GptModel::random(zoo::tiny(LAYERS), seed))
}

/// The fault-free reference decode (single rank: no collectives, no faults).
fn baseline(m: &Arc<GptModel>) -> Vec<usize> {
    let tpm = Arc::new(TpPackedModel::shard(m, 1));
    tpm.session(PROMPT.len()).generate(&PROMPT, N_TOKENS)
}

fn ft_config(tp: usize, plan: FaultPlan, checksum: bool) -> FtConfig {
    FtConfig {
        tp,
        comm: CommConfig {
            timeout: Duration::from_millis(300),
            checksum,
            injector: Some(Arc::new(plan.injector())),
        },
        // Generous budget: the sweep asserts *recovery*, budget exhaustion
        // has its own dedicated test in the supervisor module.
        retry: RetryPolicy { max_retries: 16, backoff_ms: 1 },
    }
}

/// Run one scripted scenario and enforce the acceptance criterion.
fn run_scenario(m: &Arc<GptModel>, want: &[usize], tp: usize, plan: FaultPlan, label: &str) {
    let checksum = plan.specs.iter().any(|s| s.kind == FaultKind::Corrupt);
    let mut ft = FtSession::new(Arc::clone(m), PROMPT.len(), ft_config(tp, plan, checksum));
    match ft.generate(&PROMPT, N_TOKENS) {
        Ok(got) => assert_eq!(got, want, "{label}: recovered tokens must match fault-free run"),
        Err(e) => panic!("{label}: generous retry budget must recover, got typed error {e}"),
    }
}

/// Every fault kind at every injection-site class: each must be survived
/// with token-identical output.
#[test]
fn sweep_fault_kinds_across_injection_sites() {
    let m = model(101);
    let want = baseline(&m);
    // Barrier epochs: the prompt step crosses 1 + layers*2*3 barriers, so
    // epoch 3 is mid-prompt; epoch 15 lands in decode steps.
    let sites = [
        ("barrier/prompt", FaultSite::Barrier { epoch: 3 }),
        ("barrier/decode", FaultSite::Barrier { epoch: 15 }),
        ("reduce/prompt", FaultSite::Reduce { epoch: 1 }),
        ("reduce/decode", FaultSite::Reduce { epoch: 14 }),
        ("layer/prompt", FaultSite::Layer { token: 1, layer: 0 }),
        ("layer/decode", FaultSite::Layer { token: 4, layer: 1 }),
    ];
    let kinds = [
        ("stall", FaultKind::Stall { millis: 1200 }),
        ("exit", FaultKind::Exit),
        ("panic", FaultKind::Panic),
        ("corrupt", FaultKind::Corrupt),
    ];
    for (site_name, site) in sites {
        for (kind_name, kind) in kinds {
            // Corrupt only has meaning at a reduce site (it flips a bit of
            // the owned reduce-scatter chunk).
            if kind == FaultKind::Corrupt && !matches!(site, FaultSite::Reduce { .. }) {
                continue;
            }
            // Alternate the victim rank so both the driver (rank 0) and a
            // worker exercise each path.
            for rank in [0usize, 1] {
                // A scripted Exit on rank 0 at a barrier/reduce site aborts
                // the *driver*; the supervisor treats rank 0's memory as
                // lost and degrades — still covered, but Exit-at-layer
                // already models it; skip the redundant slow cases.
                let plan = FaultPlan::new(vec![FaultSpec { rank, site, kind }]);
                run_scenario(&m, &want, 2, plan, &format!("{kind_name}@{site_name} rank{rank}"));
            }
        }
    }
}

/// Seed-driven random fault storms at tp=4: whatever the script throws at
/// the group, decode must come back token-identical (the retry budget is
/// sized above any plan the sweep generates).
#[test]
fn sweep_random_fault_plans() {
    let m = model(202);
    let want = baseline(&m);
    for seed in [7u64, 19, 23, 31] {
        // Short stalls only matter if they cross the timeout; both happen
        // across these seeds. max_epoch covers prompt + several decode
        // steps; layer sites cover every layer and fed position.
        let plan = FaultPlan::random(seed, 3, 4, 40, LAYERS, PROMPT.len() + N_TOKENS);
        run_scenario(&m, &want, 4, plan, &format!("random seed {seed}"));
    }
}

/// Determinism of the harness itself: the same seed must produce the same
/// script, the same recovery path, and the same tokens.
#[test]
fn chaos_runs_are_seed_deterministic() {
    let m = model(303);
    let run = |seed: u64| {
        let plan = FaultPlan::random(seed, 2, 2, 30, LAYERS, PROMPT.len() + N_TOKENS);
        let mut ft = FtSession::new(Arc::clone(&m), PROMPT.len(), ft_config(2, plan, true));
        let out = ft.generate(&PROMPT, N_TOKENS).expect("recovers");
        (out, ft.tp(), ft.report().rebuilds, ft.report().degradations.clone())
    };
    let a = run(11);
    let b = run(11);
    assert_eq!(a, b, "same seed must replay the same recovery");
}

/// Dropping a session whose workers already died must not wedge: the Drop
/// path joins with a deadline. (The fault leaves the group poisoned with a
/// dead worker; a hang here would trip the CI wall-clock guard.)
#[test]
fn drop_after_worker_death_does_not_wedge() {
    let m = model(404);
    let tpm = Arc::new(TpPackedModel::shard(&m, 2));
    let plan = FaultPlan::new(vec![FaultSpec {
        rank: 1,
        site: FaultSite::Layer { token: 0, layer: 0 },
        kind: FaultKind::Panic,
    }]);
    let cfg = CommConfig {
        timeout: Duration::from_millis(200),
        injector: Some(Arc::new(plan.injector())),
        ..CommConfig::default()
    };
    let mut sess = tpm.session_with(PROMPT.len(), cfg, None);
    let _ = sess.try_prompt(&PROMPT).expect_err("worker panic must fail the step");
    drop(sess); // must return promptly (deadline join), not hang
}

/// A fault in the *middle* of generation must preserve the already-emitted
/// prefix and produce an identical suffix after recovery.
#[test]
fn mid_stream_fault_preserves_prefix_and_suffix() {
    let m = model(505);
    let want = baseline(&m);
    // Position PROMPT.len()+2 is decoded well into the stream.
    let plan = FaultPlan::new(vec![FaultSpec {
        rank: 1,
        site: FaultSite::Layer { token: PROMPT.len() + 2, layer: 1 },
        kind: FaultKind::Exit,
    }]);
    let mut ft = FtSession::new(Arc::clone(&m), PROMPT.len(), ft_config(2, plan, false));
    let got = ft.generate(&PROMPT, N_TOKENS).expect("recovers");
    assert_eq!(got, want);
    assert_eq!(ft.tp(), 1, "a crashed worker degrades the group");
    assert!(ft.report().rebuilds >= 1);
}
