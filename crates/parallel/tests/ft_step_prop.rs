//! Property tests for the supervisor's step-wise generation surface: the
//! contract the serving runtime (`dsi-serve`) builds on. Over random model
//! shapes × seeds × TP degrees:
//!
//! 1. `begin` + N × `generate_step` emits exactly the tokens of the
//!    one-shot `generate` — the lazy token-feeding refactor must be
//!    invisible at every degree;
//! 2. cancelling at a random step yields the exact token prefix, leaves
//!    the session healthy, and a post-`reset` generation on a fresh prompt
//!    is again oracle-identical — the property that makes watchdog and
//!    drain cancellations safe.

use dsi_parallel::supervisor::{FtConfig, FtSession, GenError, StepAbort, StepCtl, StepError};
use dsi_model::reference::GptModel;
use dsi_model::GptConfig;
use dsi_sim::clock::CancelToken;
use proptest::prelude::*;
use std::sync::Arc;

fn config(layers: usize, heads: usize) -> GptConfig {
    GptConfig {
        name: format!("ft-prop-l{layers}-h{heads}"),
        hidden: heads * 16,
        layers,
        heads,
        vocab: 61,
        max_seq: 32,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn stepwise_generation_matches_one_shot(
        seed in 0u64..10_000,
        layers in 1usize..4,
        heads_sel in 0usize..2,
        prompt_len in 1usize..5,
    ) {
        let heads = [2usize, 4][heads_sel];
        let model = Arc::new(GptModel::random(config(layers, heads), seed));
        let prompt: Vec<usize> = (0..prompt_len).map(|i| (seed as usize + i) % 61).collect();
        let n = 8;
        for tp in [1usize, 2, 4].into_iter().filter(|&tp| heads.is_multiple_of(tp)) {
            let mut oracle = FtSession::new(Arc::clone(&model), prompt.len(), FtConfig::new(tp));
            let want = oracle.generate(&prompt, n).unwrap();

            let mut sess = FtSession::new(Arc::clone(&model), prompt.len(), FtConfig::new(tp));
            sess.begin(&prompt).unwrap();
            let got: Vec<usize> = (0..n).map(|_| sess.generate_step().unwrap()).collect();
            prop_assert_eq!(
                &got, &want,
                "step-wise diverged (tp={}, layers={}, heads={}, seed={})",
                tp, layers, heads, seed
            );
        }
    }

    #[test]
    fn cancellation_yields_exact_prefix_and_session_is_reusable(
        seed in 0u64..10_000,
        layers in 1usize..3,
        heads_sel in 0usize..2,
        cancel_at in 0usize..8,
    ) {
        let heads = [2usize, 4][heads_sel];
        let model = Arc::new(GptModel::random(config(layers, heads), seed));
        let prompt = [1usize, 2, 3];
        let n = 8;
        for tp in [1usize, 2].into_iter().filter(|&tp| heads.is_multiple_of(tp)) {
            let mut oracle = FtSession::new(Arc::clone(&model), prompt.len(), FtConfig::new(tp));
            let want = oracle.generate(&prompt, n).unwrap();

            // Cancel after `cancel_at` emitted tokens: run bounded
            // generation with a token that flips mid-stream by driving the
            // steps manually.
            let mut sess = FtSession::new(Arc::clone(&model), prompt.len(), FtConfig::new(tp));
            let cancel = CancelToken::new();
            let ctl = StepCtl { cancel: Some(&cancel), clock: None, deadline_ns: None, progress_ns: None };
            sess.begin_ctl(&prompt, &ctl).unwrap();
            let mut partial = Vec::new();
            for _ in 0..cancel_at {
                partial.push(sess.generate_step_ctl(&ctl).unwrap());
            }
            cancel.cancel();
            match sess.generate_step_ctl(&ctl) {
                Err(StepError::Aborted(StepAbort::Cancelled)) => {}
                other => prop_assert!(false, "expected cancellation, got {:?}", other),
            }
            prop_assert_eq!(&partial[..], &want[..cancel_at], "prefix diverged before cancel");

            // The same property through the bounded surface: partial is the
            // exact prefix.
            let mut sess2 = FtSession::new(Arc::clone(&model), prompt.len(), FtConfig::new(tp));
            let cancel2 = CancelToken::new();
            if cancel_at == 0 {
                cancel2.cancel();
            }
            let ctl2 = StepCtl { cancel: Some(&cancel2), clock: None, deadline_ns: None, progress_ns: None };
            // (With a pre-set token the bounded run aborts in begin.)
            match sess2.generate_bounded(&prompt, n, &ctl2) {
                Ok(tokens) => prop_assert_eq!(&tokens, &want),
                Err(GenError { abort: StepError::Aborted(StepAbort::Cancelled), partial }) => {
                    prop_assert!(partial.is_empty());
                }
                Err(e) => prop_assert!(false, "unexpected error: {e}"),
            }

            // After reset, the session serves a fresh prompt oracle-identically.
            sess.reset();
            let fresh = [4usize, 5];
            let mut oracle2 = FtSession::new(Arc::clone(&model), fresh.len(), FtConfig::new(tp));
            let want2 = oracle2.generate(&fresh, 4).unwrap();
            let got2 = sess.generate(&fresh, 4).unwrap();
            prop_assert_eq!(got2, want2, "post-reset generation diverged (tp={})", tp);
        }
    }
}
