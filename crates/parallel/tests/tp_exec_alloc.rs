//! Allocation guard for the executed TP engine: steady-state decode must not
//! allocate per token, on any rank. All per-rank buffers (activations, KV,
//! scratch, the prompt hand-off vector) are reserved at session creation;
//! the only allocation a `generate` call may make is its own output `Vec`.
//!
//! This file holds exactly one test so the process-global counting allocator
//! is not polluted by concurrently running tests in the same binary.

use dsi_model::reference::GptModel;
use dsi_model::zoo;
use dsi_parallel::tp_exec::TpPackedModel;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    /// # Safety
    /// Same contract as [`GlobalAlloc::alloc`]; this impl only counts and
    /// forwards to the system allocator.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarding the exact layout to the system allocator; the
        // caller upholds GlobalAlloc's contract.
        unsafe { System.alloc(layout) }
    }

    /// # Safety
    /// Same contract as [`GlobalAlloc::dealloc`].
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was returned by `alloc` above with this `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_decode_does_not_allocate() {
    let model = GptModel::random(zoo::tiny(2), 11);
    let tpm = Arc::new(TpPackedModel::shard(&model, 2));
    let mut sess = tpm.session(8);

    // Warm-up: prompt ingestion plus a few decode steps touches every lazy
    // path once (worker thread startup, prompt vector growth, first KV rows).
    sess.generate(&[1, 2, 3], 4);

    // Two more generate calls of different lengths on the same session. Each
    // may allocate a constant amount (its output Vec); the per-token marginal
    // cost must be zero, so the deltas must be equal.
    let before = ALLOCS.load(Ordering::SeqCst);
    let a = sess.generate(&[5], 5);
    let mid = ALLOCS.load(Ordering::SeqCst);
    let b = sess.generate(&[7], 25);
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(a.len(), 5);
    assert_eq!(b.len(), 25);

    let short = mid - before;
    let long = after - mid;
    assert_eq!(
        short, long,
        "decoding 25 tokens allocated {long} times vs {short} for 5: per-token allocation"
    );
    assert!(
        short <= 2,
        "steady-state generate made {short} allocations; only the output Vec is allowed"
    );
}
