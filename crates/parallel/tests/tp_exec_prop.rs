//! Property test for the executed tensor-parallel engine: over random model
//! shapes (layer count, head count, random weights) and every legal TP
//! degree, the threaded [`TpSession`] must emit *exactly* the greedy tokens
//! of the single-thread fast path. This is the engine's whole correctness
//! contract — sharding, the shared-memory all-reduce, and the lock-step
//! command protocol are all on the hook for every sampled case.

use dsi_model::fast::PackedModel;
use dsi_model::reference::GptModel;
use dsi_model::GptConfig;
use dsi_parallel::tp_exec::TpPackedModel;
use proptest::prelude::*;
use std::sync::Arc;

fn config(layers: usize, heads: usize) -> GptConfig {
    GptConfig {
        name: format!("prop-l{layers}-h{heads}"),
        hidden: heads * 16,
        layers,
        heads,
        vocab: 61,
        max_seq: 32,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn tp_session_matches_fast_session(
        seed in 0u64..10_000,
        layers in 1usize..4,
        heads_sel in 0usize..2,
    ) {
        let heads = [2usize, 4][heads_sel];
        let model = GptModel::random(config(layers, heads), seed);
        let pm = PackedModel::pack(&model);
        let prompt = [1usize, 2, 3];
        let want = pm.session(prompt.len()).generate(&prompt, 8);
        // Every TP degree dividing the head count is legal; test them all.
        for tp in [1usize, 2, 4].into_iter().filter(|&tp| heads.is_multiple_of(tp)) {
            let tpm = Arc::new(TpPackedModel::shard(&model, tp));
            let got = tpm.session(prompt.len()).generate(&prompt, 8);
            prop_assert_eq!(
                &got, &want,
                "tp={} diverged (layers={}, heads={}, seed={})", tp, layers, heads, seed
            );
        }
    }
}
