//! Circuit breaker over the supervisor's fault machinery.
//!
//! The PR-4 supervisor retries and degrades *within* one request; what it
//! cannot see is the pattern **across** requests. When the engine is
//! systematically broken — a fault storm exhausting every retry budget —
//! each admitted request still burns its full retry/backoff budget before
//! failing, so a queue of doomed requests turns a component fault into a
//! latency catastrophe for everyone behind it. The breaker is the standard
//! production answer (and the robustness literature's: under saturation a
//! server that admits everything degrades for everyone): repeated terminal
//! [`FaultError`] outcomes **open** the breaker, new admissions fast-fail
//! with [`Rejected::BreakerOpen`] instead of queueing behind a broken
//! engine, and after a cool-down window a single **half-open probe**
//! request is admitted to test recovery — success closes the breaker,
//! failure re-opens it for another window.
//!
//! Time comes from [`dsi_sim::clock::Clock`], so the open-window and
//! re-probe transitions are deterministic under a manual clock — every
//! breaker test below is seed-free *and* sleep-free.
//!
//! [`FaultError`]: dsi_parallel::supervisor::FaultError
//! [`Rejected::BreakerOpen`]: crate::server::Rejected::BreakerOpen

use std::time::Duration;

/// Breaker tuning. `enabled: false` turns the breaker into a pass-through
/// (every admission allowed, no state kept) — the bench's "breaker off"
/// arm.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    pub enabled: bool,
    /// Consecutive terminal-fault completions that open the breaker.
    pub failure_threshold: u32,
    /// Cool-down window while open; after it, one probe is admitted.
    pub open_window: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            enabled: true,
            failure_threshold: 3,
            open_window: Duration::from_millis(250),
        }
    }
}

/// Breaker state machine. `Closed` counts consecutive failures; `Open`
/// fast-fails until the window elapses; `HalfOpen` has exactly one probe in
/// flight and rejects everyone else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed { consecutive_failures: u32 },
    Open { until_ns: u64 },
    HalfOpen,
}

/// Admission verdict from the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerAdmission {
    /// Normal admission (breaker closed or disabled).
    Admit,
    /// Admission as the half-open probe: the caller must report this
    /// request's outcome via `on_success` / `on_failure`, and must call
    /// `abort_probe` if it ends up rejecting the request for other reasons
    /// (queue full, memory) so the probe slot is not leaked.
    AdmitProbe,
    /// Fast-fail: the breaker is open (or a probe is already in flight).
    Reject,
}

/// The breaker itself. Not internally synchronized — it lives inside the
/// server's single state mutex (see the lock audit in `dsi-verify`).
#[derive(Debug, Clone)]
pub struct Breaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Times the breaker transitioned to open (observability).
    pub opens: u32,
}

impl Breaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        Breaker { cfg, state: BreakerState::Closed { consecutive_failures: 0 }, opens: 0 }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Admission check at `now_ns`. May transition `Open → HalfOpen` when
    /// the window has elapsed (the caller's request becomes the probe).
    pub fn admit(&mut self, now_ns: u64) -> BreakerAdmission {
        if !self.cfg.enabled {
            return BreakerAdmission::Admit;
        }
        match self.state {
            BreakerState::Closed { .. } => BreakerAdmission::Admit,
            BreakerState::Open { until_ns } if now_ns >= until_ns => {
                self.state = BreakerState::HalfOpen;
                BreakerAdmission::AdmitProbe
            }
            BreakerState::Open { .. } | BreakerState::HalfOpen => BreakerAdmission::Reject,
        }
    }

    /// The probe admission was revoked before running (e.g. the queue was
    /// full): return to `Open` with the window already elapsed, so the next
    /// admission re-probes immediately.
    pub fn abort_probe(&mut self, now_ns: u64) {
        if self.cfg.enabled && self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Open { until_ns: now_ns };
        }
    }

    /// A request completed successfully: closes a half-open breaker, resets
    /// the consecutive-failure count.
    pub fn on_success(&mut self) {
        if self.cfg.enabled {
            self.state = BreakerState::Closed { consecutive_failures: 0 };
        }
    }

    /// A request ended in a terminal fault: trips the threshold when
    /// closed, re-opens immediately when half-open (the probe failed).
    pub fn on_failure(&mut self, now_ns: u64) {
        if !self.cfg.enabled {
            return;
        }
        let window = self.cfg.open_window.as_nanos() as u64;
        match self.state {
            BreakerState::Closed { consecutive_failures } => {
                let n = consecutive_failures + 1;
                if n >= self.cfg.failure_threshold {
                    self.state = BreakerState::Open { until_ns: now_ns + window };
                    self.opens += 1;
                } else {
                    self.state = BreakerState::Closed { consecutive_failures: n };
                }
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open { until_ns: now_ns + window };
                self.opens += 1;
            }
            BreakerState::Open { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_sim::clock::Clock;

    fn breaker(threshold: u32, window_ms: u64) -> Breaker {
        Breaker::new(BreakerConfig {
            enabled: true,
            failure_threshold: threshold,
            open_window: Duration::from_millis(window_ms),
        })
    }

    #[test]
    fn threshold_failures_open_fast_fail_then_probe_closes() {
        let (clock, time) = Clock::manual();
        let mut b = breaker(3, 10);
        // Two failures: still closed.
        b.on_failure(clock.now_ns());
        b.on_failure(clock.now_ns());
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::Admit);
        // Third: opens.
        b.on_failure(clock.now_ns());
        assert_eq!(b.opens, 1);
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::Reject);
        // Window not yet elapsed: still rejecting.
        time.advance(Duration::from_millis(9));
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::Reject);
        // Window elapsed: exactly one probe, everyone else rejected.
        time.advance(Duration::from_millis(1));
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::AdmitProbe);
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::Reject);
        // Probe succeeds: closed, failures forgotten.
        b.on_success();
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::Admit);
        assert_eq!(b.state(), BreakerState::Closed { consecutive_failures: 0 });
    }

    #[test]
    fn failed_probe_reopens_for_another_window() {
        let (clock, time) = Clock::manual();
        let mut b = breaker(1, 10);
        b.on_failure(clock.now_ns());
        time.advance(Duration::from_millis(10));
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::AdmitProbe);
        b.on_failure(clock.now_ns());
        assert_eq!(b.opens, 2);
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::Reject);
        time.advance(Duration::from_millis(10));
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::AdmitProbe);
    }

    #[test]
    fn successes_reset_the_consecutive_count() {
        let (clock, _time) = Clock::manual();
        let mut b = breaker(2, 10);
        b.on_failure(clock.now_ns());
        b.on_success();
        b.on_failure(clock.now_ns());
        // Never two *consecutive* failures: still closed.
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::Admit);
        assert_eq!(b.opens, 0);
    }

    #[test]
    fn aborted_probe_reprobes_immediately() {
        let (clock, time) = Clock::manual();
        let mut b = breaker(1, 10);
        b.on_failure(clock.now_ns());
        time.advance(Duration::from_millis(10));
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::AdmitProbe);
        // The server rejected the probe request for capacity reasons: the
        // probe slot must not leak (HalfOpen with no probe in flight would
        // reject forever).
        b.abort_probe(clock.now_ns());
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::AdmitProbe);
    }

    #[test]
    fn disabled_breaker_is_a_passthrough() {
        let (clock, _time) = Clock::manual();
        let mut b = Breaker::new(BreakerConfig { enabled: false, ..BreakerConfig::default() });
        for _ in 0..10 {
            b.on_failure(clock.now_ns());
        }
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::Admit);
        assert_eq!(b.opens, 0);
    }
}
