//! Circuit breaker over the supervisor's fault machinery.
//!
//! The PR-4 supervisor retries and degrades *within* one request; what it
//! cannot see is the pattern **across** requests. When the engine is
//! systematically broken — a fault storm exhausting every retry budget —
//! each admitted request still burns its full retry/backoff budget before
//! failing, so a queue of doomed requests turns a component fault into a
//! latency catastrophe for everyone behind it. The breaker is the standard
//! production answer (and the robustness literature's: under saturation a
//! server that admits everything degrades for everyone): repeated terminal
//! [`FaultError`] outcomes **open** the breaker, new admissions fast-fail
//! with [`Rejected::BreakerOpen`] instead of queueing behind a broken
//! engine, and after a cool-down window a single **half-open probe**
//! request is admitted to test recovery — success closes the breaker,
//! failure re-opens it for another window.
//!
//! Time comes from [`dsi_sim::clock::Clock`], so the open-window and
//! re-probe transitions are deterministic under a manual clock — every
//! breaker test below is seed-free *and* sleep-free.
//!
//! [`FaultError`]: dsi_parallel::supervisor::FaultError
//! [`Rejected::BreakerOpen`]: crate::server::Rejected::BreakerOpen

use dsi_core::FaultClass;
use std::time::Duration;

/// Breaker tuning. `enabled: false` turns the breaker into a pass-through
/// (every admission allowed, no state kept) — the bench's "breaker off"
/// arm.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    pub enabled: bool,
    /// Consecutive terminal-fault completions that open the breaker.
    pub failure_threshold: u32,
    /// Cool-down window while open; after it, one probe is admitted.
    pub open_window: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            enabled: true,
            failure_threshold: 3,
            open_window: Duration::from_millis(250),
        }
    }
}

/// Breaker state machine. `Closed` counts consecutive failures; `Open`
/// fast-fails until the window elapses; `HalfOpen` has exactly one probe in
/// flight and rejects everyone else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed { consecutive_failures: u32 },
    Open { until_ns: u64 },
    HalfOpen,
}

/// Admission verdict from the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerAdmission {
    /// Normal admission (breaker closed or disabled).
    Admit,
    /// Admission as the half-open probe: the caller must report this
    /// request's outcome via `on_success` / `on_failure`, and must call
    /// `abort_probe` if it ends up rejecting the request for other reasons
    /// (queue full, memory) so the probe slot is not leaked.
    AdmitProbe,
    /// Fast-fail: the breaker is open (or a probe is already in flight).
    Reject,
}

/// The breaker itself. Not internally synchronized — it lives inside the
/// server's single state mutex (see the lock audit in `dsi-verify`).
#[derive(Debug, Clone)]
pub struct Breaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Times the breaker transitioned to open (observability).
    pub opens: u32,
}

impl Breaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        Breaker { cfg, state: BreakerState::Closed { consecutive_failures: 0 }, opens: 0 }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Admission check at `now_ns`. May transition `Open → HalfOpen` when
    /// the window has elapsed (the caller's request becomes the probe).
    pub fn admit(&mut self, now_ns: u64) -> BreakerAdmission {
        if !self.cfg.enabled {
            return BreakerAdmission::Admit;
        }
        match self.state {
            BreakerState::Closed { .. } => BreakerAdmission::Admit,
            BreakerState::Open { until_ns } if now_ns >= until_ns => {
                self.state = BreakerState::HalfOpen;
                BreakerAdmission::AdmitProbe
            }
            BreakerState::Open { .. } | BreakerState::HalfOpen => BreakerAdmission::Reject,
        }
    }

    /// The probe admission was revoked before running (e.g. the queue was
    /// full): return to `Open` with the window already elapsed, so the next
    /// admission re-probes immediately.
    pub fn abort_probe(&mut self, now_ns: u64) {
        if self.cfg.enabled && self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Open { until_ns: now_ns };
        }
    }

    /// A request completed successfully: closes a half-open breaker, resets
    /// the consecutive-failure count.
    pub fn on_success(&mut self) {
        if self.cfg.enabled {
            self.state = BreakerState::Closed { consecutive_failures: 0 };
        }
    }

    /// A request ended in a terminal fault: trips the threshold when
    /// closed, re-opens immediately when half-open (the probe failed).
    pub fn on_failure(&mut self, now_ns: u64) {
        if !self.cfg.enabled {
            return;
        }
        let window = self.cfg.open_window.as_nanos() as u64;
        match self.state {
            BreakerState::Closed { consecutive_failures } => {
                let n = consecutive_failures + 1;
                if n >= self.cfg.failure_threshold {
                    self.state = BreakerState::Open { until_ns: now_ns + window };
                    self.opens += 1;
                } else {
                    self.state = BreakerState::Closed { consecutive_failures: n };
                }
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open { until_ns: now_ns + window };
                self.opens += 1;
            }
            BreakerState::Open { .. } => {}
        }
    }
}

/// Admission verdict from a [`BreakerSet`]: like [`BreakerAdmission`] but a
/// probe names the fault class it is probing, so the completion path can
/// route the outcome to the right breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetAdmission {
    Admit,
    /// Admitted as the half-open probe for this class.
    AdmitProbe(FaultClass),
    /// Some class's breaker is open (or probing): fast-fail.
    Reject,
}

/// One [`Breaker`] per [`FaultClass`], with independent thresholds and
/// half-open probes — the PR-5 global breaker split per fault class so a
/// stall storm cannot mask a panic storm (each class's failure count and
/// open window are its own).
///
/// Admission is the conjunction of the per-class breakers: a request is
/// admitted only if **no** class is open. When exactly the set's first
/// elapsed-open class is ready to probe, the request becomes that class's
/// probe. A success closes the probed class and resets the failure count of
/// every *closed* class — classes that are open (or half-open for another
/// probe) stay open until their own window/probe clears them, because a
/// success under, say, a stall storm says nothing about the panic storm
/// that opened the other breaker.
#[derive(Debug, Clone)]
pub struct BreakerSet {
    breakers: [(FaultClass, Breaker); 4],
}

impl BreakerSet {
    /// Every class starts from `base`; `overrides` replaces the tuning of
    /// individual classes (independent thresholds are the point of the
    /// split).
    pub fn new(base: BreakerConfig, overrides: &[(FaultClass, BreakerConfig)]) -> Self {
        let breakers = FaultClass::ALL.map(|class| {
            let cfg = overrides
                .iter()
                .rev()
                .find(|(c, _)| *c == class)
                .map(|(_, cfg)| cfg.clone())
                .unwrap_or_else(|| base.clone());
            (class, Breaker::new(cfg))
        });
        BreakerSet { breakers }
    }

    fn get_mut(&mut self, class: FaultClass) -> &mut Breaker {
        &mut self.breakers.iter_mut().find(|(c, _)| *c == class).expect("all classes present").1
    }

    pub fn get(&self, class: FaultClass) -> &Breaker {
        &self.breakers.iter().find(|(c, _)| *c == class).expect("all classes present").1
    }

    /// Admission at `now_ns`: reject if any class is half-open (its probe
    /// is in flight) or open within its window; otherwise the first class
    /// whose window has elapsed turns this request into its probe; with
    /// every class closed, admit.
    pub fn admit(&mut self, now_ns: u64) -> SetAdmission {
        if self.breakers.iter().any(|(_, b)| b.state() == BreakerState::HalfOpen) {
            return SetAdmission::Reject;
        }
        let probe = self.breakers.iter().find_map(|(c, b)| match b.state() {
            BreakerState::Open { until_ns } if now_ns >= until_ns => Some(*c),
            _ => None,
        });
        if let Some(class) = probe {
            // Only the elapsed class transitions; other open classes keep
            // their windows.
            let got = self.get_mut(class).admit(now_ns);
            debug_assert_eq!(got, BreakerAdmission::AdmitProbe);
            return SetAdmission::AdmitProbe(class);
        }
        if self.breakers.iter().any(|(_, b)| matches!(b.state(), BreakerState::Open { .. })) {
            return SetAdmission::Reject;
        }
        SetAdmission::Admit
    }

    /// Revoke a probe admission that never ran (capacity reject).
    pub fn abort_probe(&mut self, class: FaultClass, now_ns: u64) {
        self.get_mut(class).abort_probe(now_ns);
    }

    /// A request completed cleanly. `probe` is the class it was probing, if
    /// any: that class closes; every already-closed class forgets its
    /// consecutive failures; open classes are untouched.
    pub fn on_success(&mut self, probe: Option<FaultClass>) {
        for (class, b) in &mut self.breakers {
            if Some(*class) == probe || matches!(b.state(), BreakerState::Closed { .. }) {
                b.on_success();
            }
        }
    }

    /// A request ended in a terminal fault of `class`: only that class's
    /// breaker counts it.
    pub fn on_failure(&mut self, class: FaultClass, now_ns: u64) {
        self.get_mut(class).on_failure(now_ns);
    }

    /// Total opens across classes (the report's headline counter).
    pub fn opens(&self) -> u32 {
        self.breakers.iter().map(|(_, b)| b.opens).sum()
    }

    /// Per-class open counts, in [`FaultClass::ALL`] order.
    pub fn opens_by_class(&self) -> [(FaultClass, u32); 4] {
        self.breakers.clone().map(|(c, b)| (c, b.opens))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_sim::clock::Clock;

    fn breaker(threshold: u32, window_ms: u64) -> Breaker {
        Breaker::new(BreakerConfig {
            enabled: true,
            failure_threshold: threshold,
            open_window: Duration::from_millis(window_ms),
        })
    }

    #[test]
    fn threshold_failures_open_fast_fail_then_probe_closes() {
        let (clock, time) = Clock::manual();
        let mut b = breaker(3, 10);
        // Two failures: still closed.
        b.on_failure(clock.now_ns());
        b.on_failure(clock.now_ns());
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::Admit);
        // Third: opens.
        b.on_failure(clock.now_ns());
        assert_eq!(b.opens, 1);
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::Reject);
        // Window not yet elapsed: still rejecting.
        time.advance(Duration::from_millis(9));
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::Reject);
        // Window elapsed: exactly one probe, everyone else rejected.
        time.advance(Duration::from_millis(1));
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::AdmitProbe);
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::Reject);
        // Probe succeeds: closed, failures forgotten.
        b.on_success();
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::Admit);
        assert_eq!(b.state(), BreakerState::Closed { consecutive_failures: 0 });
    }

    #[test]
    fn failed_probe_reopens_for_another_window() {
        let (clock, time) = Clock::manual();
        let mut b = breaker(1, 10);
        b.on_failure(clock.now_ns());
        time.advance(Duration::from_millis(10));
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::AdmitProbe);
        b.on_failure(clock.now_ns());
        assert_eq!(b.opens, 2);
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::Reject);
        time.advance(Duration::from_millis(10));
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::AdmitProbe);
    }

    #[test]
    fn successes_reset_the_consecutive_count() {
        let (clock, _time) = Clock::manual();
        let mut b = breaker(2, 10);
        b.on_failure(clock.now_ns());
        b.on_success();
        b.on_failure(clock.now_ns());
        // Never two *consecutive* failures: still closed.
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::Admit);
        assert_eq!(b.opens, 0);
    }

    #[test]
    fn aborted_probe_reprobes_immediately() {
        let (clock, time) = Clock::manual();
        let mut b = breaker(1, 10);
        b.on_failure(clock.now_ns());
        time.advance(Duration::from_millis(10));
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::AdmitProbe);
        // The server rejected the probe request for capacity reasons: the
        // probe slot must not leak (HalfOpen with no probe in flight would
        // reject forever).
        b.abort_probe(clock.now_ns());
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::AdmitProbe);
    }

    #[test]
    fn disabled_breaker_is_a_passthrough() {
        let (clock, _time) = Clock::manual();
        let mut b = Breaker::new(BreakerConfig { enabled: false, ..BreakerConfig::default() });
        for _ in 0..10 {
            b.on_failure(clock.now_ns());
        }
        assert_eq!(b.admit(clock.now_ns()), BreakerAdmission::Admit);
        assert_eq!(b.opens, 0);
    }

    fn set(threshold: u32, window_ms: u64) -> BreakerSet {
        BreakerSet::new(
            BreakerConfig {
                enabled: true,
                failure_threshold: threshold,
                open_window: Duration::from_millis(window_ms),
            },
            &[],
        )
    }

    #[test]
    fn classes_count_failures_independently() {
        let (clock, _time) = Clock::manual();
        let mut s = set(3, 10);
        // Two timeouts + two panics: four faults total, but no class has
        // reached its own threshold — the global breaker would have opened.
        s.on_failure(FaultClass::Timeout, clock.now_ns());
        s.on_failure(FaultClass::Timeout, clock.now_ns());
        s.on_failure(FaultClass::Panic, clock.now_ns());
        s.on_failure(FaultClass::Panic, clock.now_ns());
        assert_eq!(s.admit(clock.now_ns()), SetAdmission::Admit);
        assert_eq!(s.opens(), 0);
        // A third timeout opens only the timeout class.
        s.on_failure(FaultClass::Timeout, clock.now_ns());
        assert_eq!(s.admit(clock.now_ns()), SetAdmission::Reject);
        assert_eq!(s.get(FaultClass::Timeout).opens, 1);
        assert_eq!(s.get(FaultClass::Panic).opens, 0);
    }

    #[test]
    fn success_does_not_mask_an_open_class() {
        let (clock, time) = Clock::manual();
        let mut s = set(1, 10);
        s.on_failure(FaultClass::Panic, clock.now_ns());
        // A non-probe success (e.g. a request admitted before the storm)
        // must not close the panic breaker early...
        s.on_success(None);
        assert_eq!(s.admit(clock.now_ns()), SetAdmission::Reject);
        // ...but it does reset closed classes' consecutive counts.
        time.advance(Duration::from_millis(10));
        assert_eq!(s.admit(clock.now_ns()), SetAdmission::AdmitProbe(FaultClass::Panic));
        s.on_success(Some(FaultClass::Panic));
        assert_eq!(s.admit(clock.now_ns()), SetAdmission::Admit);
    }

    #[test]
    fn probe_for_one_class_while_another_stays_open() {
        let (clock, time) = Clock::manual();
        let mut s = BreakerSet::new(
            BreakerConfig {
                enabled: true,
                failure_threshold: 1,
                open_window: Duration::from_millis(10),
            },
            &[(
                FaultClass::Panic,
                BreakerConfig {
                    enabled: true,
                    failure_threshold: 1,
                    open_window: Duration::from_millis(50),
                },
            )],
        );
        s.on_failure(FaultClass::Timeout, clock.now_ns());
        s.on_failure(FaultClass::Panic, clock.now_ns());
        // Timeout's window elapses first: its probe runs while panic is
        // still open, and a probe success must not unlock panic.
        time.advance(Duration::from_millis(10));
        assert_eq!(s.admit(clock.now_ns()), SetAdmission::AdmitProbe(FaultClass::Timeout));
        s.on_success(Some(FaultClass::Timeout));
        assert_eq!(s.admit(clock.now_ns()), SetAdmission::Reject, "panic class still open");
        time.advance(Duration::from_millis(40));
        assert_eq!(s.admit(clock.now_ns()), SetAdmission::AdmitProbe(FaultClass::Panic));
        s.on_failure(FaultClass::Panic, clock.now_ns());
        assert_eq!(s.get(FaultClass::Panic).opens, 2);
        assert_eq!(s.opens(), 3, "set total sums class opens");
    }

    #[test]
    fn aborted_set_probe_reprobes_immediately() {
        let (clock, time) = Clock::manual();
        let mut s = set(1, 10);
        s.on_failure(FaultClass::Corruption, clock.now_ns());
        time.advance(Duration::from_millis(10));
        assert_eq!(s.admit(clock.now_ns()), SetAdmission::AdmitProbe(FaultClass::Corruption));
        s.abort_probe(FaultClass::Corruption, clock.now_ns());
        assert_eq!(s.admit(clock.now_ns()), SetAdmission::AdmitProbe(FaultClass::Corruption));
    }

    /// Lock-step conformance against `dsi_verify::runtime::BreakerModel` —
    /// the pure transcription that `check_breaker_model` explores
    /// exhaustively. The verifier proves the *model* safe; this test pins
    /// the executable breaker to the model under seeded random event
    /// sequences, closing the loop.
    #[test]
    fn breaker_conforms_to_verified_model_in_lockstep() {
        use dsi_verify::runtime::{BreakerModel, ModelAdmission, ModelState};
        for seed in 0..8u64 {
            let (clock, time) = Clock::manual();
            let mut real = breaker(2, 10);
            let mut model = BreakerModel::new(2, Duration::from_millis(10).as_nanos() as u64);
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x1234_5678);
            let mut next = move || {
                s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            for step in 0..200 {
                let now = clock.now_ns();
                match next() % 5 {
                    0 => {
                        let got = real.admit(now);
                        let want = model.admit(now);
                        let same = matches!(
                            (got, want),
                            (BreakerAdmission::Admit, ModelAdmission::Admit)
                                | (BreakerAdmission::AdmitProbe, ModelAdmission::AdmitProbe)
                                | (BreakerAdmission::Reject, ModelAdmission::Reject)
                        );
                        assert!(same, "seed {seed} step {step}: {got:?} vs model {want:?}");
                    }
                    1 => {
                        real.on_success();
                        model.on_success();
                    }
                    2 => {
                        real.on_failure(now);
                        model.on_failure(now);
                    }
                    3 => {
                        real.abort_probe(now);
                        model.abort_probe(now);
                    }
                    _ => time.advance(Duration::from_millis(next() % 8)),
                }
                let eq = match (real.state(), model.state) {
                    (
                        BreakerState::Closed { consecutive_failures },
                        ModelState::Closed { failures },
                    ) => consecutive_failures == failures,
                    (BreakerState::Open { until_ns }, ModelState::Open { until }) => {
                        until_ns == until
                    }
                    (BreakerState::HalfOpen, ModelState::HalfOpen) => true,
                    _ => false,
                };
                assert!(
                    eq,
                    "seed {seed} step {step}: real {:?} diverged from model {:?}",
                    real.state(),
                    model.state
                );
                assert_eq!(real.opens, model.opens, "seed {seed} step {step}: opens diverged");
            }
        }
    }
}
