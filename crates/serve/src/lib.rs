//! # dsi-serve — overload-safe executed serving runtime
//!
//! The paper's systems contribution (Sec. VI) is an *inference serving*
//! system, not a kernel library: DeepSpeed-Inference sits behind a request
//! boundary, and everything the repo built below this crate — the fast
//! single-GPU decode path, the executed tensor-parallel engine, the
//! fault-tolerant supervisor — only earns its keep once real, concurrent,
//! misbehaving request streams are fronted safely. `dsi-serve` is that
//! front: a multi-threaded serving runtime over
//! [`FtSession`](dsi_parallel::supervisor::FtSession) with the four
//! overload-safety mechanisms a production endpoint needs:
//!
//! 1. **Bounded admission** ([`Server::submit`]) — a bounded queue plus a
//!    KV-memory token budget (the same `kv_bytes_per_token` accounting the
//!    planner's `InferenceEngine::max_batch` uses), with typed rejection
//!    ([`Rejected`]) so overload sheds load in O(1) instead of queueing
//!    unboundedly.
//! 2. **Deadlines & cancellation** — per-request deadlines and cooperative
//!    [`Ticket::cancel`], both observed *between* decode steps through the
//!    supervisor's `StepCtl` surface: an expired or cancelled request
//!    yields its exact partial token prefix ([`Outcome::DeadlineExpired`],
//!    [`Outcome::Evicted`]) and never a torn step or a hung engine.
//! 3. **Circuit breaker** ([`breaker`]) — consecutive terminal faults open
//!    the breaker; admissions fast-fail ([`Rejected::BreakerOpen`]) while
//!    the engine is storming, and a half-open probe re-closes it on
//!    recovery. Driven by the deterministic [`Clock`](dsi_sim::Clock), so
//!    every transition is testable without sleeps.
//! 4. **Watchdog & drain** — a progress-heartbeat watchdog cancels wedged
//!    requests (routing teardown through the supervisor's bounded
//!    dismantle), and [`Server::drain`] performs a graceful shutdown whose
//!    final [`ServeReport`] asserts the accounting invariants
//!    `submitted == admitted + rejected` and
//!    `admitted == completed + evicted + deadline_expired` — under every
//!    fault storm the chaos suite can script.

//!
//! Since the continuous-batching rewrite the runtime fronts **two engine
//! disciplines** behind the same admission/drain machinery
//! ([`server::EngineMode`]): the single-flight fault-tolerant `FtSession`
//! path above, and an executed continuous-batching scheduler
//! ([`scheduler`]) over a paged multi-slot engine
//! ([`PagedEngine`](dsi_model::paged::PagedEngine)) — iteration-level
//! admission, ragged M-row decode, mid-batch retirement, and
//! page-granular KV accounting with typed page-exhaustion shedding.

pub mod breaker;
pub mod scheduler;
pub mod server;

pub use breaker::{
    Breaker, BreakerAdmission, BreakerConfig, BreakerSet, BreakerState, SetAdmission,
};
pub use scheduler::{live_trace_check, PageReport, SchedReport};
pub use server::{
    kv_budget_tokens, ContinuousConfig, EngineMode, EvictReason, Outcome, Rejected, Request,
    ServeConfig, ServeReport, Server, Ticket,
};
