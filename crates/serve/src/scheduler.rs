//! The executed continuous-batching scheduler — `core::continuous`'s slot
//! policy, now driving a real engine instead of a cost model.
//!
//! Every iteration is three phases around one ragged decode step:
//!
//! 1. **Admit** (under the state lock): pop queued jobs into free slots
//!    while [`SlotPolicy::can_admit`] holds *and* the page pool can seat
//!    the job's prompt right now. The policy struct is the same one
//!    `simulate_continuous` uses, so the simulator's admission discipline
//!    and the runtime's cannot drift.
//! 2. **Execute** (no lock): prefill newcomers (one prompt pass each),
//!    then advance every resident one token through a single
//!    `forward_rows` pass via [`PagedEngine::decode`]. Page growth for the
//!    step is reserved *before* compute; on exhaustion the newest resident
//!    is shed with [`EvictReason::PagesExhausted`] (its exact token prefix
//!    attached) and the step retries — never an abort, never a hang.
//! 3. **Retire** (under the lock): resolve residents that completed
//!    (`n_tokens` reached or [`eos`](crate::ServeConfig::eos) emitted),
//!    were cancelled, or passed their deadline — mid-batch, without
//!    disturbing neighbours. Counters, latencies, and the breaker see
//!    exactly the same transitions as the single-flight path, so the
//!    `submitted == admitted + rejected` and
//!    `admitted == completed + evicted + deadline_expired` identities hold
//!    unchanged.
//!
//! Because [`PagedEngine`] decode is bit-identical to a solo
//! [`FastSession`](dsi_model::fast::FastSession) run (which is
//! token-identical to `FtSession` at any TP degree), every outcome's token
//! stream — full or partial — is an exact prefix of the request's solo
//! generation. The chaos suite holds serving to that oracle.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use dsi_core::batch::{BatchEngine, EngineError};
use dsi_core::SlotPolicy;
use dsi_model::fast::PackedModel;
use dsi_model::paged::PagedEngine;
use dsi_model::reference::GptModel;
use serde::Serialize;

use crate::server::{ContinuousConfig, EvictReason, Job, Outcome, Running, Shared};

/// Page-allocator statistics at drain, for BENCH_serve.json.
#[derive(Debug, Clone, Serialize)]
pub struct PageReport {
    pub pages_total: usize,
    pub page_tokens: usize,
    /// Most pages simultaneously in use over the run.
    pub high_water: usize,
    /// `pages_total - in_use - free` at drain — the allocator identity
    /// makes this 0 by construction, and the drain path asserts it.
    pub fragmentation: usize,
}

/// Scheduler-side counters and histograms, attached to the final
/// `ServeReport` in continuous mode.
#[derive(Debug, Clone, Serialize)]
pub struct SchedReport {
    /// Ragged decode steps executed.
    pub steps: u64,
    /// Prompt passes executed (== admissions into slots).
    pub prefills: u64,
    /// `occupancy_hist[b]` = decode steps that ran with `b` residents.
    pub occupancy_hist: Vec<u64>,
    /// `tokens_per_step_hist[t]` = decode steps that emitted `t` tokens.
    /// (Every resident emits one token per step, so this tracks occupancy
    /// unless sequences retire mid-step in a later scheduler.)
    pub tokens_per_step_hist: Vec<u64>,
    /// Mean residents per decode step.
    pub mean_occupancy: f64,
    /// Requests shed with [`EvictReason::PagesExhausted`].
    pub page_evictions: u64,
    pub pages: PageReport,
}

/// One admitted sequence resident in an engine slot.
struct Resident {
    job: Job,
    /// Generated tokens so far (first one from prefill).
    tokens: Vec<usize>,
    /// Admission order; page-exhaustion sheds the largest (newest first).
    admit_seq: u64,
}

enum Retire {
    Completed,
    Cancelled,
    DeadlineExpired,
    PagesExhausted,
}

pub(crate) fn continuous_worker_loop(
    shared: Arc<Shared>,
    model: Arc<GptModel>,
    cont: ContinuousConfig,
    eos: Option<usize>,
) {
    let pm = PackedModel::pack(&model);
    let mut eng = PagedEngine::new(&pm, cont.max_slots, cont.pages_total, cont.page_tokens);
    let policy = SlotPolicy::new(cont.max_slots);
    let mut residents: Vec<Option<Resident>> = (0..cont.max_slots).map(|_| None).collect();
    let mut admit_seq = 0u64;
    let mut steps = 0u64;
    let mut prefills = 0u64;
    let mut page_evictions = 0u64;
    let mut occupancy_hist = vec![0u64; cont.max_slots + 1];
    let mut tokens_per_step_hist = vec![0u64; cont.max_slots + 1];

    loop {
        // ---- Phase 1: admit from the queue into free slots (under lock).
        let mut newcomers: Vec<(usize, Job)> = Vec::new();
        {
            let mut st = shared.state.lock().unwrap();
            loop {
                let resident_count =
                    residents.iter().filter(|r| r.is_some()).count() + newcomers.len();
                if !policy.can_admit(resident_count) {
                    break;
                }
                let Some(job) = st.queue.front() else { break };
                // Seat the prompt only if the pool can take it *now*;
                // otherwise wait for a retirement to free pages. (Queued
                // jobs are never hopeless: submit rejects prompts larger
                // than the whole pool.)
                let need = eng.pages_for(job.prompt.len() + 1);
                let free = eng.kv_stats().expect("paged engine").pages_free;
                if need > free {
                    break;
                }
                let job = st.queue.pop_front().unwrap();
                st.inflight_tokens -= job.cost;
                // Stamp the heartbeat before publishing `running`, so the
                // watchdog never reads a stale heartbeat for a fresh job.
                shared.progress_ns.store(shared.clock.now_ns(), Ordering::Release);
                st.running.push(Running { id: job.id, cancel: job.cancel.clone() });
                let slot = (0..residents.len())
                    .find(|&s| {
                        residents[s].is_none() && !newcomers.iter().any(|(t, _)| *t == s)
                    })
                    .expect("can_admit implies a free slot");
                newcomers.push((slot, job));
            }
            if newcomers.is_empty() && residents.iter().all(|r| r.is_none()) {
                if st.draining && st.queue.is_empty() {
                    break;
                }
                drop(shared.work.wait(st).unwrap());
                continue;
            }
        }

        // ---- Phase 2: execute (no lock held).
        let now = shared.clock.now_ns();
        let mut retired: Vec<(usize, Retire)> = Vec::new();
        for (slot, job) in newcomers {
            // A job may be dead on arrival (cancelled or expired while
            // queued) — resolve it without spending a prompt pass, exactly
            // like the single-flight StepCtl check before `begin`.
            if job.cancel.is_cancelled() {
                residents[slot] = Some(Resident { job, tokens: Vec::new(), admit_seq });
                retired.push((slot, Retire::Cancelled));
            } else if job.deadline_ns.is_some_and(|d| now >= d) {
                residents[slot] = Some(Resident { job, tokens: Vec::new(), admit_seq });
                retired.push((slot, Retire::DeadlineExpired));
            } else {
                shared.progress_ns.store(shared.clock.now_ns(), Ordering::Release);
                match eng.prefill(slot, &job.prompt) {
                    Ok(first) => {
                        prefills += 1;
                        residents[slot] =
                            Some(Resident { job, tokens: vec![first], admit_seq });
                    }
                    Err(_) => {
                        // Phase 1 checked the fit under the lock and only
                        // this thread allocates pages, so this is
                        // unreachable; shed typed rather than crash if the
                        // invariant ever breaks.
                        page_evictions += 1;
                        residents[slot] = Some(Resident { job, tokens: Vec::new(), admit_seq });
                        retired.push((slot, Retire::PagesExhausted));
                    }
                }
            }
            admit_seq += 1;
        }

        // Retire checks for residents that finished at prefill (n_tokens
        // reached, EOS on the first token, cancel/deadline between steps).
        scan_retirements(&residents, eos, shared.clock.now_ns(), &mut retired);

        // One ragged decode step over everyone still live.
        let mut active: Vec<usize> = (0..residents.len())
            .filter(|&s| residents[s].is_some() && !retired.iter().any(|(rs, _)| *rs == s))
            .collect();
        if !active.is_empty() {
            let mut step_out = Vec::with_capacity(active.len());
            loop {
                step_out.clear();
                match eng.decode_step(&active, &mut step_out) {
                    Ok(()) => {
                        occupancy_hist[active.len()] += 1;
                        tokens_per_step_hist[step_out.len()] += 1;
                        steps += 1;
                        shared.progress_ns.store(shared.clock.now_ns(), Ordering::Release);
                        for (r, &slot) in active.iter().enumerate() {
                            residents[slot]
                                .as_mut()
                                .expect("active slot occupied")
                                .tokens
                                .push(step_out[r]);
                        }
                        break;
                    }
                    Err(EngineError::OutOfPages { .. }) => {
                        // Shed the newest resident and retry; nothing
                        // advanced, so every survivor's stream is intact.
                        let victim = *active
                            .iter()
                            .max_by_key(|&&s| {
                                residents[s].as_ref().expect("occupied").admit_seq
                            })
                            .expect("active is non-empty");
                        page_evictions += 1;
                        // Free the victim's pages NOW so the retry can
                        // succeed; outcome delivery waits for phase 3.
                        eng.release(victim);
                        retired.push((victim, Retire::PagesExhausted));
                        active.retain(|&s| s != victim);
                        if active.is_empty() {
                            break;
                        }
                    }
                    Err(EngineError::Fault(m)) => {
                        unreachable!("paged fast path cannot fault: {m}")
                    }
                }
            }
            // Post-step retirements: completion, EOS, cancel, deadline.
            scan_retirements(&residents, eos, shared.clock.now_ns(), &mut retired);
        }

        // ---- Phase 3: retire (under lock), deliver outcomes after.
        if !retired.is_empty() {
            let mut deliveries: Vec<(Job, Outcome)> = Vec::new();
            let mut st = shared.state.lock().unwrap();
            let now = shared.clock.now_ns();
            for (slot, why) in retired {
                let Resident { job, mut tokens, .. } =
                    residents[slot].take().expect("retired slot occupied");
                if eng.slot_in_use(slot) {
                    eng.release(slot);
                }
                st.running.retain(|r| r.id != job.id);
                let outcome = match why {
                    Retire::Completed => {
                        tokens.truncate(job.n_tokens);
                        st.counters.completed += 1;
                        let latency_s = (now - job.submit_ns) as f64 / 1e9;
                        st.latencies_s.push(latency_s);
                        st.breaker.on_success();
                        Outcome::Completed { tokens, latency_s }
                    }
                    Retire::Cancelled => {
                        st.counters.evicted += 1;
                        if job.probe {
                            st.breaker.abort_probe(now);
                        }
                        Outcome::Evicted { partial: tokens, reason: EvictReason::Cancelled }
                    }
                    Retire::DeadlineExpired => {
                        st.counters.deadline_expired += 1;
                        if job.probe {
                            st.breaker.abort_probe(now);
                        }
                        Outcome::DeadlineExpired { partial: tokens }
                    }
                    Retire::PagesExhausted => {
                        st.counters.evicted += 1;
                        if job.probe {
                            st.breaker.abort_probe(now);
                        }
                        Outcome::Evicted { partial: tokens, reason: EvictReason::PagesExhausted }
                    }
                };
                deliveries.push((job, outcome));
            }
            st.pool_pages = eng.pool_stats().pages_in_use;
            drop(st);
            for (job, outcome) in deliveries {
                let _ = job.tx.send(outcome);
            }
            shared.idle.notify_all();
        } else {
            let mut st = shared.state.lock().unwrap();
            st.pool_pages = eng.pool_stats().pages_in_use;
        }
    }

    // Loop exit: draining, queue empty, no residents. Publish the
    // scheduler report and hand the final pool identity to drain's
    // asserts.
    let stats = eng.pool_stats();
    let total_occ: u64 = occupancy_hist.iter().enumerate().map(|(b, &n)| b as u64 * n).sum();
    let mut st = shared.state.lock().unwrap();
    st.pool_pages = stats.pages_in_use;
    st.sched_report = Some(SchedReport {
        steps,
        prefills,
        mean_occupancy: if steps > 0 { total_occ as f64 / steps as f64 } else { 0.0 },
        occupancy_hist,
        tokens_per_step_hist,
        page_evictions,
        pages: PageReport {
            pages_total: stats.pages_total,
            page_tokens: stats.page_tokens,
            high_water: stats.high_water,
            fragmentation: stats.pages_total - stats.pages_in_use - stats.pages_free,
        },
    });
    st.worker_done = true;
    drop(st);
    shared.idle.notify_all();
}

/// Append retirements for residents that are complete (token budget or
/// EOS), cancelled, or past deadline — skipping slots already in `out`.
fn scan_retirements(
    residents: &[Option<Resident>],
    eos: Option<usize>,
    now: u64,
    out: &mut Vec<(usize, Retire)>,
) {
    for (slot, r) in residents.iter().enumerate() {
        let Some(r) = r else { continue };
        if r.tokens.is_empty() || out.iter().any(|(s, _)| *s == slot) {
            continue;
        }
        if r.tokens.len() >= r.job.n_tokens
            || (eos.is_some() && r.tokens.last() == eos.as_ref())
        {
            out.push((slot, Retire::Completed));
        } else if r.job.cancel.is_cancelled() {
            out.push((slot, Retire::Cancelled));
        } else if r.job.deadline_ns.is_some_and(|d| now >= d) {
            out.push((slot, Retire::DeadlineExpired));
        }
    }
}
